// Command aigopt applies optimization passes or high-effort flows to an
// AIGER file and writes the optimized result.
//
// Usage:
//
//	aigopt -script dc2 in.aag out.aag
//	aigopt -script "b;rw;rf;rs;rwz" in.aig out.aig
//
// Script atoms: b (balance), rw/rwz (rewrite / zero-cost), rf/rfz
// (refactor), rs/rsz (resub), lut4/lut6 (LUT round trip), or a flow name
// (orchestrate, dc2, deepsyn, compress).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/lutmap"
	"repro/internal/opt"
)

func main() {
	script := flag.String("script", "dc2", "optimization script (see doc)")
	seed := flag.Int64("seed", 1, "seed for randomized flows")
	verify := flag.Bool("verify", false, "check equivalence by random simulation (and exhaustively up to 16 inputs)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: aigopt [-script S] [-verify] in.aag out.aag")
		os.Exit(2)
	}
	in, out := flag.Arg(0), flag.Arg(1)
	g, err := aiger.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	before := g.Stat()
	og, err := runScript(g, *script, *seed)
	if err != nil {
		fatal(err)
	}
	if *verify {
		if err := verifyEquiv(g, og); err != nil {
			fatal(err)
		}
	}
	if err := aiger.WriteFile(out, og.Cleanup()); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %v\n%s: %v\n", in, before, out, og.Stat())
}

func runScript(g *aig.AIG, script string, seed int64) (*aig.AIG, error) {
	cur := g
	for _, atom := range strings.Split(script, ";") {
		atom = strings.TrimSpace(atom)
		if atom == "" {
			continue
		}
		switch atom {
		case "b":
			cur = opt.Balance(cur)
		case "rw":
			cur = opt.RewriteOnce(cur, opt.RewriteOptions{})
		case "rwz":
			cur = opt.RewriteOnce(cur, opt.RewriteOptions{ZeroCost: true})
		case "rf":
			cur = opt.RefactorOnce(cur, opt.RefactorOptions{})
		case "rfz":
			cur = opt.RefactorOnce(cur, opt.RefactorOptions{ZeroCost: true})
		case "rs":
			cur = opt.ResubOnce(cur, opt.ResubOptions{})
		case "rsz":
			cur = opt.ResubOnce(cur, opt.ResubOptions{ZeroCost: true})
		case "lut4":
			cur = lutmap.RoundTrip(cur, lutmap.Options{K: 4})
		case "lut6":
			cur = lutmap.RoundTrip(cur, lutmap.Options{K: 6})
		case "compress":
			cur = opt.CompressToConvergence(cur)
		default:
			ng, err := opt.RunFlow(atom, cur, seed)
			if err != nil {
				return nil, fmt.Errorf("unknown script atom %q", atom)
			}
			cur = ng
		}
	}
	return cur, nil
}

func verifyEquiv(a, b *aig.AIG) error {
	if a.NumPIs() <= 16 {
		idx, err := aig.Equivalent(a, b)
		if err != nil {
			return err
		}
		if idx != -1 {
			return fmt.Errorf("VERIFICATION FAILED: output %d differs", idx)
		}
		return nil
	}
	r := newRand()
	idx, err := aig.RandomSimCheck(a, b, 256, r)
	if err != nil {
		return err
	}
	if idx != -1 {
		return fmt.Errorf("VERIFICATION FAILED: output %d differs", idx)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aigopt:", err)
	os.Exit(1)
}
