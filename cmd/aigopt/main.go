// Command aigopt applies optimization passes or high-effort flows to an
// AIGER file and writes the optimized result.
//
// Usage:
//
//	aigopt -script dc2 in.aag out.aag
//	aigopt -script "b;rw;rf;rs;rwz" in.aig out.aig
//
// Script atoms: b (balance), rw/rwz (rewrite / zero-cost), rf/rfz
// (refactor), rs/rsz (resub), lut4/lut6 (LUT round trip), or a flow name
// (orchestrate, dc2, deepsyn, compress).
//
// SIGINT/SIGTERM stop the script gracefully: the flow in progress
// returns its best equivalent AIG so far, remaining atoms are skipped,
// and the output file is still written. -flow-timeout bounds each flow
// atom's wall clock the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/lutmap"
	"repro/internal/opt"
	"repro/internal/telemetry"
)

func main() {
	script := flag.String("script", "dc2", "optimization script (see doc)")
	seed := flag.Int64("seed", 1, "seed for randomized flows")
	verify := flag.Bool("verify", false, "check equivalence by random simulation (and exhaustively up to 16 inputs)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address during the run")
	eventsPath := flag.String("events", "", "append JSONL optimization events to this file")
	flowTimeout := flag.Duration("flow-timeout", 0, "wall-clock budget per flow atom (0 = unbounded)")
	selfcheck := flag.Bool("selfcheck", false, "run the structural verifier after every script atom and on the final AIG")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: aigopt [-script S] [-verify] [-selfcheck] [-metrics-addr A] [-events F] [-flow-timeout D] in.aag out.aag")
		os.Exit(2)
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" || *eventsPath != "" {
		reg = telemetry.Enable()
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "aigopt: serving telemetry on http://%s/metrics\n", srv.Addr())
	}
	var events *telemetry.EventLogger
	var eventsFile *os.File
	if *eventsPath != "" {
		f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		eventsFile = f
		events = telemetry.NewEventLogger(f)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "aigopt: %v received, finishing with the best AIG so far (send again to abort)\n", s)
		cancel()
		if _, ok := <-sigc; ok {
			fmt.Fprintln(os.Stderr, "aigopt: aborting")
			os.Exit(130)
		}
	}()

	in, out := flag.Arg(0), flag.Arg(1)
	g, err := aiger.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	before := g.Stat()
	events.Log("opt_start", map[string]any{"in": in, "script": *script, "gates": g.NumAnds()})
	start := time.Now()
	og, err := runScript(ctx, g, *script, *seed, *flowTimeout, *selfcheck)
	if err != nil {
		fatal(err)
	}
	signal.Stop(sigc)
	close(sigc)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "aigopt: interrupted; writing the best AIG reached so far")
	}
	if *verify {
		if err := verifyEquiv(g, og); err != nil {
			fatal(err)
		}
	}
	final := og.Cleanup()
	if *selfcheck {
		// The emitted AIG must satisfy the strict invariants (including
		// no dangling nodes — Cleanup just guaranteed that).
		if err := final.CheckStrict(); err != nil {
			fatal(fmt.Errorf("selfcheck on final AIG: %w", err))
		}
	}
	if err := aiger.WriteFile(out, final); err != nil {
		fatal(err)
	}
	events.Log("opt_done", map[string]any{
		"out": out, "gates": og.NumAnds(), "seconds": time.Since(start).Seconds(),
		"interrupted": ctx.Err() != nil,
	})
	fmt.Printf("%s: %v\n%s: %v\n", in, before, out, og.Stat())
	if reg != nil {
		fmt.Fprintf(os.Stderr, "\n--- pass summary ---\n%s", reg.SummaryTable())
	}
	if eventsFile != nil {
		if err := events.Err(); err != nil {
			fatal(fmt.Errorf("writing events to %s: %w", *eventsPath, err))
		}
		if err := eventsFile.Close(); err != nil {
			fatal(fmt.Errorf("closing events file %s: %w", *eventsPath, err))
		}
	}
}

// runScript applies the script atoms left to right. Cancellation stops
// between atoms (and inside flow convergence loops); each flow atom
// additionally runs under its own wall-clock budget when flowTimeout is
// set. With selfcheck, the structural verifier runs after every atom so
// a pass that corrupts the graph is caught at the atom that did it.
func runScript(ctx context.Context, g *aig.AIG, script string, seed int64, flowTimeout time.Duration, selfcheck bool) (*aig.AIG, error) {
	flowCtx := func() (context.Context, context.CancelFunc) {
		if flowTimeout <= 0 {
			return ctx, func() {}
		}
		return context.WithTimeout(ctx, flowTimeout)
	}
	cur := g
	for _, atom := range strings.Split(script, ";") {
		if ctx.Err() != nil {
			return cur, nil
		}
		atom = strings.TrimSpace(atom)
		if atom == "" {
			continue
		}
		switch atom {
		case "b":
			cur = opt.Balance(cur)
		case "rw":
			cur = opt.RewriteOnce(cur, opt.RewriteOptions{})
		case "rwz":
			cur = opt.RewriteOnce(cur, opt.RewriteOptions{ZeroCost: true})
		case "rf":
			cur = opt.RefactorOnce(cur, opt.RefactorOptions{})
		case "rfz":
			cur = opt.RefactorOnce(cur, opt.RefactorOptions{ZeroCost: true})
		case "rs":
			cur = opt.ResubOnce(cur, opt.ResubOptions{})
		case "rsz":
			cur = opt.ResubOnce(cur, opt.ResubOptions{ZeroCost: true})
		case "lut4":
			cur = lutmap.RoundTrip(cur, lutmap.Options{K: 4})
		case "lut6":
			cur = lutmap.RoundTrip(cur, lutmap.Options{K: 6})
		case "compress":
			fctx, cancel := flowCtx()
			cur = opt.CompressToConvergence(fctx, cur)
			cancel()
		default:
			fctx, cancel := flowCtx()
			ng, err := opt.RunFlowContext(fctx, atom, cur, seed)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("unknown script atom %q", atom)
			}
			cur = ng
		}
		if selfcheck {
			if err := cur.Check(); err != nil {
				return nil, fmt.Errorf("selfcheck after %q: %w", atom, err)
			}
		}
	}
	return cur, nil
}

func verifyEquiv(a, b *aig.AIG) error {
	if a.NumPIs() <= 16 {
		idx, err := aig.Equivalent(a, b)
		if err != nil {
			return err
		}
		if idx != -1 {
			return fmt.Errorf("VERIFICATION FAILED: output %d differs", idx)
		}
		return nil
	}
	r := newRand()
	idx, err := aig.RandomSimCheck(a, b, 256, r)
	if err != nil {
		return err
	}
	if idx != -1 {
		return fmt.Errorf("VERIFICATION FAILED: output %d differs", idx)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aigopt:", err)
	os.Exit(1)
}
