package main

import "math/rand"

// newRand returns the deterministic source used for large-design
// verification (reproducible runs beat cryptographic randomness here).
func newRand() *rand.Rand { return rand.New(rand.NewSource(0x5EED)) }
