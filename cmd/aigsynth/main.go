// Command aigsynth synthesizes AIGs from truth-table specifications with
// any of the seven recipes, or with all of them for a diversity report.
//
// Usage:
//
//	aigsynth -n 3 -tt e8,96 -recipe bdd out.aag     synthesize maj3+xor3
//	aigsynth -n 3 -tt e8 -compare                   size report, all recipes
//	aigsynth -spec fulladder -recipe fx out.aag     from the benchmark suite
//	aigsynth -suite-dir corpus/ -limit 128          suite×recipes corpus files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/aiger"
	"repro/internal/synth"
	"repro/internal/tt"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 0, "number of inputs (with -tt)")
	hexTTs := flag.String("tt", "", "comma-separated hex truth tables, one per output")
	specName := flag.String("spec", "", "benchmark-suite spec name (alternative to -tt)")
	recipe := flag.String("recipe", "fx", "synthesis recipe")
	compare := flag.Bool("compare", false, "print per-recipe size/depth instead of writing a file")
	seed := flag.Int64("seed", 2024, "suite seed (with -spec or -suite-dir)")
	suiteDir := flag.String("suite-dir", "", "write the whole suite × recipes corpus as AIGER files into DIR")
	limit := flag.Int("limit", 0, "max corpus files to write in -suite-dir mode (0 = all)")
	flag.Parse()

	if *suiteDir != "" {
		if err := writeCorpus(*suiteDir, *seed, *limit); err != nil {
			fatal(err)
		}
		return
	}

	var spec []tt.TT
	switch {
	case *hexTTs != "":
		if *n <= 0 {
			fatal(fmt.Errorf("-tt requires -n"))
		}
		for _, h := range strings.Split(*hexTTs, ",") {
			f, err := tt.ParseHex(*n, strings.TrimSpace(h))
			if err != nil {
				fatal(err)
			}
			spec = append(spec, f)
		}
	case *specName != "":
		for _, s := range workload.Suite(*seed) {
			if s.Name == *specName {
				spec = s.Outputs
				break
			}
		}
		if spec == nil {
			fatal(fmt.Errorf("unknown spec %q (see the workload package for names)", *specName))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: aigsynth (-tt HEX[,HEX...] -n N | -spec NAME) [-recipe R | -compare] [out.aag]")
		os.Exit(2)
	}

	if *compare {
		fmt.Printf("%-10s %8s %8s\n", "recipe", "ands", "levels")
		for _, r := range synth.Recipes() {
			g := r.Build(spec)
			fmt.Printf("%-10s %8d %8d\n", r.Name, g.NumAnds(), g.NumLevels())
		}
		return
	}

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("output file required (or use -compare)"))
	}
	g, err := synth.Synthesize(*recipe, spec)
	if err != nil {
		fatal(err)
	}
	if err := aiger.WriteFile(flag.Arg(0), g); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %v\n", flag.Arg(0), g.Stat())
}

// writeCorpus materializes the benchmark suite crossed with every
// synthesis recipe as one AIGER file per (spec, recipe), up to limit
// files — the corpus-generation mode smoke tests and retrieval
// benchmarks feed from. File order is deterministic: suite order,
// recipes within a spec.
func writeCorpus(dir string, seed int64, limit int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	written := 0
	for _, s := range workload.Suite(seed) {
		for _, r := range synth.Recipes() {
			if limit > 0 && written >= limit {
				fmt.Printf("%s: %d files\n", dir, written)
				return nil
			}
			g := r.Build(s.Outputs)
			name := fmt.Sprintf("%s__%s.aag", s.Name, r.Name)
			if err := aiger.WriteFile(filepath.Join(dir, name), g); err != nil {
				return err
			}
			written++
		}
	}
	fmt.Printf("%s: %d files\n", dir, written)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aigsynth:", err)
	os.Exit(1)
}
