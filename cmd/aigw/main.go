// Command aigw is the cluster gateway CLI: it routes requests to a
// clustered aigd deployment client-side along the same consistent-hash
// ring the cluster uses, so calls land directly on the node that owns
// (or has cached) the answer, with automatic failover to replicas.
//
// Usage:
//
//	aigw -peers ID=URL,ID=URL,... [-replication R] [-vnodes N]
//	     [-timeout DUR] <command> [args]
//
// Commands:
//
//	submit FILE         upload an AIGER file (round-robin with failover),
//	                    print its content-addressed view
//	metrics FPA FPB [M1,M2,...]
//	                    score a stored pair (routed to its ring owner),
//	                    print the scores as JSON
//	neighbors FP [-k K] [-metric M] [-exact] [-budget N]
//	                    k-NN query for a stored fingerprint (routed to
//	                    its ring owners), print the ranked neighbors
//	diverse [-k K] [-metric M] [FP ...]
//	                    greedy max-min diverse subset over the given
//	                    pool (or the receiving node's whole corpus)
//	route FPA FPB       print the pair's owner node IDs, one per line,
//	                    in preference order (no request is made)
//	health              probe every node once; print per-node status
//	                    (sorted by node ID — stable for diffing)
//	status              print every node's membership epoch, lifecycle
//	                    state, handoff progress, and per-peer health
//	drain NODE          ask NODE to drain (leave routing, pre-copy its
//	                    keys) and wait for its handoff to finish
//	join ID=URL         admit a new member: propose the grown
//	                    membership at the next epoch to every current
//	                    member and wait for the cluster to install it
//	reconfigure         propose the -peers list as the membership at
//	                    the next epoch (use after editing the peer set;
//	                    removed nodes should be drained first)
//
// The flags mirror the cluster's own -peers/-replication/-vnodes and
// must match them: ring agreement between gateway and cluster is what
// makes client-side routing land on the right node. The membership
// flags only seed the gateway — a cluster that has moved to a newer
// epoch teaches the gateway its current membership on first contact
// (structured 409 + automatic re-resolution).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/service/client"
)

func main() {
	os.Exit(run())
}

func run() int {
	peersSpec := flag.String("peers", "", "cluster membership as ID=URL,ID=URL,... (required)")
	replication := flag.Int("replication", 0, "owners per ring key, must match the cluster (0 = 2)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member, must match the cluster (0 = 64)")
	timeout := flag.Duration("timeout", 30*time.Second, "overall budget per command")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "aigw: need a command: submit | metrics | neighbors | diverse | route | health | status | drain | join | reconfigure")
		return 2
	}

	peers := make(map[string]string)
	for _, part := range strings.Split(*peersSpec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			fmt.Fprintf(os.Stderr, "aigw: bad -peers entry %q (want ID=URL)\n", part)
			return 2
		}
		peers[id] = url
	}
	g, err := client.NewGateway(client.GatewayConfig{
		Peers:       peers,
		Replication: *replication,
		VNodes:      *vnodes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigw:", err)
		return 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		if len(rest) != 1 {
			fmt.Fprintln(os.Stderr, "aigw: usage: submit FILE")
			return 2
		}
		payload, err := os.ReadFile(rest[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		v, err := g.SubmitAIG(ctx, payload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		return printJSON(v)
	case "metrics":
		if len(rest) < 2 || len(rest) > 3 {
			fmt.Fprintln(os.Stderr, "aigw: usage: metrics FPA FPB [M1,M2,...]")
			return 2
		}
		var names []string
		if len(rest) == 3 {
			names = strings.Split(rest[2], ",")
		}
		scores, err := g.Metrics(ctx, rest[0], rest[1], names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		return printJSON(scores)
	case "neighbors":
		fs := flag.NewFlagSet("neighbors", flag.ContinueOnError)
		k := fs.Int("k", 0, "neighbors to return (0 = server default)")
		metric := fs.String("metric", "", "similarity metric (default WLKernel)")
		exact := fs.Bool("exact", false, "force the exact full-corpus scan")
		budget := fs.Int("budget", 0, "sketch candidate budget (0 = server default)")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "aigw: usage: neighbors [-k K] [-metric M] [-exact] [-budget N] FP")
			return 2
		}
		resp, err := g.Neighbors(ctx, fs.Arg(0), client.NeighborsOptions{
			K: *k, Metric: *metric, Exact: *exact, Budget: *budget,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		return printJSON(resp)
	case "diverse":
		fs := flag.NewFlagSet("diverse", flag.ContinueOnError)
		k := fs.Int("k", 4, "subset size")
		metric := fs.String("metric", "", "similarity metric (default WLKernel)")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		resp, err := g.DiverseSubset(ctx, fs.Args(), *k, *metric)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		return printJSON(resp)
	case "route":
		if len(rest) != 2 {
			fmt.Fprintln(os.Stderr, "aigw: usage: route FPA FPB")
			return 2
		}
		for _, id := range g.PairOwners(rest[0], rest[1]) {
			fmt.Println(id)
		}
		return 0
	case "health":
		return printHealth(os.Stdout, g.Members(), g.Healthz(ctx))
	case "status":
		views, errs := g.Statuses(ctx)
		return printStatus(os.Stdout, g.Members(), views, errs)
	case "drain":
		if len(rest) != 1 {
			fmt.Fprintln(os.Stderr, "aigw: usage: drain NODE")
			return 2
		}
		return runDrain(ctx, g, rest[0])
	case "join":
		if len(rest) != 1 || !strings.Contains(rest[0], "=") {
			fmt.Fprintln(os.Stderr, "aigw: usage: join ID=URL")
			return 2
		}
		id, url, _ := strings.Cut(rest[0], "=")
		return runJoin(ctx, g, id, url)
	case "reconfigure":
		return runReconfigure(ctx, g, peers)
	default:
		fmt.Fprintf(os.Stderr, "aigw: unknown command %q\n", cmd)
		return 2
	}
}

// printHealth emits the per-node probe outcome sorted by node ID —
// byte-stable output for operators diffing successive runs (the
// determinism lint pins this emission path).
func printHealth(w io.Writer, members []string, status map[string]error) int {
	ids := append([]string(nil), members...)
	sort.Strings(ids)
	code := 0
	for _, id := range ids {
		if err := status[id]; err != nil {
			fmt.Fprintf(w, "%s down: %v\n", id, err)
			code = 1
		} else {
			fmt.Fprintf(w, "%s ok\n", id)
		}
	}
	return code
}

// printStatus emits every node's membership/handoff status sorted by
// node ID, with sorted member and breaker lists — same determinism
// contract as printHealth.
func printStatus(w io.Writer, members []string, views map[string]client.StatusView, errs map[string]error) int {
	ids := append([]string(nil), members...)
	sort.Strings(ids)
	code := 0
	for _, id := range ids {
		if err := errs[id]; err != nil {
			fmt.Fprintf(w, "%s unreachable: %v\n", id, err)
			code = 1
			continue
		}
		v := views[id]
		handoff := "idle"
		if v.Handoff.Active {
			handoff = "active"
		}
		fmt.Fprintf(w, "%s epoch=%d state=%s handoff=%s(%d/%d sent, %d failed)",
			id, v.Epoch, v.State, handoff, v.Handoff.Sent, v.Handoff.Total, v.Handoff.Failed)
		down := append([]string(nil), v.Down...)
		sort.Strings(down)
		if len(down) > 0 {
			fmt.Fprintf(w, " down=%s", strings.Join(down, ","))
		}
		if len(v.Breakers) > 0 {
			peers := make([]string, 0, len(v.Breakers))
			for p := range v.Breakers {
				peers = append(peers, p)
			}
			sort.Strings(peers)
			parts := make([]string, 0, len(peers))
			for _, p := range peers {
				eps := append([]string(nil), v.Breakers[p]...)
				sort.Strings(eps)
				parts = append(parts, p+":"+strings.Join(eps, "+"))
			}
			fmt.Fprintf(w, " breakers=%s", strings.Join(parts, ","))
		}
		fmt.Fprintln(w)
	}
	return code
}

// runDrain asks one node to drain and waits for its handoff to
// complete (Active flips false once the pre-copy is done).
func runDrain(ctx context.Context, g *client.Gateway, node string) int {
	c, ok := g.Client(node)
	if !ok {
		fmt.Fprintf(os.Stderr, "aigw: unknown node %q\n", node)
		return 2
	}
	if _, err := c.ClusterDrain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "aigw:", err)
		return 1
	}
	fmt.Printf("%s draining\n", node)
	for {
		sv, err := c.ClusterStatus(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw: polling drain:", err)
			return 1
		}
		if sv.State == "draining" && !sv.Handoff.Active {
			fmt.Printf("%s drained: %d/%d keys handed off, %d failed\n",
				node, sv.Handoff.Sent, sv.Handoff.Total, sv.Handoff.Failed)
			return 0
		}
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "aigw: drain wait:", ctx.Err())
			return 1
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// clusterEpochCeiling asks every member for its status and returns the
// highest installed epoch plus the union membership view.
func clusterEpochCeiling(ctx context.Context, g *client.Gateway) (uint64, map[string]string, error) {
	views, errs := g.Statuses(ctx)
	if len(views) == 0 {
		for id, err := range errs {
			return 0, nil, fmt.Errorf("no member reachable (%s: %w)", id, err)
		}
		return 0, nil, fmt.Errorf("no members")
	}
	var epoch uint64
	members := make(map[string]string)
	for _, v := range views {
		if v.Epoch > epoch {
			epoch = v.Epoch
			// The highest epoch's membership view wins — lower-epoch
			// members converge to it.
			members = make(map[string]string)
			for id, url := range v.Members {
				members[id] = url
			}
		}
	}
	return epoch, members, nil
}

// proposeToAll posts a reconfigure request to each listed member (IDs
// resolved through the gateway, so it must be seeded with the current
// membership). Every old member runs its own handoff plan; the primary
// -alive-sender rule keeps the streams disjoint.
func proposeToAll(ctx context.Context, g *client.Gateway, ids []string, req client.ReconfigureRequest) int {
	admitted := 0
	for _, id := range ids {
		c, ok := g.Client(id)
		if !ok {
			continue
		}
		if _, err := c.ClusterReconfigure(ctx, req); err != nil {
			fmt.Fprintf(os.Stderr, "aigw: %s refused: %v\n", id, err)
			continue
		}
		admitted++
	}
	if admitted == 0 {
		fmt.Fprintln(os.Stderr, "aigw: no member admitted the proposal")
		return 1
	}
	// Wait until every surviving proposer installed the epoch.
	for {
		done := true
		for _, id := range ids {
			c, ok := g.Client(id)
			if !ok {
				continue
			}
			sv, err := c.ClusterStatus(ctx)
			if err != nil || (sv.Epoch < req.Epoch && sv.State != "draining") {
				done = false
				break
			}
		}
		if done {
			fmt.Printf("epoch %d installed on %d members\n", req.Epoch, admitted)
			return 0
		}
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "aigw: waiting for epoch install:", ctx.Err())
			return 1
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// runJoin admits one new member: grow the highest-epoch membership
// view by the new node, propose it (with the node listed as Joining,
// so it receives a full backfill of every key it owns) to every
// current member, and wait for the install.
func runJoin(ctx context.Context, g *client.Gateway, id, url string) int {
	epoch, members, err := clusterEpochCeiling(ctx, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigw:", err)
		return 1
	}
	if _, exists := members[id]; exists {
		fmt.Fprintf(os.Stderr, "aigw: %s is already a member (rejoin still backfills it)\n", id)
	}
	next := make(map[string]string, len(members)+1)
	oldIDs := make([]string, 0, len(members))
	for m, u := range members {
		next[m] = u
		if m != id {
			oldIDs = append(oldIDs, m)
		}
	}
	next[id] = url
	sort.Strings(oldIDs)
	req := client.ReconfigureRequest{Epoch: epoch + 1, Peers: next, Joining: []string{id}}
	fmt.Printf("admitting %s at epoch %d (%d members)\n", id, req.Epoch, len(next))
	return proposeToAll(ctx, g, oldIDs, req)
}

// runReconfigure proposes the gateway's -peers list as the next
// membership. Members present in the proposal but absent from the
// cluster's current view are treated as joining (full backfill).
func runReconfigure(ctx context.Context, g *client.Gateway, peers map[string]string) int {
	epoch, cur, err := clusterEpochCeiling(ctx, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigw:", err)
		return 1
	}
	var joining, proposers []string
	for id := range peers {
		if _, ok := cur[id]; !ok {
			joining = append(joining, id)
		} else {
			proposers = append(proposers, id)
		}
	}
	sort.Strings(joining)
	sort.Strings(proposers)
	if len(proposers) == 0 {
		fmt.Fprintln(os.Stderr, "aigw: the proposed membership shares no member with the cluster")
		return 1
	}
	req := client.ReconfigureRequest{Epoch: epoch + 1, Peers: peers, Joining: joining}
	fmt.Printf("proposing epoch %d with %d members (%d joining)\n", req.Epoch, len(peers), len(joining))
	return proposeToAll(ctx, g, proposers, req)
}

func printJSON(v any) int {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "aigw:", err)
		return 1
	}
	return 0
}
