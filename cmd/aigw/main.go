// Command aigw is the cluster gateway CLI: it routes requests to a
// clustered aigd deployment client-side along the same consistent-hash
// ring the cluster uses, so calls land directly on the node that owns
// (or has cached) the answer, with automatic failover to replicas.
//
// Usage:
//
//	aigw -peers ID=URL,ID=URL,... [-replication R] [-vnodes N]
//	     [-timeout DUR] <command> [args]
//
// Commands:
//
//	submit FILE         upload an AIGER file (round-robin with failover),
//	                    print its content-addressed view
//	metrics FPA FPB [M1,M2,...]
//	                    score a stored pair (routed to its ring owner),
//	                    print the scores as JSON
//	neighbors FP [-k K] [-metric M] [-exact] [-budget N]
//	                    k-NN query for a stored fingerprint (routed to
//	                    its ring owners), print the ranked neighbors
//	diverse [-k K] [-metric M] [FP ...]
//	                    greedy max-min diverse subset over the given
//	                    pool (or the receiving node's whole corpus)
//	route FPA FPB       print the pair's owner node IDs, one per line,
//	                    in preference order (no request is made)
//	health              probe every node once; print per-node status
//
// The flags mirror the cluster's own -peers/-replication/-vnodes and
// must match them: ring agreement between gateway and cluster is what
// makes client-side routing land on the right node.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/service/client"
)

func main() {
	os.Exit(run())
}

func run() int {
	peersSpec := flag.String("peers", "", "cluster membership as ID=URL,ID=URL,... (required)")
	replication := flag.Int("replication", 0, "owners per ring key, must match the cluster (0 = 2)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member, must match the cluster (0 = 64)")
	timeout := flag.Duration("timeout", 30*time.Second, "overall budget per command")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "aigw: need a command: submit | metrics | neighbors | diverse | route | health")
		return 2
	}

	peers := make(map[string]string)
	for _, part := range strings.Split(*peersSpec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			fmt.Fprintf(os.Stderr, "aigw: bad -peers entry %q (want ID=URL)\n", part)
			return 2
		}
		peers[id] = url
	}
	g, err := client.NewGateway(client.GatewayConfig{
		Peers:       peers,
		Replication: *replication,
		VNodes:      *vnodes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigw:", err)
		return 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		if len(rest) != 1 {
			fmt.Fprintln(os.Stderr, "aigw: usage: submit FILE")
			return 2
		}
		payload, err := os.ReadFile(rest[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		v, err := g.SubmitAIG(ctx, payload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		return printJSON(v)
	case "metrics":
		if len(rest) < 2 || len(rest) > 3 {
			fmt.Fprintln(os.Stderr, "aigw: usage: metrics FPA FPB [M1,M2,...]")
			return 2
		}
		var names []string
		if len(rest) == 3 {
			names = strings.Split(rest[2], ",")
		}
		scores, err := g.Metrics(ctx, rest[0], rest[1], names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		return printJSON(scores)
	case "neighbors":
		fs := flag.NewFlagSet("neighbors", flag.ContinueOnError)
		k := fs.Int("k", 0, "neighbors to return (0 = server default)")
		metric := fs.String("metric", "", "similarity metric (default WLKernel)")
		exact := fs.Bool("exact", false, "force the exact full-corpus scan")
		budget := fs.Int("budget", 0, "sketch candidate budget (0 = server default)")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "aigw: usage: neighbors [-k K] [-metric M] [-exact] [-budget N] FP")
			return 2
		}
		resp, err := g.Neighbors(ctx, fs.Arg(0), client.NeighborsOptions{
			K: *k, Metric: *metric, Exact: *exact, Budget: *budget,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		return printJSON(resp)
	case "diverse":
		fs := flag.NewFlagSet("diverse", flag.ContinueOnError)
		k := fs.Int("k", 4, "subset size")
		metric := fs.String("metric", "", "similarity metric (default WLKernel)")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		resp, err := g.DiverseSubset(ctx, fs.Args(), *k, *metric)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigw:", err)
			return 1
		}
		return printJSON(resp)
	case "route":
		if len(rest) != 2 {
			fmt.Fprintln(os.Stderr, "aigw: usage: route FPA FPB")
			return 2
		}
		for _, id := range g.PairOwners(rest[0], rest[1]) {
			fmt.Println(id)
		}
		return 0
	case "health":
		code := 0
		status := g.Healthz(ctx)
		for _, id := range g.Members() {
			if err := status[id]; err != nil {
				fmt.Printf("%s down: %v\n", id, err)
				code = 1
			} else {
				fmt.Printf("%s ok\n", id)
			}
		}
		return code
	default:
		fmt.Fprintf(os.Stderr, "aigw: unknown command %q\n", cmd)
		return 2
	}
}

func printJSON(v any) int {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "aigw:", err)
		return 1
	}
	return 0
}
