// Command aigstat prints statistics for AIGER files: input/output
// counts, AND nodes, logic levels, and optionally the single-step
// optimization reduction vector used by the RRR Score.
//
// Usage:
//
//	aigstat [-reductions] file.aag [file2.aig ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/aiger"
	"repro/internal/simil"
	"repro/internal/tt"
)

func main() {
	reductions := flag.Bool("reductions", false, "also print single-step rewrite/refactor/resub reductions")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: aigstat [-reductions] file.aag ...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		g, err := aiger.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigstat:", err)
			exit = 1
			continue
		}
		if *dot {
			if err := g.WriteDot(os.Stdout, path); err != nil {
				fmt.Fprintln(os.Stderr, "aigstat:", err)
				exit = 1
			}
			continue
		}
		fmt.Printf("%-30s %s\n", path, g.Stat())
		if *reductions {
			if g.NumPIs() > tt.MaxVars {
				fmt.Printf("%-30s reductions unavailable (> %d inputs)\n", "", tt.MaxVars)
				continue
			}
			red := simil.OptReductions(g)
			fmt.Printf("%-30s rw=%.4f rf=%.4f rs=%.4f\n", "", red[0], red[1], red[2])
		}
	}
	os.Exit(exit)
}
