// Command aigd runs the diversity-as-a-service daemon: a long-running
// HTTP/JSON server over the similarity framework with content-addressed
// AIG storage, cached pairwise scoring, async optimization jobs, and
// sketch-indexed retrieval — every stored structure is MinHash/SimHash
// signed and band-indexed on intern, so /v1/neighbors (k-NN by any
// metric) and /v1/diverse-subset (greedy max-min selection) answer in
// sub-quadratic time, and /v1/metrics/batch prunes oversized batches
// through band collisions (see README "Similarity at scale").
//
// Usage:
//
//	aigd [-addr :8347] [-workers N] [-queue-depth N] [-cache-entries N]
//	     [-store-entries N] [-spill-dir DIR] [-spill-threshold BYTES]
//	     [-drain-timeout DUR] [-events FILE] [-trace] [-trace-entries N]
//	     [-trace-slow N] [-trace-sample RATE] [-slo DUR]
//	     [-node-id ID -peers ID=URL,... | -peers-file FILE]
//	     [-cluster-epoch N] [-join] [-replication R]
//	     [-vnodes N] [-probe-interval DUR] [-peer-timeout DUR]
//
// The API is mounted alongside the telemetry endpoints (/metrics,
// /debug/vars, /debug/pprof). -trace turns on end-to-end request
// tracing: every request runs under a W3C traceparent-propagated trace,
// retained traces are served on /v1/debug/traces, and per-endpoint RED
// metrics (with -slo breach counters) appear on /metrics. -events
// appends the structured JSONL access/event log to FILE. On SIGTERM or
// SIGINT the daemon stops admitting work, drains in-flight jobs for up
// to -drain-timeout, then exits.
//
// -node-id plus -peers (or -peers-file) turn the daemon into one
// member of a cluster (see internal/cluster): fingerprints are routed
// on a consistent-hash ring with -replication owners per key,
// result-cache misses are filled from the owning peer, and per-peer
// health probes evict dead peers from routing until they recover. The
// seed peer list must agree across members and include this node's own
// ID; afterwards membership is dynamic:
//
//   - SIGHUP re-reads -peers-file and proposes the new membership at
//     the next epoch — moved keys are streamed to their new owners
//     before the routing table switches, so config reload never needs
//     a restart (send the signal to every member).
//   - SIGUSR1 (or POST /v1/cluster/drain) drains the node: it leaves
//     routing immediately, pre-copies its owned keys to their
//     successors, and keeps answering peers until the copy is done.
//   - -join boots the node as a new member entering an existing
//     cluster at -cluster-epoch: receiving-only until the old members
//     finish backfilling it (drive the flow with `aigw join`).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// parsePeers parses the -peers spec: "n1=http://h1:8347,n2=http://h2:8347".
func parsePeers(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("cluster mode needs -peers (ID=URL,ID=URL,...)")
	}
	peers := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("entry %q is not ID=URL", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate member ID %q", id)
		}
		peers[id] = url
	}
	return peers, nil
}

// parsePeersFile reads a membership file: one ID=URL per line (commas
// work too), blank lines and #-comments ignored. The same file drives
// boot and SIGHUP reload, so membership changes are an edit plus a
// signal, not a restart.
func parsePeersFile(path string) (map[string]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	return parsePeers(strings.Join(entries, ","))
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "worker queue depth (0 = 4x workers)")
	cacheEntries := flag.Int("cache-entries", 0, "pairwise result cache capacity (0 = 65536)")
	storeEntries := flag.Int("store-entries", 0, "content-addressed AIG store capacity (0 = 4096)")
	spillDir := flag.String("spill-dir", "", "directory for oversized job results (empty = keep in memory)")
	spillThreshold := flag.Int("spill-threshold", 0, "spill job results larger than this many bytes (0 = 256 KiB)")
	drainTimeout := flag.Duration("drain-timeout", service.DrainTimeoutDefault, "how long to wait for in-flight jobs on shutdown")
	faults := flag.String("faults", os.Getenv(faultinject.EnvVar), "fault-injection spec (chaos testing; see internal/faultinject)")
	events := flag.String("events", "", "append structured JSONL access/event log to this file")
	traceOn := flag.Bool("trace", false, "enable end-to-end request tracing (/v1/debug/traces)")
	traceEntries := flag.Int("trace-entries", 0, "retained trace capacity (0 = 2048)")
	traceSlow := flag.Int("trace-slow", 0, "always keep the N slowest traces (0 = 64)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of unremarkable traces to keep (0 = 0.1)")
	slo := flag.Duration("slo", 0, "per-endpoint latency SLO for RED breach counters (0 = 500ms)")
	nodeID := flag.String("node-id", "", "cluster member ID (requires -peers or -peers-file)")
	peersSpec := flag.String("peers", "", "cluster membership as ID=URL,ID=URL,... (must include -node-id)")
	peersFile := flag.String("peers-file", "", "cluster membership file (one ID=URL per line; SIGHUP re-reads it and reconfigures without restart)")
	clusterEpoch := flag.Uint64("cluster-epoch", 0, "membership epoch the peer list corresponds to (0 = 1; set when rejoining an advanced cluster)")
	join := flag.Bool("join", false, "boot as a new member entering an existing cluster: receiving-only until backfill completes")
	replication := flag.Int("replication", 0, "owners per ring key (0 = 2)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member (0 = 64)")
	probeInterval := flag.Duration("probe-interval", 0, "peer health probe cadence (0 = 500ms)")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-attempt timeout on peer calls (0 = 2s)")
	flag.Parse()

	if *faults != "" {
		if err := faultinject.ArmFromSpec(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "aigd: bad -faults spec:", err)
			return 2
		}
		faultinject.Enable()
		fmt.Fprintf(os.Stderr, "aigd: fault injection armed: %s\n", *faults)
	}

	reg := telemetry.Enable()

	var tstore *trace.Store
	if *traceOn {
		tstore = trace.NewStore(trace.StoreConfig{
			Capacity:   *traceEntries,
			SlowKeep:   *traceSlow,
			SampleRate: *traceSample,
		})
		trace.SetCollector(tstore)
		fmt.Fprintln(os.Stderr, "aigd: request tracing enabled")
	}

	var evlog *telemetry.EventLogger
	var evfile *os.File
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigd: opening -events file:", err)
			return 1
		}
		evfile = f
		evlog = telemetry.NewEventLogger(f)
	}

	svc := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		StoreEntries: *storeEntries,
		SpillDir:     *spillDir,
		SpillBytes:   *spillThreshold,
		Trace:        tstore,
		Events:       evlog,
		SLOTarget:    *slo,
	})

	var node *cluster.Node
	apiHandler := svc.Handler()
	if *nodeID != "" || *peersSpec != "" || *peersFile != "" {
		var peers map[string]string
		var err error
		switch {
		case *peersSpec != "" && *peersFile != "":
			fmt.Fprintln(os.Stderr, "aigd: -peers and -peers-file are mutually exclusive")
			return 2
		case *peersFile != "":
			if peers, err = parsePeersFile(*peersFile); err != nil {
				fmt.Fprintln(os.Stderr, "aigd: bad -peers-file:", err)
				return 2
			}
		default:
			if peers, err = parsePeers(*peersSpec); err != nil {
				fmt.Fprintln(os.Stderr, "aigd: bad -peers:", err)
				return 2
			}
		}
		node, err = cluster.New(svc, cluster.Config{
			NodeID:             *nodeID,
			Peers:              peers,
			Epoch:              *clusterEpoch,
			Join:               *join,
			Replication:        *replication,
			VNodes:             *vnodes,
			ProbeInterval:      *probeInterval,
			PeerAttemptTimeout: *peerTimeout,
			Events:             evlog,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigd:", err)
			return 2
		}
		apiHandler = node.Handler()
		mode := "member"
		if *join {
			mode = "joining member"
		}
		fmt.Fprintf(os.Stderr, "aigd: cluster mode: %s %s of %d (epoch %d)\n",
			mode, *nodeID, len(peers), node.Epoch())
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/", reg.Handler())
	mux.Handle("/", apiHandler)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigd:", err)
		return 1
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "aigd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if node != nil {
		opsig := make(chan os.Signal, 2)
		signal.Notify(opsig, syscall.SIGHUP, syscall.SIGUSR1)
		defer signal.Stop(opsig)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case sig := <-opsig:
					switch sig {
					case syscall.SIGUSR1:
						// Operator-initiated drain: leave routing, pre-copy
						// owned keys, keep answering peers until empty.
						if err := node.StartDrain(); err != nil {
							fmt.Fprintln(os.Stderr, "aigd: drain:", err)
							continue
						}
						fmt.Fprintln(os.Stderr, "aigd: draining (SIGUSR1): left routing, handing off owned keys")
					case syscall.SIGHUP:
						// Config reload without restart: re-read the
						// membership file and propose it at the next epoch.
						if *peersFile == "" {
							fmt.Fprintln(os.Stderr, "aigd: SIGHUP ignored: no -peers-file to reload")
							continue
						}
						peers, err := parsePeersFile(*peersFile)
						if err != nil {
							fmt.Fprintln(os.Stderr, "aigd: reload:", err)
							continue
						}
						cur := node.Status().Members
						var joining []string
						for id := range peers {
							if _, ok := cur[id]; !ok {
								joining = append(joining, id)
							}
						}
						req := client.ReconfigureRequest{
							Epoch:   node.Epoch() + 1,
							Peers:   peers,
							Joining: joining,
						}
						if err := node.Reconfigure(req); err != nil {
							fmt.Fprintln(os.Stderr, "aigd: reconfigure:", err)
							continue
						}
						fmt.Fprintf(os.Stderr, "aigd: reconfiguring to epoch %d with %d members (%d joining)\n",
							req.Epoch, len(peers), len(joining))
					}
				}
			}
		}()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "aigd:", err)
		return 1
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintf(os.Stderr, "aigd: draining (budget %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "aigd: drain incomplete:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		_ = srv.Close()
	}
	if node != nil {
		node.Close()
	}
	svc.Close()
	if evfile != nil {
		// A torn or failed event-log write is a degraded run, not a
		// silent one: surface it in the exit status.
		code := 0
		if err := evlog.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "aigd: event log degraded:", err)
			code = 1
		}
		if err := evfile.Close(); err != nil && code == 0 {
			fmt.Fprintln(os.Stderr, "aigd: closing event log:", err)
			code = 1
		}
		if code != 0 {
			return code
		}
	}
	fmt.Fprintln(os.Stderr, "aigd: bye")
	return 0
}
