// Command aigd runs the diversity-as-a-service daemon: a long-running
// HTTP/JSON server over the similarity framework with content-addressed
// AIG storage, cached pairwise scoring, and async optimization jobs.
//
// Usage:
//
//	aigd [-addr :8347] [-workers N] [-queue-depth N] [-cache-entries N]
//	     [-store-entries N] [-spill-dir DIR] [-spill-threshold BYTES]
//	     [-drain-timeout DUR]
//
// The API is mounted alongside the telemetry endpoints (/metrics,
// /debug/vars, /debug/pprof). On SIGTERM or SIGINT the daemon stops
// admitting work, drains in-flight jobs for up to -drain-timeout, then
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "worker queue depth (0 = 4x workers)")
	cacheEntries := flag.Int("cache-entries", 0, "pairwise result cache capacity (0 = 65536)")
	storeEntries := flag.Int("store-entries", 0, "content-addressed AIG store capacity (0 = 4096)")
	spillDir := flag.String("spill-dir", "", "directory for oversized job results (empty = keep in memory)")
	spillThreshold := flag.Int("spill-threshold", 0, "spill job results larger than this many bytes (0 = 256 KiB)")
	drainTimeout := flag.Duration("drain-timeout", service.DrainTimeoutDefault, "how long to wait for in-flight jobs on shutdown")
	faults := flag.String("faults", os.Getenv(faultinject.EnvVar), "fault-injection spec (chaos testing; see internal/faultinject)")
	flag.Parse()

	if *faults != "" {
		if err := faultinject.ArmFromSpec(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "aigd: bad -faults spec:", err)
			return 2
		}
		faultinject.Enable()
		fmt.Fprintf(os.Stderr, "aigd: fault injection armed: %s\n", *faults)
	}

	reg := telemetry.Enable()
	svc := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		StoreEntries: *storeEntries,
		SpillDir:     *spillDir,
		SpillBytes:   *spillThreshold,
	})

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/", reg.Handler())
	mux.Handle("/", svc.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigd:", err)
		return 1
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "aigd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "aigd:", err)
		return 1
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintf(os.Stderr, "aigd: draining (budget %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "aigd: drain incomplete:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		_ = srv.Close()
	}
	svc.Close()
	fmt.Fprintln(os.Stderr, "aigd: bye")
	return 0
}
