// Command similarity computes the paper's pairwise dissimilarity metrics
// between two functionally equivalent AIGER files: the four traditional
// graph measures and the six AIG-specific scores, and optionally the ROD
// under each optimization flow.
//
// Usage:
//
//	similarity a.aag b.aag
//	similarity -rod a.aag b.aag     also optimize both and report ROD
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/opt"
	"repro/internal/simil"
)

func main() {
	rod := flag.Bool("rod", false, "also compute the Relative Optimizability Difference per flow")
	extended := flag.Bool("extended", false, "also compute the expensive extended metrics (DeltaCon, approximate GED)")
	seed := flag.Int64("seed", 1, "seed for randomized flows")
	checkEquiv := flag.Bool("check", true, "verify the two AIGs are functionally equivalent first")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: similarity [-rod] a.aag b.aag")
		os.Exit(2)
	}
	a, err := aiger.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := aiger.ReadFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if *checkEquiv && a.NumPIs() <= 16 && a.NumPIs() == b.NumPIs() && a.NumPOs() == b.NumPOs() {
		if idx, _ := aig.Equivalent(a, b); idx != -1 {
			fmt.Fprintf(os.Stderr, "warning: AIGs differ on output %d; metrics assume functional equivalence\n", idx)
		}
	}

	fmt.Printf("%-30s %v\n%-30s %v\n\n", flag.Arg(0), a.Stat(), flag.Arg(1), b.Stat())
	pa := simil.NewProfile(a, simil.ProfileOptions{Seed: 1})
	pb := simil.NewProfile(b, simil.ProfileOptions{Seed: 2})
	fmt.Printf("%-16s %10s   %s\n", "metric", "value", "direction")
	for _, m := range simil.Metrics() {
		dir := "higher = more different"
		if m.HigherIsSimilar {
			dir = "higher = more similar"
		}
		fmt.Printf("%-16s %10.4f   %s\n", m.Name, m.Compute(pa, pb), dir)
	}

	if *extended {
		ea, eb := simil.NewExtendedProfile(pa), simil.NewExtendedProfile(pb)
		for _, m := range simil.ExtendedMetrics() {
			dir := "higher = more different"
			if m.HigherIsSimilar {
				dir = "higher = more similar"
			}
			fmt.Printf("%-16s %10.4f   %s (extended)\n", m.Name, m.Compute(ea, eb), dir)
		}
	}

	if *rod {
		fmt.Println()
		for _, flow := range opt.Flows() {
			oa := flow.Run(a, *seed)
			ob := flow.Run(b, *seed)
			fmt.Printf("ROD(%-11s) = %.4f   (%d vs %d gates)\n",
				flow.Name, simil.ROD(oa.NumAnds(), ob.NumAnds()), oa.NumAnds(), ob.NumAnds())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "similarity:", err)
	os.Exit(1)
}
