// Command aigsim simulates AIGER files and checks equivalence.
//
// Usage:
//
//	aigsim file.aag                  print the truth table (<= 6 inputs)
//	aigsim -input 1011 file.aag      evaluate one assignment (PI0 first)
//	aigsim -equiv a.aag b.aag        equivalence check
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/aig"
	"repro/internal/aiger"
)

func main() {
	input := flag.String("input", "", "binary input assignment, PI 0 first")
	equiv := flag.Bool("equiv", false, "check equivalence of two files")
	flag.Parse()

	switch {
	case *equiv:
		if flag.NArg() != 2 {
			usage()
		}
		a, err := aiger.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		b, err := aiger.ReadFile(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		var idx int
		if a.NumPIs() <= 16 {
			idx, err = aig.Equivalent(a, b)
		} else {
			idx, err = aig.RandomSimCheck(a, b, 256, rand.New(rand.NewSource(1)))
		}
		if err != nil {
			fatal(err)
		}
		if idx != -1 {
			fmt.Printf("NOT EQUIVALENT: output %d differs\n", idx)
			os.Exit(1)
		}
		fmt.Println("equivalent")

	case *input != "":
		if flag.NArg() != 1 {
			usage()
		}
		g, err := aiger.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if len(*input) != g.NumPIs() {
			fatal(fmt.Errorf("input has %d bits, AIG has %d PIs", len(*input), g.NumPIs()))
		}
		var assignment uint64
		for i, c := range *input {
			switch c {
			case '1':
				assignment |= 1 << uint(i)
			case '0':
			default:
				fatal(fmt.Errorf("invalid input bit %q", c))
			}
		}
		for i, v := range g.Eval(assignment) {
			name := g.POName(i)
			if name == "" {
				name = fmt.Sprintf("o%d", i)
			}
			fmt.Printf("%s = %v\n", name, b2i(v))
		}

	default:
		if flag.NArg() != 1 {
			usage()
		}
		g, err := aiger.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if g.NumPIs() > 6 {
			fatal(fmt.Errorf("truth-table dump limited to 6 inputs; use -input"))
		}
		outs := g.OutputTTs()
		for i, o := range outs {
			name := g.POName(i)
			if name == "" {
				name = fmt.Sprintf("o%d", i)
			}
			fmt.Printf("%s = 0x%s\n", name, o.Hex())
		}
	}
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: aigsim [-equiv a b | -input BITS file | file]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aigsim:", err)
	os.Exit(1)
}
