// Command aiglint runs the repository's domain lint suite: custom
// static analyzers, built only on the standard library, that enforce
// invariants the compiler cannot see — AIG-literal encoding discipline
// (rawlit), byte-identical result emission (determinism), error-
// handling hygiene (droppederr), telemetry name stability
// (metricname), http.ResponseWriter write-error discipline (httpwrite),
// fault-point naming (faultpoint), and the concurrency-safety layer:
// locks held across blocking operations (lockheld), severed context
// chains (ctxflow), fire-and-forget goroutines (golifecycle), and mixed
// atomic/plain access (atomicmix).
//
// Usage:
//
//	aiglint [-run a,b] [-list] [-v] [-json] [packages...]
//
// Packages default to ./... resolved against the enclosing module.
// Exit status is 1 when any diagnostic survives, 2 on usage or load
// errors. Suppress a single finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above it.
//
// With -json each finding is one JSON object per line on stdout —
// {"analyzer","file","line","col","message","suppressed"} — including
// the findings silenced by //lint:ignore (suppressed true), so CI can
// turn survivors into annotations and auditors can list what the
// directives cover. The exit status still reflects only unsuppressed
// findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/lint"
)

// jsonDiagnostic is the -json wire shape of one finding.
type jsonDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	var (
		run      = flag.String("run", "", "comma-separated analyzer subset (default all)")
		list     = flag.Bool("list", false, "list analyzers and exit")
		verb     = flag.Bool("v", false, "print per-analyzer timings and suppression stats")
		jsonMode = flag.Bool("json", false, "emit one JSON object per finding (including suppressed) instead of text")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		var subset []*lint.Analyzer
		for _, name := range strings.Split(*run, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "aiglint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			subset = append(subset, a)
		}
		analyzers = subset
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := lint.Load(cwd, flag.Args())
	if err != nil {
		fatal(err)
	}
	res, err := lint.RunAnalyzers(prog, analyzers, lint.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	if *verb {
		fmt.Fprintf(os.Stderr, "aiglint: %d packages, %d analyzers, %d findings, %d suppressed\n",
			len(prog.Packages), len(analyzers), len(res.Diagnostics), res.Suppressed)
		for _, t := range res.Timings {
			fmt.Fprintf(os.Stderr, "aiglint: %-12s %s\n", t.Name, t.Elapsed.Round(10*time.Microsecond))
		}
	}
	relName := func(name string) string {
		if strings.HasPrefix(name, prog.ModuleDir+string(os.PathSeparator)) {
			return name[len(prog.ModuleDir)+1:]
		}
		return name
	}
	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		emit := func(ds []lint.Diagnostic, suppressed bool) {
			for _, d := range ds {
				if err := enc.Encode(jsonDiagnostic{
					Analyzer:   d.Analyzer,
					File:       relName(d.Pos.Filename),
					Line:       d.Pos.Line,
					Col:        d.Pos.Column,
					Message:    d.Message,
					Suppressed: suppressed,
				}); err != nil {
					fatal(err)
				}
			}
		}
		emit(res.Diagnostics, false)
		emit(res.SuppressedDiagnostics, true)
	} else {
		for _, d := range res.Diagnostics {
			rel := d
			rel.Pos.Filename = relName(rel.Pos.Filename)
			fmt.Println(rel.String())
		}
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aiglint:", err)
	os.Exit(2)
}
