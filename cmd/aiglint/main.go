// Command aiglint runs the repository's domain lint suite: custom
// static analyzers, built only on the standard library, that enforce
// invariants the compiler cannot see — AIG-literal encoding discipline
// (rawlit), byte-identical result emission (determinism), error-
// handling hygiene (droppederr), telemetry name stability
// (metricname), and http.ResponseWriter write-error discipline
// (httpwrite).
//
// Usage:
//
//	aiglint [-run a,b] [-list] [-v] [packages...]
//
// Packages default to ./... resolved against the enclosing module.
// Exit status is 1 when any diagnostic survives, 2 on usage or load
// errors. Suppress a single finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		run  = flag.String("run", "", "comma-separated analyzer subset (default all)")
		list = flag.Bool("list", false, "list analyzers and exit")
		verb = flag.Bool("v", false, "print analyzed package count and suppression stats")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		var subset []*lint.Analyzer
		for _, name := range strings.Split(*run, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "aiglint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			subset = append(subset, a)
		}
		analyzers = subset
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := lint.Load(cwd, flag.Args())
	if err != nil {
		fatal(err)
	}
	res, err := lint.RunAnalyzers(prog, analyzers, lint.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	if *verb {
		fmt.Fprintf(os.Stderr, "aiglint: %d packages, %d analyzers, %d findings, %d suppressed\n",
			len(prog.Packages), len(analyzers), len(res.Diagnostics), res.Suppressed)
	}
	for _, d := range res.Diagnostics {
		rel := d
		if strings.HasPrefix(rel.Pos.Filename, prog.ModuleDir+string(os.PathSeparator)) {
			rel.Pos.Filename = rel.Pos.Filename[len(prog.ModuleDir)+1:]
		}
		fmt.Println(rel.String())
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aiglint:", err)
	os.Exit(2)
}
