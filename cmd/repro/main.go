// Command repro regenerates the paper's experimental artifacts: Table I
// (traditional metrics vs ROD), Table II (AIG-specific metrics vs ROD
// across flows), Figure 2 (optimization trajectories), and Figure 3 (the
// Resub Score scatter). One invocation performs one experiment run; the
// tables are different views of the same run.
//
// Usage:
//
//	repro [-seed N] [-max-inputs N] [-max-specs N] [-flows a,b] [-v] [-quick]
//	      [-table 1|2] [-figure 2|3] [-all] [-csv pairs.csv]
//	      [-metrics-addr :8090] [-events run.jsonl]
//	      [-checkpoint run.ckpt] [-resume] [-flow-timeout 30s]
//
// Observability: -metrics-addr serves /metrics (Prometheus), /debug/vars
// (JSON), and /debug/pprof live during the run; -events writes one JSONL
// event per processed spec; either flag also prints a per-stage
// wall-clock summary to stderr at the end of the run. Telemetry is
// entirely off (no goroutines, no overhead beyond an atomic load) unless
// one of these flags is given.
//
// Robustness: SIGINT/SIGTERM cancel the run gracefully — the spec in
// flight is abandoned and tables/CSV are emitted from the completed
// prefix. -checkpoint appends each completed spec to a JSONL file;
// -resume replays it and continues from the first missing spec,
// reproducing the uninterrupted run byte for byte. -flow-timeout bounds
// each optimization flow's wall clock. Variants that panic or fail
// functional-equivalence verification are quarantined and reported in
// the run summary instead of crashing the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

func main() {
	var (
		seed        = flag.Int64("seed", 2024, "experiment seed")
		maxInputs   = flag.Int("max-inputs", 10, "skip specs with more inputs (paper's scalability cut)")
		maxSpecs    = flag.Int("max-specs", 0, "truncate the suite (0 = all)")
		flows       = flag.String("flows", "", "comma-separated flow subset (default all)")
		verbose     = flag.Bool("v", false, "print per-spec progress to stderr")
		quick       = flag.Bool("quick", false, "reduced run (max-inputs 8, max-specs 20) for smoke tests")
		table       = flag.Int("table", 0, "print only Table 1 or 2")
		byCat       = flag.String("by-category", "", "metric whose per-category correlations to print (with -flows one flow)")
		figure      = flag.Int("figure", 0, "print only Figure 2 or 3")
		all         = flag.Bool("all", true, "print every artifact")
		csvPath     = flag.String("csv", "", "write the raw pair samples to this CSV file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address during the run")
		eventsPath  = flag.String("events", "", "append JSONL pipeline events to this file")
		ckptPath    = flag.String("checkpoint", "", "append each completed spec to this JSONL checkpoint file")
		resume      = flag.Bool("resume", false, "replay the -checkpoint file and continue from the first missing spec")
		flowTimeout = flag.Duration("flow-timeout", 0, "wall-clock budget per flow invocation (0 = unbounded)")
		selfcheck   = flag.Bool("selfcheck", false, "run the AIG structural verifier after every synthesis recipe and optimization flow")
		traceTop    = flag.Int("trace-top", 0, "trace the run and print flame graphs of the N slowest variants to stderr")
	)
	flag.Parse()

	// Chaos runs set AIG_FAULTS to replay a deterministic failure
	// schedule; a malformed spec is a hard error, not a silent no-op.
	if err := faultinject.EnableFromEnv(); err != nil {
		fatal(err)
	}

	if *figure == 2 {
		out, err := harness.Figure2("fulladder", *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" || *eventsPath != "" {
		reg = telemetry.Enable()
	}
	// Each harness variant starts its own trace (no run-level root), so
	// -trace-top ranks variants — the unit a slow run decomposes into.
	var tstore *trace.Store
	if *traceTop > 0 {
		tstore = trace.NewStore(trace.StoreConfig{SlowKeep: *traceTop})
		trace.SetCollector(tstore)
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "repro: serving telemetry on http://%s/metrics\n", srv.Addr())
	}

	cfg := harness.Config{
		Seed:        *seed,
		MaxInputs:   *maxInputs,
		MaxSpecs:    *maxSpecs,
		FlowTimeout: *flowTimeout,
		SelfCheck:   *selfcheck,
	}
	if *quick {
		// -quick supplies defaults only: flags the user set explicitly
		// win over it.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["max-inputs"] {
			cfg.MaxInputs = 8
		}
		if !explicit["max-specs"] {
			cfg.MaxSpecs = 20
		}
	}
	if *flows != "" {
		cfg.Flows = strings.Split(*flows, ",")
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	var eventsFile *os.File
	if *eventsPath != "" {
		f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		eventsFile = f
		cfg.Events = telemetry.NewEventLogger(f)
	}
	if *ckptPath != "" {
		ckpt, records, err := harness.OpenCheckpoint(*ckptPath, cfg, *resume)
		if err != nil {
			fatal(err)
		}
		cfg.Checkpoint = ckpt
		cfg.Resume = records
		if *resume {
			fmt.Fprintf(os.Stderr, "repro: resuming %d checkpointed specs from %s\n", len(records), *ckptPath)
		}
	}

	// SIGINT/SIGTERM cancel the run after the spec in flight; a second
	// signal aborts immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "repro: %v received, stopping after the current spec (send again to abort)\n", s)
		cancel()
		if _, ok := <-sigc; ok {
			fmt.Fprintln(os.Stderr, "repro: aborting")
			os.Exit(130)
		}
	}()

	start := time.Now()
	res, err := harness.RunContext(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	signal.Stop(sigc)
	close(sigc)
	if res.Interrupted {
		fmt.Fprintf(os.Stderr, "repro: interrupted after %d specs; emitting partial results\n", len(res.Specs))
	}
	if reg != nil {
		fmt.Fprintf(os.Stderr, "\n--- run summary (%d specs, %d pairs) ---\n%s",
			len(res.Specs), len(res.Pairs), harness.StageSummary(reg, time.Since(start)))
	}
	if fs := res.FailureSummary(); fs != "" {
		fmt.Fprint(os.Stderr, fs)
	}
	if tstore != nil {
		printSlowTraces(tstore, *traceTop)
	}

	switch {
	case *byCat != "":
		for _, fl := range res.FlowNames {
			fmt.Print(res.CategoryTable(*byCat, fl))
		}
	case *table == 1:
		fmt.Print(res.TableI())
	case *table == 2:
		fmt.Print(res.TableII())
	case *figure == 3:
		fmt.Print(res.Figure3Plot())
		fmt.Print(res.Figure3())
	case *all:
		fmt.Println(res.CategorySummary())
		fmt.Println(res.TableI())
		fmt.Println(res.TableII())
		fmt.Println(summaryOnlyFigure3(res))
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d pair samples to %s\n", len(res.Pairs), *csvPath)
	}
	if err := cfg.Checkpoint.Close(); err != nil {
		fatal(fmt.Errorf("closing checkpoint %s: %w", *ckptPath, err))
	}
	if eventsFile != nil {
		if err := cfg.Events.Err(); err != nil {
			fatal(fmt.Errorf("writing events to %s: %w", *eventsPath, err))
		}
		if err := eventsFile.Close(); err != nil {
			fatal(fmt.Errorf("closing events file %s: %w", *eventsPath, err))
		}
	}
}

// printSlowTraces renders the n slowest retained traces as flame text.
func printSlowTraces(st *trace.Store, n int) {
	sums := st.List(trace.Filter{})
	sort.Slice(sums, func(i, j int) bool { return sums[i].DurationMS > sums[j].DurationMS })
	if len(sums) > n {
		sums = sums[:n]
	}
	fmt.Fprintf(os.Stderr, "\n--- %d slowest traces ---\n", len(sums))
	for _, s := range sums {
		if f, ok := st.Flame(s.TraceID); ok {
			fmt.Fprintln(os.Stderr, f)
		}
	}
}

// summaryOnlyFigure3 prints Figure 3's statistics without the full point
// cloud (use -figure 3 for the raw series).
func summaryOnlyFigure3(res *harness.Result) string {
	full := res.Figure3()
	lines := strings.SplitN(full, "\n", 4)
	if len(lines) < 3 {
		return full
	}
	return strings.Join(lines[:3], "\n") + "\n(run with -figure 3 for the full scatter series)\n"
}

// writeCSV writes the pair samples through the atomic-replace helper:
// the new file is fsynced before it is renamed over the old one, so a
// crash or full disk leaves either the previous complete
// results_pairs.csv or the new one — never a truncated hybrid.
func writeCSV(path string, res *harness.Result) error {
	return harness.WriteFileAtomic(path, func(w io.Writer) error {
		return harness.WriteCSV(w, res)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
