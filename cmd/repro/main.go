// Command repro regenerates the paper's experimental artifacts: Table I
// (traditional metrics vs ROD), Table II (AIG-specific metrics vs ROD
// across flows), Figure 2 (optimization trajectories), and Figure 3 (the
// Resub Score scatter). One invocation performs one experiment run; the
// tables are different views of the same run.
//
// Usage:
//
//	repro [-seed N] [-max-inputs N] [-max-specs N] [-flows a,b] [-v] [-quick]
//	      [-table 1|2] [-figure 2|3] [-all] [-csv pairs.csv]
//	      [-metrics-addr :8090] [-events run.jsonl]
//
// Observability: -metrics-addr serves /metrics (Prometheus), /debug/vars
// (JSON), and /debug/pprof live during the run; -events writes one JSONL
// event per processed spec; either flag also prints a per-stage
// wall-clock summary to stderr at the end of the run. Telemetry is
// entirely off (no goroutines, no overhead beyond an atomic load) unless
// one of these flags is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

func main() {
	var (
		seed        = flag.Int64("seed", 2024, "experiment seed")
		maxInputs   = flag.Int("max-inputs", 10, "skip specs with more inputs (paper's scalability cut)")
		maxSpecs    = flag.Int("max-specs", 0, "truncate the suite (0 = all)")
		flows       = flag.String("flows", "", "comma-separated flow subset (default all)")
		verbose     = flag.Bool("v", false, "print per-spec progress to stderr")
		quick       = flag.Bool("quick", false, "reduced run (max-inputs 8, max-specs 20) for smoke tests")
		table       = flag.Int("table", 0, "print only Table 1 or 2")
		byCat       = flag.String("by-category", "", "metric whose per-category correlations to print (with -flows one flow)")
		figure      = flag.Int("figure", 0, "print only Figure 2 or 3")
		all         = flag.Bool("all", true, "print every artifact")
		csvPath     = flag.String("csv", "", "write the raw pair samples to this CSV file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address during the run")
		eventsPath  = flag.String("events", "", "append JSONL pipeline events to this file")
	)
	flag.Parse()

	if *figure == 2 {
		out, err := harness.Figure2("fulladder", *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" || *eventsPath != "" {
		reg = telemetry.Enable()
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "repro: serving telemetry on http://%s/metrics\n", srv.Addr())
	}

	cfg := harness.Config{
		Seed:      *seed,
		MaxInputs: *maxInputs,
		MaxSpecs:  *maxSpecs,
	}
	if *quick {
		cfg.MaxInputs = 8
		cfg.MaxSpecs = 20
	}
	if *flows != "" {
		cfg.Flows = strings.Split(*flows, ",")
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if *eventsPath != "" {
		f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.Events = telemetry.NewEventLogger(f)
	}

	start := time.Now()
	res, err := harness.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		fmt.Fprintf(os.Stderr, "\n--- run summary (%d specs, %d pairs) ---\n%s",
			len(res.Specs), len(res.Pairs), harness.StageSummary(reg, time.Since(start)))
	}

	switch {
	case *byCat != "":
		for _, fl := range res.FlowNames {
			fmt.Print(res.CategoryTable(*byCat, fl))
		}
	case *table == 1:
		fmt.Print(res.TableI())
	case *table == 2:
		fmt.Print(res.TableII())
	case *figure == 3:
		fmt.Print(res.Figure3Plot())
		fmt.Print(res.Figure3())
	case *all:
		fmt.Println(res.CategorySummary())
		fmt.Println(res.TableI())
		fmt.Println(res.TableII())
		fmt.Println(summaryOnlyFigure3(res))
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d pair samples to %s\n", len(res.Pairs), *csvPath)
	}
}

// summaryOnlyFigure3 prints Figure 3's statistics without the full point
// cloud (use -figure 3 for the raw series).
func summaryOnlyFigure3(res *harness.Result) string {
	full := res.Figure3()
	lines := strings.SplitN(full, "\n", 4)
	if len(lines) < 3 {
		return full
	}
	return strings.Join(lines[:3], "\n") + "\n(run with -figure 3 for the full scatter series)\n"
}

func writeCSV(path string, res *harness.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	metricNames := append([]string(nil), res.MetricNames...)
	sort.Strings(metricNames)
	flowNames := append([]string(nil), res.FlowNames...)
	fmt.Fprintf(f, "spec,recipeA,recipeB,gatesA,gatesB")
	for _, m := range metricNames {
		fmt.Fprintf(f, ",%s", m)
	}
	for _, fl := range flowNames {
		fmt.Fprintf(f, ",ROD_%s", fl)
	}
	fmt.Fprintln(f)
	for _, p := range res.Pairs {
		fmt.Fprintf(f, "%s,%s,%s,%d,%d", p.Spec, p.RecipeA, p.RecipeB, p.GatesA, p.GatesB)
		for _, m := range metricNames {
			fmt.Fprintf(f, ",%.6f", p.Metrics[m])
		}
		for _, fl := range flowNames {
			fmt.Fprintf(f, ",%.6f", p.ROD[fl])
		}
		fmt.Fprintln(f)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
