package repro

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/harness"
	"repro/internal/lutmap"
	"repro/internal/opt"
	"repro/internal/simil"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/tt"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// One benchmark per paper artifact. Each runs a reduced but complete
// version of the pipeline that regenerates the artifact; cmd/repro runs
// the full-scale version.
// ---------------------------------------------------------------------

// reportStageTimings attaches telemetry-derived per-stage wall-clock
// metrics (synthesis-s/op, profiling-s/op, ...) to a pipeline benchmark,
// so BENCH_*.json entries carry a stage breakdown alongside ns/op. The
// same numbers feed the BENCH_JSON sink (see bench_json_test.go).
func reportStageTimings(b *testing.B, reg *telemetry.Registry) {
	b.Helper()
	for _, st := range harness.Stages() {
		_, sec := harness.StageSeconds(reg, st)
		b.ReportMetric(sec/float64(b.N), st.Label+"-s/op")
		recordStageSeconds(b.Name(), st.Label, sec/float64(b.N))
	}
}

// BenchmarkTableI measures the Table I pipeline: traditional graph
// metrics correlated against ROD under orchestrate.
func BenchmarkTableI(b *testing.B) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	reg.Reset()
	cfg := harness.Config{Seed: 2024, MaxInputs: 6, MaxSpecs: 3, Flows: []string{"orchestrate"}}
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TableI() == "" {
			b.Fatal("empty table")
		}
	}
	reportStageTimings(b, reg)
}

// BenchmarkTableII measures the Table II pipeline: the six AIG-specific
// metrics against ROD under all three flows.
func BenchmarkTableII(b *testing.B) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	reg.Reset()
	cfg := harness.Config{Seed: 2024, MaxInputs: 6, MaxSpecs: 3}
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TableII() == "" {
			b.Fatal("empty table")
		}
	}
	reportStageTimings(b, reg)
}

// BenchmarkFigure2 measures the trajectory rendering behind Figure 2.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Figure2("fulladder", 2024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 measures the Figure 3 scatter (Resub Score vs ROD).
func BenchmarkFigure3(b *testing.B) {
	cfg := harness.Config{Seed: 2024, MaxInputs: 6, MaxSpecs: 3, Flows: []string{"orchestrate"}}
	res, err := harness.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.Figure3() == "" {
			b.Fatal("empty figure")
		}
	}
}

// ---------------------------------------------------------------------
// Component benchmarks: the substrate operations the pipeline is built
// from, on a standard mid-size workload.
// ---------------------------------------------------------------------

func benchAIG(b *testing.B) *aig.AIG {
	b.Helper()
	r := rand.New(rand.NewSource(42))
	spec := []tt.TT{tt.Random(8, r), tt.Random(8, r)}
	return synth.SynthSOP(spec)
}

func BenchmarkSynthRecipes(b *testing.B) {
	r := rand.New(rand.NewSource(43))
	spec := []tt.TT{tt.Random(7, r)}
	for _, rec := range synth.Recipes() {
		b.Run(rec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := rec.Build(spec)
				if g.NumPOs() != 1 {
					b.Fatal("bad synthesis")
				}
			}
		})
	}
}

func BenchmarkRewriteOnce(b *testing.B) {
	g := benchAIG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.RewriteOnce(g, opt.RewriteOptions{})
	}
}

func BenchmarkRefactorOnce(b *testing.B) {
	g := benchAIG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.RefactorOnce(g, opt.RefactorOptions{})
	}
}

func BenchmarkResubOnce(b *testing.B) {
	g := benchAIG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.ResubOnce(g, opt.ResubOptions{})
	}
}

func BenchmarkBalance(b *testing.B) {
	g := benchAIG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Balance(g)
	}
}

func BenchmarkFlows(b *testing.B) {
	g := benchAIG(b)
	for _, flow := range opt.Flows() {
		b.Run(flow.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				flow.Run(g, 1)
			}
		})
	}
}

func BenchmarkLUTMapRoundTrip(b *testing.B) {
	g := benchAIG(b)
	for _, k := range []int{4, 6} {
		b.Run(map[int]string{4: "k4", 6: "k6"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lutmap.RoundTrip(g, lutmap.Options{K: k})
			}
		})
	}
}

func BenchmarkProfile(b *testing.B) {
	g := benchAIG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simil.NewProfile(g, simil.ProfileOptions{})
	}
}

// BenchmarkProfileArtifacts measures the payoff of the Artifacts split:
// "all" is what every profile build cost before partial computation
// (and still costs when every metric family is requested); each named
// family is what a request needing only that family pays now.
func BenchmarkProfileArtifacts(b *testing.B) {
	g := benchAIG(b)
	cases := []struct {
		name  string
		needs simil.Artifacts
	}{
		{"all", simil.AllArtifacts},
		{"overlap", simil.NeedOverlap},
		{"netsimile", simil.NeedNetSimile},
		{"wl", simil.NeedWL},
		{"spectrum", simil.NeedSpectrum},
		{"optscores", simil.NeedOptScores},
		{"none", 0},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simil.NewProfileFor(g, simil.ProfileOptions{}, c.needs)
			}
		})
	}
}

// BenchmarkProfileExtend measures growing a minimal profile into a full
// one — the service's cache-upgrade path — against building full from
// scratch.
func BenchmarkProfileExtend(b *testing.B) {
	g := benchAIG(b)
	b.Run("extend", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := simil.NewProfileFor(g, simil.ProfileOptions{}, simil.NeedOverlap)
			p.Extend(simil.ProfileOptions{}, simil.AllArtifacts)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simil.NewProfileFor(g, simil.ProfileOptions{}, simil.AllArtifacts)
		}
	})
}

func BenchmarkMetrics(b *testing.B) {
	r := rand.New(rand.NewSource(44))
	spec := []tt.TT{tt.Random(7, r)}
	p1 := simil.NewProfile(synth.SynthSOP(spec), simil.ProfileOptions{})
	p2 := simil.NewProfile(synth.SynthBDD(spec), simil.ProfileOptions{})
	for _, m := range simil.Metrics() {
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Compute(p1, p2)
			}
		})
	}
}

func BenchmarkNPNCanon(b *testing.B) {
	r := rand.New(rand.NewSource(45))
	fs := make([]tt.TT, 64)
	for i := range fs {
		fs[i] = tt.Random(4, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt.NPNCanon(fs[i%len(fs)])
	}
}

func BenchmarkIsop(b *testing.B) {
	r := rand.New(rand.NewSource(46))
	fs := make([]tt.TT, 16)
	for i := range fs {
		fs[i] = tt.Random(8, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt.IsopOf(fs[i%len(fs)])
	}
}

func BenchmarkWorkloadSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(workload.Suite(2024)) != 100 {
			b.Fatal("bad suite")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations: the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

// BenchmarkAblationRewriteLibrary compares the multi-paradigm
// resynthesis library against each single paradigm, reporting the AND
// count each achieves over a fixed set of 4-input functions (quality
// ablation; lower custom metric = better).
func BenchmarkAblationRewriteLibrary(b *testing.B) {
	r := rand.New(rand.NewSource(47))
	fs := make([]tt.TT, 128)
	for i := range fs {
		fs[i] = tt.Random(4, r)
	}
	variants := []struct {
		name  string
		build func(f tt.TT) *aig.AIG
	}{
		{"best-of-3", synth.BestStructure},
		{"dsd-only", func(f tt.TT) *aig.AIG { return synth.SynthDSD([]tt.TT{f}) }},
		{"factor-only", func(f tt.TT) *aig.AIG { return synth.SynthFactored([]tt.TT{f}) }},
		{"shannon-only", func(f tt.TT) *aig.AIG { return synth.SynthShannon([]tt.TT{f}) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, f := range fs {
					total += v.build(f).NumAnds()
				}
			}
			b.ReportMetric(float64(total)/float64(len(fs)), "ands/func")
		})
	}
}

// BenchmarkAblationRewriteCutSize compares rewriting with K=3..6 cuts:
// runtime per pass plus achieved reduction on a fixed AIG.
func BenchmarkAblationRewriteCutSize(b *testing.B) {
	g := benchAIG(b)
	for _, k := range []int{3, 4, 5, 6} {
		b.Run(map[int]string{3: "k3", 4: "k4", 5: "k5", 6: "k6"}[k], func(b *testing.B) {
			var got int
			for i := 0; i < b.N; i++ {
				got = opt.RewriteOnce(g, opt.RewriteOptions{K: k}).NumAnds()
			}
			b.ReportMetric(float64(g.NumAnds()-got), "nodes-removed")
		})
	}
}

// BenchmarkAblationResubDepth compares resubstitution depths 0/1/2.
func BenchmarkAblationResubDepth(b *testing.B) {
	g := benchAIG(b)
	names := map[int]string{1: "depth1", 2: "depth2"}
	for _, d := range []int{1, 2} {
		b.Run(names[d], func(b *testing.B) {
			var got int
			for i := 0; i < b.N; i++ {
				got = opt.ResubOnce(g, opt.ResubOptions{Depth: d}).NumAnds()
			}
			b.ReportMetric(float64(g.NumAnds()-got), "nodes-removed")
		})
	}
}

// BenchmarkAblationEspresso compares raw ISOP covers against
// espresso-minimized covers (cube count as quality metric).
func BenchmarkAblationEspresso(b *testing.B) {
	r := rand.New(rand.NewSource(48))
	fs := make([]tt.TT, 32)
	for i := range fs {
		fs[i] = tt.Random(7, r)
	}
	b.Run("isop", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			total = 0
			for _, f := range fs {
				total += len(tt.IsopOf(f))
			}
		}
		b.ReportMetric(float64(total)/float64(len(fs)), "cubes/func")
	})
	b.Run("espresso", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			total = 0
			for _, f := range fs {
				total += sopMinCubes(f)
			}
		}
		b.ReportMetric(float64(total)/float64(len(fs)), "cubes/func")
	})
}
