package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// EnvVar names the environment variable both daemons and the batch
// harness consult at startup: a non-empty value is parsed as a fault
// spec (see ArmFromSpec), armed, and enabled. Because every trigger is
// deterministic, exporting the same AIG_FAULTS value replays the same
// failure schedule.
const EnvVar = "AIG_FAULTS"

// ArmFromSpec arms every entry of a fault spec. The grammar, entries
// separated by ';':
//
//	entry   = point "=" mode [ "@" trigger ]
//	mode    = "error" | "enospc" | "fsync" | "deadline"
//	        | "short" [ ":" keepBytes ] | "torn" [ ":" keepBytes ]
//	        | "latency" ":" duration
//	trigger = "always" | N | N "+" | "p" FLOAT "/" SEED
//
// Examples:
//
//	harness/atomic_sync=fsync@3          fsync error on the 3rd write
//	harness/checkpoint_write=torn:7@2    tear the 2nd append after 7 bytes
//	service/spill=enospc@p0.25/42        ENOSPC with p=0.25, seed 42
//	service/store_put=latency:50ms       stall every store insert 50ms
//
// The default trigger is "always". ArmFromSpec only arms; callers
// decide when to Enable.
func ArmFromSpec(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || rest == "" {
			return fmt.Errorf("faultinject: bad entry %q: want point=mode[@trigger]", entry)
		}
		modeSpec, trigSpec, _ := strings.Cut(rest, "@")
		fault, err := parseMode(modeSpec)
		if err != nil {
			return fmt.Errorf("faultinject: entry %q: %w", entry, err)
		}
		trig, err := parseTrigger(trigSpec)
		if err != nil {
			return fmt.Errorf("faultinject: entry %q: %w", entry, err)
		}
		Arm(name, trig, fault)
	}
	return nil
}

func parseMode(s string) (Fault, error) {
	kind, arg, hasArg := strings.Cut(strings.TrimSpace(s), ":")
	var f Fault
	switch kind {
	case "error":
		f.Mode = ModeError
	case "enospc":
		f.Mode = ModeENOSPC
	case "fsync":
		f.Mode = ModeFsync
	case "deadline":
		f.Mode = ModeDeadline
	case "short", "torn":
		f.Mode = ModeShortWrite
		if kind == "torn" {
			f.Mode = ModeTornWrite
		}
		if hasArg {
			keep, err := strconv.Atoi(arg)
			if err != nil || keep < 0 {
				return f, fmt.Errorf("bad keep-bytes %q", arg)
			}
			f.KeepBytes = keep
		}
		return f, nil
	case "latency":
		f.Mode = ModeLatency
		if !hasArg {
			return f, fmt.Errorf("latency needs a duration (latency:50ms)")
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return f, fmt.Errorf("bad latency %q: %v", arg, err)
		}
		f.Latency = d
		return f, nil
	default:
		return f, fmt.Errorf("unknown mode %q", kind)
	}
	if hasArg {
		return f, fmt.Errorf("mode %q takes no argument", kind)
	}
	return f, nil
}

func parseTrigger(s string) (Trigger, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "" || s == "always":
		return Always(), nil
	case strings.HasPrefix(s, "p"):
		probSpec, seedSpec, ok := strings.Cut(s[1:], "/")
		if !ok {
			return Trigger{}, fmt.Errorf("probability trigger %q needs an explicit seed (p0.25/42) so the schedule replays", s)
		}
		p, err := strconv.ParseFloat(probSpec, 64)
		if err != nil || p <= 0 || p > 1 {
			return Trigger{}, fmt.Errorf("bad probability %q", probSpec)
		}
		seed, err := strconv.ParseInt(seedSpec, 10, 64)
		if err != nil {
			return Trigger{}, fmt.Errorf("bad seed %q", seedSpec)
		}
		return Probability(p, seed), nil
	case strings.HasSuffix(s, "+"):
		n, err := strconv.ParseUint(strings.TrimSuffix(s, "+"), 10, 64)
		if err != nil || n == 0 {
			return Trigger{}, fmt.Errorf("bad trigger %q", s)
		}
		return FromCall(n), nil
	default:
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil || n == 0 {
			return Trigger{}, fmt.Errorf("bad trigger %q (want always, N, N+, or pFLOAT/SEED)", s)
		}
		return OnCall(n), nil
	}
}

// EnableFromEnv arms and enables the registry from the AIG_FAULTS
// environment variable. An unset or empty variable is a no-op; a
// malformed spec is an error (a chaos run with a typo must fail loudly,
// not run fault-free).
func EnableFromEnv() error {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil
	}
	if err := ArmFromSpec(spec); err != nil {
		return err
	}
	Enable()
	return nil
}
