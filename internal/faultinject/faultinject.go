// Package faultinject is a deterministic, seed-driven fault-injection
// registry for chaos-testing the repository's durability boundaries
// (atomic file replacement, checkpoint appends, event logging, job
// spill, the service worker pool and caches).
//
// Every boundary declares a named injection *point* — a compile-time
// string constant, enforced unique by the aiglint "faultpoint"
// analyzer — and consults it on each traversal:
//
//	if err := faultinject.Hit(PointAtomicSync); err != nil { ... }
//
// When the registry is disabled (the production state) a point costs a
// single atomic load and nothing else: no map lookup, no lock, no
// allocation (see BenchmarkHitDisabled). When enabled, armed points
// fire according to a deterministic schedule — on exactly the Nth hit,
// from the Nth hit onward, or with a seeded probability — and inject a
// canned failure mode: a generic error, ENOSPC, an fsync error, a
// short or torn write, forced latency, or a context-deadline expiry.
//
// Determinism is the design center: a failing schedule is reproduced
// exactly by re-arming the same spec (see ArmFromSpec and the
// AIG_FAULTS environment variable), because triggers count hits
// process-locally and probability triggers draw from their own seeded
// source, never from wall clock or global randomness.
package faultinject

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Mode is a canned failure behavior for an armed point.
type Mode int

const (
	// ModeError injects a generic failure wrapping Err.
	ModeError Mode = iota
	// ModeENOSPC injects a disk-full failure wrapping syscall.ENOSPC.
	ModeENOSPC
	// ModeFsync injects a stable-storage sync failure (EIO).
	ModeFsync
	// ModeShortWrite makes a wrapped writer persist only a prefix of
	// the faulted write and report n < len(p) with a nil error (the
	// io.Writer short-write shape bufio turns into io.ErrShortWrite).
	ModeShortWrite
	// ModeTornWrite makes a wrapped writer persist only a prefix of
	// the faulted write and report an injected error: partial bytes
	// reach the file, exactly like a kill or power cut mid-write.
	ModeTornWrite
	// ModeLatency stalls the hit for Fault.Latency, then proceeds
	// without error.
	ModeLatency
	// ModeDeadline injects an error wrapping context.DeadlineExceeded.
	ModeDeadline
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeENOSPC:
		return "enospc"
	case ModeFsync:
		return "fsync"
	case ModeShortWrite:
		return "short"
	case ModeTornWrite:
		return "torn"
	case ModeLatency:
		return "latency"
	case ModeDeadline:
		return "deadline"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Fault is what an armed point injects when its trigger fires.
type Fault struct {
	Mode Mode
	// Latency is the stall for ModeLatency.
	Latency time.Duration
	// KeepBytes bounds how many bytes of a faulted short/torn write
	// reach the underlying writer. Zero (or a value >= the write size)
	// keeps half the write, so the failure always lands mid-payload.
	KeepBytes int
}

// Trigger decides which hits of an armed point fire. Construct one
// with OnCall, FromCall, Always, or Probability.
type Trigger struct {
	onCall uint64 // fire on exactly this 1-based hit
	from   uint64 // fire on this hit and every later one
	prob   float64
	seed   int64
}

// OnCall fires on exactly the nth traversal of the point (1-based).
func OnCall(n uint64) Trigger { return Trigger{onCall: n} }

// FromCall fires on the nth traversal (1-based) and every one after.
func FromCall(n uint64) Trigger { return Trigger{from: n} }

// Always fires on every traversal.
func Always() Trigger { return FromCall(1) }

// Probability fires each traversal independently with probability p,
// drawn from a source seeded with seed — the same seed replays the
// same fire pattern.
func Probability(p float64, seed int64) Trigger { return Trigger{prob: p, seed: seed} }

// point is one armed injection site.
type point struct {
	mu    sync.Mutex
	trig  Trigger
	fault Fault
	rng   *rand.Rand // non-nil only for probability triggers
	hits  uint64
	fires uint64
}

// step records one traversal and reports whether it fires.
func (p *point) step() (Fault, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits++
	fire := false
	switch {
	case p.trig.onCall > 0:
		fire = p.hits == p.trig.onCall
	case p.trig.from > 0:
		fire = p.hits >= p.trig.from
	case p.trig.prob > 0:
		if p.rng == nil {
			p.rng = rand.New(rand.NewSource(p.trig.seed))
		}
		fire = p.rng.Float64() < p.trig.prob
	}
	if fire {
		p.fires++
	}
	return p.fault, fire
}

// The registry. The enabled flag is the only state the production
// fast path reads; the map behind it is touched exclusively while
// enabled (chaos tests, AIG_FAULTS runs).
var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  = map[string]*point{}
)

// Enabled reports whether the registry is live.
func Enabled() bool { return enabled.Load() }

// Enable arms the registry: hits on armed points start firing.
func Enable() { enabled.Store(true) }

// Disable stops every point from firing without forgetting schedules
// or counters.
func Disable() { enabled.Store(false) }

// Reset disables the registry and disarms every point. Chaos tests
// defer it so no schedule leaks into the next test.
func Reset() {
	Disable()
	mu.Lock()
	points = map[string]*point{}
	mu.Unlock()
}

// Arm schedules fault f at the named point under trigger t, replacing
// any previous arming (and its hit/fire counters).
func Arm(name string, t Trigger, f Fault) {
	mu.Lock()
	points[name] = &point{trig: t, fault: f}
	mu.Unlock()
}

// Disarm removes the named point's schedule.
func Disarm(name string) {
	mu.Lock()
	delete(points, name)
	mu.Unlock()
}

// Armed returns the names of every armed point, sorted.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for name := range points {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Hits returns how many times the named point has been traversed
// while enabled.
func Hits(name string) uint64 {
	if p := lookup(name); p != nil {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.hits
	}
	return 0
}

// Fires returns how many times the named point has injected a fault.
func Fires(name string) uint64 {
	if p := lookup(name); p != nil {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.fires
	}
	return 0
}

func lookup(name string) *point {
	mu.Lock()
	defer mu.Unlock()
	return points[name]
}

// fireHook, when set, observes every firing at a context-aware site
// (HitCtx): request-tracing registers one so chaos runs can attribute
// each injected fault to the request it hit. Stored atomically so the
// disabled path stays lock-free.
var fireHook atomic.Pointer[func(ctx context.Context, name string, m Mode)]

// SetFireHook installs fn as the firing observer (nil removes it).
// fn must be fast and must not traverse injection points itself.
func SetFireHook(fn func(ctx context.Context, name string, m Mode)) {
	if fn == nil {
		fireHook.Store(nil)
		return
	}
	fireHook.Store(&fn)
}

// Err is the root of every injected failure: errors.Is(err, Err)
// distinguishes an injected fault from a real one.
var Err = fmt.Errorf("injected fault")

func injectedError(name string, m Mode) error {
	switch m {
	case ModeENOSPC:
		return fmt.Errorf("faultinject: %s: %w: %w", name, Err, syscall.ENOSPC)
	case ModeFsync:
		return fmt.Errorf("faultinject: %s: fsync: %w: %w", name, Err, syscall.EIO)
	case ModeDeadline:
		return fmt.Errorf("faultinject: %s: %w: %w", name, Err, context.DeadlineExceeded)
	default:
		return fmt.Errorf("faultinject: %s: %w", name, Err)
	}
}

// Hit consults the named point and returns the injected error if it
// fires (nil for ModeLatency, which stalls instead). The disabled
// path is a single atomic load.
func Hit(name string) error {
	if !enabled.Load() {
		return nil
	}
	return hitSlow(name)
}

func hitSlow(name string) error {
	// Hit is the context-free entry point by contract; HitCtx is the
	// attributed path.
	//lint:ignore ctxflow Hit's signature is deliberately context-free — injected delays must fire on schedule even on paths with no request context
	return hitSlowCtx(context.Background(), name)
}

// HitCtx is Hit with request attribution: when the point fires and a
// fire hook is installed, the hook sees (ctx, name, mode) before the
// fault takes effect — so a trace span in ctx records exactly which
// request the injected failure landed on. Semantics are otherwise
// identical to Hit, including the single-atomic-load disabled path.
func HitCtx(ctx context.Context, name string) error {
	if !enabled.Load() {
		return nil
	}
	return hitSlowCtx(ctx, name)
}

func hitSlowCtx(ctx context.Context, name string) error {
	p := lookup(name)
	if p == nil {
		return nil
	}
	f, fire := p.step()
	if !fire {
		return nil
	}
	if hook := fireHook.Load(); hook != nil {
		(*hook)(ctx, name, f.Mode)
	}
	if f.Mode == ModeLatency {
		time.Sleep(f.Latency)
		return nil
	}
	return injectedError(name, f.Mode)
}

// Delay consults the named point at a site that cannot fail: only
// latency faults take effect; error modes armed here fire (and count)
// but inject nothing. The disabled path is a single atomic load.
func Delay(name string) {
	if !enabled.Load() {
		return
	}
	_ = hitSlow(name)
}

// WrapWriter interposes the named point on every Write through w.
// While the registry is disabled each Write costs one atomic load and
// delegates untouched. A firing point injects its mode: error modes
// fail the write outright; ModeShortWrite and ModeTornWrite persist
// only a prefix (see Fault.KeepBytes) so the downstream file really is
// torn, exactly like a kill mid-write.
func WrapWriter(name string, w io.Writer) io.Writer {
	return &faultWriter{name: name, w: w}
}

type faultWriter struct {
	name string
	w    io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if !enabled.Load() {
		return fw.w.Write(p)
	}
	pt := lookup(fw.name)
	if pt == nil {
		return fw.w.Write(p)
	}
	f, fire := pt.step()
	if !fire {
		return fw.w.Write(p)
	}
	switch f.Mode {
	case ModeLatency:
		time.Sleep(f.Latency)
		return fw.w.Write(p)
	case ModeShortWrite, ModeTornWrite:
		keep := f.KeepBytes
		if keep <= 0 || keep >= len(p) {
			keep = len(p) / 2
		}
		n, err := fw.w.Write(p[:keep])
		if err != nil {
			return n, err
		}
		if f.Mode == ModeShortWrite {
			return n, nil // n < len(p): the io.Writer short-write shape
		}
		return n, injectedError(fw.name, f.Mode)
	default:
		return 0, injectedError(fw.name, f.Mode)
	}
}
