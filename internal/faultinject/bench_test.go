package faultinject

import "testing"

// The disabled-path acceptance benchmark: Hit with the registry off
// must cost a single atomic load over the bare-call baseline. The
// committed numbers live in BENCH_faultinject.txt at the repo root.

//go:noinline
func baseline(string) error { return nil }

// BenchmarkBaselineCall is the "before" shape: a durability boundary
// with no injection point — one no-op call.
func BenchmarkBaselineCall(b *testing.B) {
	Reset()
	for i := 0; i < b.N; i++ {
		if err := baseline("harness/atomic_sync"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHitDisabled is the "after" shape: the same boundary with an
// injection point, registry disabled (the production state).
func BenchmarkHitDisabled(b *testing.B) {
	Reset()
	for i := 0; i < b.N; i++ {
		if err := Hit("harness/atomic_sync"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHitEnabledUnarmed bounds the cost of running chaos suites:
// registry on, this point not armed (mutex + map lookup).
func BenchmarkHitEnabledUnarmed(b *testing.B) {
	Reset()
	Enable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Hit("harness/atomic_sync"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	Reset()
}

// BenchmarkHitEnabledArmedMiss: armed point whose trigger does not
// fire (the steady state of an OnCall(N) schedule before N).
func BenchmarkHitEnabledArmedMiss(b *testing.B) {
	Reset()
	Arm("harness/atomic_sync", OnCall(1<<62), Fault{Mode: ModeError})
	Enable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Hit("harness/atomic_sync"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	Reset()
}
