package faultinject

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestDisabledHitIsNil(t *testing.T) {
	Reset()
	Arm("p/armed", Always(), Fault{Mode: ModeError})
	// Armed but not enabled: nothing fires.
	for i := 0; i < 3; i++ {
		if err := Hit("p/armed"); err != nil {
			t.Fatalf("disabled Hit returned %v", err)
		}
	}
	if got := Hits("p/armed"); got != 0 {
		t.Fatalf("disabled hits counted: %d", got)
	}
	Reset()
}

func TestOnCallFiresExactlyOnce(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p/nth", OnCall(3), Fault{Mode: ModeENOSPC})
	Enable()
	var errs []error
	for i := 0; i < 5; i++ {
		errs = append(errs, Hit("p/nth"))
	}
	for i, err := range errs {
		want := i == 2
		if got := err != nil; got != want {
			t.Errorf("hit %d: err=%v, want fire=%t", i+1, err, want)
		}
	}
	if !errors.Is(errs[2], Err) || !errors.Is(errs[2], syscall.ENOSPC) {
		t.Errorf("injected error %v does not wrap Err and ENOSPC", errs[2])
	}
	if got := Fires("p/nth"); got != 1 {
		t.Errorf("fires = %d, want 1", got)
	}
	if got := Hits("p/nth"); got != 5 {
		t.Errorf("hits = %d, want 5", got)
	}
}

func TestFromCallFiresFromNOn(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p/from", FromCall(2), Fault{Mode: ModeError})
	Enable()
	if err := Hit("p/from"); err != nil {
		t.Fatalf("hit 1 fired: %v", err)
	}
	for i := 2; i <= 4; i++ {
		if err := Hit("p/from"); err == nil {
			t.Fatalf("hit %d did not fire", i)
		}
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	pattern := func(seed int64) string {
		Arm("p/prob", Probability(0.5, seed), Fault{Mode: ModeError})
		Enable()
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if Hit("p/prob") != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
	c := pattern(43)
	if a == c {
		t.Errorf("different seeds produced the same 64-hit pattern %s", a)
	}
	if !strings.Contains(a, "1") || !strings.Contains(a, "0") {
		t.Errorf("p=0.5 pattern degenerate: %s", a)
	}
}

func TestDeadlineModeWrapsDeadlineExceeded(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p/deadline", Always(), Fault{Mode: ModeDeadline})
	Enable()
	if err := Hit("p/deadline"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline fault = %v, want wrapping context.DeadlineExceeded", err)
	}
}

func TestLatencyModeStallsWithoutError(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p/slow", Always(), Fault{Mode: ModeLatency, Latency: 20 * time.Millisecond})
	Enable()
	start := time.Now()
	if err := Hit("p/slow"); err != nil {
		t.Fatalf("latency fault returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("latency fault stalled only %v", d)
	}
	// Delay at a cannot-fail site also stalls.
	start = time.Now()
	Delay("p/slow")
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("Delay stalled only %v", d)
	}
}

func TestWrapWriterShortAndTorn(t *testing.T) {
	Reset()
	defer Reset()
	payload := []byte("0123456789abcdef")

	var buf bytes.Buffer
	Arm("p/w", OnCall(1), Fault{Mode: ModeShortWrite})
	Enable()
	w := WrapWriter("p/w", &buf)
	n, err := w.Write(payload)
	if err != nil || n != len(payload)/2 {
		t.Errorf("short write = (%d, %v), want (%d, nil)", n, err, len(payload)/2)
	}
	if buf.Len() != len(payload)/2 {
		t.Errorf("short write persisted %d bytes, want %d", buf.Len(), len(payload)/2)
	}
	// Subsequent writes pass through untouched.
	buf.Reset()
	if n, err := w.Write(payload); n != len(payload) || err != nil {
		t.Errorf("post-fire write = (%d, %v)", n, err)
	}

	buf.Reset()
	Arm("p/w2", OnCall(1), Fault{Mode: ModeTornWrite, KeepBytes: 3})
	w2 := WrapWriter("p/w2", &buf)
	n, err = w2.Write(payload)
	if n != 3 || !errors.Is(err, Err) {
		t.Errorf("torn write = (%d, %v), want (3, injected)", n, err)
	}
	if got := buf.String(); got != "012" {
		t.Errorf("torn write persisted %q, want %q", got, "012")
	}
}

func TestWrapWriterShortWriteSurfacesThroughBufio(t *testing.T) {
	Reset()
	defer Reset()
	var buf bytes.Buffer
	Arm("p/bufio", OnCall(1), Fault{Mode: ModeShortWrite})
	Enable()
	bw := bufio.NewWriter(WrapWriter("p/bufio", &buf))
	if _, err := bw.Write([]byte("hello world\n")); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Errorf("bufio flush over short write = %v, want io.ErrShortWrite", err)
	}
	if buf.Len() == 0 || buf.Len() == len("hello world\n") {
		t.Errorf("short write through bufio persisted %d bytes, want a strict prefix", buf.Len())
	}
}

func TestWrapWriterDisabledPassesThrough(t *testing.T) {
	Reset()
	var buf bytes.Buffer
	Arm("p/off", Always(), Fault{Mode: ModeError})
	w := WrapWriter("p/off", &buf)
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Errorf("disabled wrapped write = (%d, %v)", n, err)
	}
	Reset()
}

func TestArmedAndReset(t *testing.T) {
	Reset()
	Arm("b/two", Always(), Fault{})
	Arm("a/one", Always(), Fault{})
	if got := Armed(); len(got) != 2 || got[0] != "a/one" || got[1] != "b/two" {
		t.Errorf("Armed() = %v", got)
	}
	Disarm("a/one")
	if got := Armed(); len(got) != 1 || got[0] != "b/two" {
		t.Errorf("after Disarm, Armed() = %v", got)
	}
	Reset()
	if Enabled() || len(Armed()) != 0 {
		t.Error("Reset left state behind")
	}
}

func TestArmFromSpec(t *testing.T) {
	Reset()
	defer Reset()
	spec := "a/sync=fsync@3; b/write=torn:7@2; c/spill=enospc@p0.25/42; d/store=latency:5ms; e/any=deadline"
	if err := ArmFromSpec(spec); err != nil {
		t.Fatal(err)
	}
	if got := Armed(); len(got) != 5 {
		t.Fatalf("armed %v", got)
	}
	Enable()
	// a/sync: fsync error on exactly the 3rd hit.
	for i := 1; i <= 4; i++ {
		err := Hit("a/sync")
		if (err != nil) != (i == 3) {
			t.Errorf("a/sync hit %d: %v", i, err)
		}
		if i == 3 && !errors.Is(err, syscall.EIO) {
			t.Errorf("fsync fault %v does not wrap EIO", err)
		}
	}
	// b/write: torn at 7 bytes on the 2nd write.
	var buf bytes.Buffer
	w := WrapWriter("b/write", &buf)
	if _, err := w.Write([]byte("0123456789")); err != nil {
		t.Fatalf("1st write: %v", err)
	}
	n, err := w.Write([]byte("0123456789"))
	if n != 7 || !errors.Is(err, Err) {
		t.Errorf("2nd write = (%d, %v), want torn at 7", n, err)
	}
	// e/any: deadline on every hit.
	if err := Hit("e/any"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("e/any = %v", err)
	}
}

func TestArmFromSpecRejectsMalformed(t *testing.T) {
	defer Reset()
	for _, bad := range []string{
		"nomode",
		"p=unknownmode",
		"p=latency",       // latency without duration
		"p=enospc@p0.5",   // probability without seed
		"p=enospc@zero",   // unparsable trigger
		"p=enospc@0",      // zero call index
		"p=short:x",       // bad keep-bytes
		"p=error:arg",     // argument on argless mode
		"p=enospc@p1.5/1", // probability out of range
		"=enospc",         // empty point
	} {
		Reset()
		if err := ArmFromSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	Reset()
	defer Reset()
	t.Setenv(EnvVar, "env/point=error@1")
	if err := EnableFromEnv(); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("EnableFromEnv did not enable")
	}
	if err := Hit("env/point"); !errors.Is(err, Err) {
		t.Errorf("env-armed point did not fire: %v", err)
	}

	Reset()
	t.Setenv(EnvVar, "broken spec")
	if err := EnableFromEnv(); err == nil {
		t.Error("malformed env spec accepted")
	}
	if Enabled() {
		t.Error("malformed env spec enabled the registry")
	}

	Reset()
	t.Setenv(EnvVar, "")
	if err := EnableFromEnv(); err != nil || Enabled() {
		t.Errorf("empty env: err=%v enabled=%t", err, Enabled())
	}
}
