package tt

import (
	"math/rand"
	"testing"
)

func TestUnateness(t *testing.T) {
	n := 3
	and := Var(0, n).And(Var(1, n))
	if and.UnatenessIn(0) != PositiveUnate || and.UnatenessIn(1) != PositiveUnate {
		t.Error("AND should be positive unate")
	}
	if and.UnatenessIn(2) != Independent {
		t.Error("unused variable should be independent")
	}
	neg := Var(0, n).Not().And(Var(1, n))
	if neg.UnatenessIn(0) != NegativeUnate {
		t.Error("!x0 & x1 should be negative unate in x0")
	}
	xor := Var(0, n).Xor(Var(1, n))
	if xor.UnatenessIn(0) != Binate || xor.UnatenessIn(1) != Binate {
		t.Error("XOR should be binate")
	}
	if !and.IsUnate() || xor.IsUnate() {
		t.Error("IsUnate wrong")
	}
	for _, u := range []Unateness{Independent, PositiveUnate, NegativeUnate, Binate} {
		if u.String() == "" {
			t.Error("empty unateness string")
		}
	}
}

func TestSymmetricIn(t *testing.T) {
	n := 3
	maj := Var(0, n).And(Var(1, n)).Or(Var(0, n).And(Var(2, n))).Or(Var(1, n).And(Var(2, n)))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if !maj.SymmetricIn(u, v) {
				t.Errorf("majority should be symmetric in (%d,%d)", u, v)
			}
		}
	}
	f := Var(0, n).And(Var(1, n).Or(Var(2, n)))
	if f.SymmetricIn(0, 1) {
		t.Error("x0&(x1|x2) is not symmetric in (0,1)")
	}
	if !f.SymmetricIn(1, 2) {
		t.Error("x0&(x1|x2) is symmetric in (1,2)")
	}
}

func TestTotallySymmetric(t *testing.T) {
	n := 5
	// Threshold >= 3.
	f := New(n)
	for m := 0; m < 1<<n; m++ {
		if popcountInt(m) >= 3 {
			f.SetBit(m, true)
		}
	}
	profile, ok := f.IsTotallySymmetric()
	if !ok {
		t.Fatal("threshold function should be totally symmetric")
	}
	for c := 0; c <= n; c++ {
		if profile[c] != (c >= 3) {
			t.Errorf("profile[%d] = %v", c, profile[c])
		}
	}
	g := Var(0, n).And(Var(1, n))
	if _, ok := g.IsTotallySymmetric(); ok {
		t.Error("AND of two of five vars is not totally symmetric")
	}
}

func TestInfluence(t *testing.T) {
	n := 3
	xor := Var(0, n).Xor(Var(1, n)).Xor(Var(2, n))
	for v := 0; v < n; v++ {
		if xor.Influence(v) != 1 {
			t.Errorf("XOR influence(%d) = %f, want 1", v, xor.Influence(v))
		}
	}
	and := Var(0, n).And(Var(1, n)).And(Var(2, n))
	if got := and.Influence(0); got != 0.25 {
		t.Errorf("AND3 influence = %f, want 0.25", got)
	}
	if Const(n, true).Influence(1) != 0 {
		t.Error("constant influence should be 0")
	}
}

func TestSymmetryClasses(t *testing.T) {
	n := 4
	// f = (x0 ^ x1) & (x2 | x3): classes {0,1} and {2,3}.
	f := Var(0, n).Xor(Var(1, n)).And(Var(2, n).Or(Var(3, n)))
	classes := f.SymmetryClasses()
	if len(classes) != 2 {
		t.Fatalf("got %d classes: %v", len(classes), classes)
	}
	if len(classes[0]) != 2 || len(classes[1]) != 2 {
		t.Errorf("classes = %v", classes)
	}
	// Random functions: classes partition the support.
	r := rand.New(rand.NewSource(201))
	for trial := 0; trial < 10; trial++ {
		g := Random(5, r)
		seen := map[int]bool{}
		total := 0
		for _, cls := range g.SymmetryClasses() {
			for _, v := range cls {
				if seen[v] {
					t.Fatal("variable in two classes")
				}
				seen[v] = true
				total++
			}
		}
		if total != g.SupportSize() {
			t.Fatal("classes do not cover the support")
		}
	}
}
