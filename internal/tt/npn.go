package tt

import "fmt"

// NPNTransform records how a function was mapped to its NPN-canonical
// representative: first inputs are complemented according to Flips, then
// inputs are permuted (original variable Perm[i] becomes canonical
// variable i), and finally the output is complemented if OutFlip is set.
type NPNTransform struct {
	Perm    []int
	Flips   uint32 // bit v set: original input v complemented before permuting
	OutFlip bool
}

// Apply maps t to its image under the transform (the canonical form when
// the transform came from NPNCanon of t).
func (x NPNTransform) Apply(t TT) TT {
	r := t
	for v := 0; v < t.NumVars(); v++ {
		if x.Flips>>uint(v)&1 == 1 {
			r = r.FlipVar(v)
		}
	}
	r = r.Permute(x.Perm)
	if x.OutFlip {
		r = r.Not()
	}
	return r
}

// Inverse returns the transform mapping the canonical form back to the
// original function.
func (x NPNTransform) Inverse() NPNTransform {
	inv := NPNTransform{Perm: make([]int, len(x.Perm)), OutFlip: x.OutFlip}
	// x maps original var p=Perm[i] to canonical var i (after flipping
	// original inputs). The inverse permutes canonical var i back to p and
	// then flips, but since flips commute with renaming when re-indexed we
	// fold them: inverse flips act on canonical variable i when original
	// variable Perm[i] was flipped.
	for i, p := range x.Perm {
		inv.Perm[p] = i
		if x.Flips>>uint(p)&1 == 1 {
			inv.Flips |= 1 << uint(i)
		}
	}
	return inv
}

// permutations returns all permutations of 0..n-1.
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, used uint32)
	rec = func(cur []int, used uint32) {
		if len(cur) == n {
			cp := make([]int, n)
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for v := 0; v < n; v++ {
			if used>>uint(v)&1 == 0 {
				rec(append(cur, v), used|1<<uint(v))
			}
		}
	}
	rec(make([]int, 0, n), 0)
	return out
}

var permCache = map[int][][]int{}

func allPerms(n int) [][]int {
	if p, ok := permCache[n]; ok {
		return p
	}
	p := permutations(n)
	permCache[n] = p
	return p
}

// NPNCanon computes the NPN-canonical representative of t by exhaustive
// enumeration over input negations, input permutations, and output
// negation, choosing the lexicographically smallest truth table. It is
// intended for small functions (<= 6 variables; the 4-variable case used
// by rewriting enumerates 768 transforms).
//
// The returned transform satisfies canon == transform.Apply(t) and
// t == transform.Inverse().Apply(canon).
func NPNCanon(t TT) (canon TT, transform NPNTransform) {
	n := t.NumVars()
	if n > 6 {
		panic(fmt.Sprintf("tt: NPNCanon limited to 6 variables, got %d", n))
	}
	best := TT{}
	var bestX NPNTransform
	have := false

	for flips := uint32(0); flips < 1<<uint(n); flips++ {
		flipped := t
		for v := 0; v < n; v++ {
			if flips>>uint(v)&1 == 1 {
				flipped = flipped.FlipVar(v)
			}
		}
		for _, perm := range allPerms(n) {
			p := flipped.Permute(perm)
			for out := 0; out < 2; out++ {
				cand := p
				if out == 1 {
					cand = p.Not()
				}
				if !have || lessTT(cand, best) {
					best = cand
					bestX = NPNTransform{Perm: append([]int(nil), perm...), Flips: flips, OutFlip: out == 1}
					have = true
				}
			}
		}
	}
	return best, bestX
}

// lessTT orders truth tables lexicographically by their words
// (most-significant word first).
func lessTT(a, b TT) bool {
	for i := len(a.words) - 1; i >= 0; i-- {
		if a.words[i] != b.words[i] {
			return a.words[i] < b.words[i]
		}
	}
	return false
}
