package tt

// This file provides functional-analysis utilities on truth tables:
// unateness, variable symmetry, influence, and totally-symmetric
// detection. They support synthesis heuristics and workload
// characterization.

// Unateness classifies a function's dependence on one variable.
type Unateness int

// Unateness values.
const (
	Independent Unateness = iota // variable not in the support
	PositiveUnate
	NegativeUnate
	Binate
)

func (u Unateness) String() string {
	switch u {
	case Independent:
		return "independent"
	case PositiveUnate:
		return "positive-unate"
	case NegativeUnate:
		return "negative-unate"
	default:
		return "binate"
	}
}

// UnatenessIn reports how f depends on variable v: positive unate when
// raising v never lowers f, negative unate when it never raises f.
func (t TT) UnatenessIn(v int) Unateness {
	c0, c1 := t.Cofactor(v, false), t.Cofactor(v, true)
	posOK := c0.AndNot(c1).IsConst0() // c0 <= c1
	negOK := c1.AndNot(c0).IsConst0() // c1 <= c0
	switch {
	case posOK && negOK:
		return Independent
	case posOK:
		return PositiveUnate
	case negOK:
		return NegativeUnate
	default:
		return Binate
	}
}

// IsUnate reports whether f is unate in every support variable.
func (t TT) IsUnate() bool {
	for v := 0; v < t.nvars; v++ {
		if t.UnatenessIn(v) == Binate {
			return false
		}
	}
	return true
}

// SymmetricIn reports whether f is invariant under exchanging variables
// u and v (first-order symmetry).
func (t TT) SymmetricIn(u, v int) bool {
	if u == v {
		return true
	}
	// f is symmetric in (u, v) iff the (0,1) and (1,0) cofactors agree.
	c01 := t.Cofactor(u, false).Cofactor(v, true)
	c10 := t.Cofactor(u, true).Cofactor(v, false)
	return c01.Equal(c10)
}

// IsTotallySymmetric reports whether f depends only on the number of
// true inputs; if so it also returns the value profile indexed by
// popcount.
func (t TT) IsTotallySymmetric() ([]bool, bool) {
	profile := make([]bool, t.nvars+1)
	set := make([]bool, t.nvars+1)
	for m := 0; m < t.NumBits(); m++ {
		c := popcountInt(m)
		v := t.Bit(m)
		if !set[c] {
			set[c] = true
			profile[c] = v
		} else if profile[c] != v {
			return nil, false
		}
	}
	return profile, true
}

// Influence returns the Boolean influence of variable v: the fraction of
// input pairs differing only in v on which f differs.
func (t TT) Influence(v int) float64 {
	d := t.Cofactor(v, false).Xor(t.Cofactor(v, true))
	return float64(d.CountOnes()) / float64(t.NumBits())
}

// SymmetryClasses partitions the support variables into maximal groups
// of pairwise symmetric variables.
func (t TT) SymmetryClasses() [][]int {
	sup := t.Support()
	var classes [][]int
	for _, v := range sup {
		placed := false
		for i, cls := range classes {
			if t.SymmetricIn(cls[0], v) {
				classes[i] = append(cls, v)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{v})
		}
	}
	return classes
}

func popcountInt(m int) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}
