package tt

import (
	"fmt"
	"math/bits"
	"strings"
)

// Cube is a product term over up to MaxVars variables. Bit v of Mask marks
// variable v as present in the cube; the corresponding bit of Val gives its
// required polarity (1 = positive literal). An empty cube (Mask == 0) is
// the tautology.
type Cube struct {
	Mask uint32
	Val  uint32
}

// NumLits returns the number of literals in the cube.
func (c Cube) NumLits() int { return bits.OnesCount32(c.Mask) }

// HasVar reports whether variable v appears in the cube.
func (c Cube) HasVar(v int) bool { return c.Mask>>uint(v)&1 == 1 }

// Phase reports the polarity of variable v (true = positive literal);
// meaningful only when HasVar(v).
func (c Cube) Phase(v int) bool { return c.Val>>uint(v)&1 == 1 }

// WithLit returns the cube extended with a literal on variable v.
func (c Cube) WithLit(v int, positive bool) Cube {
	c.Mask |= 1 << uint(v)
	if positive {
		c.Val |= 1 << uint(v)
	} else {
		c.Val &^= 1 << uint(v)
	}
	return c
}

// Contains reports whether minterm m satisfies the cube.
func (c Cube) Contains(m int) bool {
	return uint32(m)&c.Mask == c.Val&c.Mask
}

// TT expands the cube into a truth table over n variables.
func (c Cube) TT(n int) TT {
	t := Const(n, true)
	for v := 0; v < n; v++ {
		if !c.HasVar(v) {
			continue
		}
		x := Var(v, n)
		if !c.Phase(v) {
			x = x.Not()
		}
		t = t.And(x)
	}
	return t
}

// String renders the cube in the conventional espresso input-plane form:
// one character per variable (variable 0 first), '1' positive, '0'
// negative, '-' absent.
func (c Cube) String() string {
	var b strings.Builder
	for v := 0; v < MaxVars; v++ {
		if c.Mask>>uint(v) == 0 {
			break
		}
		switch {
		case !c.HasVar(v):
			b.WriteByte('-')
		case c.Phase(v):
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// ParseCube parses an espresso-style cube string over n variables.
func ParseCube(n int, s string) (Cube, error) {
	var c Cube
	if len(s) > n {
		return c, fmt.Errorf("tt: cube %q longer than %d variables", s, n)
	}
	for i, r := range s {
		switch r {
		case '1':
			c = c.WithLit(i, true)
		case '0':
			c = c.WithLit(i, false)
		case '-':
		default:
			return c, fmt.Errorf("tt: invalid cube character %q", r)
		}
	}
	return c, nil
}

// CoverTT expands a cube cover (interpreted as an OR of cubes) into a
// truth table over n variables.
func CoverTT(n int, cover []Cube) TT {
	t := New(n)
	for _, c := range cover {
		t = t.Or(c.TT(n))
	}
	return t
}

// Isop computes an irredundant sum-of-products cover of any function f
// with on-set lower bound L and upper bound U (L implies U) using the
// Minato-Morreale procedure. The returned cover satisfies
// L <= cover <= U. Passing L == U yields an ISOP of the exact function.
func Isop(L, U TT) []Cube {
	L.check(U)
	if !L.AndNot(U).IsConst0() {
		panic("tt: Isop requires L <= U")
	}
	cover, _ := isopRec(L, U, L.nvars)
	return cover
}

// IsopOf computes an irredundant SOP cover of f exactly.
func IsopOf(f TT) []Cube { return Isop(f, f) }

// isopRec returns a cover and the function it realizes, considering only
// the first nv variables (all higher variables are constant within the
// current recursion branch).
func isopRec(L, U TT, nv int) ([]Cube, TT) {
	if L.IsConst0() {
		return nil, New(L.nvars)
	}
	if U.IsConst1() {
		return []Cube{{}}, Const(L.nvars, true)
	}
	// Find the topmost variable on which L or U actually depends.
	v := nv - 1
	for v >= 0 && !L.HasVar(v) && !U.HasVar(v) {
		v--
	}
	if v < 0 {
		// L and U are constants; L != 0 and U != 1 is impossible here
		// because L <= U, so L == 0 handled above means U == 0 too.
		panic("tt: isop internal: non-constant expected")
	}
	L0, L1 := L.Cofactor(v, false), L.Cofactor(v, true)
	U0, U1 := U.Cofactor(v, false), U.Cofactor(v, true)

	// Cubes that must contain the negative literal of v.
	c0, f0 := isopRec(L0.AndNot(U1), U0, v)
	// Cubes that must contain the positive literal of v.
	c1, f1 := isopRec(L1.AndNot(U0), U1, v)
	// Remainder handled without a literal on v.
	Lstar := L0.AndNot(f0).Or(L1.AndNot(f1))
	cs, fs := isopRec(Lstar, U0.And(U1), v)

	cover := make([]Cube, 0, len(c0)+len(c1)+len(cs))
	for _, c := range c0 {
		cover = append(cover, c.WithLit(v, false))
	}
	for _, c := range c1 {
		cover = append(cover, c.WithLit(v, true))
	}
	cover = append(cover, cs...)

	x := Var(v, L.nvars)
	f := fs.Or(x.Not().And(f0)).Or(x.And(f1))
	return cover, f
}
