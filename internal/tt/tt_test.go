package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarProjection(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for v := 0; v < n; v++ {
			x := Var(v, n)
			for m := 0; m < 1<<n; m++ {
				want := m>>uint(v)&1 == 1
				if x.Bit(m) != want {
					t.Fatalf("Var(%d,%d).Bit(%d) = %v, want %v", v, n, m, x.Bit(m), want)
				}
			}
		}
	}
}

func TestConsts(t *testing.T) {
	for n := 0; n <= 8; n++ {
		if !Const(n, false).IsConst0() {
			t.Errorf("Const(%d,false) not const0", n)
		}
		if !Const(n, true).IsConst1() {
			t.Errorf("Const(%d,true) not const1", n)
		}
		if Const(n, true).IsConst0() || Const(n, false).IsConst1() {
			t.Errorf("n=%d: const confusion", n)
		}
		if got := Const(n, true).CountOnes(); got != 1<<n {
			t.Errorf("Const(%d,true).CountOnes() = %d, want %d", n, got, 1<<n)
		}
	}
}

func TestBooleanAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 1; n <= 8; n++ {
		a, b := Random(n, r), Random(n, r)
		for m := 0; m < 1<<n; m++ {
			if a.And(b).Bit(m) != (a.Bit(m) && b.Bit(m)) {
				t.Fatalf("n=%d And mismatch at %d", n, m)
			}
			if a.Or(b).Bit(m) != (a.Bit(m) || b.Bit(m)) {
				t.Fatalf("n=%d Or mismatch at %d", n, m)
			}
			if a.Xor(b).Bit(m) != (a.Bit(m) != b.Bit(m)) {
				t.Fatalf("n=%d Xor mismatch at %d", n, m)
			}
			if a.Not().Bit(m) != !a.Bit(m) {
				t.Fatalf("n=%d Not mismatch at %d", n, m)
			}
			if a.AndNot(b).Bit(m) != (a.Bit(m) && !b.Bit(m)) {
				t.Fatalf("n=%d AndNot mismatch at %d", n, m)
			}
		}
	}
}

func TestDeMorganProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(w0, w1 uint64) bool {
		a := FromWords(7, []uint64{w0, w1})
		b := FromWords(7, []uint64{w1, ^w0})
		return a.And(b).Not().Equal(a.Not().Or(b.Not()))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCofactorBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for n := 1; n <= 8; n++ {
		f := Random(n, r)
		for v := 0; v < n; v++ {
			c0, c1 := f.Cofactor(v, false), f.Cofactor(v, true)
			for m := 0; m < 1<<n; m++ {
				m0 := m &^ (1 << uint(v))
				m1 := m | 1<<uint(v)
				if c0.Bit(m) != f.Bit(m0) {
					t.Fatalf("n=%d v=%d: cofactor0 bit %d", n, v, m)
				}
				if c1.Bit(m) != f.Bit(m1) {
					t.Fatalf("n=%d v=%d: cofactor1 bit %d", n, v, m)
				}
			}
		}
	}
}

func TestShannonExpansion(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for n := 1; n <= 9; n++ {
		f := Random(n, r)
		for v := 0; v < n; v++ {
			x := Var(v, n)
			rebuilt := x.And(f.Cofactor(v, true)).Or(x.Not().And(f.Cofactor(v, false)))
			if !rebuilt.Equal(f) {
				t.Fatalf("n=%d v=%d: Shannon expansion broken", n, v)
			}
		}
	}
}

func TestSupport(t *testing.T) {
	n := 6
	f := Var(1, n).Xor(Var(4, n))
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 4 {
		t.Errorf("Support = %v, want [1 4]", sup)
	}
	if Const(n, true).SupportSize() != 0 {
		t.Error("constant should have empty support")
	}
}

func TestFlipVar(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for n := 1; n <= 9; n++ {
		f := Random(n, r)
		for v := 0; v < n; v++ {
			g := f.FlipVar(v)
			for m := 0; m < 1<<n; m++ {
				if g.Bit(m) != f.Bit(m^(1<<uint(v))) {
					t.Fatalf("n=%d v=%d: FlipVar bit %d", n, v, m)
				}
			}
			if !g.FlipVar(v).Equal(f) {
				t.Fatalf("n=%d v=%d: FlipVar not involutive", n, v)
			}
		}
	}
}

func TestSwapAdjacentMatchesPermute(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for n := 2; n <= 9; n++ {
		f := Random(n, r)
		for v := 0; v+1 < n; v++ {
			perm := make([]int, n)
			for i := range perm {
				perm[i] = i
			}
			perm[v], perm[v+1] = perm[v+1], perm[v]
			a, b := f.SwapAdjacent(v), f.Permute(perm)
			if !a.Equal(b) {
				t.Fatalf("n=%d v=%d: SwapAdjacent disagrees with Permute", n, v)
			}
		}
	}
}

func TestPermuteSemantics(t *testing.T) {
	// f depends on variable 0 only; permuting 0->2 must move the
	// dependence to variable 2.
	n := 3
	f := Var(0, n)
	perm := []int{2, 0, 1} // original var perm[i] becomes var i: 0 -> position 1
	g := f.Permute(perm)
	if !g.Equal(Var(1, n)) {
		t.Errorf("Permute moved Var(0) to %v, want Var(1)", g.Support())
	}
}

func TestPermuteComposition(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 6
	f := Random(n, r)
	perm := []int{3, 1, 5, 0, 2, 4}
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	if !f.Permute(perm).Permute(inv).Equal(f) {
		t.Error("Permute by perm then inverse is not identity")
	}
}

func TestExpandShrink(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for n := 1; n <= 7; n++ {
		f := Random(n, r)
		for m := n; m <= 9; m++ {
			e := f.Expand(m)
			for i := n; i < m; i++ {
				if e.HasVar(i) {
					t.Fatalf("Expand(%d->%d) introduced dependence on %d", n, m, i)
				}
			}
			if !e.Shrink(n).Equal(f) {
				t.Fatalf("Expand(%d->%d) then Shrink is not identity", n, m)
			}
		}
	}
}

func TestHexRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for n := 2; n <= 9; n++ {
		f := Random(n, r)
		s := f.Hex()
		g, err := ParseHex(n, s)
		if err != nil {
			t.Fatalf("ParseHex(%d, %q): %v", n, s, err)
		}
		if !g.Equal(f) {
			t.Fatalf("hex round trip failed for n=%d", n)
		}
	}
	if _, err := ParseHex(4, "123"); err == nil {
		t.Error("short hex string should fail")
	}
	if _, err := ParseHex(4, "12g4"); err == nil {
		t.Error("invalid hex digit should fail")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f, err := ParseBinary(2, "0110") // XOR
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(Var(0, 2).Xor(Var(1, 2))) {
		t.Error("ParseBinary(0110) is not XOR")
	}
	if f.String() != "0110" {
		t.Errorf("String() = %q", f.String())
	}
}

func TestKnownFunctions(t *testing.T) {
	// Majority-of-three: 0xE8.
	maj := Var(0, 3).And(Var(1, 3)).Or(Var(0, 3).And(Var(2, 3))).Or(Var(1, 3).And(Var(2, 3)))
	if maj.Hex() != "e8" {
		t.Errorf("maj3 hex = %q, want e8", maj.Hex())
	}
	// Full-adder sum: 3-input XOR = 0x96.
	sum := Var(0, 3).Xor(Var(1, 3)).Xor(Var(2, 3))
	if sum.Hex() != "96" {
		t.Errorf("xor3 hex = %q, want 96", sum.Hex())
	}
}

func TestCountOnes(t *testing.T) {
	f := Var(3, 7)
	if got := f.CountOnes(); got != 64 {
		t.Errorf("Var(3,7).CountOnes() = %d, want 64", got)
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("New(17)", func() { New(17) })
	assertPanics("Var out of range", func() { Var(3, 3) })
	assertPanics("mixed sizes", func() { Var(0, 3).And(Var(0, 4)) })
	assertPanics("Shrink live var", func() { Var(3, 4).Shrink(3) })
}
