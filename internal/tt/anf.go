package tt

// ANF computes the algebraic normal form (positive-polarity Reed-Muller
// expansion) of the function: the list of monomials, each a bitmask of
// participating variables, whose XOR equals f. The empty monomial (mask 0)
// denotes the constant 1.
func (t TT) ANF() []uint32 {
	g := t.Clone()
	// Möbius transform: for each variable, XOR the low cofactor into the
	// high half.
	for v := 0; v < g.nvars; v++ {
		lo := g.Cofactor(v, false)
		g = g.Xor(Var(v, g.nvars).And(lo))
	}
	var monomials []uint32
	for m := 0; m < g.NumBits(); m++ {
		if g.Bit(m) {
			monomials = append(monomials, uint32(m))
		}
	}
	return monomials
}

// FromANF rebuilds a truth table from ANF monomials over n variables.
func FromANF(n int, monomials []uint32) TT {
	f := New(n)
	for _, m := range monomials {
		cube := Cube{Mask: m, Val: m}
		f = f.Xor(cube.TT(n))
	}
	return f
}
