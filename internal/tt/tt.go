// Package tt implements dense truth tables over up to 16 Boolean variables.
//
// A truth table stores one bit per input minterm, packed into 64-bit words
// in the conventional simulation order: bit m of the table is the function
// value on the assignment whose variable i takes bit i of m. Variable 0 is
// therefore the fastest-toggling input, exactly as in ABC and mockturtle.
//
// The package provides Boolean algebra, cofactoring, support analysis,
// irredundant sum-of-products extraction (Minato-Morreale ISOP), and NPN
// canonicalization, which together form the functional substrate for AIG
// synthesis and rewriting.
package tt

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// MaxVars is the largest supported number of variables.
const MaxVars = 16

// projections of the first six variables inside a single 64-bit word.
var varMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// TT is a truth table over a fixed number of variables. The zero value is
// not usable; construct with New, Var, Const, or a parser.
type TT struct {
	nvars int
	words []uint64
}

// WordCount returns the number of 64-bit words required for n variables.
func WordCount(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// New returns the constant-false table over n variables.
func New(n int) TT {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("tt: variable count %d out of range [0,%d]", n, MaxVars))
	}
	return TT{nvars: n, words: make([]uint64, WordCount(n))}
}

// Const returns the constant table (false or true) over n variables.
func Const(n int, v bool) TT {
	t := New(n)
	if v {
		for i := range t.words {
			t.words[i] = ^uint64(0)
		}
		t.maskTop()
	}
	return t
}

// Var returns the projection table of variable i over n variables.
func Var(i, n int) TT {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("tt: variable %d out of range for %d inputs", i, n))
	}
	t := New(n)
	if i < 6 {
		for w := range t.words {
			t.words[w] = varMasks[i]
		}
	} else {
		// Variable i toggles every 2^(i-6) words.
		period := 1 << (i - 6)
		for w := range t.words {
			if w&period != 0 {
				t.words[w] = ^uint64(0)
			}
		}
	}
	t.maskTop()
	return t
}

// FromWords builds a table over n variables from raw words (copied).
func FromWords(n int, words []uint64) TT {
	t := New(n)
	copy(t.words, words)
	t.maskTop()
	return t
}

// Random returns a uniformly random table over n variables drawn from r.
func Random(n int, r *rand.Rand) TT {
	t := New(n)
	for i := range t.words {
		t.words[i] = r.Uint64()
	}
	t.maskTop()
	return t
}

// maskTop clears the unused high bits of the single word when nvars < 6.
func (t *TT) maskTop() {
	if t.nvars < 6 {
		t.words[0] &= (uint64(1) << (1 << t.nvars)) - 1
	}
}

// topMask returns the valid-bit mask for the (single-word) table.
func topMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << n)) - 1
}

// NumVars returns the number of variables of the table.
func (t TT) NumVars() int { return t.nvars }

// NumBits returns the number of minterm bits (2^nvars).
func (t TT) NumBits() int { return 1 << t.nvars }

// Words returns the backing words (not copied); callers must not modify.
func (t TT) Words() []uint64 { return t.words }

// Clone returns a deep copy of t.
func (t TT) Clone() TT {
	u := TT{nvars: t.nvars, words: make([]uint64, len(t.words))}
	copy(u.words, t.words)
	return u
}

// Bit reports the function value on minterm m.
func (t TT) Bit(m int) bool {
	return t.words[m>>6]>>(uint(m)&63)&1 == 1
}

// SetBit sets the function value on minterm m.
func (t *TT) SetBit(m int, v bool) {
	if v {
		t.words[m>>6] |= 1 << (uint(m) & 63)
	} else {
		t.words[m>>6] &^= 1 << (uint(m) & 63)
	}
}

func (t TT) check(u TT) {
	if t.nvars != u.nvars {
		panic(fmt.Sprintf("tt: mixing tables over %d and %d variables", t.nvars, u.nvars))
	}
}

// And returns t AND u.
func (t TT) And(u TT) TT {
	t.check(u)
	r := New(t.nvars)
	for i := range r.words {
		r.words[i] = t.words[i] & u.words[i]
	}
	return r
}

// Or returns t OR u.
func (t TT) Or(u TT) TT {
	t.check(u)
	r := New(t.nvars)
	for i := range r.words {
		r.words[i] = t.words[i] | u.words[i]
	}
	return r
}

// Xor returns t XOR u.
func (t TT) Xor(u TT) TT {
	t.check(u)
	r := New(t.nvars)
	for i := range r.words {
		r.words[i] = t.words[i] ^ u.words[i]
	}
	return r
}

// AndNot returns t AND NOT u.
func (t TT) AndNot(u TT) TT {
	t.check(u)
	r := New(t.nvars)
	for i := range r.words {
		r.words[i] = t.words[i] &^ u.words[i]
	}
	return r
}

// Not returns the complement of t.
func (t TT) Not() TT {
	r := New(t.nvars)
	for i := range r.words {
		r.words[i] = ^t.words[i]
	}
	r.maskTop()
	return r
}

// Equal reports whether t and u denote the same function.
func (t TT) Equal(u TT) bool {
	if t.nvars != u.nvars {
		return false
	}
	for i := range t.words {
		if t.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// IsConst0 reports whether t is the constant-false function.
func (t TT) IsConst0() bool {
	for _, w := range t.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// IsConst1 reports whether t is the constant-true function.
func (t TT) IsConst1() bool {
	m := topMask(t.nvars)
	for i, w := range t.words {
		want := ^uint64(0)
		if i == 0 && len(t.words) == 1 {
			want = m
		}
		if w != want {
			return false
		}
	}
	return true
}

// CountOnes returns the number of satisfying minterms.
func (t TT) CountOnes() int {
	n := 0
	for _, w := range t.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Cofactor returns the cofactor of t with variable v fixed to value val.
// The result remains a table over the same variable count; variable v
// becomes irrelevant in it.
func (t TT) Cofactor(v int, val bool) TT {
	if v < 0 || v >= t.nvars {
		panic(fmt.Sprintf("tt: cofactor variable %d out of range", v))
	}
	r := t.Clone()
	if v < 6 {
		shift := uint(1) << v
		mask := varMasks[v]
		for i, w := range r.words {
			if val {
				hi := w & mask
				r.words[i] = hi | hi>>shift
			} else {
				lo := w &^ mask
				r.words[i] = lo | lo<<shift
			}
		}
	} else {
		period := 1 << (v - 6)
		for base := 0; base < len(r.words); base += 2 * period {
			for k := 0; k < period; k++ {
				if val {
					r.words[base+k] = r.words[base+period+k]
				} else {
					r.words[base+period+k] = r.words[base+k]
				}
			}
		}
	}
	return r
}

// HasVar reports whether the function depends on variable v.
func (t TT) HasVar(v int) bool {
	return !t.Cofactor(v, false).Equal(t.Cofactor(v, true))
}

// Support returns the indices of variables the function depends on.
func (t TT) Support() []int {
	var s []int
	for v := 0; v < t.nvars; v++ {
		if t.HasVar(v) {
			s = append(s, v)
		}
	}
	return s
}

// SupportSize returns the number of variables the function depends on.
func (t TT) SupportSize() int { return len(t.Support()) }

// FlipVar returns the table with variable v complemented.
func (t TT) FlipVar(v int) TT {
	if v < 0 || v >= t.nvars {
		panic(fmt.Sprintf("tt: flip variable %d out of range", v))
	}
	r := t.Clone()
	if v < 6 {
		shift := uint(1) << v
		mask := varMasks[v]
		for i, w := range r.words {
			r.words[i] = (w&mask)>>shift | (w&^mask)<<shift
		}
	} else {
		period := 1 << (v - 6)
		for base := 0; base < len(r.words); base += 2 * period {
			for k := 0; k < period; k++ {
				r.words[base+k], r.words[base+period+k] = r.words[base+period+k], r.words[base+k]
			}
		}
	}
	return r
}

// SwapAdjacent returns the table with adjacent variables v and v+1 swapped.
func (t TT) SwapAdjacent(v int) TT {
	if v < 0 || v+1 >= t.nvars {
		panic(fmt.Sprintf("tt: swap variable %d out of range", v))
	}
	r := t.Clone()
	switch {
	case v+1 < 6:
		// Both variables live inside each word.
		shift := uint(1) << v
		loMask := varMasks[v] &^ varMasks[v+1] // v=1, v+1=0 bits
		hiMask := varMasks[v+1] &^ varMasks[v] // v=0, v+1=1 bits
		keep := ^(loMask | hiMask)
		for i, w := range r.words {
			r.words[i] = w&keep | (w&loMask)<<shift | (w&hiMask)>>shift
		}
	case v >= 6:
		// Both variables select word indices.
		pv, pw := 1<<(v-6), 1<<(v+1-6)
		for i := range r.words {
			// Swap words where bit for v is set and bit for v+1 clear
			// with the word where v clear and v+1 set.
			if i&pv != 0 && i&pw == 0 {
				j := i&^pv | pw
				r.words[i], r.words[j] = r.words[j], r.words[i]
			}
		}
	default:
		// v == 5, v+1 == 6: variable 5 is the word's high half,
		// variable 6 selects odd/even words.
		for i := 0; i < len(r.words); i += 2 {
			lo, hi := r.words[i], r.words[i+1]
			r.words[i] = lo&0x00000000FFFFFFFF | hi<<32
			r.words[i+1] = hi&0xFFFFFFFF00000000 | lo>>32
		}
	}
	return r
}

// Permute returns the table with original variable perm[i] renamed to
// variable i: the result depends on its input i exactly as t depends on
// input perm[i]. perm must be a permutation of 0..n-1.
func (t TT) Permute(perm []int) TT {
	if len(perm) != t.nvars {
		panic("tt: permutation length mismatch")
	}
	r := New(t.nvars)
	for m := 0; m < t.NumBits(); m++ {
		// Map minterm m of the result to the corresponding minterm of t:
		// bit perm[i] of the source equals bit i of m.
		src := 0
		for i, p := range perm {
			if m>>uint(i)&1 == 1 {
				src |= 1 << uint(p)
			}
		}
		if t.Bit(src) {
			r.SetBit(m, true)
		}
	}
	return r
}

// Expand returns an equivalent table over m >= t.nvars variables; the new
// variables are don't-cares.
func (t TT) Expand(m int) TT {
	if m < t.nvars {
		panic("tt: cannot shrink variable count with Expand")
	}
	if m == t.nvars {
		return t.Clone()
	}
	r := New(m)
	if t.nvars >= 6 {
		for i := range r.words {
			r.words[i] = t.words[i%len(t.words)]
		}
		return r
	}
	// Replicate the sub-word pattern across the word, then across words.
	w := t.words[0]
	span := 1 << t.nvars
	for span < 64 {
		w |= w << uint(span)
		span <<= 1
	}
	for i := range r.words {
		r.words[i] = w
	}
	r.maskTop()
	return r
}

// Shrink returns the same function expressed over exactly m variables,
// which must include the full support of t (variables >= m must be
// don't-cares).
func (t TT) Shrink(m int) TT {
	if m > t.nvars {
		panic("tt: Shrink target larger than table")
	}
	for v := m; v < t.nvars; v++ {
		if t.HasVar(v) {
			panic(fmt.Sprintf("tt: Shrink would drop live variable %d", v))
		}
	}
	r := New(m)
	for i := 0; i < 1<<m; i++ {
		r.SetBit(i, t.Bit(i))
	}
	return r
}

// String renders the table as a binary string, minterm 2^n-1 first
// (the conventional hex/binary truth-table order).
func (t TT) String() string {
	var b strings.Builder
	for m := t.NumBits() - 1; m >= 0; m-- {
		if t.Bit(m) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Hex renders the table as a hexadecimal string, most significant nibble
// first. Tables with fewer than two variables are padded to one nibble.
func (t TT) Hex() string {
	nibbles := t.NumBits() / 4
	if nibbles == 0 {
		nibbles = 1
	}
	var b strings.Builder
	for i := nibbles - 1; i >= 0; i-- {
		nib := t.words[i/16] >> (uint(i%16) * 4) & 0xF
		b.WriteByte("0123456789abcdef"[nib])
	}
	return b.String()
}

// ParseHex parses a hexadecimal truth-table string for n variables as
// produced by Hex.
func ParseHex(n int, s string) (TT, error) {
	t := New(n)
	nibbles := t.NumBits() / 4
	if nibbles == 0 {
		nibbles = 1
	}
	if len(s) != nibbles {
		return TT{}, fmt.Errorf("tt: hex string %q has %d nibbles, want %d for %d vars", s, len(s), nibbles, n)
	}
	for i := 0; i < nibbles; i++ {
		c := s[nibbles-1-i]
		var v uint64
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = uint64(c-'A') + 10
		default:
			return TT{}, fmt.Errorf("tt: invalid hex digit %q", c)
		}
		t.words[i/16] |= v << (uint(i%16) * 4)
	}
	t.maskTop()
	return t, nil
}

// ParseBinary parses a binary truth-table string (minterm 2^n-1 first).
func ParseBinary(n int, s string) (TT, error) {
	t := New(n)
	if len(s) != t.NumBits() {
		return TT{}, fmt.Errorf("tt: binary string has %d bits, want %d", len(s), t.NumBits())
	}
	for i, c := range s {
		m := t.NumBits() - 1 - i
		switch c {
		case '1':
			t.SetBit(m, true)
		case '0':
		default:
			return TT{}, fmt.Errorf("tt: invalid binary digit %q", c)
		}
	}
	return t, nil
}
