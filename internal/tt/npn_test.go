package tt

import (
	"math/rand"
	"testing"
)

func randTransform(n int, r *rand.Rand) NPNTransform {
	perm := r.Perm(n)
	return NPNTransform{
		Perm:    perm,
		Flips:   uint32(r.Intn(1 << uint(n))),
		OutFlip: r.Intn(2) == 1,
	}
}

func TestNPNTransformInverse(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for n := 1; n <= 6; n++ {
		for trial := 0; trial < 30; trial++ {
			f := Random(n, r)
			x := randTransform(n, r)
			if !x.Inverse().Apply(x.Apply(f)).Equal(f) {
				t.Fatalf("n=%d trial=%d: inverse(apply) is not identity", n, trial)
			}
			if !x.Apply(x.Inverse().Apply(f)).Equal(f) {
				t.Fatalf("n=%d trial=%d: apply(inverse) is not identity", n, trial)
			}
		}
	}
}

func TestNPNCanonRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for n := 1; n <= 5; n++ {
		for trial := 0; trial < 20; trial++ {
			f := Random(n, r)
			canon, x := NPNCanon(f)
			if !x.Apply(f).Equal(canon) {
				t.Fatalf("n=%d: transform does not map f to canon", n)
			}
			if !x.Inverse().Apply(canon).Equal(f) {
				t.Fatalf("n=%d: inverse transform does not recover f", n)
			}
		}
	}
}

func TestNPNCanonInvariance(t *testing.T) {
	// All NPN-equivalent functions must share the canonical form.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 3 + trial%2
		f := Random(n, r)
		canonF, _ := NPNCanon(f)
		for k := 0; k < 10; k++ {
			g := randTransform(n, r).Apply(f)
			canonG, _ := NPNCanon(g)
			if !canonF.Equal(canonG) {
				t.Fatalf("trial %d: NPN-equivalent functions map to different canons", trial)
			}
		}
	}
}

func TestNPNClassCount4(t *testing.T) {
	// The number of NPN classes of 4-variable functions is famously 222.
	classes := make(map[string]bool)
	for f := 0; f < 1<<16; f++ {
		fn := FromWords(4, []uint64{uint64(f)})
		canon, _ := NPNCanon(fn)
		classes[canon.Hex()] = true
	}
	if len(classes) != 222 {
		t.Errorf("found %d NPN classes of 4-var functions, want 222", len(classes))
	}
}

func TestNPNClassCount3(t *testing.T) {
	// 3-variable functions fall into 14 NPN classes.
	classes := make(map[string]bool)
	for f := 0; f < 1<<8; f++ {
		fn := FromWords(3, []uint64{uint64(f)})
		canon, _ := NPNCanon(fn)
		classes[canon.Hex()] = true
	}
	if len(classes) != 14 {
		t.Errorf("found %d NPN classes of 3-var functions, want 14", len(classes))
	}
}
