package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCubeBasics(t *testing.T) {
	c := Cube{}.WithLit(0, true).WithLit(2, false)
	if c.NumLits() != 2 {
		t.Errorf("NumLits = %d, want 2", c.NumLits())
	}
	if !c.HasVar(0) || c.HasVar(1) || !c.HasVar(2) {
		t.Error("HasVar wrong")
	}
	if !c.Phase(0) || c.Phase(2) {
		t.Error("Phase wrong")
	}
	// Cube x0 & !x2 over 3 vars: minterms with bit0=1, bit2=0: 1, 3.
	want := Var(0, 3).And(Var(2, 3).Not())
	if !c.TT(3).Equal(want) {
		t.Error("Cube.TT mismatch")
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(5) || c.Contains(0) {
		t.Error("Contains wrong")
	}
}

func TestCubeString(t *testing.T) {
	c := Cube{}.WithLit(0, true).WithLit(2, false)
	if got := c.String(); got != "1-0" {
		t.Errorf("String = %q, want 1-0", got)
	}
	parsed, err := ParseCube(3, "1-0")
	if err != nil {
		t.Fatal(err)
	}
	if parsed != c {
		t.Errorf("ParseCube round trip: %+v != %+v", parsed, c)
	}
	if (Cube{}).String() != "-" {
		t.Error("tautology cube should render as -")
	}
	if _, err := ParseCube(2, "111"); err == nil {
		t.Error("over-long cube should fail")
	}
	if _, err := ParseCube(3, "1x0"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestIsopExactRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for n := 0; n <= 8; n++ {
		for trial := 0; trial < 20; trial++ {
			f := Random(n, r)
			cover := IsopOf(f)
			if !CoverTT(n, cover).Equal(f) {
				t.Fatalf("n=%d: ISOP cover does not realize the function", n)
			}
		}
	}
}

func TestIsopCorners(t *testing.T) {
	if got := IsopOf(Const(4, false)); len(got) != 0 {
		t.Errorf("ISOP of const0 has %d cubes, want 0", len(got))
	}
	got := IsopOf(Const(4, true))
	if len(got) != 1 || got[0].NumLits() != 0 {
		t.Errorf("ISOP of const1 = %v, want single tautology cube", got)
	}
	// Single variable.
	cov := IsopOf(Var(2, 5))
	if len(cov) != 1 || cov[0].NumLits() != 1 || !cov[0].Phase(2) {
		t.Errorf("ISOP of x2 = %v", cov)
	}
}

func TestIsopXorCubeCount(t *testing.T) {
	// n-input XOR needs exactly 2^(n-1) cubes in any SOP.
	for n := 2; n <= 5; n++ {
		f := New(n)
		f = f.Not().AndNot(f) // placeholder to keep shape; rebuilt below
		f = Var(0, n)
		for v := 1; v < n; v++ {
			f = f.Xor(Var(v, n))
		}
		cover := IsopOf(f)
		if len(cover) != 1<<(n-1) {
			t.Errorf("XOR%d ISOP has %d cubes, want %d", n, len(cover), 1<<(n-1))
		}
		for _, c := range cover {
			if c.NumLits() != n {
				t.Errorf("XOR%d cube %v has %d lits, want %d", n, c, c.NumLits(), n)
			}
		}
	}
}

func TestIsopIrredundant(t *testing.T) {
	// Removing any cube from an ISOP must lose some minterm.
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		n := 3 + trial%4
		f := Random(n, r)
		cover := IsopOf(f)
		for drop := range cover {
			reduced := make([]Cube, 0, len(cover)-1)
			reduced = append(reduced, cover[:drop]...)
			reduced = append(reduced, cover[drop+1:]...)
			if CoverTT(n, reduced).Equal(f) {
				t.Fatalf("trial %d: cube %d is redundant in ISOP", trial, drop)
			}
		}
	}
}

func TestIsopInterval(t *testing.T) {
	// With L < U the cover must lie in the interval.
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 4 + trial%3
		a, b := Random(n, r), Random(n, r)
		L := a.And(b)
		U := a.Or(b)
		cover := Isop(L, U)
		f := CoverTT(n, cover)
		if !L.AndNot(f).IsConst0() {
			t.Fatalf("trial %d: cover misses required minterms", trial)
		}
		if !f.AndNot(U).IsConst0() {
			t.Fatalf("trial %d: cover exceeds upper bound", trial)
		}
	}
}

func TestIsopRequiresOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Isop with L > U should panic")
		}
	}()
	Isop(Const(3, true), Const(3, false))
}

func TestIsopQuick(t *testing.T) {
	f := func(w uint64) bool {
		fn := FromWords(6, []uint64{w})
		return CoverTT(6, IsopOf(fn)).Equal(fn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
