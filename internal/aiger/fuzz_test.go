package aiger

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/aig"
)

// genAIG deterministically builds a small random AIG for the fuzz seed
// corpus, mirroring the testing/quick round-trip generator.
func genAIG(seed int64) *aig.AIG {
	r := rand.New(rand.NewSource(seed))
	pis := 1 + r.Intn(6)
	g := aig.New(pis)
	lits := make([]aig.Lit, 0, 40)
	for i := 0; i < pis; i++ {
		lits = append(lits, g.PI(i))
	}
	for k := 0; k < 5+r.Intn(25); k++ {
		a := lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1)
		b := lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for k := 0; k <= r.Intn(3); k++ {
		g.AddPO(lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1))
	}
	return g.Cleanup()
}

// FuzzRead hardens the AIGER parser: arbitrary bytes must either parse
// into a well-formed AIG or return an error — never panic, hang, or
// allocate unboundedly (the header caps exist for the fuzzer's benefit
// as much as the user's). Parsed ASCII graphs must survive a
// write/read round trip with their functions intact.
//
// Run with: make fuzz   (or: go test -fuzz '^FuzzRead$' ./internal/aiger)
func FuzzRead(f *testing.F) {
	// Seed corpus: valid graphs in both formats, plus malformed shapes
	// covering each parser stage (header, inputs, outputs, ANDs,
	// symbols, binary deltas).
	for seed := int64(1); seed <= 8; seed++ {
		g := genAIG(seed)
		var ascii, binary bytes.Buffer
		if err := WriteASCII(&ascii, g); err != nil {
			f.Fatal(err)
		}
		if err := WriteBinary(&binary, g); err != nil {
			f.Fatal(err)
		}
		f.Add(ascii.Bytes())
		f.Add(binary.Bytes())
	}
	for _, s := range []string{
		"",
		"aag\n",
		"aag 1 1 0 1\n",
		"aag 1 1 0 1 0\n2\nx\n",
		"aag 2000000000 2000000000 0 0 0\n",
		"aag 3 1 1 1 1\n",
		"aag 1 1 0 0 1\n2\n4 2 2\n",
		"aag 2 1 0 1 1\n2\n4\n3 2 2\n",
		"aag 1 1 0 1 0\n2\n99\n",
		"aig 2 1 0 1 1\n4\n\x81",
		"aig 2 1 0 1 1\n4\n\x81\x81\x81\x81\x81\x81\x81\x81\x81\x81",
		"aag 1 1 0 1 0\n2\n2\ni0 x\no0 y\nc\ntrailing comment\n",
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		if g.NumPIs() < 0 || g.NumAnds() < 0 || g.NumPOs() < 0 {
			t.Fatalf("parsed AIG has negative shape: %v", g.Stat())
		}
		// Accepted inputs must round-trip; functional equivalence is
		// only checked where exhaustive simulation is cheap.
		var buf bytes.Buffer
		if err := WriteASCII(&buf, g); err != nil {
			t.Fatalf("writing parsed AIG: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-reading written AIG: %v", err)
		}
		if g.NumPIs() <= 10 && g.NumPOs() > 0 {
			idx, err := aig.Equivalent(g, back)
			if err != nil {
				t.Fatal(err)
			}
			if idx != -1 {
				t.Fatalf("round trip changed output %d", idx)
			}
		}
	})
}
