package aiger

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/aig"
)

func buildSample() *aig.AIG {
	g := aig.New(3)
	x1, x2, x3 := g.PI(0), g.PI(1), g.PI(2)
	sum := g.Xor(g.Xor(x1, x2), x3)
	carry := g.Maj3(x1, x2, x3)
	g.AddPO(carry)
	g.AddPO(sum)
	g.SetPIName(0, "x1")
	g.SetPIName(1, "x2")
	g.SetPIName(2, "x3")
	g.SetPOName(0, "carry")
	g.SetPOName(1, "sum")
	return g
}

func roundTrip(t *testing.T, g *aig.AIG, write func(*bytes.Buffer, *aig.AIG) error) *aig.AIG {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return got
}

func TestASCIIRoundTrip(t *testing.T) {
	g := buildSample()
	got := roundTrip(t, g, func(b *bytes.Buffer, g *aig.AIG) error { return WriteASCII(b, g) })
	if idx, err := aig.Equivalent(g, got); err != nil || idx != -1 {
		t.Errorf("ASCII round trip broke function: idx=%d err=%v", idx, err)
	}
	if got.PIName(0) != "x1" || got.POName(1) != "sum" {
		t.Error("symbols lost in ASCII round trip")
	}
	if got.NumAnds() != g.NumAnds() {
		t.Errorf("node count changed: %d -> %d", g.NumAnds(), got.NumAnds())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := buildSample()
	got := roundTrip(t, g, func(b *bytes.Buffer, g *aig.AIG) error { return WriteBinary(b, g) })
	if idx, err := aig.Equivalent(g, got); err != nil || idx != -1 {
		t.Errorf("binary round trip broke function: idx=%d err=%v", idx, err)
	}
	if got.NumAnds() != g.NumAnds() {
		t.Errorf("node count changed: %d -> %d", g.NumAnds(), got.NumAnds())
	}
}

func TestRandomRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		pis := 2 + r.Intn(8)
		g := aig.New(pis)
		lits := make([]aig.Lit, 0, 64)
		for i := 0; i < pis; i++ {
			lits = append(lits, g.PI(i))
		}
		for k := 0; k < 30; k++ {
			a := lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1)
			b := lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1)
			lits = append(lits, g.And(a, b))
		}
		for k := 0; k < 3; k++ {
			g.AddPO(lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1))
		}
		gc := g.Cleanup()
		for name, write := range map[string]func(*bytes.Buffer, *aig.AIG) error{
			"ascii":  func(b *bytes.Buffer, g *aig.AIG) error { return WriteASCII(b, g) },
			"binary": func(b *bytes.Buffer, g *aig.AIG) error { return WriteBinary(b, g) },
		} {
			got := roundTrip(t, gc, write)
			if idx, err := aig.Equivalent(gc, got); err != nil || idx != -1 {
				t.Fatalf("trial %d %s: round trip broke output %d (%v)", trial, name, idx, err)
			}
		}
	}
}

func TestReadConstOutputs(t *testing.T) {
	src := "aag 0 0 0 2 0\n0\n1\n"
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPOs() != 2 || g.PO(0) != aig.LitFalse || g.PO(1) != aig.LitTrue {
		t.Errorf("const outputs wrong: %v %v", g.PO(0), g.PO(1))
	}
}

func TestReadKnownASCII(t *testing.T) {
	// The canonical AIGER and-gate example: o = i0 AND i1.
	src := "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 a\ni1 b\no0 out\nc\nignored comment\n"
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPIs() != 2 || g.NumPOs() != 1 || g.NumAnds() != 1 {
		t.Fatalf("shape wrong: %v", g.Stat())
	}
	if g.PIName(0) != "a" || g.PIName(1) != "b" || g.POName(0) != "out" {
		t.Error("symbols wrong")
	}
	out := g.Eval(0b11)
	if !out[0] {
		t.Error("AND(1,1) != 1")
	}
	if g.Eval(0b01)[0] {
		t.Error("AND(1,0) != 0")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad tag":       "xyz 1 1 0 1 0\n",
		"short header":  "aag 1 1\n",
		"latches":       "aag 2 1 1 0 0\n2\n4 2\n",
		"neg field":     "aag -1 0 0 0 0\n",
		"undef var":     "aag 2 1 0 1 0\n2\n99\n",
		"odd and lhs":   "aag 3 2 0 1 1\n2\n4\n7\n7 2 4\n",
		"bad m":         "aag 0 2 0 0 0\n2\n4\n",
		"bad literal":   "aag 1 1 0 1 0\n2\nxyz\n",
		"missing lines": "aag 3 2 0 1 1\n2\n4\n6\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBinaryDeltaEncoding(t *testing.T) {
	// A chain long enough to need multi-byte deltas.
	g := aig.New(2)
	l := g.And(g.PI(0), g.PI(1))
	for i := 0; i < 300; i++ {
		l = g.And(l, g.PI(i%2).NotCond(i%3 == 0))
	}
	g.AddPO(l)
	gc := g.Cleanup()
	got := roundTrip(t, gc, func(b *bytes.Buffer, g *aig.AIG) error { return WriteBinary(b, g) })
	if idx, err := aig.Equivalent(gc, got); err != nil || idx != -1 {
		t.Errorf("long chain binary round trip failed: idx=%d err=%v", idx, err)
	}
}

func TestWriteFileExtensions(t *testing.T) {
	dir := t.TempDir()
	g := buildSample()
	for _, name := range []string{"fa.aag", "fa.aig"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		if idx, _ := aig.Equivalent(g, got); idx != -1 {
			t.Errorf("%s: file round trip broke output %d", name, idx)
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.aag")); err == nil {
		t.Error("missing file should error")
	}
}
