package aiger

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/aig"
)

// TestQuickRoundTrip drives randomized AIG construction through both
// formats with testing/quick: every generated graph must survive a write
// and read with its functions intact.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, binary bool) bool {
		r := rand.New(rand.NewSource(seed))
		pis := 1 + r.Intn(6)
		g := aig.New(pis)
		lits := make([]aig.Lit, 0, 40)
		for i := 0; i < pis; i++ {
			lits = append(lits, g.PI(i))
		}
		for k := 0; k < 5+r.Intn(25); k++ {
			a := lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1)
			b := lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1)
			lits = append(lits, g.And(a, b))
		}
		for k := 0; k <= r.Intn(3); k++ {
			g.AddPO(lits[r.Intn(len(lits))].NotCond(r.Intn(2) == 1))
		}
		gc := g.Cleanup()
		var buf bytes.Buffer
		var err error
		if binary {
			err = WriteBinary(&buf, gc)
		} else {
			err = WriteASCII(&buf, gc)
		}
		if err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		idx, err := aig.Equivalent(gc, back)
		return err == nil && idx == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
