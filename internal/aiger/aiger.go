// Package aiger reads and writes combinational And-Inverter Graphs in the
// AIGER format (http://fmv.jku.at/aiger/), both the ASCII variant ("aag")
// and the compact binary variant ("aig"), including symbol tables and
// comments. Latches are not supported: the paper's framework operates on
// combinational logic only.
package aiger

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/aig"
)

// maxHeaderCount bounds every header field so a malformed or hostile
// header (e.g. "aag 2000000000 ...") cannot make the parser allocate
// gigabytes before reading a single definition line. Real AIGs in this
// framework are orders of magnitude smaller.
const maxHeaderCount = 1 << 20

// Read parses an AIGER stream, auto-detecting the ASCII or binary variant
// from the header.
func Read(r io.Reader) (*aig.AIG, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("aiger: reading header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) < 6 {
		return nil, fmt.Errorf("aiger: malformed header %q", strings.TrimSpace(header))
	}
	nums := make([]int, 5)
	for i := 0; i < 5; i++ {
		n, err := strconv.Atoi(fields[i+1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", fields[i+1])
		}
		if n > maxHeaderCount {
			return nil, fmt.Errorf("aiger: header count %d exceeds limit %d", n, maxHeaderCount)
		}
		nums[i] = n
	}
	m, numIn, numLatch, numOut, numAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if numLatch != 0 {
		return nil, fmt.Errorf("aiger: sequential AIGs (L=%d) are not supported", numLatch)
	}
	if m < numIn+numAnd {
		return nil, fmt.Errorf("aiger: header M=%d smaller than I+A=%d", m, numIn+numAnd)
	}
	switch fields[0] {
	case "aag":
		return readASCII(br, numIn, numOut, numAnd)
	case "aig":
		return readBinary(br, numIn, numOut, numAnd)
	default:
		return nil, fmt.Errorf("aiger: unknown format tag %q", fields[0])
	}
}

// ReadFile parses the AIGER file at path.
func ReadFile(path string) (*aig.AIG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// litMapper translates AIGER literals into aig literals, tolerating the
// arbitrary variable numbering of ASCII files.
type litMapper struct {
	m map[int]aig.Lit
}

func (lm *litMapper) get(aigerLit int) (aig.Lit, error) {
	v := aigerLit >> 1
	if v == 0 {
		return aig.LitFalse.NotCond(aigerLit&1 == 1), nil
	}
	l, ok := lm.m[v]
	if !ok {
		return 0, fmt.Errorf("aiger: literal %d references undefined variable %d", aigerLit, v)
	}
	return l.NotCond(aigerLit&1 == 1), nil
}

func readASCII(br *bufio.Reader, numIn, numOut, numAnd int) (*aig.AIG, error) {
	g := aig.New(numIn)
	lm := &litMapper{m: make(map[int]aig.Lit)}

	readInts := func(want int) ([]int, error) {
		line, err := br.ReadString('\n')
		if err != nil && (err != io.EOF || line == "") {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != want {
			return nil, fmt.Errorf("aiger: line %q: want %d fields", strings.TrimSpace(line), want)
		}
		out := make([]int, want)
		for i, f := range fields {
			n, err := strconv.Atoi(f)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("aiger: bad literal %q", f)
			}
			out[i] = n
		}
		return out, nil
	}

	for i := 0; i < numIn; i++ {
		v, err := readInts(1)
		if err != nil {
			return nil, err
		}
		if v[0]&1 == 1 || v[0] == 0 {
			return nil, fmt.Errorf("aiger: invalid input literal %d", v[0])
		}
		lm.m[v[0]>>1] = g.PI(i)
	}
	outLits := make([]int, numOut)
	for i := 0; i < numOut; i++ {
		v, err := readInts(1)
		if err != nil {
			return nil, err
		}
		outLits[i] = v[0]
	}
	for i := 0; i < numAnd; i++ {
		v, err := readInts(3)
		if err != nil {
			return nil, err
		}
		lhs, rhs0, rhs1 := v[0], v[1], v[2]
		if lhs&1 == 1 {
			return nil, fmt.Errorf("aiger: AND lhs %d is complemented", lhs)
		}
		a, err := lm.get(rhs0)
		if err != nil {
			return nil, err
		}
		b, err := lm.get(rhs1)
		if err != nil {
			return nil, err
		}
		lm.m[lhs>>1] = g.And(a, b)
	}
	for _, ol := range outLits {
		l, err := lm.get(ol)
		if err != nil {
			return nil, err
		}
		g.AddPO(l)
	}
	return g, readSymbols(br, g)
}

func readBinary(br *bufio.Reader, numIn, numOut, numAnd int) (*aig.AIG, error) {
	g := aig.New(numIn)
	lm := &litMapper{m: make(map[int]aig.Lit)}
	for i := 0; i < numIn; i++ {
		lm.m[i+1] = g.PI(i)
	}
	outLits := make([]int, numOut)
	for i := range outLits {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("aiger: reading output %d: %w", i, err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(line))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aiger: bad output literal %q", strings.TrimSpace(line))
		}
		outLits[i] = n
	}
	readDelta := func() (uint64, error) {
		var x uint64
		var shift uint
		for {
			b, err := br.ReadByte()
			if err != nil {
				return 0, err
			}
			x |= uint64(b&0x7F) << shift
			if b&0x80 == 0 {
				return x, nil
			}
			shift += 7
			if shift > 63 {
				return 0, fmt.Errorf("aiger: delta overflow")
			}
		}
	}
	for i := 0; i < numAnd; i++ {
		lhs := 2 * (numIn + 1 + i)
		d0, err := readDelta()
		if err != nil {
			return nil, fmt.Errorf("aiger: AND %d delta0: %w", i, err)
		}
		d1, err := readDelta()
		if err != nil {
			return nil, fmt.Errorf("aiger: AND %d delta1: %w", i, err)
		}
		rhs0 := uint64(lhs) - d0
		rhs1 := rhs0 - d1
		a, err := lm.get(int(rhs0))
		if err != nil {
			return nil, err
		}
		b, err := lm.get(int(rhs1))
		if err != nil {
			return nil, err
		}
		lm.m[lhs>>1] = g.And(a, b)
	}
	for _, ol := range outLits {
		l, err := lm.get(ol)
		if err != nil {
			return nil, err
		}
		g.AddPO(l)
	}
	return g, readSymbols(br, g)
}

// readSymbols parses the optional symbol table and comment section.
func readSymbols(br *bufio.Reader, g *aig.AIG) error {
	for {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			return nil // EOF: symbols are optional
		}
		line = strings.TrimRight(line, "\n")
		if line == "c" {
			return nil // comment section: ignore the rest
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 2 {
			if err != nil {
				return nil
			}
			continue
		}
		tag, name := line[:sp], line[sp+1:]
		idx, convErr := strconv.Atoi(tag[1:])
		if convErr != nil || idx < 0 {
			continue
		}
		switch tag[0] {
		case 'i':
			if idx < g.NumPIs() {
				g.SetPIName(idx, name)
			}
		case 'o':
			if idx < g.NumPOs() {
				g.SetPOName(idx, name)
			}
		}
		if err != nil {
			return nil
		}
	}
}

// WriteASCII writes g in the ASCII "aag" format, with symbols when present.
func WriteASCII(w io.Writer, g *aig.AIG) error {
	bw := bufio.NewWriter(w)
	numIn, numOut, numAnd := g.NumPIs(), g.NumPOs(), g.NumAnds()
	maxVar := numIn + numAnd
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", maxVar, numIn, numOut, numAnd)
	for i := 0; i < numIn; i++ {
		fmt.Fprintf(bw, "%d\n", 2*(i+1))
	}
	for i := 0; i < numOut; i++ {
		fmt.Fprintf(bw, "%d\n", uint32(g.PO(i)))
	}
	for id := numIn + 1; id <= maxVar; id++ {
		f0, f1 := g.Fanins(id)
		// AIGER convention: rhs0 >= rhs1.
		r0, r1 := uint32(f1), uint32(f0)
		fmt.Fprintf(bw, "%d %d %d\n", 2*id, r0, r1)
	}
	writeSymbols(bw, g)
	return bw.Flush()
}

// WriteBinary writes g in the compact binary "aig" format.
func WriteBinary(w io.Writer, g *aig.AIG) error {
	bw := bufio.NewWriter(w)
	numIn, numOut, numAnd := g.NumPIs(), g.NumPOs(), g.NumAnds()
	maxVar := numIn + numAnd
	fmt.Fprintf(bw, "aig %d %d 0 %d %d\n", maxVar, numIn, numOut, numAnd)
	for i := 0; i < numOut; i++ {
		fmt.Fprintf(bw, "%d\n", uint32(g.PO(i)))
	}
	writeDelta := func(x uint64) {
		for {
			b := byte(x & 0x7F)
			x >>= 7
			if x != 0 {
				b |= 0x80
			}
			bw.WriteByte(b)
			if x == 0 {
				return
			}
		}
	}
	for id := numIn + 1; id <= maxVar; id++ {
		f0, f1 := g.Fanins(id)
		r0, r1 := uint64(f1), uint64(f0) // rhs0 >= rhs1
		lhs := uint64(2 * id)
		writeDelta(lhs - r0)
		writeDelta(r0 - r1)
	}
	writeSymbols(bw, g)
	return bw.Flush()
}

func writeSymbols(bw *bufio.Writer, g *aig.AIG) {
	for i := 0; i < g.NumPIs(); i++ {
		if name := g.PIName(i); name != "" {
			fmt.Fprintf(bw, "i%d %s\n", i, name)
		}
	}
	for i := 0; i < g.NumPOs(); i++ {
		if name := g.POName(i); name != "" {
			fmt.Fprintf(bw, "o%d %s\n", i, name)
		}
	}
}

// WriteFile writes g to path, choosing the binary format for a ".aig"
// suffix and ASCII otherwise.
func WriteFile(path string, g *aig.AIG) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".aig") {
		return WriteBinary(f, g)
	}
	return WriteASCII(f, g)
}
