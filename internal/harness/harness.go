// Package harness drives the paper's end-to-end experiment: synthesize
// every benchmark function with the seven recipes, profile every AIG,
// optimize with the three high-effort flows, compute pairwise metrics and
// the Relative Optimizability Difference, and correlate (Pearson + Fisher
// CIs). Its outputs regenerate Table I, Table II, and Figure 3.
//
// The harness is fault-tolerant: runs are cancellable via context
// (returning the specs completed so far), per-spec results can be
// checkpointed and resumed byte-identically, and every variant is
// verified for functional equivalence and isolated from panics — a
// failing recipe or flow is quarantined into Result.Failures instead of
// aborting or silently corrupting the analysis.
package harness

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"repro/internal/opt"
	"repro/internal/simil"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives workload generation and every randomized flow.
	Seed int64
	// MaxInputs filters the suite (default 10, mirroring the paper's
	// scalability cut that kept 87 of 100 functions).
	MaxInputs int
	// MaxSpecs truncates the suite for quick runs (0 = all).
	MaxSpecs int
	// Recipes and Flows select subsets by name (nil = all).
	Recipes []string
	Flows   []string
	// Progress, when non-nil, receives one line per processed spec.
	Progress io.Writer
	// Events, when non-nil, receives one structured JSONL event per
	// processed spec (plus run start/end). The human-readable Progress
	// line is embedded in each spec event, so the two sinks are
	// different renderings of the same record and cannot diverge.
	Events *telemetry.EventLogger
	// Profile tunes metric profiling.
	Profile simil.ProfileOptions
	// FlowTimeout bounds each flow invocation's wall clock: on expiry
	// the flow stops converging and returns its best (still equivalent)
	// AIG so far, so one pathological convergence loop cannot hang the
	// run (0 = unbounded).
	FlowTimeout time.Duration
	// Checkpoint, when non-nil, receives one appended SpecRecord per
	// completed spec, making the run resumable after a kill.
	Checkpoint *Checkpointer
	// Resume holds records loaded from a previous run's checkpoint
	// (see LoadCheckpoint/OpenCheckpoint). Run replays the longest
	// prefix matching the suite order instead of recomputing it, then
	// continues from the first missing spec.
	Resume []SpecRecord
	// SelfCheck runs the aig.Check structural verifier on every
	// synthesized and every optimized AIG; violations quarantine the
	// variant like any other failure. It changes which variants can
	// fail but never the numbers a surviving variant contributes, so it
	// is deliberately not part of the checkpoint fingerprint.
	SelfCheck bool

	// testFlows overrides the flow set for fault-injection tests.
	testFlows []opt.Flow
}

func (c Config) maxInputs() int {
	if c.MaxInputs <= 0 {
		return 10
	}
	return c.MaxInputs
}

func (c Config) recipeSet() ([]synth.Recipe, error) {
	all := synth.Recipes()
	if c.Recipes == nil {
		return all, nil
	}
	var out []synth.Recipe
	for _, name := range c.Recipes {
		found := false
		for _, r := range all {
			if r.Name == name {
				out = append(out, r)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("harness: unknown recipe %q (have %v)", name, synth.RecipeNames())
		}
	}
	return out, nil
}

func (c Config) flowSet() ([]opt.Flow, error) {
	if c.testFlows != nil {
		return c.testFlows, nil
	}
	all := opt.Flows()
	if c.Flows == nil {
		return all, nil
	}
	var out []opt.Flow
	for _, name := range c.Flows {
		found := false
		for _, f := range all {
			if f.Name == name {
				out = append(out, f)
				found = true
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, f := range all {
				known[i] = f.Name
			}
			return nil, fmt.Errorf("harness: unknown flow %q (have %v)", name, known)
		}
	}
	return out, nil
}

// Variant is one synthesized AIG of a spec with its profile and
// per-flow optimized gate counts.
type Variant struct {
	Recipe string
	Gates  int
	Levels int
	// Profile is not persisted in checkpoints (pairs derived from it
	// are); variants of resumed specs carry a nil Profile.
	Profile   *simil.Profile `json:"-"`
	FlowGates map[string]int
}

// SpecRun holds all variants of one benchmark spec.
type SpecRun struct {
	Name     string
	Category string
	Inputs   int
	Outputs  int
	Variants []Variant
}

// PairSample is one (AIG, AIG) comparison: the paper's unit of analysis.
type PairSample struct {
	Spec    string
	RecipeA string
	RecipeB string
	Metrics map[string]float64
	ROD     map[string]float64
	GatesA  int
	GatesB  int
}

// Result is a full experiment outcome.
type Result struct {
	Config Config
	Specs  []SpecRun
	Pairs  []PairSample
	// FlowNames and MetricNames record the evaluated axes in order.
	FlowNames   []string
	MetricNames []string
	// Failures lists every quarantined variant: panics recovered from
	// recipe builds or flow runs, and functional-equivalence
	// violations. They contribute no pair samples.
	Failures []Failure
	// Interrupted reports that the run was cancelled before every spec
	// completed; Specs/Pairs hold the completed prefix.
	Interrupted bool
}

// specSeed derives a stable per-spec/per-flow seed.
func specSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return base ^ int64(h.Sum64()&0x7FFFFFFFFFFFFFFF)
}

// Run executes the experiment without cancellation.
func Run(cfg Config) (*Result, error) {
	//lint:ignore ctxflow compatibility wrapper whose documented contract is "without cancellation"; cancelable callers use RunContext
	return RunContext(context.Background(), cfg)
}

// RunContext executes the experiment under ctx. Cancellation is honored
// at spec granularity: the spec in flight is abandoned (its flows
// return early, so its results would not match an uninterrupted run's)
// and the Result carries the completed prefix with Interrupted set, so
// callers can still emit tables, CSV, and checkpoints for the work done
// so far.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	runSpan := telemetry.StartSpan("harness/run")
	defer runSpan.End()

	specs := workload.FilterByInputs(workload.Suite(cfg.Seed), cfg.maxInputs())
	if cfg.MaxSpecs > 0 && len(specs) > cfg.MaxSpecs {
		specs = specs[:cfg.MaxSpecs]
	}
	recipes, err := cfg.recipeSet()
	if err != nil {
		return nil, err
	}
	flows, err := cfg.flowSet()
	if err != nil {
		return nil, err
	}
	if len(recipes) < 2 {
		return nil, fmt.Errorf("harness: need at least 2 recipes, have %d", len(recipes))
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("harness: no flows selected")
	}
	metrics := simil.Metrics()

	res := &Result{Config: cfg}
	for _, f := range flows {
		res.FlowNames = append(res.FlowNames, f.Name)
	}
	for _, m := range metrics {
		res.MetricNames = append(res.MetricNames, m.Name)
	}

	telemetry.SetGauge("harness/specs_total", float64(len(specs)))
	cfg.Events.Log("run_start", map[string]any{
		"seed": cfg.Seed, "specs": len(specs), "resumable": len(cfg.Resume),
		"recipes": len(recipes), "flows": res.FlowNames, "metrics": res.MetricNames,
	})

	resume := cfg.Resume
	for si, spec := range specs {
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		if len(resume) > 0 {
			if resume[0].Spec != spec.Name {
				// First divergence from the checkpointed prefix:
				// everything from here on is recomputed.
				resume = nil
			} else {
				rec := resume[0]
				resume = resume[1:]
				res.Specs = append(res.Specs, rec.Run)
				res.Pairs = append(res.Pairs, rec.Pairs...)
				res.Failures = append(res.Failures, rec.Failures...)
				telemetry.Add("harness/specs_resumed", 1)
				line := fmt.Sprintf("[%3d/%3d] %-22s resumed from checkpoint, pairs=%d",
					si+1, len(specs), spec.Name, len(res.Pairs))
				if cfg.Progress != nil {
					fmt.Fprintln(cfg.Progress, line)
				}
				cfg.Events.Log("spec_resumed", map[string]any{
					"index": si + 1, "total": len(specs), "spec": spec.Name,
					"pairs": len(res.Pairs), "line": line,
				})
				continue
			}
		}

		specSpan := telemetry.StartSpan("harness/spec")
		run, pairs, failures := cfg.runSpec(ctx, spec, recipes, flows, metrics)
		specSpan.End()
		if ctx.Err() != nil {
			// Cancelled mid-spec: the flows returned early, so this
			// spec's numbers would differ from an uninterrupted run's.
			// Discard it; a resumed run recomputes it faithfully.
			res.Interrupted = true
			break
		}
		res.Specs = append(res.Specs, run)
		res.Pairs = append(res.Pairs, pairs...)
		res.Failures = append(res.Failures, failures...)

		newPairs := len(pairs)
		telemetry.Add("harness/specs_done", 1)
		telemetry.Add("harness/pairs", int64(newPairs))
		telemetry.Add("harness/rods", int64(newPairs*len(flows)))

		if cfg.Checkpoint != nil {
			if err := cfg.Checkpoint.Append(SpecRecord{Spec: spec.Name, Run: run, Pairs: pairs, Failures: failures}); err != nil {
				return nil, err
			}
		}

		// One progress record, two renderings: the human-readable line
		// (Progress) and the structured event (Events).
		line := fmt.Sprintf("[%3d/%3d] %-22s in=%2d out=%2d pairs=%d",
			si+1, len(specs), spec.Name, spec.NumInputs(), len(spec.Outputs), len(res.Pairs))
		if cfg.Progress != nil {
			fmt.Fprintln(cfg.Progress, line)
		}
		cfg.Events.Log("spec_done", map[string]any{
			"index": si + 1, "total": len(specs), "spec": spec.Name,
			"category": spec.Category, "inputs": spec.NumInputs(),
			"outputs": len(spec.Outputs), "pairs": len(res.Pairs),
			"failures": len(failures), "line": line,
		})
	}
	cfg.Events.Log("run_done", map[string]any{
		"specs": len(res.Specs), "pairs": len(res.Pairs),
		"failures": len(res.Failures), "interrupted": res.Interrupted,
	})
	return res, nil
}

// runSpec computes one spec's variants (with per-variant panic
// isolation and equivalence guards) and its pairwise samples.
func (c Config) runSpec(ctx context.Context, spec workload.Spec, recipes []synth.Recipe, flows []opt.Flow, metrics []simil.Metric) (SpecRun, []PairSample, []Failure) {
	run := SpecRun{
		Name:     spec.Name,
		Category: spec.Category,
		Inputs:   spec.NumInputs(),
		Outputs:  len(spec.Outputs),
	}
	var failures []Failure
	for _, rec := range recipes {
		v, fail := c.buildVariant(ctx, spec, rec, flows)
		if fail != nil {
			failures = append(failures, *fail)
			continue
		}
		run.Variants = append(run.Variants, *v)
	}
	if len(run.Variants) < 2 {
		// Fewer than two healthy variants: nothing to compare, the
		// spec contributes no pairs.
		telemetry.Add("harness/specs_skipped", 1)
	}

	var pairs []PairSample
	for i := 0; i < len(run.Variants); i++ {
		for j := i + 1; j < len(run.Variants); j++ {
			a, b := run.Variants[i], run.Variants[j]
			sample := PairSample{
				Spec:    spec.Name,
				RecipeA: a.Recipe,
				RecipeB: b.Recipe,
				Metrics: make(map[string]float64),
				ROD:     make(map[string]float64, len(flows)),
				GatesA:  a.Gates,
				GatesB:  b.Gates,
			}
			for _, m := range metrics {
				sample.Metrics[m.Name] = m.Compute(a.Profile, b.Profile)
			}
			for _, flow := range flows {
				sample.ROD[flow.Name] = simil.ROD(a.FlowGates[flow.Name], b.FlowGates[flow.Name])
			}
			pairs = append(pairs, sample)
		}
	}
	return run, pairs, failures
}

// Correlation computes the Pearson correlation (with 95% Fisher CI)
// between a metric and the ROD under a flow across all pairs.
func (r *Result) Correlation(metric, flow string) (stats.Correlation, error) {
	var xs, ys []float64
	for _, p := range r.Pairs {
		m, ok1 := p.Metrics[metric]
		rod, ok2 := p.ROD[flow]
		if !ok1 || !ok2 {
			continue
		}
		xs = append(xs, m)
		ys = append(ys, rod)
	}
	if len(xs) == 0 {
		return stats.Correlation{}, fmt.Errorf("harness: no samples for %s/%s", metric, flow)
	}
	return stats.PearsonCI(xs, ys, 0.95)
}

// Scatter returns the (metric, ROD) sample series for a metric/flow —
// the data behind Figure 3 — together with the least-squares trendline.
func (r *Result) Scatter(metric, flow string) (xs, ys []float64, line stats.Line, err error) {
	for _, p := range r.Pairs {
		xs = append(xs, p.Metrics[metric])
		ys = append(ys, p.ROD[flow])
	}
	line, err = stats.LinearFit(xs, ys)
	return xs, ys, line, err
}

// CorrelationByCategory computes the metric/flow Pearson correlation
// separately within each workload category, revealing where a metric's
// predictive power comes from (e.g. size-type metrics thrive on
// categories with wide synthesis spreads).
func (r *Result) CorrelationByCategory(metric, flow string) map[string]stats.Correlation {
	catOf := make(map[string]string, len(r.Specs))
	for _, s := range r.Specs {
		catOf[s.Name] = s.Category
	}
	xs := map[string][]float64{}
	ys := map[string][]float64{}
	for _, p := range r.Pairs {
		c := catOf[p.Spec]
		xs[c] = append(xs[c], p.Metrics[metric])
		ys[c] = append(ys[c], p.ROD[flow])
	}
	out := make(map[string]stats.Correlation, len(xs))
	for c := range xs {
		if corr, err := stats.PearsonCI(xs[c], ys[c], 0.95); err == nil {
			out[c] = corr
		}
	}
	return out
}

// CategoryTable renders per-category correlations for a metric/flow.
func (r *Result) CategoryTable(metric, flow string) string {
	byCat := r.CorrelationByCategory(metric, flow)
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	out := fmt.Sprintf("%s vs ROD (%s) by category\n", metric, flow)
	for _, c := range cats {
		corr := byCat[c]
		out += fmt.Sprintf("  %-12s r = %6.2f  [%5.2f, %5.2f]  (n=%d)\n", c, corr.R, corr.Low, corr.High, corr.N)
	}
	return out
}

// CategorySummary aggregates average synthesis sizes per category —
// useful for the experiment report.
func (r *Result) CategorySummary() string {
	type acc struct {
		n     int
		gates int
	}
	byCat := map[string]*acc{}
	var cats []string
	for _, s := range r.Specs {
		a := byCat[s.Category]
		if a == nil {
			a = &acc{}
			byCat[s.Category] = a
			cats = append(cats, s.Category)
		}
		for _, v := range s.Variants {
			a.n++
			a.gates += v.Gates
		}
	}
	sort.Strings(cats)
	out := "category        AIGs  avg-gates\n"
	for _, c := range cats {
		a := byCat[c]
		avg := 0.0
		if a.n > 0 {
			avg = float64(a.gates) / float64(a.n)
		}
		out += fmt.Sprintf("%-14s %5d %10.1f\n", c, a.n, avg)
	}
	return out
}
