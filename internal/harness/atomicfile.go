package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with content produced by write, with
// crash-safety on every step: the content goes to a temp file in the
// same directory, is fsynced to stable storage, and only then renamed
// over path; finally the directory itself is fsynced so the rename is
// durable. A crash or full disk at any point leaves either the old
// complete file or the new complete file — never a truncated hybrid.
// Results files (CSV exports, the service's spilled job results) are
// replaced through this helper so a reader can never observe a torn
// file.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Durability of the rename itself: fsync the directory. Some
	// platforms cannot fsync directories; the rename already happened,
	// so a failure here only weakens crash durability, not atomicity.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
