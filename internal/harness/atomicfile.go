package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Fault-injection points on the atomic-replace path, one per step that
// can fail independently (see the chaos suite in chaos_test.go for the
// invariant each guards: whatever fires, the final path only ever
// holds the old complete file or the new complete file).
const (
	PointAtomicCreate = "harness/atomic_create"
	PointAtomicWrite  = "harness/atomic_write"
	PointAtomicSync   = "harness/atomic_sync"
	PointAtomicRename = "harness/atomic_rename"
)

// atomicTempMark tags WriteFileAtomic's temp files so a startup sweep
// (SweepAtomicTemps) can recognize — and quarantine — orphans left by
// a crash between create and rename. The mark is unusual enough that
// no results artifact collides with it.
const atomicTempMark = ".atomictmp-"

// WriteFileAtomic replaces path with content produced by write, with
// crash-safety on every step: the content goes to a temp file in the
// same directory, is fsynced to stable storage, and only then renamed
// over path; finally the directory itself is fsynced so the rename is
// durable. A crash or full disk at any point leaves either the old
// complete file or the new complete file — never a truncated hybrid.
// Results files (CSV exports, the service's spilled job results) are
// replaced through this helper so a reader can never observe a torn
// file.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	if err := faultinject.Hit(PointAtomicCreate); err != nil {
		return fmt.Errorf("creating temp for %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+atomicTempMark+"*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if err := write(faultinject.WrapWriter(PointAtomicWrite, tmp)); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := faultinject.Hit(PointAtomicSync); err != nil {
		return fmt.Errorf("syncing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	if err := faultinject.Hit(PointAtomicRename); err != nil {
		return fmt.Errorf("renaming over %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Durability of the rename itself: fsync the directory. Some
	// platforms cannot fsync directories; the rename already happened,
	// so a failure here only weakens crash durability, not atomicity.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// SweepAtomicTemps quarantines orphaned WriteFileAtomic temp files in
// dir: a crash (or kill) between create and rename leaves a
// "*.atomictmp-*" file that no process will ever rename, so startup
// recovery removes it. Completed files never carry the mark, so the
// sweep cannot touch real artifacts. It returns how many orphans were
// removed; removal failures are counted and the first is returned
// after the sweep finishes the remaining entries.
func SweepAtomicTemps(dir string) (removed int, err error) {
	names, err := SweepAtomicTempsList(dir)
	return len(names), err
}

// SweepAtomicTempsList is SweepAtomicTemps reporting the removed
// orphans by name (sorted — os.ReadDir order), so callers can put the
// exact post-crash debris into an operator-auditable log instead of a
// bare count.
func SweepAtomicTempsList(dir string) (removed []string, err error) {
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		return nil, rerr
	}
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), atomicTempMark) {
			continue
		}
		if rmErr := os.Remove(filepath.Join(dir, e.Name())); rmErr != nil {
			telemetry.Add("harness/orphan_sweep_errors", 1)
			if err == nil {
				err = rmErr
			}
			continue
		}
		removed = append(removed, e.Name())
	}
	telemetry.Add("harness/orphan_temps_swept", int64(len(removed)))
	return removed, err
}
