package harness

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, "new contents")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Errorf("got %q, want %q", got, "new contents")
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}

func TestWriteFileAtomicKeepsOldOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("disk full")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "partial garbage"); werr != nil {
			return werr
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped %v", err, sentinel)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "old" {
		t.Errorf("failed write clobbered target: %q", got)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("temp files left behind after failure: %v", leftovers)
	}
}

// TestWriteFileAtomicCSV exercises the production composition: the CSV
// emitter routed through the atomic replace.
func TestWriteFileAtomicCSV(t *testing.T) {
	res := &Result{
		MetricNames: []string{"RGC"},
		FlowNames:   []string{"orchestrate"},
		Pairs: []PairSample{{
			Spec: "s", RecipeA: "a", RecipeB: "b",
			Metrics: map[string]float64{"RGC": 0.5},
			ROD:     map[string]float64{"orchestrate": 0.25},
		}},
	}
	path := filepath.Join(t.TempDir(), "pairs.csv")
	if err := WriteFileAtomic(path, func(w io.Writer) error { return WriteCSV(w, res) }); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "s,a,b") {
		t.Errorf("CSV body missing pair row:\n%s", got)
	}
}
