package harness

import (
	"fmt"
	"strings"

	"repro/internal/aig"
	"repro/internal/opt"
	"repro/internal/simil"
	"repro/internal/synth"
	"repro/internal/workload"
)

// TableI renders the paper's Table I: Pearson correlation (with 95% CI)
// of the four traditional graph similarity measures against the Relative
// Optimizability Difference under the orchestrate flow.
func (r *Result) TableI() string {
	var b strings.Builder
	b.WriteString("Table I: traditional graph similarity measures vs ROD (orchestrate)\n")
	b.WriteString(fmt.Sprintf("%-28s %8s   %s\n", "SIMILARITY MEASURE", "r", "CI"))
	rows := []struct{ name, label string }{
		{"VEO", "Vertex-Edge Overlap"},
		{"NetSimile", "NetSimile"},
		{"WLKernel", "Weisfeiler-Lehman Kernel"},
		{"ASD", "Adjacency Spectral Distance"},
	}
	for _, row := range rows {
		c, err := r.Correlation(row.name, "orchestrate")
		if err != nil {
			b.WriteString(fmt.Sprintf("%-28s %8s   (%v)\n", row.label, "n/a", err))
			continue
		}
		b.WriteString(fmt.Sprintf("%-28s %8.2f   [%.2f, %.2f]\n", row.label, c.R, c.Low, c.High))
	}
	b.WriteString(fmt.Sprintf("(n = %d AIG pairs)\n", len(r.Pairs)))
	return b.String()
}

// TableII renders the paper's Table II: Pearson correlation (with 95%
// CIs) of the six proposed AIG-specific metrics against ROD under every
// evaluated flow.
func (r *Result) TableII() string {
	metrics := []struct{ name, label string }{
		{"RGC", "RGC"},
		{"RLC", "RLC"},
		{"RewriteScore", "Rewrite Score"},
		{"RefactorScore", "Refactor Score"},
		{"ResubScore", "Resub Score"},
		{"RRRScore", "RRR Score"},
	}
	var b strings.Builder
	b.WriteString("Table II: proposed AIG-specific metrics vs ROD per flow\n")
	b.WriteString(fmt.Sprintf("%-16s", "MEASURE"))
	for _, f := range r.FlowNames {
		b.WriteString(fmt.Sprintf(" | %-24s", f))
	}
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("%-16s", ""))
	for range r.FlowNames {
		b.WriteString(fmt.Sprintf(" | %8s %15s", "r", "CI"))
	}
	b.WriteString("\n")
	for _, m := range metrics {
		b.WriteString(fmt.Sprintf("%-16s", m.label))
		for _, f := range r.FlowNames {
			c, err := r.Correlation(m.name, f)
			if err != nil {
				b.WriteString(fmt.Sprintf(" | %8s %15s", "n/a", "-"))
				continue
			}
			b.WriteString(fmt.Sprintf(" | %8.2f [%5.2f, %5.2f]", c.R, c.Low, c.High))
		}
		b.WriteString("\n")
	}
	b.WriteString(fmt.Sprintf("(n = %d AIG pairs)\n", len(r.Pairs)))
	return b.String()
}

// Figure3 renders the scatter data of the paper's Figure 3: Resub Score
// vs ROD under orchestrate, with the trendline and correlation.
func (r *Result) Figure3() string {
	return r.FigureScatter("ResubScore", "orchestrate")
}

// FigureScatter renders any metric/flow scatter with its trendline.
func (r *Result) FigureScatter(metric, flow string) string {
	xs, ys, line, err := r.Scatter(metric, flow)
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Figure: %s vs ROD (%s)\n", metric, flow))
	if c, cerr := r.Correlation(metric, flow); cerr == nil {
		b.WriteString(fmt.Sprintf("r = %.2f, CI [%.2f, %.2f], n = %d\n", c.R, c.Low, c.High, c.N))
	}
	if err == nil {
		b.WriteString(fmt.Sprintf("trendline: ROD = %.4f * x + %.4f\n", line.Slope, line.Intercept))
	}
	b.WriteString(fmt.Sprintf("%10s %10s\n", metric, "ROD"))
	for i := range xs {
		b.WriteString(fmt.Sprintf("%10.4f %10.4f\n", xs[i], ys[i]))
	}
	return b.String()
}

// TrajectoryPoint is one step of an optimization path (Figure 2's
// conceptual search-space walk, made concrete).
type TrajectoryPoint struct {
	Step  string
	Gates int
}

// Trajectory records per-pass gate counts of an orchestrate-style walk —
// the concrete rendering of the paper's Figure 2 illustration.
func Trajectory(g *aig.AIG) []TrajectoryPoint {
	out := []TrajectoryPoint{{"start", g.NumAnds()}}
	cur := g
	steps := []struct {
		name string
		run  func(*aig.AIG) *aig.AIG
	}{
		{"resub", func(a *aig.AIG) *aig.AIG { return opt.ResubOnce(a, opt.ResubOptions{}) }},
		{"rewrite", func(a *aig.AIG) *aig.AIG { return opt.RewriteOnce(a, opt.RewriteOptions{}) }},
		{"refactor", func(a *aig.AIG) *aig.AIG { return opt.RefactorOnce(a, opt.RefactorOptions{}) }},
		{"balance", opt.Balance},
		{"resub", func(a *aig.AIG) *aig.AIG { return opt.ResubOnce(a, opt.ResubOptions{}) }},
		{"rewrite", func(a *aig.AIG) *aig.AIG { return opt.RewriteOnce(a, opt.RewriteOptions{}) }},
		{"refactor", func(a *aig.AIG) *aig.AIG { return opt.RefactorOnce(a, opt.RefactorOptions{}) }},
	}
	for _, s := range steps {
		cur = s.run(cur)
		out = append(out, TrajectoryPoint{s.name, cur.NumAnds()})
	}
	return out
}

// Figure2 renders the optimization trajectories of two synthesis
// variants of one spec — the concrete counterpart of the paper's
// conceptual Figure 2 — and their resulting ROD.
func Figure2(specName string, seed int64) (string, error) {
	var spec *workload.Spec
	for _, s := range workload.Suite(seed) {
		if s.Name == specName {
			c := s
			spec = &c
			break
		}
	}
	if spec == nil {
		return "", fmt.Errorf("harness: unknown spec %q", specName)
	}
	g1 := synth.SynthSOP(spec.Outputs)
	g2 := synth.SynthBDD(spec.Outputs)
	t1 := Trajectory(g1)
	t2 := Trajectory(g2)
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Figure 2: optimization trajectories for %s\n", spec.Name))
	b.WriteString(fmt.Sprintf("%-10s %12s %12s\n", "step", "A1 (sop)", "A2 (bdd)"))
	for i := range t1 {
		b.WriteString(fmt.Sprintf("%-10s %12d %12d\n", t1[i].Step, t1[i].Gates, t2[i].Gates))
	}
	final1, final2 := t1[len(t1)-1].Gates, t2[len(t2)-1].Gates
	b.WriteString(fmt.Sprintf("Relative Optimizability Difference: %.4f\n", simil.ROD(final1, final2)))
	return b.String(), nil
}
