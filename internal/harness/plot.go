package harness

import (
	"fmt"
	"math"
	"strings"
)

// AsciiScatter renders an (x, y) point cloud as a terminal-friendly
// density plot: digits give per-cell point counts (9 caps the display),
// with axis extents in the margins. Used by cmd/repro to make the
// Figure 3 scatter inspectable without external tooling.
func AsciiScatter(xs, ys []float64, width, height int, xlabel, ylabel string) string {
	if len(xs) == 0 || len(xs) != len(ys) {
		return "(no data)\n"
	}
	if width < 10 {
		width = 60
	}
	if height < 5 {
		height = 20
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]int, height)
	for i := range grid {
		grid[i] = make([]int, width)
	}
	for i := range xs {
		cx := int(float64(width-1) * (xs[i] - minX) / (maxX - minX))
		cy := int(float64(height-1) * (ys[i] - minY) / (maxY - minY))
		grid[height-1-cy][cx]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (vertical) vs %s (horizontal), %d points\n", ylabel, xlabel, len(xs))
	for r, row := range grid {
		if r == 0 {
			fmt.Fprintf(&b, "%8.3f |", maxY)
		} else if r == len(grid)-1 {
			fmt.Fprintf(&b, "%8.3f |", minY)
		} else {
			b.WriteString("         |")
		}
		for _, c := range row {
			switch {
			case c == 0:
				b.WriteByte(' ')
			case c > 9:
				b.WriteByte('#')
			default:
				b.WriteByte(byte('0' + c))
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("         +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "          %-8.3f%s%8.3f\n", minX, strings.Repeat(" ", width-16), maxX)
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Figure3Plot renders the Figure 3 scatter as an ASCII density plot.
func (r *Result) Figure3Plot() string {
	xs, ys, _, _ := r.Scatter("ResubScore", "orchestrate")
	return AsciiScatter(xs, ys, 64, 20, "Resub Score", "ROD")
}
