package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/aig"
	"repro/internal/opt"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestRecipesEquivalentOnQuickSuite asserts the load-bearing invariant
// directly: every synthesis recipe produces an AIG functionally
// equivalent to its spec truth tables across the -quick suite cut.
func TestRecipesEquivalentOnQuickSuite(t *testing.T) {
	specs := workload.FilterByInputs(workload.Suite(2024), 8)
	if len(specs) > 20 {
		specs = specs[:20]
	}
	if len(specs) == 0 {
		t.Fatal("empty quick suite")
	}
	for _, spec := range specs {
		for _, rec := range synth.Recipes() {
			g, err := safeBuild(rec, spec.Outputs)
			if err != nil {
				t.Errorf("%s/%s: %v", spec.Name, rec.Name, err)
				continue
			}
			idx, err := g.EquivalentToTTs(spec.Outputs)
			if err != nil {
				t.Errorf("%s/%s: %v", spec.Name, rec.Name, err)
			} else if idx >= 0 {
				t.Errorf("%s/%s: output %d differs from spec", spec.Name, rec.Name, idx)
			}
		}
	}
}

// passthrough is a well-behaved injected flow: it returns its input,
// which is trivially equivalent.
func passthrough(name string) opt.Flow {
	return opt.Flow{
		Name:   name,
		RunCtx: func(_ context.Context, g *aig.AIG, _ int64) *aig.AIG { return g },
	}
}

// TestPanickingFlowQuarantined injects a flow that panics on exactly
// one variant and asserts the blast radius: that variant is
// quarantined with a descriptive Failure, the panic counter records
// it, and every other variant and spec completes normally.
func TestPanickingFlowQuarantined(t *testing.T) {
	telemetry.Disable()
	reg := telemetry.Enable()
	defer telemetry.Disable()

	calls := 0
	boom := opt.Flow{
		Name: "boom",
		RunCtx: func(_ context.Context, g *aig.AIG, _ int64) *aig.AIG {
			if calls++; calls == 3 {
				panic("injected fault")
			}
			return g
		},
	}
	cfg := quickConfig()
	cfg.Flows = nil
	cfg.testFlows = []opt.Flow{passthrough("noop"), boom}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Failures) != 1 {
		t.Fatalf("got %d failures, want 1:\n%s", len(res.Failures), res.FailureSummary())
	}
	f := res.Failures[0]
	victimSpec := res.Specs[0].Name
	victimRecipe := synth.Recipes()[2].Name // boom's third call = first spec, third recipe
	if f.Spec != victimSpec || f.Recipe != victimRecipe || f.Flow != "boom" {
		t.Errorf("failure located at %s/%s/%s, want %s/%s/boom", f.Spec, f.Recipe, f.Flow, victimSpec, victimRecipe)
	}
	if !strings.Contains(f.Reason, "panic") || !strings.Contains(f.Reason, "injected fault") {
		t.Errorf("failure reason %q does not describe the panic", f.Reason)
	}
	if got := reg.Counter("harness/panics_recovered").Value(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}

	// The rest of the run is intact: 4 specs, the victim spec has 6
	// healthy variants (C(6,2)=15 pairs), the others all 7 (21 each).
	if len(res.Specs) != 4 {
		t.Fatalf("got %d specs", len(res.Specs))
	}
	if n := len(res.Specs[0].Variants); n != 6 {
		t.Errorf("victim spec kept %d variants, want 6", n)
	}
	for _, s := range res.Specs[1:] {
		if len(s.Variants) != 7 {
			t.Errorf("%s: %d variants, want 7", s.Name, len(s.Variants))
		}
	}
	if want := 15 + 3*21; len(res.Pairs) != want {
		t.Errorf("got %d pairs, want %d", len(res.Pairs), want)
	}
	if sum := res.FailureSummary(); !strings.Contains(sum, "quarantined variants: 1") || !strings.Contains(sum, "boom") {
		t.Errorf("malformed failure summary:\n%s", sum)
	}
}

// TestEquivalenceViolationQuarantined injects a flow that returns a
// functionally different AIG (all outputs constant false) and asserts
// the equivalence guard catches every variant instead of letting
// corrupt gate counts into the ROD analysis.
func TestEquivalenceViolationQuarantined(t *testing.T) {
	telemetry.Disable()
	reg := telemetry.Enable()
	defer telemetry.Disable()

	corrupt := opt.Flow{
		Name: "corrupt",
		RunCtx: func(_ context.Context, g *aig.AIG, _ int64) *aig.AIG {
			bad := aig.New(g.NumPIs())
			for i := 0; i < g.NumPOs(); i++ {
				bad.AddPO(aig.LitFalse)
			}
			return bad
		},
	}
	cfg := quickConfig()
	cfg.Flows = nil
	cfg.MaxSpecs = 1
	cfg.testFlows = []opt.Flow{corrupt}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Failures) != 7 {
		t.Fatalf("got %d failures, want all 7 variants quarantined:\n%s", len(res.Failures), res.FailureSummary())
	}
	for _, f := range res.Failures {
		if f.Flow != "corrupt" || !strings.Contains(f.Reason, "differs") {
			t.Errorf("unexpected failure %s", f)
		}
	}
	if len(res.Pairs) != 0 {
		t.Errorf("quarantined variants still produced %d pairs", len(res.Pairs))
	}
	if got := reg.Counter("harness/equiv_failures").Value(); got != 7 {
		t.Errorf("equiv_failures = %d, want 7", got)
	}
	if got := reg.Counter("harness/specs_skipped").Value(); got != 1 {
		t.Errorf("specs_skipped = %d, want 1", got)
	}
	// Renderers stay well-formed with zero pairs.
	if res.TableII() == "" || res.CategorySummary() == "" {
		t.Error("empty renderer output for fully quarantined run")
	}
}

// TestSelfCheckQuarantinesStructuralCorruption injects a flow that
// returns a structurally invalid AIG (a PO pointing at a node that does
// not exist) and asserts that Config.SelfCheck quarantines every
// affected variant with a "selfcheck:" reason before the equivalence
// guard ever simulates the broken graph.
func TestSelfCheckQuarantinesStructuralCorruption(t *testing.T) {
	telemetry.Disable()
	reg := telemetry.Enable()
	defer telemetry.Disable()

	mangle := opt.Flow{
		Name: "mangle",
		RunCtx: func(_ context.Context, g *aig.AIG, _ int64) *aig.AIG {
			bad := aig.New(g.NumPIs())
			for i := 0; i < g.NumPOs(); i++ {
				bad.AddPO(aig.MakeLit(bad.NumObjs()+5, false))
			}
			return bad
		},
	}
	cfg := quickConfig()
	cfg.Flows = nil
	cfg.MaxSpecs = 1
	cfg.SelfCheck = true
	cfg.testFlows = []opt.Flow{mangle}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Failures) != 7 {
		t.Fatalf("got %d failures, want all 7 variants quarantined:\n%s", len(res.Failures), res.FailureSummary())
	}
	for _, f := range res.Failures {
		if f.Flow != "mangle" {
			t.Errorf("failure attributed to %q, want flow mangle", f.Flow)
		}
		if !strings.Contains(f.Reason, "selfcheck:") || !strings.Contains(f.Reason, "references nonexistent node") {
			t.Errorf("failure reason %q does not describe the structural violation", f.Reason)
		}
	}
	if len(res.Pairs) != 0 {
		t.Errorf("quarantined variants still produced %d pairs", len(res.Pairs))
	}
	if got := reg.Counter("harness/selfcheck_failures").Value(); got != 7 {
		t.Errorf("selfcheck_failures = %d, want 7", got)
	}
}
