package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/aig"
	"repro/internal/opt"
	"repro/internal/simil"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
	"repro/internal/tt"
	"repro/internal/workload"
)

// Failure records one quarantined variant: a recipe build or flow run
// that panicked, or an AIG that failed functional-equivalence
// verification against its specification. Quarantined variants
// contribute no pair samples; the rest of the run proceeds.
type Failure struct {
	Spec   string `json:"spec"`
	Recipe string `json:"recipe"`
	Flow   string `json:"flow,omitempty"`
	Reason string `json:"reason"`
}

func (f Failure) String() string {
	loc := f.Recipe
	if f.Flow != "" {
		loc += "/" + f.Flow
	}
	return fmt.Sprintf("%s %s: %s", f.Spec, loc, f.Reason)
}

// FailureSummary renders the run's quarantined variants, one per line,
// for the end-of-run report. Empty when nothing was quarantined.
func (r *Result) FailureSummary() string {
	if len(r.Failures) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "quarantined variants: %d\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// Recover converts an in-flight panic into an error on *err and counts
// it under harness/panics_recovered, so one crashing variant (or one
// crashing service job) cannot abort the batch run or the daemon. Use
// it deferred: defer harness.Recover(&err, "what was running").
func Recover(err *error, what string) {
	if r := recover(); r != nil {
		telemetry.Add("harness/panics_recovered", 1)
		*err = fmt.Errorf("panic in %s: %v", what, r)
	}
}

// safeBuild runs one synthesis recipe with panic isolation.
func safeBuild(rec synth.Recipe, spec []tt.TT) (g *aig.AIG, err error) {
	defer Recover(&err, "recipe "+rec.Name)
	return rec.Build(spec), nil
}

// SafeProfile computes the similarity profile for the given artifact
// families with panic isolation.
func SafeProfile(g *aig.AIG, opts simil.ProfileOptions, needs simil.Artifacts) (p *simil.Profile, err error) {
	defer Recover(&err, "profile")
	return simil.NewProfileFor(g, opts, needs), nil
}

// SafeFlow runs one optimization flow with panic isolation. When the
// calling context carries a trace, the flow runs under a
// "harness/flow" span — defer order matters: the Fail check is
// declared after End so it runs first (LIFO) and after Recover has
// turned any panic into err.
func SafeFlow(ctx context.Context, flow opt.Flow, g *aig.AIG, seed int64) (og *aig.AIG, err error) {
	ctx, sp := trace.Start(ctx, "harness/flow")
	sp.Attr("flow", flow.Name).Attr("seed", seed)
	defer sp.End()
	defer func() { sp.Fail(err) }()
	defer Recover(&err, "flow "+flow.Name)
	return flow.RunCtx(ctx, g, seed), nil
}

// selfCheck runs the structural verifier when Config.SelfCheck is set.
// A violation means a recipe or pass broke the AIG invariants (fanin
// order, strash canonicality, levels) even if the result still happens
// to simulate correctly, so it quarantines the variant.
func (c Config) selfCheck(g *aig.AIG) error {
	if !c.SelfCheck {
		return nil
	}
	if err := g.Check(); err != nil {
		telemetry.Add("harness/selfcheck_failures", 1)
		return fmt.Errorf("selfcheck: %v", err)
	}
	return nil
}

// flowContext derives the per-flow wall-clock budget context.
func (c Config) flowContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.FlowTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.FlowTimeout)
}

// buildVariant synthesizes, verifies, profiles, and optimizes one
// (spec, recipe) variant. Every synthesized AIG is checked against the
// spec truth tables and every optimized AIG against the synthesized one
// — the invariant the whole ROD analysis rests on. Any panic or
// equivalence violation quarantines the variant: the returned Failure
// describes it and the Variant is nil.
func (c Config) buildVariant(ctx context.Context, spec workload.Spec, rec synth.Recipe, flows []opt.Flow) (*Variant, *Failure) {
	ctx, vspan := trace.Start(ctx, "harness/variant")
	vspan.Attr("spec", spec.Name).Attr("recipe", rec.Name)
	defer vspan.End()
	fail := func(flowName, reason string) (*Variant, *Failure) {
		vspan.Fail(fmt.Errorf("%s", reason))
		vspan.Event("variant_quarantined", trace.A("flow", flowName), trace.A("reason", reason))
		return nil, &Failure{Spec: spec.Name, Recipe: rec.Name, Flow: flowName, Reason: reason}
	}
	g, err := safeBuild(rec, spec.Outputs)
	if err != nil {
		return fail("", err.Error())
	}
	if err := c.selfCheck(g); err != nil {
		return fail("", err.Error())
	}
	if idx, err := g.EquivalentToTTs(spec.Outputs); err != nil || idx >= 0 {
		telemetry.Add("harness/equiv_failures", 1)
		if err == nil {
			err = fmt.Errorf("synthesized AIG differs from spec on output %d", idx)
		}
		return fail("", err.Error())
	}
	v := &Variant{
		Recipe:    rec.Name,
		Gates:     g.NumAnds(),
		Levels:    g.NumLevels(),
		FlowGates: make(map[string]int, len(flows)),
	}
	popts := c.Profile
	popts.Seed = specSeed(c.Seed, spec.Name, rec.Name)
	if v.Profile, err = SafeProfile(g, popts, simil.AllArtifacts); err != nil {
		return fail("", err.Error())
	}
	for _, flow := range flows {
		fctx, cancel := c.flowContext(ctx)
		og, err := SafeFlow(fctx, flow, g, specSeed(c.Seed, spec.Name, rec.Name, flow.Name))
		if err == nil && fctx.Err() != nil && ctx.Err() == nil {
			// The flow's own budget expired (not a run-level cancel): it
			// degraded to its best AIG so far; count it and keep going.
			telemetry.Add("harness/flow_timeouts", 1)
		}
		cancel()
		if err != nil {
			return fail(flow.Name, err.Error())
		}
		if err := c.selfCheck(og); err != nil {
			return fail(flow.Name, err.Error())
		}
		if idx, err := aig.Equivalent(g, og); err != nil || idx >= 0 {
			telemetry.Add("harness/equiv_failures", 1)
			if err == nil {
				err = fmt.Errorf("optimized AIG differs from synthesized AIG on output %d", idx)
			}
			return fail(flow.Name, err.Error())
		}
		v.FlowGates[flow.Name] = og.NumAnds()
	}
	return v, nil
}
