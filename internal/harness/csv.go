package harness

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteCSV writes the raw pair samples — the unit of analysis behind
// Table I/II and Figure 3 — as CSV: one row per (spec, recipeA,
// recipeB) with every metric and per-flow ROD column. The first write
// or flush error is returned, so a full disk truncating the file is
// reported instead of silently producing a short results_pairs.csv.
func WriteCSV(w io.Writer, r *Result) error {
	bw := bufio.NewWriter(w)
	metricNames := append([]string(nil), r.MetricNames...)
	sort.Strings(metricNames)
	flowNames := append([]string(nil), r.FlowNames...)
	fmt.Fprintf(bw, "spec,recipeA,recipeB,gatesA,gatesB")
	for _, m := range metricNames {
		fmt.Fprintf(bw, ",%s", m)
	}
	for _, fl := range flowNames {
		fmt.Fprintf(bw, ",ROD_%s", fl)
	}
	fmt.Fprintln(bw)
	for _, p := range r.Pairs {
		fmt.Fprintf(bw, "%s,%s,%s,%d,%d", p.Spec, p.RecipeA, p.RecipeB, p.GatesA, p.GatesB)
		for _, m := range metricNames {
			fmt.Fprintf(bw, ",%.6f", p.Metrics[m])
		}
		for _, fl := range flowNames {
			fmt.Fprintf(bw, ",%.6f", p.ROD[fl])
		}
		fmt.Fprintln(bw)
	}
	// bufio retains the first underlying write error; Flush surfaces it.
	return bw.Flush()
}
