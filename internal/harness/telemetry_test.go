package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestTelemetryNeutral asserts the tentpole invariant: with a fixed
// seed, a fully instrumented run (registry enabled, metrics server
// irrelevant, event log attached) produces byte-identical experiment
// results to an uninstrumented run. Telemetry must observe, never
// perturb.
func TestTelemetryNeutral(t *testing.T) {
	telemetry.Disable()
	plain, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}

	telemetry.Enable()
	defer telemetry.Disable()
	var events bytes.Buffer
	cfg := quickConfig()
	cfg.Events = telemetry.NewEventLogger(&events)
	instrumented, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Specs, instrumented.Specs) {
		t.Error("instrumented run changed spec results")
	}
	if !reflect.DeepEqual(plain.Pairs, instrumented.Pairs) {
		t.Error("instrumented run changed pair samples")
	}
	if events.Len() == 0 {
		t.Error("instrumented run logged no events")
	}
}

// TestRunRecordsTelemetry checks that one harness run populates the
// counters and span families every downstream consumer (summary table,
// /metrics, bench reporting) relies on.
func TestRunRecordsTelemetry(t *testing.T) {
	telemetry.Disable()
	reg := telemetry.Enable()
	defer telemetry.Disable()

	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("harness/specs_done").Value(); got != int64(len(res.Specs)) {
		t.Errorf("specs_done = %d, want %d", got, len(res.Specs))
	}
	if got := reg.Counter("harness/pairs").Value(); got != int64(len(res.Pairs)) {
		t.Errorf("pairs = %d, want %d", got, len(res.Pairs))
	}
	wantRods := int64(len(res.Pairs) * len(res.FlowNames))
	if got := reg.Counter("harness/rods").Value(); got != wantRods {
		t.Errorf("rods = %d, want %d", got, wantRods)
	}
	// Every stage bucket must have recorded spans, and their sum must
	// be positive and bounded by the run span.
	_, runSec := reg.SpanSeconds("harness/run")
	total := 0.0
	for _, st := range Stages() {
		n, sec := StageSeconds(reg, st)
		if n == 0 {
			t.Errorf("stage %s recorded no spans", st.Label)
		}
		total += sec
	}
	if total <= 0 || total > runSec*1.01 {
		t.Errorf("stage total %.3fs out of range (run %.3fs)", total, runSec)
	}
	summary := StageSummary(reg, time.Duration(runSec*float64(time.Second)))
	for _, want := range []string{"synthesis", "profiling", "optimization", "metrics", "stage total:"} {
		if !strings.Contains(summary, want) {
			t.Errorf("summary missing %q:\n%s", want, summary)
		}
	}
}

// TestProgressAndEventsAgree asserts the anti-divergence satellite: the
// human-readable progress line and the structured event stream are the
// same record, so a redirected results_progress.log can never disagree
// with the JSONL event log.
func TestProgressAndEventsAgree(t *testing.T) {
	var progress, events bytes.Buffer
	cfg := quickConfig()
	cfg.Progress = &progress
	cfg.Events = telemetry.NewEventLogger(&events)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	progressLines := strings.Split(strings.TrimSpace(progress.String()), "\n")
	var eventLines []string
	for _, raw := range strings.Split(strings.TrimSpace(events.String()), "\n") {
		var doc map[string]any
		if err := json.Unmarshal([]byte(raw), &doc); err != nil {
			t.Fatalf("bad event line %q: %v", raw, err)
		}
		if doc["event"] == "spec_done" {
			eventLines = append(eventLines, doc["line"].(string))
		}
	}
	if !reflect.DeepEqual(progressLines, eventLines) {
		t.Errorf("progress and event lines diverge:\n%v\nvs\n%v", progressLines, eventLines)
	}
}

func TestUnknownRecipeAndFlowErrors(t *testing.T) {
	cfg := quickConfig()
	cfg.Recipes = []string{"sop", "nope"}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), `unknown recipe "nope"`) {
		t.Errorf("unknown recipe error = %v", err)
	}
	cfg = quickConfig()
	cfg.Flows = []string{"dc2", "warp"}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), `unknown flow "warp"`) {
		t.Errorf("unknown flow error = %v", err)
	}
}
