package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Stage is one non-overlapping wall-clock accounting bucket of the
// experiment pipeline. Selector follows telemetry.Registry.SpanSeconds
// semantics: a trailing "/" sums the top-level spans under that prefix,
// anything else reads one exact span name. The four stages are chosen so
// their totals partition a harness run's time without double counting —
// nested spans (opt passes inside flows, profile sub-phases) are
// deliberately excluded.
type Stage struct {
	Label    string
	Selector string
}

// Stages returns the pipeline's accounting buckets in execution order.
func Stages() []Stage {
	return []Stage{
		{"synthesis", "synth/"},
		{"profiling", "profile/total"},
		{"optimization", "flow/"},
		{"metrics", "metric/"},
	}
}

// StageSeconds reads one stage's cumulative (count, seconds) from reg.
func StageSeconds(reg *telemetry.Registry, s Stage) (int64, float64) {
	return reg.SpanSeconds(s.Selector)
}

// StageSummary renders the per-stage wall-clock rollup against the
// run's elapsed time, followed by the full span table. The stage totals
// should account for nearly all of a harness run (the residual is
// bookkeeping: workload generation, pairing, correlation).
func StageSummary(reg *telemetry.Registry, elapsed time.Duration) string {
	if reg == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %10s %8s\n", "stage", "count", "total", "% of run")
	covered := 0.0
	for _, st := range Stages() {
		n, sec := StageSeconds(reg, st)
		covered += sec
		pct := 0.0
		if elapsed > 0 {
			pct = 100 * sec / elapsed.Seconds()
		}
		fmt.Fprintf(&b, "%-14s %8d %9.2fs %7.1f%%\n", st.Label, n, sec, pct)
	}
	if elapsed > 0 {
		fmt.Fprintf(&b, "stage total: %.2fs of %.2fs elapsed (%.1f%%)\n",
			covered, elapsed.Seconds(), 100*covered/elapsed.Seconds())
	}
	b.WriteString("\n")
	b.WriteString(reg.SummaryTable())
	return b.String()
}
