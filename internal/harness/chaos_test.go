package harness

// The chaos suite: deterministic fault injection (internal/faultinject)
// driving the harness's crash paths. Each test arms a failure schedule
// that a kill, a full disk, or a flaky filesystem would produce for
// real, and asserts the crash-consistency invariants documented in
// DESIGN.md:
//
//  1. a reader never observes a torn results file — the target of an
//     atomic replace holds the old complete content or the new
//     complete content, nothing else;
//  2. failed writes leave no temp-file litter (and a startup sweep
//     quarantines what an actual kill would leave);
//  3. a checkpoint resumed over any torn tail reproduces the
//     uninterrupted run byte-identically;
//  4. injected failures surface as typed, wrapped errors, never as
//     silent corruption.
//
// Run it via `make chaos` (always under -race).

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultinject"
)

// armChaos enables one armed fault for the duration of the test.
func armChaos(t *testing.T, name string, tr faultinject.Trigger, f faultinject.Fault) {
	t.Helper()
	faultinject.Reset()
	faultinject.Arm(name, tr, f)
	faultinject.Enable()
	t.Cleanup(func() {
		faultinject.Disable()
		faultinject.Reset()
	})
}

// TestChaosAtomicWriteFaultMatrix kills the atomic replace at every
// step that can fail. Whatever fires, the invariants hold: the old
// file survives untouched, no temp litter remains, and the failure is
// a typed error wrapping the injected cause.
func TestChaosAtomicWriteFaultMatrix(t *testing.T) {
	cases := []struct {
		name  string
		point string
		fault faultinject.Fault
		cause error
	}{
		{"create-enospc", PointAtomicCreate, faultinject.Fault{Mode: faultinject.ModeENOSPC}, syscall.ENOSPC},
		{"write-enospc", PointAtomicWrite, faultinject.Fault{Mode: faultinject.ModeENOSPC}, syscall.ENOSPC},
		{"write-torn", PointAtomicWrite, faultinject.Fault{Mode: faultinject.ModeTornWrite, KeepBytes: 3}, faultinject.Err},
		{"sync-eio", PointAtomicSync, faultinject.Fault{Mode: faultinject.ModeFsync}, syscall.EIO},
		{"rename-error", PointAtomicRename, faultinject.Fault{Mode: faultinject.ModeError}, faultinject.Err},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.csv")
			if err := os.WriteFile(path, []byte("old complete content\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			armChaos(t, tc.point, faultinject.Always(), tc.fault)

			err := WriteFileAtomic(path, func(w io.Writer) error {
				_, werr := w.Write([]byte("new content that must never appear torn\n"))
				return werr
			})
			if err == nil {
				t.Fatal("fault did not surface")
			}
			if !errors.Is(err, faultinject.Err) || !errors.Is(err, tc.cause) {
				t.Fatalf("error %v does not wrap faultinject.Err and %v", err, tc.cause)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if string(got) != "old complete content\n" {
				t.Fatalf("target corrupted by failed replace: %q", got)
			}
			entries, rerr := os.ReadDir(dir)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if len(entries) != 1 {
				t.Fatalf("temp litter after failure: %v", entries)
			}
		})
	}
}

// TestChaosCSVDiskFull hits ENOSPC partway through the production CSV
// export composition: some bytes land in the temp file, then the disk
// fills. The half-written temp must never be renamed in.
func TestChaosCSVDiskFull(t *testing.T) {
	// Enough pairs that the CSV spans several underlying writes, so the
	// disk can fill mid-export rather than before the first byte.
	res := &Result{MetricNames: []string{"RGC"}, FlowNames: []string{"orchestrate"}}
	for i := 0; i < 400; i++ {
		res.Pairs = append(res.Pairs, PairSample{
			Spec: "s", RecipeA: "a", RecipeB: "b",
			Metrics: map[string]float64{"RGC": 0.5},
			ROD:     map[string]float64{"orchestrate": 0.25},
		})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "pairs.csv")
	// The disk fills on the CSV writer's second flush to the temp file.
	armChaos(t, PointAtomicWrite, faultinject.FromCall(2), faultinject.Fault{Mode: faultinject.ModeENOSPC})

	err := WriteFileAtomic(path, func(w io.Writer) error { return WriteCSV(w, res) })
	if err == nil {
		t.Fatal("ENOSPC did not surface")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("error %v does not wrap ENOSPC", err)
	}
	if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
		t.Fatalf("partial CSV became visible at %s", path)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 0 {
		t.Fatalf("temp litter after ENOSPC: %v", entries)
	}
}

// TestChaosSweepAtomicTemps seeds the exact debris a kill between
// create and rename leaves and proves the startup sweep quarantines it
// without touching completed artifacts.
func TestChaosSweepAtomicTemps(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "pairs.csv"+atomicTempMark+"123456")
	keepCSV := filepath.Join(dir, "pairs.csv")
	for _, p := range []string{orphan, keepCSV} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := SweepAtomicTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("swept %d orphans, want 1", removed)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan temp survived the sweep")
	}
	if _, err := os.Stat(keepCSV); err != nil {
		t.Fatal("sweep removed a completed artifact")
	}
}

// tornShape is one way a kill can tear the checkpoint file.
type tornShape struct {
	name string
	// mangle corrupts a complete checkpoint file's bytes.
	mangle func([]byte) []byte
	// resumable reports whether OpenCheckpoint(resume) must succeed
	// (dropping the torn tail) or fail with a typed refusal.
	resumable bool
	// keptRecords is the record count a successful resume must load.
	keptRecords int
}

// TestChaosCheckpointTornShapes replays resume over every torn-write
// shape a kill can produce: a record torn mid-line, a header torn
// mid-line, and trailing garbage after a valid record. Resumable
// shapes must keep exactly the trusted prefix; an untrusted header
// must be refused loudly, never guessed around.
func TestChaosCheckpointTornShapes(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxSpecs = 2

	// Build a complete, healthy two-record checkpoint to mangle.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, _, err := OpenCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Seed: cfg.Seed, MaxInputs: cfg.MaxInputs, MaxSpecs: cfg.MaxSpecs,
		Flows: cfg.Flows, Checkpoint: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	if len(res.Specs) != 2 {
		t.Fatalf("reference run kept %d specs", len(res.Specs))
	}
	healthy, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(healthy, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("checkpoint has %d lines, want header + 2 records", len(lines))
	}

	shapes := []tornShape{
		{
			name: "mid-record",
			// Kill landed halfway through the final record's line.
			mangle:    func(b []byte) []byte { return b[:len(b)-len(lines[2])/2] },
			resumable: true, keptRecords: 1,
		},
		{
			name: "mid-header",
			// Kill landed halfway through the header itself: nothing in
			// the file can be trusted.
			mangle:    func(b []byte) []byte { return b[:len(lines[0])/2] },
			resumable: false,
		},
		{
			name: "trailing-garbage",
			// fsync reordering or a torn sector appended junk after the
			// last complete record.
			mangle:    func(b []byte) []byte { return append(append([]byte{}, b...), []byte("{\"spec\":")...) },
			resumable: true, keptRecords: 2,
		},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			torn := filepath.Join(t.TempDir(), "torn.ckpt")
			mangled := sh.mangle(append([]byte{}, healthy...))
			if err := os.WriteFile(torn, mangled, 0o644); err != nil {
				t.Fatal(err)
			}
			ckpt, records, err := OpenCheckpoint(torn, cfg, true)
			if !sh.resumable {
				if err == nil {
					_ = ckpt.Close()
					t.Fatal("resume accepted an untrusted header")
				}
				if !strings.Contains(err.Error(), "checkpoint") {
					t.Fatalf("refusal is not a typed checkpoint error: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(records) != sh.keptRecords {
				t.Fatalf("resume kept %d records, want %d", len(records), sh.keptRecords)
			}
			if err := ckpt.Close(); err != nil {
				t.Fatal(err)
			}
			// The truncated file is exactly the trusted prefix of the
			// healthy file — byte-identical, no invented bytes.
			got, err := os.ReadFile(torn)
			if err != nil {
				t.Fatal(err)
			}
			wantLen := 0
			for _, l := range lines[:1+sh.keptRecords] {
				wantLen += len(l)
			}
			if !bytes.Equal(got, healthy[:wantLen]) {
				t.Fatal("resumed file is not the trusted prefix of the healthy file")
			}
		})
	}
}

// TestChaosCheckpointKillDuringAppend injects a torn write into the
// checkpoint appender — the state an actual kill leaves — then
// abandons the file exactly as a dead process would (no flush, no
// clean close) and resumes. The resumed run must be byte-identical to
// an uninterrupted one.
func TestChaosCheckpointKillDuringAppend(t *testing.T) {
	cfg := quickConfig()

	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := WriteCSV(&refCSV, ref); err != nil {
		t.Fatal(err)
	}

	// Flushes to the file: header is write 1, each record one more.
	// Tear the third write (the second record) after 9 bytes.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	armChaos(t, PointCheckpointWrite, faultinject.OnCall(3),
		faultinject.Fault{Mode: faultinject.ModeTornWrite, KeepBytes: 9})

	ckpt, _, err := OpenCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	first := cfg
	first.Checkpoint = ckpt
	if _, err := RunContext(context.Background(), first); err == nil {
		t.Fatal("torn append did not abort the run")
	} else if !errors.Is(err, faultinject.Err) {
		t.Fatalf("torn append surfaced as %v, want wrapped faultinject.Err", err)
	}
	// Die like a kill: drop the Checkpointer on the floor — its buffer
	// is never flushed, only the torn bytes are on disk.
	if err := ckpt.f.Close(); err != nil {
		t.Fatal(err)
	}
	faultinject.Disable()
	faultinject.Reset()

	ckpt2, records, err := OpenCheckpoint(path, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("resume loaded %d records, want 1 (the complete one)", len(records))
	}
	second := cfg
	second.Checkpoint = ckpt2
	second.Resume = records
	resumed, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt2.Close(); err != nil {
		t.Fatal(err)
	}

	var gotCSV bytes.Buffer
	if err := WriteCSV(&gotCSV, resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), refCSV.Bytes()) {
		t.Fatal("CSV differs after torn-append resume")
	}
	if got, want := resumed.TableI(), ref.TableI(); got != want {
		t.Fatalf("Table I differs after torn-append resume:\n%s\nvs\n%s", got, want)
	}
	// And the repaired checkpoint replays in full.
	all, _, err := LoadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ref.Specs) {
		t.Fatalf("final checkpoint holds %d records, want %d", len(all), len(ref.Specs))
	}
}

// TestChaosCheckpointFsyncFailure: an fsync error on append is a hard,
// typed failure — the run stops instead of continuing on a checkpoint
// that silently is not durable.
func TestChaosCheckpointFsyncFailure(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxSpecs = 2
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, _, err := OpenCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ckpt.Close() }()
	armChaos(t, PointCheckpointSync, faultinject.Always(), faultinject.Fault{Mode: faultinject.ModeFsync})

	first := cfg
	first.Checkpoint = ckpt
	_, err = Run(first)
	if err == nil {
		t.Fatal("fsync failure did not abort the run")
	}
	if !errors.Is(err, syscall.EIO) || !errors.Is(err, faultinject.Err) {
		t.Fatalf("fsync failure surfaced as %v, want wrapped EIO", err)
	}
}
