package harness

// Checkpointing makes the long-running batch experiment killable and
// resumable. The checkpoint is a JSONL file: a header line binding the
// file to a config fingerprint (seed, suite cut, recipes, flows,
// profile options, flow budget), then one SpecRecord per completed
// spec. Because every per-spec result is deterministic given the
// config, replaying the record prefix and recomputing the rest yields
// output byte-identical to an uninterrupted run — the property the
// checkpoint test suite asserts.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/faultinject"
)

// Fault-injection points on the checkpoint append path. A fault at
// either one aborts the run with the record possibly torn on disk —
// exactly the state a kill or power cut leaves — and the chaos suite
// asserts that resume from that state stays byte-identical to an
// uninterrupted run (the torn tail is dropped and recomputed).
const (
	PointCheckpointWrite = "harness/checkpoint_write"
	PointCheckpointSync  = "harness/checkpoint_sync"
)

// SpecRecord is one checkpointed spec: everything Run derives from a
// completed spec (the spec run, its pair samples, and any quarantined
// variants), so a resumed run adopts it without recomputation. Variant
// profiles are not persisted — the pairwise metrics that need them are
// already in Pairs — so resumed SpecRuns carry nil Profiles.
type SpecRecord struct {
	Spec     string       `json:"spec"`
	Run      SpecRun      `json:"run"`
	Pairs    []PairSample `json:"pairs,omitempty"`
	Failures []Failure    `json:"failures,omitempty"`
}

// checkpointFormat names the checkpoint layout; bump on breaking
// changes so stale files are rejected instead of misread.
const checkpointFormat = "aig-repro-checkpoint/v1"

type checkpointHeader struct {
	Format      string `json:"format"`
	Fingerprint string `json:"fingerprint"`
	Seed        int64  `json:"seed"`
}

// fingerprint digests every config field that influences experiment
// results. A checkpoint written under one fingerprint must never be
// replayed into a run with another: silently mixing configurations
// would corrupt the correlation analysis.
func (c Config) fingerprint() (string, error) {
	recipes, err := c.recipeSet()
	if err != nil {
		return "", err
	}
	flows, err := c.flowSet()
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d;maxInputs=%d;maxSpecs=%d;", c.Seed, c.maxInputs(), c.MaxSpecs)
	for _, r := range recipes {
		fmt.Fprintf(h, "recipe=%s;", r.Name)
	}
	for _, f := range flows {
		fmt.Fprintf(h, "flow=%s;", f.Name)
	}
	fmt.Fprintf(h, "profile=%d/%d/%t/%d;", c.Profile.SpectrumK, c.Profile.WLIterations, c.Profile.SkipOptScores, c.Profile.Seed)
	fmt.Fprintf(h, "flowTimeout=%s", c.FlowTimeout)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Checkpointer appends one record per completed spec to a JSONL file,
// flushing after every record so a killed run loses at most the spec
// in flight.
type Checkpointer struct {
	f *os.File
	w *bufio.Writer
}

// newCheckpointer wraps f's write path with the checkpoint fault
// point; this is the single construction site, so an armed schedule
// covers fresh and resumed checkpoints alike.
func newCheckpointer(f *os.File) *Checkpointer {
	return &Checkpointer{f: f, w: bufio.NewWriter(faultinject.WrapWriter(PointCheckpointWrite, f))}
}

// OpenCheckpoint prepares path for checkpointing under cfg. With resume
// false (or no existing file to resume) it truncates the file and
// writes a fresh header. With resume true it validates the header
// fingerprint against cfg, truncates any torn final line left by a
// killed run, returns every complete SpecRecord, and reopens the file
// for appending.
func OpenCheckpoint(path string, cfg Config, resume bool) (*Checkpointer, []SpecRecord, error) {
	if resume {
		records, offset, err := LoadCheckpoint(path, cfg)
		switch {
		case err == nil:
			f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
			if err != nil {
				return nil, nil, err
			}
			if err := f.Truncate(offset); err != nil {
				_ = f.Close()
				return nil, nil, err
			}
			if _, err := f.Seek(offset, io.SeekStart); err != nil {
				_ = f.Close()
				return nil, nil, err
			}
			return newCheckpointer(f), records, nil
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume: start a fresh checkpoint below.
		default:
			return nil, nil, err
		}
	}
	fp, err := cfg.fingerprint()
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	c := newCheckpointer(f)
	if err := c.append(checkpointHeader{Format: checkpointFormat, Fingerprint: fp, Seed: cfg.Seed}); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("harness: writing checkpoint header: %w", err)
	}
	return c, nil, nil
}

// LoadCheckpoint reads the checkpoint at path, validates that it was
// written by a run with cfg's fingerprint, and returns the complete
// records in file order plus the byte offset just past the last
// complete record (a torn final line from a killed run is dropped).
func LoadCheckpoint(path string, cfg Config) ([]SpecRecord, int64, error) {
	fp, err := cfg.fingerprint()
	if err != nil {
		return nil, 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	headerLine, err := br.ReadString('\n')
	if err != nil {
		return nil, 0, fmt.Errorf("harness: checkpoint %s: reading header: %w", path, err)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal([]byte(headerLine), &hdr); err != nil || hdr.Format != checkpointFormat {
		return nil, 0, fmt.Errorf("harness: %s is not a %s file", path, checkpointFormat)
	}
	if hdr.Fingerprint != fp {
		return nil, 0, fmt.Errorf("harness: checkpoint %s was written under a different configuration (fingerprint %s, this run %s); rerun without -resume or restore the original flags", path, hdr.Fingerprint, fp)
	}
	offset := int64(len(headerLine))
	var records []SpecRecord
	for {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			break
		}
		var rec SpecRecord
		// Stop at the first torn (no trailing newline) or foreign line:
		// everything before it is a trusted prefix, everything after is
		// recomputed.
		if err != nil || json.Unmarshal([]byte(line), &rec) != nil || rec.Spec == "" {
			break
		}
		records = append(records, rec)
		offset += int64(len(line))
	}
	return records, offset, nil
}

// Append persists one completed spec. The write is flushed to the OS
// and fsynced to stable storage before returning, so neither a kill
// nor a machine crash can lose it.
func (c *Checkpointer) Append(rec SpecRecord) error {
	if err := c.append(rec); err != nil {
		return fmt.Errorf("harness: appending checkpoint record for %s: %w", rec.Spec, err)
	}
	if err := faultinject.Hit(PointCheckpointSync); err != nil {
		return fmt.Errorf("harness: syncing checkpoint record for %s: %w", rec.Spec, err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("harness: syncing checkpoint record for %s: %w", rec.Spec, err)
	}
	return nil
}

func (c *Checkpointer) append(doc any) error {
	line, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	if _, err := c.w.Write(append(line, '\n')); err != nil {
		return err
	}
	return c.w.Flush()
}

// Close flushes and closes the checkpoint file. Safe on nil.
func (c *Checkpointer) Close() error {
	if c == nil {
		return nil
	}
	if err := c.w.Flush(); err != nil {
		_ = c.f.Close()
		return err
	}
	return c.f.Close()
}
