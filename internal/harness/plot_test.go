package harness

import (
	"strings"
	"testing"
)

func TestAsciiScatter(t *testing.T) {
	xs := []float64{0, 0.5, 1, 0.5, 0.5}
	ys := []float64{0, 0.5, 1, 0.5, 0.5}
	out := AsciiScatter(xs, ys, 40, 10, "x", "y")
	if !strings.Contains(out, "5 points") {
		t.Errorf("missing point count:\n%s", out)
	}
	// The (0.5,0.5) cell holds three points.
	if !strings.Contains(out, "3") {
		t.Errorf("density digit missing:\n%s", out)
	}
	if !strings.Contains(out, "1.000") || !strings.Contains(out, "0.000") {
		t.Errorf("axis extents missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10+3 { // header + rows + axis + extents
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestAsciiScatterDegenerate(t *testing.T) {
	if out := AsciiScatter(nil, nil, 40, 10, "x", "y"); !strings.Contains(out, "no data") {
		t.Error("empty input should say so")
	}
	// Constant data must not divide by zero.
	out := AsciiScatter([]float64{1, 1}, []float64{2, 2}, 40, 10, "x", "y")
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked:\n%s", out)
	}
	// Tiny dimensions fall back to defaults.
	out = AsciiScatter([]float64{0, 1}, []float64{0, 1}, 1, 1, "x", "y")
	if len(out) < 100 {
		t.Error("default dimensions not applied")
	}
}

func TestFigure3Plot(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Figure3Plot()
	if !strings.Contains(out, "ROD") || !strings.Contains(out, "Resub Score") {
		t.Errorf("plot labels missing:\n%s", out)
	}
}
