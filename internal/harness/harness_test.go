package harness

import (
	"math"
	"strings"
	"testing"
)

// quickConfig keeps integration tests fast: a handful of small specs,
// two flows, all recipes.
func quickConfig() Config {
	return Config{
		Seed:      1,
		MaxInputs: 5,
		MaxSpecs:  4,
		Flows:     []string{"orchestrate", "dc2"},
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Specs) != 4 {
		t.Fatalf("got %d specs", len(res.Specs))
	}
	wantPairs := 4 * 21 // C(7,2) per spec
	if len(res.Pairs) != wantPairs {
		t.Fatalf("got %d pairs, want %d", len(res.Pairs), wantPairs)
	}
	for _, s := range res.Specs {
		if len(s.Variants) != 7 {
			t.Fatalf("%s: %d variants", s.Name, len(s.Variants))
		}
		for _, v := range s.Variants {
			for flow, gates := range v.FlowGates {
				if gates > v.Gates {
					t.Errorf("%s/%s: flow %s grew %d -> %d", s.Name, v.Recipe, flow, v.Gates, gates)
				}
			}
		}
	}
	for _, p := range res.Pairs {
		for name, val := range p.Metrics {
			if math.IsNaN(val) || math.IsInf(val, 0) {
				t.Errorf("%s %s-%s: metric %s = %f", p.Spec, p.RecipeA, p.RecipeB, name, val)
			}
		}
		for flow, rod := range p.ROD {
			if rod < 0 || rod > 1 {
				t.Errorf("%s: ROD(%s) = %f out of [0,1]", p.Spec, flow, rod)
			}
		}
	}
}

func TestCorrelationAndTables(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := res.Correlation("RRRScore", "orchestrate")
	if err != nil {
		t.Fatalf("correlation: %v", err)
	}
	if c.R < -1 || c.R > 1 || c.Low > c.R || c.High < c.R {
		t.Errorf("bad correlation %+v", c)
	}
	t1 := res.TableI()
	if !strings.Contains(t1, "Vertex-Edge Overlap") || !strings.Contains(t1, "Adjacency Spectral Distance") {
		t.Errorf("Table I missing rows:\n%s", t1)
	}
	t2 := res.TableII()
	for _, want := range []string{"RGC", "RLC", "Rewrite Score", "Refactor Score", "Resub Score", "RRR Score", "orchestrate", "dc2"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q:\n%s", want, t2)
		}
	}
	f3 := res.Figure3()
	if !strings.Contains(f3, "ResubScore") || !strings.Contains(f3, "trendline") {
		t.Errorf("Figure 3 malformed:\n%s", f3)
	}
	if res.CategorySummary() == "" {
		t.Error("empty category summary")
	}
}

func TestFigure2(t *testing.T) {
	out, err := Figure2("fulladder", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Relative Optimizability Difference") {
		t.Errorf("Figure 2 malformed:\n%s", out)
	}
	if _, err := Figure2("no-such-spec", 1); err == nil {
		t.Error("unknown spec should error")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.Recipes = []string{"sop"}
	if _, err := Run(cfg); err == nil {
		t.Error("single recipe should error")
	}
	cfg = quickConfig()
	cfg.Flows = []string{"nope"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown flow should error")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxSpecs = 2
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatal("pair counts differ")
	}
	for i := range a.Pairs {
		for name := range a.Pairs[i].Metrics {
			if a.Pairs[i].Metrics[name] != b.Pairs[i].Metrics[name] {
				t.Fatalf("pair %d metric %s not deterministic", i, name)
			}
		}
		for flow := range a.Pairs[i].ROD {
			if a.Pairs[i].ROD[flow] != b.Pairs[i].ROD[flow] {
				t.Fatalf("pair %d ROD %s not deterministic", i, flow)
			}
		}
	}
}

func TestCorrelationByCategory(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	byCat := res.CorrelationByCategory("RRRScore", "orchestrate")
	if len(byCat) == 0 {
		t.Fatal("no categories")
	}
	total := 0
	for cat, c := range byCat {
		if c.R < -1 || c.R > 1 {
			t.Errorf("%s: r = %f out of range", cat, c.R)
		}
		total += c.N
	}
	if total > len(res.Pairs) {
		t.Errorf("category samples %d exceed pair count %d", total, len(res.Pairs))
	}
	tbl := res.CategoryTable("RRRScore", "orchestrate")
	if !strings.Contains(tbl, "RRRScore") || !strings.Contains(tbl, "r =") {
		t.Errorf("malformed category table:\n%s", tbl)
	}
}
