package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// writerFunc adapts a function to io.Writer so tests can observe (and
// react to) per-spec progress lines.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestKillAndResumeByteIdentical is the checkpoint acceptance test: a
// run cancelled partway through and resumed from its checkpoint must
// reproduce the uninterrupted run's tables and CSV byte for byte.
func TestKillAndResumeByteIdentical(t *testing.T) {
	cfg := quickConfig()

	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := WriteCSV(&refCSV, ref); err != nil {
		t.Fatal(err)
	}

	// First leg: checkpoint every spec, cancel after the second one
	// completes (the cancel lands via the progress hook, which fires
	// after the record is appended).
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, records, err := OpenCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if records != nil {
		t.Fatalf("fresh checkpoint returned %d records", len(records))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	first := cfg
	first.Checkpoint = ckpt
	first.Progress = writerFunc(func(p []byte) (int, error) {
		if done++; done == 2 {
			cancel()
		}
		return len(p), nil
	})
	partial, err := RunContext(ctx, first)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if len(partial.Specs) != 2 {
		t.Fatalf("interrupted run kept %d specs, want 2", len(partial.Specs))
	}

	// Second leg: resume from the checkpoint and run to completion.
	ckpt2, records, err := OpenCheckpoint(path, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("resume loaded %d records, want 2", len(records))
	}
	second := cfg
	second.Checkpoint = ckpt2
	second.Resume = records
	resumed, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt2.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed.Interrupted {
		t.Fatal("resumed run marked Interrupted")
	}

	if got, want := resumed.TableI(), ref.TableI(); got != want {
		t.Errorf("Table I differs after resume:\n--- resumed ---\n%s--- reference ---\n%s", got, want)
	}
	if got, want := resumed.TableII(), ref.TableII(); got != want {
		t.Errorf("Table II differs after resume:\n--- resumed ---\n%s--- reference ---\n%s", got, want)
	}
	if got, want := resumed.CategorySummary(), ref.CategorySummary(); got != want {
		t.Errorf("category summary differs after resume:\n%s\nvs\n%s", got, want)
	}
	var gotCSV bytes.Buffer
	if err := WriteCSV(&gotCSV, resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), refCSV.Bytes()) {
		t.Error("CSV differs after resume")
	}

	// The resumed run kept appending: the file now replays completely.
	all, _, err := LoadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ref.Specs) {
		t.Errorf("final checkpoint holds %d records, want %d", len(all), len(ref.Specs))
	}
}

// TestCheckpointTornLineRecovery simulates a kill mid-append: the torn
// final line is dropped on load and truncated away on resume, so the
// file stays appendable.
func TestCheckpointTornLineRecovery(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxSpecs = 2
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, _, err := OpenCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	run := cfg
	run.Checkpoint = ckpt
	if _, err := Run(run); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"spec":"torn-mid-wri`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ckpt2, records, err := OpenCheckpoint(path, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("loaded %d records past torn line, want 2", len(records))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := len(intact) - len(`{"spec":"torn-mid-wri`)
	if len(after) != wantLen {
		t.Errorf("resume left %d bytes, want torn suffix truncated to %d", len(after), wantLen)
	}
}

// TestCheckpointRejectsForeignConfig asserts the fingerprint guard: a
// checkpoint written under one configuration must not silently feed a
// run with another.
func TestCheckpointRejectsForeignConfig(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxSpecs = 1
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, _, err := OpenCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Seed = cfg.Seed + 1
	if _, _, err := LoadCheckpoint(path, other); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("foreign-config load error = %v", err)
	}
	if _, _, err := OpenCheckpoint(path, other, true); err == nil {
		t.Error("foreign-config resume should error")
	}

	// A file that is not a checkpoint at all is rejected by format.
	bogus := filepath.Join(t.TempDir(), "bogus.ckpt")
	if err := os.WriteFile(bogus, []byte("spec,recipeA,recipeB\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(bogus, cfg); err == nil || !strings.Contains(err.Error(), checkpointFormat) {
		t.Errorf("non-checkpoint load error = %v", err)
	}
}

// TestResumeDivergentSuiteRecomputes covers the prefix rule: once the
// checkpointed order diverges from the suite (here: records reversed),
// the divergent tail is recomputed rather than misattributed.
func TestResumeDivergentSuiteRecomputes(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxSpecs = 2
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, _, err := OpenCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	run := cfg
	run.Checkpoint = ckpt
	if _, err := Run(run); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	records, _, err := LoadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("loaded %d records, want 2", len(records))
	}
	records[0], records[1] = records[1], records[0]
	resumed := cfg
	resumed.Resume = records
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.TableII(), ref.TableII(); got != want {
		t.Errorf("divergent resume corrupted results:\n%s\nvs\n%s", got, want)
	}
}

// TestPreCancelledRunEmitsEmptyResult: cancellation before the first
// spec still yields a well-formed (empty, Interrupted) result whose
// table renderers do not panic.
func TestPreCancelledRunEmitsEmptyResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Error("pre-cancelled run not marked Interrupted")
	}
	if len(res.Specs) != 0 || len(res.Pairs) != 0 {
		t.Errorf("pre-cancelled run kept %d specs, %d pairs", len(res.Specs), len(res.Pairs))
	}
	for _, out := range []string{res.TableI(), res.TableII(), res.CategorySummary()} {
		if out == "" {
			t.Error("empty-result renderer produced nothing")
		}
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
}

// TestFlowTimeoutDegradesGracefully: with an already-expired per-flow
// budget every flow returns its input unchanged (the best equivalent
// AIG it has), the run completes, and the timeout counter records it.
func TestFlowTimeoutDegradesGracefully(t *testing.T) {
	telemetry.Disable()
	reg := telemetry.Enable()
	defer telemetry.Disable()

	cfg := quickConfig()
	cfg.MaxSpecs = 1
	cfg.FlowTimeout = time.Nanosecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Error("flow timeouts must not interrupt the run")
	}
	if len(res.Specs) != 1 {
		t.Fatalf("got %d specs", len(res.Specs))
	}
	for _, v := range res.Specs[0].Variants {
		for flow, gates := range v.FlowGates {
			if gates != v.Gates {
				t.Errorf("%s/%s: expired budget still optimized %d -> %d", v.Recipe, flow, v.Gates, gates)
			}
		}
	}
	if got := reg.Counter("harness/flow_timeouts").Value(); got == 0 {
		t.Error("flow_timeouts counter not incremented")
	}
}
