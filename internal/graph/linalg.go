package graph

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Identity returns the n x n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("graph: matmul dims %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// Inverse computes the matrix inverse by Gauss-Jordan elimination with
// partial pivoting. Returns an error when the matrix is singular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("graph: inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a.At(r, col)) > math.Abs(a.At(pivot, col)) {
				pivot = r
			}
		}
		if math.Abs(a.At(pivot, col)) < 1e-12 {
			return nil, fmt.Errorf("graph: singular matrix at column %d", col)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize pivot row.
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	for j := 0; j < m.Cols; j++ {
		m.Data[a*m.Cols+j], m.Data[b*m.Cols+j] = m.Data[b*m.Cols+j], m.Data[a*m.Cols+j]
	}
}

// Hungarian solves the linear assignment problem for a square cost
// matrix, returning the column assigned to each row and the total cost.
// O(n^3) (the Jonker-style shortest augmenting path formulation).
func Hungarian(cost *Matrix) ([]int, float64) {
	if cost.Rows != cost.Cols {
		panic("graph: Hungarian requires a square cost matrix")
	}
	n := cost.Rows
	const inf = math.MaxFloat64
	// Potentials and matching, 1-indexed internally.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost.At(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += cost.At(p[j]-1, j-1)
		}
	}
	return assign, total
}
