package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 || m.At(0, 0) != 0 {
		t.Error("At/Set wrong")
	}
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Error("identity wrong")
			}
		}
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone not deep")
	}
}

func TestMatMul(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.Data, vals)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if math.Abs(c.Data[i]-w) > 1e-12 {
			t.Fatalf("matmul[%d] = %f, want %f", i, c.Data[i], w)
		}
	}
}

func TestInverse(t *testing.T) {
	r := rand.New(rand.NewSource(161))
	for trial := 0; trial < 10; trial++ {
		n := 2 + trial
		m := NewMatrix(n, n)
		// Diagonally dominant => invertible.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, r.NormFloat64())
			}
			m.Set(i, i, m.At(i, i)+float64(n)+1)
		}
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod := m.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					t.Fatalf("trial %d: M*M^-1 deviates at (%d,%d): %f", trial, i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Inverse(); err == nil {
		t.Error("singular matrix should error")
	}
	if _, err := NewMatrix(2, 3).Inverse(); err == nil {
		t.Error("non-square should error")
	}
}

func TestHungarianKnown(t *testing.T) {
	// Classic 3x3 example: optimal assignment cost 5 (0->1, 1->0, 2->2).
	c := NewMatrix(3, 3)
	copy(c.Data, []float64{
		4, 1, 3,
		2, 0, 5,
		3, 2, 2,
	})
	assign, total := Hungarian(c)
	if math.Abs(total-5) > 1e-12 {
		t.Fatalf("total = %f, want 5 (assign %v)", total, assign)
	}
	// Assignment must be a permutation.
	seen := make([]bool, 3)
	for _, j := range assign {
		if j < 0 || j >= 3 || seen[j] {
			t.Fatalf("invalid assignment %v", assign)
		}
		seen[j] = true
	}
}

func TestHungarianAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(162))
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%4
		c := NewMatrix(n, n)
		for i := range c.Data {
			c.Data[i] = float64(r.Intn(20))
		}
		_, got := Hungarian(c)
		want := bruteAssign(c)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): hungarian %f vs brute %f", trial, n, got, want)
		}
	}
}

func bruteAssign(c *Matrix) float64 {
	n := c.Rows
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.MaxFloat64
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			s := 0.0
			for i, j := range perm {
				s += c.At(i, j)
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}
