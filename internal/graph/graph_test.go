package graph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/aig"
)

func triangle() *Graph {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	return g
}

func TestBasics(t *testing.T) {
	g := triangle()
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	g.AddEdge(0, 1) // duplicate
	g.AddEdge(1, 1) // self-loop
	if g.NumEdges() != 3 {
		t.Errorf("dup/self-loop changed edges: %d", g.NumEdges())
	}
	if g.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d", g.Degree(0))
	}
	edges := g.Edges()
	if len(edges) != 3 || edges[0] != [2]int{0, 1} {
		t.Errorf("Edges = %v", edges)
	}
}

func TestClustering(t *testing.T) {
	g := triangle()
	for u := 0; u < 3; u++ {
		if g.Clustering(u) != 1 {
			t.Errorf("triangle clustering(%d) = %f", u, g.Clustering(u))
		}
	}
	// Star: center clustering 0.
	s := New(4)
	s.AddEdge(0, 1)
	s.AddEdge(0, 2)
	s.AddEdge(0, 3)
	if s.Clustering(0) != 0 {
		t.Error("star center clustering should be 0")
	}
	if s.Clustering(1) != 0 {
		t.Error("leaf clustering should be 0")
	}
}

func TestEgonetStats(t *testing.T) {
	// Path 0-1-2-3: ego(1) = {0,1,2}; edges within = 2 (01, 12);
	// outgoing = 1 (2-3); outside neighbors = {3}.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	within, outgoing, outside := g.EgonetStats(1)
	if within != 2 || outgoing != 1 || outside != 1 {
		t.Errorf("EgonetStats(1) = %d,%d,%d", within, outgoing, outside)
	}
}

func TestFromAIG(t *testing.T) {
	a := aig.New(2)
	n := a.And(a.PI(0), a.PI(1).Not())
	a.AddPO(n)
	g := FromAIG(a)
	if g.N != a.NumObjs() {
		t.Errorf("N = %d", g.N)
	}
	// Edges: node-PI0, node-PI1 (inversion dropped).
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(n.Node()) != 2 {
		t.Error("AND node degree wrong")
	}
}

func TestNetSimileFeatures(t *testing.T) {
	g := triangle()
	f := g.NetSimileFeatures()
	for u := 0; u < 3; u++ {
		if f[0][u] != 2 || f[1][u] != 1 || f[2][u] != 2 || f[3][u] != 1 {
			t.Errorf("node %d features: %v %v %v %v", u, f[0][u], f[1][u], f[2][u], f[3][u])
		}
		if f[4][u] != 3 || f[5][u] != 0 || f[6][u] != 0 {
			t.Errorf("node %d egonet features: %v %v %v", u, f[4][u], f[5][u], f[6][u])
		}
	}
}

func TestJacobiKnownSpectra(t *testing.T) {
	// Triangle (K3): eigenvalues 2, -1, -1.
	eig := JacobiEigenvalues(triangle().AdjacencyMatrix())
	want := []float64{2, -1, -1}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-9 {
			t.Errorf("K3 eig[%d] = %f, want %f", i, eig[i], want[i])
		}
	}
	// Path P3: sqrt(2), 0, -sqrt(2).
	p := New(3)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	eig = JacobiEigenvalues(p.AdjacencyMatrix())
	want = []float64{math.Sqrt2, 0, -math.Sqrt2}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-9 {
			t.Errorf("P3 eig[%d] = %f, want %f", i, eig[i], want[i])
		}
	}
}

func TestTridiagAgainstJacobi(t *testing.T) {
	// Random symmetric tridiagonal matrix, both solvers must agree.
	r := rand.New(rand.NewSource(121))
	n := 12
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = r.NormFloat64()
	}
	for i := range e {
		e[i] = r.NormFloat64()
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = d[i]
	}
	for i := range e {
		m[i][i+1] = e[i]
		m[i+1][i] = e[i]
	}
	got := tridiagEigenvalues(d, e)
	want := JacobiEigenvalues(m)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("eig[%d]: tridiag %f vs jacobi %f", i, got[i], want[i])
		}
	}
}

func TestLanczosAgainstJacobi(t *testing.T) {
	// Random sparse graph big enough to trigger Lanczos (n > 128).
	r := rand.New(rand.NewSource(122))
	n := 200
	g := New(n)
	for i := 0; i < 3*n; i++ {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	k := 10
	got := g.TopEigenvalues(k, 1)
	want := topByMagnitude(JacobiEigenvalues(g.AdjacencyMatrix()), k)
	if len(got) != k {
		t.Fatalf("got %d eigenvalues", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6*math.Max(1, math.Abs(want[i])) {
			t.Errorf("top eig[%d]: lanczos %f vs jacobi %f", i, got[i], want[i])
		}
	}
}

func TestTopEigenvaluesSmallFallback(t *testing.T) {
	g := triangle()
	eig := g.TopEigenvalues(2, 1)
	if len(eig) != 2 {
		t.Fatalf("len = %d", len(eig))
	}
	if math.Abs(eig[0]-2) > 1e-9 || math.Abs(eig[1]+1) > 1e-9 {
		t.Errorf("eig = %v", eig)
	}
	if got := g.TopEigenvalues(99, 1); len(got) != 3 {
		t.Errorf("k>n should clamp: %v", got)
	}
	empty := New(0)
	if got := empty.TopEigenvalues(3, 1); got != nil {
		t.Error("empty graph should yield nil")
	}
}
