package graph

import (
	"math"
	"math/rand"
	"sort"
)

// JacobiEigenvalues computes all eigenvalues of a dense symmetric matrix
// by cyclic Jacobi rotations. Intended for small matrices (tests,
// graphs of a few hundred nodes).
func JacobiEigenvalues(a [][]float64) []float64 {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	for sweep := 0; sweep < 64; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = m[i][i]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(eig)))
	return eig
}

// AdjacencyMatrix returns the dense adjacency matrix of the graph.
func (g *Graph) AdjacencyMatrix() [][]float64 {
	m := make([][]float64, g.N)
	for i := range m {
		m[i] = make([]float64, g.N)
	}
	for u := 0; u < g.N; u++ {
		for _, v := range g.adj[u] {
			m[u][v] = 1
		}
	}
	return m
}

// matVec computes the adjacency-matrix product y = A x.
func (g *Graph) matVec(x, y []float64) {
	for u := 0; u < g.N; u++ {
		s := 0.0
		for _, v := range g.adj[u] {
			s += x[v]
		}
		y[u] = s
	}
}

// TopEigenvalues approximates the k largest-magnitude adjacency
// eigenvalues using Lanczos iteration with full reorthogonalization,
// returning them in descending algebraic order. For tiny graphs it falls
// back to the exact dense solver.
func (g *Graph) TopEigenvalues(k int, seed int64) []float64 {
	n := g.N
	if k > n {
		k = n
	}
	if k == 0 || n == 0 {
		return nil
	}
	if n <= 128 {
		eig := JacobiEigenvalues(g.AdjacencyMatrix())
		return topByMagnitude(eig, k)
	}
	steps := 8*k + 40
	if steps > n {
		steps = n
	}
	r := rand.New(rand.NewSource(seed))
	// Lanczos vectors.
	V := make([][]float64, 0, steps)
	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps) // beta[j] couples v_j and v_{j+1}

	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	normalize(v)
	w := make([]float64, n)
	for j := 0; j < steps; j++ {
		V = append(V, append([]float64(nil), v...))
		g.matVec(v, w)
		a := dot(w, v)
		alpha = append(alpha, a)
		// w = w - a*v - beta_{j-1}*v_{j-1}
		for i := range w {
			w[i] -= a * v[i]
		}
		if j > 0 {
			b := beta[j-1]
			prev := V[j-1]
			for i := range w {
				w[i] -= b * prev[i]
			}
		}
		// Full reorthogonalization for numerical robustness.
		for _, u := range V {
			d := dot(w, u)
			for i := range w {
				w[i] -= d * u[i]
			}
		}
		b := math.Sqrt(dot(w, w))
		if b < 1e-12 {
			break
		}
		beta = append(beta, b)
		for i := range w {
			v[i] = w[i] / b
		}
	}
	eig := tridiagEigenvalues(alpha, beta[:len(alpha)-1])
	return topByMagnitude(eig, k)
}

// topByMagnitude selects the k largest-|λ| eigenvalues and returns them
// in descending algebraic order.
func topByMagnitude(eig []float64, k int) []float64 {
	s := append([]float64(nil), eig...)
	sort.Slice(s, func(i, j int) bool { return math.Abs(s[i]) > math.Abs(s[j]) })
	if k < len(s) {
		s = s[:k]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return s
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(v []float64) {
	n := math.Sqrt(dot(v, v))
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// tridiagEigenvalues computes all eigenvalues of a symmetric tridiagonal
// matrix (diagonal d, off-diagonal e) with the implicit QL algorithm
// (the classic tql1 routine).
func tridiagEigenvalues(d, e []float64) []float64 {
	n := len(d)
	dd := append([]float64(nil), d...)
	ee := make([]float64, n)
	copy(ee, e)

	for l := 0; l < n; l++ {
		for iter := 0; iter < 50; iter++ {
			// Find a small off-diagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-14*s {
					break
				}
			}
			if m == l {
				break
			}
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(dd)))
	return dd
}
