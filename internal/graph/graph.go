// Package graph provides the undirected-graph machinery behind the
// traditional similarity metrics: AIG-to-undirected conversion, local
// structure features (degrees, clustering, egonets), and symmetric
// eigensolvers (dense Jacobi and sparse Lanczos) for spectral distances.
package graph

import (
	"sort"

	"repro/internal/aig"
)

// Graph is a simple undirected graph with nodes 0..N-1.
type Graph struct {
	N   int
	adj [][]int
}

// New creates an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{N: n, adj: make([][]int, n)}
}

// AddEdge inserts an undirected edge, ignoring self-loops and duplicates.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	for _, w := range g.adj[u] {
		if w == v {
			return
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// Neighbors returns the adjacency list of u (not copied).
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n / 2
}

// Edges returns all edges as normalized (min,max) pairs, sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u, a := range g.adj {
		for _, v := range a {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// FromAIG converts an AIG to its undirected skeleton, as the paper
// prescribes for the traditional metrics: inversion tags and edge
// direction are dropped and parallel edges merged. Node numbering is the
// AIG's: 0 is unused (constant), 1..numPIs are inputs, the rest AND
// nodes, giving the "consistent node numbering" the paper relies on.
func FromAIG(a *aig.AIG) *Graph {
	g := New(a.NumObjs())
	for id := a.NumPIs() + 1; id < a.NumObjs(); id++ {
		f0, f1 := a.Fanins(id)
		g.AddEdge(id, f0.Node())
		g.AddEdge(id, f1.Node())
	}
	return g
}

// hasEdge reports adjacency (linear scan: AIG skeletons have degree <= ~3
// on the fanin side; fanout-heavy nodes are rare).
func (g *Graph) hasEdge(u, v int) bool {
	a, b := u, v
	if g.Degree(a) > g.Degree(b) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Clustering returns the local clustering coefficient of u: the fraction
// of neighbor pairs that are themselves connected.
func (g *Graph) Clustering(u int) float64 {
	nb := g.adj[u]
	d := len(nb)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.hasEdge(nb[i], nb[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// EgonetStats returns, for node u's egonet (u plus its neighbors): the
// number of internal edges, the number of edges leaving the egonet, and
// the number of distinct outside neighbors of the egonet.
func (g *Graph) EgonetStats(u int) (within, outgoing, outsideNeighbors int) {
	ego := map[int]bool{u: true}
	for _, v := range g.adj[u] {
		ego[v] = true
	}
	outside := map[int]bool{}
	for m := range ego {
		for _, w := range g.adj[m] {
			if ego[w] {
				within++ // counted twice
			} else {
				outgoing++
				outside[w] = true
			}
		}
	}
	return within / 2, outgoing, len(outside)
}

// NetSimileFeatures extracts the seven per-node NetSimile features
// (Berlingerio et al.): degree, clustering coefficient, average neighbor
// degree, average neighbor clustering coefficient, egonet edges, egonet
// outgoing edges, egonet neighbors. The result is indexed
// [feature][node].
func (g *Graph) NetSimileFeatures() [7][]float64 {
	var f [7][]float64
	for i := range f {
		f[i] = make([]float64, g.N)
	}
	clustering := make([]float64, g.N)
	for u := 0; u < g.N; u++ {
		clustering[u] = g.Clustering(u)
	}
	for u := 0; u < g.N; u++ {
		d := float64(g.Degree(u))
		f[0][u] = d
		f[1][u] = clustering[u]
		sumDeg, sumClu := 0.0, 0.0
		for _, v := range g.adj[u] {
			sumDeg += float64(g.Degree(v))
			sumClu += clustering[v]
		}
		if len(g.adj[u]) > 0 {
			f[2][u] = sumDeg / d
			f[3][u] = sumClu / d
		}
		within, outgoing, outside := g.EgonetStats(u)
		f[4][u] = float64(within)
		f[5][u] = float64(outgoing)
		f[6][u] = float64(outside)
	}
	return f
}
