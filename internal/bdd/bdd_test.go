package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tt"
)

func TestTerminalsAndVar(t *testing.T) {
	m := NewManager(3)
	x := m.Var(1)
	if m.Level(x) != 1 || m.Low(x) != False || m.High(x) != True {
		t.Error("Var structure wrong")
	}
	if m.Var(1) != x {
		t.Error("unique table not shared")
	}
	if m.NodeCount(x) != 1 {
		t.Errorf("NodeCount(var) = %d", m.NodeCount(x))
	}
	if m.NodeCount(False) != 0 || m.NodeCount(True) != 0 {
		t.Error("terminal node counts wrong")
	}
}

func TestITEAgainstTT(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 3 + trial%4
		m := NewManager(n)
		f, g, h := tt.Random(n, r), tt.Random(n, r), tt.Random(n, r)
		bf, bg, bh := m.FromTT(f), m.FromTT(g), m.FromTT(h)
		got := m.ToTT(m.ITE(bf, bg, bh))
		want := f.And(g).Or(f.Not().And(h))
		if !got.Equal(want) {
			t.Fatalf("trial %d: ITE mismatch", trial)
		}
	}
}

func TestBooleanOps(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	n := 5
	m := NewManager(n)
	f, g := tt.Random(n, r), tt.Random(n, r)
	bf, bg := m.FromTT(f), m.FromTT(g)
	if !m.ToTT(m.And(bf, bg)).Equal(f.And(g)) {
		t.Error("And wrong")
	}
	if !m.ToTT(m.Or(bf, bg)).Equal(f.Or(g)) {
		t.Error("Or wrong")
	}
	if !m.ToTT(m.Xor(bf, bg)).Equal(f.Xor(g)) {
		t.Error("Xor wrong")
	}
	if !m.ToTT(m.Not(bf)).Equal(f.Not()) {
		t.Error("Not wrong")
	}
}

func TestCanonicity(t *testing.T) {
	// The same function built two different ways must be the same node.
	m := NewManager(4)
	a, b := m.Var(0), m.Var(1)
	lhs := m.Not(m.And(a, b))
	rhs := m.Or(m.Not(a), m.Not(b))
	if lhs != rhs {
		t.Error("De Morgan forms are different nodes: BDD not canonical")
	}
}

func TestFromTTRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(w uint64) bool {
		fn := tt.FromWords(6, []uint64{w})
		m := NewManager(6)
		return m.ToTT(m.FromTT(fn)).Equal(fn)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRestrictQuantify(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	n := 6
	m := NewManager(n)
	f := tt.Random(n, r)
	bf := m.FromTT(f)
	for v := 0; v < n; v++ {
		if !m.ToTT(m.Restrict(bf, v, false)).Equal(f.Cofactor(v, false)) {
			t.Fatalf("Restrict(%d,0) wrong", v)
		}
		if !m.ToTT(m.Restrict(bf, v, true)).Equal(f.Cofactor(v, true)) {
			t.Fatalf("Restrict(%d,1) wrong", v)
		}
		if !m.ToTT(m.Exists(bf, v)).Equal(f.Cofactor(v, false).Or(f.Cofactor(v, true))) {
			t.Fatalf("Exists(%d) wrong", v)
		}
		if !m.ToTT(m.Forall(bf, v)).Equal(f.Cofactor(v, false).And(f.Cofactor(v, true))) {
			t.Fatalf("Forall(%d) wrong", v)
		}
	}
}

func TestSatCountAndEval(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%6
		f := tt.Random(n, r)
		m := NewManager(n)
		bf := m.FromTT(f)
		if got, want := m.SatCount(bf), uint64(f.CountOnes()); got != want {
			t.Fatalf("trial %d: SatCount = %d, want %d", trial, got, want)
		}
		for inp := 0; inp < 1<<n; inp++ {
			if m.Eval(bf, uint64(inp)) != f.Bit(inp) {
				t.Fatalf("trial %d: Eval(%d) wrong", trial, inp)
			}
		}
	}
}

func TestOrderSensitivity(t *testing.T) {
	// The classic order-sensitive function: x0*x1 + x2*x3 + x4*x5.
	n := 6
	f := tt.Var(0, n).And(tt.Var(1, n)).
		Or(tt.Var(2, n).And(tt.Var(3, n))).
		Or(tt.Var(4, n).And(tt.Var(5, n)))
	good := BuildOrdered(f, []int{0, 1, 2, 3, 4, 5})
	bad := BuildOrdered(f, []int{0, 2, 4, 1, 3, 5})
	if good.Size() >= bad.Size() {
		t.Errorf("pair order (%d nodes) should beat interleaved (%d nodes)", good.Size(), bad.Size())
	}
	// Both orders must still realize f.
	for _, o := range []Ordered{good, bad} {
		back := o.M.ToTT(o.Root)
		// Undo the permutation: manager var i is original Order[i].
		inv := make([]int, n)
		for i, p := range o.Order {
			inv[p] = i
		}
		if !back.Permute(inv).Equal(f) {
			t.Error("ordered build does not realize the function")
		}
	}
}

func TestSiftOrderImproves(t *testing.T) {
	n := 6
	f := tt.Var(0, n).And(tt.Var(3, n)).
		Or(tt.Var(1, n).And(tt.Var(4, n))).
		Or(tt.Var(2, n).And(tt.Var(5, n)))
	identity := []int{0, 1, 2, 3, 4, 5}
	before := BuildOrdered(f, identity).Size()
	order := SiftOrder(f, 3)
	after := BuildOrdered(f, order).Size()
	if after > before {
		t.Errorf("sifting made things worse: %d -> %d", before, after)
	}
	if after >= before {
		t.Logf("no improvement found (%d vs %d); function may already be optimal", after, before)
	}
	// Order must be a permutation.
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("SiftOrder returned invalid permutation %v", order)
		}
		seen[v] = true
	}
}

func TestSiftOrderPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	for trial := 0; trial < 5; trial++ {
		n := 5 + trial%3
		f := tt.Random(n, r)
		order := SiftOrder(f, 2)
		o := BuildOrdered(f, order)
		inv := make([]int, n)
		for i, p := range o.Order {
			inv[p] = i
		}
		if !o.M.ToTT(o.Root).Permute(inv).Equal(f) {
			t.Fatalf("trial %d: sifted BDD does not realize f", trial)
		}
	}
}
