package bdd

import "repro/internal/tt"

// Ordered is a BDD built under an explicit variable order. Order[level]
// gives the original truth-table variable tested at that level.
type Ordered struct {
	M     *Manager
	Root  int32
	Order []int
}

// BuildOrdered constructs the ROBDD of f with the given variable order.
// The order is a permutation of 0..n-1; order[0] is tested first.
func BuildOrdered(f tt.TT, order []int) Ordered {
	// Permute f so that original variable order[i] becomes manager
	// variable i; the identity-order build then realizes the order.
	perm := append([]int(nil), order...)
	pf := f.Permute(perm)
	m := NewManager(f.NumVars())
	root := m.FromTT(pf)
	return Ordered{M: m, Root: root, Order: perm}
}

// Size returns the internal node count of the ordered BDD.
func (o Ordered) Size() int { return o.M.NodeCount(o.Root) }

// SiftOrder searches for a small-BDD variable order by rebuild-based
// sifting: each variable in turn is tried at every position and left at
// the best one. rounds bounds the number of full sifting sweeps.
func SiftOrder(f tt.TT, rounds int) []int {
	n := f.NumVars()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if n <= 1 {
		return order
	}
	size := BuildOrdered(f, order).Size()
	for round := 0; round < rounds; round++ {
		improved := false
		for v := 0; v < n; v++ {
			// Current position of variable v.
			pos := 0
			for order[pos] != v {
				pos++
			}
			bestPos, bestSize := pos, size
			for target := 0; target < n; target++ {
				if target == pos {
					continue
				}
				cand := moveVar(order, pos, target)
				if s := BuildOrdered(f, cand).Size(); s < bestSize {
					bestPos, bestSize = target, s
				}
			}
			if bestPos != pos {
				order = moveVar(order, pos, bestPos)
				size = bestSize
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return order
}

// moveVar returns a copy of order with the element at position from moved
// to position to.
func moveVar(order []int, from, to int) []int {
	out := make([]int, 0, len(order))
	v := order[from]
	for i, x := range order {
		if i == from {
			continue
		}
		out = append(out, x)
	}
	out = append(out, 0)
	copy(out[to+1:], out[to:])
	out[to] = v
	return out
}
