// Package bdd implements reduced ordered binary decision diagrams with a
// shared unique table, memoized ITE, and order search by rebuilding.
//
// The manager is deliberately simple: nodes are append-only, terminals are
// ids 0 (false) and 1 (true), and no complement edges are used. For the
// function sizes this project targets (<= 16 inputs) rebuilding a BDD
// under a new variable order is cheap, so variable reordering is performed
// by rebuild-based sifting rather than in-place level swaps.
package bdd

import (
	"fmt"

	"repro/internal/tt"
)

// Node ids of the terminals.
const (
	False = 0
	True  = 1
)

type nodeKey struct {
	level     int32
	low, high int32
}

type iteKey struct{ f, g, h int32 }

// Manager owns a shared ROBDD forest over a fixed number of variables.
// Variable i branches at level i: lower levels are tested first.
type Manager struct {
	nvars  int
	level  []int32 // per node
	low    []int32
	high   []int32
	unique map[nodeKey]int32
	iteTab map[iteKey]int32
}

// NewManager creates a manager for n variables.
func NewManager(n int) *Manager {
	m := &Manager{
		nvars:  n,
		level:  []int32{int32(n), int32(n)}, // terminals live below all vars
		low:    []int32{-1, -1},
		high:   []int32{-1, -1},
		unique: make(map[nodeKey]int32),
		iteTab: make(map[iteKey]int32),
	}
	return m
}

// NumVars returns the variable count of the manager.
func (m *Manager) NumVars() int { return m.nvars }

// mk returns the node (level, low, high), applying the reduction rules.
func (m *Manager) mk(level, low, high int32) int32 {
	if low == high {
		return low
	}
	k := nodeKey{level, low, high}
	if id, ok := m.unique[k]; ok {
		return id
	}
	id := int32(len(m.level))
	m.level = append(m.level, level)
	m.low = append(m.low, low)
	m.high = append(m.high, high)
	m.unique[k] = id
	return id
}

// Var returns the BDD of variable v.
func (m *Manager) Var(v int) int32 {
	if v < 0 || v >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(int32(v), False, True)
}

// Level returns the branching level of node f (m.nvars for terminals).
func (m *Manager) Level(f int32) int { return int(m.level[f]) }

// Cofactors returns the low and high children of f with respect to the
// topmost level among the given nodes.
func (m *Manager) topLevel(ids ...int32) int32 {
	top := int32(m.nvars)
	for _, id := range ids {
		if m.level[id] < top {
			top = m.level[id]
		}
	}
	return top
}

func (m *Manager) cofactor(f, lvl int32) (lo, hi int32) {
	if m.level[f] == lvl {
		return m.low[f], m.high[f]
	}
	return f, f
}

// ITE computes if-then-else(f, g, h), the universal ternary operator.
func (m *Manager) ITE(f, g, h int32) int32 {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	k := iteKey{f, g, h}
	if r, ok := m.iteTab[k]; ok {
		return r
	}
	lvl := m.topLevel(f, g, h)
	f0, f1 := m.cofactor(f, lvl)
	g0, g1 := m.cofactor(g, lvl)
	h0, h1 := m.cofactor(h, lvl)
	r := m.mk(lvl, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.iteTab[k] = r
	return r
}

// And returns f AND g.
func (m *Manager) And(f, g int32) int32 { return m.ITE(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g int32) int32 { return m.ITE(f, True, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g int32) int32 { return m.ITE(f, m.Not(g), g) }

// Not returns the complement of f.
func (m *Manager) Not(f int32) int32 { return m.ITE(f, False, True) }

// Low and High expose node children for traversals.
func (m *Manager) Low(f int32) int32  { return m.low[f] }
func (m *Manager) High(f int32) int32 { return m.high[f] }

// Exists existentially quantifies variable v out of f.
func (m *Manager) Exists(f int32, v int) int32 {
	c0 := m.Restrict(f, v, false)
	c1 := m.Restrict(f, v, true)
	return m.Or(c0, c1)
}

// Forall universally quantifies variable v out of f.
func (m *Manager) Forall(f int32, v int) int32 {
	c0 := m.Restrict(f, v, false)
	c1 := m.Restrict(f, v, true)
	return m.And(c0, c1)
}

// Restrict fixes variable v to a constant inside f.
func (m *Manager) Restrict(f int32, v int, val bool) int32 {
	memo := make(map[int32]int32)
	var rec func(n int32) int32
	rec = func(n int32) int32 {
		if m.level[n] > int32(v) {
			return n // terminal or below v: v cannot appear
		}
		if r, ok := memo[n]; ok {
			return r
		}
		var r int32
		if m.level[n] == int32(v) {
			if val {
				r = m.high[n]
			} else {
				r = m.low[n]
			}
		} else {
			r = m.mk(m.level[n], rec(m.low[n]), rec(m.high[n]))
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

// NodeCount returns the number of internal (non-terminal) nodes reachable
// from f.
func (m *Manager) NodeCount(f int32) int {
	seen := map[int32]bool{}
	var rec func(n int32)
	rec = func(n int32) {
		if n <= True || seen[n] {
			return
		}
		seen[n] = true
		rec(m.low[n])
		rec(m.high[n])
	}
	rec(f)
	return len(seen)
}

// SatCount returns the number of satisfying assignments of f over all
// manager variables.
func (m *Manager) SatCount(f int32) uint64 {
	memo := map[int32]uint64{}
	var rec func(n int32) uint64
	rec = func(n int32) uint64 {
		if n == False {
			return 0
		}
		if n == True {
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		lo := rec(m.low[n]) << uint(m.level[m.low[n]]-m.level[n]-1)
		hi := rec(m.high[n]) << uint(m.level[m.high[n]]-m.level[n]-1)
		c := lo + hi
		memo[n] = c
		return c
	}
	return rec(f) << uint(m.level[f])
}

// Eval evaluates f on the assignment where bit v of input is variable v.
func (m *Manager) Eval(f int32, input uint64) bool {
	for f > True {
		if input>>uint(m.level[f])&1 == 1 {
			f = m.high[f]
		} else {
			f = m.low[f]
		}
	}
	return f == True
}

// FromTT builds the BDD of a truth table under the identity variable
// order.
func (m *Manager) FromTT(f tt.TT) int32 {
	if f.NumVars() != m.nvars {
		panic("bdd: truth table arity mismatch")
	}
	memo := make(map[string]int32)
	var rec func(g tt.TT, v int) int32
	rec = func(g tt.TT, v int) int32 {
		if g.IsConst0() {
			return False
		}
		if g.IsConst1() {
			return True
		}
		key := g.Hex()
		if r, ok := memo[key]; ok {
			return r
		}
		// Find the first variable >= v in the support.
		for !g.HasVar(v) {
			v++
		}
		r := m.mk(int32(v), rec(g.Cofactor(v, false), v+1), rec(g.Cofactor(v, true), v+1))
		memo[key] = r
		return r
	}
	return rec(f, 0)
}

// ToTT expands node f back into a truth table.
func (m *Manager) ToTT(f int32) tt.TT {
	memo := map[int32]tt.TT{
		False: tt.Const(m.nvars, false),
		True:  tt.Const(m.nvars, true),
	}
	var rec func(n int32) tt.TT
	rec = func(n int32) tt.TT {
		if t, ok := memo[n]; ok {
			return t
		}
		v := tt.Var(int(m.level[n]), m.nvars)
		t := v.And(rec(m.high[n])).Or(v.Not().And(rec(m.low[n])))
		memo[n] = t
		return t
	}
	return rec(f)
}
