// Package lutmap implements area-oriented k-LUT technology mapping with
// priority cuts and area-flow, plus the LUT-to-AIG resynthesis round trip
// used by the DeepSyn flow: mapping an AIG into LUTs and resynthesizing
// every LUT function produces the broad structural changes the paper
// credits &deepsyn with.
package lutmap

import (
	"fmt"
	"sync"

	"repro/internal/aig"
	"repro/internal/synth"
	"repro/internal/tt"
)

// Options tunes the mapper.
type Options struct {
	// K is the LUT input count (2..6; default 4).
	K int
	// MaxCuts bounds priority cuts per node (default 8).
	MaxCuts int
	// Rounds of area-flow refinement (default 2).
	Rounds int
}

func (o Options) k() int {
	switch {
	case o.K < 2:
		return 4
	case o.K > 6:
		return 6
	}
	return o.K
}

func (o Options) rounds() int {
	if o.Rounds <= 0 {
		return 2
	}
	return o.Rounds
}

// LUT is one mapped look-up table: a root node covering logic down to its
// leaf nodes, with the local function over the leaves.
type LUT struct {
	Root   int
	Leaves []int
	Func   tt.TT
}

// Mapping is the result of covering an AIG with LUTs.
type Mapping struct {
	LUTs []LUT // in topological order of their roots
	// RootOf maps each mapped root node id to its LUT index.
	RootOf map[int]int
}

// NumLUTs returns the mapped LUT count (the area).
func (m Mapping) NumLUTs() int { return len(m.LUTs) }

// Map covers the AIG with k-input LUTs using area-flow-guided priority
// cuts: every node selects its best cut over a few refinement rounds, and
// a cover is extracted from the outputs.
func Map(g *aig.AIG, opts Options) Mapping {
	k := opts.k()
	cuts := g.EnumerateCuts(aig.CutParams{K: k, MaxCuts: opts.MaxCuts})
	refs := g.RefCounts()

	n := g.NumObjs()
	bestCut := make([]int, n) // index into cuts[id]
	areaFlow := make([]float64, n)

	for round := 0; round < opts.rounds(); round++ {
		for id := 0; id < n; id++ {
			if !g.IsAnd(id) {
				areaFlow[id] = 0
				continue
			}
			bestAF := -1.0
			bestIdx := -1
			for ci, cut := range cuts[id] {
				if len(cut.Leaves) == 1 && cut.Leaves[0] == id {
					continue // trivial cut cannot implement the node
				}
				af := 1.0
				for _, leaf := range cut.Leaves {
					fan := refs[leaf]
					if fan < 1 {
						fan = 1
					}
					af += areaFlow[leaf] / float64(fan)
				}
				if bestIdx == -1 || af < bestAF {
					bestAF, bestIdx = af, ci
				}
			}
			if bestIdx == -1 {
				panic(fmt.Sprintf("lutmap: node %d has no non-trivial cut", id))
			}
			bestCut[id] = bestIdx
			areaFlow[id] = bestAF
		}
	}

	// Extract the cover from the POs.
	mapping := Mapping{RootOf: make(map[int]int)}
	var visit func(id int)
	visit = func(id int) {
		if !g.IsAnd(id) {
			return
		}
		if _, done := mapping.RootOf[id]; done {
			return
		}
		cut := cuts[id][bestCut[id]]
		for _, leaf := range cut.Leaves {
			visit(leaf)
		}
		mapping.RootOf[id] = len(mapping.LUTs)
		mapping.LUTs = append(mapping.LUTs, LUT{
			Root:   id,
			Leaves: append([]int(nil), cut.Leaves...),
			Func:   g.CutTT(id, cut.Leaves),
		})
	}
	for i := 0; i < g.NumPOs(); i++ {
		visit(g.PO(i).Node())
	}
	return mapping
}

// resynCache memoizes LUT-function structures across Resynthesize calls
// (keyed by support-compacted hex).
var resynCache = struct {
	mu sync.Mutex
	m  map[string]*aig.AIG
}{m: make(map[string]*aig.AIG)}

// Resynthesize converts a LUT mapping back into an AIG, synthesizing each
// LUT function with the multi-paradigm resynthesis engine (NPN library
// for functions up to 4 inputs, memoized best-structure search above).
// The round trip AIG -> LUTs -> AIG is the structural shake-up move of
// the DeepSyn flow.
func Resynthesize(g *aig.AIG, m Mapping) *aig.AIG {
	ng := aig.New(g.NumPIs())
	for i := 0; i < g.NumPIs(); i++ {
		if n := g.PIName(i); n != "" {
			ng.SetPIName(i, n)
		}
	}
	lits := make([]aig.Lit, g.NumObjs())
	lits[0] = aig.LitFalse
	for i := 1; i <= g.NumPIs(); i++ {
		lits[i] = aig.MakeLit(i, false)
	}
	for _, lut := range m.LUTs {
		leafLits := make([]aig.Lit, len(lut.Leaves))
		for i, leaf := range lut.Leaves {
			leafLits[i] = lits[leaf]
		}
		lits[lut.Root] = buildLUT(ng, lut.Func, leafLits)
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(lits[po.Node()].NotCond(po.IsCompl()))
		if n := g.POName(i); n != "" {
			ng.SetPOName(i, n)
		}
	}
	return ng.Cleanup()
}

func buildLUT(ng *aig.AIG, f tt.TT, leaves []aig.Lit) aig.Lit {
	if f.IsConst0() {
		return aig.LitFalse
	}
	if f.IsConst1() {
		return aig.LitTrue
	}
	var mini *aig.AIG
	if f.NumVars() <= 4 {
		mini = synth.LibraryStructure(f)
	} else {
		key := f.Hex()
		resynCache.mu.Lock()
		cached, ok := resynCache.m[key]
		resynCache.mu.Unlock()
		if ok {
			mini = cached
		} else {
			mini = synth.BestStructure(f)
			resynCache.mu.Lock()
			resynCache.m[key] = mini
			resynCache.mu.Unlock()
		}
	}
	return synth.Instantiate(ng, mini, leaves)
}

// RoundTrip maps and immediately resynthesizes, the one-call shake-up.
func RoundTrip(g *aig.AIG, opts Options) *aig.AIG {
	return Resynthesize(g, Map(g, opts))
}
