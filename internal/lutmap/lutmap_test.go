package lutmap

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/synth"
	"repro/internal/tt"
)

func TestMapCoversOutputs(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	spec := []tt.TT{tt.Random(6, r), tt.Random(6, r)}
	g := synth.SynthSOP(spec)
	for _, k := range []int{3, 4, 6} {
		m := Map(g, Options{K: k})
		if m.NumLUTs() == 0 {
			t.Fatalf("k=%d: empty mapping", k)
		}
		for _, lut := range m.LUTs {
			if len(lut.Leaves) > k {
				t.Fatalf("k=%d: LUT with %d leaves", k, len(lut.Leaves))
			}
			// Every non-PI leaf must itself be a mapped root.
			for _, leaf := range lut.Leaves {
				if g.IsAnd(leaf) {
					if _, ok := m.RootOf[leaf]; !ok {
						t.Fatalf("k=%d: leaf %d is not a mapped root", k, leaf)
					}
				}
			}
		}
		// Output drivers must be mapped roots (or PIs/const).
		for i := 0; i < g.NumPOs(); i++ {
			id := g.PO(i).Node()
			if g.IsAnd(id) {
				if _, ok := m.RootOf[id]; !ok {
					t.Fatalf("k=%d: PO driver %d unmapped", k, id)
				}
			}
		}
	}
}

func TestMapFewerLUTsThanNodes(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	g := synth.SynthSOP([]tt.TT{tt.Random(7, r)})
	m := Map(g, Options{K: 4})
	if m.NumLUTs() >= g.NumAnds() {
		t.Errorf("mapping should compress: %d LUTs for %d nodes", m.NumLUTs(), g.NumAnds())
	}
}

func TestRoundTripEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	for trial := 0; trial < 5; trial++ {
		n := 4 + trial%3
		spec := []tt.TT{tt.Random(n, r), tt.Random(n, r)}
		for _, rec := range synth.Recipes()[:3] {
			g := rec.Build(spec)
			for _, k := range []int{4, 6} {
				ng := RoundTrip(g, Options{K: k})
				idx, err := aig.Equivalent(g, ng)
				if err != nil {
					t.Fatal(err)
				}
				if idx != -1 {
					t.Fatalf("trial %d %s k=%d: round trip broke output %d", trial, rec.Name, k, idx)
				}
				if err := ng.Check(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestRoundTripRestructures(t *testing.T) {
	// The shake-up move should usually change the structure.
	r := rand.New(rand.NewSource(114))
	g := synth.SynthSOP([]tt.TT{tt.Random(7, r)})
	ng := RoundTrip(g, Options{K: 6})
	if ng.NumAnds() == g.NumAnds() && ng.NumLevels() == g.NumLevels() {
		t.Log("round trip kept size and depth (acceptable but unusual)")
	}
}

func TestMapTinyGraphs(t *testing.T) {
	// Single AND.
	g := aig.New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	m := Map(g, Options{K: 4})
	if m.NumLUTs() != 1 {
		t.Errorf("single AND maps to %d LUTs", m.NumLUTs())
	}
	ng := RoundTrip(g, Options{K: 4})
	if idx, _ := aig.Equivalent(g, ng); idx != -1 {
		t.Error("tiny round trip broken")
	}
	// Constant + passthrough outputs.
	g2 := aig.New(2)
	g2.AddPO(aig.LitTrue)
	g2.AddPO(g2.PI(1).Not())
	ng2 := RoundTrip(g2, Options{K: 4})
	if idx, _ := aig.Equivalent(g2, ng2); idx != -1 {
		t.Error("constant/passthrough round trip broken")
	}
}
