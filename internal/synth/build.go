// Package synth converts Boolean function specifications (truth tables)
// into And-Inverter Graphs using seven structurally distinct recipes,
// reproducing the paper's step of generating functionally equivalent but
// structurally diverse starting points for optimization. It also provides
// the shared cut-resynthesis helper used by the optimization passes.
package synth

import (
	"sort"

	"repro/internal/aig"
	"repro/internal/sop"
	"repro/internal/tt"
)

// BalancedAnd builds a minimum-depth AND tree over the literals.
func BalancedAnd(g *aig.AIG, lits []aig.Lit) aig.Lit {
	if len(lits) == 0 {
		return aig.LitTrue
	}
	work := append([]aig.Lit(nil), lits...)
	for len(work) > 1 {
		var next []aig.Lit
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, g.And(work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// BalancedOr builds a minimum-depth OR tree over the literals.
func BalancedOr(g *aig.AIG, lits []aig.Lit) aig.Lit {
	if len(lits) == 0 {
		return aig.LitFalse
	}
	inv := make([]aig.Lit, len(lits))
	for i, l := range lits {
		inv[i] = l.Not()
	}
	return BalancedAnd(g, inv).Not()
}

// BalancedXor builds a minimum-depth XOR tree over the literals.
func BalancedXor(g *aig.AIG, lits []aig.Lit) aig.Lit {
	if len(lits) == 0 {
		return aig.LitFalse
	}
	work := append([]aig.Lit(nil), lits...)
	for len(work) > 1 {
		var next []aig.Lit
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, g.Xor(work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// ChainAnd builds a left-deep AND chain (maximum depth, minimum width).
func ChainAnd(g *aig.AIG, lits []aig.Lit) aig.Lit {
	out := aig.LitTrue
	for _, l := range lits {
		out = g.And(out, l)
	}
	return out
}

// ChainOr builds a left-deep OR chain.
func ChainOr(g *aig.AIG, lits []aig.Lit) aig.Lit {
	out := aig.LitFalse
	for _, l := range lits {
		out = g.Or(out, l)
	}
	return out
}

// CubeLit instantiates a cube as an AND of input literals.
func CubeLit(g *aig.AIG, c tt.Cube, inputs []aig.Lit, balanced bool) aig.Lit {
	var lits []aig.Lit
	for v := 0; v < len(inputs); v++ {
		if c.HasVar(v) {
			lits = append(lits, inputs[v].NotCond(!c.Phase(v)))
		}
	}
	if balanced {
		return BalancedAnd(g, lits)
	}
	return ChainAnd(g, lits)
}

// CoverLit instantiates a cube cover as an OR of cube ANDs.
func CoverLit(g *aig.AIG, c sop.Cover, inputs []aig.Lit, balanced bool) aig.Lit {
	lits := make([]aig.Lit, len(c.Cubes))
	for i, cube := range c.Cubes {
		lits[i] = CubeLit(g, cube, inputs, balanced)
	}
	if balanced {
		return BalancedOr(g, lits)
	}
	return ChainOr(g, lits)
}

// ExprLit instantiates a factored expression over the input literals.
func ExprLit(g *aig.AIG, e *sop.Expr, inputs []aig.Lit) aig.Lit {
	switch e.Kind {
	case sop.ExprConst0:
		return aig.LitFalse
	case sop.ExprConst1:
		return aig.LitTrue
	case sop.ExprLit:
		return inputs[e.Var].NotCond(!e.Pos)
	case sop.ExprAnd:
		lits := make([]aig.Lit, len(e.Args))
		for i, a := range e.Args {
			lits[i] = ExprLit(g, a, inputs)
		}
		return BalancedAnd(g, lits)
	case sop.ExprOr:
		lits := make([]aig.Lit, len(e.Args))
		for i, a := range e.Args {
			lits[i] = ExprLit(g, a, inputs)
		}
		return BalancedOr(g, lits)
	}
	panic("synth: invalid expression kind")
}

// mostBinateVar picks the support variable whose two cofactors differ the
// most, a standard Shannon/BDD branching heuristic.
func mostBinateVar(f tt.TT) int {
	best, bestScore := -1, -1
	for v := 0; v < f.NumVars(); v++ {
		if !f.HasVar(v) {
			continue
		}
		score := f.Cofactor(v, false).Xor(f.Cofactor(v, true)).CountOnes()
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

// supportSorted returns the support of f, ascending.
func supportSorted(f tt.TT) []int {
	s := f.Support()
	sort.Ints(s)
	return s
}
