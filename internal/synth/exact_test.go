package synth

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestExact3AllFunctions(t *testing.T) {
	// Every 3-variable function must be realized correctly.
	for fv := 0; fv < 256; fv++ {
		f := tt.FromWords(3, []uint64{uint64(fv)})
		g, ok := ExactStructure3(f)
		if !ok {
			t.Fatalf("function %02x rejected", fv)
		}
		if !g.OutputTTs()[0].Equal(f) {
			t.Fatalf("function %02x realized incorrectly", fv)
		}
	}
}

func TestExact3KnownOptima(t *testing.T) {
	cases := []struct {
		hex  string
		want int
	}{
		{"88", 1}, // AND2
		{"ee", 1}, // OR2 (one AND + inverters)
		{"80", 2}, // AND3
		{"fe", 2}, // OR3
		{"66", 3}, // XOR2
		{"e8", 4}, // MAJ3: known 4-AND optimum
		{"96", 6}, // XOR3 as a tree: 3 + 3
		{"ca", 3}, // MUX(a;b,c)
	}
	for _, c := range cases {
		f, err := tt.ParseHex(3, c.hex)
		if err != nil {
			t.Fatal(err)
		}
		g, ok := ExactStructure3(f)
		if !ok {
			t.Fatalf("%s rejected", c.hex)
		}
		if g.NumAnds() != c.want {
			t.Errorf("exact(%s) uses %d ANDs, want %d", c.hex, g.NumAnds(), c.want)
		}
	}
}

func TestExact3CostMatchesStructure(t *testing.T) {
	for fv := 0; fv < 256; fv++ {
		f := tt.FromWords(3, []uint64{uint64(fv)})
		g, _ := ExactStructure3(f)
		// The built tree may share nodes (strashing), so its AND count
		// can only be <= the tree-optimal cost.
		if g.NumAnds() > exact3Cost(uint8(fv)) {
			t.Fatalf("function %02x: structure %d ANDs exceeds optimal cost %d",
				fv, g.NumAnds(), exact3Cost(uint8(fv)))
		}
	}
}

func TestExact3EmbeddedSupport(t *testing.T) {
	// A 3-support function embedded in 6 variables.
	f := tt.Var(1, 6).And(tt.Var(3, 6)).Or(tt.Var(5, 6))
	g, ok := ExactStructure3(f)
	if !ok {
		t.Fatal("3-support function rejected")
	}
	if g.NumAnds() != 2 {
		t.Errorf("a&b|c uses %d ANDs, want 2", g.NumAnds())
	}
	// Over-wide support is rejected.
	wide := tt.Var(0, 5).Xor(tt.Var(1, 5)).Xor(tt.Var(2, 5)).Xor(tt.Var(3, 5))
	if _, ok := ExactStructure3(wide); ok {
		t.Error("4-support function accepted")
	}
}

func TestBestStructureUsesExact(t *testing.T) {
	// MAJ3's 4-AND optimum must now be found by BestStructure.
	maj := tt.Var(0, 3).And(tt.Var(1, 3)).Or(tt.Var(0, 3).And(tt.Var(2, 3))).Or(tt.Var(1, 3).And(tt.Var(2, 3)))
	if got := BestStructure(maj).NumAnds(); got != 4 {
		t.Errorf("BestStructure(maj3) = %d ANDs, want 4", got)
	}
	// And stays correct on random embedded-support functions.
	r := rand.New(rand.NewSource(211))
	for trial := 0; trial < 20; trial++ {
		f3 := tt.Random(3, r)
		f := f3.Expand(5)
		g := BestStructure(f)
		if !g.OutputTTs()[0].Equal(f) {
			t.Fatalf("trial %d: wrong function", trial)
		}
	}
}
