package synth

import (
	"fmt"
	"math/bits"

	"repro/internal/aig"
	"repro/internal/bdd"
	"repro/internal/sop"
	"repro/internal/telemetry"
	"repro/internal/tt"
)

// Recipe is a named synthesis strategy turning a multi-output truth-table
// specification into an AIG. The seven recipes mirror the paper's seven
// ABC/Espresso synthesis scripts: each follows a different decomposition
// paradigm and therefore yields a structurally different AIG for the same
// function.
type Recipe struct {
	Name        string
	Description string
	Build       func(spec []tt.TT) *aig.AIG
}

// Recipes returns the seven synthesis recipes in canonical order. Each
// recipe's Build is telemetry-instrumented under "synth/<name>".
func Recipes() []Recipe {
	return []Recipe{
		{"sop", "two-level ISOP, balanced AND-OR trees", instrumentBuild("sop", SynthSOP)},
		{"esp", "espresso-minimized SOP, chained trees", instrumentBuild("esp", SynthEspresso)},
		{"fx", "minimized SOP with algebraic factoring", instrumentBuild("fx", SynthFactored)},
		{"bdd", "sifted ROBDD converted to a MUX tree", instrumentBuild("bdd", SynthBDD)},
		{"shannon", "free-order Shannon decomposition", instrumentBuild("shannon", SynthShannon)},
		{"dsd", "disjoint-support decomposition with Shannon fallback", instrumentBuild("dsd", SynthDSD)},
		{"anf", "Reed-Muller XOR-of-ANDs (ANF) expansion", instrumentBuild("anf", SynthANF)},
	}
}

// instrumentBuild times one synthesis recipe under the span
// "synth/<name>" and records the produced AIG's size in the
// "synth/<name>/gates" histogram (no-op until telemetry is enabled).
func instrumentBuild(name string, build func(spec []tt.TT) *aig.AIG) func(spec []tt.TT) *aig.AIG {
	return func(spec []tt.TT) *aig.AIG {
		//lint:ignore metricname name comes from the fixed recipe registry (sop, esp, fx, bdd, shannon, dsd, anf), so cardinality is bounded
		sp := telemetry.StartSpan("synth/" + name)
		g := build(spec)
		sp.End()
		//lint:ignore metricname name comes from the fixed recipe registry, so cardinality is bounded
		telemetry.Observe("synth/"+name+"/gates", float64(g.NumAnds()))
		return g
	}
}

// RecipeNames lists the recipe names in canonical order.
func RecipeNames() []string {
	rs := Recipes()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	return names
}

// Synthesize runs the named recipe on the specification.
func Synthesize(name string, spec []tt.TT) (*aig.AIG, error) {
	for _, r := range Recipes() {
		if r.Name == name {
			return r.Build(spec), nil
		}
	}
	return nil, fmt.Errorf("synth: unknown recipe %q (have %v)", name, RecipeNames())
}

func checkSpec(spec []tt.TT) int {
	if len(spec) == 0 {
		panic("synth: empty specification")
	}
	n := spec[0].NumVars()
	for _, f := range spec[1:] {
		if f.NumVars() != n {
			panic("synth: outputs with differing input counts")
		}
	}
	return n
}

func inputLits(g *aig.AIG) []aig.Lit {
	lits := make([]aig.Lit, g.NumPIs())
	for i := range lits {
		lits[i] = g.PI(i)
	}
	return lits
}

// SynthSOP builds each output as a balanced OR of balanced cube ANDs from
// an irredundant SOP (no minimization beyond ISOP).
func SynthSOP(spec []tt.TT) *aig.AIG {
	n := checkSpec(spec)
	g := aig.New(n)
	in := inputLits(g)
	for _, f := range spec {
		g.AddPO(CoverLit(g, sop.FromTT(f), in, true))
	}
	return g.Cleanup()
}

// SynthEspresso builds each output from an espresso-minimized cover using
// chained (left-deep) trees, emphasizing two-level minimization.
func SynthEspresso(spec []tt.TT) *aig.AIG {
	n := checkSpec(spec)
	g := aig.New(n)
	in := inputLits(g)
	for _, f := range spec {
		g.AddPO(CoverLit(g, sop.MinimizeTT(f), in, false))
	}
	return g.Cleanup()
}

// SynthFactored minimizes each output and converts the kernel-factored
// form into an AIG, the multi-level "fast extract"-style recipe.
func SynthFactored(spec []tt.TT) *aig.AIG {
	n := checkSpec(spec)
	g := aig.New(n)
	in := inputLits(g)
	for _, f := range spec {
		expr := sop.Factor(sop.MinimizeTT(f))
		g.AddPO(ExprLit(g, expr, in))
	}
	return g.Cleanup()
}

// SynthBDD builds a shared ROBDD of all outputs under a sifted variable
// order and converts every BDD node into a 2:1 MUX, sharing nodes across
// outputs.
func SynthBDD(spec []tt.TT) *aig.AIG {
	n := checkSpec(spec)
	// Sift on the widest-support output; share the order across outputs.
	widest := 0
	for i, f := range spec {
		if f.SupportSize() > spec[widest].SupportSize() {
			widest = i
		}
	}
	order := bdd.SiftOrder(spec[widest], 2)
	perm := append([]int(nil), order...)

	m := bdd.NewManager(n)
	roots := make([]int32, len(spec))
	for i, f := range spec {
		roots[i] = m.FromTT(f.Permute(perm))
	}

	g := aig.New(n)
	memo := map[int32]aig.Lit{
		bdd.False: aig.LitFalse,
		bdd.True:  aig.LitTrue,
	}
	var conv func(node int32) aig.Lit
	conv = func(node int32) aig.Lit {
		if l, ok := memo[node]; ok {
			return l
		}
		// Manager level i tests original variable perm[i].
		sel := g.PI(perm[m.Level(node)])
		l := g.Mux(sel, conv(m.High(node)), conv(m.Low(node)))
		memo[node] = l
		return l
	}
	for _, r := range roots {
		g.AddPO(conv(r))
	}
	return g.Cleanup()
}

// SynthShannon decomposes every output by recursive Shannon expansion on
// the most binate variable, memoizing subfunctions across branches and
// outputs (a free-order BDD flavor).
func SynthShannon(spec []tt.TT) *aig.AIG {
	n := checkSpec(spec)
	g := aig.New(n)
	memo := make(map[string]aig.Lit)
	var rec func(f tt.TT) aig.Lit
	rec = func(f tt.TT) aig.Lit {
		if f.IsConst0() {
			return aig.LitFalse
		}
		if f.IsConst1() {
			return aig.LitTrue
		}
		key := f.Hex()
		if l, ok := memo[key]; ok {
			return l
		}
		v := mostBinateVar(f)
		l := g.Mux(g.PI(v), rec(f.Cofactor(v, true)), rec(f.Cofactor(v, false)))
		memo[key] = l
		return l
	}
	for _, f := range spec {
		g.AddPO(rec(f))
	}
	return g.Cleanup()
}

// SynthDSD peels disjoint single-variable decompositions (f = x op g)
// top-down and falls back to Shannon expansion when none applies,
// memoizing subfunctions.
func SynthDSD(spec []tt.TT) *aig.AIG {
	n := checkSpec(spec)
	g := aig.New(n)
	memo := make(map[string]aig.Lit)
	var rec func(f tt.TT) aig.Lit
	rec = func(f tt.TT) aig.Lit {
		if f.IsConst0() {
			return aig.LitFalse
		}
		if f.IsConst1() {
			return aig.LitTrue
		}
		key := f.Hex()
		if l, ok := memo[key]; ok {
			return l
		}
		var out aig.Lit
		if v, op, rest, ok := topDecomp(f); ok {
			x := g.PI(v)
			sub := rec(rest)
			switch op {
			case opAnd:
				out = g.And(x, sub)
			case opAndNot:
				out = g.And(x.Not(), sub)
			case opOr:
				out = g.Or(x, sub)
			case opOrNot:
				out = g.Or(x.Not(), sub)
			case opXor:
				out = g.Xor(x, sub)
			}
		} else {
			v := mostBinateVar(f)
			out = g.Mux(g.PI(v), rec(f.Cofactor(v, true)), rec(f.Cofactor(v, false)))
		}
		memo[key] = out
		return out
	}
	for _, f := range spec {
		g.AddPO(rec(f))
	}
	return g.Cleanup()
}

type decompOp int

const (
	opAnd decompOp = iota
	opAndNot
	opOr
	opOrNot
	opXor
)

// topDecomp checks whether some support variable x decomposes f as
// f = x AND g, !x AND g, x OR g, !x OR g, or x XOR g with g independent
// of x. It returns the variable, operator, and residual function.
func topDecomp(f tt.TT) (int, decompOp, tt.TT, bool) {
	for v := 0; v < f.NumVars(); v++ {
		if !f.HasVar(v) {
			continue
		}
		c0, c1 := f.Cofactor(v, false), f.Cofactor(v, true)
		switch {
		case c0.IsConst0():
			return v, opAnd, c1, true
		case c1.IsConst0():
			return v, opAndNot, c0, true
		case c1.IsConst1():
			return v, opOr, c0, true
		case c0.IsConst1():
			return v, opOrNot, c1, true
		case c0.Equal(c1.Not()):
			return v, opXor, c0, true
		}
	}
	return 0, 0, tt.TT{}, false
}

// SynthANF expands each output into its Reed-Muller (ANF) form — the
// XOR-heavy structure no SOP-based recipe produces — when that form is
// competitive in size, and otherwise falls back to a 4-LUT-cascade
// decomposition (the "LUT bidecomposition" flavor of the paper's seventh
// script). The guard matters: a random n-input function has ~2^(n-1)
// monomials, and feeding such pathological outliers to the diversity
// study would let raw size differences drown every structural signal.
func SynthANF(spec []tt.TT) *aig.AIG {
	n := checkSpec(spec)
	g := aig.New(n)
	in := inputLits(g)
	memo := make(map[string]aig.Lit)
	for _, f := range spec {
		monomials := f.ANF()
		outFlip := false
		if alt := f.Not().ANF(); len(alt) < len(monomials) {
			monomials, outFlip = alt, true
		}
		// Estimated AIG cost of the XOR expansion vs the factored form.
		anfCost := 0
		for _, m := range monomials {
			if lits := bits.OnesCount32(m); lits > 1 {
				anfCost += lits - 1
			}
		}
		if len(monomials) > 1 {
			anfCost += 3 * (len(monomials) - 1)
		}
		expr := sop.Factor(sop.MinimizeTT(f))
		if anfCost <= 2*expr.NumLits()+8 {
			g.AddPO(buildANF(g, in, monomials).NotCond(outFlip))
			continue
		}
		g.AddPO(lutCascade(g, f, memo))
	}
	return g.Cleanup()
}

// lutCascade decomposes f two variables at a time: the two most binate
// variables select among four cofactors through a 4:1 MUX cell (one
// 4-LUT), recursively — a LUT-cascade structure distinct from both the
// per-variable Shannon recipe and the globally ordered BDD recipe.
func lutCascade(g *aig.AIG, f tt.TT, memo map[string]aig.Lit) aig.Lit {
	if f.IsConst0() {
		return aig.LitFalse
	}
	if f.IsConst1() {
		return aig.LitTrue
	}
	key := f.Hex()
	if l, ok := memo[key]; ok {
		return l
	}
	sup := f.Support()
	var out aig.Lit
	if len(sup) <= 2 {
		expr := sop.Factor(sop.MinimizeTT(f))
		out = ExprLit(g, expr, inputLits(g))
	} else {
		v1 := mostBinateVar(f)
		f0, f1 := f.Cofactor(v1, false), f.Cofactor(v1, true)
		v2 := mostBinateVar(f0.Xor(f1).Or(f0)) // second selector from the residue
		if v2 == v1 || v2 < 0 {
			v2 = mostBinateVar(f1)
		}
		if v2 == v1 || v2 < 0 {
			for _, s := range sup {
				if s != v1 {
					v2 = s
					break
				}
			}
		}
		c00 := lutCascade(g, f0.Cofactor(v2, false), memo)
		c01 := lutCascade(g, f0.Cofactor(v2, true), memo)
		c10 := lutCascade(g, f1.Cofactor(v2, false), memo)
		c11 := lutCascade(g, f1.Cofactor(v2, true), memo)
		x1, x2 := g.PI(v1), g.PI(v2)
		out = g.Mux(x2, g.Mux(x1, c11, c01), g.Mux(x1, c10, c00))
	}
	memo[key] = out
	return out
}

func buildANF(g *aig.AIG, in []aig.Lit, monomials []uint32) aig.Lit {
	terms := make([]aig.Lit, 0, len(monomials))
	for _, m := range monomials {
		var lits []aig.Lit
		for v := 0; v < len(in); v++ {
			if m>>uint(v)&1 == 1 {
				lits = append(lits, in[v])
			}
		}
		terms = append(terms, BalancedAnd(g, lits))
	}
	return BalancedXor(g, terms)
}
