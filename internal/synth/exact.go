package synth

import (
	"sync"

	"repro/internal/aig"
	"repro/internal/tt"
)

// Exact synthesis for functions of up to three variables: a Dijkstra-like
// relaxation over the 256-function space finds the minimum AND-tree cost
// of every function (inverters free, no sharing), and the recorded
// derivations rebuild the structure. Three-variable functions appear
// constantly as compacted cut functions during rewriting, so exact
// structures here measurably sharpen the NPN library (see the
// BenchmarkAblationRewriteLibrary bench).

type exactEntry struct {
	cost int
	// Derivation: f = AND(a ^ aInv, b ^ bInv), possibly complemented via
	// representation (entries are stored for both f and ~f).
	a, b       uint8
	aInv, bInv bool
	leaf       int // >= 0: variable index; -1: constant/derived
}

var exact3 struct {
	once  sync.Once
	table [256]exactEntry
}

func buildExact3() {
	const inf = 1 << 20
	t := &exact3.table
	for i := range t {
		t[i] = exactEntry{cost: inf, leaf: -1}
	}
	// Constants and literals cost 0.
	t[0x00] = exactEntry{cost: 0, leaf: -2}
	t[0xFF] = exactEntry{cost: 0, leaf: -2}
	vars := [3]uint8{0xAA, 0xCC, 0xF0}
	for v, pat := range vars {
		t[pat] = exactEntry{cost: 0, leaf: v}
		t[^pat] = exactEntry{cost: 0, leaf: v} // complement is free
	}
	// Relax until fixpoint: new = a AND b over all polarity choices.
	for changed := true; changed; {
		changed = false
		for a := 0; a < 256; a++ {
			if t[a].cost >= inf {
				continue
			}
			for b := a; b < 256; b++ {
				if t[b].cost >= inf {
					continue
				}
				cost := t[a].cost + t[b].cost + 1
				f := uint8(a) & uint8(b)
				if cost < t[f].cost {
					t[f] = exactEntry{cost: cost, a: uint8(a), b: uint8(b), leaf: -1}
					changed = true
				}
				if nf := ^f; cost < t[nf].cost {
					// ~(a&b): same gate, complemented output — model by
					// storing the derivation on the complement; rebuild
					// handles it through the pairing below.
					t[nf] = exactEntry{cost: cost, a: uint8(a), b: uint8(b), leaf: -1}
					changed = true
				}
			}
		}
	}
}

// exact3Cost returns the optimal AND-tree cost of an 8-bit function.
func exact3Cost(f uint8) int {
	exact3.once.Do(buildExact3)
	return exact3.table[f].cost
}

// ExactStructure3 builds a minimum-AND-tree AIG for a function whose
// support has at most 3 variables, over the function's full variable
// count (input i of the result is variable i of f). The bool result is
// false when the support exceeds 3 variables.
func ExactStructure3(f tt.TT) (*aig.AIG, bool) {
	sup := f.Support()
	if len(sup) > 3 {
		return nil, false
	}
	// Compact the support into variables 0..len(sup)-1.
	perm := append([]int(nil), sup...)
	for v := 0; v < f.NumVars(); v++ {
		if !containsVar(sup, v) {
			perm = append(perm, v)
		}
	}
	cf := f.Permute(perm) // support now occupies variables 0..len(sup)-1
	if cf.NumVars() > 3 {
		cf = cf.Shrink(3)
	}
	cf = cf.Expand(3)
	exact3.once.Do(buildExact3)
	g := aig.New(f.NumVars())
	leaves := make([]aig.Lit, 3)
	for i := range leaves {
		if i < len(sup) {
			leaves[i] = g.PI(sup[i])
		} else {
			leaves[i] = aig.LitFalse
		}
	}
	out := buildExact3Lit(g, uint8(cf.Words()[0]&0xFF), leaves)
	g.AddPO(out)
	return g.Cleanup(), true
}

func buildExact3Lit(g *aig.AIG, f uint8, leaves []aig.Lit) aig.Lit {
	switch f {
	case 0x00:
		return aig.LitFalse
	case 0xFF:
		return aig.LitTrue
	}
	e := exact3.table[f]
	if e.leaf >= 0 {
		// A literal: pattern or its complement.
		vars := [3]uint8{0xAA, 0xCC, 0xF0}
		l := leaves[e.leaf]
		if f == ^vars[e.leaf] {
			l = l.Not()
		}
		return l
	}
	// Derived: f == a&b or f == ~(a&b).
	la := buildExact3Lit(g, e.a, leaves)
	lb := buildExact3Lit(g, e.b, leaves)
	and := g.And(la, lb)
	if f == e.a&e.b {
		return and
	}
	return and.Not()
}

func containsVar(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
