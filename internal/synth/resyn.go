package synth

import (
	"sync"

	"repro/internal/aig"
	"repro/internal/tt"
)

// BestStructure synthesizes a small single-output AIG for f over exactly
// f.NumVars() inputs, taking the best of the multi-paradigm recipes. It is
// the resynthesis engine behind rewriting, refactoring, and LUT mapping.
func BestStructure(f tt.TT) *aig.AIG {
	spec := []tt.TT{f}
	candidates := []*aig.AIG{
		SynthDSD(spec),
		SynthFactored(spec),
		SynthShannon(spec),
	}
	// Functions on at most 3 support variables get a provably
	// tree-optimal structure (sharing can, rarely, beat a tree, so the
	// heuristics still compete).
	if exact, ok := ExactStructure3(f); ok {
		candidates = append(candidates, exact)
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.NumAnds() < best.NumAnds() {
			best = c
		}
	}
	return best
}

// npnLibrary caches the best known structure per NPN-canonical function,
// keyed by variable count and canonical hex. Access is synchronized so
// optimization passes can share it.
type npnLibrary struct {
	mu sync.Mutex
	m  map[string]*aig.AIG
}

var library = npnLibrary{m: make(map[string]*aig.AIG)}

// exactCache short-circuits LibraryStructure for functions seen before:
// the wrapped structure is deterministic per function, and rewriting
// queries the same cut functions constantly. Keyed by (nvars, words[0]) —
// LibraryStructure is limited to <= 6 inputs, one word.
var exactCache = struct {
	mu sync.Mutex
	m  map[[2]uint64]*aig.AIG
}{m: make(map[[2]uint64]*aig.AIG)}

// LibraryStructure returns a small implementation of f (up to 6 inputs)
// via the NPN-canonical library: the canonical class is synthesized once
// and reused for every class member through the recorded transform.
// The returned AIG implements f itself (transform already applied to the
// output polarity and input order), over f.NumVars() inputs; input i of
// the result corresponds to variable i of f.
func LibraryStructure(f tt.TT) *aig.AIG {
	ck := [2]uint64{uint64(f.NumVars()), f.Words()[0]}
	exactCache.mu.Lock()
	if g, ok := exactCache.m[ck]; ok {
		exactCache.mu.Unlock()
		return g
	}
	exactCache.mu.Unlock()
	canon, xf := tt.NPNCanon(f)
	key := canon.Hex()
	library.mu.Lock()
	mini, ok := library.m[key]
	library.mu.Unlock()
	if !ok {
		mini = BestStructure(canon)
		library.mu.Lock()
		library.m[key] = mini
		library.mu.Unlock()
	}
	// Wrap the canonical structure with the inverse transform: feed input
	// i of the wrapper (variable i of f) into the canonical input it maps
	// to, and flip polarities as recorded.
	n := f.NumVars()
	g := aig.New(n)
	leaves := make([]aig.Lit, n)
	// Canonical variable i corresponds to original variable xf.Perm[i],
	// complemented when xf.Flips has that original variable set.
	for i := 0; i < n; i++ {
		orig := xf.Perm[i]
		leaves[i] = g.PI(orig).NotCond(xf.Flips>>uint(orig)&1 == 1)
	}
	out := Instantiate(g, mini, leaves)
	g.AddPO(out.NotCond(xf.OutFlip))
	wrapped := g.Cleanup()
	exactCache.mu.Lock()
	exactCache.m[ck] = wrapped
	exactCache.mu.Unlock()
	return wrapped
}

// LibrarySize reports how many canonical classes the library holds.
func LibrarySize() int {
	library.mu.Lock()
	defer library.mu.Unlock()
	return len(library.m)
}

// Instantiate copies the single-output mini AIG into dst, substituting
// leaves for its primary inputs, and returns the output literal.
func Instantiate(dst *aig.AIG, mini *aig.AIG, leaves []aig.Lit) aig.Lit {
	if mini.NumPIs() != len(leaves) {
		panic("synth: Instantiate leaf count mismatch")
	}
	m := make([]aig.Lit, mini.NumObjs())
	m[0] = aig.LitFalse
	for i := 0; i < mini.NumPIs(); i++ {
		m[i+1] = leaves[i]
	}
	for id := mini.NumPIs() + 1; id < mini.NumObjs(); id++ {
		f0, f1 := mini.Fanins(id)
		a := m[f0.Node()].NotCond(f0.IsCompl())
		b := m[f1.Node()].NotCond(f1.IsCompl())
		m[id] = dst.And(a, b)
	}
	po := mini.PO(0)
	return m[po.Node()].NotCond(po.IsCompl())
}

// InstantiateCost reports how many new AND nodes Instantiate would create
// in dst, without modifying dst: existing shared structure is free. Nodes
// that would be fresh are modeled with virtual ids beyond dst's range so
// that downstream lookups correctly miss while constant folding still
// applies.
func InstantiateCost(dst *aig.AIG, mini *aig.AIG, leaves []aig.Lit) int {
	return InstantiateCostBlocked(dst, mini, leaves, nil)
}

// InstantiateCostBlocked is InstantiateCost with a set of dst node ids
// that must not count as shareable — typically the MFFC about to be
// removed by the replacement whose cost is being estimated.
func InstantiateCostBlocked(dst *aig.AIG, mini *aig.AIG, leaves []aig.Lit, blocked map[int]bool) int {
	if mini.NumPIs() != len(leaves) {
		panic("synth: InstantiateCost leaf count mismatch")
	}
	m := make([]aig.Lit, mini.NumObjs())
	m[0] = aig.LitFalse
	for i := 0; i < mini.NumPIs(); i++ {
		m[i+1] = leaves[i]
	}
	nextVirtual := dst.NumObjs()
	cost := 0
	for id := mini.NumPIs() + 1; id < mini.NumObjs(); id++ {
		f0, f1 := mini.Fanins(id)
		a := m[f0.Node()].NotCond(f0.IsCompl())
		b := m[f1.Node()].NotCond(f1.IsCompl())
		if l, ok := dst.Lookup(a, b); ok && !blocked[l.Node()] {
			m[id] = l
			continue
		}
		m[id] = aig.MakeLit(nextVirtual, false)
		nextVirtual++
		cost++
	}
	return cost
}
