package synth

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/tt"
)

func randSpec(n, outs int, r *rand.Rand) []tt.TT {
	spec := make([]tt.TT, outs)
	for i := range spec {
		spec[i] = tt.Random(n, r)
	}
	return spec
}

func specAIGEquivalent(t *testing.T, spec []tt.TT, g *aig.AIG, recipe string) {
	t.Helper()
	if g.NumPOs() != len(spec) {
		t.Fatalf("%s: %d POs for %d outputs", recipe, g.NumPOs(), len(spec))
	}
	outs := g.OutputTTs()
	for i := range spec {
		if !outs[i].Equal(spec[i]) {
			t.Fatalf("%s: output %d differs from spec", recipe, i)
		}
	}
	if err := g.Check(); err != nil {
		t.Fatalf("%s: structural check: %v", recipe, err)
	}
}

func TestAllRecipesCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 8; trial++ {
		n := 3 + trial%5
		spec := randSpec(n, 1+trial%3, r)
		for _, rec := range Recipes() {
			g := rec.Build(spec)
			specAIGEquivalent(t, spec, g, rec.Name)
		}
	}
}

func TestRecipesOnStructuredFunctions(t *testing.T) {
	n := 6
	va := func(i int) tt.TT { return tt.Var(i, n) }
	specs := map[string][]tt.TT{
		"xor6":   {va(0).Xor(va(1)).Xor(va(2)).Xor(va(3)).Xor(va(4)).Xor(va(5))},
		"and6":   {va(0).And(va(1)).And(va(2)).And(va(3)).And(va(4)).And(va(5))},
		"mux":    {va(0).And(va(1)).Or(va(0).Not().And(va(2)))},
		"const":  {tt.Const(n, true), tt.Const(n, false)},
		"addbit": {va(0).Xor(va(1)).Xor(va(2)), va(0).And(va(1)).Or(va(2).And(va(0).Xor(va(1))))},
	}
	for name, spec := range specs {
		for _, rec := range Recipes() {
			g := rec.Build(spec)
			specAIGEquivalent(t, spec, g, name+"/"+rec.Name)
		}
	}
}

func TestRecipesProduceDiversity(t *testing.T) {
	// On a nontrivial function the seven recipes should not all produce
	// the same node count — that diversity is the entire point.
	r := rand.New(rand.NewSource(82))
	spec := randSpec(7, 2, r)
	sizes := make(map[int]bool)
	for _, rec := range Recipes() {
		sizes[rec.Build(spec).NumAnds()] = true
	}
	if len(sizes) < 3 {
		t.Errorf("only %d distinct sizes across 7 recipes; diversity too low", len(sizes))
	}
}

func TestSynthesizeDispatch(t *testing.T) {
	spec := []tt.TT{tt.Var(0, 3).And(tt.Var(1, 3))}
	g, err := Synthesize("sop", spec)
	if err != nil || g == nil {
		t.Fatalf("Synthesize(sop): %v", err)
	}
	if _, err := Synthesize("nope", spec); err == nil {
		t.Error("unknown recipe should error")
	}
	if len(RecipeNames()) != 7 {
		t.Errorf("want 7 recipes, have %d", len(RecipeNames()))
	}
}

func TestBalancedTrees(t *testing.T) {
	g := aig.New(8)
	lits := inputLits(g)
	and := BalancedAnd(g, lits)
	if g.Level(and.Node()) != 3 {
		t.Errorf("balanced AND8 depth = %d, want 3", g.Level(and.Node()))
	}
	g2 := aig.New(8)
	chain := ChainAnd(g2, inputLits(g2))
	if g2.Level(chain.Node()) != 7 {
		t.Errorf("chain AND8 depth = %d, want 7", g2.Level(chain.Node()))
	}
	// Empty and singleton cases.
	if BalancedAnd(g, nil) != aig.LitTrue || BalancedOr(g, nil) != aig.LitFalse {
		t.Error("empty tree identities wrong")
	}
	if BalancedXor(g, nil) != aig.LitFalse {
		t.Error("empty XOR should be false")
	}
	one := []aig.Lit{g.PI(0)}
	if BalancedAnd(g, one) != g.PI(0) || BalancedXor(g, one) != g.PI(0) {
		t.Error("singleton tree should be identity")
	}
}

func TestXorTreeCorrect(t *testing.T) {
	g := aig.New(5)
	g.AddPO(BalancedXor(g, inputLits(g)))
	want := tt.Var(0, 5)
	for v := 1; v < 5; v++ {
		want = want.Xor(tt.Var(v, 5))
	}
	if !g.OutputTTs()[0].Equal(want) {
		t.Error("XOR tree function wrong")
	}
}

func TestBestStructureCorrectAndSmall(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		n := 2 + trial%4
		f := tt.Random(n, r)
		mini := BestStructure(f)
		if mini.NumPOs() != 1 {
			t.Fatal("BestStructure must be single-output")
		}
		if !mini.OutputTTs()[0].Equal(f) {
			t.Fatalf("trial %d: BestStructure wrong function", trial)
		}
	}
	// Known sizes: AND2 = 1 node, XOR2 = 3 nodes, MAJ3 <= 4 nodes.
	and2 := BestStructure(tt.Var(0, 2).And(tt.Var(1, 2)))
	if and2.NumAnds() != 1 {
		t.Errorf("AND2 structure has %d nodes", and2.NumAnds())
	}
	xor2 := BestStructure(tt.Var(0, 2).Xor(tt.Var(1, 2)))
	if xor2.NumAnds() > 3 {
		t.Errorf("XOR2 structure has %d nodes, want <= 3", xor2.NumAnds())
	}
	maj := tt.Var(0, 3).And(tt.Var(1, 3)).Or(tt.Var(0, 3).And(tt.Var(2, 3))).Or(tt.Var(1, 3).And(tt.Var(2, 3)))
	if got := BestStructure(maj).NumAnds(); got > 4 {
		t.Errorf("MAJ3 structure has %d nodes, want <= 4", got)
	}
}

func TestLibraryStructure(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	for trial := 0; trial < 100; trial++ {
		n := 2 + trial%3
		f := tt.Random(n, r)
		g := LibraryStructure(f)
		if !g.OutputTTs()[0].Equal(f) {
			t.Fatalf("trial %d: library structure wrong for %s", trial, f.Hex())
		}
	}
	if LibrarySize() == 0 {
		t.Error("library should have cached classes")
	}
	// NPN-equivalent functions share one cache entry: library size grows
	// slower than call count.
	before := LibrarySize()
	f := tt.Var(0, 3).And(tt.Var(1, 3)).Or(tt.Var(2, 3))
	xf := tt.NPNTransform{Perm: []int{2, 0, 1}, Flips: 0b101, OutFlip: true}
	_ = LibraryStructure(f)
	mid := LibrarySize()
	_ = LibraryStructure(xf.Apply(f))
	if LibrarySize() != mid {
		t.Error("NPN-equivalent function created a new library entry")
	}
	_ = before
}

func TestInstantiateMatchesCost(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	for trial := 0; trial < 30; trial++ {
		f := tt.Random(4, r)
		mini := BestStructure(f)
		dst := aig.New(6)
		// Pre-populate dst with some structure over the same leaves to
		// exercise sharing.
		leaves := []aig.Lit{dst.PI(0), dst.PI(2), dst.PI(3).Not(), dst.PI(5)}
		dst.And(leaves[0], leaves[1])
		dst.And(dst.And(leaves[0], leaves[1]), leaves[2])
		before := dst.NumAnds()
		predicted := InstantiateCost(dst, mini, leaves)
		out := Instantiate(dst, mini, leaves)
		added := dst.NumAnds() - before
		if predicted != added {
			t.Fatalf("trial %d: predicted %d new nodes, actually added %d", trial, predicted, added)
		}
		// Function must be f over the leaves.
		dst.AddPO(out)
		po := dst.NumPOs() - 1
		got := dst.OutputTTs()[po]
		// Build expected: f with variables mapped to leaf functions.
		vars := []tt.TT{tt.Var(0, 6), tt.Var(2, 6), tt.Var(3, 6).Not(), tt.Var(5, 6)}
		want := tt.New(6)
		for m := 0; m < 16; m++ {
			if !f.Bit(m) {
				continue
			}
			part := tt.Const(6, true)
			for i, vt := range vars {
				if m>>uint(i)&1 == 1 {
					part = part.And(vt)
				} else {
					part = part.And(vt.Not())
				}
			}
			want = want.Or(part)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: instantiated function wrong", trial)
		}
	}
}

func TestTopDecomp(t *testing.T) {
	n := 4
	f := tt.Var(0, n).And(tt.Var(1, n).Or(tt.Var(2, n)))
	v, op, rest, ok := topDecomp(f)
	if !ok || v != 0 || op != opAnd {
		t.Fatalf("topDecomp: v=%d op=%d ok=%v", v, op, ok)
	}
	if !rest.Equal(tt.Var(1, n).Or(tt.Var(2, n))) {
		t.Error("residual wrong")
	}
	// XOR decomposition.
	g := tt.Var(3, n).Xor(tt.Var(1, n).And(tt.Var(2, n)))
	_, op, _, ok = topDecomp(g)
	if !ok || op != opXor {
		t.Errorf("XOR decomp not found: op=%d ok=%v", op, ok)
	}
	// Majority has no single-variable decomposition.
	maj := tt.Var(0, 3).And(tt.Var(1, 3)).Or(tt.Var(0, 3).And(tt.Var(2, 3))).Or(tt.Var(1, 3).And(tt.Var(2, 3)))
	if _, _, _, ok := topDecomp(maj); ok {
		t.Error("majority should not decompose")
	}
}

func TestANFRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(86))
	for trial := 0; trial < 30; trial++ {
		n := 1 + trial%6
		f := tt.Random(n, r)
		if !tt.FromANF(n, f.ANF()).Equal(f) {
			t.Fatalf("trial %d: ANF round trip failed", trial)
		}
	}
	// XOR has exactly the singleton monomials.
	x := tt.Var(0, 3).Xor(tt.Var(1, 3)).Xor(tt.Var(2, 3))
	mon := x.ANF()
	if len(mon) != 3 {
		t.Errorf("xor3 ANF has %d monomials, want 3", len(mon))
	}
}

func TestSynthANFDenseFallback(t *testing.T) {
	// A random function has an exponentially dense ANF; the recipe must
	// fall back to the LUT-cascade form, stay correct, and stay within
	// the same order of magnitude as the factored recipe.
	r := rand.New(rand.NewSource(87))
	f := tt.Random(10, r)
	g := SynthANF([]tt.TT{f})
	if !g.OutputTTs()[0].Equal(f) {
		t.Error("dense ANF fallback produced wrong function")
	}
	fx := SynthFactored([]tt.TT{f})
	if g.NumAnds() > 4*fx.NumAnds() {
		t.Errorf("ANF fallback still pathological: %d vs fx %d", g.NumAnds(), fx.NumAnds())
	}
}

func TestSynthANFKeepsXorFormWhenCompact(t *testing.T) {
	// Parity has a 1-monomial-per-variable ANF; the recipe must keep the
	// XOR expansion (3(n-1) AND nodes) rather than fall back.
	n := 8
	f := tt.Var(0, n)
	for v := 1; v < n; v++ {
		f = f.Xor(tt.Var(v, n))
	}
	g := SynthANF([]tt.TT{f})
	if !g.OutputTTs()[0].Equal(f) {
		t.Fatal("parity ANF wrong")
	}
	if g.NumAnds() != 3*(n-1) {
		t.Errorf("parity%d ANF uses %d ANDs, want %d", n, g.NumAnds(), 3*(n-1))
	}
}
