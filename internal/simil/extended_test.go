package simil

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/synth"
	"repro/internal/tt"
)

func extendedPair(t *testing.T, seed int64) (*ExtendedProfile, *ExtendedProfile) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	spec := []tt.TT{tt.Random(5, r)}
	g1 := synth.SynthSOP(spec)
	g2 := synth.SynthBDD(spec)
	p1 := NewProfile(g1, ProfileOptions{SkipOptScores: true})
	p2 := NewProfile(g2, ProfileOptions{SkipOptScores: true})
	return NewExtendedProfile(p1), NewExtendedProfile(p2)
}

func TestDeltaConIdentity(t *testing.T) {
	e1, e2 := extendedPair(t, 171)
	self := DeltaCon(e1.G, e1.G)
	if math.Abs(self-1) > 1e-9 {
		t.Errorf("DeltaCon(g,g) = %f, want 1", self)
	}
	cross := DeltaCon(e1.G, e2.G)
	if math.IsNaN(cross) || cross <= 0 || cross > 1 {
		t.Errorf("DeltaCon out of (0,1]: %f", cross)
	}
	if cross >= self {
		t.Errorf("different graphs as similar as identical: %f vs %f", cross, self)
	}
}

func TestDeltaConSymmetry(t *testing.T) {
	e1, e2 := extendedPair(t, 172)
	a := DeltaCon(e1.G, e2.G)
	b := DeltaCon(e2.G, e1.G)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("DeltaCon not symmetric: %f vs %f", a, b)
	}
}

func TestGEDApproxAxioms(t *testing.T) {
	e1, e2 := extendedPair(t, 173)
	if got := GEDApprox(e1.G, e1.G); got != 0 {
		t.Errorf("GED(g,g) = %f, want 0", got)
	}
	cross := GEDApprox(e1.G, e2.G)
	if cross < 0 || math.IsNaN(cross) {
		t.Errorf("GED = %f", cross)
	}
	if cross == 0 {
		t.Error("structurally different graphs at GED 0")
	}
	norm := NormalizedGED(cross, e1, e2)
	if norm < 0 || norm >= 1 {
		t.Errorf("normalized GED out of [0,1): %f", norm)
	}
}

func TestGEDUpperBoundSanity(t *testing.T) {
	// The approximation is an upper bound: it can never beat the
	// trivial bound of deleting and reinserting everything.
	e1, e2 := extendedPair(t, 174)
	ged := GEDApprox(e1.G, e2.G)
	trivial := float64(e1.G.NumEdges() + e2.G.NumEdges() + e1.G.N + e2.G.N)
	if ged > trivial*3 { // generous sanity margin (feature costs add up)
		t.Errorf("GED %f implausibly large vs trivial bound %f", ged, trivial)
	}
}

func TestExtendedMetricsRegistry(t *testing.T) {
	ms := ExtendedMetrics()
	if len(ms) != 2 {
		t.Fatalf("have %d extended metrics", len(ms))
	}
	e1, e2 := extendedPair(t, 175)
	for _, m := range ms {
		v := m.Compute(e1, e2)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s produced %f", m.Name, v)
		}
		// Symmetry.
		if math.Abs(v-m.Compute(e2, e1)) > 1e-9 {
			t.Errorf("%s not symmetric", m.Name)
		}
	}
}
