// Package simil implements the paper's AIG dissimilarity framework: the
// four traditional graph similarity measures adapted to AIGs (Vertex-Edge
// Overlap, NetSimile, Weisfeiler-Lehman kernel, Adjacency Spectral
// Distance), the proposed AIG-specific metrics (Relative Gate Count,
// Relative Level Count, the Rewrite/Refactor/Resub Scores, and the RRR
// Score), and the post-optimization Relative Optimizability Difference
// benchmark (Eq. 1).
package simil

import (
	"math"

	"repro/internal/aig"
	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Artifacts is a bitmask of the per-graph artifact families a Profile
// can carry. Splitting the families apart lets batch consumers (the
// aigd service, the harness's O(n²) pair loop) compute exactly the
// per-graph work the requested metrics need — once per graph, never
// once per pair.
type Artifacts uint32

// The artifact families, one per independent precomputation.
const (
	NeedOverlap   Artifacts = 1 << iota // vertex/edge sets (VEO)
	NeedNetSimile                       // 35-dim NetSimile signature
	NeedWL                              // Weisfeiler-Lehman histogram
	NeedSpectrum                        // top-k adjacency eigenvalues (ASD)
	NeedOptScores                       // single-step reduction vector (Eq. 3/4)
	NeedSketch                          // MinHash/simhash retrieval signature

	// AllArtifacts requests every family.
	AllArtifacts = NeedOverlap | NeedNetSimile | NeedWL | NeedSpectrum | NeedOptScores | NeedSketch
)

// Profile holds per-AIG precomputations so that pairwise metric
// evaluation over many pairs stays cheap: each artifact is computed once
// per AIG, not once per pair.
type Profile struct {
	A      *aig.AIG
	Gates  int
	Levels int

	// has records which artifact families were computed.
	has Artifacts

	// Traditional-metric artifacts over the undirected skeleton.
	vertices map[int]bool
	edges    map[[2]int]bool
	features [35]float64 // NetSimile signature: 7 features x 5 aggregates
	wlHist   map[string]int
	spectrum []float64

	// Single-step optimization reductions (rewrite, refactor, resub),
	// the r_i(A) of Eq. 3/4.
	reductions [3]float64

	// Retrieval sketch over the WL histogram and NetSimile features
	// (NeedSketch; implies both parent families).
	sig *sketch.Signature
}

// ProfileOptions tunes profile construction.
type ProfileOptions struct {
	// SpectrumK is the number of adjacency eigenvalues kept for the
	// spectral distance (default 20, as a practical NetComp-style k).
	SpectrumK int
	// WLIterations is the number of Weisfeiler-Lehman refinements
	// (default 3).
	WLIterations int
	// SkipOptScores skips the three single-step optimization runs (for
	// callers that only need the traditional metrics).
	SkipOptScores bool
	// Seed feeds the Lanczos starting vector.
	Seed int64
}

func (o ProfileOptions) spectrumK() int {
	if o.SpectrumK <= 0 {
		return 20
	}
	return o.SpectrumK
}

func (o ProfileOptions) wlIterations() int {
	if o.WLIterations <= 0 {
		return 3
	}
	return o.WLIterations
}

// NewProfile computes all metric artifacts for one AIG. The whole
// construction runs under the "profile/total" telemetry span, with each
// artifact family timed by a nested child span.
func NewProfile(a *aig.AIG, opts ProfileOptions) *Profile {
	return NewProfileFor(a, opts, AllArtifacts)
}

// NewProfileFor computes exactly the artifact families in needs (plus
// the always-cheap gate and level counts). Batch consumers that know
// which metrics a request asks for pass Needs(metrics) to skip the
// unneeded per-graph work entirely — the single-step optimization runs
// dominate profile cost, so a request for the traditional metrics only
// never pays for them. opts.SkipOptScores additionally masks
// NeedOptScores for compatibility with existing callers.
func NewProfileFor(a *aig.AIG, opts ProfileOptions, needs Artifacts) *Profile {
	total := telemetry.StartSpan("profile/total")
	defer total.End()

	if opts.SkipOptScores {
		needs &^= NeedOptScores
	}
	p := &Profile{A: a, Gates: a.NumAnds(), Levels: a.NumLevels()}
	p.add(a, opts, needs)
	return p
}

// add computes the artifact families in needs that p does not yet hold,
// in place. The caller must ensure p was built from the same AIG and
// options; the service's profile cache uses it to upgrade a cached
// partial profile instead of recomputing families it already has.
func (p *Profile) add(a *aig.AIG, opts ProfileOptions, needs Artifacts) {
	// The sketch is derived from the WL histogram and the NetSimile
	// features, so requesting it pulls in both parents.
	if needs&NeedSketch != 0 {
		needs |= NeedWL | NeedNetSimile
	}
	needs &^= p.has
	if needs == 0 {
		return
	}
	var und *graph.Graph
	if needs&(NeedOverlap|NeedNetSimile|NeedWL|NeedSpectrum) != 0 {
		und = graph.FromAIG(a)
	}

	if needs&NeedOverlap != 0 {
		// Vertex and edge sets under the consistent node numbering.
		sp := telemetry.StartSpan("profile/overlap")
		p.vertices = make(map[int]bool)
		p.edges = make(map[[2]int]bool)
		for id := 1; id < a.NumObjs(); id++ {
			p.vertices[id] = true
		}
		for _, e := range und.Edges() {
			p.edges[e] = true
		}
		sp.End()
	}

	if needs&NeedNetSimile != 0 {
		// NetSimile signature.
		sp := telemetry.StartSpan("profile/netsimile")
		feats := und.NetSimileFeatures()
		for fi := 0; fi < 7; fi++ {
			agg := stats.Aggregate(feats[fi][1:]) // node 0 (constant) excluded
			copy(p.features[fi*5:fi*5+5], agg[:])
		}
		sp.End()
	}

	if needs&NeedWL != 0 {
		// Weisfeiler-Lehman label histogram.
		sp := telemetry.StartSpan("profile/wl")
		p.wlHist = wlHistogram(und, opts.wlIterations())
		sp.End()
	}

	if needs&NeedSpectrum != 0 {
		// Adjacency spectrum.
		sp := telemetry.StartSpan("profile/spectrum")
		p.spectrum = und.TopEigenvalues(opts.spectrumK(), opts.Seed+1)
		sp.End()
	}

	if needs&NeedOptScores != 0 {
		sp := telemetry.StartSpan("profile/optscores")
		p.reductions = OptReductions(a)
		sp.End()
	}

	if needs&NeedSketch != 0 {
		// Both parents are guaranteed present: either computed above or
		// already in p.has from an earlier staged build.
		sp := telemetry.StartSpan("profile/sketch")
		p.sig = sketch.New(p.wlHist, p.features[:])
		sp.End()
	}
	p.has |= needs
}

// Has reports the artifact families this profile carries.
func (p *Profile) Has() Artifacts { return p.has }

// Sketch returns the profile's retrieval signature, or nil when
// NeedSketch was never requested.
func (p *Profile) Sketch() *sketch.Signature { return p.sig }

// Extend computes, in place, any artifact families in needs that the
// profile does not yet carry, using the profile's own AIG. Callers that
// cache profiles (the aigd service) use it to upgrade a cached partial
// profile instead of rebuilding families it already has. Pass the same
// ProfileOptions the profile was built with: options are part of the
// artifact definition, and mixing them would silently mix metrics.
func (p *Profile) Extend(opts ProfileOptions, needs Artifacts) {
	if opts.SkipOptScores {
		needs &^= NeedOptScores
	}
	p.add(p.A, opts, needs)
}

// OptReductions computes the single-step reduction ratios
// (G(A)-G(A^opt))/G(A) for rewriting, refactoring, and resubstitution —
// the building blocks of the paper's Eq. 3 and Eq. 4.
func OptReductions(a *aig.AIG) [3]float64 {
	g := float64(a.NumAnds())
	if g == 0 {
		return [3]float64{}
	}
	rw := opt.RewriteOnce(a, opt.RewriteOptions{})
	rf := opt.RefactorOnce(a, opt.RefactorOptions{})
	rs := opt.ResubOnce(a, opt.ResubOptions{})
	return [3]float64{
		(g - float64(rw.NumAnds())) / g,
		(g - float64(rf.NumAnds())) / g,
		(g - float64(rs.NumAnds())) / g,
	}
}

// Reductions exposes the profile's single-step reduction vector.
func (p *Profile) Reductions() [3]float64 { return p.reductions }

// --- Traditional measures (Section IV-A) -------------------------------

// VEO computes the Vertex-Edge Overlap similarity (Papadimitriou et al.):
// 2*(|V∩V'| + |E∩E'|) / (|V|+|V'|+|E|+|E'|). 1 means identical, 0 fully
// disjoint. Higher = more similar.
func VEO(p1, p2 *Profile) float64 {
	sharedV := 0
	for v := range p1.vertices {
		if p2.vertices[v] {
			sharedV++
		}
	}
	sharedE := 0
	for e := range p1.edges {
		if p2.edges[e] {
			sharedE++
		}
	}
	den := len(p1.vertices) + len(p2.vertices) + len(p1.edges) + len(p2.edges)
	if den == 0 {
		return 1
	}
	return 2 * float64(sharedV+sharedE) / float64(den)
}

// NetSimile computes the Canberra distance between the two graphs'
// 35-dimensional NetSimile signatures. Higher = more different.
func NetSimile(p1, p2 *Profile) float64 {
	return stats.Canberra(p1.features[:], p2.features[:])
}

// WLKernel computes the normalized Weisfeiler-Lehman subtree kernel:
// the dot product of label histograms accumulated over the refinement
// iterations, normalized so identical graphs score 1. Higher = more
// similar.
func WLKernel(p1, p2 *Profile) float64 {
	dot := func(a, b map[string]int) float64 {
		s := 0.0
		for l, c := range a {
			if c2, ok := b[l]; ok {
				s += float64(c) * float64(c2)
			}
		}
		return s
	}
	k12 := dot(p1.wlHist, p2.wlHist)
	k11 := dot(p1.wlHist, p1.wlHist)
	k22 := dot(p2.wlHist, p2.wlHist)
	if k11 == 0 || k22 == 0 {
		return 0
	}
	return k12 / math.Sqrt(k11*k22)
}

// ASD computes the Adjacency Spectral Distance: the Euclidean distance
// between the top-k adjacency eigenvalues (shorter spectra are
// zero-padded). Higher = more different.
func ASD(p1, p2 *Profile) float64 {
	n := len(p1.spectrum)
	if len(p2.spectrum) > n {
		n = len(p2.spectrum)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	copy(a, p1.spectrum)
	copy(b, p2.spectrum)
	return stats.Euclidean(a, b)
}

// wlHistogram runs Weisfeiler-Lehman label refinement and accumulates
// label counts across iterations (iteration 0 uses degrees as labels).
func wlHistogram(g *graph.Graph, iterations int) map[string]int {
	hist := make(map[string]int)
	labels := make([]string, g.N)
	for u := 0; u < g.N; u++ {
		labels[u] = itoa(g.Degree(u))
		hist["0:"+labels[u]]++
	}
	for it := 1; it <= iterations; it++ {
		next := make([]string, g.N)
		for u := 0; u < g.N; u++ {
			nb := g.Neighbors(u)
			ns := make([]string, len(nb))
			for i, v := range nb {
				ns[i] = labels[v]
			}
			sortStrings(ns)
			sig := labels[u]
			for _, s := range ns {
				sig += "|" + s
			}
			next[u] = hashLabel(sig)
			hist[itoa(it)+":"+next[u]]++
		}
		labels = next
	}
	return hist
}

// --- Proposed AIG-specific measures (Section IV-B) ---------------------

// RGC computes the Relative Gate Count difference (Eq. 2):
// |G1-G2| / (G1+G2). Higher = more different.
func RGC(p1, p2 *Profile) float64 {
	den := p1.Gates + p2.Gates
	if den == 0 {
		return 0
	}
	return math.Abs(float64(p1.Gates-p2.Gates)) / float64(den)
}

// RLC computes the Relative Level Count difference, the level-depth
// analogue of Eq. 2. Higher = more different.
func RLC(p1, p2 *Profile) float64 {
	den := p1.Levels + p2.Levels
	if den == 0 {
		return 0
	}
	return math.Abs(float64(p1.Levels-p2.Levels)) / float64(den)
}

// Operator indexes the single-operator scores.
type Operator int

// The three optimization operators of Eq. 3.
const (
	OpRewrite Operator = iota
	OpRefactor
	OpResub
)

// OpScore computes the single-operator score of Eq. 3: the absolute
// difference of the two AIGs' single-step reduction ratios under the
// given operator. Higher = more different.
func OpScore(p1, p2 *Profile, op Operator) float64 {
	return math.Abs(p1.reductions[op] - p2.reductions[op])
}

// RewriteScore is Eq. 3 with the rewriting operator.
func RewriteScore(p1, p2 *Profile) float64 { return OpScore(p1, p2, OpRewrite) }

// RefactorScore is Eq. 3 with the refactoring operator.
func RefactorScore(p1, p2 *Profile) float64 { return OpScore(p1, p2, OpRefactor) }

// ResubScore is Eq. 3 with the resubstitution operator.
func ResubScore(p1, p2 *Profile) float64 { return OpScore(p1, p2, OpResub) }

// RRRScore computes Eq. 4: the Euclidean distance between the two AIGs'
// (rewrite, refactor, resub) reduction vectors. Higher = more different.
func RRRScore(p1, p2 *Profile) float64 {
	s := 0.0
	for i := 0; i < 3; i++ {
		d := p1.reductions[i] - p2.reductions[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// --- Benchmark (Section III-B) ------------------------------------------

// ROD computes the Relative Optimizability Difference (Eq. 1) from the
// gate counts of the two fully optimized AIGs:
// |G1*-G2*| / max(G1*, G2*).
func ROD(gates1, gates2 int) float64 {
	mx := gates1
	if gates2 > mx {
		mx = gates2
	}
	if mx == 0 {
		return 0
	}
	return math.Abs(float64(gates1-gates2)) / float64(mx)
}

// --- Metric registry -----------------------------------------------------

// Kind distinguishes the two metric families of the paper.
type Kind int

// Metric families.
const (
	Traditional Kind = iota
	AIGSpecific
)

// Metric is a named pairwise dissimilarity/similarity measure.
type Metric struct {
	Name string
	Kind Kind
	// HigherIsSimilar records the metric's direction: VEO and the WL
	// kernel grow with similarity, the others with difference. The paper
	// reports correlation strength regardless of sign.
	HigherIsSimilar bool
	// Needs lists the profile artifact families the metric reads; both
	// sides of a Compute call must carry at least these.
	Needs   Artifacts
	Compute func(p1, p2 *Profile) float64
}

// Needs returns the union of the artifact families the given metrics
// read — what a batch consumer must precompute per graph.
func Needs(metrics []Metric) Artifacts {
	var n Artifacts
	for _, m := range metrics {
		n |= m.Needs
	}
	return n
}

// Metrics returns all eleven pairwise measures in the paper's order
// (Table I then Table II, with the three operator scores and RRR).
// Each metric's Compute is telemetry-instrumented under
// "metric/<name>".
func Metrics() []Metric {
	ms := []Metric{
		{"VEO", Traditional, true, NeedOverlap, VEO},
		{"NetSimile", Traditional, false, NeedNetSimile, NetSimile},
		{"WLKernel", Traditional, true, NeedWL, WLKernel},
		{"ASD", Traditional, false, NeedSpectrum, ASD},
		{"RGC", AIGSpecific, false, 0, RGC},
		{"RLC", AIGSpecific, false, 0, RLC},
		{"RewriteScore", AIGSpecific, false, NeedOptScores, RewriteScore},
		{"RefactorScore", AIGSpecific, false, NeedOptScores, RefactorScore},
		{"ResubScore", AIGSpecific, false, NeedOptScores, ResubScore},
		{"RRRScore", AIGSpecific, false, NeedOptScores, RRRScore},
	}
	for i := range ms {
		name, compute := ms[i].Name, ms[i].Compute
		ms[i].Compute = func(p1, p2 *Profile) float64 {
			//lint:ignore metricname name comes from the fixed metric table above, so cardinality is bounded
			sp := telemetry.StartSpan("metric/" + name)
			v := compute(p1, p2)
			sp.End()
			return v
		}
	}
	return ms
}

// MetricByName returns the named metric.
func MetricByName(name string) (Metric, bool) {
	for _, m := range Metrics() {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}
