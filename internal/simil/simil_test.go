package simil

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/synth"
	"repro/internal/tt"
)

func profileOf(t *testing.T, a *aig.AIG) *Profile {
	t.Helper()
	return NewProfile(a, ProfileOptions{})
}

func twoVariants(t *testing.T, n int, seed int64) (*Profile, *Profile, []tt.TT) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	spec := []tt.TT{tt.Random(n, r), tt.Random(n, r)}
	g1 := synth.SynthSOP(spec)
	g2 := synth.SynthBDD(spec)
	return profileOf(t, g1), profileOf(t, g2), spec
}

func TestIdentityAxioms(t *testing.T) {
	p, _, _ := twoVariants(t, 5, 141)
	if got := VEO(p, p); got != 1 {
		t.Errorf("VEO(p,p) = %f, want 1", got)
	}
	if got := NetSimile(p, p); got != 0 {
		t.Errorf("NetSimile(p,p) = %f, want 0", got)
	}
	if got := WLKernel(p, p); math.Abs(got-1) > 1e-12 {
		t.Errorf("WLKernel(p,p) = %f, want 1", got)
	}
	if got := ASD(p, p); got != 0 {
		t.Errorf("ASD(p,p) = %f, want 0", got)
	}
	for _, m := range Metrics() {
		if m.Kind == AIGSpecific {
			if got := m.Compute(p, p); got != 0 {
				t.Errorf("%s(p,p) = %f, want 0", m.Name, got)
			}
		}
	}
}

func TestSymmetry(t *testing.T) {
	p1, p2, _ := twoVariants(t, 5, 142)
	for _, m := range Metrics() {
		a, b := m.Compute(p1, p2), m.Compute(p2, p1)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("%s not symmetric: %f vs %f", m.Name, a, b)
		}
	}
}

func TestRanges(t *testing.T) {
	p1, p2, _ := twoVariants(t, 6, 143)
	if v := VEO(p1, p2); v < 0 || v > 1 {
		t.Errorf("VEO out of [0,1]: %f", v)
	}
	if v := WLKernel(p1, p2); v < 0 || v > 1+1e-12 {
		t.Errorf("WLKernel out of [0,1]: %f", v)
	}
	if v := RGC(p1, p2); v < 0 || v > 1 {
		t.Errorf("RGC out of [0,1]: %f", v)
	}
	if v := RLC(p1, p2); v < 0 || v > 1 {
		t.Errorf("RLC out of [0,1]: %f", v)
	}
	if v := RRRScore(p1, p2); v < 0 || v > math.Sqrt(3)+1e-12 {
		t.Errorf("RRR out of range: %f", v)
	}
	for _, m := range Metrics() {
		if v := m.Compute(p1, p2); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s produced %f", m.Name, v)
		}
	}
}

func TestDissimilarStructuresScoreWorseThanIdentical(t *testing.T) {
	p1, p2, _ := twoVariants(t, 6, 144)
	if VEO(p1, p2) >= VEO(p1, p1) {
		t.Error("VEO: different structures as similar as identical")
	}
	if NetSimile(p1, p2) <= 0 {
		t.Error("NetSimile: different structures at distance 0")
	}
	if WLKernel(p1, p2) >= 1 {
		t.Error("WL: different structures at kernel 1")
	}
}

func TestRGCFormula(t *testing.T) {
	// Hand check Eq. 2 with synthetic profiles.
	p1 := &Profile{Gates: 30, Levels: 5}
	p2 := &Profile{Gates: 10, Levels: 15}
	if got := RGC(p1, p2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RGC = %f, want 0.5", got)
	}
	if got := RLC(p1, p2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RLC = %f, want 0.5", got)
	}
	empty := &Profile{}
	if RGC(empty, empty) != 0 || RLC(empty, empty) != 0 {
		t.Error("degenerate profiles should score 0")
	}
}

func TestOpScoresFormula(t *testing.T) {
	p1 := &Profile{reductions: [3]float64{0.5, 0.2, 0.1}}
	p2 := &Profile{reductions: [3]float64{0.1, 0.2, 0.4}}
	if got := RewriteScore(p1, p2); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("RewriteScore = %f", got)
	}
	if got := RefactorScore(p1, p2); got != 0 {
		t.Errorf("RefactorScore = %f", got)
	}
	if got := ResubScore(p1, p2); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("ResubScore = %f", got)
	}
	want := math.Sqrt(0.4*0.4 + 0.3*0.3)
	if got := RRRScore(p1, p2); math.Abs(got-want) > 1e-12 {
		t.Errorf("RRRScore = %f, want %f", got, want)
	}
}

func TestRODFormula(t *testing.T) {
	if got := ROD(50, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ROD(50,100) = %f", got)
	}
	if got := ROD(100, 50); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ROD(100,50) = %f", got)
	}
	if ROD(70, 70) != 0 {
		t.Error("ROD of equal sizes should be 0")
	}
	if ROD(0, 0) != 0 {
		t.Error("ROD(0,0) should be 0")
	}
	if ROD(0, 10) != 1 {
		t.Error("ROD(0,10) should be 1")
	}
}

func TestOptReductionsNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(145))
	spec := []tt.TT{tt.Random(5, r)}
	for _, rec := range synth.Recipes() {
		g := rec.Build(spec)
		red := OptReductions(g)
		for i, v := range red {
			if v < 0 || v > 1 {
				t.Errorf("%s: reduction[%d] = %f out of [0,1]", rec.Name, i, v)
			}
		}
	}
	// Constant AIG: zero reductions.
	g := aig.New(2)
	g.AddPO(aig.LitTrue)
	if red := OptReductions(g); red != [3]float64{} {
		t.Errorf("constant AIG reductions = %v", red)
	}
}

func TestMetricRegistry(t *testing.T) {
	ms := Metrics()
	if len(ms) != 10 {
		t.Fatalf("have %d metrics, want 10", len(ms))
	}
	trad, spec := 0, 0
	for _, m := range ms {
		if m.Kind == Traditional {
			trad++
		} else {
			spec++
		}
	}
	if trad != 4 || spec != 6 {
		t.Errorf("metric split %d/%d, want 4/6", trad, spec)
	}
	if _, ok := MetricByName("RRRScore"); !ok {
		t.Error("RRRScore missing")
	}
	if _, ok := MetricByName("nope"); ok {
		t.Error("bogus metric found")
	}
}

func TestSkipOptScores(t *testing.T) {
	r := rand.New(rand.NewSource(146))
	g := synth.SynthSOP([]tt.TT{tt.Random(4, r)})
	p := NewProfile(g, ProfileOptions{SkipOptScores: true})
	if p.Reductions() != [3]float64{} {
		t.Error("SkipOptScores should leave reductions zero")
	}
	if len(p.spectrum) == 0 {
		t.Error("spectrum should still be computed")
	}
}

func TestProfileDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(147))
	g := synth.SynthSOP([]tt.TT{tt.Random(6, r)})
	p1 := NewProfile(g, ProfileOptions{Seed: 5})
	p2 := NewProfile(g, ProfileOptions{Seed: 5})
	for _, m := range Metrics() {
		if v := m.Compute(p1, p2); m.HigherIsSimilar {
			if m.Name == "VEO" && v != 1 {
				t.Errorf("VEO of identical profiles = %f", v)
			}
		} else if v != 0 {
			t.Errorf("%s of identical profiles = %f", m.Name, v)
		}
	}
}

// TestProfileArtifactsStaged: a profile grown incrementally through
// NewProfileFor + Extend must score bit-identically to one built with
// everything up front — the invariant the service result cache rests
// on.
func TestProfileArtifactsStaged(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	spec := []tt.TT{tt.Random(6, r), tt.Random(6, r)}
	g1, g2 := synth.SynthSOP(spec), synth.SynthBDD(spec)
	opts := ProfileOptions{Seed: 9}

	full1, full2 := NewProfile(g1, opts), NewProfile(g2, opts)
	part1 := NewProfileFor(g1, opts, NeedOverlap)
	part2 := NewProfileFor(g2, opts, NeedOverlap)
	if got := part1.Has(); got != NeedOverlap {
		t.Fatalf("partial profile has %b, want only overlap", got)
	}
	part1.Extend(opts, NeedWL|NeedSpectrum)
	if got := part1.Has(); got != NeedOverlap|NeedWL|NeedSpectrum {
		t.Fatalf("extended profile has %b", got)
	}
	part1.Extend(opts, AllArtifacts)
	part2.Extend(opts, AllArtifacts)
	if part1.Has() != AllArtifacts || part2.Has() != AllArtifacts {
		t.Fatalf("extended profiles have %b and %b, want all", part1.Has(), part2.Has())
	}
	for _, m := range Metrics() {
		if staged, fresh := m.Compute(part1, part2), m.Compute(full1, full2); staged != fresh {
			t.Errorf("%s: staged profile scores %v, full profile %v", m.Name, staged, fresh)
		}
	}
}

// TestNeedsUnion: the per-metric artifact declarations must union
// correctly and cover exactly what the metric families require.
func TestNeedsUnion(t *testing.T) {
	byName := func(names ...string) []Metric {
		out := make([]Metric, len(names))
		for i, n := range names {
			m, ok := MetricByName(n)
			if !ok {
				t.Fatalf("unknown metric %q", n)
			}
			out[i] = m
		}
		return out
	}
	if got := Needs(byName("RGC", "RLC")); got != 0 {
		t.Errorf("Needs(RGC,RLC) = %b, want 0 (stats only)", got)
	}
	if got := Needs(byName("VEO", "ASD")); got != NeedOverlap|NeedSpectrum {
		t.Errorf("Needs(VEO,ASD) = %b", got)
	}
	// No metric reads the sketch directly — it is a retrieval artifact,
	// requested explicitly by indexing callers.
	if got := Needs(Metrics()); got != AllArtifacts&^NeedSketch {
		t.Errorf("Needs(all) = %b, want AllArtifacts minus sketch", got)
	}
}

// TestSketchArtifact: NeedSketch pulls in its parent families, the
// signature is byte-stable across staged and up-front builds, and a
// profile built without it carries none.
func TestSketchArtifact(t *testing.T) {
	r := rand.New(rand.NewSource(157))
	spec := []tt.TT{tt.Random(6, r), tt.Random(6, r)}
	g := synth.SynthSOP(spec)
	opts := ProfileOptions{Seed: 4}

	direct := NewProfileFor(g, opts, NeedSketch)
	if got := direct.Has(); got != NeedSketch|NeedWL|NeedNetSimile {
		t.Fatalf("NeedSketch profile has %b, want sketch plus parents", got)
	}
	if direct.Sketch() == nil {
		t.Fatal("NeedSketch profile has nil signature")
	}

	staged := NewProfileFor(g, opts, NeedWL)
	staged.Extend(opts, NeedSketch)
	full := NewProfile(g, opts)
	if full.Sketch() == nil {
		t.Fatal("AllArtifacts profile has nil signature")
	}
	want := direct.Sketch().Encode()
	for name, p := range map[string]*Profile{"staged": staged, "full": full} {
		if !bytes.Equal(p.Sketch().Encode(), want) {
			t.Errorf("%s build produced a different signature", name)
		}
	}

	if plain := NewProfileFor(g, opts, NeedOverlap); plain.Sketch() != nil {
		t.Error("profile without NeedSketch carries a signature")
	}
}

// TestExtendRespectsSkipOptScores: Extend must keep honouring the
// profile-level opt-score gate.
func TestExtendRespectsSkipOptScores(t *testing.T) {
	r := rand.New(rand.NewSource(153))
	g := synth.SynthSOP([]tt.TT{tt.Random(5, r)})
	opts := ProfileOptions{SkipOptScores: true}
	p := NewProfileFor(g, opts, AllArtifacts)
	if p.Has()&NeedOptScores != 0 {
		t.Error("SkipOptScores profile still computed opt scores")
	}
	p.Extend(opts, NeedOptScores)
	if p.Has()&NeedOptScores != 0 {
		t.Error("Extend ignored SkipOptScores")
	}
}
