package simil

import (
	"math"

	"repro/internal/graph"
)

// This file implements the measures the paper's Section IV-A6 explicitly
// excludes for computational cost — DeltaCon and an approximate Graph
// Edit Distance — as optional extensions, so their cost/benefit can be
// evaluated empirically. They are not part of Metrics(); use
// ExtendedMetrics() or the similarity command.

// DeltaCon computes the DeltaCon0 graph similarity (Koutra et al.): node
// affinities from fast belief propagation, S = (I + eps^2 D - eps A)^-1,
// compared with the Matusita distance and mapped to (0, 1] where 1 means
// identical. Graphs are compared on the shared node numbering, padding
// the smaller one with isolated nodes.
func DeltaCon(a1, a2 *graph.Graph) float64 {
	n := a1.N
	if a2.N > n {
		n = a2.N
	}
	s1, err1 := deltaConAffinity(a1, n)
	s2, err2 := deltaConAffinity(a2, n)
	if err1 != nil || err2 != nil {
		return math.NaN()
	}
	// Matusita distance over affinity entries.
	d := 0.0
	for i := range s1.Data {
		x := math.Sqrt(math.Max(0, s1.Data[i])) - math.Sqrt(math.Max(0, s2.Data[i]))
		d += x * x
	}
	return 1 / (1 + math.Sqrt(d))
}

func deltaConAffinity(g *graph.Graph, n int) (*graph.Matrix, error) {
	maxDeg := 0
	for u := 0; u < g.N; u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	eps := 1 / (1 + float64(maxDeg))
	m := graph.Identity(n)
	for u := 0; u < g.N; u++ {
		m.Set(u, u, 1+eps*eps*float64(g.Degree(u)))
		for _, v := range g.Neighbors(u) {
			m.Set(u, v, -eps)
		}
	}
	return m.Inverse()
}

// GEDApprox computes an upper-bound approximation of the graph edit
// distance via bipartite assignment (Riesen-Bunke style): nodes are
// matched by local-feature cost with the Hungarian algorithm, and the
// induced edge edits are added. Lower = more similar; 0 for identical
// graphs under a cost-zero assignment. Both mapping directions are
// evaluated and the tighter bound returned, which also makes the
// measure symmetric.
func GEDApprox(a1, a2 *graph.Graph) float64 {
	return math.Min(gedDirected(a1, a2), gedDirected(a2, a1))
}

func gedDirected(a1, a2 *graph.Graph) float64 {
	n := a1.N
	if a2.N > n {
		n = a2.N
	}
	f1 := nodeFeatures(a1, n)
	f2 := nodeFeatures(a2, n)
	cost := graph.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cost.Set(i, j, featureCost(f1[i], f2[j]))
		}
	}
	assign, _ := graph.Hungarian(cost)
	// Node substitution cost.
	total := 0.0
	for i := 0; i < n; i++ {
		total += featureCost(f1[i], f2[assign[i]])
	}
	// Edge edits induced by the mapping: edges present in one graph but
	// not matched in the other cost 1 each.
	e2 := make(map[[2]int]bool)
	for _, e := range a2.Edges() {
		e2[e] = true
	}
	matched := 0
	edges1 := a1.Edges()
	for _, e := range edges1 {
		u, v := assign[e[0]], assign[e[1]]
		if u > v {
			u, v = v, u
		}
		if e2[[2]int{u, v}] {
			matched++
		}
	}
	total += float64(len(edges1) - matched)   // deletions/substitutions
	total += float64(a2.NumEdges() - matched) // insertions
	return total
}

type nodeFeature [3]float64 // degree, clustering, egonet edges

func nodeFeatures(g *graph.Graph, n int) []nodeFeature {
	fs := make([]nodeFeature, n)
	for u := 0; u < g.N; u++ {
		within, _, _ := g.EgonetStats(u)
		fs[u] = nodeFeature{float64(g.Degree(u)), g.Clustering(u), float64(within)}
	}
	return fs
}

func featureCost(a, b nodeFeature) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// ExtendedProfile carries the per-AIG artifacts of the extended metrics.
type ExtendedProfile struct {
	G *graph.Graph
}

// NewExtendedProfile wraps the undirected skeleton for extended-metric
// evaluation. Kept separate from Profile because DeltaCon/GED are
// O(n^3) per pair and deliberately opt-in, exactly as the paper argues.
func NewExtendedProfile(p *Profile) *ExtendedProfile {
	return &ExtendedProfile{G: graphOfProfile(p)}
}

// graphOfProfile rebuilds the undirected skeleton from the profile's AIG.
func graphOfProfile(p *Profile) *graph.Graph {
	return graph.FromAIG(p.A)
}

// ExtendedMetric is a pairwise measure over extended profiles.
type ExtendedMetric struct {
	Name            string
	HigherIsSimilar bool
	Compute         func(a, b *ExtendedProfile) float64
}

// ExtendedMetrics returns the opt-in expensive measures.
func ExtendedMetrics() []ExtendedMetric {
	return []ExtendedMetric{
		{"DeltaCon", true, func(a, b *ExtendedProfile) float64 { return DeltaCon(a.G, b.G) }},
		{"GEDApprox", false, func(a, b *ExtendedProfile) float64 { return GEDApprox(a.G, b.G) }},
	}
}

// NormalizedGED scales a GED value into [0, 1) for reporting alongside
// the bounded metrics: ged / (ged + totalSize).
func NormalizedGED(ged float64, a, b *ExtendedProfile) float64 {
	size := float64(a.G.N + b.G.N + a.G.NumEdges() + b.G.NumEdges())
	if size == 0 {
		return 0
	}
	return ged / (ged + size)
}
