package simil

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
)

func itoa(n int) string { return strconv.Itoa(n) }

func sortStrings(s []string) { sort.Strings(s) }

// hashLabel compresses a WL signature string into a short stable label.
func hashLabel(sig string) string {
	h := sha256.Sum256([]byte(sig))
	return hex.EncodeToString(h[:8])
}
