package mig

import (
	"fmt"

	"repro/internal/aig"
	"repro/internal/bdd"
	"repro/internal/sop"
	"repro/internal/tt"
)

// FromAIG converts an AIG into a MIG (AND(a,b) = M(a,b,0)).
func FromAIG(a *aig.AIG) *MIG {
	g := New(a.NumPIs())
	m := make([]Lit, a.NumObjs())
	m[0] = LitFalse
	for i := 1; i <= a.NumPIs(); i++ {
		m[i] = MakeLit(i, false)
	}
	for id := a.NumPIs() + 1; id < a.NumObjs(); id++ {
		f0, f1 := a.Fanins(id)
		x := m[f0.Node()].NotCond(f0.IsCompl())
		y := m[f1.Node()].NotCond(f1.IsCompl())
		m[id] = g.And(x, y)
	}
	for i := 0; i < a.NumPOs(); i++ {
		po := a.PO(i)
		g.AddPO(m[po.Node()].NotCond(po.IsCompl()))
	}
	return g.Cleanup()
}

// ToAIG lowers the MIG to an AIG via the 2-level majority formula.
func (g *MIG) ToAIG() *aig.AIG {
	a := aig.New(g.numPIs)
	m := make([]aig.Lit, g.NumObjs())
	m[0] = aig.LitFalse
	for i := 1; i <= g.numPIs; i++ {
		m[i] = aig.MakeLit(i, false)
	}
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		f := g.fanins[id]
		var lits [3]aig.Lit
		for k, l := range f {
			lits[k] = m[l.Node()].NotCond(l.IsCompl())
		}
		m[id] = a.Maj3(lits[0], lits[1], lits[2])
	}
	for _, po := range g.pos {
		a.AddPO(m[po.Node()].NotCond(po.IsCompl()))
	}
	return a.Cleanup()
}

// Recipe is a named MIG synthesis strategy.
type Recipe struct {
	Name        string
	Description string
	Build       func(spec []tt.TT) *MIG
}

// Recipes returns the MIG synthesis recipes in canonical order.
func Recipes() []Recipe {
	return []Recipe{
		{"shannon", "Shannon decomposition through majority multiplexers", SynthShannon},
		{"factored", "espresso-minimized, kernel-factored AND/OR form", SynthFactored},
		{"bdd", "sifted ROBDD converted to a majority MUX tree", SynthBDD},
	}
}

// Synthesize dispatches on the recipe name.
func Synthesize(name string, spec []tt.TT) (*MIG, error) {
	for _, r := range Recipes() {
		if r.Name == name {
			return r.Build(spec), nil
		}
	}
	return nil, fmt.Errorf("mig: unknown recipe %q", name)
}

func checkSpec(spec []tt.TT) int {
	if len(spec) == 0 {
		panic("mig: empty specification")
	}
	n := spec[0].NumVars()
	for _, f := range spec[1:] {
		if f.NumVars() != n {
			panic("mig: inconsistent arities")
		}
	}
	return n
}

// SynthShannon decomposes by Shannon expansion with majority detection:
// when a function is exactly the majority of three (possibly
// complemented) remaining variables it becomes a single gate.
func SynthShannon(spec []tt.TT) *MIG {
	n := checkSpec(spec)
	g := New(n)
	memo := make(map[string]Lit)
	var rec func(f tt.TT) Lit
	rec = func(f tt.TT) Lit {
		if f.IsConst0() {
			return LitFalse
		}
		if f.IsConst1() {
			return LitTrue
		}
		key := f.Hex()
		if l, ok := memo[key]; ok {
			return l
		}
		var out Lit
		if a, b, c, ok := majOfVars(f); ok {
			out = g.Maj(a.apply(g), b.apply(g), c.apply(g))
		} else {
			v := bestVar(f)
			out = g.Mux(g.PI(v), rec(f.Cofactor(v, true)), rec(f.Cofactor(v, false)))
		}
		memo[key] = out
		return out
	}
	for _, f := range spec {
		g.AddPO(rec(f))
	}
	return g.Cleanup()
}

type varLit struct {
	v     int
	compl bool
}

func (vl varLit) apply(g *MIG) Lit { return g.PI(vl.v).NotCond(vl.compl) }

// majOfVars reports whether f is exactly MAJ(±x, ±y, ±z) of three
// support variables.
func majOfVars(f tt.TT) (a, b, c varLit, ok bool) {
	sup := f.Support()
	if len(sup) != 3 {
		return a, b, c, false
	}
	n := f.NumVars()
	vs := [3]tt.TT{tt.Var(sup[0], n), tt.Var(sup[1], n), tt.Var(sup[2], n)}
	for mask := 0; mask < 8; mask++ {
		var t [3]tt.TT
		for k := 0; k < 3; k++ {
			t[k] = vs[k]
			if mask>>uint(k)&1 == 1 {
				t[k] = t[k].Not()
			}
		}
		maj := t[0].And(t[1]).Or(t[0].And(t[2])).Or(t[1].And(t[2]))
		if maj.Equal(f) {
			return varLit{sup[0], mask&1 == 1}, varLit{sup[1], mask>>1&1 == 1}, varLit{sup[2], mask>>2&1 == 1}, true
		}
	}
	return a, b, c, false
}

func bestVar(f tt.TT) int {
	best, bestScore := -1, -1
	for v := 0; v < f.NumVars(); v++ {
		if !f.HasVar(v) {
			continue
		}
		score := f.Cofactor(v, false).Xor(f.Cofactor(v, true)).CountOnes()
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

// SynthFactored minimizes and factors each output into AND/OR majority
// gates.
func SynthFactored(spec []tt.TT) *MIG {
	n := checkSpec(spec)
	g := New(n)
	for _, f := range spec {
		expr := sop.Factor(sop.MinimizeTT(f))
		g.AddPO(buildExpr(g, expr))
	}
	return g.Cleanup()
}

func buildExpr(g *MIG, e *sop.Expr) Lit {
	switch e.Kind {
	case sop.ExprConst0:
		return LitFalse
	case sop.ExprConst1:
		return LitTrue
	case sop.ExprLit:
		return g.PI(e.Var).NotCond(!e.Pos)
	case sop.ExprAnd:
		out := LitTrue
		for _, a := range e.Args {
			out = g.And(out, buildExpr(g, a))
		}
		return out
	case sop.ExprOr:
		out := LitFalse
		for _, a := range e.Args {
			out = g.Or(out, buildExpr(g, a))
		}
		return out
	}
	panic("mig: bad expression")
}

// SynthBDD builds a shared sifted BDD and converts each node to a
// majority multiplexer.
func SynthBDD(spec []tt.TT) *MIG {
	n := checkSpec(spec)
	widest := 0
	for i, f := range spec {
		if f.SupportSize() > spec[widest].SupportSize() {
			widest = i
		}
	}
	order := bdd.SiftOrder(spec[widest], 2)
	m := bdd.NewManager(n)
	roots := make([]int32, len(spec))
	for i, f := range spec {
		roots[i] = m.FromTT(f.Permute(order))
	}
	g := New(n)
	memo := map[int32]Lit{bdd.False: LitFalse, bdd.True: LitTrue}
	var conv func(node int32) Lit
	conv = func(node int32) Lit {
		if l, ok := memo[node]; ok {
			return l
		}
		sel := g.PI(order[m.Level(node)])
		l := g.Mux(sel, conv(m.High(node)), conv(m.Low(node)))
		memo[node] = l
		return l
	}
	for _, r := range roots {
		g.AddPO(conv(r))
	}
	return g.Cleanup()
}
