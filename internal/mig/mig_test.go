package mig

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/synth"
	"repro/internal/tt"
	"repro/internal/workload"
)

func TestMajAxioms(t *testing.T) {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	if g.Maj(a, a, b) != a || g.Maj(b, a, a) != a || g.Maj(a, b, a) != a {
		t.Error("duplicate absorption broken")
	}
	if g.Maj(a, a.Not(), c) != c || g.Maj(a, c, a.Not()) != c || g.Maj(c, a, a.Not()) != c {
		t.Error("complement absorption broken")
	}
	if g.NumGates() != 0 {
		t.Errorf("axioms created %d gates", g.NumGates())
	}
	// Self-duality: M(!a,!b,!c) == !M(a,b,c), shared structurally.
	m1 := g.Maj(a, b, c)
	m2 := g.Maj(a.Not(), b.Not(), c.Not())
	if m2 != m1.Not() {
		t.Error("self-duality normalization broken")
	}
	if g.NumGates() != 1 {
		t.Errorf("dual variants created %d gates, want 1", g.NumGates())
	}
	if err := g.Check(); err != nil {
		t.Error(err)
	}
}

func TestMajFunction(t *testing.T) {
	g := New(3)
	g.AddPO(g.Maj(g.PI(0), g.PI(1), g.PI(2)))
	want := workload.Threshold(3, 2)
	if !g.OutputTTs()[0].Equal(want) {
		t.Error("Maj3 function wrong")
	}
}

func TestDerivedGates(t *testing.T) {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	g.AddPO(g.And(a, b))
	g.AddPO(g.Or(a, b))
	g.AddPO(g.Xor(a, b))
	g.AddPO(g.Mux(a, b, c))
	outs := g.OutputTTs()
	va, vb, vc := tt.Var(0, 3), tt.Var(1, 3), tt.Var(2, 3)
	if !outs[0].Equal(va.And(vb)) || !outs[1].Equal(va.Or(vb)) {
		t.Error("And/Or wrong")
	}
	if !outs[2].Equal(va.Xor(vb)) {
		t.Error("Xor wrong")
	}
	if !outs[3].Equal(va.And(vb).Or(va.Not().And(vc))) {
		t.Error("Mux wrong")
	}
}

func TestConversionRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(191))
	for trial := 0; trial < 10; trial++ {
		n := 4 + trial%3
		spec := []tt.TT{tt.Random(n, r), tt.Random(n, r)}
		a := synth.SynthFactored(spec)
		m := FromAIG(a)
		back := m.ToAIG()
		if idx, err := aig.Equivalent(a, back); err != nil || idx != -1 {
			t.Fatalf("trial %d: AIG->MIG->AIG broke output %d (%v)", trial, idx, err)
		}
		if err := m.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecipesCorrectAndDiverse(t *testing.T) {
	r := rand.New(rand.NewSource(192))
	for trial := 0; trial < 6; trial++ {
		n := 4 + trial%3
		spec := []tt.TT{tt.Random(n, r)}
		sizes := map[int]bool{}
		for _, rec := range Recipes() {
			g := rec.Build(spec)
			if !g.OutputTTs()[0].Equal(spec[0]) {
				t.Fatalf("trial %d %s: wrong function", trial, rec.Name)
			}
			if err := g.Check(); err != nil {
				t.Fatalf("%s: %v", rec.Name, err)
			}
			sizes[g.NumGates()] = true
		}
		if len(sizes) < 2 {
			t.Errorf("trial %d: MIG recipes produced no diversity", trial)
		}
	}
	if _, err := Synthesize("shannon", []tt.TT{tt.Var(0, 2)}); err != nil {
		t.Error(err)
	}
	if _, err := Synthesize("nope", []tt.TT{tt.Var(0, 2)}); err == nil {
		t.Error("unknown recipe should error")
	}
}

func TestMajorityDetection(t *testing.T) {
	// Majority-of-three must synthesize to exactly one gate via shannon.
	g := SynthShannon([]tt.TT{workload.Threshold(3, 2)})
	if g.NumGates() != 1 {
		t.Errorf("maj3 synthesized to %d gates, want 1", g.NumGates())
	}
	// Median-of-five (threshold 3 of 5) should benefit from majority
	// detection as the recursion bottoms out.
	g5 := SynthShannon([]tt.TT{workload.Threshold(5, 3)})
	if !g5.OutputTTs()[0].Equal(workload.Threshold(5, 3)) {
		t.Error("median5 wrong")
	}
	// Shannon reaches majority leaves only at 3-var residues: two MUX
	// levels (3 gates each) over AND3/MAJ3/OR3 leaves — about 16 gates.
	// Anything far beyond that means detection never fired.
	if g5.NumGates() > 20 {
		t.Errorf("median5 uses %d gates; majority detection ineffective", g5.NumGates())
	}
}

func TestRewritePreservesAndShrinks(t *testing.T) {
	r := rand.New(rand.NewSource(193))
	for trial := 0; trial < 6; trial++ {
		n := 5 + trial%2
		f := tt.Random(n, r)
		g := SynthFactored([]tt.TT{f})
		ng := Rewrite(g)
		if !ng.OutputTTs()[0].Equal(f) {
			t.Fatalf("trial %d: rewrite changed function", trial)
		}
		if ng.NumGates() > g.NumGates() {
			t.Fatalf("trial %d: rewrite grew %d -> %d", trial, g.NumGates(), ng.NumGates())
		}
		if err := ng.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRewriteFindsMajority(t *testing.T) {
	// Median-of-five from the factored SOP form must shrink toward the
	// majority structure.
	f := workload.Threshold(5, 3)
	g := SynthFactored([]tt.TT{f})
	ng := Rewrite(g)
	if ng.NumGates() >= g.NumGates() {
		t.Errorf("rewrite failed on median5: %d -> %d", g.NumGates(), ng.NumGates())
	}
	if !ng.OutputTTs()[0].Equal(f) {
		t.Error("rewrite changed function")
	}
}

func TestDiversityScores(t *testing.T) {
	spec := []tt.TT{workload.Threshold(5, 3)}
	pa := NewProfile(SynthShannon(spec))
	pb := NewProfile(SynthFactored(spec))
	if RGC(pa, pa) != 0 || RLC(pa, pa) != 0 || RewriteScore(pa, pa) != 0 {
		t.Error("identity scores nonzero")
	}
	if RGC(pa, pb) <= 0 {
		t.Error("shannon vs factored median5 should differ in gates")
	}
	for _, v := range []float64{RGC(pa, pb), RLC(pa, pb)} {
		if v < 0 || v > 1 {
			t.Errorf("score out of range: %f", v)
		}
	}
}

func TestCleanup(t *testing.T) {
	g := New(3)
	a, b := g.PI(0), g.PI(1)
	used := g.And(a, b)
	g.Or(a, g.PI(2)) // dangling
	g.AddPO(used)
	ng := g.Cleanup()
	if ng.NumGates() != 1 {
		t.Errorf("Cleanup left %d gates", ng.NumGates())
	}
	if err := ng.Check(); err != nil {
		t.Error(err)
	}
}

func TestStatString(t *testing.T) {
	g := New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	if g.Stat().String() == "" {
		t.Error("empty stat string")
	}
}
