package mig

import (
	"math"

	"repro/internal/sop"
	"repro/internal/tt"
)

// RewriteOnce performs one majority cone-rewriting pass: each gate's
// reconvergence-driven cone (up to 8 leaves) is collapsed to its truth
// table and resynthesized as the cheapest of (a) a single majority gate
// over three leaves, (b) a factored AND/OR form, or (c) a Shannon MUX
// form with recursive majority detection. Positive-gain replacements are
// committed through a demand-driven rebuild; the pass never grows the
// graph.
func RewriteOnce(g *MIG) *MIG {
	if g.NumPIs() > tt.MaxVars {
		return g
	}
	refs := g.refCounts()
	type choice struct {
		f      tt.TT
		leaves []int
	}
	decisions := make(map[int]choice)

	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		if refs[id] == 0 {
			continue
		}
		leaves := g.reconvCut(id, 8)
		if len(leaves) < 2 {
			continue
		}
		saved := g.mffcBounded(id, refs, leaves)
		if saved < 2 {
			continue
		}
		f := g.cutTT(id, leaves)
		cost := resynCost(f)
		if saved > cost {
			decisions[id] = choice{f: f, leaves: leaves}
		}
	}
	if len(decisions) == 0 {
		return g
	}

	ng := New(g.numPIs)
	m := make([]Lit, g.NumObjs())
	for i := range m {
		m[i] = Lit(0xFFFFFFFF)
	}
	m[0] = LitFalse
	for i := 1; i <= g.numPIs; i++ {
		m[i] = MakeLit(i, false)
	}
	var build func(id int) Lit
	build = func(id int) Lit {
		if m[id] != Lit(0xFFFFFFFF) {
			return m[id]
		}
		if dec, ok := decisions[id]; ok {
			leafLits := make([]Lit, len(dec.leaves))
			for i, leaf := range dec.leaves {
				leafLits[i] = build(leaf)
			}
			l := resynthesize(ng, dec.f, leafLits)
			m[id] = l
			return l
		}
		f := g.fanins[id]
		l := ng.Maj(
			build(f[0].Node()).NotCond(f[0].IsCompl()),
			build(f[1].Node()).NotCond(f[1].IsCompl()),
			build(f[2].Node()).NotCond(f[2].IsCompl()),
		)
		m[id] = l
		return l
	}
	for _, po := range g.pos {
		ng.AddPO(build(po.Node()).NotCond(po.IsCompl()))
	}
	if ng.NumGates() > g.NumGates() {
		return g
	}
	return ng
}

// Rewrite iterates RewriteOnce to a fixpoint.
func Rewrite(g *MIG) *MIG {
	cur := g
	for i := 0; i < 8; i++ {
		next := RewriteOnce(cur)
		if next.NumGates() >= cur.NumGates() {
			return cur
		}
		cur = next
	}
	return cur
}

// resynCost estimates the gate count of resynthesize without building.
func resynCost(f tt.TT) int {
	scratch := New(f.NumVars())
	leaves := make([]Lit, f.NumVars())
	for i := range leaves {
		leaves[i] = scratch.PI(i)
	}
	resynthesize(scratch, f, leaves)
	return scratch.NumGates()
}

// resynthesize builds f over the leaf literals, choosing the cheaper of
// the factored form and a majority-aware Shannon decomposition.
func resynthesize(g *MIG, f tt.TT, leaves []Lit) Lit {
	// Build both candidates in scratch graphs to compare real costs,
	// then replay the winner in g (strashing dedups any overlap).
	costOf := func(build func(sg *MIG, sl []Lit) Lit) int {
		sg := New(len(leaves))
		sl := make([]Lit, len(leaves))
		for i := range sl {
			sl[i] = sg.PI(i)
		}
		build(sg, sl)
		return sg.NumGates()
	}
	factored := func(sg *MIG, sl []Lit) Lit {
		return instantiateExpr(sg, sop.Factor(sop.MinimizeTT(f)), sl)
	}
	shannon := func(sg *MIG, sl []Lit) Lit {
		return shannonMaj(sg, f, sl, map[string]Lit{})
	}
	if costOf(factored) <= costOf(shannon) {
		return factored(g, leaves)
	}
	return shannon(g, leaves)
}

func shannonMaj(g *MIG, f tt.TT, leaves []Lit, memo map[string]Lit) Lit {
	if f.IsConst0() {
		return LitFalse
	}
	if f.IsConst1() {
		return LitTrue
	}
	key := f.Hex()
	if l, ok := memo[key]; ok {
		return l
	}
	var out Lit
	if a, b, c, ok := majOfVars(f); ok {
		out = g.Maj(
			leaves[a.v].NotCond(a.compl),
			leaves[b.v].NotCond(b.compl),
			leaves[c.v].NotCond(c.compl),
		)
	} else {
		v := bestVar(f)
		out = g.Mux(leaves[v],
			shannonMaj(g, f.Cofactor(v, true), leaves, memo),
			shannonMaj(g, f.Cofactor(v, false), leaves, memo))
	}
	memo[key] = out
	return out
}

func instantiateExpr(g *MIG, e *sop.Expr, leaves []Lit) Lit {
	switch e.Kind {
	case sop.ExprConst0:
		return LitFalse
	case sop.ExprConst1:
		return LitTrue
	case sop.ExprLit:
		return leaves[e.Var].NotCond(!e.Pos)
	case sop.ExprAnd:
		out := LitTrue
		for _, a := range e.Args {
			out = g.And(out, instantiateExpr(g, a, leaves))
		}
		return out
	case sop.ExprOr:
		out := LitFalse
		for _, a := range e.Args {
			out = g.Or(out, instantiateExpr(g, a, leaves))
		}
		return out
	}
	panic("mig: bad expression")
}

// --- local structural analysis ------------------------------------------

func (g *MIG) refCounts() []int {
	refs := make([]int, g.NumObjs())
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		for _, f := range g.fanins[id] {
			refs[f.Node()]++
		}
	}
	for _, po := range g.pos {
		refs[po.Node()]++
	}
	return refs
}

func (g *MIG) reconvCut(root, maxLeaves int) []int {
	leaves := []int{root}
	inCut := map[int]bool{root: true}
	visited := map[int]bool{root: true}
	cost := func(id int) int {
		if !g.IsGate(id) {
			return 1 << 30
		}
		c := 0
		for _, f := range g.fanins[id] {
			if !visited[f.Node()] && f.Node() != 0 {
				c++
			}
		}
		return c
	}
	for {
		best, bestCost := -1, 1<<30
		for _, l := range leaves {
			if c := cost(l); c < bestCost {
				best, bestCost = l, c
			}
		}
		if best == -1 || bestCost >= 1<<30 || len(leaves)-1+bestCost > maxLeaves {
			break
		}
		kept := leaves[:0]
		for _, l := range leaves {
			if l != best {
				kept = append(kept, l)
			}
		}
		leaves = kept
		delete(inCut, best)
		for _, f := range g.fanins[best] {
			fid := f.Node()
			if fid == 0 {
				continue // constants are always available
			}
			visited[fid] = true
			if !inCut[fid] {
				inCut[fid] = true
				leaves = append(leaves, fid)
			}
		}
	}
	for i := 1; i < len(leaves); i++ {
		for j := i; j > 0 && leaves[j] < leaves[j-1]; j-- {
			leaves[j], leaves[j-1] = leaves[j-1], leaves[j]
		}
	}
	return leaves
}

func (g *MIG) cutTT(root int, leaves []int) tt.TT {
	n := len(leaves)
	local := make(map[int]tt.TT, 2*n)
	local[0] = tt.New(n)
	for i, leaf := range leaves {
		local[leaf] = tt.Var(i, n)
	}
	var eval func(id int) tt.TT
	eval = func(id int) tt.TT {
		if t, ok := local[id]; ok {
			return t
		}
		var t [3]tt.TT
		for k, f := range g.fanins[id] {
			t[k] = eval(f.Node())
			if f.IsCompl() {
				t[k] = t[k].Not()
			}
		}
		r := t[0].And(t[1]).Or(t[0].And(t[2])).Or(t[1].And(t[2]))
		local[id] = r
		return r
	}
	return eval(root)
}

func (g *MIG) mffcBounded(id int, refs []int, leaves []int) int {
	boundary := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		boundary[l] = true
	}
	var deref func(id int) int
	deref = func(id int) int {
		n := 1
		for _, f := range g.fanins[id] {
			fid := f.Node()
			refs[fid]--
			if refs[fid] == 0 && g.IsGate(fid) && !boundary[fid] {
				n += deref(fid)
			}
		}
		return n
	}
	var reref func(id int)
	reref = func(id int) {
		for _, f := range g.fanins[id] {
			fid := f.Node()
			if refs[fid] == 0 && g.IsGate(fid) && !boundary[fid] {
				reref(fid)
			}
			refs[fid]++
		}
	}
	n := deref(id)
	reref(id)
	return n
}

// --- Diversity scores (the paper's framework on MIGs) -------------------

// Profile carries the diversity artifacts of one MIG.
type Profile struct {
	Gates     int
	Levels    int
	Reduction float64
}

// NewProfile profiles a MIG, running one rewriting step.
func NewProfile(g *MIG) Profile {
	p := Profile{Gates: g.NumGates(), Levels: g.NumLevels()}
	if p.Gates > 0 {
		opt := RewriteOnce(g)
		p.Reduction = float64(p.Gates-opt.NumGates()) / float64(p.Gates)
	}
	return p
}

// RGC is the Relative Gate Count difference over majority gates.
func RGC(a, b Profile) float64 {
	den := a.Gates + b.Gates
	if den == 0 {
		return 0
	}
	return math.Abs(float64(a.Gates-b.Gates)) / float64(den)
}

// RLC is the Relative Level Count difference.
func RLC(a, b Profile) float64 {
	den := a.Levels + b.Levels
	if den == 0 {
		return 0
	}
	return math.Abs(float64(a.Levels-b.Levels)) / float64(den)
}

// RewriteScore is Eq. 3 with the MIG cone-rewriting operator.
func RewriteScore(a, b Profile) float64 {
	return math.Abs(a.Reduction - b.Reduction)
}
