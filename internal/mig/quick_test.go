package mig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tt"
)

// TestQuickRecipesEquivalent property-tests every MIG recipe and the
// rewriting pass on random functions.
func TestQuickRecipesEquivalent(t *testing.T) {
	f := func(w uint64, recipeIdx uint8) bool {
		fn := tt.FromWords(6, []uint64{w})
		recipes := Recipes()
		rec := recipes[int(recipeIdx)%len(recipes)]
		g := rec.Build([]tt.TT{fn})
		if !g.OutputTTs()[0].Equal(fn) {
			return false
		}
		ng := RewriteOnce(g)
		return ng.OutputTTs()[0].Equal(fn) && ng.NumGates() <= g.NumGates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMajorityAlgebra checks the majority axioms on random literal
// triples: invariance under permutation and the self-duality law.
func TestQuickMajorityAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New(5)
		pick := func() Lit { return g.PI(r.Intn(5)).NotCond(r.Intn(2) == 1) }
		a, b, c := pick(), pick(), pick()
		m := g.Maj(a, b, c)
		// Permutation invariance (all six orders give the same literal).
		if g.Maj(a, c, b) != m || g.Maj(b, a, c) != m ||
			g.Maj(b, c, a) != m || g.Maj(c, a, b) != m || g.Maj(c, b, a) != m {
			return false
		}
		// Self-duality.
		return g.Maj(a.Not(), b.Not(), c.Not()) == m.Not()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickConversionRoundTrip checks MIG->AIG->MIG equivalence.
func TestQuickConversionRoundTrip(t *testing.T) {
	f := func(w uint64) bool {
		fn := tt.FromWords(5, []uint64{w & (1<<32 - 1)})
		fn = fn.Expand(5)
		g := SynthShannon([]tt.TT{fn})
		back := FromAIG(g.ToAIG())
		return back.OutputTTs()[0].Equal(fn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
