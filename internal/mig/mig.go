// Package mig implements Majority-Inverter Graphs — the second "other
// logic graph type" named by the paper's future work. Every node is a
// three-input majority gate with complement edges; AND and OR are
// majorities with a constant input, so MIGs strictly generalize AIGs
// while enabling majority-algebra optimizations that AIGs cannot
// express. The package provides the data structure, AIG conversions,
// three synthesis recipes, a cone-rewriting optimizer, and the diversity
// scores of the paper's framework.
package mig

import (
	"fmt"
	"sort"

	"repro/internal/tt"
)

// Lit is an edge literal: 2*node + complement.
type Lit uint32

// Constant literals.
const (
	LitFalse Lit = 0
	LitTrue  Lit = 1
)

// MakeLit builds a literal.
func MakeLit(node int, compl bool) Lit {
	l := Lit(node) << 1
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node id.
func (l Lit) Node() int { return int(l >> 1) }

// IsCompl reports the complement flag.
func (l Lit) IsCompl() bool { return l&1 == 1 }

// Not complements the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotCond complements when c holds.
func (l Lit) NotCond(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// MIG is a structurally hashed majority-inverter graph. Node 0 is the
// constant, 1..numPIs the inputs, higher ids MAJ3 nodes in topological
// order. Nodes are normalized: fanins sorted, at most one complemented
// fanin (majority is self-dual, so excess complements flip the output).
type MIG struct {
	numPIs int
	fanins [][3]Lit
	level  []int32
	strash map[[3]Lit]int
	pos    []Lit
}

// New creates a MIG with the given number of inputs.
func New(numPIs int) *MIG {
	g := &MIG{
		numPIs: numPIs,
		fanins: make([][3]Lit, numPIs+1),
		level:  make([]int32, numPIs+1),
		strash: make(map[[3]Lit]int),
	}
	return g
}

// NumPIs returns the input count.
func (g *MIG) NumPIs() int { return g.numPIs }

// NumPOs returns the output count.
func (g *MIG) NumPOs() int { return len(g.pos) }

// NumObjs returns constant + inputs + gates.
func (g *MIG) NumObjs() int { return len(g.fanins) }

// NumGates returns the majority-gate count.
func (g *MIG) NumGates() int { return len(g.fanins) - g.numPIs - 1 }

// PI returns input literal i.
func (g *MIG) PI(i int) Lit {
	if i < 0 || i >= g.numPIs {
		panic(fmt.Sprintf("mig: PI %d out of range", i))
	}
	return MakeLit(i+1, false)
}

// PO returns output literal i.
func (g *MIG) PO(i int) Lit { return g.pos[i] }

// AddPO appends an output.
func (g *MIG) AddPO(l Lit) int {
	g.pos = append(g.pos, l)
	return len(g.pos) - 1
}

// IsGate reports whether id is a majority gate.
func (g *MIG) IsGate(id int) bool { return id > g.numPIs }

// IsPI reports whether id is an input.
func (g *MIG) IsPI(id int) bool { return id >= 1 && id <= g.numPIs }

// Fanins returns the three fanins of gate id.
func (g *MIG) Fanins(id int) [3]Lit {
	if !g.IsGate(id) {
		panic(fmt.Sprintf("mig: node %d is not a gate", id))
	}
	return g.fanins[id]
}

// Level returns the logic level of id.
func (g *MIG) Level(id int) int { return int(g.level[id]) }

// NumLevels returns the output depth.
func (g *MIG) NumLevels() int {
	d := int32(0)
	for _, l := range g.pos {
		if lv := g.level[l.Node()]; lv > d {
			d = lv
		}
	}
	return int(d)
}

// Maj returns the majority of three literals, applying the majority
// axioms (Ω.M: duplicate and complementary absorption), normalizing the
// complement parity, and structurally hashing.
func (g *MIG) Maj(a, b, c Lit) Lit {
	// Duplicate absorption: M(x, x, y) = x.
	switch {
	case a == b || a == c:
		return a
	case b == c:
		return b
	}
	// Complement absorption: M(x, !x, y) = y.
	switch {
	case a == b.Not():
		return c
	case a == c.Not():
		return b
	case b == c.Not():
		return a
	}
	// Normalize complement parity: at most one complemented fanin.
	f := [3]Lit{a, b, c}
	compl := 0
	for _, l := range f {
		if l.IsCompl() {
			compl++
		}
	}
	out := false
	if compl >= 2 {
		for i := range f {
			f[i] = f[i].Not()
		}
		out = true
	}
	sort.Slice(f[:], func(i, j int) bool { return f[i] < f[j] })
	if id, ok := g.strash[f]; ok {
		return MakeLit(id, false).NotCond(out)
	}
	for _, l := range f {
		if l.Node() >= g.NumObjs() {
			panic("mig: Maj fanin references nonexistent node")
		}
	}
	id := len(g.fanins)
	g.fanins = append(g.fanins, f)
	lv := g.level[f[0].Node()]
	for _, l := range f[1:] {
		if l2 := g.level[l.Node()]; l2 > lv {
			lv = l2
		}
	}
	g.level = append(g.level, lv+1)
	g.strash[f] = id
	return MakeLit(id, false).NotCond(out)
}

// And returns AND(a, b) = M(a, b, 0).
func (g *MIG) And(a, b Lit) Lit { return g.Maj(a, b, LitFalse) }

// Or returns OR(a, b) = M(a, b, 1).
func (g *MIG) Or(a, b Lit) Lit { return g.Maj(a, b, LitTrue) }

// Mux returns sel ? t : e.
func (g *MIG) Mux(sel, t, e Lit) Lit {
	if t == e {
		return t
	}
	return g.Or(g.And(sel, t), g.And(sel.Not(), e))
}

// Xor returns XOR(a, b).
func (g *MIG) Xor(a, b Lit) Lit { return g.Mux(a, b.Not(), b) }

// SimAll computes every node's truth table.
func (g *MIG) SimAll() []tt.TT {
	n := g.numPIs
	if n > tt.MaxVars {
		panic(fmt.Sprintf("mig: SimAll limited to %d inputs", tt.MaxVars))
	}
	tabs := make([]tt.TT, g.NumObjs())
	tabs[0] = tt.New(n)
	for i := 1; i <= n; i++ {
		tabs[i] = tt.Var(i-1, n)
	}
	for id := n + 1; id < g.NumObjs(); id++ {
		var t [3]tt.TT
		for k, f := range g.fanins[id] {
			t[k] = tabs[f.Node()]
			if f.IsCompl() {
				t[k] = t[k].Not()
			}
		}
		tabs[id] = t[0].And(t[1]).Or(t[0].And(t[2])).Or(t[1].And(t[2]))
	}
	return tabs
}

// OutputTTs returns every output's truth table.
func (g *MIG) OutputTTs() []tt.TT {
	tabs := g.SimAll()
	out := make([]tt.TT, len(g.pos))
	for i, po := range g.pos {
		t := tabs[po.Node()]
		if po.IsCompl() {
			t = t.Not()
		}
		out[i] = t
	}
	return out
}

// Cleanup returns a copy containing only output-reachable gates.
func (g *MIG) Cleanup() *MIG {
	ng := New(g.numPIs)
	m := make([]Lit, g.NumObjs())
	for i := range m {
		m[i] = Lit(0xFFFFFFFF)
	}
	m[0] = LitFalse
	for i := 1; i <= g.numPIs; i++ {
		m[i] = MakeLit(i, false)
	}
	var build func(id int) Lit
	build = func(id int) Lit {
		if m[id] != Lit(0xFFFFFFFF) {
			return m[id]
		}
		f := g.fanins[id]
		l := ng.Maj(
			build(f[0].Node()).NotCond(f[0].IsCompl()),
			build(f[1].Node()).NotCond(f[1].IsCompl()),
			build(f[2].Node()).NotCond(f[2].IsCompl()),
		)
		m[id] = l
		return l
	}
	for _, po := range g.pos {
		ng.AddPO(build(po.Node()).NotCond(po.IsCompl()))
	}
	return ng
}

// Check validates structural invariants.
func (g *MIG) Check() error {
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		f := g.fanins[id]
		compl := 0
		for k, l := range f {
			if l.Node() >= id {
				return fmt.Errorf("mig: node %d has forward fanin", id)
			}
			if k > 0 && f[k-1] > l {
				return fmt.Errorf("mig: node %d fanins unsorted", id)
			}
			if l.IsCompl() {
				compl++
			}
		}
		if compl > 1 {
			return fmt.Errorf("mig: node %d has %d complemented fanins", id, compl)
		}
	}
	for i, po := range g.pos {
		if po.Node() >= g.NumObjs() {
			return fmt.Errorf("mig: PO %d dangling", i)
		}
	}
	return nil
}

// Stats summarizes the graph.
type Stats struct {
	PIs, POs, Gates, Levels int
}

// Stat returns summary statistics.
func (g *MIG) Stat() Stats {
	return Stats{PIs: g.numPIs, POs: g.NumPOs(), Gates: g.NumGates(), Levels: g.NumLevels()}
}

func (s Stats) String() string {
	return fmt.Sprintf("i/o = %d/%d  maj = %d  lev = %d", s.PIs, s.POs, s.Gates, s.Levels)
}
