package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a fixed registry state under a frozen clock so
// both exposition formats are byte-for-byte reproducible.
func goldenRegistry(t *testing.T) *Registry {
	t.Helper()
	base := time.Date(2025, 1, 2, 3, 4, 5, 0, time.UTC)
	now = func() time.Time { return base }
	t.Cleanup(func() { now = time.Now })
	r := NewRegistry()
	now = func() time.Time { return base.Add(2500 * time.Millisecond) }

	r.Counter("harness/specs_done").Add(3)
	r.Counter("harness/pairs").Add(63)
	r.Gauge("harness/specs_total").Set(20)
	h := r.Histogram("flow/dc2/gates_removed")
	for _, v := range []float64{0, 4, 12, 12, 40} {
		h.Observe(v)
	}
	r.RecordSpan("synth/sop", 1500*time.Microsecond)
	r.RecordSpan("synth/sop", 2*time.Millisecond)
	r.RecordSpan("flow/dc2", 80*time.Millisecond)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := goldenRegistry(t)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	r := goldenRegistry(t)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Guard against golden drift that is still valid JSON but broken.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	checkGolden(t, "metrics.json.golden", buf.Bytes())
}

func TestWriteNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil prometheus = %q, %v", buf.String(), err)
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil || buf.String() != "{}\n" {
		t.Fatalf("nil json = %q, %v", buf.String(), err)
	}
}
