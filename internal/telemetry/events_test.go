package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEventLoggerGolden pins the exact bytes of an event line: ts
// first, event second, caller keys sorted, reserved keys skipped, and
// unmarshalable values degraded to their fmt.Sprint form. Any encoder
// change that reorders or reformats output breaks this test — that is
// the point, downstream tooling diffs these files.
func TestEventLoggerGolden(t *testing.T) {
	defer func(orig func() time.Time) { now = orig }(now)
	now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 123456789, time.UTC) }

	var buf bytes.Buffer
	l := NewEventLogger(&buf)
	l.Log("golden", map[string]any{
		"zeta":   1,
		"alpha":  "x",
		"nested": map[string]int{"b": 2, "a": 1},
		"cplx":   complex(1, 2), // not JSON-marshalable: falls back to fmt.Sprint
		"ts":     "spoofed",     // reserved: skipped
		"event":  "spoofed",     // reserved: skipped
	})
	want := `{"ts":"2026-08-07T12:00:00.123456789Z","event":"golden","alpha":"x","cplx":"(1+2i)","nested":{"a":1,"b":2},"zeta":1}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got %q\nwant %q", got, want)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("unexpected logger error: %v", err)
	}
}

func TestEventLoggerJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLogger(&buf)
	l.Log("run_start", map[string]any{"seed": 7, "specs": 3})
	l.Log("spec_done", map[string]any{"spec": "fulladder", "line": "[1/3] fulladder"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first["event"] != "run_start" || first["seed"] != float64(7) {
		t.Fatalf("bad first event: %v", first)
	}
	if _, ok := first["ts"]; !ok {
		t.Fatal("missing ts")
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["line"] != "[1/3] fulladder" {
		t.Fatalf("bad embedded progress line: %v", second)
	}
}

func TestEventLoggerNil(t *testing.T) {
	var l *EventLogger
	l.Log("x", nil) // must not panic
	if NewEventLogger(nil) != nil {
		t.Fatal("nil writer should give nil logger")
	}
}

func TestEventLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLogger(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Log("tick", map[string]any{"w": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("interleaved write produced bad JSON: %v", err)
		}
	}
}
