package trace

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
)

// traceparentHeader is the W3C Trace Context header carrying the
// caller's span identity: 00-<32 hex trace-id>-<16 hex span-id>-<2 hex
// flags>. We always send flags 01 (sampled) — retention is decided at
// the collector tail, not at the edge.
const traceparentHeader = "traceparent"

// TraceIDHeader is the response header aigd echoes so callers can find
// their request in /v1/debug/traces without parsing traceparent.
const TraceIDHeader = "X-Trace-Id"

// Traceparent renders sc as a W3C traceparent value ("" when invalid).
func Traceparent(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent value. Unknown versions are
// accepted if the version-00 fields parse (per spec, forward compat);
// all-zero IDs are rejected.
func ParseTraceparent(v string) (SpanContext, error) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: want 4 dash-separated fields", v)
	}
	if len(parts[0]) != 2 {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: bad version field", v)
	}
	if parts[0] == "ff" {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: version ff is forbidden", v)
	}
	var sc SpanContext
	tid, err := ParseTraceID(parts[1])
	if err != nil {
		return SpanContext{}, err
	}
	sc.TraceID = tid
	if len(parts[2]) != 2*len(sc.SpanID) {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: span ID wants %d hex digits", v, 2*len(sc.SpanID))
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(parts[2])); err != nil {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: span ID: %v", v, err)
	}
	if sc.SpanID.IsZero() {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: span ID is the invalid all-zero value", v)
	}
	return sc, nil
}

// Inject writes the innermost span context in ctx onto h as a
// traceparent header. No-op when ctx carries no valid context.
func Inject(ctx context.Context, h http.Header) {
	if tp := Traceparent(FromContext(ctx)); tp != "" {
		h.Set(traceparentHeader, tp)
	}
}

// Extract reads the traceparent header from h. ok is false when the
// header is absent or malformed — callers then start a fresh root.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(traceparentHeader)
	if v == "" {
		return SpanContext{}, false
	}
	sc, err := ParseTraceparent(v)
	if err != nil {
		return SpanContext{}, false
	}
	return sc, true
}
