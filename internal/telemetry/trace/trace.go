// Package trace is the causal layer on top of internal/telemetry: a
// zero-dependency request-tracing model with W3C traceparent
// propagation, parent/child span trees, key/value attributes, and a
// bounded in-memory TraceStore with tail-based retention (see store.go).
//
// Where telemetry spans answer "how long does operation X take in
// aggregate", trace spans answer "what did *this* request spend its
// time on": every span carries a TraceID shared by everything the
// request touched — the client call, the handler, the queue wait, the
// async job it spawned, the spill write the job performed — and a
// parent SpanID stitching them into one tree, retrievable from
// /v1/debug/traces/{id} long after the request finished.
//
// The package follows telemetry's enablement contract: everything is a
// cheap no-op — one atomic load, no allocation — until a collector is
// installed with SetCollector. Ended spans are additionally recorded
// into the telemetry registry's span histograms under their span name,
// so enabling tracing strictly adds data; nothing the aggregate layer
// reported before regresses.
package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/telemetry"
)

// TraceID identifies one causally connected request tree (16 bytes,
// rendered as 32 lowercase hex digits — the W3C trace-id field).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, 16 hex digits).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 lowercase hex digits. The all-zero ID is
// rejected (the W3C invalid value).
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 2*len(t) {
		return TraceID{}, fmt.Errorf("trace: trace ID %q: want %d hex digits", s, 2*len(t))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("trace: trace ID %q: %v", s, err)
	}
	if t.IsZero() {
		return TraceID{}, fmt.Errorf("trace: trace ID %q is the invalid all-zero value", s)
	}
	return t, nil
}

// SpanContext is the propagated identity of a span: enough to parent a
// remote child and to find the trace later, nothing more.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// --- ID generation -----------------------------------------------------

// idSource is a process-wide PRNG for trace/span IDs, seeded once from
// crypto/rand so concurrent daemons never collide. IDs need uniqueness,
// not unpredictability, so a locked math/rand keeps Start cheap.
var idSource = struct {
	mu  sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(cryptoSeed()))}

func cryptoSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; degrade to a
		// fixed seed rather than failing instrumentation.
		return 1
	}
	return int64(binary.LittleEndian.Uint64(b[:]) & 0x7FFFFFFFFFFFFFFF)
}

func newTraceID() TraceID {
	var t TraceID
	idSource.mu.Lock()
	binary.LittleEndian.PutUint64(t[:8], idSource.rng.Uint64())
	binary.LittleEndian.PutUint64(t[8:], idSource.rng.Uint64())
	idSource.mu.Unlock()
	if t.IsZero() {
		t[0] = 1
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	idSource.mu.Lock()
	binary.LittleEndian.PutUint64(s[:], idSource.rng.Uint64())
	idSource.mu.Unlock()
	if s.IsZero() {
		s[0] = 1
	}
	return s
}

// --- collector ---------------------------------------------------------

// collector holds the installed TraceStore. It stays nil — and Start
// stays a single atomic load returning a nil span — until SetCollector.
var collector atomic.Pointer[Store]

// SetCollector installs the store every ended span is recorded into
// (nil uninstalls and returns tracing to no-ops). The same store should
// be the one served on /v1/debug/traces.
func SetCollector(s *Store) {
	if s == nil {
		collector.Store(nil)
		return
	}
	collector.Store(s)
}

// Collector returns the installed store, or nil when tracing is off.
func Collector() *Store { return collector.Load() }

// --- context plumbing --------------------------------------------------

type ctxSpanKey struct{}   // carries *Span (a live local span)
type ctxRemoteKey struct{} // carries SpanContext (a parent from the wire)

// ContextWithRemote returns ctx carrying sc as the parent for the next
// Start — the receive side of traceparent propagation, and the hand-off
// point when an async job must outlive the request context it came
// from. An invalid sc returns ctx unchanged.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxRemoteKey{}, sc)
}

// FromContext returns the identity of the innermost span in ctx: a live
// local span's context if one is open, else a remote parent installed
// by ContextWithRemote, else the zero (invalid) SpanContext.
func FromContext(ctx context.Context) SpanContext {
	if sp, ok := ctx.Value(ctxSpanKey{}).(*Span); ok && sp != nil {
		return sp.sc
	}
	if sc, ok := ctx.Value(ctxRemoteKey{}).(SpanContext); ok {
		return sc
	}
	return SpanContext{}
}

// SpanFromContext returns the live local span in ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxSpanKey{}).(*Span)
	return sp
}

// EnsureRoot returns ctx guaranteed to carry a span context: when none
// is present a fresh root identity is attached as a remote parent.
// Clients use it so every outbound request carries a traceparent even
// when the client process itself records no spans.
func EnsureRoot(ctx context.Context) context.Context {
	if FromContext(ctx).Valid() {
		return ctx
	}
	return ContextWithRemote(ctx, SpanContext{TraceID: newTraceID(), SpanID: newSpanID()})
}

// --- spans -------------------------------------------------------------

// Attr is one key/value annotation on a span or event. Keys are
// compile-time snake_case constants (enforced by the aiglint metricname
// analyzer over trace.A and Span.Attr call sites); values are free.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// A constructs an attribute.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event is a point-in-time annotation inside a span (a cache lookup, a
// fault firing, an idempotency replay).
type Event struct {
	Name  string `json:"name"`
	Time  time.Time
	Attrs []Attr
}

// Span is one live operation within a trace. A nil span (tracing
// disabled) is a no-op on every method, so call sites need no guard.
// End is idempotent; attributes and events after End are dropped.
type Span struct {
	store  *Store
	name   string
	sc     SpanContext
	parent SpanID
	// localRoot marks a span with no live local parent: the place a
	// trace enters this process (a fresh root, or a child of a remote
	// traceparent). The store treats the end of a local root as the
	// trace's completion signal.
	localRoot bool
	start     time.Time
	dropped   bool // over the per-trace span budget: not recorded

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	errMsg string
	ended  bool
}

// maxAttrsPerSpan and maxEventsPerSpan bound one span's annotation
// growth so a loop annotating in flight cannot grow memory without
// limit. Overflow is silently dropped (the span itself survives).
const (
	maxAttrsPerSpan  = 32
	maxEventsPerSpan = 64
)

// Start opens a span named name as a child of the innermost span
// context in ctx (a fresh root when there is none) and returns a
// context carrying it. When no collector is installed it returns
// (ctx, nil) after a single atomic load — the disabled path stays
// within noise of a bare call (see BenchmarkTraceDisabled).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	st := collector.Load()
	if st == nil {
		return ctx, nil
	}
	sp := &Span{store: st, name: name, start: time.Now()}
	switch {
	case SpanFromContext(ctx) != nil:
		parent := SpanFromContext(ctx)
		sp.sc.TraceID = parent.sc.TraceID
		sp.parent = parent.sc.SpanID
	default:
		if rsc, ok := ctx.Value(ctxRemoteKey{}).(SpanContext); ok && rsc.Valid() {
			sp.sc.TraceID = rsc.TraceID
			sp.parent = rsc.SpanID
		} else {
			sp.sc.TraceID = newTraceID()
		}
		sp.localRoot = true
	}
	sp.sc.SpanID = newSpanID()
	st.spanStarted(sp)
	return context.WithValue(ctx, ctxSpanKey{}, sp), sp
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Context returns the span's propagated identity (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Attr attaches one key/value annotation and returns the span for
// chaining. key must be a compile-time snake_case constant.
func (s *Span) Attr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if !s.ended && len(s.attrs) < maxAttrsPerSpan {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
	return s
}

// Event records a point-in-time annotation inside the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended && len(s.events) < maxEventsPerSpan {
		s.events = append(s.events, Event{Name: name, Time: time.Now(), Attrs: attrs})
	}
	s.mu.Unlock()
}

// AddEvent records an event on the innermost live span in ctx (no-op
// when there is none). name must be a compile-time snake_case constant.
func AddEvent(ctx context.Context, name string, attrs ...Attr) {
	SpanFromContext(ctx).Event(name, attrs...)
}

// Fail marks the span errored. The first non-nil error wins.
func (s *Span) Fail(err error) *Span {
	if s == nil || err == nil {
		return s
	}
	s.mu.Lock()
	if !s.ended && s.errMsg == "" {
		s.errMsg = err.Error()
	}
	s.mu.Unlock()
	return s
}

// End closes the span: its duration is recorded under its name in the
// telemetry registry's span histograms (the pre-existing aggregate
// sink) and the completed span is handed to the trace store. End is
// idempotent — a second call is a no-op, so error paths may End a span
// the happy path would have Ended later.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	d := time.Since(s.start)
	s.mu.Unlock()
	telemetry.Default().RecordSpan(s.name, d)
	s.store.spanEnded(s, d)
}
