package trace

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// withStore installs a fresh collector for the test and removes it on
// cleanup so no spans leak across tests.
func withStore(t *testing.T, cfg StoreConfig) *Store {
	t.Helper()
	st := NewStore(cfg)
	SetCollector(st)
	t.Cleanup(func() { SetCollector(nil) })
	return st
}

func TestStartDisabledIsNoop(t *testing.T) {
	SetCollector(nil)
	ctx, sp := Start(context.Background(), "test/op")
	if sp != nil {
		t.Fatal("disabled Start must return a nil span")
	}
	if ctx != context.Background() {
		t.Fatal("disabled Start must return ctx unchanged")
	}
	// All nil-span methods must be safe.
	sp.Attr("k", 1).Fail(errors.New("x"))
	sp.Event("e")
	sp.End()
	AddEvent(ctx, "e")
	if FromContext(ctx).Valid() {
		t.Fatal("no span context expected")
	}
}

func TestParentChildSameTrace(t *testing.T) {
	st := withStore(t, StoreConfig{})
	ctx, root := Start(context.Background(), "test/root")
	cctx, child := Start(ctx, "test/child")
	_, grand := Start(cctx, "test/grandchild")
	if child.Context().TraceID != root.Context().TraceID || grand.Context().TraceID != root.Context().TraceID {
		t.Fatal("children must share the root's trace ID")
	}
	if child.parent != root.Context().SpanID {
		t.Fatal("child must be parented to root")
	}
	if !root.localRoot || child.localRoot || grand.localRoot {
		t.Fatal("only the first span is the local root")
	}
	grand.End()
	child.End()
	root.End()
	v, ok := st.Get(root.Context().TraceID.String())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(v.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(v.Spans))
	}
	if v.Open {
		t.Fatal("trace should be complete")
	}
}

func TestRemoteParent(t *testing.T) {
	st := withStore(t, StoreConfig{})
	remote := SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}
	ctx := ContextWithRemote(context.Background(), remote)
	_, sp := Start(ctx, "test/handler")
	if sp.Context().TraceID != remote.TraceID {
		t.Fatal("span must adopt the remote trace ID")
	}
	if sp.parent != remote.SpanID {
		t.Fatal("span must be parented to the remote span")
	}
	if !sp.localRoot {
		t.Fatal("a remote-parented span is the local root")
	}
	sp.End()
	if _, ok := st.Get(remote.TraceID.String()); !ok {
		t.Fatal("trace must be retrievable by the remote trace ID")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}
	tp := Traceparent(sc)
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("bad traceparent %q", tp)
	}
	got, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}

	h := http.Header{}
	Inject(ContextWithRemote(context.Background(), sc), h)
	got2, ok := Extract(h)
	if !ok || got2 != sc {
		t.Fatalf("header round trip failed: %+v ok=%v", got2, ok)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // short version
		"00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
	}
	for _, v := range bad {
		if _, err := ParseTraceparent(v); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", v)
		}
	}
}

func TestEnsureRoot(t *testing.T) {
	ctx := EnsureRoot(context.Background())
	sc := FromContext(ctx)
	if !sc.Valid() {
		t.Fatal("EnsureRoot must attach a valid context")
	}
	if got := FromContext(EnsureRoot(ctx)); got != sc {
		t.Fatal("EnsureRoot must not replace an existing context")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	st := withStore(t, StoreConfig{})
	_, sp := Start(context.Background(), "test/op")
	sp.End()
	sp.End() // second End must not double-record
	v, _ := st.Get(sp.Context().TraceID.String())
	if len(v.Spans) != 1 {
		t.Fatalf("double End recorded %d spans", len(v.Spans))
	}
}

func TestSpanFailAndAttrs(t *testing.T) {
	st := withStore(t, StoreConfig{})
	_, sp := Start(context.Background(), "test/op")
	sp.Attr("endpoint", "/v1/test").Attr("n", 3)
	sp.Event("cache_lookup", A("outcome", "miss"))
	sp.Fail(errors.New("boom"))
	sp.Fail(errors.New("later")) // first error wins
	sp.End()
	v, _ := st.Get(sp.Context().TraceID.String())
	if !v.Errored {
		t.Fatal("trace should be errored")
	}
	s := v.Spans[0]
	if s.Error != "boom" {
		t.Fatalf("error = %q, want boom", s.Error)
	}
	if len(s.Attrs) != 2 || s.Attrs[0].Key != "endpoint" {
		t.Fatalf("attrs = %+v", s.Attrs)
	}
	if len(s.Events) != 1 || s.Events[0].Name != "cache_lookup" {
		t.Fatalf("events = %+v", s.Events)
	}
	if v.Endpoint != "/v1/test" {
		t.Fatalf("endpoint = %q", v.Endpoint)
	}
}

func TestSpanBudget(t *testing.T) {
	st := withStore(t, StoreConfig{MaxSpans: 4})
	ctx, root := Start(context.Background(), "test/root")
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "test/child")
		sp.End()
	}
	root.End()
	v, _ := st.Get(root.Context().TraceID.String())
	if len(v.Spans) != 4 {
		t.Fatalf("got %d spans, want 4 (budget)", len(v.Spans))
	}
	if v.DroppedSpans != 7 {
		t.Fatalf("dropped = %d, want 7", v.DroppedSpans)
	}
	if v.Open {
		t.Fatal("dropped spans must not hold the trace open")
	}
}

func TestEvictionRetainsErroredAndSlow(t *testing.T) {
	st := withStore(t, StoreConfig{Capacity: 8, SlowKeep: 2, SampleRate: 0.0001})
	mk := func(name string, fail bool, d time.Duration) TraceID {
		_, sp := Start(context.Background(), name)
		sp.start = sp.start.Add(-d) // backdate so duration is deterministic
		if fail {
			sp.Fail(errors.New("x"))
		}
		sp.End()
		return sp.Context().TraceID
	}
	errID := mk("test/err", true, time.Millisecond)
	slowID := mk("test/slow", false, time.Hour)
	var fastIDs []TraceID
	for i := 0; i < 40; i++ {
		fastIDs = append(fastIDs, mk("test/fast", false, time.Microsecond))
	}
	if st.Len() > 8 {
		t.Fatalf("store over capacity: %d", st.Len())
	}
	if _, ok := st.Get(errID.String()); !ok {
		t.Fatal("errored trace evicted")
	}
	if _, ok := st.Get(slowID.String()); !ok {
		t.Fatal("slowest trace evicted")
	}
	// With SampleRate ~0, most fast traces must be gone.
	kept := 0
	for _, id := range fastIDs {
		if _, ok := st.Get(id.String()); ok {
			kept++
		}
	}
	if kept > 7 {
		t.Fatalf("sampling kept %d unremarkable traces", kept)
	}
}

func TestOpenTracesSurviveEviction(t *testing.T) {
	st := withStore(t, StoreConfig{Capacity: 4, SampleRate: 1})
	var open []*Span
	for i := 0; i < 3; i++ {
		_, sp := Start(context.Background(), "test/open")
		open = append(open, sp)
	}
	for i := 0; i < 50; i++ {
		_, sp := Start(context.Background(), "test/done")
		sp.End()
	}
	for _, sp := range open {
		if _, ok := st.Get(sp.Context().TraceID.String()); !ok {
			t.Fatal("open trace evicted while complete traces existed")
		}
	}
	for _, sp := range open {
		sp.End()
	}
}

func TestLateAsyncSpanStitches(t *testing.T) {
	st := withStore(t, StoreConfig{})
	ctx, root := Start(context.Background(), "test/request")
	sc := FromContext(ctx)
	root.End() // handler returns before the async job runs

	jctx := ContextWithRemote(context.Background(), sc)
	_, job := Start(jctx, "test/job")
	job.End()

	v, ok := st.Get(root.Context().TraceID.String())
	if !ok {
		t.Fatal("trace gone")
	}
	if len(v.Spans) != 2 {
		t.Fatalf("late span did not stitch: %d spans", len(v.Spans))
	}
}

func TestListFilters(t *testing.T) {
	st := withStore(t, StoreConfig{})
	_, ok1 := Start(context.Background(), "test/a")
	ok1.Attr("endpoint", "/v1/metrics")
	ok1.End()
	_, bad := Start(context.Background(), "test/b")
	bad.Attr("endpoint", "/v1/optimize")
	bad.Fail(errors.New("x"))
	bad.End()
	_, openSp := Start(context.Background(), "test/c")

	if n := len(st.List(Filter{})); n != 3 {
		t.Fatalf("unfiltered list = %d, want 3", n)
	}
	if l := st.List(Filter{Status: "error"}); len(l) != 1 || l[0].Root != "test/b" {
		t.Fatalf("error filter: %+v", l)
	}
	if l := st.List(Filter{Status: "ok"}); len(l) != 1 || l[0].Root != "test/a" {
		t.Fatalf("ok filter: %+v", l)
	}
	if l := st.List(Filter{Status: "open"}); len(l) != 1 {
		t.Fatalf("open filter: %+v", l)
	}
	if l := st.List(Filter{Endpoint: "/v1/metrics"}); len(l) != 1 || l[0].Endpoint != "/v1/metrics" {
		t.Fatalf("endpoint filter: %+v", l)
	}
	openSp.End()
}

func TestFlameRendering(t *testing.T) {
	st := withStore(t, StoreConfig{})
	ctx, root := Start(context.Background(), "service/request")
	root.Attr("endpoint", "/v1/metrics")
	cctx, child := Start(ctx, "service/queue_wait")
	child.End()
	_, leaf := Start(cctx, "service/pair_scores")
	leaf.Event("cache_lookup", A("outcome", "hit"))
	leaf.End()
	root.End()

	text, ok := st.Flame(root.Context().TraceID.String())
	if !ok {
		t.Fatal("flame not found")
	}
	for _, want := range []string{"service/request", "service/queue_wait", "service/pair_scores", "* cache_lookup", "endpoint=/v1/metrics"} {
		if !strings.Contains(text, want) {
			t.Fatalf("flame missing %q:\n%s", want, text)
		}
	}
	// Child must be indented deeper than root.
	rootLine := lineWith(text, "service/request ")
	childLine := lineWith(text, "service/queue_wait")
	if indent(childLine) <= indent(rootLine) {
		t.Fatalf("child not nested under root:\n%s", text)
	}
}

func lineWith(text, sub string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, sub) {
			return line
		}
	}
	return ""
}

func indent(line string) int {
	return len(line) - len(strings.TrimLeft(line, " "))
}

func TestTelemetryHistogramsStillRecord(t *testing.T) {
	telemetry.Enable()
	telemetry.Default().Reset()
	t.Cleanup(telemetry.Disable)
	withStore(t, StoreConfig{})
	_, sp := Start(context.Background(), "test/histo")
	sp.End()
	if s := telemetry.Default().SpanStats("test/histo"); s.Count != 1 {
		t.Fatalf("span histogram count = %d, want 1 (trace spans must keep feeding telemetry)", s.Count)
	}
}

func TestHTTPHandler(t *testing.T) {
	st := withStore(t, StoreConfig{})
	ctx, root := Start(context.Background(), "service/request")
	root.Attr("endpoint", "/v1/metrics")
	_, child := Start(ctx, "service/queue_wait")
	child.End()
	root.End()
	id := root.Context().TraceID.String()

	h := st.Handler()
	get := func(path string) (int, string) {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/v1/debug/traces"); code != 200 || !strings.Contains(body, id) {
		t.Fatalf("list: %d %s", code, body)
	}
	if code, body := get("/v1/debug/traces?status=error"); code != 200 || strings.Contains(body, id) {
		t.Fatalf("error filter should exclude ok trace: %d %s", code, body)
	}
	if code, _ := get("/v1/debug/traces?status=bogus"); code != 400 {
		t.Fatalf("bad status filter: %d", code)
	}
	if code, _ := get("/v1/debug/traces?min_duration=xyz"); code != 400 {
		t.Fatalf("bad min_duration: %d", code)
	}
	if code, body := get("/v1/debug/traces/" + id); code != 200 || !strings.Contains(body, "service/queue_wait") {
		t.Fatalf("get: %d %s", code, body)
	}
	if code, body := get("/v1/debug/traces/" + id + "?format=flame"); code != 200 || !strings.Contains(body, "service/request") {
		t.Fatalf("flame: %d %s", code, body)
	}
	if code, _ := get("/v1/debug/traces/ffffffffffffffffffffffffffffffff"); code != 404 {
		t.Fatalf("unknown trace: %d", code)
	}
	if code, _ := get("/v1/debug/traces/nothex"); code != 404 {
		t.Fatalf("malformed trace id: %d", code)
	}
}
