package trace

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStoreConcurrentStress hammers the trace ring from many writer
// goroutines (span trees with attributes, events, and failures) while
// reader goroutines walk the debug read API and eviction churns the
// ring far past capacity. Run under -race (tier 2) this is the data
// integrity proof for the store.
func TestStoreConcurrentStress(t *testing.T) {
	st := withStore(t, StoreConfig{Capacity: 32, SlowKeep: 4, SampleRate: 0.2})

	const (
		writers         = 8
		readers         = 4
		tracesPerWriter = 100
		spansPerTrace   = 6
	)

	stop := make(chan struct{})
	var rwg sync.WaitGroup

	// Readers: List with rotating filters, Get and Flame on whatever
	// IDs the listing surfaces, racing live writes and eviction.
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				var f Filter
				switch i % 4 {
				case 1:
					f.Status = "error"
				case 2:
					f.Status = "open"
				case 3:
					f.MinDuration = time.Microsecond
				}
				list := st.List(f)
				if len(list) > 0 {
					id := list[i%len(list)].TraceID
					st.Get(id)
					if i%3 == 0 {
						st.Flame(id)
					}
				}
			}
		}()
	}

	// Writers: nested span trees; every third trace errors, every fifth
	// ends a leaf after its root so open/complete transitions race the
	// readers and the evictor.
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < tracesPerWriter; i++ {
				ctx, root := Start(context.Background(), "stress/root")
				root.Attr("endpoint", "/v1/stress")
				var late []*Span
				for s := 1; s < spansPerTrace; s++ {
					_, sp := Start(ctx, "stress/child")
					sp.Event("tick", A("n", s))
					if i%3 == 0 && s == 1 {
						sp.Fail(errors.New("stress error"))
					}
					if i%5 == 0 && s == spansPerTrace-1 {
						late = append(late, sp)
						continue
					}
					sp.End()
				}
				root.End()
				for _, sp := range late {
					sp.End()
				}
			}
		}(w)
	}

	wwg.Wait()
	close(stop)
	rwg.Wait()
	if st.Len() > 32 {
		t.Fatalf("store over capacity after stress: %d", st.Len())
	}
}
