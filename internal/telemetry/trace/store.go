package trace

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// StoreConfig bounds the trace store. Zero values take defaults.
type StoreConfig struct {
	// Capacity is the maximum number of retained traces; eviction runs
	// when the store grows past it. Default 2048.
	Capacity int
	// SlowKeep is how many of the slowest completed-OK traces are
	// pinned against sampling eviction. Default 64.
	SlowKeep int
	// SampleRate is the probability a completed, unremarkable trace
	// (no error, not slowest-N) survives eviction pressure. Default 0.1.
	SampleRate float64
	// SampleSeed seeds the sampling coin so chaos/replay runs retain
	// the same traces. Default 1.
	SampleSeed int64
	// MaxSpans caps spans recorded per trace; excess spans still feed
	// the aggregate histograms but are dropped from the tree (counted
	// in trace/spans_dropped). Default 1024.
	MaxSpans int
	// MaxEvents is reserved for symmetry with MaxSpans; per-span event
	// growth is bounded by maxEventsPerSpan.
	MaxEvents int
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Capacity <= 0 {
		c.Capacity = 2048
	}
	if c.SlowKeep <= 0 {
		c.SlowKeep = 64
	}
	if c.SampleRate <= 0 {
		c.SampleRate = 0.1
	}
	if c.SampleRate > 1 {
		c.SampleRate = 1
	}
	if c.SampleSeed == 0 {
		c.SampleSeed = 1
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 1024
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = maxEventsPerSpan
	}
	return c
}

// SpanRecord is one completed span inside a retained trace.
type SpanRecord struct {
	SpanID   SpanID
	Parent   SpanID
	Name     string
	Start    time.Time
	Duration time.Duration
	Error    string
	Attrs    []Attr
	Events   []Event
	Root     bool // local root: the span where the trace entered this process
}

// traceRec accumulates the spans of one trace. Records stay in the map
// after the root ends so late async spans (a job queued by a request
// whose handler already returned) still stitch into the same tree.
type traceRec struct {
	id       TraceID
	seq      uint64 // admission order, the eviction tiebreak
	spans    []SpanRecord
	open     int // started-but-not-ended span count
	started  int // total spans admitted (for the budget check)
	rootName string
	endpoint string
	start    time.Time
	maxEnd   time.Time
	rootEnd  bool // a local-root span has ended
	errored  bool
	coined   bool // sampling coin flipped (once, at first completion)
	sampled  bool // coin outcome: survives sampling eviction
	dropped  int  // spans over budget
}

func (r *traceRec) complete() bool { return r.rootEnd && r.open == 0 }

func (r *traceRec) duration() time.Duration {
	if r.maxEnd.IsZero() {
		return 0
	}
	return r.maxEnd.Sub(r.start)
}

// Store is the bounded in-memory trace ring: every ended span lands
// here, and eviction applies tail-based retention — errored traces and
// the slowest SlowKeep always survive; the unremarkable majority
// survives with probability SampleRate; still-open traces are never
// evicted below capacity pressure. Safe for concurrent use.
type Store struct {
	cfg StoreConfig

	mu   sync.Mutex
	byID map[TraceID]*traceRec
	seq  uint64
	rng  *rand.Rand
}

// NewStore creates a trace store.
func NewStore(cfg StoreConfig) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		cfg:  cfg,
		byID: make(map[TraceID]*traceRec),
		rng:  rand.New(rand.NewSource(cfg.SampleSeed)),
	}
}

// spanStarted admits a span into its trace record, creating the record
// on first sight of the trace ID.
func (st *Store) spanStarted(sp *Span) {
	st.mu.Lock()
	rec := st.byID[sp.sc.TraceID]
	if rec == nil {
		st.seq++
		rec = &traceRec{id: sp.sc.TraceID, seq: st.seq, start: sp.start}
		st.byID[sp.sc.TraceID] = rec
		if len(st.byID) > st.cfg.Capacity {
			st.evictLocked()
		}
	}
	if sp.start.Before(rec.start) {
		rec.start = sp.start
	}
	if rec.started >= st.cfg.MaxSpans {
		sp.dropped = true
		rec.dropped++
		st.mu.Unlock()
		telemetry.Add("trace/spans_dropped", 1)
		return
	}
	rec.started++
	rec.open++
	n := len(st.byID)
	st.mu.Unlock()
	telemetry.SetGauge("trace/retained", float64(n))
}

// spanEnded folds a completed span into its trace record. Called from
// Span.End exactly once per span.
func (st *Store) spanEnded(sp *Span, d time.Duration) {
	sp.mu.Lock()
	recSpan := SpanRecord{
		SpanID:   sp.sc.SpanID,
		Parent:   sp.parent,
		Name:     sp.name,
		Start:    sp.start,
		Duration: d,
		Error:    sp.errMsg,
		Attrs:    sp.attrs,
		Events:   sp.events,
		Root:     sp.localRoot,
	}
	sp.mu.Unlock()

	st.mu.Lock()
	defer st.mu.Unlock()
	rec := st.byID[sp.sc.TraceID]
	if rec == nil {
		// Trace was evicted while this span ran; drop silently — the
		// duration already reached the aggregate histograms.
		return
	}
	if sp.dropped {
		return
	}
	rec.open--
	rec.spans = append(rec.spans, recSpan)
	// A span may carry an earlier start than the record saw at
	// admission (clock adjustments, test backdating): keep the record's
	// window covering every span it holds.
	if sp.start.Before(rec.start) {
		rec.start = sp.start
	}
	if end := sp.start.Add(d); end.After(rec.maxEnd) {
		rec.maxEnd = end
	}
	if recSpan.Error != "" {
		rec.errored = true
	}
	if recSpan.Root {
		rec.rootEnd = true
		rec.rootName = recSpan.Name
		for _, a := range recSpan.Attrs {
			if a.Key == "endpoint" {
				if s, ok := a.Value.(string); ok {
					rec.endpoint = s
				}
			}
		}
	}
	// Flip the sampling coin once, at first completion. The outcome is
	// only consulted at eviction time, so a trace that completes and
	// later gains async spans keeps one consistent fate.
	if rec.complete() && !rec.coined {
		rec.coined = true
		rec.sampled = st.rng.Float64() < st.cfg.SampleRate
	}
}

// evictLocked shrinks the store back to capacity. Retention classes,
// evicted in ascending order (oldest first within a class):
//
//	0 — complete, ok, not slowest-N, coin said drop
//	1 — complete, ok, not slowest-N, coin said keep (sampled)
//	2 — complete but errored or among the slowest SlowKeep
//	3 — still open (async spans may yet arrive)
//
// The invariant: an errored or slowest-N trace is only evicted once
// every sampled/unsampled unremarkable trace is gone, and an open
// trace only after every complete one.
//
// Eviction drops to a low-water mark about 1/8 below capacity rather
// than to capacity exactly, so a store running at its limit pays the
// O(n log n) classification once per ~n/8 admissions, not per insert.
func (st *Store) evictLocked() {
	target := st.cfg.Capacity - st.cfg.Capacity/8
	if target < 1 {
		target = 1
	}
	if len(st.byID) <= target {
		return
	}
	type cand struct {
		rec   *traceRec
		class int
	}
	// Find the slowest-N completed-OK traces to pin into class 2.
	var completed []*traceRec
	for _, rec := range st.byID {
		if rec.complete() && !rec.errored {
			completed = append(completed, rec)
		}
	}
	sort.Slice(completed, func(i, j int) bool {
		di, dj := completed[i].duration(), completed[j].duration()
		if di != dj {
			return di > dj
		}
		return completed[i].seq < completed[j].seq
	})
	slow := make(map[TraceID]bool, st.cfg.SlowKeep)
	for i := 0; i < len(completed) && i < st.cfg.SlowKeep; i++ {
		slow[completed[i].id] = true
	}

	cands := make([]cand, 0, len(st.byID))
	for _, rec := range st.byID {
		c := cand{rec: rec}
		switch {
		case !rec.complete():
			c.class = 3
		case rec.errored || slow[rec.id]:
			c.class = 2
		case rec.sampled:
			c.class = 1
		default:
			c.class = 0
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].class != cands[j].class {
			return cands[i].class < cands[j].class
		}
		return cands[i].rec.seq < cands[j].rec.seq
	})
	evicted := 0
	for _, c := range cands {
		if len(st.byID) <= target {
			break
		}
		delete(st.byID, c.rec.id)
		evicted++
	}
	if evicted > 0 {
		telemetry.Add("trace/traces_evicted", int64(evicted))
	}
}

// Len reports the number of retained traces.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

// --- read API -----------------------------------------------------------

// Filter selects traces in List. Zero values match everything.
type Filter struct {
	Endpoint    string        // exact match on the root span's endpoint attribute
	Status      string        // "ok", "error", or "open"
	MinDuration time.Duration // only traces at least this long
}

// Summary is one row of the trace listing.
type Summary struct {
	TraceID    string  `json:"trace_id"`
	Root       string  `json:"root"`
	Endpoint   string  `json:"endpoint,omitempty"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
	Errored    bool    `json:"errored"`
	Open       bool    `json:"open"`
}

// List returns summaries of retained traces matching f, newest first
// (by admission order, which is stable under concurrent writes).
func (st *Store) List(f Filter) []Summary {
	st.mu.Lock()
	recs := make([]*traceRec, 0, len(st.byID))
	for _, rec := range st.byID {
		recs = append(recs, rec)
	}
	st.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq > recs[j].seq })

	out := make([]Summary, 0, len(recs))
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, rec := range recs {
		if f.Endpoint != "" && rec.endpoint != f.Endpoint {
			continue
		}
		switch f.Status {
		case "error":
			if !rec.errored {
				continue
			}
		case "ok":
			if rec.errored || !rec.complete() {
				continue
			}
		case "open":
			if rec.complete() {
				continue
			}
		}
		if f.MinDuration > 0 && rec.duration() < f.MinDuration {
			continue
		}
		out = append(out, Summary{
			TraceID:    rec.id.String(),
			Root:       rec.rootName,
			Endpoint:   rec.endpoint,
			Start:      rec.start.UTC().Format(time.RFC3339Nano),
			DurationMS: float64(rec.duration()) / float64(time.Millisecond),
			Spans:      len(rec.spans),
			Errored:    rec.errored,
			Open:       !rec.complete(),
		})
	}
	return out
}

// SpanView is the JSON shape of one span in a trace view.
type SpanView struct {
	SpanID     string      `json:"span_id"`
	Parent     string      `json:"parent,omitempty"`
	Name       string      `json:"name"`
	Start      string      `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Error      string      `json:"error,omitempty"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Events     []EventView `json:"events,omitempty"`
	Root       bool        `json:"root,omitempty"`
}

// EventView is the JSON shape of one span event.
type EventView struct {
	Name  string  `json:"name"`
	OffMS float64 `json:"offset_ms"`
	Attrs []Attr  `json:"attrs,omitempty"`
}

// View is the full span tree of one retained trace.
type View struct {
	TraceID      string     `json:"trace_id"`
	Root         string     `json:"root"`
	Endpoint     string     `json:"endpoint,omitempty"`
	Start        string     `json:"start"`
	DurationMS   float64    `json:"duration_ms"`
	Errored      bool       `json:"errored"`
	Open         bool       `json:"open"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanView `json:"spans"`
}

// Get returns the span tree of the trace with the given hex ID, or
// (zero, false) when it is unknown or was evicted.
func (st *Store) Get(idHex string) (View, bool) {
	id, err := ParseTraceID(strings.TrimSpace(idHex))
	if err != nil {
		return View{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	rec := st.byID[id]
	if rec == nil {
		return View{}, false
	}
	v := View{
		TraceID:      rec.id.String(),
		Root:         rec.rootName,
		Endpoint:     rec.endpoint,
		Start:        rec.start.UTC().Format(time.RFC3339Nano),
		DurationMS:   float64(rec.duration()) / float64(time.Millisecond),
		Errored:      rec.errored,
		Open:         !rec.complete(),
		DroppedSpans: rec.dropped,
	}
	spans := make([]SpanRecord, len(rec.spans))
	copy(spans, rec.spans)
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].SpanID.String() < spans[j].SpanID.String()
	})
	v.Spans = make([]SpanView, 0, len(spans))
	for _, s := range spans {
		sv := SpanView{
			SpanID:     s.SpanID.String(),
			Name:       s.Name,
			Start:      s.Start.UTC().Format(time.RFC3339Nano),
			DurationMS: float64(s.Duration) / float64(time.Millisecond),
			Error:      s.Error,
			Attrs:      s.Attrs,
			Root:       s.Root,
		}
		if !s.Parent.IsZero() {
			sv.Parent = s.Parent.String()
		}
		for _, e := range s.Events {
			sv.Events = append(sv.Events, EventView{
				Name:  e.Name,
				OffMS: float64(e.Time.Sub(s.Start)) / float64(time.Millisecond),
				Attrs: e.Attrs,
			})
		}
		v.Spans = append(v.Spans, sv)
	}
	return v, true
}

// Flame renders the trace's span tree as indented text with duration,
// share-of-trace, and a proportional bar per span — a poor man's flame
// graph readable in a terminal. Returns ("", false) for unknown IDs.
func (st *Store) Flame(idHex string) (string, bool) {
	v, ok := st.Get(idHex)
	if !ok {
		return "", false
	}
	var b strings.Builder
	b.WriteString("trace " + v.TraceID)
	if v.Endpoint != "" {
		b.WriteString("  endpoint=" + v.Endpoint)
	}
	status := "ok"
	if v.Errored {
		status = "error"
	}
	if v.Open {
		status = "open"
	}
	b.WriteString("  status=" + status)
	b.WriteString("  " + fmtMS(v.DurationMS) + "\n")

	children := make(map[string][]SpanView)
	have := make(map[string]bool, len(v.Spans))
	for _, s := range v.Spans {
		have[s.SpanID] = true
	}
	var roots []SpanView
	for _, s := range v.Spans {
		if s.Parent != "" && have[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			// True roots and orphans (parent span not retained, e.g. a
			// remote parent or a budget-dropped span) render top-level.
			roots = append(roots, s)
		}
	}
	total := v.DurationMS
	if total <= 0 {
		total = 1
	}
	var render func(s SpanView, depth int)
	render = func(s SpanView, depth int) {
		share := s.DurationMS / total
		bar := strings.Repeat("#", barWidth(share))
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name)
		if s.Error != "" {
			b.WriteString(" !error")
		}
		b.WriteString("  " + fmtMS(s.DurationMS))
		b.WriteString("  " + pct(share))
		if bar != "" {
			b.WriteString("  " + bar)
		}
		b.WriteString("\n")
		for _, e := range s.Events {
			b.WriteString(strings.Repeat("  ", depth+1))
			b.WriteString("* " + e.Name + " @" + fmtMS(e.OffMS) + "\n")
		}
		for _, c := range children[s.SpanID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 1)
	}
	return b.String(), true
}

func barWidth(share float64) int {
	const maxBar = 30
	n := int(share*maxBar + 0.5)
	if n < 0 {
		n = 0
	}
	if n > maxBar {
		n = maxBar
	}
	return n
}

func fmtMS(ms float64) string {
	switch {
	case ms >= 1000:
		return strconv.FormatFloat(ms/1000, 'f', 2, 64) + "s"
	case ms >= 1:
		return strconv.FormatFloat(ms, 'f', 2, 64) + "ms"
	default:
		return strconv.FormatFloat(ms*1000, 'f', 0, 64) + "µs"
	}
}

func pct(share float64) string {
	return strconv.FormatFloat(share*100, 'f', 1, 64) + "%"
}
