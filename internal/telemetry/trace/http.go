package trace

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// Handler serves the trace debug API:
//
//	GET /v1/debug/traces            — listing; query params endpoint,
//	                                  status (ok|error|open), min_duration
//	                                  (Go duration, e.g. 250ms)
//	GET /v1/debug/traces/{id}       — full span tree as JSON;
//	                                  ?format=flame renders the text tree
//
// Mount it alongside the service handler so the store feeding the
// collector is the one being read.
func (st *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/debug/traces", st.handleList)
	mux.HandleFunc("GET /v1/debug/traces/{id}", st.handleGet)
	return mux
}

func (st *Store) handleList(w http.ResponseWriter, r *http.Request) {
	var f Filter
	q := r.URL.Query()
	f.Endpoint = q.Get("endpoint")
	switch s := q.Get("status"); s {
	case "", "ok", "error", "open":
		f.Status = s
	default:
		httpError(w, http.StatusBadRequest, "status must be ok, error, or open")
		return
	}
	if md := q.Get("min_duration"); md != "" {
		d, err := time.ParseDuration(md)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad min_duration: "+err.Error())
			return
		}
		f.MinDuration = d
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": st.List(f)})
}

func (st *Store) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("format") == "flame" {
		text, ok := st.Flame(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown or evicted trace")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte(text)); err != nil {
			telemetry.Add("trace/write_errors", 1)
		}
		return
	}
	v, ok := st.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown or evicted trace")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		telemetry.Add("trace/write_errors", 1)
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
