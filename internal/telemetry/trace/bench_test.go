package trace

import (
	"context"
	"testing"
)

//go:noinline
func bareCall(ctx context.Context) context.Context { return ctx }

// BenchmarkBareCall is the baseline BenchmarkTraceDisabled is compared
// against: a no-op function call through the same shape.
func BenchmarkBareCall(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx = bareCall(ctx)
	}
	_ = ctx
}

// BenchmarkTraceDisabled measures the instrumentation cost with no
// collector installed — the production default. The acceptance bar is
// "within noise of a bare call": one atomic load, zero allocations.
func BenchmarkTraceDisabled(b *testing.B) {
	SetCollector(nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "bench/disabled")
		sp.Attr("k", "v")
		sp.End()
		_ = c
	}
}

// BenchmarkTraceEnabled is the comparison point: full span lifecycle
// with a collector installed.
func BenchmarkTraceEnabled(b *testing.B) {
	st := NewStore(StoreConfig{Capacity: 1024})
	SetCollector(st)
	defer SetCollector(nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "bench/enabled")
		sp.Attr("k", "v")
		sp.End()
		_ = c
	}
}
