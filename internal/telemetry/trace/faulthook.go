package trace

import (
	"context"

	"repro/internal/faultinject"
)

// init wires fault injection into tracing: every fault fired at a
// context-aware point (faultinject.HitCtx) is recorded as an event on
// the live span in that context, so a chaos run's trace shows exactly
// which request a torn write or injected ENOSPC landed on. The hook is
// a no-op span Event when tracing is disabled, preserving faultinject's
// cheap paths.
func init() {
	faultinject.SetFireHook(func(ctx context.Context, name string, m faultinject.Mode) {
		AddEvent(ctx, "fault_injected", A("point", name), A("mode", m.String()))
	})
}
