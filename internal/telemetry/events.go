package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// PointEventWrite is the fault-injection point on the event-log write
// path: an injected write failure (disk full, torn line) must surface
// through Err at end of run, never corrupt the pipeline itself.
const PointEventWrite = "telemetry/event_write"

// EventLogger writes structured pipeline events as JSONL, one JSON
// object per line in a byte-stable layout: "ts" (RFC3339Nano) first,
// "event" second, then the caller's fields in sorted key order. The
// same logical event always serializes to the same bytes (modulo ts),
// so event logs diff and grep cleanly across runs. A nil logger is a
// no-op, so call sites need no telemetry-enabled guard.
//
// Log never fails the pipeline, but the first underlying write error is
// retained and reported by Err, so a full disk truncating the event log
// surfaces at the end of the run instead of passing silently.
type EventLogger struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewEventLogger wraps a writer. The caller keeps ownership of the
// writer (close files yourself after the run).
func NewEventLogger(w io.Writer) *EventLogger {
	if w == nil {
		return nil
	}
	return &EventLogger{w: faultinject.WrapWriter(PointEventWrite, w)}
}

// Log emits one event line. Field keys "ts" and "event" are reserved
// and skipped if present. A value json.Marshal cannot encode (a
// channel, a complex number, a cyclic structure) degrades to its
// fmt.Sprint string rather than dropping the whole line.
func (l *EventLogger) Log(event string, fields map[string]any) {
	if l == nil {
		return
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		if k == "ts" || k == "event" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteString(`{"ts":`)
	writeJSONValue(&b, now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`,"event":`)
	writeJSONValue(&b, event)
	for _, k := range keys {
		b.WriteByte(',')
		writeJSONValue(&b, k)
		b.WriteByte(':')
		writeJSONValue(&b, fields[k])
	}
	b.WriteString("}\n")
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(b.Bytes()); err != nil && l.err == nil {
		l.err = err
	}
}

// writeJSONValue appends v's JSON encoding, falling back to the
// fmt.Sprint string for unmarshalable values. (Strings never fail, so
// the fallback marshal cannot.)
func writeJSONValue(b *bytes.Buffer, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(fmt.Sprint(v))
	}
	b.Write(raw)
}

// Err returns the first write error encountered, or nil. Safe on nil.
func (l *EventLogger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
