package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventLogger writes structured pipeline events as JSONL: one JSON
// object per line with "ts" (RFC3339Nano) and "event" keys plus the
// caller's fields (keys emitted in sorted order). A nil logger is a
// no-op, so call sites need no telemetry-enabled guard.
type EventLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewEventLogger wraps a writer. The caller keeps ownership of the
// writer (close files yourself after the run).
func NewEventLogger(w io.Writer) *EventLogger {
	if w == nil {
		return nil
	}
	return &EventLogger{w: w}
}

// Log emits one event line. Field keys "ts" and "event" are reserved
// and overwritten if present.
func (l *EventLogger) Log(event string, fields map[string]any) {
	if l == nil {
		return
	}
	doc := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		doc[k] = v
	}
	doc["ts"] = now().UTC().Format(time.RFC3339Nano)
	doc["event"] = event
	line, err := json.Marshal(doc)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(append(line, '\n'))
}
