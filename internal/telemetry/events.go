package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// PointEventWrite is the fault-injection point on the event-log write
// path: an injected write failure (disk full, torn line) must surface
// through Err at end of run, never corrupt the pipeline itself.
const PointEventWrite = "telemetry/event_write"

// EventLogger writes structured pipeline events as JSONL: one JSON
// object per line with "ts" (RFC3339Nano) and "event" keys plus the
// caller's fields (keys emitted in sorted order). A nil logger is a
// no-op, so call sites need no telemetry-enabled guard.
//
// Log never fails the pipeline, but the first underlying write error is
// retained and reported by Err, so a full disk truncating the event log
// surfaces at the end of the run instead of passing silently.
type EventLogger struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewEventLogger wraps a writer. The caller keeps ownership of the
// writer (close files yourself after the run).
func NewEventLogger(w io.Writer) *EventLogger {
	if w == nil {
		return nil
	}
	return &EventLogger{w: faultinject.WrapWriter(PointEventWrite, w)}
}

// Log emits one event line. Field keys "ts" and "event" are reserved
// and overwritten if present.
func (l *EventLogger) Log(event string, fields map[string]any) {
	if l == nil {
		return
	}
	doc := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		doc[k] = v
	}
	doc["ts"] = now().UTC().Format(time.RFC3339Nano)
	doc["event"] = event
	line, err := json.Marshal(doc)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(append(line, '\n')); err != nil && l.err == nil {
		l.err = err
	}
}

// Err returns the first write error encountered, or nil. Safe on nil.
func (l *EventLogger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
