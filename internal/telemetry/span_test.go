package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	parent := r.StartSpan("flow/dc2")
	child := parent.StartSpan("iter")
	grand := child.StartSpan("rewrite")
	if got := grand.Name(); got != "flow/dc2/iter/rewrite" {
		t.Fatalf("nested name = %q", got)
	}
	grand.End()
	child.End()
	if d := parent.End(); d < 0 {
		t.Fatalf("duration = %v", d)
	}
	for _, name := range []string{"flow/dc2", "flow/dc2/iter", "flow/dc2/iter/rewrite"} {
		if s := r.SpanStats(name); s.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, s.Count)
		}
	}
}

func TestSpanSecondsSelectors(t *testing.T) {
	r := NewRegistry()
	r.RecordSpan("synth/sop", 100*time.Millisecond)
	r.RecordSpan("synth/bdd", 200*time.Millisecond)
	r.RecordSpan("synth/bdd/sift", 5*time.Second) // nested: excluded from prefix sums
	r.RecordSpan("profile/total", 400*time.Millisecond)

	if n, s := r.SpanSeconds("synth/"); n != 2 || !near(s, 0.3) {
		t.Fatalf("prefix sum = (%d, %f), want (2, 0.3)", n, s)
	}
	if n, s := r.SpanSeconds("profile/total"); n != 1 || !near(s, 0.4) {
		t.Fatalf("exact sum = (%d, %f), want (1, 0.4)", n, s)
	}
	if n, _ := r.SpanSeconds("nothere/"); n != 0 {
		t.Fatalf("missing prefix count = %d", n)
	}
}

func TestSummaryTable(t *testing.T) {
	r := NewRegistry()
	r.RecordSpan("slow", 2*time.Second)
	r.RecordSpan("slow", 4*time.Second)
	r.RecordSpan("fast", 3*time.Millisecond)
	out := r.SummaryTable()
	slow := strings.Index(out, "slow")
	fast := strings.Index(out, "fast")
	if slow < 0 || fast < 0 || slow > fast {
		t.Fatalf("expected slow before fast in:\n%s", out)
	}
	if !strings.Contains(out, "6.00s") || !strings.Contains(out, "3.00s") {
		t.Fatalf("missing totals/means in:\n%s", out)
	}
	if !strings.Contains(out, "3.00ms") {
		t.Fatalf("missing sub-second formatting in:\n%s", out)
	}
}

func near(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
