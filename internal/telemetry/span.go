package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span measures the wall-clock duration of one pipeline operation.
// Durations are recorded (in seconds) into a per-name log-bucketed
// histogram, so each span name carries count, cumulative, min, and max
// duration. A nil span (telemetry disabled) is a no-op.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// StartSpan opens a span. End records it under name.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: now()}
}

// StartSpan opens a nested child span named "<parent>/<child>".
func (s *Span) StartSpan(child string) *Span {
	if s == nil {
		return nil
	}
	//lint:ignore metricname nesting contract: child segments are constants checked at their call sites, parents recurse to a checked root
	return s.r.StartSpan(s.name + "/" + child)
}

// Name returns the span's full (nesting-qualified) name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End records the span's duration and returns it.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := now().Sub(s.start)
	s.r.RecordSpan(s.name, d)
	return d
}

// RecordSpan directly records a duration under a span name — the same
// sink Span.End uses. Exposed for callers (and tests) that measure
// durations themselves.
func (r *Registry) RecordSpan(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.spanHistogram(name).Observe(d.Seconds())
}

func (r *Registry) spanHistogram(name string) *Histogram {
	r.mu.RLock()
	h := r.spans[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.spans[name]; h == nil {
		h = newHistogram()
		r.spans[name] = h
	}
	return h
}

// SpanNames lists all recorded span names, sorted.
func (r *Registry) SpanNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return names(r.spans)
}

// SpanStats returns the duration distribution recorded under a span
// name (zero-count snapshot if the name is unknown).
func (r *Registry) SpanStats(name string) HistogramSnapshot {
	if r == nil {
		return (*Histogram)(nil).Snapshot()
	}
	r.mu.RLock()
	h := r.spans[name]
	r.mu.RUnlock()
	return h.Snapshot()
}

// SpanSeconds aggregates spans by selector: a selector ending in "/"
// sums every span with that prefix; otherwise it reads the exact name.
// It returns the total recorded count and cumulative seconds.
func (r *Registry) SpanSeconds(selector string) (count int64, seconds float64) {
	if r == nil {
		return 0, 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Sum in sorted-name order: float addition is not associative, so
	// map-order accumulation would perturb the low bits of the stage
	// totals from run to run.
	for _, name := range names(r.spans) {
		h := r.spans[name]
		if strings.HasSuffix(selector, "/") {
			if !strings.HasPrefix(name, selector) {
				continue
			}
			// Exclude nested grandchildren so "flow/" counts flow/dc2 but
			// not flow/dc2/something: prefix sums stay top-level.
			if strings.Contains(name[len(selector):], "/") {
				continue
			}
		} else if name != selector {
			continue
		}
		s := h.Snapshot()
		count += s.Count
		seconds += s.Sum
	}
	return count, seconds
}

// SummaryTable renders all recorded spans sorted by cumulative time
// (descending): count, total, mean, min, and max per span name.
func (r *Registry) SummaryTable() string {
	if r == nil {
		return ""
	}
	type row struct {
		name string
		s    HistogramSnapshot
	}
	r.mu.RLock()
	rows := make([]row, 0, len(r.spans))
	for name, h := range r.spans {
		rows = append(rows, row{name, h.Snapshot()})
	}
	r.mu.RUnlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].s.Sum != rows[j].s.Sum {
			return rows[i].s.Sum > rows[j].s.Sum
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %8s %10s %10s %10s %10s\n", "span", "count", "total", "mean", "min", "max")
	for _, rw := range rows {
		if rw.s.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-36s %8d %10s %10s %10s %10s\n",
			rw.name, rw.s.Count,
			fmtSeconds(rw.s.Sum), fmtSeconds(rw.s.Mean()),
			fmtSeconds(rw.s.Min), fmtSeconds(rw.s.Max))
	}
	return b.String()
}

// fmtSeconds renders a duration in seconds with an adaptive unit.
func fmtSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.2fµs", s*1e6)
	case s > 0:
		return fmt.Sprintf("%.0fns", s*1e9)
	}
	return "0"
}
