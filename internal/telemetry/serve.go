package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics      Prometheus text exposition
//	/debug/vars   JSON exposition
//	/debug/pprof  the standard net/http/pprof index (plus profile,
//	              symbol, trace, and the named profiles)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr and serves the registry's debug handler in a
// background goroutine. This is the only telemetry entry point that
// starts a goroutine, and it only runs when a caller explicitly asks
// for the endpoint.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Serve enables the default registry and serves it on addr.
func Serve(addr string) (*Server, error) {
	return Enable().Serve(addr)
}
