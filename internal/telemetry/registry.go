package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. All accessors are safe for concurrent
// use, and every method is nil-safe: calls on a nil *Registry (telemetry
// disabled) return nil instruments whose update methods are no-ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*Histogram // span durations in seconds
	start    time.Time
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*Histogram),
		start:    now(),
	}
}

// Reset discards all recorded metrics (but keeps the registry enabled).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
	r.spans = make(map[string]*Histogram)
	r.start = now()
}

// Uptime reports the time since the registry was created or reset.
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return now().Sub(r.start)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// names returns the sorted keys of a metric map.
func names[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- Counter -----------------------------------------------------------

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. No-op on nil.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- Gauge -------------------------------------------------------------

// Gauge is a settable float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// --- Histogram ---------------------------------------------------------

// histBuckets log-2 buckets span (2^-27, 2^12]: ~7.5ns to ~68min when
// observations are seconds, with underflow and overflow absorbed by the
// first and last bucket.
const (
	histBuckets  = 40
	histExpShift = 27 // bucket i upper bound = 2^(i-histExpShift)
)

// BucketUpper returns the inclusive upper bound of bucket i; the last
// bucket's bound is +Inf.
func BucketUpper(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, i-histExpShift)
}

// bucketIndex maps an observation to its log-2 bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return histBuckets - 1
	}
	// Smallest e with v <= 2^(e): ceil(log2(v)).
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	e := exp - 1
	if frac > 0.5 {
		e = exp
	}
	i := e + histExpShift
	if i < 0 {
		return 0
	}
	if i > histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// Histogram is a log-bucketed distribution with exact count, sum, min,
// and max. All updates are lock-free.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	minFloat(&h.minBits, v)
	maxFloat(&h.maxBits, v)
	h.buckets[bucketIndex(v)].Add(1)
}

// HistogramSnapshot is a consistent-enough point-in-time read of a
// histogram (individual fields are atomically read).
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64 // +Inf when empty
	Max     float64 // -Inf when empty
	Buckets [histBuckets]int64
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		s.Min = math.Inf(1)
		s.Max = math.Inf(-1)
		return s
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func minFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func maxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
