package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// metricPrefix namespaces every exposed Prometheus family.
const metricPrefix = "repro_"

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counters become <prefix><name>_total, gauges
// <prefix><name>, histograms full histogram families with _min/_max
// companion gauges, and all spans share one repro_span_seconds family
// keyed by a span label.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder

	r.mu.RLock()
	counterNames := names(r.counters)
	gaugeNames := names(r.gauges)
	histNames := names(r.hists)
	spanNames := names(r.spans)
	r.mu.RUnlock()

	fmt.Fprintf(&b, "# TYPE %suptime_seconds gauge\n", metricPrefix)
	fmt.Fprintf(&b, "%suptime_seconds %s\n", metricPrefix, formatFloat(r.Uptime().Seconds()))

	for _, name := range counterNames {
		m := metricPrefix + sanitizeName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, r.Counter(name).Value())
	}
	for _, name := range gaugeNames {
		m := metricPrefix + sanitizeName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", m, m, formatFloat(r.Gauge(name).Value()))
	}
	for _, name := range histNames {
		writeHistogram(&b, metricPrefix+sanitizeName(name), "", r.Histogram(name).Snapshot())
	}
	if len(spanNames) > 0 {
		fmt.Fprintf(&b, "# TYPE %sspan_seconds histogram\n", metricPrefix)
		for _, name := range spanNames {
			writeHistogram(&b, metricPrefix+"span_seconds", name, r.SpanStats(name))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits one histogram series. A non-empty label value
// attaches span="<label>" to every sample (used by the shared span
// family); family TYPE lines for labeled series are emitted by the
// caller once.
func writeHistogram(b *strings.Builder, family, label string, s HistogramSnapshot) {
	sel := ""
	if label != "" {
		sel = `{span="` + label + `"}`
	} else {
		fmt.Fprintf(b, "# TYPE %s histogram\n", family)
	}
	cum := int64(0)
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		if i < histBuckets-1 {
			fmt.Fprintf(b, "%s_bucket%s %d\n", family, leSelector(label, BucketUpper(i)), cum)
		}
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", family, leSelector(label, math.Inf(1)), s.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", family, sel, formatFloat(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", family, sel, s.Count)
	if s.Count > 0 {
		fmt.Fprintf(b, "%s_min%s %s\n", family, sel, formatFloat(s.Min))
		fmt.Fprintf(b, "%s_max%s %s\n", family, sel, formatFloat(s.Max))
	}
}

func leSelector(label string, le float64) string {
	bound := "+Inf"
	if !math.IsInf(le, 1) {
		bound = formatFloat(le)
	}
	if label == "" {
		return `{le="` + bound + `"}`
	}
	return `{span="` + label + `",le="` + bound + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeName maps a registry name onto the Prometheus metric-name
// alphabet ([a-zA-Z0-9_]).
func sanitizeName(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// jsonHistogram is the JSON shape of one distribution.
type jsonHistogram struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

func toJSONHistogram(s HistogramSnapshot) jsonHistogram {
	h := jsonHistogram{Count: s.Count, Sum: s.Sum, Mean: s.Mean()}
	if s.Count > 0 { // leave Min/Max zero when empty: JSON has no Inf
		h.Min, h.Max = s.Min, s.Max
	}
	return h
}

// WriteJSON renders the registry as one indented JSON document (the
// /debug/vars payload). Keys are sorted, so output is deterministic for
// a given registry state.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	doc := struct {
		UptimeSeconds float64                  `json:"uptime_seconds"`
		Counters      map[string]int64         `json:"counters"`
		Gauges        map[string]float64       `json:"gauges"`
		Histograms    map[string]jsonHistogram `json:"histograms"`
		Spans         map[string]jsonHistogram `json:"spans"`
	}{
		UptimeSeconds: r.Uptime().Seconds(),
		Counters:      make(map[string]int64),
		Gauges:        make(map[string]float64),
		Histograms:    make(map[string]jsonHistogram),
		Spans:         make(map[string]jsonHistogram),
	}
	r.mu.RLock()
	counterNames := names(r.counters)
	gaugeNames := names(r.gauges)
	histNames := names(r.hists)
	spanNames := names(r.spans)
	r.mu.RUnlock()
	for _, name := range counterNames {
		doc.Counters[name] = r.Counter(name).Value()
	}
	for _, name := range gaugeNames {
		doc.Gauges[name] = r.Gauge(name).Value()
	}
	for _, name := range histNames {
		doc.Histograms[name] = toJSONHistogram(r.Histogram(name).Snapshot())
	}
	for _, name := range spanNames {
		doc.Spans[name] = toJSONHistogram(r.SpanStats(name))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
