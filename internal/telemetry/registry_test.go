package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/b")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a/b").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.Gauge("g").Set(2.5)
	if got := r.Gauge("g").Value(); got != 2.5 {
		t.Fatalf("gauge = %f, want 2.5", got)
	}
	// Same name returns the same instrument.
	if r.Counter("a/b") != c {
		t.Fatal("counter identity lost")
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []float64{1, 4, 2, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 15 || s.Min != 1 || s.Max != 8 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.Mean(); got != 3.75 {
		t.Fatalf("mean = %f, want 3.75", got)
	}
	var empty HistogramSnapshot
	if (*Histogram)(nil).Snapshot().Count != empty.Count {
		t.Fatal("nil snapshot should be empty")
	}
}

func TestBucketIndex(t *testing.T) {
	// Exact powers of two land on their own upper bound.
	for _, tc := range []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-3, 0},
		{1, histExpShift},       // upper bound 2^0
		{2, histExpShift + 1},   // upper bound 2^1
		{1.5, histExpShift + 1}, // (1, 2]
		{0.5, histExpShift - 1},
		{0.75, histExpShift},
		{math.Inf(1), histBuckets - 1},
		{1e300, histBuckets - 1},
		{1e-300, 0},
	} {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Every value must fall at or below its bucket's upper bound and
	// above the previous bound.
	for _, v := range []float64{1e-9, 3e-7, 0.004, 0.37, 1, 17, 900} {
		i := bucketIndex(v)
		if v > BucketUpper(i) {
			t.Errorf("v=%g above bucket %d upper %g", v, i, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Errorf("v=%g should be in bucket %d or lower", v, i-1)
		}
	}
	if !math.IsInf(BucketUpper(histBuckets-1), 1) {
		t.Fatal("last bucket must be +Inf")
	}
}

// TestConcurrentUpdates exercises every instrument from many goroutines;
// run with -race to verify lock-freedom is sound.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(float64(i%7) + 0.5)
				r.RecordSpan("s", time.Duration(i%5+1)*time.Millisecond)
				sp := r.StartSpan("nested")
				sp.StartSpan("child").End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	const total = workers * iters
	if got := r.Counter("c").Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if s := r.Histogram("h").Snapshot(); s.Count != total {
		t.Fatalf("histogram count = %d, want %d", s.Count, total)
	}
	bucketSum := int64(0)
	for _, c := range r.Histogram("h").Snapshot().Buckets {
		bucketSum += c
	}
	if bucketSum != total {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, total)
	}
	if s := r.SpanStats("s"); s.Count != total {
		t.Fatalf("span count = %d, want %d", s.Count, total)
	}
	if s := r.SpanStats("nested/child"); s.Count != total {
		t.Fatalf("nested span count = %d, want %d", s.Count, total)
	}
}

// TestNilRegistryNoOps asserts the disabled path: a nil registry (and
// the package-level helpers with no default installed) must never
// panic, allocate instruments, or start goroutines.
func TestNilRegistryNoOps(t *testing.T) {
	Disable()
	if Default() != nil {
		t.Fatal("default registry should start nil")
	}
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.RecordSpan("x", time.Second)
	r.Reset()
	if r.StartSpan("x") != nil {
		t.Fatal("nil registry must produce nil spans")
	}
	if d := r.StartSpan("x").StartSpan("y").End(); d != 0 {
		t.Fatal("nil span End must return 0")
	}
	if got := r.SummaryTable(); got != "" {
		t.Fatalf("nil summary = %q", got)
	}
	if n, s := r.SpanSeconds("x/"); n != 0 || s != 0 {
		t.Fatal("nil SpanSeconds must be zero")
	}
	// Package-level helpers with telemetry off.
	Add("x", 1)
	SetGauge("x", 1)
	Observe("x", 1)
	StartSpan("x").End()
	if Default() != nil {
		t.Fatal("no-op helpers must not install a registry")
	}
}

func TestEnableDisable(t *testing.T) {
	Disable()
	r := Enable()
	if r == nil || Default() != r || Enable() != r {
		t.Fatal("Enable must install one stable registry")
	}
	Add("k", 2)
	if r.Counter("k").Value() != 2 {
		t.Fatal("package helper did not hit default registry")
	}
	Disable()
	if Default() != nil {
		t.Fatal("Disable must uninstall")
	}
}
