package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(2)
	r.RecordSpan("synth/sop", 3*time.Millisecond)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "repro_hits_total 2") ||
		!strings.Contains(body, `repro_span_seconds_count{span="synth/sop"} 1`) {
		t.Fatalf("unexpected /metrics body:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"hits": 2`) {
		t.Fatalf("unexpected /debug/vars body:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("unexpected pprof index:\n%s", body)
	}
}
