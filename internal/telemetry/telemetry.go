// Package telemetry is the experiment pipeline's observability core: a
// zero-dependency, concurrency-safe registry of named counters, gauges,
// and log-bucketed histograms, plus lightweight span tracking for
// wall-clock attribution across pipeline stages (synthesis recipes,
// optimization passes and flows, similarity metrics, harness totals).
//
// The package is built around a nil-safe default registry: every
// instrumentation call site (StartSpan, Add, Observe, ...) is a cheap
// no-op — one atomic load, no allocation, no goroutines — until a caller
// explicitly opts in with Enable. This keeps the hot paths of the
// experiment behavior-neutral and essentially free when observability is
// off, which the harness test suite asserts.
//
// On top of the registry sit three consumers:
//
//   - Prometheus-text and JSON exposition (Registry.WritePrometheus,
//     Registry.WriteJSON),
//   - an optional HTTP debug server (Serve) exposing /metrics,
//     /debug/vars, and net/http/pprof, and
//   - a structured JSONL event log (EventLogger) for per-spec pipeline
//     progress.
package telemetry

import (
	"sync/atomic"
	"time"
)

// defaultReg holds the process-wide registry. It stays nil — and every
// package-level helper stays a no-op — until Enable is called.
var defaultReg atomic.Pointer[Registry]

// Enable installs (or returns the already-installed) default registry,
// turning on all package-level instrumentation.
func Enable() *Registry {
	for {
		if r := defaultReg.Load(); r != nil {
			return r
		}
		r := NewRegistry()
		if defaultReg.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable uninstalls the default registry, returning all package-level
// instrumentation to no-ops. Intended for tests.
func Disable() { defaultReg.Store(nil) }

// Default returns the installed registry, or nil when telemetry is off.
func Default() *Registry { return defaultReg.Load() }

// Add increments the named counter on the default registry.
func Add(name string, delta int64) { Default().Counter(name).Add(delta) }

// SetGauge sets the named gauge on the default registry.
func SetGauge(name string, v float64) { Default().Gauge(name).Set(v) }

// Observe records a value into the named histogram on the default
// registry.
func Observe(name string, v float64) { Default().Histogram(name).Observe(v) }

// StartSpan opens a span on the default registry. The returned span (nil
// when telemetry is off) records its duration under name when ended.
func StartSpan(name string) *Span { return Default().StartSpan(name) }

// now is swappable for deterministic exposition tests.
var now = time.Now
