package sketch

import (
	"bytes"
	"testing"
)

// FuzzCodec drives the signature codec with arbitrary bytes: every
// input either fails to decode or decodes to a signature whose
// canonical encoding reproduces the input byte-for-byte (the codec is
// a bijection on well-formed encodings). Decode must never panic.
func FuzzCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{SignatureVersion})
	f.Add((&Signature{}).Encode())
	sig := New(map[string]int{"0:aa": 2, "1:bb": 1}, []float64{1, -2, 3})
	f.Add(sig.Encode())
	// One-past / one-short length probes.
	f.Add(append(sig.Encode(), 0))
	f.Add(sig.Encode()[:EncodedLen-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(dec.Encode(), data) {
			t.Fatalf("encode(decode(b)) != b for %d-byte input", len(data))
		}
		// Round-trip again through the struct: Decode must be stable.
		dec2, err := Decode(dec.Encode())
		if err != nil || *dec2 != *dec {
			t.Fatal("decode not stable over its own re-encoding")
		}
	})
}
