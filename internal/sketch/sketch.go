// Package sketch implements the sub-quadratic similarity layer of the
// serving stack: fixed-size structural signatures cheap enough to
// compute once per AIG and compare in nanoseconds, so that full
// ten-metric evaluation — the expensive part of the paper's framework —
// is spent only on pairs a sketch says are worth it.
//
// Two sketch families cover the two cheap profile artifacts the
// similarity framework already computes per graph:
//
//   - a MinHash signature over the Weisfeiler-Lehman label multiset
//     (MinHashK independent permutations of the multiset elements; the
//     fraction of matching slots is an unbiased estimate of the
//     multiset Jaccard similarity, which tracks the WL subtree kernel);
//   - a signed-random-projection bit signature (simhash) over the
//     35-dimensional NetSimile feature vector (FeatBits hyperplanes;
//     Hamming distance estimates the angular distance between feature
//     vectors, which tracks the Canberra-based NetSimile metric).
//
// Both signatures are banded for locality-sensitive retrieval: two
// graphs land in the same bucket of some band exactly when a contiguous
// run of their signature agrees, so near-duplicates collide with high
// probability and unrelated graphs almost never do.
//
// Determinism contract: the hash family, the permutation parameters,
// and the projection hyperplanes are all derived from fixed
// compile-time seeds, never from process state. A given WL histogram
// and feature vector therefore always produces the same signature
// bytes — on every node of a cluster, across restarts, and across
// encode/decode round trips. The service's cache and replication
// invariants (a hit is bit-identical to fresh computation) extend to
// sketches only because of this.
package sketch

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Sketch geometry. These are part of the signature wire format: two
// processes can compare or exchange signatures only when they agree on
// all of them, which is why they are constants and not options.
const (
	// MinHashK is the number of MinHash permutations. 128 slots put the
	// standard error of the Jaccard estimate around 1/sqrt(128) ≈ 0.09.
	MinHashK = 128
	// wlBandRows rows per band: a WL band collides when 4 consecutive
	// permutation minima all agree, i.e. with probability j^4 for true
	// Jaccard j — steep enough to separate near-duplicates from noise.
	wlBandRows = 4
	// WLBands is the number of WL banding buckets per signature.
	WLBands = MinHashK / wlBandRows

	// FeatureDim is the NetSimile signature dimension (7 features × 5
	// aggregates) the projection hyperplanes are sized for.
	FeatureDim = 35
	// FeatBits is the number of random-projection sign bits.
	FeatBits  = 128
	featWords = FeatBits / 64
	// featBandBits bits per feature band (one byte of the bit vector).
	featBandBits = 8
	// FeatBands is the number of feature banding buckets per signature.
	FeatBands = FeatBits / featBandBits

	// SignatureVersion tags the binary encoding.
	SignatureVersion = 1
	// EncodedLen is the exact length of an encoded signature: a version
	// byte, MinHashK big-endian uint32 minima, featWords big-endian
	// uint64 bit words.
	EncodedLen = 1 + 4*MinHashK + 8*featWords
)

// familySeed roots every derived hash parameter. Fixed by design: see
// the package comment's determinism contract.
const familySeed uint64 = 0x51e7c4_a11ab1e5d1

// Signature is one AIG's structural sketch: the per-permutation MinHash
// minima over its WL label multiset and the simhash bit vector of its
// NetSimile features. Immutable after construction.
type Signature struct {
	WL   [MinHashK]uint32
	Feat [featWords]uint64
}

// splitmix64 is the SplitMix64 mixer — a tiny, well-dispersed
// deterministic PRF used to derive all family parameters.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// The derived family parameters, computed once at init from familySeed.
var (
	minhashMulA [MinHashK]uint64 // odd multipliers
	minhashAddB [MinHashK]uint64
	featPlanes  [FeatBits][FeatureDim]float64
)

func init() {
	s := familySeed
	for i := 0; i < MinHashK; i++ {
		s = splitmix64(s)
		minhashMulA[i] = s | 1 // odd, so the map is a bijection mod 2^64
		s = splitmix64(s)
		minhashAddB[i] = s
	}
	for j := 0; j < FeatBits; j++ {
		for d := 0; d < FeatureDim; d++ {
			s = splitmix64(s)
			// Uniform in [-1, 1): direction is all simhash needs.
			featPlanes[j][d] = float64(int64(s)) / float64(math.MaxInt64)
		}
	}
}

// New builds the signature for one graph from its WL label histogram
// (labels with multiplicities, exactly as simil computes them) and its
// NetSimile feature vector (FeatureDim values; shorter slices are
// zero-padded, longer ones truncated).
func New(wlHist map[string]int, features []float64) *Signature {
	sig := &Signature{}
	for i := range sig.WL {
		sig.WL[i] = math.MaxUint32
	}
	// Multiset MinHash: each of a label's count occurrences is a
	// distinct element (label, occ), so duplicated labels weigh in the
	// Jaccard estimate exactly as they do in the WL kernel's histogram
	// dot product. Map iteration order is irrelevant: each slot is a
	// min-fold over all elements.
	for label, count := range wlHist {
		h := fnv.New64a()
		h.Write([]byte(label))
		base := h.Sum64()
		for occ := 0; occ < count; occ++ {
			el := splitmix64(base + uint64(occ)*0x9e3779b97f4a7c15)
			for i := 0; i < MinHashK; i++ {
				v := uint32((minhashMulA[i]*el + minhashAddB[i]) >> 32)
				if v < sig.WL[i] {
					sig.WL[i] = v
				}
			}
		}
	}
	// Simhash over compressed features: NetSimile aggregates span
	// orders of magnitude (means vs 90th percentiles of egonet sizes),
	// so project the signed log — the same compression Canberra's
	// per-dimension normalization effectively applies.
	var t [FeatureDim]float64
	for d := 0; d < FeatureDim && d < len(features); d++ {
		t[d] = math.Copysign(math.Log1p(math.Abs(features[d])), features[d])
	}
	for j := 0; j < FeatBits; j++ {
		dot := 0.0
		for d := 0; d < FeatureDim; d++ {
			dot += featPlanes[j][d] * t[d]
		}
		if dot >= 0 {
			sig.Feat[j/64] |= 1 << uint(j%64)
		}
	}
	return sig
}

// WLDistance estimates the WL label-multiset dissimilarity: 1 minus
// the fraction of agreeing MinHash slots (an unbiased estimate of
// 1 − Jaccard). 0 means structurally near-identical label multisets.
func (s *Signature) WLDistance(o *Signature) float64 {
	match := 0
	for i := 0; i < MinHashK; i++ {
		if s.WL[i] == o.WL[i] {
			match++
		}
	}
	return 1 - float64(match)/MinHashK
}

// FeatDistance estimates the NetSimile feature dissimilarity: the
// normalized Hamming distance of the projection bit vectors, which is
// the angular distance between the (log-compressed) feature vectors
// scaled to [0, 1].
func (s *Signature) FeatDistance(o *Signature) float64 {
	ham := 0
	for w := 0; w < featWords; w++ {
		ham += popcount64(s.Feat[w] ^ o.Feat[w])
	}
	return float64(ham) / FeatBits
}

// Distance is the combined sketch dissimilarity: the mean of the two
// family estimates. It is the default candidate-ranking key for metrics
// that read neither parent artifact directly.
func (s *Signature) Distance(o *Signature) float64 {
	return (s.WLDistance(o) + s.FeatDistance(o)) / 2
}

func popcount64(x uint64) int {
	// Kernighan is fine here: xors of similar signatures are sparse.
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// wlBandKey returns the bucket key of one WL band: a hash of the
// band's wlBandRows consecutive minima.
func (s *Signature) wlBandKey(band int) uint64 {
	k := familySeed + uint64(band)
	for r := 0; r < wlBandRows; r++ {
		k = splitmix64(k ^ uint64(s.WL[band*wlBandRows+r]))
	}
	return k
}

// featBandKey returns the bucket key of one feature band: one byte of
// the bit vector.
func (s *Signature) featBandKey(band int) uint64 {
	word := s.Feat[(band*featBandBits)/64]
	shift := uint((band * featBandBits) % 64)
	return (word >> shift) & 0xff
}

// Encode serializes the signature into its canonical EncodedLen-byte
// form: a version byte, the MinHash minima big-endian, the feature
// words big-endian. The encoding is bijective — Decode(Encode(s)) == s
// and Encode(Decode(b)) == b for every well-formed b.
func (s *Signature) Encode() []byte {
	out := make([]byte, EncodedLen)
	out[0] = SignatureVersion
	off := 1
	for i := 0; i < MinHashK; i++ {
		binary.BigEndian.PutUint32(out[off:], s.WL[i])
		off += 4
	}
	for w := 0; w < featWords; w++ {
		binary.BigEndian.PutUint64(out[off:], s.Feat[w])
		off += 8
	}
	return out
}

// Decode parses a canonical signature encoding. Any deviation — wrong
// length, unknown version — is an error, never a partial signature.
func Decode(b []byte) (*Signature, error) {
	if len(b) != EncodedLen {
		return nil, fmt.Errorf("sketch: encoded signature is %d bytes, want %d", len(b), EncodedLen)
	}
	if b[0] != SignatureVersion {
		return nil, fmt.Errorf("sketch: unknown signature version %d", b[0])
	}
	s := &Signature{}
	off := 1
	for i := 0; i < MinHashK; i++ {
		s.WL[i] = binary.BigEndian.Uint32(b[off:])
		off += 4
	}
	for w := 0; w < featWords; w++ {
		s.Feat[w] = binary.BigEndian.Uint64(b[off:])
		off += 8
	}
	return s, nil
}
