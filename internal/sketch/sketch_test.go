package sketch

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// randHist draws a random WL-style label histogram.
func randHist(r *rand.Rand, labels int) map[string]int {
	h := make(map[string]int, labels)
	for i := 0; i < labels; i++ {
		h[fmt.Sprintf("%d:%08x", i%4, r.Uint32())] = 1 + r.Intn(5)
	}
	return h
}

func randFeatures(r *rand.Rand) []float64 {
	f := make([]float64, FeatureDim)
	for d := range f {
		f[d] = r.NormFloat64() * float64(int64(1)<<(d%10))
	}
	return f
}

// mutateHist returns a copy with a few labels perturbed — a structural
// near-duplicate.
func mutateHist(r *rand.Rand, h map[string]int, edits int) map[string]int {
	out := make(map[string]int, len(h))
	for k, v := range h {
		out[k] = v
	}
	for i := 0; i < edits; i++ {
		out[fmt.Sprintf("mut:%08x", r.Uint32())] = 1
	}
	return out
}

// TestSignatureDeterminism: the same inputs must give byte-identical
// signatures, however the histogram map is populated (the determinism
// contract the cluster's byte-stability invariant rests on).
func TestSignatureDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	h := randHist(r, 40)
	f := randFeatures(r)
	a := New(h, f)

	// Rebuild the histogram in a different insertion order.
	h2 := make(map[string]int)
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		h2[keys[i]] = h[keys[i]]
	}
	b := New(h2, append([]float64(nil), f...))
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("signature depends on histogram construction order")
	}
	if d := a.WLDistance(b); d != 0 {
		t.Fatalf("self WL distance = %v, want 0", d)
	}
	if d := a.FeatDistance(b); d != 0 {
		t.Fatalf("self feature distance = %v, want 0", d)
	}
}

// TestDistanceOrdering: a near-duplicate must sketch closer than an
// unrelated graph — the property candidate ranking depends on.
func TestDistanceOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	base := randHist(r, 60)
	feats := randFeatures(r)
	sig := New(base, feats)
	near := New(mutateHist(r, base, 3), feats)
	far := New(randHist(r, 60), randFeatures(r))

	if dn, df := sig.WLDistance(near), sig.WLDistance(far); dn >= df {
		t.Errorf("WL distance: near %v >= far %v", dn, df)
	}
	if dn, df := sig.Distance(near), sig.Distance(far); dn >= df {
		t.Errorf("combined distance: near %v >= far %v", dn, df)
	}
}

// TestCodecRoundTrip: Encode/Decode is bijective.
func TestCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sig := New(randHist(r, 30), randFeatures(r))
	enc := sig.Encode()
	if len(enc) != EncodedLen {
		t.Fatalf("encoded length %d, want %d", len(enc), EncodedLen)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sig, dec) {
		t.Fatal("decode(encode(sig)) != sig")
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("encode(decode(b)) != b")
	}
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Error("truncated encoding decoded without error")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("unknown version decoded without error")
	}
}

// TestIndexRetrieval: banding must surface a near-duplicate as a
// candidate, rank it first, and never return the query itself.
func TestIndexRetrieval(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ix := NewIndex()
	base := randHist(r, 60)
	feats := randFeatures(r)
	qsig := New(base, feats)
	ix.Insert("query", qsig)
	ix.Insert("near", New(mutateHist(r, base, 2), feats))
	for i := 0; i < 30; i++ {
		ix.Insert(fmt.Sprintf("far%02d", i), New(randHist(r, 60), randFeatures(r)))
	}
	cands, bandHits := ix.Query("query", qsig, qsig.Distance, 5)
	if bandHits < 1 {
		t.Fatal("banding surfaced no candidates for a near-duplicate")
	}
	if len(cands) == 0 || cands[0].FP != "near" {
		t.Fatalf("top candidate = %+v, want near", cands)
	}
	for _, c := range cands {
		if c.FP == "query" {
			t.Fatal("query returned itself")
		}
	}
}

// TestIndexBackfill: when banding surfaces fewer candidates than the
// budget, the linear fallback must still fill it.
func TestIndexBackfill(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ix := NewIndex()
	for i := 0; i < 10; i++ {
		ix.Insert(fmt.Sprintf("g%02d", i), New(randHist(r, 60), randFeatures(r)))
	}
	q := New(randHist(r, 60), randFeatures(r))
	cands, _ := ix.Query("absent", q, q.Distance, 8)
	if len(cands) != 8 {
		t.Fatalf("got %d candidates with backfill, want 8", len(cands))
	}
}

// TestIndexRemoveAndReset: removal drops every bucket reference;
// Reset swaps the population atomically.
func TestIndexRemoveAndReset(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ix := NewIndex()
	sigs := make(map[string]*Signature)
	for i := 0; i < 20; i++ {
		fp := fmt.Sprintf("g%02d", i)
		sigs[fp] = New(randHist(r, 40), randFeatures(r))
		ix.Insert(fp, sigs[fp])
	}
	ix.Remove("g07")
	if _, ok := ix.Signature("g07"); ok {
		t.Fatal("removed fingerprint still resolvable")
	}
	q := sigs["g07"]
	cands, _ := ix.Query("none", q, q.Distance, 50)
	for _, c := range cands {
		if c.FP == "g07" {
			t.Fatal("removed fingerprint still retrievable")
		}
	}
	ix.Reset(map[string]*Signature{"only": sigs["g01"]})
	if got := ix.Fingerprints(); len(got) != 1 || got[0] != "only" {
		t.Fatalf("after Reset: %v, want [only]", got)
	}
}

// TestCandidatePairs: identical signatures must pair; the output is
// sorted and deduplicated.
func TestCandidatePairs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ix := NewIndex()
	h := randHist(r, 50)
	f := randFeatures(r)
	ix.Insert("b", New(h, f))
	ix.Insert("a", New(h, f))
	ix.Insert("c", New(randHist(r, 50), randFeatures(r)))
	pairs := ix.CandidatePairs(FamilyAll)
	found := false
	for i, p := range pairs {
		if p[0] >= p[1] {
			t.Errorf("pair %v not ordered", p)
		}
		if i > 0 && !(pairs[i-1][0] < p[0] || (pairs[i-1][0] == p[0] && pairs[i-1][1] < p[1])) {
			t.Errorf("pair list not sorted at %d: %v", i, pairs)
		}
		if p == [2]string{"a", "b"} {
			found = true
		}
	}
	if !found {
		t.Fatalf("identical signatures (a,b) not a candidate pair: %v", pairs)
	}
	// Family scoping: identical signatures collide in each family alone.
	for _, fam := range []Family{FamilyWL, FamilyFeat} {
		got := ix.CandidatePairs(fam)
		ok := false
		for _, p := range got {
			if p == [2]string{"a", "b"} {
				ok = true
			}
		}
		if !ok {
			t.Errorf("family %b candidate pairs miss (a,b): %v", fam, got)
		}
	}
}

// TestIndexConcurrency: concurrent inserts, removes, and queries under
// the race detector.
func TestIndexConcurrency(t *testing.T) {
	ix := NewIndex()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				fp := fmt.Sprintf("w%d-%d", w, i%10)
				sig := New(randHist(r, 20), randFeatures(r))
				ix.Insert(fp, sig)
				ix.Query(fp, sig, sig.Distance, 5)
				if i%3 == 0 {
					ix.Remove(fp)
				}
			}
		}(w)
	}
	wg.Wait()
}
