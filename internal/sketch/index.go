package sketch

import (
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// Candidate is one ranked retrieval result: a fingerprint and its
// sketch distance from the query under the ranking the caller chose.
type Candidate struct {
	FP   string
	Dist float64
}

// Index is the in-memory locality-sensitive index: signatures keyed by
// fingerprint plus one bucket map per band of each sketch family.
// Membership mutations (Insert/Remove/Reset) are O(bands); queries
// touch only the buckets the query signature lands in, falling back to
// a linear sketch scan only when banding surfaces fewer candidates
// than the caller's budget. Safe for concurrent use.
type Index struct {
	mu   sync.RWMutex
	sigs map[string]*Signature
	wl   [WLBands]map[uint64]map[string]struct{}
	feat [FeatBands]map[uint64]map[string]struct{}
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{sigs: make(map[string]*Signature)}
	for b := range ix.wl {
		ix.wl[b] = make(map[uint64]map[string]struct{})
	}
	for b := range ix.feat {
		ix.feat[b] = make(map[uint64]map[string]struct{})
	}
	return ix
}

// Len returns the number of indexed fingerprints.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sigs)
}

// Signature returns the indexed signature for a fingerprint.
func (ix *Index) Signature(fp string) (*Signature, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s, ok := ix.sigs[fp]
	return s, ok
}

// Fingerprints returns the indexed fingerprints in sorted order.
func (ix *Index) Fingerprints() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.sigs))
	for fp := range ix.sigs {
		out = append(out, fp)
	}
	sort.Strings(out)
	return out
}

// Insert adds (or replaces) a fingerprint's signature and buckets it
// into every band.
func (ix *Index) Insert(fp string, sig *Signature) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.sigs[fp]; ok {
		ix.unbucket(fp, old)
	}
	ix.sigs[fp] = sig
	ix.bucket(fp, sig)
	telemetry.Add("sketch/index_inserts", 1)
}

// Remove drops a fingerprint from the index. Unknown fingerprints are
// a no-op.
func (ix *Index) Remove(fp string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	sig, ok := ix.sigs[fp]
	if !ok {
		return
	}
	ix.unbucket(fp, sig)
	delete(ix.sigs, fp)
	telemetry.Add("sketch/index_removes", 1)
}

// Reset atomically replaces the whole index content — the rebuild
// path. Queries see either the old population or the new one, never a
// mix.
func (ix *Index) Reset(sigs map[string]*Signature) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.sigs = make(map[string]*Signature, len(sigs))
	for b := range ix.wl {
		ix.wl[b] = make(map[uint64]map[string]struct{})
	}
	for b := range ix.feat {
		ix.feat[b] = make(map[uint64]map[string]struct{})
	}
	for fp, sig := range sigs {
		ix.sigs[fp] = sig
		ix.bucket(fp, sig)
	}
}

func (ix *Index) bucket(fp string, sig *Signature) {
	for b := 0; b < WLBands; b++ {
		key := sig.wlBandKey(b)
		set := ix.wl[b][key]
		if set == nil {
			set = make(map[string]struct{})
			ix.wl[b][key] = set
		}
		set[fp] = struct{}{}
	}
	for b := 0; b < FeatBands; b++ {
		key := sig.featBandKey(b)
		set := ix.feat[b][key]
		if set == nil {
			set = make(map[string]struct{})
			ix.feat[b][key] = set
		}
		set[fp] = struct{}{}
	}
}

func (ix *Index) unbucket(fp string, sig *Signature) {
	for b := 0; b < WLBands; b++ {
		key := sig.wlBandKey(b)
		if set := ix.wl[b][key]; set != nil {
			delete(set, fp)
			if len(set) == 0 {
				delete(ix.wl[b], key)
			}
		}
	}
	for b := 0; b < FeatBands; b++ {
		key := sig.featBandKey(b)
		if set := ix.feat[b][key]; set != nil {
			delete(set, fp)
			if len(set) == 0 {
				delete(ix.feat[b], key)
			}
		}
	}
}

// Query retrieves up to limit candidates for a query signature, ranked
// by dist (ascending, ties broken by fingerprint so the result is
// deterministic). fp itself is excluded. bandHits reports how many
// distinct fingerprints banding surfaced before ranking and capping —
// the telemetry input for the candidates/pruned counters.
//
// When banding surfaces fewer than limit candidates (a query far from
// every bucket, or a tiny index), the remaining budget is backfilled
// by a linear sketch scan: recall degrades to the sketch estimate's
// quality, never to an empty answer.
func (ix *Index) Query(fp string, sig *Signature, dist func(*Signature) float64, limit int) (cands []Candidate, bandHits int) {
	if limit <= 0 {
		return nil, 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	seen := make(map[string]struct{})
	for b := 0; b < WLBands; b++ {
		for member := range ix.wl[b][sig.wlBandKey(b)] {
			if member != fp {
				seen[member] = struct{}{}
			}
		}
	}
	for b := 0; b < FeatBands; b++ {
		for member := range ix.feat[b][sig.featBandKey(b)] {
			if member != fp {
				seen[member] = struct{}{}
			}
		}
	}
	bandHits = len(seen)
	if bandHits < limit {
		for member := range ix.sigs {
			if member != fp {
				seen[member] = struct{}{}
			}
		}
	}
	cands = make([]Candidate, 0, len(seen))
	for member := range seen {
		cands = append(cands, Candidate{FP: member, Dist: dist(ix.sigs[member])})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Dist != cands[j].Dist {
			return cands[i].Dist < cands[j].Dist
		}
		return cands[i].FP < cands[j].FP
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	return cands, bandHits
}

// Family selects which sketch families vouch for candidates. Scoping
// matters because the families have very different selectivity on
// homogeneous corpora: same-generator graphs often have near-identical
// NetSimile feature directions (feature bands vouch for almost every
// pair — correctly, they ARE feature-similar) while their WL label
// multisets still separate cleanly. A caller pruning for a WL-family
// metric should therefore consult WL bands only.
type Family uint8

// The band families.
const (
	FamilyWL Family = 1 << iota
	FamilyFeat

	FamilyAll = FamilyWL | FamilyFeat
)

// CandidatePairs returns every unordered fingerprint pair sharing at
// least one band bucket of the selected families, sorted (pairs
// ordered, list sorted) so the output is deterministic. This is the
// all-pairs pruning primitive the oversized-batch path uses: full
// metric evaluation is spent only on pairs some selected band
// considers similar.
func (ix *Index) CandidatePairs(fam Family) [][2]string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pairSet := make(map[[2]string]struct{})
	collect := func(set map[string]struct{}) {
		if len(set) < 2 {
			return
		}
		members := make([]string, 0, len(set))
		for fp := range set {
			members = append(members, fp)
		}
		sort.Strings(members)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				pairSet[[2]string{members[i], members[j]}] = struct{}{}
			}
		}
	}
	if fam&FamilyWL != 0 {
		for b := range ix.wl {
			for _, set := range ix.wl[b] {
				collect(set)
			}
		}
	}
	if fam&FamilyFeat != 0 {
		for b := range ix.feat {
			for _, set := range ix.feat[b] {
				collect(set)
			}
		}
	}
	pairs := make([][2]string, 0, len(pairSet))
	for p := range pairSet {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}
