package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aiger"
	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/tt"
)

// testAIG synthesizes a deterministic small AIG (distinct per seed) and
// returns its AIGER ASCII encoding.
func testAIG(t *testing.T, seed int64) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := synth.SynthSOP([]tt.TT{tt.Random(6, r)})
	var b bytes.Buffer
	if err := aiger.WriteASCII(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// newDaemon spins up a real aigd over httptest and a client pointed at
// it with instant (recorded, not slept) backoffs.
func newDaemon(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.Enable()
	reg.Reset()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts, reg
}

// newClient builds a client whose sleeps return instantly and are
// recorded, so retry schedules are asserted, never waited for.
func newClient(t *testing.T, cfg Config) (*Client, *[]time.Duration) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	slept := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		mu.Lock()
		*slept = append(*slept, d)
		mu.Unlock()
		return nil
	}
	return c, slept
}

// TestClientEndToEnd drives every client method against a real daemon.
func TestClientEndToEnd(t *testing.T) {
	_, ts, _ := newDaemon(t, service.Config{Workers: 2})
	c, _ := newClient(t, Config{BaseURL: ts.URL})
	ctx := context.Background()

	a, err := c.SubmitAIG(ctx, testAIG(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitAIG(ctx, testAIG(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Fatalf("distinct AIGs collided on %s", a.Fingerprint)
	}
	if got, err := c.GetAIG(ctx, a.Fingerprint); err != nil || got.Fingerprint != a.Fingerprint {
		t.Fatalf("GetAIG = %+v, %v", got, err)
	}

	scores, err := c.Metrics(ctx, a.Fingerprint, b.Fingerprint, []string{"VEO"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scores["VEO"]; !ok {
		t.Fatalf("metrics missing VEO: %v", scores)
	}
	pairs, err := c.MetricsBatch(ctx, []string{a.Fingerprint, b.Fingerprint}, []string{"VEO"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("batch pairs = %d, want 1", len(pairs))
	}

	id, err := c.Optimize(ctx, a.Fingerprint, "", 7)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Await(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != service.JobDone {
		t.Fatalf("optimize job ended %s (%s)", v.Status, v.Error)
	}

	rid, err := c.Report(ctx, a.Fingerprint, b.Fingerprint, []string{"dc2"}, []string{"VEO"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v, err = c.Await(ctx, rid); err != nil || v.Status != service.JobDone {
		t.Fatalf("report job ended %+v, %v", v, err)
	}

	// Contract errors surface as *APIError without retries.
	if _, err := c.GetAIG(ctx, "nope"); err == nil {
		t.Fatal("expected error for unknown fingerprint")
	} else {
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
			t.Fatalf("want 404 APIError, got %v", err)
		}
	}
}

// TestClientRetriesThenSucceeds proves the retry loop rides out
// transient saturation and that the daemon's Retry-After floor is
// honored over the jittered backoff.
func TestClientRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"saturated, retry later"}`)
			return
		}
		fmt.Fprint(w, `{"fingerprint":"abc"}`)
	}))
	defer ts.Close()

	c, slept := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond})
	v, err := c.GetAIG(context.Background(), "abc")
	if err != nil {
		t.Fatal(err)
	}
	if v.Fingerprint != "abc" {
		t.Fatalf("fingerprint = %q", v.Fingerprint)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("sleeps = %v, want 2 entries", *slept)
	}
	for _, d := range *slept {
		if d < 7*time.Second {
			t.Fatalf("backoff %v ignored Retry-After: 7", d)
		}
	}
}

// TestClientBackoffDeterminism: same seed, same jitter schedule.
func TestClientBackoffDeterminism(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		c, err := New(Config{BaseURL: "http://invalid", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = c.backoff(i)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded backoff diverged at %d: %v vs %v", i, a[i], b[i])
		}
		ceil := 100 * time.Millisecond << i
		if ceil > 5*time.Second {
			ceil = 5 * time.Second
		}
		if a[i] < 0 || a[i] > ceil {
			t.Fatalf("backoff[%d] = %v outside [0, %v]", i, a[i], ceil)
		}
	}
}

// TestClientDeadlinePropagation: the client must not sleep past the
// caller's deadline — it fails immediately with the last real cause.
func TestClientDeadlinePropagation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer ts.Close()

	c, slept := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 5})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	_, err := c.GetAIG(ctx, "abc")
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "deadline cannot cover") {
		t.Fatalf("error does not name the deadline: %v", err)
	}
	if len(*slept) != 0 {
		t.Fatalf("client slept %v with a 1s budget and a 30s hint", *slept)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v, should fail fast", elapsed)
	}
}

// TestClientBreaker: consecutive service failures open the endpoint's
// breaker (requests are refused locally), the cooldown admits one
// half-open probe, and a probe success closes the breaker again.
func TestClientBreaker(t *testing.T) {
	var fail atomic.Bool
	var calls atomic.Int64
	fail.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if fail.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"down"}`)
			return
		}
		fmt.Fprint(w, `{"fingerprint":"abc"}`)
	}))
	defer ts.Close()

	c, _ := newClient(t, Config{
		BaseURL: ts.URL, MaxAttempts: 1,
		BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
	})
	var clock atomic.Int64
	base := time.Unix(1700000000, 0)
	c.now = func() time.Time { return base.Add(time.Duration(clock.Load())) }

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.GetAIG(ctx, "abc"); err == nil {
			t.Fatal("expected failure")
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("daemon saw %d calls, want 2", got)
	}
	// Threshold reached: the breaker now fails fast without touching
	// the daemon.
	if _, err := c.GetAIG(ctx, "abc"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("open breaker let a request through (%d calls)", got)
	}

	// Cooldown elapses; the half-open probe reaches a recovered daemon
	// and the breaker closes for good.
	fail.Store(false)
	clock.Store(int64(11 * time.Second))
	if _, err := c.GetAIG(ctx, "abc"); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.GetAIG(ctx, "abc"); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("daemon saw %d calls, want 4", got)
	}
}

// dropOnce simulates a lost response: the request reaches the daemon
// and is fully processed, but the client never sees the answer.
type dropOnce struct {
	rt      http.RoundTripper
	mu      sync.Mutex
	dropped bool
}

func (d *dropOnce) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.rt.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.dropped && req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/v1/optimize") {
		d.dropped = true
		_ = resp.Body.Close()
		return nil, fmt.Errorf("simulated response loss")
	}
	return resp, nil
}

// TestClientIdempotentRetry: a retried submission whose first attempt
// actually reached the daemon dedups server-side — one job, one
// admission slot, and the replay is visible in telemetry.
func TestClientIdempotentRetry(t *testing.T) {
	_, ts, reg := newDaemon(t, service.Config{Workers: 2})
	c, _ := newClient(t, Config{
		BaseURL:    ts.URL,
		HTTPClient: &http.Client{Transport: &dropOnce{rt: http.DefaultTransport}},
	})
	ctx := context.Background()

	a, err := c.SubmitAIG(ctx, testAIG(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Optimize(ctx, a.Fingerprint, "", 7)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Await(ctx, id)
	if err != nil || v.Status != service.JobDone {
		t.Fatalf("job ended %+v, %v", v, err)
	}
	if got := reg.Counter("service/jobs_submitted").Value(); got != 1 {
		t.Fatalf("jobs_submitted = %d, want 1 (duplicate job scheduled)", got)
	}
	if got := reg.Counter("service/idempotent_replays").Value(); got != 1 {
		t.Fatalf("idempotent_replays = %d, want 1", got)
	}
}

// TestClientSaturatedDaemon: with the pool-submit fault armed the
// daemon sheds every job submission; the client retries its budget and
// surfaces the 429, and the daemon stays fully serviceable afterwards.
func TestClientSaturatedDaemon(t *testing.T) {
	_, ts, _ := newDaemon(t, service.Config{Workers: 2})
	t.Cleanup(func() {
		faultinject.Disable()
		faultinject.Reset()
	})

	c, slept := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 3})
	ctx := context.Background()
	a, err := c.SubmitAIG(ctx, testAIG(t, 4))
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(service.PointPoolSubmit, faultinject.Always(), faultinject.Fault{Mode: faultinject.ModeError})
	faultinject.Enable()
	_, err = c.Optimize(ctx, a.Fingerprint, "", 7)
	if err == nil {
		t.Fatal("expected saturation failure")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("want 429 APIError, got %v", err)
	}
	if !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("error does not show exhausted retries: %v", err)
	}
	if len(*slept) != 2 {
		t.Fatalf("retry sleeps = %v, want 2", *slept)
	}

	// Disarm: the daemon recovers without restart, and the 429s did not
	// leak admission slots — the full job pipeline still works.
	faultinject.Disable()
	faultinject.Reset()
	id, err := c.Optimize(ctx, a.Fingerprint, "", 7)
	if err != nil {
		t.Fatalf("daemon did not recover: %v", err)
	}
	if v, err := c.Await(ctx, id); err != nil || v.Status != service.JobDone {
		t.Fatalf("post-recovery job ended %+v, %v", v, err)
	}
}
