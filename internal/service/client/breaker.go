package client

import (
	"errors"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrBreakerOpen is returned (wrapped) when a request is refused
// locally because the endpoint's circuit breaker is open: the daemon
// has failed enough consecutive calls that hammering it further would
// only deepen the outage. The caller sees the failure immediately —
// no connection, no backoff wait — and can try again after the
// cooldown.
var ErrBreakerOpen = errors.New("circuit breaker open")

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-endpoint circuit breaker.
//
//	closed    — requests flow; consecutive failures are counted.
//	open      — every request is refused until the cooldown elapses.
//	half-open — exactly one probe request is allowed through; its
//	            outcome decides between closed (success) and another
//	            full open cooldown (failure).
//
// The breaker only counts *service* failures (transport errors, 429,
// 503). A 400 or 404 proves the daemon is alive and is recorded as a
// success.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
}

// allow reports whether a request may proceed. In half-open state only
// one in-flight probe is admitted; every allowed caller MUST call
// report with the outcome.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrBreakerOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		telemetry.Add("client/breaker_half_open", 1)
		return nil
	default: // half-open
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// open reports whether the breaker is currently refusing requests:
// within an open cooldown, or half-open with its single probe already
// in flight.
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return b.now().Sub(b.openedAt) < b.cooldown
	case breakerHalfOpen:
		return b.probing
	}
	return false
}

// report records the outcome of an allowed request.
func (b *breaker) report(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		if b.state != breakerClosed {
			telemetry.Add("client/breaker_closed", 1)
		}
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: back to a full cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		telemetry.Add("client/breaker_open", 1)
	default:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			telemetry.Add("client/breaker_open", 1)
		}
	}
}
