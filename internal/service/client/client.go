// Package client is the resilient Go client for aigd, the diversity
// daemon in internal/service. It exists because the harness side of a
// deployment talks to the daemon over a real network under real load,
// where the daemon legitimately answers "not now": 429 when an
// admission budget is full, 503 while draining for restart, transport
// errors while a new process comes up.
//
// The client turns those into a disciplined retry conversation instead
// of either giving up or hammering:
//
//   - capped exponential backoff with full jitter, honoring the
//     daemon's Retry-After hint as a floor for the next delay;
//   - strict deadline propagation — the context governs the request,
//     every backoff sleep, and is never out-waited: if the remaining
//     budget cannot cover the next delay the client fails now rather
//     than burning the caller's deadline asleep;
//   - a per-endpoint circuit breaker so a dead daemon costs one
//     cooldown per endpoint, not one timeout per call;
//   - idempotency keys on job submissions (drawn from a seeded
//     generator) so a retried POST /v1/optimize that actually reached
//     the daemon the first time dedups server-side instead of
//     double-spending an admission slot and creating a duplicate job.
//
// Only "try again later" answers are retried: 429, 503, and transport
// failures. 4xx contract errors are returned immediately as *APIError.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Config sizes a Client. The zero value plus a BaseURL is usable:
// every other field has a production default.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// HTTPClient, when set, replaces http.DefaultClient. Per-request
	// timeouts belong in the caller's context, not here.
	HTTPClient *http.Client

	// MaxAttempts bounds tries per call, first attempt included
	// (default 4).
	MaxAttempts int
	// AttemptTimeout, when positive, bounds each individual HTTP
	// attempt separately from the overall ctx deadline. Without it a
	// single stalled peer eats the caller's whole budget before any
	// retry or failover can happen; with it a slow attempt is cut off,
	// counted as retryable, and the remaining budget goes to the next
	// attempt (or, in cluster routing, the next replica). Default 0 =
	// off; the cluster's peer path always sets it.
	AttemptTimeout time.Duration
	// BaseBackoff and MaxBackoff shape the capped exponential backoff:
	// attempt n sleeps a full-jitter draw from
	// [0, min(MaxBackoff, BaseBackoff·2ⁿ)) (defaults 100ms and 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed feeds the jitter and idempotency-key generator; a fixed
	// seed replays the exact retry schedule (default 1).
	Seed int64

	// BreakerThreshold consecutive service failures open an endpoint's
	// breaker for BreakerCooldown (defaults 5 and 10s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// PollInterval paces Await's job polling (default 50ms).
	PollInterval time.Duration

	// Headers, when set, decorates every attempt's request headers.
	// The cluster layer and the gateway use it to stamp the membership
	// epoch (EpochHeader) onto peer traffic; reading the current epoch
	// at send time (rather than at client construction) is what lets a
	// long-lived client survive reconfigurations without being rebuilt.
	Headers func(h http.Header)
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 50 * time.Millisecond
	}
	return c
}

// APIError is a non-retryable daemon answer: the request reached the
// daemon and was refused on contract grounds (bad AIGER, unknown
// fingerprint, unknown flow, ...).
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("aigd: HTTP %d: %s", e.Status, e.Message)
}

// Client is a resilient aigd client. It is safe for concurrent use.
type Client struct {
	cfg  Config
	base string

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	breakers sync.Map // endpoint name → *breaker

	// sleep and now are injection points for tests; production uses
	// timer sleeps and time.Now.
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time
}

// New builds a Client. Only a missing BaseURL is an error.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: Config.BaseURL is required")
	}
	cfg = cfg.withDefaults()
	return &Client{
		cfg:   cfg,
		base:  strings.TrimRight(cfg.BaseURL, "/"),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		sleep: sleepCtx,
		now:   time.Now,
	}, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) breakerFor(endpoint string) *breaker {
	if b, ok := c.breakers.Load(endpoint); ok {
		return b.(*breaker)
	}
	b, _ := c.breakers.LoadOrStore(endpoint, &breaker{
		threshold: c.cfg.BreakerThreshold,
		cooldown:  c.cfg.BreakerCooldown,
		now:       c.now,
	})
	return b.(*breaker)
}

// backoff draws the full-jitter delay for a (0-based) retry attempt.
func (c *Client) backoff(attempt int) time.Duration {
	ceil := c.cfg.BaseBackoff << attempt
	if ceil > c.cfg.MaxBackoff || ceil <= 0 {
		ceil = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(ceil) + 1))
}

// idemKey draws a fresh idempotency key. One key covers one logical
// submission across all its retries.
func (c *Client) idemKey() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("ck-%016x%016x", c.rng.Uint64(), c.rng.Uint64())
}

// retryAfter parses a Retry-After header as delay seconds (the only
// form the daemon emits). Absent or unparseable → 0.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do runs one retried HTTP conversation: body sent verbatim with
// contentType, response decoded into out (if non-nil) on 2xx.
// idemKey, when non-empty, rides every attempt as Idempotency-Key.
//
// The whole conversation is one "client/http" span — every retry is an
// event on it and every attempt carries the same traceparent, so the
// daemon stitches all attempts (and the dedup'd job they land on) to
// one trace. With tracing disabled locally, EnsureRoot still pins one
// root identity per conversation for the same stitching server-side.
func (c *Client) do(ctx context.Context, endpoint, method, path, contentType string, body []byte, idemKey string, out any) (err error) {
	ctx, sp := trace.Start(ctx, "client/http")
	if sp == nil {
		ctx = trace.EnsureRoot(ctx)
	}
	sp.Attr("endpoint", endpoint).Attr("method", method).Attr("path", path)
	defer sp.End()
	defer func() { sp.Fail(err) }()
	br := c.breakerFor(endpoint)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("aigd %s %s: %w (last failure: %v)", method, path, err, lastErr)
			}
			return fmt.Errorf("aigd %s %s: %w", method, path, err)
		}
		if err := br.allow(); err != nil {
			telemetry.Add("client/breaker_rejects", 1)
			return fmt.Errorf("aigd %s %s: %w", method, path, err)
		}

		retryable, hint, err := c.attempt(ctx, method, path, contentType, body, idemKey, out)
		if err == nil {
			br.report(true)
			return nil
		}
		// A contract refusal (or an epoch-mismatch 409, which proves
		// the daemon is up and answering) means the daemon is healthy;
		// only "not now" answers and transport failures count against
		// it.
		br.report(!retryable && (isAPIError(err) || isStaleEpoch(err)))
		lastErr = err
		if !retryable {
			return fmt.Errorf("aigd %s %s: %w", method, path, err)
		}
		telemetry.Add("client/retryable_failures", 1)
		if attempt+1 >= c.cfg.MaxAttempts {
			return fmt.Errorf("aigd %s %s: %d attempts exhausted: %w", method, path, c.cfg.MaxAttempts, lastErr)
		}

		delay := c.backoff(attempt)
		if hint > delay {
			// The daemon knows its backlog better than our jitter does.
			delay = hint
		}
		// Deadline propagation: never sleep past the caller's budget —
		// fail now with the real cause instead of waking up expired.
		if dl, ok := ctx.Deadline(); ok && c.now().Add(delay).After(dl) {
			return fmt.Errorf("aigd %s %s: deadline cannot cover %s backoff: %w", method, path, delay, lastErr)
		}
		telemetry.Add("client/retries", 1)
		trace.AddEvent(ctx, "retry", trace.A("attempt", attempt), trace.A("delay_ms", delay.Milliseconds()))
		if err := c.sleep(ctx, delay); err != nil {
			return fmt.Errorf("aigd %s %s: %w (last failure: %v)", method, path, err, lastErr)
		}
	}
}

func isAPIError(err error) bool {
	var ae *APIError
	return errors.As(err, &ae)
}

func isStaleEpoch(err error) bool {
	var se *StaleEpochError
	return errors.As(err, &se)
}

// attempt performs one HTTP round trip. retryable reports whether the
// failure is worth another attempt; hint carries the daemon's
// Retry-After, when present. A configured AttemptTimeout bounds this
// attempt alone: its expiry is a retryable service failure (the peer
// is slow), judged against the caller's ctx — only the caller's own
// cancellation is terminal.
func (c *Client) attempt(ctx context.Context, method, path, contentType string, body []byte, idemKey string, out any) (retryable bool, hint time.Duration, err error) {
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return false, 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	if c.cfg.Headers != nil {
		c.cfg.Headers(req.Header)
	}
	trace.Inject(ctx, req.Header)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		// Transport failure: daemon restarting, connection refused, ...
		// — unless it is really the caller's context, which must not be
		// retried into.
		return ctx.Err() == nil, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return true, 0, fmt.Errorf("reading response: %w", err)
	}

	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return false, 0, nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return false, 0, fmt.Errorf("decoding response: %w", err)
		}
		return false, 0, nil
	}

	msg := strings.TrimSpace(string(raw))
	var eresp struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
		msg = eresp.Error
	}
	apiErr := &APIError{Status: resp.StatusCode, Message: msg}
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true, retryAfter(resp), apiErr
	case http.StatusConflict:
		// A structured epoch-mismatch 409 carries the answering node's
		// membership view; surface it as a typed error so routing
		// layers (gateway, cluster) can re-resolve membership instead
		// of treating the refusal as final. Retrying the same node with
		// the same stale epoch would only repeat the answer.
		var es EpochStatus
		if json.Unmarshal(raw, &es) == nil && es.Epoch > 0 && len(es.Members) > 0 {
			telemetry.Add("client/epoch_mismatches", 1)
			return false, 0, &StaleEpochError{Node: es.Node, Epoch: es.Epoch, Members: es.Members, Message: msg}
		}
		return false, 0, apiErr
	default:
		return false, 0, apiErr
	}
}

// --- request mirrors of the daemon's unexported wire types -------------

type metricsReq struct {
	A       string   `json:"a"`
	B       string   `json:"b"`
	Metrics []string `json:"metrics,omitempty"`
}

type metricsResp struct {
	Scores map[string]float64 `json:"scores"`
}

type batchReq struct {
	AIGs    []string `json:"aigs"`
	Metrics []string `json:"metrics,omitempty"`
}

// BatchPair is one scored unordered pair of a batch call, indexed into
// the submitted fingerprint list.
type BatchPair struct {
	I      int                `json:"i"`
	J      int                `json:"j"`
	Scores map[string]float64 `json:"scores"`
}

type batchResp struct {
	Pairs []BatchPair `json:"pairs"`
}

type neighborsReq struct {
	FP     string `json:"fp"`
	K      int    `json:"k,omitempty"`
	Metric string `json:"metric,omitempty"`
	Exact  bool   `json:"exact,omitempty"`
	Budget int    `json:"budget,omitempty"`
}

type diverseReq struct {
	AIGs   []string `json:"aigs,omitempty"`
	K      int      `json:"k"`
	Metric string   `json:"metric,omitempty"`
}

type optimizeReq struct {
	AIG  string `json:"aig"`
	Flow string `json:"flow"`
	Seed int64  `json:"seed,omitempty"`
}

type reportReq struct {
	A       string   `json:"a"`
	B       string   `json:"b"`
	Flows   []string `json:"flows,omitempty"`
	Metrics []string `json:"metrics,omitempty"`
	Seed    int64    `json:"seed,omitempty"`
}

type jobAccepted struct {
	ID string `json:"id"`
}

// --- API surface -------------------------------------------------------

// SubmitAIG uploads an AIGER payload (ASCII or binary) and returns the
// daemon's content-addressed view of it.
func (c *Client) SubmitAIG(ctx context.Context, aiger []byte) (service.AIGView, error) {
	var v service.AIGView
	err := c.do(ctx, "aigs", http.MethodPost, "/v1/aigs", "application/octet-stream", aiger, "", &v)
	return v, err
}

// GetAIG fetches the stored view of a fingerprint.
func (c *Client) GetAIG(ctx context.Context, fp string) (service.AIGView, error) {
	var v service.AIGView
	err := c.do(ctx, "aigs", http.MethodGet, "/v1/aigs/"+fp, "", nil, "", &v)
	return v, err
}

// Metrics scores one stored pair. Empty metrics means the daemon's
// full metric set.
func (c *Client) Metrics(ctx context.Context, a, b string, metrics []string) (map[string]float64, error) {
	body, err := json.Marshal(metricsReq{A: a, B: b, Metrics: metrics})
	if err != nil {
		return nil, err
	}
	var resp metricsResp
	if err := c.do(ctx, "metrics", http.MethodPost, "/v1/metrics", "application/json", body, "", &resp); err != nil {
		return nil, err
	}
	return resp.Scores, nil
}

// MetricsBatch scores every unordered pair among stored fingerprints.
func (c *Client) MetricsBatch(ctx context.Context, fps []string, metrics []string) ([]BatchPair, error) {
	body, err := json.Marshal(batchReq{AIGs: fps, Metrics: metrics})
	if err != nil {
		return nil, err
	}
	var resp batchResp
	if err := c.do(ctx, "batch", http.MethodPost, "/v1/metrics/batch", "application/json", body, "", &resp); err != nil {
		return nil, err
	}
	return resp.Pairs, nil
}

// NeighborsOptions tunes a k-NN query; the zero value uses the
// daemon's defaults (k=10, WLKernel, sketch-pruned with the default
// candidate budget).
type NeighborsOptions struct {
	K      int
	Metric string
	// Exact forces the ground-truth full-corpus scan.
	Exact bool
	// Budget caps sketch-pruned candidates getting full evaluation.
	Budget int
}

// Neighbors runs a k-NN query for a stored fingerprint.
func (c *Client) Neighbors(ctx context.Context, fp string, opts NeighborsOptions) (service.NeighborsResponse, error) {
	body, err := json.Marshal(neighborsReq{
		FP: fp, K: opts.K, Metric: opts.Metric, Exact: opts.Exact, Budget: opts.Budget,
	})
	if err != nil {
		return service.NeighborsResponse{}, err
	}
	var resp service.NeighborsResponse
	err = c.do(ctx, "neighbors", http.MethodPost, "/v1/neighbors", "application/json", body, "", &resp)
	return resp, err
}

// DiverseSubset runs greedy max-min diversity selection over stored
// fingerprints (nil pool = the daemon's whole corpus).
func (c *Client) DiverseSubset(ctx context.Context, pool []string, k int, metric string) (service.DiverseResponse, error) {
	body, err := json.Marshal(diverseReq{AIGs: pool, K: k, Metric: metric})
	if err != nil {
		return service.DiverseResponse{}, err
	}
	var resp service.DiverseResponse
	err = c.do(ctx, "diverse", http.MethodPost, "/v1/diverse-subset", "application/json", body, "", &resp)
	return resp, err
}

// Optimize submits an async optimization job and returns its ID. The
// submission carries a generated idempotency key, so a retry that
// races a slow first attempt lands on the same job server-side.
func (c *Client) Optimize(ctx context.Context, fp, flow string, seed int64) (string, error) {
	body, err := json.Marshal(optimizeReq{AIG: fp, Flow: flow, Seed: seed})
	if err != nil {
		return "", err
	}
	var acc jobAccepted
	if err := c.do(ctx, "optimize", http.MethodPost, "/v1/optimize", "application/json", body, c.idemKey(), &acc); err != nil {
		return "", err
	}
	return acc.ID, nil
}

// Report submits an async ROD-style pair report job and returns its
// ID, idempotency-keyed like Optimize.
func (c *Client) Report(ctx context.Context, a, b string, flows, metrics []string, seed int64) (string, error) {
	body, err := json.Marshal(reportReq{A: a, B: b, Flows: flows, Metrics: metrics, Seed: seed})
	if err != nil {
		return "", err
	}
	var acc jobAccepted
	if err := c.do(ctx, "report", http.MethodPost, "/v1/report", "application/json", body, c.idemKey(), &acc); err != nil {
		return "", err
	}
	return acc.ID, nil
}

// Healthz probes the daemon's liveness endpoint once, without retries
// or backoff — transport failure or a non-2xx answer returns
// immediately. Probe loops (cluster health checking) call this on a
// schedule; routing its failures through the retry/breaker machinery
// would make probe cadence depend on breaker cooldowns.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return &APIError{Status: resp.StatusCode, Message: "healthz"}
	}
	return nil
}

// OpenBreakers returns the (sorted) endpoints whose circuit breaker is
// currently refusing requests. The cluster layer folds this into peer
// health: an open breaker is the client-side symptom of a degraded
// peer, so routing evicts the peer instead of paying a cooldown per
// call.
func (c *Client) OpenBreakers() []string {
	var open []string
	c.breakers.Range(func(k, v any) bool {
		if v.(*breaker).open() {
			open = append(open, k.(string))
		}
		return true
	})
	sort.Strings(open)
	return open
}

// Job polls a job once.
func (c *Client) Job(ctx context.Context, id string) (service.JobView, error) {
	var v service.JobView
	err := c.do(ctx, "jobs", http.MethodGet, "/v1/jobs/"+id, "", nil, "", &v)
	return v, err
}

// Cancel requests job cancellation.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobView, error) {
	var v service.JobView
	err := c.do(ctx, "jobs", http.MethodDelete, "/v1/jobs/"+id, "", nil, "", &v)
	return v, err
}

// Await polls a job until it reaches a terminal state or ctx expires.
// A failed or canceled job is returned with a nil error — the JobView
// carries the outcome; Await errors only mean the conversation itself
// broke.
func (c *Client) Await(ctx context.Context, id string) (service.JobView, error) {
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return service.JobView{}, err
		}
		switch v.Status {
		case service.JobDone, service.JobFailed, service.JobCanceled:
			return v, nil
		}
		if err := c.sleep(ctx, c.cfg.PollInterval); err != nil {
			return service.JobView{}, fmt.Errorf("awaiting job %s: %w", id, err)
		}
	}
}
