package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/ring"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// GatewayConfig sizes a Gateway: the cluster membership it starts from
// plus a per-peer client template.
type GatewayConfig struct {
	// Peers maps node ID → base URL for every cluster member. The IDs
	// must match the -node-id each aigd was started with — they are
	// the consistent-hash ring's member names, so gateway-side routing
	// agrees with server-side ownership.
	Peers map[string]string
	// Replication and VNodes must match the cluster's flags (defaults
	// ring.DefaultReplication and ring.DefaultVNodes).
	Replication int
	VNodes      int
	// Epoch is the membership epoch Peers corresponds to (default 1).
	// It rides every request as EpochHeader; a cluster that has moved
	// past it refuses with a structured 409 carrying its current
	// membership, which the gateway adopts automatically and retries —
	// a gateway started from a stale peer list heals itself on first
	// contact.
	Epoch uint64
	// Client is the per-peer client template; BaseURL is overridden
	// per peer. Leave AttemptTimeout set (default 2s) so one stalled
	// node cannot eat a request's whole budget before failover.
	Client Config
}

// DefaultGatewayAttemptTimeout bounds one attempt against one node on
// the gateway path when the template does not say otherwise.
const DefaultGatewayAttemptTimeout = 2 * time.Second

// gwView is one membership epoch's immutable routing state. Requests
// load it once and route against it; Reconfigure swaps the whole view
// atomically, so in-flight calls never see a half-updated membership.
type gwView struct {
	epoch   uint64
	ring    *ring.Ring
	ids     []string // sorted member IDs
	urls    map[string]string
	clients map[string]*Client
}

// Gateway is the client-side routing mode for a clustered aigd: it
// holds one resilient Client per node and routes each call along the
// same consistent-hash ring the cluster itself uses, so a request for
// a pair usually lands directly on the node that owns (or has cached)
// the answer — no server-side peer hop needed. A failed owner fails
// over to the next replica, then to any remaining node (every node can
// serve every request via its own peer-fill path; routing is a latency
// optimization, never a correctness requirement).
//
// Membership is dynamic: Reconfigure installs a new peer set under a
// higher epoch, and an epoch-mismatch 409 from the cluster triggers
// the same adoption automatically mid-call.
type Gateway struct {
	cfg  GatewayConfig // template: Client config, Replication, VNodes
	view atomic.Pointer[gwView]
	mu   sync.Mutex    // serializes Reconfigure
	rr   atomic.Uint64 // submit round-robin cursor
}

// NewGateway builds a Gateway over the initial membership.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("client: GatewayConfig.Peers is required")
	}
	if cfg.Client.AttemptTimeout <= 0 {
		cfg.Client.AttemptTimeout = DefaultGatewayAttemptTimeout
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	g := &Gateway{cfg: cfg}
	v, err := g.buildView(cfg.Epoch, cfg.Peers, nil)
	if err != nil {
		return nil, err
	}
	g.view.Store(v)
	return g, nil
}

// buildView assembles the routing state for one epoch, reusing clients
// from prev for members whose URL is unchanged (their breaker and
// backoff state carries over — a reconfiguration must not amnesty a
// struggling node).
func (g *Gateway) buildView(epoch uint64, peers map[string]string, prev *gwView) (*gwView, error) {
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	r, err := ring.New(ids, g.cfg.VNodes, g.cfg.Replication)
	if err != nil {
		return nil, err
	}
	v := &gwView{
		epoch:   epoch,
		ring:    r,
		ids:     r.Members(),
		urls:    make(map[string]string, len(peers)),
		clients: make(map[string]*Client, len(peers)),
	}
	for _, id := range v.ids {
		v.urls[id] = peers[id]
		if prev != nil && prev.urls[id] == peers[id] {
			v.clients[id] = prev.clients[id]
			continue
		}
		ccfg := g.cfg.Client
		ccfg.BaseURL = peers[id]
		// The epoch header is read at send time from the gateway, not
		// baked in: a client surviving a reconfiguration stamps the
		// new epoch on its next request.
		ccfg.Headers = func(h http.Header) {
			h.Set(EpochHeader, strconv.FormatUint(g.Epoch(), 10))
		}
		c, err := New(ccfg)
		if err != nil {
			return nil, fmt.Errorf("client: peer %s: %w", id, err)
		}
		v.clients[id] = c
	}
	return v, nil
}

// Reconfigure installs a new membership under a strictly greater
// epoch; a stale or duplicate proposal is a no-op. It is what aigw
// reconfigure/join call explicitly and what a 409 triggers implicitly.
func (g *Gateway) Reconfigure(epoch uint64, peers map[string]string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.view.Load()
	if epoch <= cur.epoch {
		return nil
	}
	v, err := g.buildView(epoch, peers, cur)
	if err != nil {
		return err
	}
	g.view.Store(v)
	telemetry.Add("client/gateway_reconfigures", 1)
	return nil
}

// Epoch returns the membership epoch the gateway currently routes by.
func (g *Gateway) Epoch() uint64 { return g.view.Load().epoch }

// Members returns the sorted node IDs of the current membership.
func (g *Gateway) Members() []string { return g.view.Load().ids }

// Client returns the per-node client, for callers that need to pin a
// specific node (job polling must go back to the node that accepted
// the job — jobs live in one node's memory, they are not replicated).
func (g *Gateway) Client(id string) (*Client, bool) {
	c, ok := g.view.Load().clients[id]
	return c, ok
}

// PairOwners returns the nodes owning a pair's result, in preference
// order — the routing decision Metrics makes, exposed for operators
// (aigw route) and tests.
func (g *Gateway) PairOwners(fpA, fpB string) []string {
	return g.view.Load().ring.Owners(ring.PairKey(fpA, fpB))
}

// AIGOwners returns the nodes owning a stored structure, in preference
// order — the routing decision Neighbors makes. Structures ring-hash on
// the raw fingerprint, matching the server-side replication key.
func (g *Gateway) AIGOwners(fp string) []string {
	return g.view.Load().ring.Owners(fp)
}

// ordered builds a failover order: the given owners first, every
// remaining node after them.
func (v *gwView) ordered(owners []string) []string {
	out := make([]string, 0, len(v.ids))
	out = append(out, owners...)
	inOwners := make(map[string]bool, len(owners))
	for _, id := range owners {
		inOwners[id] = true
	}
	for _, id := range v.ids {
		if !inOwners[id] {
			out = append(out, id)
		}
	}
	return out
}

// roundRobin builds a failover order starting at the round-robin
// cursor — the submit/no-affinity candidate order.
func (g *Gateway) roundRobin(v *gwView) []string {
	start := int(g.rr.Add(1)-1) % len(v.ids)
	candidates := make([]string, 0, len(v.ids))
	for i := 0; i < len(v.ids); i++ {
		candidates = append(candidates, v.ids[(start+i)%len(v.ids)])
	}
	return candidates
}

// failover reports whether an error from one node justifies trying the
// next: everything except a definitive contract refusal (4xx other
// than 429) does. A 404/400 means the cluster understood the request
// and said no — asking another replica would only repeat the answer.
// (Epoch-mismatch 409s never reach here; tryEach adopts and reroutes.)
func failover(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	return true // transport failure, breaker open, ctx-independent exhaustion
}

// tryEach runs call against each candidate in order until one
// succeeds, failing over on retryable outcomes and counting each hop.
// candidatesFn is evaluated against a single membership view per
// round; an epoch-mismatch answer makes the gateway adopt the node's
// fresher membership and start a new round against the new view.
func (g *Gateway) tryEach(ctx context.Context, candidatesFn func(v *gwView) []string, call func(c *Client) error) error {
	var lastErr error
	// Two membership rounds: the second runs only after a 409 taught
	// the gateway a newer membership, which cannot happen twice for
	// one epoch (adoption is monotonic).
	for round := 0; round < 2; round++ {
		v := g.view.Load()
		candidates := candidatesFn(v)
		for i, id := range candidates {
			if err := ctx.Err(); err != nil {
				if lastErr != nil {
					return fmt.Errorf("gateway: %w (last failure: %v)", err, lastErr)
				}
				return err
			}
			c, ok := v.clients[id]
			if !ok {
				continue
			}
			err := call(c)
			if err == nil {
				return nil
			}
			lastErr = err
			var se *StaleEpochError
			if errors.As(err, &se) && round == 0 {
				// The node is on a newer membership: adopt it and
				// re-route the whole call against the fresh ring.
				if rerr := g.Reconfigure(se.Epoch, se.Members); rerr == nil {
					telemetry.Add("client/gateway_epoch_adoptions", 1)
					break
				}
				return err
			}
			if !failover(err) {
				return err
			}
			if i+1 < len(candidates) {
				telemetry.Add("client/gateway_failovers", 1)
			}
		}
		if !isStaleEpoch(lastErr) {
			break
		}
	}
	return fmt.Errorf("gateway: all nodes failed: %w", lastErr)
}

// SubmitAIG uploads an AIGER payload to the cluster. The receiving
// node (round-robin over members, with failover) interns it and
// replicates it to the structure's ring owners server-side.
func (g *Gateway) SubmitAIG(ctx context.Context, aiger []byte) (service.AIGView, error) {
	var v service.AIGView
	err := g.tryEach(ctx, g.roundRobin, func(c *Client) error {
		view, err := c.SubmitAIG(ctx, aiger)
		if err == nil {
			v = view
		}
		return err
	})
	return v, err
}

// Metrics scores a stored pair, routed by fingerprint to the pair's
// ring owner; a dead or saturated owner fails over to its replicas and
// then to the rest of the cluster.
func (g *Gateway) Metrics(ctx context.Context, a, b string, metrics []string) (map[string]float64, error) {
	var scores map[string]float64
	err := g.tryEach(ctx, func(v *gwView) []string {
		return v.ordered(v.ring.Owners(ring.PairKey(a, b)))
	}, func(c *Client) error {
		s, err := c.Metrics(ctx, a, b, metrics)
		if err == nil {
			scores = s
		}
		return err
	})
	return scores, err
}

// Neighbors runs a k-NN query for a stored fingerprint, routed to the
// structure's ring owners first — they hold the structure (and the
// densest local corpus around it) so the answer is most complete
// there. Each node answers from its own store; in a cluster this is a
// per-node view, not a global one.
func (g *Gateway) Neighbors(ctx context.Context, fp string, opts NeighborsOptions) (service.NeighborsResponse, error) {
	var resp service.NeighborsResponse
	err := g.tryEach(ctx, func(v *gwView) []string {
		return v.ordered(v.ring.Owners(fp))
	}, func(c *Client) error {
		r, err := c.Neighbors(ctx, fp, opts)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// DiverseSubset runs greedy max-min diversity selection. With an
// explicit pool the call routes to the first pool member's owners
// (most likely to hold the whole pool); a whole-corpus call
// round-robins like SubmitAIG since every node's corpus is equally
// valid a population.
func (g *Gateway) DiverseSubset(ctx context.Context, pool []string, k int, metric string) (service.DiverseResponse, error) {
	candidatesFn := g.roundRobin
	if len(pool) > 0 {
		candidatesFn = func(v *gwView) []string {
			return v.ordered(v.ring.Owners(pool[0]))
		}
	}
	var resp service.DiverseResponse
	err := g.tryEach(ctx, candidatesFn, func(c *Client) error {
		r, err := c.DiverseSubset(ctx, pool, k, metric)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// Healthz probes every node once and returns the per-node outcome
// (nil = healthy).
func (g *Gateway) Healthz(ctx context.Context) map[string]error {
	v := g.view.Load()
	out := make(map[string]error, len(v.ids))
	for _, id := range v.ids {
		out[id] = v.clients[id].Healthz(ctx)
	}
	return out
}

// Statuses fetches every node's membership/handoff status; the error
// map carries per-node fetch failures (nil = the StatusView is valid).
func (g *Gateway) Statuses(ctx context.Context) (map[string]StatusView, map[string]error) {
	v := g.view.Load()
	views := make(map[string]StatusView, len(v.ids))
	errs := make(map[string]error, len(v.ids))
	for _, id := range v.ids {
		sv, err := v.clients[id].ClusterStatus(ctx)
		if err != nil {
			errs[id] = err
			continue
		}
		views[id] = sv
	}
	return views, errs
}
