package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/cluster/ring"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// GatewayConfig sizes a Gateway: the static cluster membership plus a
// per-peer client template.
type GatewayConfig struct {
	// Peers maps node ID → base URL for every cluster member. The IDs
	// must match the -node-id each aigd was started with — they are
	// the consistent-hash ring's member names, so gateway-side routing
	// agrees with server-side ownership.
	Peers map[string]string
	// Replication and VNodes must match the cluster's flags (defaults
	// ring.DefaultReplication and ring.DefaultVNodes).
	Replication int
	VNodes      int
	// Client is the per-peer client template; BaseURL is overridden
	// per peer. Leave AttemptTimeout set (default 2s) so one stalled
	// node cannot eat a request's whole budget before failover.
	Client Config
}

// DefaultGatewayAttemptTimeout bounds one attempt against one node on
// the gateway path when the template does not say otherwise.
const DefaultGatewayAttemptTimeout = 2 * time.Second

// Gateway is the client-side routing mode for a clustered aigd: it
// holds one resilient Client per node and routes each call along the
// same consistent-hash ring the cluster itself uses, so a request for
// a pair usually lands directly on the node that owns (or has cached)
// the answer — no server-side peer hop needed. A failed owner fails
// over to the next replica, then to any remaining node (every node can
// serve every request via its own peer-fill path; routing is a latency
// optimization, never a correctness requirement).
type Gateway struct {
	ring    *ring.Ring
	ids     []string // sorted member IDs
	clients map[string]*Client
	rr      atomic.Uint64 // submit round-robin cursor
}

// NewGateway builds a Gateway over the static membership.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("client: GatewayConfig.Peers is required")
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	r, err := ring.New(ids, cfg.VNodes, cfg.Replication)
	if err != nil {
		return nil, err
	}
	if cfg.Client.AttemptTimeout <= 0 {
		cfg.Client.AttemptTimeout = DefaultGatewayAttemptTimeout
	}
	g := &Gateway{ring: r, ids: r.Members(), clients: make(map[string]*Client, len(ids))}
	for _, id := range g.ids {
		ccfg := cfg.Client
		ccfg.BaseURL = cfg.Peers[id]
		c, err := New(ccfg)
		if err != nil {
			return nil, fmt.Errorf("client: peer %s: %w", id, err)
		}
		g.clients[id] = c
	}
	return g, nil
}

// Members returns the sorted node IDs.
func (g *Gateway) Members() []string { return g.ids }

// Client returns the per-node client, for callers that need to pin a
// specific node (job polling must go back to the node that accepted
// the job — jobs live in one node's memory, they are not replicated).
func (g *Gateway) Client(id string) (*Client, bool) {
	c, ok := g.clients[id]
	return c, ok
}

// PairOwners returns the nodes owning a pair's result, in preference
// order — the routing decision Metrics makes, exposed for operators
// (aigw route) and tests.
func (g *Gateway) PairOwners(fpA, fpB string) []string {
	return g.ring.Owners(ring.PairKey(fpA, fpB))
}

// AIGOwners returns the nodes owning a stored structure, in preference
// order — the routing decision Neighbors makes. Structures ring-hash on
// the raw fingerprint, matching the server-side replication key.
func (g *Gateway) AIGOwners(fp string) []string {
	return g.ring.Owners(fp)
}

// ordered builds a failover order: the given owners first, every
// remaining node after them.
func (g *Gateway) ordered(owners []string) []string {
	out := make([]string, 0, len(g.ids))
	out = append(out, owners...)
	inOwners := make(map[string]bool, len(owners))
	for _, id := range owners {
		inOwners[id] = true
	}
	for _, id := range g.ids {
		if !inOwners[id] {
			out = append(out, id)
		}
	}
	return out
}

// candidatesFor builds the failover order for a pair: ring owners
// first, every remaining node after them.
func (g *Gateway) candidatesFor(fpA, fpB string) []string {
	return g.ordered(g.PairOwners(fpA, fpB))
}

// failover reports whether an error from one node justifies trying the
// next: everything except a definitive contract refusal (4xx other
// than 429) does. A 404/400 means the cluster understood the request
// and said no — asking another replica would only repeat the answer.
func failover(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	return true // transport failure, breaker open, ctx-independent exhaustion
}

// tryEach runs call against each candidate in order until one
// succeeds, failing over on retryable outcomes and counting each hop.
func (g *Gateway) tryEach(ctx context.Context, candidates []string, call func(c *Client) error) error {
	var lastErr error
	for i, id := range candidates {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("gateway: %w (last failure: %v)", err, lastErr)
			}
			return err
		}
		err := call(g.clients[id])
		if err == nil {
			return nil
		}
		lastErr = err
		if !failover(err) {
			return err
		}
		if i+1 < len(candidates) {
			telemetry.Add("client/gateway_failovers", 1)
		}
	}
	return fmt.Errorf("gateway: all %d nodes failed: %w", len(candidates), lastErr)
}

// SubmitAIG uploads an AIGER payload to the cluster. The receiving
// node (round-robin over members, with failover) interns it and
// replicates it to the structure's ring owners server-side.
func (g *Gateway) SubmitAIG(ctx context.Context, aiger []byte) (service.AIGView, error) {
	start := int(g.rr.Add(1)-1) % len(g.ids)
	candidates := make([]string, 0, len(g.ids))
	for i := 0; i < len(g.ids); i++ {
		candidates = append(candidates, g.ids[(start+i)%len(g.ids)])
	}
	var v service.AIGView
	err := g.tryEach(ctx, candidates, func(c *Client) error {
		view, err := c.SubmitAIG(ctx, aiger)
		if err == nil {
			v = view
		}
		return err
	})
	return v, err
}

// Metrics scores a stored pair, routed by fingerprint to the pair's
// ring owner; a dead or saturated owner fails over to its replicas and
// then to the rest of the cluster.
func (g *Gateway) Metrics(ctx context.Context, a, b string, metrics []string) (map[string]float64, error) {
	var scores map[string]float64
	err := g.tryEach(ctx, g.candidatesFor(a, b), func(c *Client) error {
		s, err := c.Metrics(ctx, a, b, metrics)
		if err == nil {
			scores = s
		}
		return err
	})
	return scores, err
}

// Neighbors runs a k-NN query for a stored fingerprint, routed to the
// structure's ring owners first — they hold the structure (and the
// densest local corpus around it) so the answer is most complete
// there. Each node answers from its own store; in a cluster this is a
// per-node view, not a global one.
func (g *Gateway) Neighbors(ctx context.Context, fp string, opts NeighborsOptions) (service.NeighborsResponse, error) {
	var resp service.NeighborsResponse
	err := g.tryEach(ctx, g.ordered(g.AIGOwners(fp)), func(c *Client) error {
		r, err := c.Neighbors(ctx, fp, opts)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// DiverseSubset runs greedy max-min diversity selection. With an
// explicit pool the call routes to the first pool member's owners
// (most likely to hold the whole pool); a whole-corpus call
// round-robins like SubmitAIG since every node's corpus is equally
// valid a population.
func (g *Gateway) DiverseSubset(ctx context.Context, pool []string, k int, metric string) (service.DiverseResponse, error) {
	var candidates []string
	if len(pool) > 0 {
		candidates = g.ordered(g.AIGOwners(pool[0]))
	} else {
		start := int(g.rr.Add(1)-1) % len(g.ids)
		for i := 0; i < len(g.ids); i++ {
			candidates = append(candidates, g.ids[(start+i)%len(g.ids)])
		}
	}
	var resp service.DiverseResponse
	err := g.tryEach(ctx, candidates, func(c *Client) error {
		r, err := c.DiverseSubset(ctx, pool, k, metric)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// Healthz probes every node once and returns the per-node outcome
// (nil = healthy).
func (g *Gateway) Healthz(ctx context.Context) map[string]error {
	out := make(map[string]error, len(g.ids))
	for _, id := range g.ids {
		out[id] = g.clients[id].Healthz(ctx)
	}
	return out
}
