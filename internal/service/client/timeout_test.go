package client

import (
	"context"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
)

// TestClientAttemptTimeout is the regression test for the per-attempt
// timeout: a single stalled node must cost one attempt's budget, not
// the caller's whole deadline. The first request is stalled server-side
// by an injected latency fault far longer than the attempt timeout; the
// client must abandon that attempt at AttemptTimeout, retry under the
// still-live parent context, and succeed on the clean second attempt —
// all in a small fraction of the injected stall.
func TestClientAttemptTimeout(t *testing.T) {
	defer func() {
		faultinject.Disable()
		faultinject.Reset()
	}()
	_, ts, _ := newDaemon(t, service.Config{Workers: 2})
	c, _ := newClient(t, Config{
		BaseURL:        ts.URL,
		MaxAttempts:    3,
		AttemptTimeout: 150 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a, err := c.SubmitAIG(ctx, testAIG(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitAIG(ctx, testAIG(t, 2))
	if err != nil {
		t.Fatal(err)
	}

	// Stall only the next cache lookup — the first metrics attempt hangs
	// for 20s, every later attempt runs clean.
	const stall = 20 * time.Second
	faultinject.Reset()
	faultinject.Arm(service.PointCacheGet, faultinject.OnCall(1),
		faultinject.Fault{Mode: faultinject.ModeLatency, Latency: stall})
	faultinject.Enable()

	start := time.Now()
	scores, err := c.Metrics(ctx, a.Fingerprint, b.Fingerprint, []string{"VEO"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("metrics after stalled attempt: %v", err)
	}
	if _, ok := scores["VEO"]; !ok {
		t.Fatalf("metrics missing VEO: %v", scores)
	}
	if fires := faultinject.Fires(service.PointCacheGet); fires != 1 {
		t.Fatalf("latency fault fired %d times, want exactly 1", fires)
	}
	// The attempt timeout, not the parent deadline, must have cut the
	// stalled attempt loose: well under the 20s stall.
	if elapsed >= stall/2 {
		t.Fatalf("took %v: attempt timeout did not preempt the %v stall", elapsed, stall)
	}
	if err := ctx.Err(); err != nil {
		t.Fatalf("parent context burned: %v", err)
	}
}

// TestClientAttemptTimeoutOff pins the default: with AttemptTimeout
// zero the per-attempt context is the caller's context, so a deadline
// shorter than a server stall surfaces as the caller's own expiry.
func TestClientAttemptTimeoutOff(t *testing.T) {
	defer func() {
		faultinject.Disable()
		faultinject.Reset()
	}()
	_, ts, _ := newDaemon(t, service.Config{Workers: 2})
	c, _ := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 2})
	a, err := c.SubmitAIG(context.Background(), testAIG(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitAIG(context.Background(), testAIG(t, 2))
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Reset()
	faultinject.Arm(service.PointCacheGet, faultinject.Always(),
		faultinject.Fault{Mode: faultinject.ModeLatency, Latency: 5 * time.Second})
	faultinject.Enable()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.Metrics(ctx, a.Fingerprint, b.Fingerprint, []string{"VEO"}); err == nil {
		t.Fatal("expected failure against a fully stalled daemon")
	}
	if ctx.Err() == nil {
		t.Fatal("without AttemptTimeout the caller's deadline should have expired")
	}
}
