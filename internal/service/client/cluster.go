package client

import (
	"context"
	"encoding/json"
	"net/http"

	"repro/internal/service"
)

// This file is the wire surface of cluster peer-to-peer traffic. The
// types are shared with internal/cluster's handlers (the cluster
// imports this package for its per-peer clients), so both sides of
// every peer conversation marshal the same struct — there is no second
// copy of the wire contract to drift.

// FillRequest asks a pair's ring owner for its scores. The AIGER
// payloads ride along so an owner that has not yet received the
// structures (replication raced the request, or the owner restarted)
// can intern them and still answer — peer fill doubles as lazy
// replication repair. encoding/json carries []byte as base64.
type FillRequest struct {
	A       string   `json:"a"`
	B       string   `json:"b"`
	Metrics []string `json:"metrics,omitempty"`
	AIGERA  []byte   `json:"aiger_a,omitempty"`
	AIGERB  []byte   `json:"aiger_b,omitempty"`
}

// FillResponse carries the owner's scores for a FillRequest.
type FillResponse struct {
	Scores map[string]float64 `json:"scores"`
}

// ResultPut replicates one computed pair result to a replica's cache.
type ResultPut struct {
	A      string             `json:"a"`
	B      string             `json:"b"`
	Scores map[string]float64 `json:"scores"`
}

// ClusterFill asks a peer (the pair's owner) to resolve a fill
// request, retrying and breaker-gating like any other endpoint.
func (c *Client) ClusterFill(ctx context.Context, req FillRequest) (map[string]float64, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp FillResponse
	if err := c.do(ctx, "cluster_fill", http.MethodPost, "/v1/cluster/fill", "application/json", body, "", &resp); err != nil {
		return nil, err
	}
	return resp.Scores, nil
}

// ClusterGetAIGER fetches the canonical AIGER encoding of a stored
// fingerprint from a peer — the read side of on-demand AIG fetch: a
// node asked about a fingerprint it never received pulls the structure
// from a peer before scoring.
func (c *Client) ClusterGetAIGER(ctx context.Context, fp string) ([]byte, error) {
	var p struct {
		AIGER []byte `json:"aiger"`
	}
	if err := c.do(ctx, "cluster_aigs", http.MethodGet, "/v1/cluster/aigs/"+fp, "", nil, "", &p); err != nil {
		return nil, err
	}
	return p.AIGER, nil
}

// ClusterPutAIG replicates an AIGER payload to a peer. Interning is
// content-addressed, so replaying a replication is idempotent.
func (c *Client) ClusterPutAIG(ctx context.Context, aiger []byte) (service.AIGView, error) {
	var v service.AIGView
	err := c.do(ctx, "cluster_aigs", http.MethodPost, "/v1/cluster/aigs", "application/octet-stream", aiger, "", &v)
	return v, err
}

// ClusterPutResult replicates a computed pair result to a peer's
// cache. Safe to replay: scores are a pure function of the pair, so a
// duplicate put installs the identical value.
func (c *Client) ClusterPutResult(ctx context.Context, a, b string, scores map[string]float64) error {
	body, err := json.Marshal(ResultPut{A: a, B: b, Scores: scores})
	if err != nil {
		return err
	}
	return c.do(ctx, "cluster_result", http.MethodPost, "/v1/cluster/result", "application/json", body, "", nil)
}
