package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/service"
)

// This file is the wire surface of cluster peer-to-peer traffic. The
// types are shared with internal/cluster's handlers (the cluster
// imports this package for its per-peer clients), so both sides of
// every peer conversation marshal the same struct — there is no second
// copy of the wire contract to drift.

// FillRequest asks a pair's ring owner for its scores. The AIGER
// payloads ride along so an owner that has not yet received the
// structures (replication raced the request, or the owner restarted)
// can intern them and still answer — peer fill doubles as lazy
// replication repair. encoding/json carries []byte as base64.
type FillRequest struct {
	A       string   `json:"a"`
	B       string   `json:"b"`
	Metrics []string `json:"metrics,omitempty"`
	AIGERA  []byte   `json:"aiger_a,omitempty"`
	AIGERB  []byte   `json:"aiger_b,omitempty"`
}

// FillResponse carries the owner's scores for a FillRequest.
type FillResponse struct {
	Scores map[string]float64 `json:"scores"`
}

// ResultPut replicates one computed pair result to a replica's cache.
type ResultPut struct {
	A      string             `json:"a"`
	B      string             `json:"b"`
	Scores map[string]float64 `json:"scores"`
}

// EpochHeader carries the sender's membership epoch on peer RPCs and
// gateway requests. A node answering a ring-routed request compares it
// against its own epoch and refuses a mismatch with a structured 409
// (EpochStatus) — a node can never serve a routing decision from an
// outdated ring, and the refused sender learns the fresher membership
// from the answer.
const EpochHeader = "X-Cluster-Epoch"

// EpochStatus is the body of an epoch-mismatch 409: the answering
// node's identity, epoch, and full membership view, so the refused
// sender can re-resolve without a second round trip.
type EpochStatus struct {
	Error   string            `json:"error,omitempty"`
	Node    string            `json:"node,omitempty"`
	Epoch   uint64            `json:"epoch"`
	Members map[string]string `json:"members,omitempty"`
}

// StaleEpochError is the typed form of an epoch-mismatch 409. It is
// not retryable against the same node with the same epoch; routing
// layers adopt the carried membership and re-route instead.
type StaleEpochError struct {
	Node    string
	Epoch   uint64
	Members map[string]string
	Message string
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("aigd: epoch mismatch at %s (its epoch %d): %s", e.Node, e.Epoch, e.Message)
}

// ReconfigureRequest asks a node to move to a new membership epoch.
// Joining lists members that must receive a full backfill of every key
// they own under the new ring (fresh joins and rejoins after data
// loss), not just the keys whose ownership moved.
type ReconfigureRequest struct {
	Epoch   uint64            `json:"epoch"`
	Peers   map[string]string `json:"peers"`
	Joining []string          `json:"joining,omitempty"`
}

// AnnounceRequest is the peer-to-peer membership notification: a node
// that installed a new epoch announces it (with the membership view,
// so a behind peer can catch up), and a draining node announces its
// departure so peers evict it from routing immediately instead of
// waiting out probe failures.
type AnnounceRequest struct {
	Node     string            `json:"node"`
	Epoch    uint64            `json:"epoch"`
	Members  map[string]string `json:"members,omitempty"`
	Draining bool              `json:"draining,omitempty"`
}

// HandoffProgress reports a node's current (or last) key handoff:
// how many keys the plan covers, how many have been streamed, and how
// many transfers failed.
type HandoffProgress struct {
	Active bool  `json:"active"`
	Total  int64 `json:"total"`
	Sent   int64 `json:"sent"`
	Failed int64 `json:"failed"`
}

// StatusView is the GET /v1/cluster/status answer: the node's
// membership epoch and lifecycle state plus its per-peer health view
// and handoff progress — the aigw status surface.
type StatusView struct {
	Node     string              `json:"node"`
	State    string              `json:"state"`
	Epoch    uint64              `json:"epoch"`
	Members  map[string]string   `json:"members"`
	Down     []string            `json:"down"`
	Failures map[string]int      `json:"failures"`
	Breakers map[string][]string `json:"breakers,omitempty"`
	Handoff  HandoffProgress     `json:"handoff"`
}

// ClusterFill asks a peer (the pair's owner) to resolve a fill
// request, retrying and breaker-gating like any other endpoint.
func (c *Client) ClusterFill(ctx context.Context, req FillRequest) (map[string]float64, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp FillResponse
	if err := c.do(ctx, "cluster_fill", http.MethodPost, "/v1/cluster/fill", "application/json", body, "", &resp); err != nil {
		return nil, err
	}
	return resp.Scores, nil
}

// ClusterGetAIGER fetches the canonical AIGER encoding of a stored
// fingerprint from a peer — the read side of on-demand AIG fetch: a
// node asked about a fingerprint it never received pulls the structure
// from a peer before scoring.
func (c *Client) ClusterGetAIGER(ctx context.Context, fp string) ([]byte, error) {
	var p struct {
		AIGER []byte `json:"aiger"`
	}
	if err := c.do(ctx, "cluster_aigs", http.MethodGet, "/v1/cluster/aigs/"+fp, "", nil, "", &p); err != nil {
		return nil, err
	}
	return p.AIGER, nil
}

// ClusterPutAIG replicates an AIGER payload to a peer. Interning is
// content-addressed, so replaying a replication is idempotent.
func (c *Client) ClusterPutAIG(ctx context.Context, aiger []byte) (service.AIGView, error) {
	var v service.AIGView
	err := c.do(ctx, "cluster_aigs", http.MethodPost, "/v1/cluster/aigs", "application/octet-stream", aiger, "", &v)
	return v, err
}

// ClusterPutResult replicates a computed pair result to a peer's
// cache. Safe to replay: scores are a pure function of the pair, so a
// duplicate put installs the identical value.
func (c *Client) ClusterPutResult(ctx context.Context, a, b string, scores map[string]float64) error {
	body, err := json.Marshal(ResultPut{A: a, B: b, Scores: scores})
	if err != nil {
		return err
	}
	return c.do(ctx, "cluster_result", http.MethodPost, "/v1/cluster/result", "application/json", body, "", nil)
}

// ClusterStatus fetches a node's membership/handoff status.
func (c *Client) ClusterStatus(ctx context.Context) (StatusView, error) {
	var v StatusView
	err := c.do(ctx, "cluster_status", http.MethodGet, "/v1/cluster/status", "", nil, "", &v)
	return v, err
}

// ClusterReconfigure proposes a membership change to a node. The node
// validates and replies immediately (202); handoff and epoch install
// run asynchronously — poll ClusterStatus for completion.
func (c *Client) ClusterReconfigure(ctx context.Context, req ReconfigureRequest) (StatusView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return StatusView{}, err
	}
	var v StatusView
	err = c.do(ctx, "cluster_reconfigure", http.MethodPost, "/v1/cluster/reconfigure", "application/json", body, "", &v)
	return v, err
}

// ClusterDrain asks a node to drain: pre-copy its owned keys to their
// successors and leave routing. Replies immediately; poll
// ClusterStatus for handoff progress.
func (c *Client) ClusterDrain(ctx context.Context) (StatusView, error) {
	var v StatusView
	err := c.do(ctx, "cluster_drain", http.MethodPost, "/v1/cluster/drain", "application/json", []byte("{}"), "", &v)
	return v, err
}

// ClusterAnnounce delivers a membership notification to a peer.
func (c *Client) ClusterAnnounce(ctx context.Context, req AnnounceRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.do(ctx, "cluster_announce", http.MethodPost, "/v1/cluster/announce", "application/json", body, "", nil)
}
