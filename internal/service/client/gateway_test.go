package client

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// gwFixture is a 3-node fixture for gateway tests: three independent
// daemons (no server-side clustering — the gateway is being tested, not
// the cluster), each behind a request counter and a kill switch.
type gwFixture struct {
	g      *Gateway
	counts map[string]*atomic.Int64
	dead   map[string]*atomic.Bool
	reg    *telemetry.Registry
}

func newGatewayFixture(t *testing.T) *gwFixture {
	t.Helper()
	reg := telemetry.Enable()
	reg.Reset()
	fx := &gwFixture{
		counts: make(map[string]*atomic.Int64),
		dead:   make(map[string]*atomic.Bool),
		reg:    reg,
	}
	peers := make(map[string]string)
	for _, id := range []string{"n1", "n2", "n3"} {
		svc := service.New(service.Config{Workers: 2})
		cnt, dead := &atomic.Int64{}, &atomic.Bool{}
		inner := svc.Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if dead.Load() {
				conn, _, err := w.(http.Hijacker).Hijack()
				if err == nil {
					conn.Close() // torn connection, like a killed process
				}
				return
			}
			cnt.Add(1)
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(func() {
			ts.Close()
			svc.Close()
		})
		peers[id] = ts.URL
		fx.counts[id], fx.dead[id] = cnt, dead
	}
	g, err := NewGateway(GatewayConfig{
		Peers:  peers,
		Client: Config{MaxAttempts: 1, AttemptTimeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.g = g
	return fx
}

// seedAll interns the same AIGER on every node directly (the fixture
// has no server-side replication) and returns its fingerprint.
func (fx *gwFixture) seedAll(t *testing.T, aiger []byte) string {
	t.Helper()
	var fp string
	for _, id := range fx.g.Members() {
		c, ok := fx.g.Client(id)
		if !ok {
			t.Fatalf("no client for %s", id)
		}
		v, err := c.SubmitAIG(context.Background(), aiger)
		if err != nil {
			t.Fatalf("seed %s: %v", id, err)
		}
		fp = v.Fingerprint
	}
	return fp
}

// TestGatewayRoutesToOwner: a metrics call must land on the pair's
// first ring owner, and repeated calls must keep landing there — the
// routing is deterministic, so the owner's result cache is the one that
// warms up.
func TestGatewayRoutesToOwner(t *testing.T) {
	fx := newGatewayFixture(t)
	a := fx.seedAll(t, testAIG(t, 1))
	b := fx.seedAll(t, testAIG(t, 2))
	for id := range fx.counts {
		fx.counts[id].Store(0)
	}

	owners := fx.g.PairOwners(a, b)
	if len(owners) != 2 {
		t.Fatalf("owners = %v, want replication 2", owners)
	}
	for i := 0; i < 3; i++ {
		if _, err := fx.g.Metrics(context.Background(), a, b, []string{"VEO"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fx.counts[owners[0]].Load(); got != 3 {
		t.Fatalf("owner %s served %d/3 metrics calls", owners[0], got)
	}
	for _, id := range fx.g.Members() {
		if id != owners[0] && fx.counts[id].Load() != 0 {
			t.Fatalf("non-owner %s served %d calls", id, fx.counts[id].Load())
		}
	}
}

// TestGatewayFailover: killing the pair's owner must not change the
// answer — the gateway fails over to the replica and the scores are
// bit-identical, because every node derives profiles from the same
// structural fingerprints.
func TestGatewayFailover(t *testing.T) {
	fx := newGatewayFixture(t)
	a := fx.seedAll(t, testAIG(t, 3))
	b := fx.seedAll(t, testAIG(t, 4))

	before, err := fx.g.Metrics(context.Background(), a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	owners := fx.g.PairOwners(a, b)
	fx.dead[owners[0]].Store(true)

	after, err := fx.g.Metrics(context.Background(), a, b, nil)
	if err != nil {
		t.Fatalf("metrics with dead owner: %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("metric sets diverged: %d vs %d", len(after), len(before))
	}
	for name, want := range before {
		got, ok := after[name]
		if !ok || math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: replica answered %v (%#x), owner answered %v (%#x)",
				name, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	if n := fx.reg.Counter("client/gateway_failovers").Value(); n < 1 {
		t.Fatalf("gateway_failovers = %d, want >= 1", n)
	}

	// Re-admission: the node comes back and serves again.
	fx.dead[owners[0]].Store(false)
	fx.counts[owners[0]].Store(0)
	if _, err := fx.g.Metrics(context.Background(), a, b, nil); err != nil {
		t.Fatal(err)
	}
	if fx.counts[owners[0]].Load() == 0 {
		t.Fatalf("revived owner %s never saw traffic again", owners[0])
	}
}

// TestGatewaySubmitFailover: round-robin submission must skip a dead
// node and still intern on a live one.
func TestGatewaySubmitFailover(t *testing.T) {
	fx := newGatewayFixture(t)
	fx.dead["n2"].Store(true)
	for i := 0; i < 4; i++ {
		if _, err := fx.g.SubmitAIG(context.Background(), testAIG(t, int64(10+i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

// TestGatewayNoFailoverOnContract: a definitive 404 is the cluster's
// answer, not a node failure — the gateway must return it immediately
// instead of asking every replica the same question.
func TestGatewayNoFailoverOnContract(t *testing.T) {
	fx := newGatewayFixture(t)
	for id := range fx.counts {
		fx.counts[id].Store(0)
	}
	_, err := fx.g.Metrics(context.Background(), "fp-missing-a", "fp-missing-b", []string{"VEO"})
	if err == nil {
		t.Fatal("expected 404 for unknown fingerprints")
	}
	var total int64
	for _, c := range fx.counts {
		total += c.Load()
	}
	if total != 1 {
		t.Fatalf("a contract 404 reached %d nodes, want exactly 1", total)
	}
}

// TestGatewayReconfigureOn409: a gateway started from a stale peer
// list must heal itself on first contact — the cluster refuses the
// stale epoch with a structured 409 carrying its membership, the
// gateway adopts it and retries, and the caller sees a clean answer.
func TestGatewayReconfigureOn409(t *testing.T) {
	reg := telemetry.Enable()
	reg.Reset()

	svc := service.New(service.Config{Workers: 2})
	defer svc.Close()
	inner := svc.Handler()

	const newEpoch = 7
	var ts *httptest.Server
	ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := r.Header.Get(EpochHeader)
		if got != "7" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			// The refusal carries the fresher membership (the same
			// node under a different ID, so adoption is observable).
			body, _ := json.Marshal(EpochStatus{
				Error:   "epoch mismatch: got " + got,
				Node:    "n1",
				Epoch:   newEpoch,
				Members: map[string]string{"n1": ts.URL, "n9": ts.URL},
			})
			w.Write(body)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	g, err := NewGateway(GatewayConfig{
		Peers:  map[string]string{"n1": ts.URL},
		Client: Config{MaxAttempts: 1, AttemptTimeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", g.Epoch())
	}

	// The submit must succeed despite the gateway starting at epoch 1:
	// one 409, one adoption, one retry under the new epoch.
	if _, err := g.SubmitAIG(context.Background(), testAIG(t, 99)); err != nil {
		t.Fatalf("submit through stale gateway: %v", err)
	}
	if g.Epoch() != newEpoch {
		t.Fatalf("epoch after adoption = %d, want %d", g.Epoch(), newEpoch)
	}
	members := g.Members()
	if len(members) != 2 || members[0] != "n1" || members[1] != "n9" {
		t.Fatalf("members after adoption = %v, want [n1 n9]", members)
	}
	if n := reg.Counter("client/gateway_reconfigures").Value(); n != 1 {
		t.Fatalf("gateway_reconfigures = %d, want 1", n)
	}
	if n := reg.Counter("client/epoch_mismatches").Value(); n < 1 {
		t.Fatalf("epoch_mismatches = %d, want >= 1", n)
	}

	// Subsequent calls run clean at the adopted epoch — no more 409s.
	before := reg.Counter("client/epoch_mismatches").Value()
	if _, err := g.SubmitAIG(context.Background(), testAIG(t, 100)); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("client/epoch_mismatches").Value(); n != before {
		t.Fatalf("epoch_mismatches grew to %d after adoption", n)
	}
}

// TestGatewayExplicitReconfigure: Reconfigure is epoch-monotonic and
// reuses clients for unchanged URLs (breaker state must survive a
// membership change).
func TestGatewayExplicitReconfigure(t *testing.T) {
	fx := newGatewayFixture(t)
	g := fx.g
	v := g.view.Load()
	urls := map[string]string{}
	for id, u := range v.urls {
		urls[id] = u
	}
	oldN1, _ := g.Client("n1")

	// Stale and duplicate epochs are no-ops.
	if err := g.Reconfigure(1, map[string]string{"nX": "http://invalid"}); err != nil {
		t.Fatal(err)
	}
	if got := g.Members(); len(got) != 3 {
		t.Fatalf("stale reconfigure changed membership: %v", got)
	}

	// A real move: drop n3, keep n1/n2.
	next := map[string]string{"n1": urls["n1"], "n2": urls["n2"]}
	if err := g.Reconfigure(2, next); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", g.Epoch())
	}
	if got := g.Members(); len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("members = %v, want [n1 n2]", got)
	}
	if newN1, _ := g.Client("n1"); newN1 != oldN1 {
		t.Fatal("client for unchanged URL was rebuilt — breaker state lost")
	}
	if _, ok := g.Client("n3"); ok {
		t.Fatal("removed member still resolvable")
	}
	if _, err := g.Metrics(context.Background(), "x", "y", nil); err == nil {
		t.Fatal("expected 404 routing through 2-node view")
	}
}

// TestGatewayNeighborsAndDiverse: the retrieval calls route like the
// rest of the gateway — neighbors to the structure's ring owner with
// failover, diverse to the pool head's owner — and the answers match
// what the owning node would return directly.
func TestGatewayNeighborsAndDiverse(t *testing.T) {
	fx := newGatewayFixture(t)
	fps := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		fps = append(fps, fx.seedAll(t, testAIG(t, int64(40+i))))
	}
	for id := range fx.counts {
		fx.counts[id].Store(0)
	}

	owners := fx.g.AIGOwners(fps[0])
	resp, err := fx.g.Neighbors(context.Background(), fps[0], NeighborsOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.K != 3 || len(resp.Neighbors) != 3 {
		t.Fatalf("neighbors response %+v, want 3 neighbors", resp)
	}
	if got := fx.counts[owners[0]].Load(); got != 1 {
		t.Fatalf("owner %s served %d/1 neighbors calls", owners[0], got)
	}

	// Kill the owner: the same query must fail over and still answer.
	fx.dead[owners[0]].Store(true)
	if _, err := fx.g.Neighbors(context.Background(), fps[0], NeighborsOptions{K: 3}); err != nil {
		t.Fatalf("neighbors with dead owner: %v", err)
	}
	fx.dead[owners[0]].Store(false)

	dresp, err := fx.g.DiverseSubset(context.Background(), fps, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(dresp.Chosen) != 3 || len(dresp.Matrix) != 3 {
		t.Fatalf("diverse response %+v, want 3 chosen with 3x3 matrix", dresp)
	}

	// An unknown fingerprint is a contract 404 — no failover storm.
	for id := range fx.counts {
		fx.counts[id].Store(0)
	}
	if _, err := fx.g.Neighbors(context.Background(), "fp-missing", NeighborsOptions{}); err == nil {
		t.Fatal("expected 404 for unknown fingerprint")
	}
	var total int64
	for _, c := range fx.counts {
		total += c.Load()
	}
	if total != 1 {
		t.Fatalf("a contract 404 reached %d nodes, want exactly 1", total)
	}
}
