package service

// The daemon half of the chaos suite: deterministic fault injection
// against a live aigd. See internal/harness/chaos_test.go for the
// invariant list; here the focus is the service's additions — spill
// degradation, startup crash recovery, idempotent retry accounting,
// and abrupt-kill restart. Run via `make chaos` (always under -race).

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/harness"
)

// armChaos enables one armed fault for the duration of the test.
func armChaos(t testing.TB, name string, tr faultinject.Trigger, f faultinject.Fault) {
	t.Helper()
	faultinject.Reset()
	faultinject.Arm(name, tr, f)
	faultinject.Enable()
	t.Cleanup(func() {
		faultinject.Disable()
		faultinject.Reset()
	})
}

// spillingDaemon builds a daemon whose every job result spills.
func spillingDaemon(t *testing.T, dir string) *testDaemon {
	t.Helper()
	return newTestDaemon(t, Config{Workers: 2, SpillDir: dir, SpillBytes: 1})
}

// TestRetryAfterScaling: the shed hint tracks daemon state instead of
// a hardcoded constant — 1s idle, proportional to backlog per worker,
// pinned to the cap while draining.
func TestRetryAfterScaling(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	if got := d.svc.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle hint = %d, want 1", got)
	}
	d.svc.jobsAdm.pending.Store(20)
	if got := d.svc.retryAfterSeconds(); got != 11 {
		t.Fatalf("backlogged hint = %d, want 1+20/2", got)
	}
	d.svc.jobsAdm.pending.Store(1000)
	if got := d.svc.retryAfterSeconds(); got != 30 {
		t.Fatalf("hint is not capped: %d", got)
	}
	d.svc.jobsAdm.pending.Store(0)
	d.svc.draining.Store(true)
	if got := d.svc.retryAfterSeconds(); got != 30 {
		t.Fatalf("draining hint = %d, want the cap", got)
	}
	d.svc.draining.Store(false)
}

// TestChaosShedCarriesScaledRetryAfter: a daemon forced to shed by the
// pool-submit fault answers 429 with a parseable, scaled Retry-After.
func TestChaosShedCarriesScaledRetryAfter(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	fp := d.submit(t, testAIG(t, 40)).Fingerprint
	armChaos(t, PointPoolSubmit, faultinject.Always(), faultinject.Fault{Mode: faultinject.ModeError})

	body := `{"aig":"` + fp + `"}`
	req, err := http.NewRequest("POST", d.ts.URL+"/v1/optimize", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After = %q, want an integer in [1,30]", resp.Header.Get("Retry-After"))
	}
	if d.svc.jobsAdm.pending.Load() != 0 {
		t.Fatal("shed request leaked an admission slot")
	}
}

// TestChaosSpillTornWrite: a torn write during job-result spill
// degrades to serving the result from memory — the job still succeeds,
// the error is counted, and no torn spill file is ever visible.
func TestChaosSpillTornWrite(t *testing.T) {
	dir := t.TempDir()
	d := spillingDaemon(t, dir)
	fp := d.submit(t, testAIG(t, 41)).Fingerprint
	armChaos(t, harness.PointAtomicWrite, faultinject.Always(),
		faultinject.Fault{Mode: faultinject.ModeTornWrite, KeepBytes: 11})

	var acc jobAccepted
	if code := d.do(t, "POST", "/v1/optimize", `{"aig":"`+fp+`"}`, &acc); code != http.StatusAccepted {
		t.Fatalf("optimize status %d", code)
	}
	v := d.waitJob(t, acc.ID)
	if v.Status != JobDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	// Result served inline, not as a SpillRef pointing at a torn file.
	res, ok := v.Result.(map[string]any)
	if !ok {
		t.Fatalf("result has unexpected shape %T", v.Result)
	}
	if _, spilled := res["spilled_to"]; spilled {
		t.Fatal("torn spill was handed to the client as a SpillRef")
	}
	if got := d.counter("service/spill_errors"); got < 1 {
		t.Fatalf("spill_errors = %d, want >= 1", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("torn spill left artifacts: %v", entries)
	}
}

// TestChaosSpillENOSPC: same degradation contract when the spill point
// itself reports a full disk before any byte is written.
func TestChaosSpillENOSPC(t *testing.T) {
	dir := t.TempDir()
	d := spillingDaemon(t, dir)
	fp := d.submit(t, testAIG(t, 42)).Fingerprint
	armChaos(t, PointSpill, faultinject.Always(), faultinject.Fault{Mode: faultinject.ModeENOSPC})

	var acc jobAccepted
	if code := d.do(t, "POST", "/v1/optimize", `{"aig":"`+fp+`"}`, &acc); code != http.StatusAccepted {
		t.Fatalf("optimize status %d", code)
	}
	if v := d.waitJob(t, acc.ID); v.Status != JobDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	if got := d.counter("service/spill_errors"); got != 1 {
		t.Fatalf("spill_errors = %d, want 1", got)
	}
}

// TestChaosRestartRecoverySweep is the startup-sweep regression test:
// a fresh daemon pointed at a spill directory littered with the debris
// of a killed predecessor — an orphaned atomic-write temp, a stale
// spill, and an unrelated file — quarantines exactly the debris.
func TestChaosRestartRecoverySweep(t *testing.T) {
	dir := t.TempDir()
	orphanTemp := filepath.Join(dir, "job-j000007.json.atomictmp-55512")
	staleSpill := filepath.Join(dir, "job-j000003.json")
	unrelated := filepath.Join(dir, "operator-notes.txt")
	for _, p := range []string{orphanTemp, staleSpill, unrelated} {
		if err := os.WriteFile(p, []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d := newTestDaemon(t, Config{Workers: 2, SpillDir: dir, SpillBytes: 1})
	for _, gone := range []string{orphanTemp, staleSpill} {
		if _, err := os.Stat(gone); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("startup sweep left %s behind", filepath.Base(gone))
		}
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Error("startup sweep removed an unrelated file")
	}
	if got := d.counter("harness/orphan_temps_swept"); got != 1 {
		t.Errorf("orphan_temps_swept = %d, want 1", got)
	}
	if got := d.counter("service/orphan_spills_swept"); got != 1 {
		t.Errorf("orphan_spills_swept = %d, want 1", got)
	}

	// The swept directory is immediately usable: a new job spills fine.
	fp := d.submit(t, testAIG(t, 43)).Fingerprint
	var acc jobAccepted
	if code := d.do(t, "POST", "/v1/optimize", `{"aig":"`+fp+`"}`, &acc); code != http.StatusAccepted {
		t.Fatalf("optimize status %d", code)
	}
	if v := d.waitJob(t, acc.ID); v.Status != JobDone {
		t.Fatalf("post-sweep job ended %s (%s)", v.Status, v.Error)
	}
	if got := d.counter("service/spills"); got != 1 {
		t.Fatalf("spills = %d, want 1", got)
	}
}

// TestChaosIdempotentRetryNoSlotLeak: two submissions under one
// Idempotency-Key — the retry pattern of a client whose first response
// was lost — produce one job, one pool task, and zero leaked admission
// slots.
func TestChaosIdempotentRetryNoSlotLeak(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	fp := d.submit(t, testAIG(t, 44)).Fingerprint

	post := func() jobAccepted {
		t.Helper()
		req, err := http.NewRequest("POST", d.ts.URL+"/v1/optimize", strings.NewReader(`{"aig":"`+fp+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", "retry-key-1")
		resp, err := d.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status = %d, want 202", resp.StatusCode)
		}
		var acc jobAccepted
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		return acc
	}
	first := post()
	second := post()
	if first.ID != second.ID {
		t.Fatalf("retry created a second job: %s vs %s", first.ID, second.ID)
	}
	if v := d.waitJob(t, first.ID); v.Status != JobDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	if got := d.counter("service/jobs_submitted"); got != 1 {
		t.Fatalf("jobs_submitted = %d, want 1", got)
	}
	if got := d.counter("service/idempotent_replays"); got != 1 {
		t.Fatalf("idempotent_replays = %d, want 1", got)
	}
	// Both requests' slots are back: the original via the job's onExit,
	// the duplicate immediately on dedup.
	deadline := time.Now().Add(5 * time.Second)
	for d.svc.jobsAdm.pending.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission slots leaked: pending = %d", d.svc.jobsAdm.pending.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// A different key legitimately schedules a fresh job.
	req, err := http.NewRequest("POST", d.ts.URL+"/v1/optimize", strings.NewReader(`{"aig":"`+fp+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Idempotency-Key", "retry-key-2")
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var acc jobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if acc.ID == first.ID {
		t.Fatal("distinct key deduplicated onto the old job")
	}
}

// TestChaosKillAndRestartMidSpill kills a spilling daemon abruptly —
// Close with no drain, jobs possibly mid-flight, spill latency armed
// to widen the window — then restarts on the same directory and
// requires full service: the restart sweeps the debris and completes
// fresh spilling jobs. Goroutine counts must return to baseline (no
// leaked workers or job tasks).
func TestChaosKillAndRestartMidSpill(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()

	armChaos(t, PointStorePut, faultinject.Always(),
		faultinject.Fault{Mode: faultinject.ModeLatency, Latency: 5 * time.Millisecond})

	// Life 1: a spilling daemon with jobs in flight, killed abruptly.
	d1 := spillingDaemon(t, dir)
	fp := d1.submit(t, testAIG(t, 45)).Fingerprint
	for i := 0; i < 4; i++ {
		var acc jobAccepted
		d1.do(t, "POST", "/v1/optimize", `{"aig":"`+fp+`"}`, &acc)
	}
	d1.ts.Close()
	d1.svc.Close() // abrupt: no Drain, queued jobs die with the process

	faultinject.Disable()
	faultinject.Reset()

	// Life 2: restart over the same directory; the sweep runs in New
	// and the daemon must be fully serviceable.
	d2 := spillingDaemon(t, dir)
	fp2 := d2.submit(t, testAIG(t, 45)).Fingerprint
	var acc jobAccepted
	if code := d2.do(t, "POST", "/v1/optimize", `{"aig":"`+fp2+`"}`, &acc); code != http.StatusAccepted {
		t.Fatalf("post-restart optimize status %d", code)
	}
	if v := d2.waitJob(t, acc.ID); v.Status != JobDone {
		t.Fatalf("post-restart job ended %s (%s)", v.Status, v.Error)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".atomictmp-") {
			t.Fatalf("restart left an orphan temp: %s", e.Name())
		}
	}
	d2.ts.Close()
	d2.svc.Close()

	// Both lives fully stopped: goroutines settle back to baseline
	// (poll briefly — worker exit is asynchronous with Close returning).
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
