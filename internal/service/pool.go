package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// ErrBusy is returned when the worker queue or an endpoint's admission
// budget is full; the HTTP layer turns it into 429 + Retry-After. It
// is exported so the cluster layer can propagate saturation from a
// routed compute back to the shed path instead of mislabeling it 500.
var ErrBusy = errors.New("service: saturated, retry later")

// PointPoolSubmit is the fault-injection point on pool intake: a
// firing schedule forces the shed path (ErrBusy → 429 + Retry-After)
// exactly as a genuinely full queue would, which is how the chaos
// suite saturates a daemon deterministically.
const PointPoolSubmit = "service/pool_submit"

// pool is the bounded worker pool every computation runs on: a fixed
// number of workers fed by a bounded queue. Submissions never block —
// when the queue is full the caller sheds load instead of collapsing.
type pool struct {
	tasks   chan func()
	workers int
	wg      sync.WaitGroup
	stopped atomic.Bool
}

func newPool(workers, depth int) *pool {
	p := &pool{tasks: make(chan func(), depth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t()
				telemetry.SetGauge("service/queue_depth", float64(len(p.tasks)))
			}
		}()
	}
	return p
}

// trySubmit enqueues t without blocking; false means the queue is full
// or the pool is shut down. ctx carries the submitting request's trace
// for fault-injection attribution only — it does not bound t.
func (p *pool) trySubmit(ctx context.Context, t func()) bool {
	if p.stopped.Load() {
		return false
	}
	if err := faultinject.HitCtx(ctx, PointPoolSubmit); err != nil {
		return false
	}
	select {
	case p.tasks <- t:
		telemetry.SetGauge("service/queue_depth", float64(len(p.tasks)))
		return true
	default:
		return false
	}
}

// run executes f on the pool and waits for it (or for ctx). A full
// queue returns ErrBusy immediately. On ctx expiry the task may still
// execute later; the caller must not read f's results after an error.
func (p *pool) run(ctx context.Context, f func()) error {
	done := make(chan struct{})
	if !p.trySubmit(ctx, func() { defer close(done); f() }) {
		return ErrBusy
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backlog reports how many queued tasks no worker has picked up yet;
// the shed path scales its Retry-After hint with it.
func (p *pool) backlog() int { return len(p.tasks) }

// shutdown stops intake and waits for the workers to drain the queue.
func (p *pool) shutdown() {
	if p.stopped.CompareAndSwap(false, true) {
		close(p.tasks)
	}
	p.wg.Wait()
}

// admission is one endpoint's queue-depth budget: a counter of requests
// admitted but not yet finished. Exceeding the limit sheds the request
// with 429 + Retry-After instead of letting latency collapse for
// everyone — the bounded queue stays short enough that admitted
// requests complete promptly.
type admission struct {
	limit   int64
	pending atomic.Int64
}

// enter admits one request; callers must pair it with leave.
func (a *admission) enter() bool {
	if a.pending.Add(1) > a.limit {
		a.pending.Add(-1)
		telemetry.Add("service/shed", 1)
		return false
	}
	return true
}

func (a *admission) leave() { a.pending.Add(-1) }
