package service

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// PointCacheGet is the fault-injection point on result-cache lookup: a
// firing schedule forces a miss, driving traffic down the singleflight
// + recompute path. Because a hit is bit-identical to fresh
// computation by construction, a forced miss must never change an
// answer — the chaos suite asserts exactly that.
const PointCacheGet = "service/cache_get"

// resultCache is a sharded in-memory LRU of pairwise metric scores
// keyed "(metric, fpA, fpB)" with the fingerprints in sorted order
// (every metric in the registry is symmetric). Sharding keeps lock
// contention bounded under concurrent traffic; each shard holds its own
// LRU list.
type resultCache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu    sync.Mutex
	byKey map[string]*list.Element
	order *list.List // front = most recently used
	cap   int
}

type cacheItem struct {
	key string
	val float64
}

const cacheShards = 16

func newResultCache(entries int) *resultCache {
	perShard := entries / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &resultCache{shards: make([]cacheShard, cacheShards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{byKey: make(map[string]*list.Element), order: list.New(), cap: perShard}
	}
	return c
}

func (c *resultCache) shardIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % cacheShards)
}

func (c *resultCache) shard(key string) *cacheShard {
	return &c.shards[c.shardIndex(key)]
}

// get looks the key up and additionally reports which shard served it,
// so per-request traces can attribute contention to a specific shard.
// ctx carries the requesting trace for fault-injection attribution.
func (c *resultCache) get(ctx context.Context, key string) (val float64, shard int, ok bool) {
	shard = c.shardIndex(key)
	if err := faultinject.HitCtx(ctx, PointCacheGet); err != nil {
		telemetry.Add("service/cache_misses", 1)
		return 0, shard, false
	}
	s := &c.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		telemetry.Add("service/cache_misses", 1)
		return 0, shard, false
	}
	s.order.MoveToFront(el)
	telemetry.Add("service/cache_hits", 1)
	return el.Value.(*cacheItem).val, shard, true
}

func (c *resultCache) put(key string, val float64) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		el.Value.(*cacheItem).val = val
		s.order.MoveToFront(el)
		return
	}
	s.byKey[key] = s.order.PushFront(&cacheItem{key: key, val: val})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byKey, oldest.Value.(*cacheItem).key)
		telemetry.Add("service/cache_evictions", 1)
	}
}

// entries returns every cached (key, value) pair across all shards,
// without bumping recency — the enumeration base for membership-change
// key handoff. The slice is a point-in-time copy per shard (the cache
// may move under a concurrent walk; handoff tolerates that because a
// result installed anywhere is bit-identical).
func (c *resultCache) entries() []cacheItem {
	var out []cacheItem
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.order.Front(); el != nil; el = el.Next() {
			it := el.Value.(*cacheItem)
			out = append(out, cacheItem{key: it.key, val: it.val})
		}
		s.mu.Unlock()
	}
	return out
}

// --- singleflight ------------------------------------------------------

// flightGroup deduplicates concurrent identical computations: the first
// caller for a key runs fn, every concurrent duplicate waits for that
// result instead of recomputing. (A minimal in-house singleflight — the
// module is dependency-free by design.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  float64
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// do runs fn once per key among concurrent callers; shared reports
// whether this caller joined another caller's flight. A follower's wait
// is bounded by ctx: if the caller's request is canceled while the
// leader is still computing, the follower returns ctx.Err() immediately
// instead of inheriting the leader's schedule (the leader is not
// interrupted — its result still fills the cache for later callers).
func (g *flightGroup) do(ctx context.Context, key string, fn func() (float64, error)) (val float64, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			telemetry.Add("service/singleflight_abandoned", 1)
			return 0, ctx.Err(), true
		}
		telemetry.Add("service/singleflight_shared", 1)
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
