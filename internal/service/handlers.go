package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/harness"
	"repro/internal/opt"
	"repro/internal/simil"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// maxAIGERBody bounds a submitted AIGER payload (16 MiB is orders of
// magnitude above anything the framework's workloads produce).
const maxAIGERBody = 16 << 20

// maxBatchAIGs bounds one all-pairs batch request. Batches above
// maxBatchExact are routed through sketch pruning — full metric
// evaluation is spent only on pairs some LSH band considers similar —
// which is what makes the raised cap affordable; beyond it, split into
// multiple batches (the result cache makes the overlap free).
const (
	maxBatchAIGs  = 512
	maxBatchExact = 64
)

// --- wire types --------------------------------------------------------

// AIGView describes one stored AIG.
type AIGView struct {
	Fingerprint string `json:"fingerprint"`
	PIs         int    `json:"pis"`
	POs         int    `json:"pos"`
	Ands        int    `json:"ands"`
	Levels      int    `json:"levels"`
	// Known reports that the submitted structure was already in the
	// store — the content-addressed fast path.
	Known bool `json:"known"`
}

type metricsRequest struct {
	A       string   `json:"a"`
	B       string   `json:"b"`
	Metrics []string `json:"metrics,omitempty"`
}

type metricsResponse struct {
	A      string             `json:"a"`
	B      string             `json:"b"`
	Scores map[string]float64 `json:"scores"`
}

type batchRequest struct {
	AIGs    []string `json:"aigs"`
	Metrics []string `json:"metrics,omitempty"`
}

type batchResponse struct {
	AIGs []string `json:"aigs"`
	// Pairs holds one entry per unordered pair, indexed into AIGs.
	Pairs []batchPair `json:"pairs"`
	// Pruned reports that the batch exceeded maxBatchExact and the
	// sketch index pre-filtered the pair loop; PrunedPairs counts the
	// pairs skipped without full evaluation.
	Pruned      bool `json:"pruned,omitempty"`
	PrunedPairs int  `json:"pruned_pairs,omitempty"`
}

// batchCapError is the structured over-cap refusal: the client learns
// the actual cap and its own request size, not just a bare 400.
type batchCapError struct {
	Error string `json:"error"`
	Cap   int    `json:"cap"`
	Size  int    `json:"size"`
}

type batchPair struct {
	I      int                `json:"i"`
	J      int                `json:"j"`
	Scores map[string]float64 `json:"scores"`
}

type optimizeRequest struct {
	AIG  string `json:"aig"`
	Flow string `json:"flow"`
	Seed int64  `json:"seed,omitempty"`
}

// OptimizeResult is an optimize job's output. The optimized structure
// is interned back into the store, so its fingerprint is immediately
// usable in metric and report requests.
type OptimizeResult struct {
	Fingerprint          string `json:"fingerprint"`
	Flow                 string `json:"flow"`
	Seed                 int64  `json:"seed"`
	GatesBefore          int    `json:"gates_before"`
	GatesAfter           int    `json:"gates_after"`
	LevelsBefore         int    `json:"levels_before"`
	LevelsAfter          int    `json:"levels_after"`
	OptimizedFingerprint string `json:"optimized_fingerprint"`
	AIGER                string `json:"aiger"`
}

type reportRequest struct {
	A       string   `json:"a"`
	B       string   `json:"b"`
	Flows   []string `json:"flows,omitempty"`
	Metrics []string `json:"metrics,omitempty"`
	Seed    int64    `json:"seed,omitempty"`
}

type jobAccepted struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Poll   string    `json:"poll"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- plumbing ----------------------------------------------------------

// reply writes a JSON response. An encode/write failure means the
// client is gone; it is counted, not propagated.
func reply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		telemetry.Add("service/write_errors", 1)
	}
}

func replyError(w http.ResponseWriter, code int, format string, args ...any) {
	telemetry.Add("service/http_errors", 1)
	reply(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// shed refuses a request from a saturated endpoint: 429 plus a
// Retry-After hint so well-behaved clients back off instead of
// hammering. The refusal is stamped onto the request's trace so a
// shed storm is attributable per request, not just as a counter.
func (s *Server) shed(w http.ResponseWriter, r *http.Request) {
	trace.AddEvent(r.Context(), "admission_shed")
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	replyError(w, http.StatusTooManyRequests, "saturated, retry later")
}

// retryAfterSeconds scales the shed hint with the actual state of the
// daemon instead of a constant: an idle daemon says "1", one with a
// deep backlog tells clients to stay away for roughly the number of
// queue "waves" its workers still have to absorb, and a draining
// daemon points at its estimated remaining handoff backlog (the drain
// hint, when the cluster layer installed one) or past its drain budget
// otherwise. Capped so a pathological backlog never tells clients to
// disappear for minutes.
func (s *Server) retryAfterSeconds() int {
	const capSeconds = 30
	if s.draining.Load() {
		if fn := s.drainHint.Load(); fn != nil {
			if hint := (*fn)(); hint > 0 {
				if hint > capSeconds {
					hint = capSeconds
				}
				return hint
			}
		}
		return capSeconds
	}
	workers := s.pool.workers
	if workers < 1 {
		workers = 1
	}
	pendingJobs := int(s.jobsAdm.pending.Load())
	backlog := s.pool.backlog() + pendingJobs
	hint := 1 + backlog/workers
	if hint > capSeconds {
		hint = capSeconds
	}
	return hint
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxAIGERBody))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// routePatterns is the daemon's fixed route table, shared by Handler
// (mux registration) and newRedSet (per-endpoint RED metric names).
// Adding a route here is what creates its metric families — cardinality
// is bounded by this list, never by traffic.
var routePatterns = []string{
	"GET /healthz",
	"POST /v1/aigs",
	"GET /v1/aigs/{fp}",
	"POST /v1/metrics",
	"POST /v1/metrics/batch",
	"POST /v1/neighbors",
	"POST /v1/diverse-subset",
	"POST /v1/optimize",
	"POST /v1/report",
	"GET /v1/jobs/{id}",
	"DELETE /v1/jobs/{id}",
}

// Handler returns the daemon's HTTP API. Every endpoint except
// /healthz refuses with 503 once the server is draining. When a trace
// store is configured, the read-only trace debug endpoints are mounted
// alongside the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/aigs", s.guard("POST /v1/aigs", s.handleSubmitAIG))
	mux.HandleFunc("GET /v1/aigs/{fp}", s.guard("GET /v1/aigs/{fp}", s.handleGetAIG))
	mux.HandleFunc("POST /v1/metrics", s.guard("POST /v1/metrics", s.handleMetrics))
	mux.HandleFunc("POST /v1/metrics/batch", s.guard("POST /v1/metrics/batch", s.handleMetricsBatch))
	mux.HandleFunc("POST /v1/neighbors", s.guard("POST /v1/neighbors", s.handleNeighbors))
	mux.HandleFunc("POST /v1/diverse-subset", s.guard("POST /v1/diverse-subset", s.handleDiverse))
	mux.HandleFunc("POST /v1/optimize", s.guard("POST /v1/optimize", s.handleOptimize))
	mux.HandleFunc("POST /v1/report", s.guard("POST /v1/report", s.handleReport))
	mux.HandleFunc("GET /v1/jobs/{id}", s.guard("GET /v1/jobs/{id}", s.handleGetJob))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.guard("DELETE /v1/jobs/{id}", s.handleCancelJob))
	if s.cfg.Trace != nil {
		mux.Handle("GET /v1/debug/traces", s.cfg.Trace.Handler())
		mux.Handle("GET /v1/debug/traces/{id}", s.cfg.Trace.Handler())
	}
	return mux
}

// statusRecorder captures the status code and body size a handler
// writes, for the request span, RED metrics, and the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += n
	return n, err
}

// guard wraps a handler with the drain gate and request accounting: it
// extracts the caller's traceparent (or roots a fresh trace), opens the
// "service/request" span every downstream span hangs off, echoes the
// trace identity in response headers, and on completion feeds the RED
// metrics and the structured access log. pattern must be one of
// routePatterns.
func (s *Server) guard(pattern string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.red.endpoint(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		telemetry.Add("service/requests", 1)
		ctx := r.Context()
		if sc, ok := trace.Extract(r.Header); ok {
			ctx = trace.ContextWithRemote(ctx, sc)
		}
		ctx, sp := trace.Start(ctx, "service/request")
		sp.Attr("endpoint", ep.path).Attr("method", r.Method)
		if sp != nil {
			w.Header().Set(trace.TraceIDHeader, sp.Context().TraceID.String())
			w.Header().Set("traceparent", trace.Traceparent(sp.Context()))
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		if s.draining.Load() {
			rec.Header().Set("Connection", "close")
			rec.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			replyError(rec, http.StatusServiceUnavailable, "draining")
		} else {
			h(rec, r.WithContext(ctx))
		}
		d := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		sp.Attr("status", rec.status)
		if rec.status >= 500 {
			sp.Fail(fmt.Errorf("http %d", rec.status))
		}
		if sp == nil {
			// Tracing off: keep the pre-existing aggregate span alive.
			telemetry.Default().RecordSpan("service/request", d)
		}
		sp.End()
		s.red.record(ep, rec.status, d)
		s.logAccess(sp, r, ep, rec, d)
	}
}

// logAccess emits one structured access-log line per finished request
// on the configured JSONL event stream (no-op when none is set).
func (s *Server) logAccess(sp *trace.Span, r *http.Request, ep *redEndpoint, rec *statusRecorder, d time.Duration) {
	if s.cfg.Events == nil {
		return
	}
	fields := map[string]any{
		"method":      r.Method,
		"path":        r.URL.Path,
		"endpoint":    ep.path,
		"status":      rec.status,
		"bytes":       rec.bytes,
		"duration_ms": float64(d) / float64(time.Millisecond),
	}
	if sp != nil {
		fields["trace_id"] = sp.Context().TraceID.String()
	}
	s.cfg.Events.Log("http_request", fields)
}

// --- endpoints ---------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	reply(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
		"aigs":     s.store.len(),
	})
}

// handleSubmitAIG accepts an AIGER payload (ASCII or binary), validates
// it with the structural verifier, and interns it content-addressed:
// resubmitting an identical structure returns the same fingerprint
// without re-validating or re-profiling anything.
func (s *Server) handleSubmitAIG(w http.ResponseWriter, r *http.Request) {
	g, err := aiger.Read(http.MaxBytesReader(w, r.Body, maxAIGERBody))
	if err != nil {
		replyError(w, http.StatusBadRequest, "parsing AIGER: %v", err)
		return
	}
	if err := g.Check(); err != nil {
		replyError(w, http.StatusBadRequest, "invalid AIG: %v", err)
		return
	}
	// Intern the PO-reachable cone only. The fingerprint deliberately
	// ignores dangling nodes, so two submissions differing only in dead
	// cones collide on one key; without Cleanup the stored stats and
	// profiles would depend on whichever structure arrived first, which
	// would break the hit-equals-fresh-computation invariant.
	_, ispan := trace.Start(r.Context(), "service/store_intern")
	e, known := s.store.put(g.Cleanup())
	ispan.Attr("fingerprint", e.fp).Attr("known", known)
	ispan.End()
	if s.onIntern != nil {
		// Cluster mode: hand the submission to the replication layer
		// (it fans out asynchronously; the response does not wait on
		// peers).
		s.onIntern(r.Context(), viewOf(e, known))
	}
	reply(w, http.StatusOK, viewOf(e, known))
}

func viewOf(e *storedAIG, known bool) AIGView {
	return AIGView{
		Fingerprint: e.fp,
		PIs:         e.stats.PIs, POs: e.stats.POs,
		Ands: e.stats.Ands, Levels: e.stats.Levels,
		Known: known,
	}
}

func (s *Server) handleGetAIG(w http.ResponseWriter, r *http.Request) {
	e, ok := s.store.get(r.PathValue("fp"))
	if !ok {
		replyError(w, http.StatusNotFound, "unknown fingerprint %q", r.PathValue("fp"))
		return
	}
	reply(w, http.StatusOK, viewOf(e, true))
}

// resolvePair looks up both referenced AIGs.
func (s *Server) resolvePair(fpA, fpB string) (ea, eb *storedAIG, err error) {
	ea, ok := s.store.get(fpA)
	if !ok {
		return nil, nil, fmt.Errorf("%w %q (submit it via POST /v1/aigs first)", ErrUnknownFingerprint, fpA)
	}
	eb, ok = s.store.get(fpB)
	if !ok {
		return nil, nil, fmt.Errorf("%w %q (submit it via POST /v1/aigs first)", ErrUnknownFingerprint, fpB)
	}
	return ea, eb, nil
}

// handleMetrics serves pairwise similarity/dissimilarity scores for two
// previously submitted AIGs. The computation runs on the bounded worker
// pool; a saturated pool sheds with 429.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sp := telemetry.StartSpan("service/metrics")
	defer sp.End()
	if !s.metricsAdm.enter() {
		s.shed(w, r)
		return
	}
	defer s.metricsAdm.leave()

	var req metricsRequest
	if err := decodeJSON(r, &req); err != nil {
		replyError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	metrics, err := resolveMetrics(req.Metrics)
	if err != nil {
		replyError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	var scores map[string]float64
	if s.pairRouter != nil {
		// Cluster mode: the router owns the whole resolution — local
		// store (fetching missing AIGs from their ring owners), local
		// cache, peer fill from the pair's owner, or a (pooled) local
		// compute. Saturation anywhere on that path sheds like a local
		// full queue would, and a cluster-wide store miss answers 404
		// like a local one would.
		names := make([]string, len(metrics))
		for i, m := range metrics {
			names[i] = m.Name
		}
		scores, err = s.pairRouter(ctx, req.A, req.B, names)
	} else {
		var ea, eb *storedAIG
		ea, eb, err = s.resolvePair(req.A, req.B)
		if err != nil {
			replyError(w, http.StatusNotFound, "%v", err)
			return
		}
		scores, err = s.scorePairPooled(ctx, ea, eb, metrics)
	}
	if err != nil {
		if errors.Is(err, ErrUnknownFingerprint) {
			replyError(w, http.StatusNotFound, "%v", err)
			return
		}
		if errors.Is(err, ErrBusy) || ctx.Err() != nil {
			s.replyPoolError(w, r, err)
			return
		}
		replyError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	reply(w, http.StatusOK, metricsResponse{A: req.A, B: req.B, Scores: scores})
}

// handleMetricsBatch scores every unordered pair among n submitted
// AIGs. This is the batch path the store and profile cache exist for:
// per-graph preprocessing runs once per graph (n profiles), not once
// per pair (n·(n−1) would-be profiles).
func (s *Server) handleMetricsBatch(w http.ResponseWriter, r *http.Request) {
	sp := telemetry.StartSpan("service/metrics_batch")
	defer sp.End()
	if !s.metricsAdm.enter() {
		s.shed(w, r)
		return
	}
	defer s.metricsAdm.leave()

	var req batchRequest
	if err := decodeJSON(r, &req); err != nil {
		replyError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.AIGs) < 2 {
		replyError(w, http.StatusBadRequest, "batch needs at least 2 AIGs, got %d", len(req.AIGs))
		return
	}
	if len(req.AIGs) > maxBatchAIGs {
		telemetry.Add("service/batch_shed", 1)
		telemetry.Add("service/http_errors", 1)
		reply(w, http.StatusBadRequest, batchCapError{
			Error: fmt.Sprintf("batch of %d AIGs exceeds the limit of %d; split it into smaller batches", len(req.AIGs), maxBatchAIGs),
			Cap:   maxBatchAIGs,
			Size:  len(req.AIGs),
		})
		return
	}
	metrics, err := resolveMetrics(req.Metrics)
	if err != nil {
		replyError(w, http.StatusBadRequest, "%v", err)
		return
	}
	entries := make([]*storedAIG, len(req.AIGs))
	for i, fp := range req.AIGs {
		e, ok := s.store.get(fp)
		if !ok {
			replyError(w, http.StatusNotFound, "unknown fingerprint %q (submit it via POST /v1/aigs first)", fp)
			return
		}
		entries[i] = e
	}
	resp := batchResponse{AIGs: req.AIGs}
	// Oversized batches go two-stage: an ephemeral sketch index over
	// just the batch population picks the candidate pairs, and the
	// O(n²) full-evaluation loop shrinks to the pairs some LSH band
	// considers similar.
	prune := len(req.AIGs) > maxBatchExact
	ctx := r.Context()
	var serr error
	_, qspan := trace.Start(ctx, "service/queue_wait")
	err = s.pool.run(ctx, func() {
		qspan.End()
		// Coalesce the batch's per-graph work up front: one profile per
		// graph covering the union of artifact needs.
		needs := simil.Needs(metrics)
		if prune {
			needs |= simil.NeedSketch
		}
		sigs := make([]*sketch.Signature, len(entries))
		for i, e := range entries {
			if serr = ctx.Err(); serr != nil { // client gone: free the worker
				return
			}
			p, perr := s.profileFor(e, needs)
			if perr != nil {
				serr = perr
				return
			}
			sigs[i] = p.Sketch()
		}
		allowedFP := make(map[[2]string]bool)
		if prune {
			ix := sketch.NewIndex()
			inserted := make(map[string]bool, len(entries))
			for i, e := range entries {
				if !inserted[e.fp] {
					inserted[e.fp] = true
					ix.Insert(e.fp, sigs[i])
				}
			}
			for _, p := range ix.CandidatePairs(pruneFamilies(metrics)) {
				allowedFP[p] = true
			}
		}
		for i := 0; i < len(entries); i++ {
			for j := i + 1; j < len(entries); j++ {
				if serr = ctx.Err(); serr != nil {
					return
				}
				// Identical fingerprints always evaluate (the index holds
				// one entry per fingerprint, so banding cannot vouch for
				// them) — their scores are trivial and cache-shared anyway.
				if prune && entries[i].fp != entries[j].fp {
					a, b := entries[i].fp, entries[j].fp
					if a > b {
						a, b = b, a
					}
					if !allowedFP[[2]string{a, b}] {
						resp.PrunedPairs++
						continue
					}
				}
				scores, perr := s.pairScores(ctx, entries[i], entries[j], metrics)
				if perr != nil {
					serr = perr
					return
				}
				resp.Pairs = append(resp.Pairs, batchPair{I: i, J: j, Scores: scores})
			}
		}
		if prune {
			resp.Pruned = true
			telemetry.Add("sketch/candidates", int64(len(resp.Pairs)))
			telemetry.Add("sketch/exact_evals", int64(len(resp.Pairs)))
			telemetry.Add("sketch/pruned", int64(resp.PrunedPairs))
		}
	})
	if err != nil {
		qspan.Fail(err).End()
		s.replyPoolError(w, r, err)
		return
	}
	if serr != nil {
		if ctx.Err() != nil {
			s.replyPoolError(w, r, serr)
			return
		}
		replyError(w, http.StatusInternalServerError, "%v", serr)
		return
	}
	reply(w, http.StatusOK, resp)
}

// replyPoolError maps pool failures: saturation sheds with 429, a
// client disconnect (context cancellation) is counted and logged with
// 499-style semantics (the client is gone; any status is unread). The
// 503 fallback (pool shut down mid-request — the drain/stop path)
// carries the same scaled Retry-After as the 429s so clients refused
// during a drain back off by the backlog estimate, not blindly.
func (s *Server) replyPoolError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, ErrBusy) {
		s.shed(w, r)
		return
	}
	if r.Context().Err() != nil {
		telemetry.Add("service/client_disconnects", 1)
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	replyError(w, http.StatusServiceUnavailable, "%v", err)
}

// handleOptimize schedules an optimization flow as an async job and
// returns its ID immediately.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	sp := telemetry.StartSpan("service/optimize")
	defer sp.End()
	if !s.jobsAdm.enter() {
		s.shed(w, r)
		return
	}
	var req optimizeRequest
	if err := decodeJSON(r, &req); err != nil {
		s.jobsAdm.leave()
		replyError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Flow == "" {
		req.Flow = "orchestrate"
	}
	var flow opt.Flow
	found := false
	for _, f := range opt.Flows() {
		if f.Name == req.Flow {
			flow, found = f, true
		}
	}
	if !found {
		s.jobsAdm.leave()
		replyError(w, http.StatusBadRequest, "unknown flow %q (have %v)", req.Flow, flowNames())
		return
	}
	e, ok := s.store.get(req.AIG)
	if !ok {
		s.jobsAdm.leave()
		replyError(w, http.StatusNotFound, "unknown fingerprint %q (submit it via POST /v1/aigs first)", req.AIG)
		return
	}
	// The admission slot is released by the job engine when the pool
	// task exits — on every path, including cancellation while still
	// queued (where the run closure never executes). A deduplicated
	// retry never schedules anything, so this request's slot is handed
	// straight back: the original submission's slot already covers the
	// job.
	j, dup, err := s.jobs.submit(s.baseCtx, r.Context(), s.pool, "optimize", idempotencyKey(r), func(ctx context.Context) (any, error) {
		return s.runOptimize(ctx, e, flow, req.Seed)
	}, s.jobsAdm.leave)
	if err != nil {
		s.jobsAdm.leave()
		s.shed(w, r)
		return
	}
	if dup {
		s.jobsAdm.leave()
	}
	s.accept(w, r, j)
}

// idempotencyKey extracts the client's Idempotency-Key header for job
// submission dedup. Empty means "not idempotent": every submit is a
// new job.
func idempotencyKey(r *http.Request) string {
	return r.Header.Get("Idempotency-Key")
}

func (s *Server) accept(w http.ResponseWriter, r *http.Request, j *job) {
	v := j.snapshot()
	if sp := trace.SpanFromContext(r.Context()); sp != nil {
		sp.Attr("job_id", v.ID)
	}
	reply(w, http.StatusAccepted, jobAccepted{ID: v.ID, Status: v.Status, Poll: "/v1/jobs/" + v.ID})
}

// runOptimize executes one flow with the same guarantees the harness
// gives a variant: panic isolation (in the job engine) and a
// functional-equivalence check — a flow that changes the function is a
// failed job, never a silently wrong answer. The optimized structure is
// interned into the store for immediate follow-up scoring.
func (s *Server) runOptimize(ctx context.Context, e *storedAIG, flow opt.Flow, seed int64) (any, error) {
	og, err := harness.SafeFlow(ctx, flow, e.g, seed)
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if idx, eqErr := aig.Equivalent(e.g, og); eqErr != nil || idx >= 0 {
		telemetry.Add("harness/equiv_failures", 1)
		if eqErr == nil {
			eqErr = fmt.Errorf("optimized AIG differs from input on output %d", idx)
		}
		trace.AddEvent(ctx, "equiv_quarantine", trace.A("flow", flow.Name), trace.A("output", idx))
		return nil, eqErr
	}
	og = og.Cleanup()
	oe, _ := s.store.put(og)
	var b strings.Builder
	if err := aiger.WriteASCII(&b, og); err != nil {
		return nil, err
	}
	return OptimizeResult{
		Fingerprint: e.fp,
		Flow:        flow.Name,
		Seed:        seed,
		GatesBefore: e.stats.Ands, GatesAfter: og.NumAnds(),
		LevelsBefore: e.stats.Levels, LevelsAfter: og.NumLevels(),
		OptimizedFingerprint: oe.fp,
		AIGER:                b.String(),
	}, nil
}

// handleReport schedules a full ROD-style pair report: the pairwise
// metrics plus, per requested flow, both optimized gate counts and the
// Relative Optimizability Difference — the service equivalent of one
// harness.PairSample.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	sp := telemetry.StartSpan("service/report")
	defer sp.End()
	if !s.jobsAdm.enter() {
		s.shed(w, r)
		return
	}
	var req reportRequest
	if err := decodeJSON(r, &req); err != nil {
		s.jobsAdm.leave()
		replyError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	metrics, err := resolveMetrics(req.Metrics)
	if err != nil {
		s.jobsAdm.leave()
		replyError(w, http.StatusBadRequest, "%v", err)
		return
	}
	flows, err := resolveFlows(req.Flows)
	if err != nil {
		s.jobsAdm.leave()
		replyError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ea, eb, err := s.resolvePair(req.A, req.B)
	if err != nil {
		s.jobsAdm.leave()
		replyError(w, http.StatusNotFound, "%v", err)
		return
	}
	j, dup, err := s.jobs.submit(s.baseCtx, r.Context(), s.pool, "report", idempotencyKey(r), func(ctx context.Context) (any, error) {
		return s.runReport(ctx, ea, eb, flows, metrics, req.Seed)
	}, s.jobsAdm.leave)
	if err != nil {
		s.jobsAdm.leave()
		s.shed(w, r)
		return
	}
	if dup {
		s.jobsAdm.leave()
	}
	s.accept(w, r, j)
}

// runReport reuses the harness's pair-sample shape: RecipeA/RecipeB
// carry the fingerprints, Metrics the pairwise scores, ROD the per-flow
// Relative Optimizability Difference of Eq. 1.
func (s *Server) runReport(ctx context.Context, ea, eb *storedAIG, flows []opt.Flow, metrics []simil.Metric, seed int64) (any, error) {
	scores, err := s.pairScores(ctx, ea, eb, metrics)
	if err != nil {
		return nil, err
	}
	sample := harness.PairSample{
		Spec:    "service",
		RecipeA: ea.fp, RecipeB: eb.fp,
		Metrics: scores,
		ROD:     make(map[string]float64, len(flows)),
		GatesA:  ea.stats.Ands, GatesB: eb.stats.Ands,
	}
	for _, flow := range flows {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		oa, err := harness.SafeFlow(ctx, flow, ea.g, seed)
		if err != nil {
			return nil, err
		}
		ob, err := harness.SafeFlow(ctx, flow, eb.g, seed)
		if err != nil {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		sample.ROD[flow.Name] = simil.ROD(oa.NumAnds(), ob.NumAnds())
	}
	return sample, nil
}

func resolveFlows(names []string) ([]opt.Flow, error) {
	all := opt.Flows()
	if len(names) == 0 {
		return all, nil
	}
	var out []opt.Flow
	for _, n := range names {
		found := false
		for _, f := range all {
			if f.Name == n {
				out = append(out, f)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown flow %q (have %v)", n, flowNames())
		}
	}
	return out, nil
}

func flowNames() []string {
	all := opt.Flows()
	names := make([]string, len(all))
	for i, f := range all {
		names[i] = f.Name
	}
	return names
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		replyError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	reply(w, http.StatusOK, v)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.jobs.cancelJob(r.PathValue("id"))
	if !ok {
		replyError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	reply(w, http.StatusOK, v)
}
