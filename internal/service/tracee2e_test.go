package service_test

// End-to-end trace propagation tests: these live in an external test
// package because they drive the daemon through the resilient client,
// which imports package service for its wire types.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/aiger"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
	"repro/internal/tt"
)

// tracedDaemon is a daemon with a trace store installed as the global
// collector, plus a client pointed at it.
type tracedDaemon struct {
	ts *httptest.Server
	st *trace.Store
	cl *client.Client
}

func newTracedDaemon(t *testing.T, cfg service.Config) *tracedDaemon {
	t.Helper()
	telemetry.Enable().Reset()
	st := trace.NewStore(trace.StoreConfig{Capacity: 256, SampleRate: 1})
	trace.SetCollector(st)
	t.Cleanup(func() { trace.SetCollector(nil) })
	cfg.Trace = st
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	cl, err := client.New(client.Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	return &tracedDaemon{ts: ts, st: st, cl: cl}
}

func e2eAIG(t *testing.T, seed int64) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := synth.SynthSOP([]tt.TT{tt.Random(6, r)})
	var b bytes.Buffer
	if err := aiger.WriteASCII(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func spanNames(v trace.View) map[string]int {
	m := make(map[string]int, len(v.Spans))
	for _, sp := range v.Spans {
		m[sp.Name]++
	}
	return m
}

// awaitSpans polls the store until the trace contains every wanted span
// name — async job work (spill included) ends spans after the HTTP
// response, so the tree fills in shortly after the client returns.
func awaitSpans(t *testing.T, st *trace.Store, traceID string, want ...string) trace.View {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		v, ok := st.Get(traceID)
		if ok {
			names := spanNames(v)
			missing := ""
			for _, w := range want {
				if names[w] == 0 {
					missing = w
					break
				}
			}
			if missing == "" {
				return v
			}
			if time.Now().After(deadline) {
				t.Fatalf("trace %s never grew span %q; have %v", traceID, missing, names)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared in the store", traceID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTracePropagationEndToEnd proves the tentpole property: one traced
// optimize call yields ONE trace ID spanning the client conversation,
// the HTTP handler, the job queue wait, the job execution with its
// harness flow, and the async spill write — all stitched across two
// processes' worth of context boundaries (client ctx → HTTP header →
// handler ctx → detached job ctx).
func TestTracePropagationEndToEnd(t *testing.T) {
	d := newTracedDaemon(t, service.Config{SpillDir: t.TempDir(), SpillBytes: 1})

	ctx, root := trace.Start(context.Background(), "test/root")
	if root == nil {
		t.Fatal("collector installed but Start returned a nil span")
	}
	traceID := trace.FromContext(ctx).TraceID.String()

	v, err := d.cl.SubmitAIG(ctx, e2eAIG(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	jobID, err := d.cl.Optimize(ctx, v.Fingerprint, "orchestrate", 1)
	if err != nil {
		t.Fatal(err)
	}
	jv, err := d.cl.Await(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if jv.Status != service.JobDone {
		t.Fatalf("job finished %s: %+v", jv.Status, jv)
	}
	if jv.TraceID != traceID {
		t.Fatalf("JobView.TraceID = %q, want submitting trace %q", jv.TraceID, traceID)
	}
	root.End()

	view := awaitSpans(t, d.st, traceID,
		"client/http", "service/request", "service/job_queue_wait",
		"service/job", "harness/flow", "service/job_spill")
	names := spanNames(view)
	// Submit + optimize + ≥1 poll all rode the same root.
	if names["client/http"] < 3 {
		t.Fatalf("want ≥3 client/http spans (submit, optimize, polls), got %d", names["client/http"])
	}
	if names["client/http"] != names["service/request"] {
		t.Fatalf("client/http (%d) and service/request (%d) spans should pair 1:1",
			names["client/http"], names["service/request"])
	}
	if names["service/job"] != 1 || names["service/job_spill"] != 1 {
		t.Fatalf("want exactly one job and one spill span, got %v", names)
	}

	// The flame rendering covers the same tree.
	flame, ok := d.st.Flame(traceID)
	if !ok {
		t.Fatalf("no flame rendering for %s", traceID)
	}
	for _, w := range []string{"service/job_spill", "harness/flow"} {
		if !strings.Contains(flame, w) {
			t.Fatalf("flame output missing %q:\n%s", w, flame)
		}
	}
}

// TestTraceIdempotentReplay proves dedup-aware stitching: a second
// submit with the same Idempotency-Key but a different trace gets the
// original job back — its trace records an idempotent_replay event and
// runs no job of its own, while still reporting the prior job's ID.
func TestTraceIdempotentReplay(t *testing.T) {
	d := newTracedDaemon(t, service.Config{})

	fp, err := d.cl.SubmitAIG(context.Background(), e2eAIG(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"aig":%q,"flow":"orchestrate","seed":7}`, fp.Fingerprint)

	submit := func(ctx context.Context) (string, string) {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.ts.URL+"/v1/optimize", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "e2e-dedup-key")
		trace.Inject(ctx, req.Header)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		return acc.ID, resp.Header.Get("X-Trace-Id")
	}

	ctxA, rootA := trace.Start(context.Background(), "test/first")
	idA, gotA := submit(ctxA)
	rootA.End()
	traceA := trace.FromContext(ctxA).TraceID.String()
	if gotA != traceA {
		t.Fatalf("X-Trace-Id = %q, want propagated %q", gotA, traceA)
	}
	if _, err := d.cl.Await(context.Background(), idA); err != nil {
		t.Fatal(err)
	}

	ctxB, rootB := trace.Start(context.Background(), "test/second")
	idB, _ := submit(ctxB)
	rootB.End()
	traceB := trace.FromContext(ctxB).TraceID.String()
	if traceB == traceA {
		t.Fatal("second submit should carry a distinct trace")
	}
	if idB != idA {
		t.Fatalf("dedup broke: job %q != %q", idB, idA)
	}

	// Trace A owns the job; trace B only witnessed the replay.
	awaitSpans(t, d.st, traceA, "service/job")
	vb := awaitSpans(t, d.st, traceB, "service/request")
	if n := spanNames(vb)["service/job"]; n != 0 {
		t.Fatalf("replay trace ran %d job spans, want 0", n)
	}
	replay := false
	for _, sp := range vb.Spans {
		for _, ev := range sp.Events {
			if ev.Name == "idempotent_replay" {
				replay = true
			}
		}
	}
	if !replay {
		t.Fatalf("replay trace missing idempotent_replay event: %+v", vb.Spans)
	}
}
