package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/aiger"
	"repro/internal/faultinject"
	"repro/internal/synth"
	"repro/internal/tt"
)

// variantAIG synthesizes one recipe's realization of a seeded spec —
// the corpus generator for retrieval tests: same-seed different-recipe
// graphs are structural near-neighbors, different seeds are noise.
func variantAIG(t testing.TB, seed int64, recipe string) string {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	spec := []tt.TT{tt.Random(6, r)}
	for _, rec := range synth.Recipes() {
		if rec.Name == recipe {
			var b bytes.Buffer
			if err := aiger.WriteASCII(&b, rec.Build(spec)); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}
	}
	t.Fatalf("unknown recipe %q", recipe)
	return ""
}

// TestNeighborsExactFallback: a corpus the budget covers answers via
// the ground-truth scan even without exact=true, and the accounting
// says so.
func TestNeighborsExactFallback(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fps := make([]string, 5)
	for i := range fps {
		fps[i] = d.submit(t, testAIG(t, int64(300+i))).Fingerprint
	}
	var resp NeighborsResponse
	body := fmt.Sprintf(`{"fp":%q,"k":3}`, fps[0])
	if code := d.do(t, "POST", "/v1/neighbors", body, &resp); code != http.StatusOK {
		t.Fatalf("neighbors: status %d", code)
	}
	if !resp.Exact {
		t.Error("small corpus did not take the exact path")
	}
	if resp.Corpus != 4 || resp.Evals != 4 {
		t.Errorf("corpus/evals = %d/%d, want 4/4", resp.Corpus, resp.Evals)
	}
	if len(resp.Neighbors) != 3 {
		t.Fatalf("got %d neighbors, want 3", len(resp.Neighbors))
	}
	for _, n := range resp.Neighbors {
		if n.Fingerprint == fps[0] {
			t.Error("query returned itself")
		}
	}
}

// TestNeighborsSketchVsExact: on a clustered corpus the sketch-pruned
// path must spend strictly fewer evaluations than the corpus size and
// still recover the exact top neighbors. Everything is seeded, so the
// outcome is reproducible, not flaky.
func TestNeighborsSketchVsExact(t *testing.T) {
	d := newTestDaemon(t, Config{})
	// A cluster of same-function variants around the query plus noise.
	query := d.submit(t, variantAIG(t, 7000, "sop")).Fingerprint
	for _, rec := range []string{"esp", "fx", "bdd", "shannon", "dsd"} {
		d.submit(t, variantAIG(t, 7000, rec))
	}
	for i := 0; i < 40; i++ {
		d.submit(t, variantAIG(t, int64(7100+i), "sop"))
	}

	get := func(body string) NeighborsResponse {
		var resp NeighborsResponse
		if code := d.do(t, "POST", "/v1/neighbors", body, &resp); code != http.StatusOK {
			t.Fatalf("neighbors: status %d", code)
		}
		return resp
	}
	exact := get(fmt.Sprintf(`{"fp":%q,"k":5,"metric":"WLKernel","exact":true}`, query))
	if !exact.Exact {
		t.Fatal("exact=true did not take the exact path")
	}
	sketched := get(fmt.Sprintf(`{"fp":%q,"k":5,"metric":"WLKernel","budget":12}`, query))
	if sketched.Exact {
		t.Fatal("budget 12 over a 45-graph corpus should have taken the sketch path")
	}
	if sketched.Evals > 12 || sketched.Evals >= sketched.Corpus {
		t.Errorf("sketch path spent %d evals over corpus %d", sketched.Evals, sketched.Corpus)
	}
	truth := make(map[string]bool, len(exact.Neighbors))
	for _, n := range exact.Neighbors {
		truth[n.Fingerprint] = true
	}
	overlap := 0
	for _, n := range sketched.Neighbors {
		if truth[n.Fingerprint] {
			overlap++
		}
	}
	if overlap < 4 {
		t.Errorf("sketch top-5 recovered %d/5 of the exact top-5", overlap)
	}
	if sketched.Neighbors[0].Fingerprint != exact.Neighbors[0].Fingerprint {
		t.Errorf("sketch top-1 %q != exact top-1 %q",
			sketched.Neighbors[0].Fingerprint, exact.Neighbors[0].Fingerprint)
	}
}

// TestDiverseByteIdentical: repeated diverse-subset selections over the
// same corpus must return byte-identical bodies — the determinism
// contract of the selection (sorted pool, fingerprint tie-breaks,
// fingerprint-seeded profiles).
func TestDiverseByteIdentical(t *testing.T) {
	d := newTestDaemon(t, Config{})
	for i := 0; i < 12; i++ {
		d.submit(t, testAIG(t, int64(400+i)))
	}
	raw := func() string {
		resp, err := d.ts.Client().Post(d.ts.URL+"/v1/diverse-subset", "application/json",
			strings.NewReader(`{"k":4,"metric":"WLKernel"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("diverse-subset: status %d: %s", resp.StatusCode, b)
		}
		return string(b)
	}
	first := raw()
	for i := 0; i < 3; i++ {
		if again := raw(); again != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i+2, again, first)
		}
	}

	var resp DiverseResponse
	if code := d.do(t, "POST", "/v1/diverse-subset", `{"k":4}`, &resp); code != http.StatusOK {
		t.Fatalf("diverse-subset: status %d", code)
	}
	if len(resp.Chosen) != 4 || len(resp.Matrix) != 4 {
		t.Fatalf("chosen/matrix sized %d/%d, want 4/4", len(resp.Chosen), len(resp.Matrix))
	}
	seen := make(map[string]bool)
	for i, fp := range resp.Chosen {
		if seen[fp] {
			t.Errorf("fingerprint %q chosen twice", fp)
		}
		seen[fp] = true
		if len(resp.Matrix[i]) != 4 {
			t.Errorf("matrix row %d has %d columns", i, len(resp.Matrix[i]))
		}
		// The matrix must be symmetric: metric scores are symmetric.
		for j := range resp.Matrix[i] {
			if resp.Matrix[i][j] != resp.Matrix[j][i] {
				t.Errorf("matrix[%d][%d]=%v != matrix[%d][%d]=%v",
					i, j, resp.Matrix[i][j], j, i, resp.Matrix[j][i])
			}
		}
	}
}

// TestDiverseExplicitPool: an explicit fingerprint pool restricts the
// selection, and unknown members 404.
func TestDiverseExplicitPool(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fps := make([]string, 6)
	for i := range fps {
		fps[i] = d.submit(t, testAIG(t, int64(430+i))).Fingerprint
	}
	body := fmt.Sprintf(`{"aigs":[%q,%q,%q],"k":2}`, fps[0], fps[1], fps[2])
	var resp DiverseResponse
	if code := d.do(t, "POST", "/v1/diverse-subset", body, &resp); code != http.StatusOK {
		t.Fatalf("diverse-subset: status %d", code)
	}
	pool := map[string]bool{fps[0]: true, fps[1]: true, fps[2]: true}
	for _, fp := range resp.Chosen {
		if !pool[fp] {
			t.Errorf("chose %q from outside the explicit pool", fp)
		}
	}
	if code := d.do(t, "POST", "/v1/diverse-subset", `{"aigs":["nope","x"],"k":2}`, nil); code != http.StatusNotFound {
		t.Errorf("unknown pool member: status %d, want 404", code)
	}
}

// TestRetrievalValidation: malformed retrieval requests answer 4xx.
func TestRetrievalValidation(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fp := d.submit(t, testAIG(t, 440)).Fingerprint
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"neighbors no fp", "/v1/neighbors", `{"k":3}`, http.StatusBadRequest},
		{"neighbors negative k", "/v1/neighbors", fmt.Sprintf(`{"fp":%q,"k":-2}`, fp), http.StatusBadRequest},
		{"neighbors negative budget", "/v1/neighbors", fmt.Sprintf(`{"fp":%q,"budget":-1}`, fp), http.StatusBadRequest},
		{"neighbors huge k", "/v1/neighbors", fmt.Sprintf(`{"fp":%q,"k":100000}`, fp), http.StatusBadRequest},
		{"neighbors bad metric", "/v1/neighbors", fmt.Sprintf(`{"fp":%q,"metric":"nope"}`, fp), http.StatusBadRequest},
		{"neighbors unknown fp", "/v1/neighbors", `{"fp":"ffff"}`, http.StatusNotFound},
		{"neighbors bad json", "/v1/neighbors", `{"fp":`, http.StatusBadRequest},
		{"diverse zero k", "/v1/diverse-subset", `{"k":0}`, http.StatusBadRequest},
		{"diverse huge k", "/v1/diverse-subset", `{"k":100000}`, http.StatusBadRequest},
		{"diverse bad metric", "/v1/diverse-subset", `{"k":2,"metric":"nope"}`, http.StatusBadRequest},
		{"diverse unknown field", "/v1/diverse-subset", `{"k":2,"zzz":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code := d.do(t, "POST", tc.path, tc.body, nil); code != tc.want {
				t.Errorf("status %d, want %d", code, tc.want)
			}
		})
	}
}

// TestBatchOverCapStructured: the over-cap refusal reports the actual
// cap and request size, and counts the shed.
func TestBatchOverCapStructured(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fps := make([]string, maxBatchAIGs+1)
	for i := range fps {
		fps[i] = fmt.Sprintf("f%04d", i) // resolution happens after the cap check
	}
	body := fmt.Sprintf(`{"aigs":["%s"]}`, strings.Join(fps, `","`))
	var capErr batchCapError
	if code := d.do(t, "POST", "/v1/metrics/batch", body, &capErr); code != http.StatusBadRequest {
		t.Fatalf("over-cap batch: status %d, want 400", code)
	}
	if capErr.Cap != maxBatchAIGs || capErr.Size != maxBatchAIGs+1 {
		t.Errorf("cap error = %+v, want cap %d size %d", capErr, maxBatchAIGs, maxBatchAIGs+1)
	}
	if capErr.Error == "" {
		t.Error("cap error body has no message")
	}
	if got := d.counter("service/batch_shed"); got != 1 {
		t.Errorf("service/batch_shed = %d, want 1", got)
	}
}

// TestBatchPruned: a batch above maxBatchExact goes two-stage — the
// response says so, the pruned and evaluated pairs partition the pair
// space, and duplicate fingerprints still score.
func TestBatchPruned(t *testing.T) {
	d := newTestDaemon(t, Config{})
	n := maxBatchExact + 8
	fps := make([]string, n)
	for i := 0; i < n-1; i++ {
		fps[i] = d.submit(t, testAIG(t, int64(500+i))).Fingerprint
	}
	fps[n-1] = fps[0] // duplicate: must evaluate despite pruning
	body := fmt.Sprintf(`{"aigs":["%s"],"metrics":["WLKernel"]}`, strings.Join(fps, `","`))
	var resp batchResponse
	if code := d.do(t, "POST", "/v1/metrics/batch", body, &resp); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if !resp.Pruned {
		t.Fatalf("batch of %d was not pruned", n)
	}
	total := n * (n - 1) / 2
	if got := len(resp.Pairs) + resp.PrunedPairs; got != total {
		t.Errorf("pairs %d + pruned %d = %d, want %d", len(resp.Pairs), resp.PrunedPairs, got, total)
	}
	if resp.PrunedPairs == 0 {
		t.Error("no pairs pruned on a random corpus")
	}
	dupScored := false
	for _, p := range resp.Pairs {
		if p.I == 0 && p.J == n-1 {
			dupScored = true
			if p.Scores["WLKernel"] != 1 {
				t.Errorf("duplicate pair WLKernel = %v, want 1", p.Scores["WLKernel"])
			}
		}
	}
	if !dupScored {
		t.Error("duplicate-fingerprint pair was pruned away")
	}
	if d.counter("sketch/pruned") == 0 || d.counter("sketch/exact_evals") == 0 {
		t.Error("pruning counters did not move")
	}
}

// TestIndexStoreConsistency: under concurrent intern/evict churn and
// concurrent sketch queries, the index must track LRU membership
// exactly — never serving an evicted fingerprint, never missing a live
// one. Run under -race this is also the locking proof.
func TestIndexStoreConsistency(t *testing.T) {
	d := newTestDaemon(t, Config{StoreEntries: 12, Workers: 4})

	// Learn the universe of fingerprints first (this also churns the
	// 12-entry LRU through its first evictions).
	payloads := make([]string, 40)
	universe := make(map[string]bool, len(payloads))
	for i := range payloads {
		payloads[i] = testAIG(t, int64(600+i))
		universe[d.submit(t, payloads[i]).Fingerprint] = true
	}
	fps := make([]string, 0, len(universe))
	for fp := range universe {
		fps = append(fps, fp)
	}

	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				p := payloads[(w*13+i)%len(payloads)]
				resp, err := d.ts.Client().Post(d.ts.URL+"/v1/aigs", "application/octet-stream", strings.NewReader(p))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				fp := fps[(w*7+i)%len(fps)]
				body := fmt.Sprintf(`{"fp":%q,"k":3,"budget":4}`, fp)
				resp, err := d.ts.Client().Post(d.ts.URL+"/v1/neighbors", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusNotFound, http.StatusTooManyRequests:
				default:
					errs <- fmt.Errorf("neighbors answered %d: %s", resp.StatusCode, raw)
					return
				}
				if resp.StatusCode == http.StatusOK {
					// Every returned fingerprint must come from the
					// submitted universe — an index entry that outlived
					// its store entry would leak foreign fingerprints.
					var nr NeighborsResponse
					if err := json.Unmarshal(raw, &nr); err != nil {
						errs <- err
						return
					}
					for _, nb := range nr.Neighbors {
						if !universe[nb.Fingerprint] {
							errs <- fmt.Errorf("neighbor %q not in the submitted universe", nb.Fingerprint)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Final state: index membership == LRU membership, exactly.
	var live []string
	for _, e := range d.svc.store.snapshot() {
		live = append(live, e.fp)
	}
	indexed := d.svc.store.index.Fingerprints()
	if !reflect.DeepEqual(live, indexed) {
		t.Fatalf("index diverged from store:\nstore %v\nindex %v", live, indexed)
	}
	if len(live) != 12 {
		t.Errorf("store holds %d entries, want its cap of 12", len(live))
	}
}

// TestRebuildSketchIndex: a rebuild reproduces exactly the live
// membership; under an injected fault it fails without touching the
// index.
func TestRebuildSketchIndex(t *testing.T) {
	d := newTestDaemon(t, Config{StoreEntries: 8})
	for i := 0; i < 12; i++ { // 4 evictions
		d.submit(t, testAIG(t, int64(700+i)))
	}
	before := d.svc.store.index.Fingerprints()
	if len(before) != 8 {
		t.Fatalf("index holds %d entries, want 8", len(before))
	}

	armChaos(t, PointSketchRebuild, faultinject.Always(), faultinject.Fault{Mode: faultinject.ModeError})
	if _, err := d.svc.RebuildSketchIndex(); err == nil {
		t.Fatal("rebuild under injected fault reported success")
	}
	if got := d.svc.store.index.Fingerprints(); !reflect.DeepEqual(got, before) {
		t.Fatal("failed rebuild modified the index")
	}
	if d.counter("sketch/rebuild_errors") != 1 {
		t.Errorf("sketch/rebuild_errors = %d, want 1", d.counter("sketch/rebuild_errors"))
	}
	faultinject.Disable()
	faultinject.Reset()

	n, err := d.svc.RebuildSketchIndex()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("rebuild indexed %d entries, want 8", n)
	}
	if got := d.svc.store.index.Fingerprints(); !reflect.DeepEqual(got, before) {
		t.Fatalf("rebuild changed membership:\nbefore %v\nafter %v", before, got)
	}
}
