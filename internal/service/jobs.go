package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// PointSpill is the fault-injection point on the job-result spill
// path, in front of the atomic write. Spill failure is never job
// failure: the result stays in memory and the spill_errors counter
// records the degradation.
const PointSpill = "service/spill"

// JobStatus is the lifecycle state of an async job.
type JobStatus string

// Job lifecycle states. queued → running → done|failed; canceled can
// be entered from queued or running.
const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// JobView is the externally visible snapshot of a job, as served by the
// poll endpoint.
type JobView struct {
	ID     string    `json:"id"`
	Kind   string    `json:"kind"`
	Status JobStatus `json:"status"`
	// TraceID is the trace of the submit request that created the job
	// ("" when tracing was off at submit time): the async work, its
	// spill write, and the originating HTTP request all share it, and
	// it is retrievable from /v1/debug/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
	Error   string `json:"error,omitempty"`
	// Result holds the job's output once Status is done. Results larger
	// than the spill threshold are written to disk atomically and
	// replaced by a SpillRef.
	Result any `json:"result,omitempty"`
}

// SpillRef points at a job result spilled to disk.
type SpillRef struct {
	SpilledTo string `json:"spilled_to"`
	Bytes     int    `json:"bytes"`
}

type job struct {
	// idemKey is the Idempotency-Key the job was submitted under ("" if
	// none). Immutable after creation; the manager uses it to clear the
	// dedup entry when the job is pruned.
	idemKey string

	mu     sync.Mutex
	view   JobView
	cancel context.CancelFunc
	done   chan struct{}
}

func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view
}

// jobManager owns async job lifecycles: IDs, status transitions,
// cancellation, panic isolation (via the harness guard machinery), the
// on-disk spill of oversized results, and bounded retention of
// completed jobs.
type jobManager struct {
	mu       sync.Mutex
	jobs     map[string]*job
	idem     map[string]*job // Idempotency-Key → job, while the job is retained
	seq      int64
	history  int
	inflight sync.WaitGroup

	spillDir   string
	spillBytes int
}

func newJobManager(history int, spillDir string, spillBytes int) *jobManager {
	return &jobManager{
		jobs:       make(map[string]*job),
		idem:       make(map[string]*job),
		history:    history,
		spillDir:   spillDir,
		spillBytes: spillBytes,
	}
}

// submit registers a job and schedules run on the pool. run executes
// under ctx (canceled by DELETE /v1/jobs/{id} or server shutdown) with
// panic isolation: a panicking job fails and is quarantined exactly
// like a panicking harness variant, the daemon keeps serving.
//
// idemKey, when non-empty, deduplicates retried submissions: a second
// submit carrying the key of a still-retained job returns that job
// with dup=true instead of scheduling anything, so a client retrying
// into a half-dead daemon can neither double-spend an admission slot
// nor create a duplicate job. The dedup entry lives exactly as long as
// the job (cleared on prune and on failed scheduling), and the
// existing-job check is atomic with registration, so concurrent
// retries collapse onto one job too.
//
// onExit, when non-nil, runs exactly once when the pool task exits —
// on every path, including cancellation while still queued and panics —
// so callers can tie resources (e.g. an admission slot) to the job's
// lifetime rather than to run executing. When submit returns an error
// or dup=true the task was never scheduled and onExit is NOT called;
// the caller still owns its resources.
//
// rctx is the submitting request's context: its trace identity (not
// its lifetime) is carried over onto the job, so the async work and
// its spill write stitch into the originating request's trace even
// though they run under the long-lived base ctx.
func (m *jobManager) submit(ctx, rctx context.Context, p *pool, kind, idemKey string, run func(ctx context.Context) (any, error), onExit func()) (j *job, dup bool, err error) {
	sc := trace.FromContext(rctx)
	jctx, cancel := context.WithCancel(trace.ContextWithRemote(ctx, sc))
	m.mu.Lock()
	if idemKey != "" {
		if prior, ok := m.idem[idemKey]; ok {
			m.mu.Unlock()
			cancel()
			telemetry.Add("service/idempotent_replays", 1)
			// The replaying request gets no job spans of its own — the
			// original submission's trace carries them — so mark the
			// replay on this request's trace instead.
			trace.AddEvent(rctx, "idempotent_replay", trace.A("job_id", prior.snapshot().ID))
			return prior, true, nil
		}
	}
	m.seq++
	id := fmt.Sprintf("j%06d", m.seq)
	j = &job{
		idemKey: idemKey,
		view:    JobView{ID: id, Kind: kind, Status: JobQueued, TraceID: traceIDString(sc)},
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	m.jobs[id] = j
	if idemKey != "" {
		m.idem[idemKey] = j
	}
	m.mu.Unlock()

	// The queue-wait span measures submit-to-pickup for the async path;
	// it lives on the job's trace, not the request context, because the
	// wait routinely outlives the submitting request.
	_, qspan := trace.Start(jctx, "service/job_queue_wait")
	qspan.Attr("job_id", id)

	m.inflight.Add(1)
	ok := p.trySubmit(rctx, func() {
		qspan.End()
		defer m.inflight.Done()
		defer close(j.done)
		defer m.prune()
		if onExit != nil {
			defer onExit()
		}
		// Detach jctx from the long-lived base context once the job is
		// over; otherwise every finished job would stay registered on
		// baseCtx for the daemon's lifetime.
		defer cancel()
		if jctx.Err() != nil { // canceled while queued
			m.finish(jctx, j, JobCanceled, nil, jctx.Err())
			return
		}
		j.mu.Lock()
		j.view.Status = JobRunning
		j.mu.Unlock()
		telemetry.Add("service/jobs_started", 1)

		sctx, jspan := trace.Start(jctx, "service/job")
		jspan.Attr("kind", kind).Attr("job_id", id)
		res, err := m.runGuarded(sctx, kind, run)
		switch {
		case err != nil && jctx.Err() != nil:
			m.finish(sctx, j, JobCanceled, nil, err)
		case err != nil:
			m.finish(sctx, j, JobFailed, nil, err)
		default:
			m.finish(sctx, j, JobDone, res, nil)
		}
		jspan.Attr("status", string(j.snapshot().Status))
		jspan.Fail(err)
		jspan.End()
	})
	if !ok {
		qspan.Fail(ErrBusy)
		qspan.End()
		m.inflight.Done()
		cancel()
		m.mu.Lock()
		delete(m.jobs, id)
		if idemKey != "" {
			delete(m.idem, idemKey)
		}
		m.mu.Unlock()
		return nil, false, ErrBusy
	}
	telemetry.Add("service/jobs_submitted", 1)
	return j, false, nil
}

// traceIDString renders a span context's trace ID ("" when invalid).
func traceIDString(sc trace.SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return sc.TraceID.String()
}

// runGuarded executes the job body with the harness panic guard: a
// panic becomes an error (and a harness/panics_recovered count), never
// a crashed daemon.
func (m *jobManager) runGuarded(ctx context.Context, kind string, run func(ctx context.Context) (any, error)) (res any, err error) {
	defer harness.Recover(&err, "service job "+kind)
	return run(ctx)
}

func (m *jobManager) finish(ctx context.Context, j *job, status JobStatus, res any, err error) {
	if res != nil && status == JobDone {
		res = m.maybeSpill(ctx, j.snapshot().ID, res)
	}
	j.mu.Lock()
	j.view.Status = status
	j.view.Result = res
	if err != nil {
		j.view.Error = err.Error()
	}
	j.mu.Unlock()
	switch status {
	case JobDone:
		telemetry.Add("service/jobs_done", 1)
	case JobFailed:
		telemetry.Add("service/jobs_failed", 1)
	case JobCanceled:
		telemetry.Add("service/jobs_canceled", 1)
	}
}

// maybeSpill writes an oversized result to disk through the harness's
// fsync-before-rename helper and returns a SpillRef in its place, so
// the in-memory job table stays small under heavy result traffic and a
// crash mid-spill can never leave a torn file.
func (m *jobManager) maybeSpill(ctx context.Context, id string, res any) any {
	if m.spillDir == "" {
		return res
	}
	body, err := json.Marshal(res)
	if err != nil || len(body) < m.spillBytes {
		return res
	}
	sctx, sspan := trace.Start(ctx, "service/job_spill")
	defer sspan.End()
	sspan.Attr("job_id", id).Attr("bytes", len(body))
	if err := faultinject.HitCtx(sctx, PointSpill); err != nil {
		telemetry.Add("service/spill_errors", 1)
		sspan.Fail(err)
		return res
	}
	path := filepath.Join(m.spillDir, "job-"+id+".json")
	if err := harness.WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(body)
		return werr
	}); err != nil {
		// Spill failure is not job failure: serve the result in memory.
		telemetry.Add("service/spill_errors", 1)
		sspan.Fail(err)
		return res
	}
	telemetry.Add("service/spills", 1)
	return SpillRef{SpilledTo: path, Bytes: len(body)}
}

// get returns a snapshot of the job.
func (m *jobManager) get(id string) (JobView, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.snapshot(), true
}

// cancelJob requests cancellation; the job transitions to canceled when
// its body observes the context (or immediately if still queued).
func (m *jobManager) cancelJob(id string) (JobView, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	j.cancel()
	return j.snapshot(), true
}

// prune evicts the oldest finished jobs beyond the retention budget;
// queued and running jobs are never evicted.
func (m *jobManager) prune() {
	m.mu.Lock()
	defer m.mu.Unlock()
	type finished struct {
		id   string
		view JobView
	}
	var done []finished
	for id, j := range m.jobs {
		v := j.snapshot()
		if v.Status == JobDone || v.Status == JobFailed || v.Status == JobCanceled {
			done = append(done, finished{id, v})
		}
	}
	if len(done) <= m.history {
		return
	}
	// IDs are sequential, so lexicographic order (equal width) is age
	// order: evict oldest first. An evicted job's idempotency entry goes
	// with it — a replayed key after eviction legitimately submits a
	// fresh job (and spends a fresh admission slot).
	sort.Slice(done, func(i, k int) bool { return done[i].id < done[k].id })
	for _, f := range done[:len(done)-m.history] {
		if key := m.jobs[f.id].idemKey; key != "" {
			delete(m.idem, key)
		}
		delete(m.jobs, f.id)
	}
}

// drainJobs waits until every queued or running job finishes, or ctx
// expires.
func (m *jobManager) drainJobs(ctx context.Context) error {
	idle := make(chan struct{})
	go func() {
		m.inflight.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
