package service

import (
	"strings"
	"time"

	"repro/internal/telemetry"
)

// defaultSLOTarget is the per-request latency objective when
// Config.SLOTarget is zero: requests slower than this burn the
// endpoint's slo_breaches counter.
const defaultSLOTarget = 500 * time.Millisecond

// redEndpoint holds one route's precomputed RED metric names. The
// names are built once at startup from the fixed route table, so the
// per-endpoint metric family cardinality is bounded by the route count
// — never by traffic — and the hot path passes only stored strings to
// telemetry (the metricname lint treats field reads as pass-through
// plumbing from these construction sites).
type redEndpoint struct {
	path string // route pattern, e.g. "/v1/metrics" — the span's endpoint attribute

	requests    string // service/red/<key>/requests
	errs        string // service/red/<key>/errors
	seconds     string // service/red/<key>/seconds (histogram)
	sloBreaches string // service/red/<key>/slo_breaches
}

// redSet derives per-endpoint RED (Rate, Errors, Duration) families
// plus an SLO burn counter from the same request spans the trace layer
// records, keyed by route pattern.
type redSet struct {
	slo       time.Duration
	byPattern map[string]*redEndpoint
}

// newRedSet precomputes metric names for each route pattern of the
// form "METHOD /path/{wildcards}".
func newRedSet(slo time.Duration, patterns []string) *redSet {
	if slo <= 0 {
		slo = defaultSLOTarget
	}
	rs := &redSet{slo: slo, byPattern: make(map[string]*redEndpoint, len(patterns))}
	for _, pat := range patterns {
		key := redKey(pat)
		path := pat
		if i := strings.IndexByte(pat, ' '); i >= 0 {
			path = pat[i+1:]
		}
		rs.byPattern[pat] = &redEndpoint{
			path:        path,
			requests:    "service/red/" + key + "/requests",
			errs:        "service/red/" + key + "/errors",
			seconds:     "service/red/" + key + "/seconds",
			sloBreaches: "service/red/" + key + "/slo_breaches",
		}
	}
	return rs
}

// redKey flattens a route pattern into one snake_case metric segment:
// "GET /v1/aigs/{fp}" → "get_v1_aigs_fp".
func redKey(pattern string) string {
	var b strings.Builder
	lastUnderscore := true // suppress a leading underscore
	for _, r := range pattern {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnderscore = false
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// endpoint returns the precomputed names for a registered pattern
// (nil for unknown patterns; callers treat nil as "no RED accounting").
func (rs *redSet) endpoint(pattern string) *redEndpoint {
	return rs.byPattern[pattern]
}

// record folds one finished request into the endpoint's RED families:
// rate (requests), errors (5xx), duration (seconds histogram), and the
// latency-objective burn counter.
func (rs *redSet) record(ep *redEndpoint, status int, d time.Duration) {
	if ep == nil {
		return
	}
	telemetry.Add(ep.requests, 1)
	if status >= 500 {
		telemetry.Add(ep.errs, 1)
	}
	telemetry.Observe(ep.seconds, d.Seconds())
	if d > rs.slo {
		telemetry.Add(ep.sloBreaches, 1)
	}
}
