package service

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/telemetry"
)

// TestRecoverSpillDirAuditEvent pins the operator-facing audit line:
// one byte-stable JSONL "spill_recovery" event naming every
// quarantined temp and deleted spill, sorted, with unrelated files
// untouched.
func TestRecoverSpillDirAuditEvent(t *testing.T) {
	dir := t.TempDir()
	debris := []string{
		"job-zz.json.atomictmp-42", // torn atomic spill write
		"report.csv.atomictmp-7",   // torn atomic CSV write
		"job-dead1.json",           // stale spill of a dead process
		"job-dead0.json",
	}
	for _, name := range debris {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "keep.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	ev := telemetry.NewEventLogger(&buf)
	temps, spills, err := RecoverSpillDir(dir, ev)
	if err != nil {
		t.Fatal(err)
	}
	if temps != 2 || spills != 2 {
		t.Fatalf("temps=%d spills=%d, want 2 and 2", temps, spills)
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.txt")); err != nil {
		t.Fatalf("sweep touched an unrelated file: %v", err)
	}

	line := regexp.MustCompile(`"ts":"[^"]*"`).ReplaceAllString(buf.String(), `"ts":"T"`)
	want := `{"ts":"T","event":"spill_recovery",` +
		`"deleted_spills":["job-dead0.json","job-dead1.json"],` +
		`"dir":` + string(mustJSON(t, dir)) + `,` +
		`"errors":0,` +
		`"recovered_temps":["job-zz.json.atomictmp-42","report.csv.atomictmp-7"]}` + "\n"
	if line != want {
		t.Fatalf("audit line diverges:\n got: %s\nwant: %s", line, want)
	}

	// A clean startup still logs — absence of debris is auditable too.
	buf.Reset()
	if _, _, err := RecoverSpillDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"deleted_spills":[],`)) ||
		!bytes.Contains(buf.Bytes(), []byte(`"recovered_temps":[]}`)) {
		t.Fatalf("clean sweep must log empty lists, got: %s", buf.String())
	}
}

func mustJSON(t *testing.T, s string) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
