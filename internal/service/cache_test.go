package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFlightGroupFollowerCancel: a singleflight follower whose request
// is canceled must stop waiting immediately instead of inheriting the
// leader's schedule. The leader is not interrupted — its result still
// lands in the flight for any caller that outlasts it.
//
// Regression: flightGroup.do used to wait on the leader's done channel
// with a bare receive, so a canceled request (client gone, deadline
// passed) stayed parked for as long as the leader's computation took.
func TestFlightGroupFollowerCancel(t *testing.T) {
	g := newFlightGroup()
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	leaderOut := make(chan float64, 1)
	go func() {
		v, _, _ := g.do(context.Background(), "k", func() (float64, error) {
			close(leaderIn)
			<-release
			return 42, nil
		})
		leaderOut <- v
	}()
	<-leaderIn // the flight for "k" is registered and computing

	ctx, cancel := context.WithCancel(context.Background())
	followerOut := make(chan error, 1)
	go func() {
		_, err, shared := g.do(ctx, "k", func() (float64, error) {
			t.Error("follower ran the computation despite an in-flight leader")
			return 0, nil
		})
		if !shared {
			t.Error("follower did not join the leader's flight")
		}
		followerOut <- err
	}()

	cancel()
	select {
	case err := <-followerOut:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled follower stayed parked behind the leader")
	}

	close(release)
	if v := <-leaderOut; v != 42 {
		t.Fatalf("leader returned %v, want 42 (follower cancellation must not disturb the leader)", v)
	}
}
