// Package service implements aigd, the diversity-as-a-service daemon:
// a long-running HTTP/JSON layer over the paper's similarity framework
// that makes structural-diversity scoring cheap enough to sit in front
// of every expensive optimization run.
//
// The subsystem is built from five pieces, each sized for sustained
// traffic:
//
//   - a content-addressed AIG store keyed by canonical structural
//     fingerprint (aig.Fingerprint), so an identical structure is
//     parsed, validated, and profiled exactly once no matter how many
//     clients submit it;
//   - a sharded LRU result cache keyed (metric, fpA, fpB) whose hits
//     are bit-identical to fresh computation, with singleflight
//     deduplication of concurrent identical requests;
//   - a bounded worker pool fed by a coalescing batch path: per-graph
//     preprocessing (NetSimile features, WL labels, spectra, reduction
//     vectors) is computed once per graph per batch, never once per
//     pair;
//   - an admission layer with per-endpoint queue-depth budgets that
//     sheds load with 429 + Retry-After instead of collapsing;
//   - an async job engine (optimization flows, full ROD-style pair
//     reports) with IDs, polling, cancellation, panic isolation via
//     the harness guard machinery, and atomic on-disk spill of large
//     results.
//
// Everything is instrumented through internal/telemetry and served
// alongside the existing /metrics and /debug endpoints; SIGTERM drains
// in-flight jobs before exit.
package service

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/simil"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Config sizes the daemon. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the worker pool's backlog (default 4×Workers).
	QueueDepth int
	// PendingMetrics and PendingJobs are the per-endpoint admission
	// budgets: requests admitted but not yet finished (defaults
	// 2×QueueDepth and QueueDepth).
	PendingMetrics int
	PendingJobs    int
	// CacheEntries bounds the pairwise result cache (default 65536).
	CacheEntries int
	// StoreEntries bounds the content-addressed AIG store (default 4096).
	StoreEntries int
	// JobHistory bounds retained finished jobs (default 256).
	JobHistory int
	// SpillDir, when set, receives job results larger than SpillBytes
	// as atomically written JSON files (default off; SpillBytes
	// defaults to 256 KiB).
	SpillDir   string
	SpillBytes int
	// Profile tunes per-graph artifact construction. The options are
	// fixed per daemon because they are part of the cache-key contract:
	// one (metric, fpA, fpB) key must always name one value. The
	// per-graph Seed is ignored — the daemon derives it from the
	// structural fingerprint so identical structures always profile
	// identically.
	Profile simil.ProfileOptions
	// Trace, when set, is served on /v1/debug/traces alongside the API.
	// It should be the same store installed with trace.SetCollector —
	// the Handler only reads it.
	Trace *trace.Store
	// Events, when set, receives a structured "http_request" access-log
	// line per finished request (trace ID, endpoint, status, bytes,
	// duration) on the JSONL event stream.
	Events *telemetry.EventLogger
	// SLOTarget is the per-request latency objective behind the
	// per-endpoint slo_breaches counters (default 500ms).
	SLOTarget time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.PendingMetrics <= 0 {
		c.PendingMetrics = 2 * c.QueueDepth
	}
	if c.PendingJobs <= 0 {
		c.PendingJobs = c.QueueDepth
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1 << 16
	}
	if c.StoreEntries <= 0 {
		c.StoreEntries = 4096
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 256
	}
	if c.SpillBytes <= 0 {
		c.SpillBytes = 256 << 10
	}
	return c
}

// Server is one running daemon instance. Create it with New, mount
// Handler on an http.Server, and call Drain then Close on shutdown.
type Server struct {
	cfg   Config
	store *store
	cache *resultCache

	flights    *flightGroup
	pool       *pool
	jobs       *jobManager
	metricsAdm admission
	jobsAdm    admission
	red        *redSet

	// pairRouter and onIntern, when set (SetClusterHooks), splice the
	// cluster layer into the scoring and submission paths. Written
	// before the handler serves, read-only afterwards.
	pairRouter PairRouter
	onIntern   InternObserver

	baseCtx  context.Context
	baseStop context.CancelFunc
	draining atomic.Bool

	// drainHint, when set (SetDrainRetryHint), estimates how many
	// seconds of handoff backlog remain while draining; drain-mode
	// 503s scale their Retry-After by it instead of pinning the cap.
	drainHint atomic.Pointer[func() int]

	// testComputeDelay, when set by tests, runs inside the
	// singleflighted metric computation to widen the race window.
	testComputeDelay func()
}

// New builds a Server from cfg (zero value = defaults). When a spill
// directory is configured, New first runs the crash-recovery sweep
// over it (see RecoverSpillDir): orphaned atomic-write temps and stale
// spill files from a previous daemon life are quarantined before any
// new spill can collide with them.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.SpillDir != "" {
		// Sweep failure is not startup failure: the daemon still serves,
		// the recovery_errors counter records the degradation.
		_, _, _ = RecoverSpillDir(cfg.SpillDir, cfg.Events)
	}
	//lint:ignore ctxflow the server base context is the daemon-lifetime root, canceled in Close — background jobs derive from it
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		store:    newStore(cfg.StoreEntries),
		cache:    newResultCache(cfg.CacheEntries),
		flights:  newFlightGroup(),
		pool:     newPool(cfg.Workers, cfg.QueueDepth),
		jobs:     newJobManager(cfg.JobHistory, cfg.SpillDir, cfg.SpillBytes),
		red:      newRedSet(cfg.SLOTarget, routePatterns),
		baseCtx:  ctx,
		baseStop: stop,
	}
	// Splice the sketch layer into the store: every interned entry gets
	// its base profile and retrieval signature built by prepare, and
	// index membership mirrors LRU membership under the store lock.
	s.store.index = sketch.NewIndex()
	s.store.prepare = s.prepareEntry
	s.metricsAdm.limit = int64(cfg.PendingMetrics)
	s.jobsAdm.limit = int64(cfg.PendingJobs)
	return s
}

// SetDrainRetryHint installs an estimator for drain-mode Retry-After:
// the seconds a refused client should wait before the departing node's
// keys are reachable elsewhere. The cluster layer derives it from its
// handoff backlog; without a hint, drain 503s advertise the fixed cap.
// Safe to call at any time (the slot is atomic).
func (s *Server) SetDrainRetryHint(fn func() int) {
	if fn == nil {
		s.drainHint.Store(nil)
		return
	}
	s.drainHint.Store(&fn)
}

// Drain puts the server into drain mode — every new request is refused
// with 503 — and waits for in-flight jobs to complete, or for ctx to
// expire, whichever comes first. It is the SIGTERM path: submitted
// work finishes, nothing new is admitted.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.jobs.drainJobs(ctx)
}

// Close cancels whatever Drain left running and stops the worker pool.
func (s *Server) Close() {
	s.draining.Store(true)
	s.baseStop()
	s.pool.shutdown()
}

// DrainTimeoutDefault is the default SIGTERM drain budget used by
// cmd/aigd.
const DrainTimeoutDefault = 30 * time.Second
