package service

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// RecoverSpillDir is the daemon's startup crash-recovery sweep over
// its spill directory. A previous life that died uncleanly can leave
// two kinds of artifact behind:
//
//   - atomicfile temp files ("*.atomictmp-*"): a crash landed between
//     create and rename, so the file is a possibly-torn orphan no
//     process will ever complete — quarantined by harness.SweepAtomicTemps;
//   - stale spill files ("job-*.json"): their jobs lived only in the
//     dead process's memory, so no poll can ever reference them again —
//     removed so the directory cannot grow without bound across
//     restarts.
//
// Both sweeps are counted (service/orphan_temps_swept,
// service/orphan_spills_swept), and when an event logger is supplied
// the sweep emits one byte-stable "spill_recovery" JSONL line naming
// every quarantined temp and deleted spill (sorted), so operators can
// audit exactly what post-crash state the daemon cleaned up instead of
// reconstructing it from counters. The directory is created if missing
// — a daemon pointed at a fresh -spill-dir must not fail its first
// spill. Sweep errors degrade the sweep, never the daemon: the first
// is returned for logging and counted.
func RecoverSpillDir(spillDir string, events *telemetry.EventLogger) (temps, spills int, err error) {
	if mkErr := os.MkdirAll(spillDir, 0o755); mkErr != nil {
		telemetry.Add("service/recovery_errors", 1)
		return 0, 0, mkErr
	}
	errCount := 0
	tempNames, err := harness.SweepAtomicTempsList(spillDir)
	if err != nil {
		errCount++
	}
	var spillNames []string
	entries, rerr := os.ReadDir(spillDir)
	if rerr != nil {
		telemetry.Add("service/recovery_errors", 1)
		if err == nil {
			err = rerr
		}
		logRecovery(events, spillDir, tempNames, nil, errCount+1)
		return len(tempNames), 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		if rmErr := os.Remove(filepath.Join(spillDir, name)); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
			telemetry.Add("service/recovery_errors", 1)
			errCount++
			if err == nil {
				err = rmErr
			}
			continue
		}
		spillNames = append(spillNames, name)
	}
	telemetry.Add("service/orphan_spills_swept", int64(len(spillNames)))
	logRecovery(events, spillDir, tempNames, spillNames, errCount)
	return len(tempNames), len(spillNames), err
}

// logRecovery emits the post-crash audit line. Names are sorted so the
// same debris always serializes to the same bytes (the EventLogger
// already orders the keys); a clean startup still logs the line —
// "nothing was recovered" is itself an auditable fact.
func logRecovery(events *telemetry.EventLogger, dir string, temps, spills []string, errCount int) {
	if events == nil {
		return
	}
	sort.Strings(temps)
	sort.Strings(spills)
	if temps == nil {
		temps = []string{}
	}
	if spills == nil {
		spills = []string{}
	}
	events.Log("spill_recovery", map[string]any{
		"dir":             dir,
		"recovered_temps": temps,
		"deleted_spills":  spills,
		"errors":          errCount,
	})
}
