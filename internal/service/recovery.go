package service

import (
	"errors"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// RecoverSpillDir is the daemon's startup crash-recovery sweep over
// its spill directory. A previous life that died uncleanly can leave
// two kinds of artifact behind:
//
//   - atomicfile temp files ("*.atomictmp-*"): a crash landed between
//     create and rename, so the file is a possibly-torn orphan no
//     process will ever complete — quarantined by harness.SweepAtomicTemps;
//   - stale spill files ("job-*.json"): their jobs lived only in the
//     dead process's memory, so no poll can ever reference them again —
//     removed so the directory cannot grow without bound across
//     restarts.
//
// Both sweeps are counted (service/orphan_temps_swept,
// service/orphan_spills_swept) so operators can see crash debris in
// the metrics instead of discovering it on a full disk. The directory
// is created if missing — a daemon pointed at a fresh -spill-dir must
// not fail its first spill. Sweep errors degrade the sweep, never the
// daemon: the first is returned for logging and counted.
func RecoverSpillDir(spillDir string) (temps, spills int, err error) {
	if mkErr := os.MkdirAll(spillDir, 0o755); mkErr != nil {
		telemetry.Add("service/recovery_errors", 1)
		return 0, 0, mkErr
	}
	temps, err = harness.SweepAtomicTemps(spillDir)
	entries, rerr := os.ReadDir(spillDir)
	if rerr != nil {
		telemetry.Add("service/recovery_errors", 1)
		if err == nil {
			err = rerr
		}
		return temps, 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		if rmErr := os.Remove(filepath.Join(spillDir, name)); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
			telemetry.Add("service/recovery_errors", 1)
			if err == nil {
				err = rmErr
			}
			continue
		}
		spills++
	}
	telemetry.Add("service/orphan_spills_swept", int64(spills))
	return temps, spills, err
}
