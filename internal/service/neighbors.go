package service

import (
	"fmt"
	"net/http"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/simil"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// PointSketchRebuild is the fault-injection point on sketch index
// rebuild. A fault here fails the rebuild before the index is touched:
// the old index stays intact and keeps serving, which is the
// degradation the chaos suite pins.
const PointSketchRebuild = "sketch/rebuild"

// maxNeighborsK bounds one k-NN request; like the batch cap this keeps
// a single JSON body from pinning a worker arbitrarily long.
const maxNeighborsK = 256

// maxDiverseK bounds one diverse-subset selection. The response carries
// a k×k score matrix, so k is quadratic in response size.
const maxDiverseK = 64

// prepareEntry is the store's prepare hook: it builds a new entry's
// base profile — the sketch family and its parents — and publishes the
// retrieval signature the index mirrors. It runs outside the store
// lock on a still-private entry, so no synchronization is needed. On
// failure the entry still serves (profiles rebuild lazily in
// profileFor); it just never enters the sketch index.
func (s *Server) prepareEntry(e *storedAIG) {
	opts := s.cfg.Profile
	opts.Seed = profileSeed(e.fp)
	p, err := harness.SafeProfile(e.g, opts, simil.NeedSketch)
	if err != nil {
		telemetry.Add("sketch/prepare_errors", 1)
		return
	}
	telemetry.Add("service/profile_builds", 1)
	e.profile = p
	e.sig = p.Sketch()
}

// RebuildSketchIndex reconstructs the sketch index from current store
// membership — the recovery path for a suspected index/store
// divergence. It returns the number of indexed fingerprints. Under an
// injected fault the rebuild fails without touching the live index.
func (s *Server) RebuildSketchIndex() (int, error) {
	if err := faultinject.Hit(PointSketchRebuild); err != nil {
		telemetry.Add("sketch/rebuild_errors", 1)
		return 0, err
	}
	n := s.store.rebuildIndex()
	telemetry.Add("sketch/rebuilds", 1)
	return n, nil
}

// --- wire types --------------------------------------------------------

type neighborsRequest struct {
	FP     string `json:"fp"`
	K      int    `json:"k,omitempty"`
	Metric string `json:"metric,omitempty"`
	// Exact forces the full corpus scan — the ground-truth path for
	// small corpora and recall measurement.
	Exact bool `json:"exact,omitempty"`
	// Budget caps how many candidates get full metric evaluation
	// (default max(64, 8k)). The recall-vs-cost knob.
	Budget int `json:"budget,omitempty"`
}

// NeighborEntry is one ranked neighbor.
type NeighborEntry struct {
	Fingerprint string  `json:"fingerprint"`
	Score       float64 `json:"score"`
}

// NeighborsResponse reports a k-NN query: the ranked neighbors plus
// the evaluation accounting that makes the recall-vs-cost contract
// observable per request.
type NeighborsResponse struct {
	FP     string `json:"fp"`
	Metric string `json:"metric"`
	K      int    `json:"k"`
	// Exact reports which path answered: a full corpus scan or the
	// sketch-pruned two-stage query.
	Exact bool `json:"exact"`
	// Corpus is the store population the query ran against (excluding
	// the query itself); Evals is how many pairs got full metric
	// evaluation. Their ratio is the realized pruning factor.
	Corpus    int             `json:"corpus"`
	Evals     int             `json:"evals"`
	Neighbors []NeighborEntry `json:"neighbors"`
}

type diverseRequest struct {
	// AIGs is the explicit candidate pool; empty means the whole store.
	AIGs   []string `json:"aigs,omitempty"`
	K      int      `json:"k"`
	Metric string   `json:"metric,omitempty"`
}

// DiverseResponse reports a greedy max-min diversity selection: the
// chosen fingerprints in selection order plus their pairwise score
// matrix (Matrix[i][j] scores Chosen[i] against Chosen[j]).
type DiverseResponse struct {
	Metric string      `json:"metric"`
	K      int         `json:"k"`
	Pool   int         `json:"pool"`
	Chosen []string    `json:"chosen"`
	Matrix [][]float64 `json:"matrix"`
}

// --- ranking helpers ---------------------------------------------------

// resolveOneMetric picks the single ranking metric for a retrieval
// request (default WLKernel, the metric the MinHash family directly
// estimates).
func resolveOneMetric(name string) (simil.Metric, error) {
	if name == "" {
		name = "WLKernel"
	}
	m, ok := simil.MetricByName(name)
	if !ok {
		return simil.Metric{}, fmt.Errorf("unknown metric %q", name)
	}
	return m, nil
}

// sketchRanker returns the candidate-ranking distance for a metric.
// NetSimile-only metrics rank by the projection estimate — their
// matched estimator. Everything else, including WL-family metrics,
// ranks by the combined distance: the 1k-corpus recall study
// (TestSketchRecallContract) showed the feature half rescues
// stereotyped structures that score high under WLKernel while sitting
// far apart in label-multiset Jaccard, lifting recall@10 above
// WL-only ranking.
func sketchRanker(qs *sketch.Signature, m simil.Metric) func(*sketch.Signature) float64 {
	wl := m.Needs&simil.NeedWL != 0
	ns := m.Needs&simil.NeedNetSimile != 0
	if ns && !wl {
		return qs.FeatDistance
	}
	return qs.Distance
}

// pruneFamilies maps a batch's metric set onto the sketch families
// that vouch for candidate pairs: WL bands for WL-family metrics,
// feature bands for NetSimile-family ones. Metrics whose artifacts
// have no sketch proxy (overlap, spectrum, opt scores) widen to both
// families — the conservative gate. Stats-only metrics add nothing;
// a batch of only those falls back to both families too.
func pruneFamilies(metrics []simil.Metric) sketch.Family {
	var fam sketch.Family
	for _, m := range metrics {
		if m.Needs&simil.NeedWL != 0 {
			fam |= sketch.FamilyWL
		}
		if m.Needs&simil.NeedNetSimile != 0 {
			fam |= sketch.FamilyFeat
		}
		if m.Needs&(simil.NeedOverlap|simil.NeedSpectrum|simil.NeedOptScores) != 0 {
			fam = sketch.FamilyAll
		}
	}
	if fam == 0 {
		fam = sketch.FamilyAll
	}
	return fam
}

// dissim maps a metric score onto a dissimilarity so max-min selection
// works uniformly: higher-is-similar metrics are negated.
func dissim(m simil.Metric, score float64) float64 {
	if m.HigherIsSimilar {
		return -score
	}
	return score
}

// --- endpoints ---------------------------------------------------------

// handleNeighbors serves k-NN by a chosen metric: a sketch-pruned
// candidate set gets full metric evaluation (through the shared result
// cache and singleflight, so hits stay bit-identical to fresh
// computation), or a full corpus scan when exact is requested or the
// corpus is small enough that pruning cannot pay for itself.
func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	sp := telemetry.StartSpan("service/neighbors")
	defer sp.End()
	if !s.metricsAdm.enter() {
		s.shed(w, r)
		return
	}
	defer s.metricsAdm.leave()

	var req neighborsRequest
	if err := decodeJSON(r, &req); err != nil {
		replyError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.FP == "" {
		replyError(w, http.StatusBadRequest, "missing query fingerprint \"fp\"")
		return
	}
	if req.K < 0 || req.Budget < 0 {
		replyError(w, http.StatusBadRequest, "k and budget must be non-negative")
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k > maxNeighborsK {
		replyError(w, http.StatusBadRequest, "k=%d exceeds the limit of %d", k, maxNeighborsK)
		return
	}
	metric, err := resolveOneMetric(req.Metric)
	if err != nil {
		replyError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, ok := s.store.get(req.FP)
	if !ok {
		replyError(w, http.StatusNotFound, "unknown fingerprint %q (submit it via POST /v1/aigs first)", req.FP)
		return
	}
	budget := req.Budget
	if budget == 0 {
		budget = 8 * k
		if budget < 64 {
			budget = 64
		}
	}

	ctx := r.Context()
	resp := NeighborsResponse{FP: req.FP, Metric: metric.Name, K: k}
	var serr error
	_, qspan := trace.Start(ctx, "service/queue_wait")
	err = s.pool.run(ctx, func() {
		qspan.End()
		sctx, span := trace.Start(ctx, "service/sketch_query")
		defer span.End()

		// Stage 1: the candidate set. Exact requests and corpora the
		// budget already covers take the ground-truth scan.
		var cands []*storedAIG
		corpus := s.store.len() - 1
		if req.Exact || corpus <= budget {
			resp.Exact = true
			for _, ce := range s.store.snapshot() {
				if ce.fp != e.fp {
					cands = append(cands, ce)
				}
			}
		} else {
			qp, perr := s.profileFor(e, simil.NeedSketch)
			if perr != nil {
				serr = perr
				return
			}
			qs := qp.Sketch()
			ranked, bandHits := s.store.index.Query(e.fp, qs, sketchRanker(qs, metric), budget)
			telemetry.Add("sketch/candidates", int64(len(ranked)))
			if pruned := corpus - len(ranked); pruned > 0 {
				telemetry.Add("sketch/pruned", int64(pruned))
			}
			span.Attr("band_hits", bandHits).Attr("candidates", len(ranked))
			for _, c := range ranked {
				if ce, ok := s.store.get(c.FP); ok {
					cands = append(cands, ce)
				}
			}
		}
		resp.Corpus = corpus

		// Stage 2: full metric evaluation of the survivors, through the
		// shared pair-scoring path (cache + singleflight).
		entries := make([]NeighborEntry, 0, len(cands))
		for _, ce := range cands {
			if serr = sctx.Err(); serr != nil {
				return
			}
			scores, perr := s.pairScores(sctx, e, ce, []simil.Metric{metric})
			if perr != nil {
				serr = perr
				return
			}
			entries = append(entries, NeighborEntry{Fingerprint: ce.fp, Score: scores[metric.Name]})
		}
		telemetry.Add("sketch/exact_evals", int64(len(entries)))
		resp.Evals = len(entries)
		sort.Slice(entries, func(i, j int) bool {
			di, dj := dissim(metric, entries[i].Score), dissim(metric, entries[j].Score)
			if di != dj {
				return di < dj
			}
			return entries[i].Fingerprint < entries[j].Fingerprint
		})
		if len(entries) > k {
			entries = entries[:k]
		}
		resp.Neighbors = entries
	})
	if err != nil {
		qspan.Fail(err).End()
		s.replyPoolError(w, r, err)
		return
	}
	if serr != nil {
		if ctx.Err() != nil {
			s.replyPoolError(w, r, serr)
			return
		}
		replyError(w, http.StatusInternalServerError, "%v", serr)
		return
	}
	reply(w, http.StatusOK, resp)
}

// handleDiverse serves greedy max-min diversity selection — the
// "choose the k structurally most diverse variants" policy as an
// endpoint. Selection is the classic 2-approximation of max-min
// dispersion: seed with the pool element farthest from the first
// sorted element, then repeatedly add the element maximizing its
// minimum dissimilarity to everything chosen. Every step is
// deterministic (sorted pool, fingerprint tie-breaks, fingerprint-
// seeded profiles), so repeated runs over the same corpus return
// byte-identical responses.
func (s *Server) handleDiverse(w http.ResponseWriter, r *http.Request) {
	sp := telemetry.StartSpan("service/diverse")
	defer sp.End()
	if !s.metricsAdm.enter() {
		s.shed(w, r)
		return
	}
	defer s.metricsAdm.leave()

	var req diverseRequest
	if err := decodeJSON(r, &req); err != nil {
		replyError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.K <= 0 {
		replyError(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	if req.K > maxDiverseK {
		replyError(w, http.StatusBadRequest, "k=%d exceeds the limit of %d", req.K, maxDiverseK)
		return
	}
	metric, err := resolveOneMetric(req.Metric)
	if err != nil {
		replyError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The candidate pool: explicit fingerprints, or the whole store.
	// Either way sorted and deduplicated so selection is deterministic.
	var pool []*storedAIG
	if len(req.AIGs) > 0 {
		if len(req.AIGs) > maxBatchAIGs {
			replyError(w, http.StatusBadRequest, "pool of %d AIGs exceeds the limit of %d", len(req.AIGs), maxBatchAIGs)
			return
		}
		seen := make(map[string]bool, len(req.AIGs))
		for _, fp := range req.AIGs {
			if seen[fp] {
				continue
			}
			seen[fp] = true
			e, ok := s.store.get(fp)
			if !ok {
				replyError(w, http.StatusNotFound, "unknown fingerprint %q (submit it via POST /v1/aigs first)", fp)
				return
			}
			pool = append(pool, e)
		}
		sort.Slice(pool, func(i, j int) bool { return pool[i].fp < pool[j].fp })
	} else {
		pool = s.store.snapshot()
	}
	if len(pool) < 2 {
		replyError(w, http.StatusBadRequest, "diverse selection needs a pool of at least 2 AIGs, have %d", len(pool))
		return
	}
	k := req.K
	if k > len(pool) {
		k = len(pool)
	}

	ctx := r.Context()
	resp := DiverseResponse{Metric: metric.Name, K: k, Pool: len(pool)}
	var serr error
	_, qspan := trace.Start(ctx, "service/queue_wait")
	err = s.pool.run(ctx, func() {
		qspan.End()
		sctx, span := trace.Start(ctx, "service/diverse_select")
		span.Attr("pool", len(pool)).Attr("k", k)
		defer span.End()
		score := func(a, b *storedAIG) (float64, error) {
			scores, perr := s.pairScores(sctx, a, b, []simil.Metric{metric})
			if perr != nil {
				return 0, perr
			}
			return scores[metric.Name], nil
		}

		// minDist[i] tracks pool[i]'s minimum dissimilarity to the
		// chosen set; each round adds the argmax — O(k·n) evaluations,
		// not O(n²).
		chosen := make([]int, 0, k)
		minDist := make([]float64, len(pool))
		inSet := make([]bool, len(pool))
		for i := 1; i < len(pool); i++ {
			v, perr := score(pool[0], pool[i])
			if perr != nil {
				serr = perr
				return
			}
			minDist[i] = dissim(metric, v)
		}
		// Seed: the element farthest from sorted-pool[0] (ties go to the
		// lowest index, i.e. the smallest fingerprint).
		seed := 1
		for i := 2; i < len(pool); i++ {
			if minDist[i] > minDist[seed] {
				seed = i
			}
		}
		chosen = append(chosen, seed)
		inSet[seed] = true
		for i := range pool {
			if !inSet[i] {
				v, perr := score(pool[seed], pool[i])
				if perr != nil {
					serr = perr
					return
				}
				minDist[i] = dissim(metric, v)
			}
		}
		for len(chosen) < k {
			if serr = sctx.Err(); serr != nil {
				return
			}
			best := -1
			for i := range pool {
				if inSet[i] {
					continue
				}
				if best < 0 || minDist[i] > minDist[best] {
					best = i
				}
			}
			chosen = append(chosen, best)
			inSet[best] = true
			for i := range pool {
				if !inSet[i] {
					v, perr := score(pool[best], pool[i])
					if perr != nil {
						serr = perr
						return
					}
					if d := dissim(metric, v); d < minDist[i] {
						minDist[i] = d
					}
				}
			}
		}

		resp.Chosen = make([]string, len(chosen))
		for i, idx := range chosen {
			resp.Chosen[i] = pool[idx].fp
		}
		resp.Matrix = make([][]float64, len(chosen))
		for i := range chosen {
			resp.Matrix[i] = make([]float64, len(chosen))
			for j := range chosen {
				if i == j {
					continue
				}
				v, perr := score(pool[chosen[i]], pool[chosen[j]])
				if perr != nil {
					serr = perr
					return
				}
				resp.Matrix[i][j] = v
			}
		}
	})
	if err != nil {
		qspan.Fail(err).End()
		s.replyPoolError(w, r, err)
		return
	}
	if serr != nil {
		if ctx.Err() != nil {
			s.replyPoolError(w, r, serr)
			return
		}
		replyError(w, http.StatusInternalServerError, "%v", serr)
		return
	}
	reply(w, http.StatusOK, resp)
}
