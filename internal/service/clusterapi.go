package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/aiger"
	"repro/internal/simil"
	"repro/internal/telemetry/trace"
)

// This file is the surface internal/cluster composes a multi-node
// daemon from. The contract every method leans on: scoring is a pure
// function of (fingerprint pair, metric) — profiles are seeded from
// the structural fingerprint (see profileSeed), so any node computes
// bit-identical scores for the same pair. That is what makes peer
// cache fill and replica failover sound: a value computed anywhere can
// be installed in any node's cache without violating the
// hit-equals-fresh-computation invariant.

// ErrUnknownFingerprint is the sentinel under every "fingerprint not
// stored" failure on the scoring path. Handlers map it to 404; the
// cluster router returns it only after the whole cluster (not just the
// local store) came up empty.
var ErrUnknownFingerprint = errors.New("unknown fingerprint")

// PairRouter resolves one pair-scores request cluster-wide: consult
// the local cache, ask the owning peers, or fall back to computing
// locally. metrics is the resolved canonical metric-name list (never
// empty). An ErrBusy return sheds the request with 429 + Retry-After;
// ErrUnknownFingerprint (wrapped) answers 404.
type PairRouter func(ctx context.Context, fpA, fpB string, metrics []string) (map[string]float64, error)

// InternObserver observes each AIG submitted through the external API
// (POST /v1/aigs) after interning; the cluster layer uses it to
// replicate the structure to its ring owners. It is not invoked for
// cluster-internal interning (peer fill payloads, replication
// receives) — that asymmetry is what prevents replication storms.
type InternObserver func(ctx context.Context, v AIGView)

// SetClusterHooks installs the cluster routing layer. It must be
// called before the Server's Handler starts serving traffic; nil
// restores single-node behavior. (Both hooks are plain fields: the
// happens-before edge is the caller starting its HTTP server after
// this call.)
func (s *Server) SetClusterHooks(router PairRouter, onIntern InternObserver) {
	s.pairRouter = router
	s.onIntern = onIntern
}

// InternAIGER parses, validates, and interns an AIGER payload exactly
// like POST /v1/aigs does — including the Cleanup canonicalization
// that keeps dead cones out of the fingerprint — but without invoking
// the intern observer. It is the receive side of cluster replication
// and inline fill payloads; interning is content-addressed, so
// replaying it is idempotent.
func (s *Server) InternAIGER(payload []byte) (AIGView, error) {
	g, err := aiger.Read(bytes.NewReader(payload))
	if err != nil {
		return AIGView{}, fmt.Errorf("parsing AIGER: %w", err)
	}
	if err := g.Check(); err != nil {
		return AIGView{}, fmt.Errorf("invalid AIG: %w", err)
	}
	e, known := s.store.put(g.Cleanup())
	return viewOf(e, known), nil
}

// AIGERFor returns the canonical ASCII AIGER encoding of a stored
// fingerprint — the replication and fill-payload wire format. Encoding
// the stored (cleaned) graph rather than echoing the submitted bytes
// guarantees every replica interns the identical structure under the
// identical fingerprint.
func (s *Server) AIGERFor(fp string) ([]byte, error) {
	e, ok := s.store.get(fp)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownFingerprint, fp)
	}
	var b bytes.Buffer
	if err := aiger.WriteASCII(&b, e.g); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// HasAIG reports whether fp is in the local store.
func (s *Server) HasAIG(fp string) bool {
	_, ok := s.store.get(fp)
	return ok
}

// ScorePairLocal computes the named metrics for a stored pair on this
// node's worker pool, through its cache and singleflight — the exact
// single-node scoring path. ErrBusy means the pool queue is full.
func (s *Server) ScorePairLocal(ctx context.Context, fpA, fpB string, metricNames []string) (map[string]float64, error) {
	ea, eb, err := s.resolvePair(fpA, fpB)
	if err != nil {
		return nil, err
	}
	metrics, err := resolveMetrics(metricNames)
	if err != nil {
		return nil, err
	}
	return s.scorePairPooled(ctx, ea, eb, metrics)
}

// scorePairPooled runs pairScores on the bounded pool with the
// queue-wait span, shared by handleMetrics and ScorePairLocal.
func (s *Server) scorePairPooled(ctx context.Context, ea, eb *storedAIG, metrics []simil.Metric) (map[string]float64, error) {
	var scores map[string]float64
	var serr error
	_, qspan := trace.Start(ctx, "service/queue_wait")
	err := s.pool.run(ctx, func() {
		qspan.End()
		scores, serr = s.pairScores(ctx, ea, eb, metrics)
	})
	if err != nil {
		qspan.Fail(err).End()
		return nil, err
	}
	if serr != nil {
		return nil, serr
	}
	return scores, nil
}

// PairFromCache returns the pair's scores if every requested metric is
// already in the local result cache; ok is false on any miss (the
// caller then decides between peer fill and local compute). ctx only
// attributes fault-injected misses to the requesting trace.
func (s *Server) PairFromCache(ctx context.Context, fpA, fpB string, metricNames []string) (map[string]float64, bool) {
	out := make(map[string]float64, len(metricNames))
	for _, name := range metricNames {
		key, _ := cacheKey(name, fpA, fpB)
		v, _, ok := s.cache.get(ctx, key)
		if !ok {
			return nil, false
		}
		out[name] = v
	}
	return out, true
}

// FillPairCache installs peer-obtained scores into the local result
// cache. Sound because scores are a pure function of (pair, metric):
// a peer-computed value is bit-identical to what this node would have
// computed, so a later local hit still equals fresh computation.
func (s *Server) FillPairCache(fpA, fpB string, scores map[string]float64) {
	for name, v := range scores {
		key, _ := cacheKey(name, fpA, fpB)
		s.cache.put(key, v)
	}
}

// StoredFingerprints returns every fingerprint in the local store in
// sorted order — the enumeration base a membership-change handoff
// plans structure transfers from.
func (s *Server) StoredFingerprints() []string {
	snap := s.store.snapshot()
	out := make([]string, len(snap))
	for i, e := range snap {
		out[i] = e.fp
	}
	return out
}

// PairResult is one pair's cached scores, re-assembled from the result
// cache's per-metric lines — the unit a handoff streams via
// ClusterPutResult.
type PairResult struct {
	A, B   string
	Scores map[string]float64
}

// CachedPairResults groups the local result cache back into per-pair
// score maps, sorted by (A, B) for deterministic handoff plans. Like
// entries(), this is a point-in-time view; a result missed by a
// concurrent put is recomputable anywhere, so handoff completeness is
// best-effort by design — correctness rests on purity, not on the copy
// being exhaustive.
func (s *Server) CachedPairResults() []PairResult {
	byPair := make(map[string]*PairResult)
	for _, it := range s.cache.entries() {
		// Keys are "metric|fpA|fpB" with sorted fingerprints; metric
		// names never contain '|'.
		parts := strings.SplitN(it.key, "|", 3)
		if len(parts) != 3 {
			continue
		}
		pk := parts[1] + "|" + parts[2]
		pr, ok := byPair[pk]
		if !ok {
			pr = &PairResult{A: parts[1], B: parts[2], Scores: make(map[string]float64)}
			byPair[pk] = pr
		}
		pr.Scores[parts[0]] = it.val
	}
	keys := make([]string, 0, len(byPair))
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]PairResult, len(keys))
	for i, k := range keys {
		out[i] = *byPair[k]
	}
	return out
}

// RetryAfterSeconds exposes the load-scaled Retry-After hint (1s idle,
// up to 30s under backlog) so the cluster layer's refusals carry the
// same pacing signal as the service's own 429s.
func (s *Server) RetryAfterSeconds() int {
	return s.retryAfterSeconds()
}

// MetricNames canonicalizes a request's metric list the way the
// scoring path will resolve it (empty = the full registry), so routing
// layers key their deduplication on exactly what will be computed.
func MetricNames(names []string) ([]string, error) {
	metrics, err := resolveMetrics(names)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(metrics))
	for i, m := range metrics {
		out[i] = m.Name
	}
	return out, nil
}
