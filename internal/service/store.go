package service

import (
	"container/list"
	"sync"

	"repro/internal/aig"
	"repro/internal/faultinject"
	"repro/internal/simil"
	"repro/internal/telemetry"
)

// PointStorePut is the fault-injection point on store interning. The
// store is in-memory and cannot fail, so only latency faults take
// effect here — they widen race windows between concurrent submits of
// identical structures, the interleaving the content-addressing tests
// hunt.
const PointStorePut = "service/store_put"

// storedAIG is one content-addressed store entry: the parsed, validated
// AIG plus its lazily built similarity profile. The profile is guarded
// by its own mutex, which doubles as the per-graph coalescing point:
// concurrent requests needing the same graph's artifacts line up behind
// one build instead of each computing their own.
type storedAIG struct {
	fp    string
	g     *aig.AIG
	stats aig.Stats

	profMu  sync.Mutex
	profile *simil.Profile
}

// store is the content-addressed AIG store: structures are keyed by
// canonical fingerprint, so a resubmitted identical structure is
// parsed, validated, and profiled exactly once. Bounded by an LRU so
// heavy traffic cannot grow memory without limit.
type store struct {
	mu    sync.Mutex
	byFP  map[string]*list.Element
	order *list.List // front = most recently used
	cap   int
}

func newStore(capacity int) *store {
	return &store{byFP: make(map[string]*list.Element), order: list.New(), cap: capacity}
}

// put interns g (already validated by the caller) under its
// fingerprint. It returns the canonical entry and whether the structure
// was already known.
func (s *store) put(g *aig.AIG) (*storedAIG, bool) {
	faultinject.Delay(PointStorePut)
	fp := g.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byFP[fp]; ok {
		s.order.MoveToFront(el)
		telemetry.Add("service/store_hits", 1)
		return el.Value.(*storedAIG), true
	}
	e := &storedAIG{fp: fp, g: g, stats: g.Stat()}
	s.byFP[fp] = s.order.PushFront(e)
	telemetry.Add("service/store_adds", 1)
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byFP, oldest.Value.(*storedAIG).fp)
		telemetry.Add("service/store_evictions", 1)
	}
	return e, false
}

// get returns the entry for a fingerprint, bumping its recency.
func (s *store) get(fp string) (*storedAIG, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byFP[fp]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*storedAIG), true
}

func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}
