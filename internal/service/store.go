package service

import (
	"container/list"
	"sort"
	"sync"

	"repro/internal/aig"
	"repro/internal/faultinject"
	"repro/internal/simil"
	"repro/internal/sketch"
	"repro/internal/telemetry"
)

// PointStorePut is the fault-injection point on store interning. The
// store is in-memory and cannot fail, so only latency faults take
// effect here — they widen race windows between concurrent submits of
// identical structures, the interleaving the content-addressing tests
// hunt.
const PointStorePut = "service/store_put"

// storedAIG is one content-addressed store entry: the parsed, validated
// AIG plus its lazily built similarity profile. The profile is guarded
// by its own mutex, which doubles as the per-graph coalescing point:
// concurrent requests needing the same graph's artifacts line up behind
// one build instead of each computing their own.
type storedAIG struct {
	fp    string
	g     *aig.AIG
	stats aig.Stats

	// sig is the retrieval signature mirrored into the sketch index.
	// Written once by the store's prepare hook before the entry is
	// published, read-only afterwards.
	sig *sketch.Signature

	profMu  sync.Mutex
	profile *simil.Profile
}

// store is the content-addressed AIG store: structures are keyed by
// canonical fingerprint, so a resubmitted identical structure is
// parsed, validated, and profiled exactly once. Bounded by an LRU so
// heavy traffic cannot grow memory without limit.
type store struct {
	mu    sync.Mutex
	byFP  map[string]*list.Element
	order *list.List // front = most recently used
	cap   int

	// prepare, when set, runs on every newly interned entry before it
	// is published — outside mu, on a still-private entry — and is
	// where the server builds the base profile and retrieval signature.
	prepare func(*storedAIG)
	// index, when set, mirrors store membership: Insert on intern and
	// Remove on evict both happen under mu, so a fingerprint is in the
	// index exactly when it is in the LRU — queries can never see an
	// evicted entry or miss a live one.
	index *sketch.Index
}

func newStore(capacity int) *store {
	return &store{byFP: make(map[string]*list.Element), order: list.New(), cap: capacity}
}

// put interns g (already validated by the caller) under its
// fingerprint. It returns the canonical entry and whether the structure
// was already known.
func (s *store) put(g *aig.AIG) (*storedAIG, bool) {
	faultinject.Delay(PointStorePut)
	fp := g.Fingerprint()
	s.mu.Lock()
	if el, ok := s.byFP[fp]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		telemetry.Add("service/store_hits", 1)
		return el.Value.(*storedAIG), true
	}
	s.mu.Unlock()

	// New structure: build the entry — profile and retrieval signature
	// via the prepare hook — outside the lock. The entry is still
	// private, so prepare needs no synchronization; a racing identical
	// submit at worst prepares its own copy and discards it below
	// (construction is deterministic, the copies are interchangeable).
	e := &storedAIG{fp: fp, g: g, stats: g.Stat()}
	if s.prepare != nil {
		s.prepare(e)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byFP[fp]; ok {
		// A racing submit published first; its entry is canonical.
		s.order.MoveToFront(el)
		telemetry.Add("service/store_hits", 1)
		return el.Value.(*storedAIG), true
	}
	s.byFP[fp] = s.order.PushFront(e)
	if s.index != nil && e.sig != nil {
		s.index.Insert(fp, e.sig)
	}
	telemetry.Add("service/store_adds", 1)
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		ofp := oldest.Value.(*storedAIG).fp
		delete(s.byFP, ofp)
		if s.index != nil {
			s.index.Remove(ofp)
		}
		telemetry.Add("service/store_evictions", 1)
	}
	return e, false
}

// get returns the entry for a fingerprint, bumping its recency.
func (s *store) get(fp string) (*storedAIG, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byFP[fp]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*storedAIG), true
}

func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// snapshot returns the live entries sorted by fingerprint, without
// bumping recency — the deterministic iteration base for exact
// neighbor scans and diverse-subset pools.
func (s *store) snapshot() []*storedAIG {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*storedAIG, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storedAIG))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].fp < out[j].fp })
	return out
}

// rebuildIndex atomically reconstructs the sketch index from current
// membership. Running under mu means no intern or evict can interleave
// with the rebuild: the new index is an exact mirror of the LRU at one
// instant.
func (s *store) rebuildIndex() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sigs := make(map[string]*sketch.Signature, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*storedAIG); e.sig != nil {
			sigs[e.fp] = e.sig
		}
	}
	s.index.Reset(sigs)
	return len(sigs)
}
