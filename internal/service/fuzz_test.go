package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzHandlers throws arbitrary bodies at every aigd request decoder.
// The handler is driven directly (no real network, no net/http panic
// recovery), so any decoder panic crashes the fuzzer instead of being
// swallowed by the server — the property under test is "malformed
// input is always a 4xx/shed answer, never a crash or a 5xx from the
// decode path".
//
// The input is (selector, body): the selector picks the endpoint, the
// body is the raw payload — AIGER for /v1/aigs, JSON elsewhere.
func FuzzHandlers(f *testing.F) {
	// One daemon across all iterations; job budgets keep fuzz inputs
	// that validate (rare) from accumulating unbounded work.
	svc := New(Config{Workers: 2, QueueDepth: 4, JobHistory: 8})
	f.Cleanup(svc.Close)
	h := svc.Handler()

	targets := []struct {
		method, path string
	}{
		{"POST", "/v1/aigs"},
		{"POST", "/v1/metrics"},
		{"POST", "/v1/metrics/batch"},
		{"POST", "/v1/optimize"},
		{"POST", "/v1/report"},
		{"POST", "/v1/neighbors"},
		{"POST", "/v1/diverse-subset"},
	}

	f.Add(uint8(0), []byte("aag 1 1 0 1 0\n2\n2\n"))
	f.Add(uint8(0), []byte("aig 0 0 0 0 0\n"))
	f.Add(uint8(1), []byte(`{"a":"x","b":"y","metrics":["VEO"]}`))
	f.Add(uint8(2), []byte(`{"aigs":["x","y"],"metrics":[]}`))
	f.Add(uint8(3), []byte(`{"aig":"x","flow":"dc2","seed":3}`))
	f.Add(uint8(4), []byte(`{"a":"x","b":"y","flows":["dc2"],"seed":-1}`))
	f.Add(uint8(3), []byte(`{"aig":"x","flow":"dc2","unknown_field":1}`))
	f.Add(uint8(1), []byte(`{"a":`))
	f.Add(uint8(2), []byte(`[]`))
	f.Add(uint8(4), []byte{0xff, 0xfe, 0x00})
	f.Add(uint8(5), []byte(`{"fp":"x","k":3,"metric":"WLKernel"}`))
	f.Add(uint8(5), []byte(`{"fp":"","k":-1}`))
	f.Add(uint8(5), []byte(`{"fp":"x","budget":-5}`))
	f.Add(uint8(6), []byte(`{"aigs":["x","y"],"k":2}`))
	f.Add(uint8(6), []byte(`{"k":0}`))
	f.Add(uint8(6), []byte(`{"k":9999,"metric":"nope"}`))

	f.Fuzz(func(t *testing.T, sel uint8, body []byte) {
		tgt := targets[int(sel)%len(targets)]
		req := httptest.NewRequest(tgt.method, tgt.path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		code := rec.Code
		switch {
		case code >= 200 && code < 300:
			// A fuzz input that validates is fine (e.g. a real AIGER
			// payload); the daemon stays bounded via its budgets.
		case code == http.StatusBadRequest, code == http.StatusNotFound,
			code == http.StatusTooManyRequests, code == http.StatusAccepted:
			// Expected refusals and accepted jobs.
		case code >= 500:
			t.Fatalf("%s %s with %d-byte body answered %d: %s",
				tgt.method, tgt.path, len(body), code, rec.Body.Bytes())
		}
	})
}
