package service

import (
	"context"
	"fmt"
	"hash/fnv"

	"repro/internal/harness"
	"repro/internal/simil"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// profileSeed derives the per-graph profile seed deterministically from
// the structural fingerprint. This is what makes cache hits bit-
// identical to fresh computation: two identical structures always get
// the same Lanczos starting vector, so the same spectrum, so the same
// ASD — no matter which request computed them first.
func profileSeed(fp string) int64 {
	h := fnv.New64a()
	h.Write([]byte(fp))
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}

// profileFor returns e's profile carrying at least the needed artifact
// families, building or extending it under the per-graph mutex. The
// mutex is the coalescing point of the batch path: however many
// concurrent requests need this graph, its NetSimile features, WL
// labels, spectrum, and single-step reductions are computed once.
func (s *Server) profileFor(e *storedAIG, needs simil.Artifacts) (*simil.Profile, error) {
	e.profMu.Lock()
	defer e.profMu.Unlock()
	opts := s.cfg.Profile
	opts.Seed = profileSeed(e.fp)
	if e.profile == nil {
		p, err := harness.SafeProfile(e.g, opts, needs)
		if err != nil {
			return nil, err
		}
		telemetry.Add("service/profile_builds", 1)
		e.profile = p
		return p, nil
	}
	if missing := needs &^ e.profile.Has(); missing != 0 {
		if err := s.safeExtend(e.profile, opts, missing); err != nil {
			return nil, err
		}
		telemetry.Add("service/profile_extends", 1)
	}
	return e.profile, nil
}

func (s *Server) safeExtend(p *simil.Profile, opts simil.ProfileOptions, needs simil.Artifacts) (err error) {
	defer harness.Recover(&err, "profile extend")
	p.Extend(opts, needs)
	return nil
}

// cacheKey builds the canonical result-cache key. Every metric in the
// registry is symmetric, so the fingerprints are ordered — (A,B) and
// (B,A) share one cache line.
func cacheKey(metric, fpA, fpB string) (string, bool) {
	swapped := fpA > fpB
	if swapped {
		fpA, fpB = fpB, fpA
	}
	return metric + "|" + fpA + "|" + fpB, swapped
}

// resolveMetrics maps requested metric names (empty = all ten) onto the
// registry.
func resolveMetrics(names []string) ([]simil.Metric, error) {
	if len(names) == 0 {
		return simil.Metrics(), nil
	}
	out := make([]simil.Metric, 0, len(names))
	for _, n := range names {
		m, ok := simil.MetricByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown metric %q", n)
		}
		out = append(out, m)
	}
	return out, nil
}

// pairScores computes the requested metrics for one AIG pair: profiles
// once per graph (coalesced), then per metric a cache lookup, a
// singleflighted compute on miss, and a cache fill. The invariant the
// cache rests on: a hit is bit-identical to what a fresh computation
// would produce (deterministic profiles via profileSeed, symmetric
// metrics in canonical operand order).
//
// The whole pair is one "service/pair_scores" span; each metric's
// cache outcome (hit, miss, shard, singleflight role) is an event on
// it, so a slow request decomposes into exactly which lookups missed
// and which flights it waited behind.
func (s *Server) pairScores(ctx context.Context, ea, eb *storedAIG, metrics []simil.Metric) (_ map[string]float64, err error) {
	sctx, sp := trace.Start(ctx, "service/pair_scores")
	sp.Attr("a", ea.fp).Attr("b", eb.fp)
	defer sp.End()
	defer func() { sp.Fail(err) }()
	needs := simil.Needs(metrics)
	pa, err := s.profileFor(ea, needs)
	if err != nil {
		return nil, err
	}
	pb, err := s.profileFor(eb, needs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(metrics))
	for _, m := range metrics {
		key, swapped := cacheKey(m.Name, ea.fp, eb.fp)
		if v, shard, ok := s.cache.get(sctx, key); ok {
			sp.Event("cache_lookup", trace.A("metric", m.Name), trace.A("shard", shard), trace.A("outcome", "hit"))
			out[m.Name] = v
			continue
		}
		p1, p2 := pa, pb
		if swapped {
			p1, p2 = pb, pa
		}
		compute := m.Compute
		led := false
		v, cerr, shared := s.flights.do(sctx, key, func() (val float64, err error) {
			led = true
			// Re-check under the flight: a caller that missed the cache
			// while another flight was mid-fill must not recompute.
			if v, _, ok := s.cache.get(sctx, key); ok {
				return v, nil
			}
			defer harness.Recover(&err, "metric "+m.Name)
			if s.testComputeDelay != nil {
				s.testComputeDelay()
			}
			val = compute(p1, p2)
			telemetry.Add("service/metric_computes", 1)
			s.cache.put(key, val)
			return val, nil
		})
		role := "leader"
		if shared || !led {
			role = "follower"
		}
		shard := s.cache.shardIndex(key)
		sp.Event("cache_lookup", trace.A("metric", m.Name), trace.A("shard", shard), trace.A("outcome", "miss"), trace.A("role", role))
		if cerr != nil {
			return nil, cerr
		}
		out[m.Name] = v
	}
	return out, nil
}
