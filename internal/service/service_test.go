package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/aig"
	"repro/internal/aiger"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/tt"
)

// testAIG synthesizes a deterministic small AIG (distinct per seed) and
// returns its AIGER ASCII encoding.
func testAIG(t testing.TB, seed int64) string {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := synth.SynthSOP([]tt.TT{tt.Random(6, r)})
	var b bytes.Buffer
	if err := aiger.WriteASCII(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

type testDaemon struct {
	svc *Server
	ts  *httptest.Server
	reg *telemetry.Registry
}

func newTestDaemon(t testing.TB, cfg Config) *testDaemon {
	t.Helper()
	reg := telemetry.Enable()
	reg.Reset()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return &testDaemon{svc: svc, ts: ts, reg: reg}
}

// do issues a request and decodes the JSON response body into out.
func (d *testDaemon) do(t testing.TB, method, path, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, d.ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

// submit uploads an AIGER payload and returns its fingerprint.
func (d *testDaemon) submit(t testing.TB, payload string) AIGView {
	t.Helper()
	var v AIGView
	if code := d.do(t, "POST", "/v1/aigs", payload, &v); code != http.StatusOK {
		t.Fatalf("submitting AIG: status %d", code)
	}
	return v
}

// counter reads a telemetry counter's current value.
func (d *testDaemon) counter(name string) int64 { return d.reg.Counter(name).Value() }

// waitJob polls the job endpoint until the job leaves queued/running.
func (d *testDaemon) waitJob(t testing.TB, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		if code := d.do(t, "GET", "/v1/jobs/"+id, "", &v); code != http.StatusOK {
			t.Fatalf("polling job %s: status %d", id, code)
		}
		if v.Status != JobQueued && v.Status != JobRunning {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// TestHandlerTable exercises every endpoint's validation and happy path
// through the real HTTP stack.
func TestHandlerTable(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fpA := d.submit(t, testAIG(t, 1)).Fingerprint
	fpB := d.submit(t, testAIG(t, 2)).Fingerprint

	cases := []struct {
		name         string
		method, path string
		body         string
		wantCode     int
	}{
		{"submit bad AIGER", "POST", "/v1/aigs", "this is not aiger", http.StatusBadRequest},
		{"get known AIG", "GET", "/v1/aigs/" + fpA, "", http.StatusOK},
		{"get unknown AIG", "GET", "/v1/aigs/ffff", "", http.StatusNotFound},
		{"metrics ok", "POST", "/v1/metrics", fmt.Sprintf(`{"a":%q,"b":%q}`, fpA, fpB), http.StatusOK},
		{"metrics subset", "POST", "/v1/metrics", fmt.Sprintf(`{"a":%q,"b":%q,"metrics":["VEO","RGC"]}`, fpA, fpB), http.StatusOK},
		{"metrics unknown metric", "POST", "/v1/metrics", fmt.Sprintf(`{"a":%q,"b":%q,"metrics":["nope"]}`, fpA, fpB), http.StatusBadRequest},
		{"metrics unknown fp", "POST", "/v1/metrics", fmt.Sprintf(`{"a":"eeee","b":%q}`, fpB), http.StatusNotFound},
		{"metrics bad json", "POST", "/v1/metrics", `{"a":`, http.StatusBadRequest},
		{"metrics unknown field", "POST", "/v1/metrics", `{"aa":"x"}`, http.StatusBadRequest},
		{"batch too small", "POST", "/v1/metrics/batch", fmt.Sprintf(`{"aigs":[%q]}`, fpA), http.StatusBadRequest},
		{"batch ok", "POST", "/v1/metrics/batch", fmt.Sprintf(`{"aigs":[%q,%q],"metrics":["RGC"]}`, fpA, fpB), http.StatusOK},
		{"optimize unknown flow", "POST", "/v1/optimize", fmt.Sprintf(`{"aig":%q,"flow":"nope"}`, fpA), http.StatusBadRequest},
		{"optimize unknown fp", "POST", "/v1/optimize", `{"aig":"eeee"}`, http.StatusNotFound},
		{"report unknown fp", "POST", "/v1/report", fmt.Sprintf(`{"a":"eeee","b":%q}`, fpB), http.StatusNotFound},
		{"job unknown", "GET", "/v1/jobs/j999999", "", http.StatusNotFound},
		{"cancel unknown", "DELETE", "/v1/jobs/j999999", "", http.StatusNotFound},
		{"healthz", "GET", "/healthz", "", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out map[string]any
			if code := d.do(t, tc.method, tc.path, tc.body, &out); code != tc.wantCode {
				t.Errorf("%s %s = %d (%v), want %d", tc.method, tc.path, code, out, tc.wantCode)
			}
		})
	}
}

// TestContentAddressedStore: resubmitting an identical structure must
// return the same fingerprint, flag it as known, and hit the store
// instead of re-interning.
func TestContentAddressedStore(t *testing.T) {
	d := newTestDaemon(t, Config{})
	payload := testAIG(t, 7)
	first := d.submit(t, payload)
	if first.Known {
		t.Error("first submission reported known=true")
	}
	hits0 := d.counter("service/store_hits")
	second := d.submit(t, payload)
	if !second.Known {
		t.Error("resubmission reported known=false")
	}
	if first.Fingerprint != second.Fingerprint {
		t.Errorf("fingerprints diverge: %s vs %s", first.Fingerprint, second.Fingerprint)
	}
	if got := d.counter("service/store_hits") - hits0; got != 1 {
		t.Errorf("store_hits delta = %d, want 1", got)
	}
}

// TestSubmitInternsReachableCone: the fingerprint ignores dangling
// cones, so the store must too — submitting a graph with dead nodes and
// then its cleaned-up twin must intern one entry whose stats describe
// the PO-reachable cone, regardless of which arrived first.
func TestSubmitInternsReachableCone(t *testing.T) {
	d := newTestDaemon(t, Config{})

	dirty := aig.New(2)
	a, b := dirty.PI(0), dirty.PI(1)
	dirty.AddPO(dirty.And(a, b))
	dirty.And(a, b.Not()) // dangling AND, never referenced by a PO
	clean := dirty.Cleanup()
	if dirty.NumAnds() != 2 || clean.NumAnds() != 1 {
		t.Fatalf("bad fixture: dirty has %d ANDs, clean has %d", dirty.NumAnds(), clean.NumAnds())
	}

	encode := func(g *aig.AIG) string {
		var buf bytes.Buffer
		if err := aiger.WriteASCII(&buf, g); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	first := d.submit(t, encode(dirty))
	if first.Known {
		t.Error("first submission reported known=true")
	}
	if first.Ands != clean.NumAnds() {
		t.Errorf("dirty submission interned with Ands=%d, want reachable cone's %d", first.Ands, clean.NumAnds())
	}
	second := d.submit(t, encode(clean))
	if first.Fingerprint != second.Fingerprint {
		t.Errorf("fingerprints diverge: %s vs %s", first.Fingerprint, second.Fingerprint)
	}
	if !second.Known {
		t.Error("clean twin was not a store hit")
	}
	if second.Ands != clean.NumAnds() {
		t.Errorf("served stats Ands=%d, want %d", second.Ands, clean.NumAnds())
	}
}

// TestBatchCap: a batch referencing more AIGs than the per-request
// limit must be rejected with 400 before it reaches a pool worker.
func TestBatchCap(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fpA := d.submit(t, testAIG(t, 30)).Fingerprint
	fpB := d.submit(t, testAIG(t, 31)).Fingerprint

	refs := make([]string, maxBatchAIGs+1)
	refs[0] = fmt.Sprintf("%q", fpB)
	for i := 1; i < len(refs); i++ {
		refs[i] = fmt.Sprintf("%q", fpA)
	}
	body := fmt.Sprintf(`{"aigs":[%s],"metrics":["RGC"]}`, strings.Join(refs, ","))
	var out map[string]any
	if code := d.do(t, "POST", "/v1/metrics/batch", body, &out); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d (%v), want 400", code, out)
	}
	if got := d.counter("service/metric_computes"); got != 0 {
		t.Errorf("oversized batch still computed %d metrics", got)
	}
}

// TestCacheHitIsBitIdentical: the second identical metrics request must
// be served entirely from the result cache — zero new computations —
// and produce byte-for-byte the same scores.
func TestCacheHitIsBitIdentical(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fpA := d.submit(t, testAIG(t, 3)).Fingerprint
	fpB := d.submit(t, testAIG(t, 4)).Fingerprint
	body := fmt.Sprintf(`{"a":%q,"b":%q}`, fpA, fpB)

	var fresh metricsResponse
	if code := d.do(t, "POST", "/v1/metrics", body, &fresh); code != http.StatusOK {
		t.Fatalf("first request: status %d", code)
	}
	if len(fresh.Scores) != 10 {
		t.Fatalf("got %d scores, want all 10", len(fresh.Scores))
	}
	computes0 := d.counter("service/metric_computes")
	hits0 := d.counter("service/cache_hits")

	// Same pair in swapped operand order: must hit the same cache lines.
	var cached metricsResponse
	swapped := fmt.Sprintf(`{"a":%q,"b":%q}`, fpB, fpA)
	if code := d.do(t, "POST", "/v1/metrics", swapped, &cached); code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if got := d.counter("service/metric_computes") - computes0; got != 0 {
		t.Errorf("cache hit still computed %d metrics", got)
	}
	if got := d.counter("service/cache_hits") - hits0; got != 10 {
		t.Errorf("cache_hits delta = %d, want 10", got)
	}
	for name, v := range fresh.Scores {
		if cv, ok := cached.Scores[name]; !ok || cv != v {
			t.Errorf("%s: cached %v differs from fresh %v", name, cv, v)
		}
	}
}

// TestSingleflightStress: many concurrent identical requests against a
// cold cache must coalesce into exactly one computation per metric.
// Run under -race this also exercises the cache, store, and flight
// locking.
func TestSingleflightStress(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 8, QueueDepth: 64, PendingMetrics: 64})
	d.svc.testComputeDelay = func() { time.Sleep(20 * time.Millisecond) }
	fpA := d.submit(t, testAIG(t, 5)).Fingerprint
	fpB := d.submit(t, testAIG(t, 6)).Fingerprint
	body := fmt.Sprintf(`{"a":%q,"b":%q,"metrics":["VEO"]}`, fpA, fpB)

	const clients = 16
	var wg sync.WaitGroup
	scores := make([]float64, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp metricsResponse
			codes[i] = d.do(t, "POST", "/v1/metrics", body, &resp)
			scores[i] = resp.Scores["VEO"]
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if scores[i] != scores[0] {
			t.Errorf("client %d: score %v differs from %v", i, scores[i], scores[0])
		}
	}
	if got := d.counter("service/metric_computes"); got != 1 {
		t.Errorf("%d concurrent identical requests ran %d computations, want 1", clients, got)
	}
	if d.counter("service/singleflight_shared") == 0 {
		t.Error("no request reported sharing the flight result")
	}
}

// TestLoadShed: once the admission budget is exhausted, further metric
// requests must shed with 429 and a Retry-After hint rather than queue
// without bound.
func TestLoadShed(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1, PendingMetrics: 1, PendingJobs: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	var once sync.Once
	d.svc.testComputeDelay = func() {
		once.Do(func() { close(started) })
		<-release
	}
	defer releaseOnce()

	fpA := d.submit(t, testAIG(t, 8)).Fingerprint
	fpB := d.submit(t, testAIG(t, 9)).Fingerprint
	body := fmt.Sprintf(`{"a":%q,"b":%q,"metrics":["VEO"]}`, fpA, fpB)

	firstCode := make(chan int, 1)
	go func() {
		var resp metricsResponse
		firstCode <- d.do(t, "POST", "/v1/metrics", body, &resp)
	}()
	<-started // the only admission slot is now held mid-computation

	req, err := http.NewRequest("POST", d.ts.URL+"/v1/metrics", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}
	if d.counter("service/shed") == 0 {
		t.Error("shed counter did not move")
	}

	releaseOnce()
	if code := <-firstCode; code != http.StatusOK {
		t.Errorf("admitted request: status %d, want 200", code)
	}
}

// TestGracefulDrain: Drain must refuse new work with 503 while letting
// the in-flight job run to completion.
func TestGracefulDrain(t *testing.T) {
	d := newTestDaemon(t, Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	var once sync.Once
	d.svc.testComputeDelay = func() {
		once.Do(func() { close(started) })
		<-release
	}

	fpA := d.submit(t, testAIG(t, 10)).Fingerprint
	fpB := d.submit(t, testAIG(t, 11)).Fingerprint

	var acc jobAccepted
	body := fmt.Sprintf(`{"a":%q,"b":%q,"metrics":["VEO"],"flows":["dc2"]}`, fpA, fpB)
	if code := d.do(t, "POST", "/v1/report", body, &acc); code != http.StatusAccepted {
		t.Fatalf("submitting report job: status %d", code)
	}
	<-started // the job is now mid-computation

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- d.svc.Drain(dctx) }()
	waitFor(t, func() bool { return d.svc.draining.Load() })

	if code := d.do(t, "POST", "/v1/metrics", body, nil); code != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", code)
	}
	var health map[string]any
	if code := d.do(t, "GET", "/healthz", "", &health); code != http.StatusOK {
		t.Errorf("healthz during drain: status %d, want 200", code)
	} else if health["draining"] != true {
		t.Errorf("healthz reports draining=%v, want true", health["draining"])
	}

	releaseOnce()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	v, ok := d.svc.jobs.get(acc.ID)
	if !ok || v.Status != JobDone {
		t.Errorf("job after drain = %+v, want done", v)
	}
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

// TestOptimizeJob runs a full async optimization: the job must succeed,
// shrink the AIG, and intern the optimized structure so its fingerprint
// is immediately scoreable.
func TestOptimizeJob(t *testing.T) {
	d := newTestDaemon(t, Config{})
	in := d.submit(t, testAIG(t, 12))

	var acc jobAccepted
	body := fmt.Sprintf(`{"aig":%q,"flow":"dc2"}`, in.Fingerprint)
	if code := d.do(t, "POST", "/v1/optimize", body, &acc); code != http.StatusAccepted {
		t.Fatalf("submitting optimize job: status %d", code)
	}
	if acc.Poll != "/v1/jobs/"+acc.ID {
		t.Errorf("poll path = %q", acc.Poll)
	}
	v := d.waitJob(t, acc.ID)
	if v.Status != JobDone {
		t.Fatalf("job = %+v, want done", v)
	}
	res, ok := v.Result.(map[string]any)
	if !ok {
		t.Fatalf("result has type %T", v.Result)
	}
	if res["gates_after"].(float64) > res["gates_before"].(float64) {
		t.Errorf("dc2 grew the AIG: %v -> %v", res["gates_before"], res["gates_after"])
	}
	ofp, _ := res["optimized_fingerprint"].(string)
	if code := d.do(t, "GET", "/v1/aigs/"+ofp, "", nil); code != http.StatusOK {
		t.Errorf("optimized AIG %q not in store: status %d", ofp, code)
	}
	if aigerText, _ := res["aiger"].(string); !strings.HasPrefix(aigerText, "aag ") {
		t.Errorf("result AIGER does not look like ASCII AIGER: %.20q", aigerText)
	}
}

// TestReportJob: the ROD-style pair report must carry both the pairwise
// metrics and a per-flow ROD entry.
func TestReportJob(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fpA := d.submit(t, testAIG(t, 13)).Fingerprint
	fpB := d.submit(t, testAIG(t, 14)).Fingerprint

	var acc jobAccepted
	body := fmt.Sprintf(`{"a":%q,"b":%q,"metrics":["VEO","RGC"],"flows":["dc2"]}`, fpA, fpB)
	if code := d.do(t, "POST", "/v1/report", body, &acc); code != http.StatusAccepted {
		t.Fatalf("submitting report job: status %d", code)
	}
	v := d.waitJob(t, acc.ID)
	if v.Status != JobDone {
		t.Fatalf("job = %+v, want done", v)
	}
	res, ok := v.Result.(map[string]any)
	if !ok {
		t.Fatalf("result has type %T", v.Result)
	}
	metrics, _ := res["Metrics"].(map[string]any)
	if len(metrics) != 2 {
		t.Errorf("report metrics = %v, want VEO and RGC", metrics)
	}
	rod, _ := res["ROD"].(map[string]any)
	if _, ok := rod["dc2"]; !ok {
		t.Errorf("report rod = %v, want a dc2 entry", rod)
	}
}

// TestJobCancel: canceling a queued job must surface as status
// canceled once the worker reaches it.
func TestJobCancel(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 4, PendingJobs: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	var once sync.Once
	d.svc.testComputeDelay = func() {
		once.Do(func() { close(started) })
		<-release
	}

	fpA := d.submit(t, testAIG(t, 15)).Fingerprint
	fpB := d.submit(t, testAIG(t, 16)).Fingerprint
	body := fmt.Sprintf(`{"a":%q,"b":%q,"metrics":["VEO"],"flows":["dc2"]}`, fpA, fpB)

	var blocker, victim jobAccepted
	if code := d.do(t, "POST", "/v1/report", body, &blocker); code != http.StatusAccepted {
		t.Fatalf("submitting blocker: status %d", code)
	}
	<-started // blocker owns the only worker
	if code := d.do(t, "POST", "/v1/report", body, &victim); code != http.StatusAccepted {
		t.Fatalf("submitting victim: status %d", code)
	}
	if code := d.do(t, "DELETE", "/v1/jobs/"+victim.ID, "", nil); code != http.StatusOK {
		t.Fatalf("canceling: status %d", code)
	}
	releaseOnce()
	if v := d.waitJob(t, victim.ID); v.Status != JobCanceled {
		t.Errorf("canceled job = %+v, want canceled", v)
	}
	if v := d.waitJob(t, blocker.ID); v.Status != JobDone {
		t.Errorf("blocker job = %+v, want done", v)
	}
}

// TestQueuedCancelReleasesAdmission: canceling a job that never left
// the queue must still give back its admission slot once the worker
// pops it — a canceled queued job must not permanently shrink the
// PendingJobs budget.
func TestQueuedCancelReleasesAdmission(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 4, PendingJobs: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	var once sync.Once
	d.svc.testComputeDelay = func() {
		once.Do(func() { close(started) })
		<-release
	}

	fpA := d.submit(t, testAIG(t, 27)).Fingerprint
	fpB := d.submit(t, testAIG(t, 28)).Fingerprint
	body := fmt.Sprintf(`{"a":%q,"b":%q,"metrics":["VEO"],"flows":["dc2"]}`, fpA, fpB)

	var blocker, victim jobAccepted
	if code := d.do(t, "POST", "/v1/report", body, &blocker); code != http.StatusAccepted {
		t.Fatalf("submitting blocker: status %d", code)
	}
	<-started // blocker owns the only worker, victim will sit queued
	if code := d.do(t, "POST", "/v1/report", body, &victim); code != http.StatusAccepted {
		t.Fatalf("submitting victim: status %d", code)
	}
	// Both PendingJobs slots are now held: the next submission sheds.
	if code := d.do(t, "POST", "/v1/report", body, nil); code != http.StatusTooManyRequests {
		t.Fatalf("over-budget submission: status %d, want 429", code)
	}
	if code := d.do(t, "DELETE", "/v1/jobs/"+victim.ID, "", nil); code != http.StatusOK {
		t.Fatalf("canceling victim: status %d", code)
	}
	releaseOnce()
	if v := d.waitJob(t, victim.ID); v.Status != JobCanceled {
		t.Fatalf("victim = %+v, want canceled", v)
	}
	if v := d.waitJob(t, blocker.ID); v.Status != JobDone {
		t.Fatalf("blocker = %+v, want done", v)
	}
	// Both slots must be free again: a fresh job is admitted, not shed.
	var next jobAccepted
	if code := d.do(t, "POST", "/v1/report", body, &next); code != http.StatusAccepted {
		t.Errorf("post-cancel submission: status %d, want 202 (admission slot leaked)", code)
	} else if v := d.waitJob(t, next.ID); v.Status != JobDone {
		t.Errorf("post-cancel job = %+v, want done", v)
	}
}

// TestBatchProfilesOnce: an all-pairs batch over n graphs must build
// exactly n profiles — per-graph preprocessing is coalesced, never
// repeated per pair.
func TestBatchProfilesOnce(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fps := make([]string, 3)
	for i := range fps {
		fps[i] = d.submit(t, testAIG(t, int64(20+i))).Fingerprint
	}
	body := fmt.Sprintf(`{"aigs":[%q,%q,%q]}`, fps[0], fps[1], fps[2])
	var resp batchResponse
	if code := d.do(t, "POST", "/v1/metrics/batch", body, &resp); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(resp.Pairs) != 3 {
		t.Fatalf("got %d pairs for 3 graphs, want 3", len(resp.Pairs))
	}
	for _, p := range resp.Pairs {
		if len(p.Scores) != 10 {
			t.Errorf("pair (%d,%d): %d scores, want 10", p.I, p.J, len(p.Scores))
		}
	}
	if got := d.counter("service/profile_builds"); got != 3 {
		t.Errorf("profile_builds = %d, want one per graph (3)", got)
	}

	// The same batch again: fully cache-served.
	computes0 := d.counter("service/metric_computes")
	if code := d.do(t, "POST", "/v1/metrics/batch", body, nil); code != http.StatusOK {
		t.Fatalf("second batch: status %d", code)
	}
	if got := d.counter("service/metric_computes") - computes0; got != 0 {
		t.Errorf("repeat batch recomputed %d metrics, want 0", got)
	}
}

// TestProfileExtend: a metrics request needing few artifacts followed
// by one needing more must extend the existing profile in place, not
// rebuild it.
func TestProfileExtend(t *testing.T) {
	d := newTestDaemon(t, Config{})
	fpA := d.submit(t, testAIG(t, 24)).Fingerprint
	fpB := d.submit(t, testAIG(t, 25)).Fingerprint

	cheap := fmt.Sprintf(`{"a":%q,"b":%q,"metrics":["RGC"]}`, fpA, fpB)
	if code := d.do(t, "POST", "/v1/metrics", cheap, nil); code != http.StatusOK {
		t.Fatalf("cheap request: status %d", code)
	}
	if got := d.counter("service/profile_extends"); got != 0 {
		t.Fatalf("cheap request already extended %d profiles", got)
	}
	full := fmt.Sprintf(`{"a":%q,"b":%q}`, fpA, fpB)
	if code := d.do(t, "POST", "/v1/metrics", full, nil); code != http.StatusOK {
		t.Fatalf("full request: status %d", code)
	}
	if builds := d.counter("service/profile_builds"); builds != 2 {
		t.Errorf("profile_builds = %d, want 2 (one per graph, never rebuilt)", builds)
	}
	if got := d.counter("service/profile_extends"); got != 2 {
		t.Errorf("profile_extends = %d, want 2", got)
	}
}

// TestJobSpill: with a spill directory and a tiny threshold, a job
// result must land on disk as valid JSON and be replaced by a SpillRef.
func TestJobSpill(t *testing.T) {
	dir := t.TempDir()
	d := newTestDaemon(t, Config{SpillDir: dir, SpillBytes: 1})
	in := d.submit(t, testAIG(t, 26))

	var acc jobAccepted
	body := fmt.Sprintf(`{"aig":%q,"flow":"dc2"}`, in.Fingerprint)
	if code := d.do(t, "POST", "/v1/optimize", body, &acc); code != http.StatusAccepted {
		t.Fatalf("submitting: status %d", code)
	}
	v := d.waitJob(t, acc.ID)
	if v.Status != JobDone {
		t.Fatalf("job = %+v, want done", v)
	}
	ref, ok := v.Result.(map[string]any)
	if !ok || ref["spilled_to"] == nil {
		t.Fatalf("result = %v, want a spill reference", v.Result)
	}
	path := ref["spilled_to"].(string)
	if filepath.Dir(path) != dir {
		t.Errorf("spilled to %s, want inside %s", path, dir)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res OptimizeResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("spill file is not valid JSON: %v", err)
	}
	if res.Fingerprint != in.Fingerprint {
		t.Errorf("spilled result names fingerprint %q, want %q", res.Fingerprint, in.Fingerprint)
	}
	if d.counter("service/spills") == 0 {
		t.Error("spill counter did not move")
	}
}
