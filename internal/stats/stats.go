// Package stats provides the statistical machinery of the paper's
// evaluation: summary aggregates (including the skewness and kurtosis
// used by NetSimile), the Canberra distance, Pearson correlation with
// Fisher-transform confidence intervals, and least-squares trendlines for
// the scatter plots.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Skewness returns the population skewness (0 when variance vanishes).
func Skewness(xs []float64) float64 {
	sd := StdDev(xs)
	if sd == 0 || len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := (x - m) / sd
		s += d * d * d
	}
	return s / float64(len(xs))
}

// Kurtosis returns the population excess kurtosis (0 when variance
// vanishes).
func Kurtosis(xs []float64) float64 {
	sd := StdDev(xs)
	if sd == 0 || len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := (x - m) / sd
		s += d * d * d * d
	}
	return s/float64(len(xs)) - 3
}

// Aggregate computes the five NetSimile aggregates of a feature vector:
// median, mean, standard deviation, skewness, kurtosis.
func Aggregate(xs []float64) [5]float64 {
	return [5]float64{Median(xs), Mean(xs), StdDev(xs), Skewness(xs), Kurtosis(xs)}
}

// Canberra returns the Canberra distance between equal-length vectors:
// sum |a-b| / (|a|+|b|) over coordinates, skipping 0/0 terms.
func Canberra(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Canberra length mismatch")
	}
	d := 0.0
	for i := range a {
		den := math.Abs(a[i]) + math.Abs(b[i])
		if den == 0 {
			continue
		}
		d += math.Abs(a[i]-b[i]) / den
	}
	return d
}

// Euclidean returns the Euclidean distance between equal-length vectors.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Euclidean length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// ErrDegenerate is returned when a correlation is undefined because one
// of the variables has zero variance or too few samples.
var ErrDegenerate = errors.New("stats: correlation undefined (zero variance or n < 3)")

// Pearson returns the Pearson correlation coefficient of the paired
// samples.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 3 {
		return 0, ErrDegenerate
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrDegenerate
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Correlation bundles a Pearson coefficient with its confidence interval.
type Correlation struct {
	R    float64
	Low  float64
	High float64
	N    int
}

// PearsonCI computes the Pearson correlation and its confidence interval
// at the given level (e.g. 0.95) using the Fisher z-transformation, as
// the paper does.
func PearsonCI(xs, ys []float64, level float64) (Correlation, error) {
	r, err := Pearson(xs, ys)
	if err != nil {
		return Correlation{}, err
	}
	n := len(xs)
	if n < 4 {
		return Correlation{R: r, Low: -1, High: 1, N: n}, nil
	}
	// Clamp to avoid infinities on |r| == 1.
	rc := math.Max(-0.999999, math.Min(0.999999, r))
	z := math.Atanh(rc)
	se := 1 / math.Sqrt(float64(n-3))
	q := normalQuantile(0.5 + level/2)
	lo, hi := math.Tanh(z-q*se), math.Tanh(z+q*se)
	return Correlation{R: r, Low: lo, High: hi, N: n}, nil
}

// normalQuantile computes the standard normal quantile via the
// Acklam/Beasley-Springer-Moro rational approximation (|err| < 1.15e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: quantile out of range")
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Line is a least-squares trendline y = Slope*x + Intercept.
type Line struct {
	Slope     float64
	Intercept float64
}

// LinearFit fits a least-squares line through the paired samples.
func LinearFit(xs, ys []float64) (Line, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Line{}, errors.New("stats: LinearFit needs >= 2 paired samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return Line{}, errors.New("stats: LinearFit with zero x variance")
	}
	s := sxy / sxx
	return Line{Slope: s, Intercept: my - s*mx}, nil
}
