package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAggregates(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(xs), 5, 1e-12) {
		t.Errorf("Mean = %f", Mean(xs))
	}
	if !almostEq(StdDev(xs), 2, 1e-12) {
		t.Errorf("StdDev = %f", StdDev(xs))
	}
	if !almostEq(Median(xs), 4.5, 1e-12) {
		t.Errorf("Median = %f", Median(xs))
	}
	if !almostEq(Median([]float64{3, 1, 2}), 2, 1e-12) {
		t.Error("odd median wrong")
	}
	// Symmetric data: zero skewness.
	sym := []float64{-2, -1, 0, 1, 2}
	if !almostEq(Skewness(sym), 0, 1e-12) {
		t.Errorf("Skewness(sym) = %f", Skewness(sym))
	}
	// Uniform {-1,1}: kurtosis = E[d^4]/sd^4 - 3 = 1 - 3 = -2.
	pm := []float64{-1, 1, -1, 1}
	if !almostEq(Kurtosis(pm), -2, 1e-12) {
		t.Errorf("Kurtosis(pm) = %f", Kurtosis(pm))
	}
	// Degenerate inputs.
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 || Skewness(nil) != 0 || Kurtosis(nil) != 0 {
		t.Error("empty inputs should be 0")
	}
	if Skewness([]float64{5, 5, 5}) != 0 || Kurtosis([]float64{5, 5}) != 0 {
		t.Error("constant inputs should be 0")
	}
	agg := Aggregate(xs)
	if agg[0] != Median(xs) || agg[1] != Mean(xs) || agg[2] != StdDev(xs) {
		t.Error("Aggregate components wrong")
	}
}

func TestCanberra(t *testing.T) {
	a := []float64{1, 2, 0}
	b := []float64{1, 0, 0}
	// |1-1|/2 + |2-0|/2 + skip = 1.
	if !almostEq(Canberra(a, b), 1, 1e-12) {
		t.Errorf("Canberra = %f", Canberra(a, b))
	}
	if Canberra(a, a) != 0 {
		t.Error("self distance should be 0")
	}
}

func TestEuclidean(t *testing.T) {
	if !almostEq(Euclidean([]float64{0, 3}, []float64{4, 0}), 5, 1e-12) {
		t.Error("3-4-5 failed")
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect positive r = %f, err=%v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect negative r = %f", r)
	}
	// Known hand-computed value.
	x2 := []float64{1, 2, 3, 4, 5, 6}
	y2 := []float64{2, 1, 4, 3, 6, 5}
	r, _ = Pearson(x2, y2)
	if !almostEq(r, 0.82857, 1e-4) {
		t.Errorf("r = %f, want 0.8286", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance should error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("n<3 should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestPearsonRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(50)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		p, err := Pearson(xs, ys)
		return err == nil && p >= -1-1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFisherCI(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	n := 200
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = 0.7*xs[i] + 0.5*r.NormFloat64()
	}
	c, err := PearsonCI(xs, ys, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if c.Low >= c.R || c.R >= c.High {
		t.Errorf("CI [%f,%f] does not bracket r=%f", c.Low, c.High, c.R)
	}
	if c.Low < -1 || c.High > 1 {
		t.Errorf("CI escapes [-1,1]: [%f,%f]", c.Low, c.High)
	}
	// Width shrinks with n: compare with a small sample.
	cSmall, err := PearsonCI(xs[:20], ys[:20], 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cSmall.High-cSmall.Low <= c.High-c.Low {
		t.Error("CI should widen for smaller samples")
	}
}

func TestFisherCIKnownValue(t *testing.T) {
	// For r computed on n samples, z-CI is a textbook formula; verify a
	// specific case: r=0.79, n=1800 -> CI roughly [0.772, 0.807].
	// Construct data with exactly r by using PearsonCI internals through
	// a crafted perfect-plus-noise dataset is fragile; instead verify
	// the normal quantile itself.
	q := normalQuantile(0.975)
	if !almostEq(q, 1.959964, 1e-5) {
		t.Errorf("z(0.975) = %f", q)
	}
	if !almostEq(normalQuantile(0.5), 0, 1e-9) {
		t.Error("z(0.5) != 0")
	}
	if !almostEq(normalQuantile(0.975)+normalQuantile(0.025), 0, 1e-9) {
		t.Error("quantile not symmetric")
	}
	// Extreme tails still finite.
	if math.IsInf(normalQuantile(1e-9), 0) || math.IsNaN(normalQuantile(1e-9)) {
		t.Error("tail quantile broken")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	l, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.Slope, 2, 1e-12) || !almostEq(l.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", l)
	}
	if _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero x variance should error")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should error")
	}
}

func TestPerfectCorrelationCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{2, 4, 6, 8, 10, 12, 14, 16}
	c, err := PearsonCI(xs, ys, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(c.Low) || math.IsNaN(c.High) {
		t.Error("CI NaN on |r|=1")
	}
}
