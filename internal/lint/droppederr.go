package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErrAnalyzer flags statement-position calls that silently
// discard an error result. PR 2 threaded write/close error surfacing
// through WriteCSV, EventLogger.Err, and the checkpointer precisely so
// a full disk cannot truncate results silently; a single bare call
// undoes that. The check covers
//
//   - every function or method defined in this module whose results
//     include an error, and
//   - Close/Flush/Sync methods from any package (flushers and closers
//     are where buffered write errors finally surface).
//
// An explicit "_ = f()" acknowledges the discard and is allowed, as are
// deferred cleanup calls (an error is usually already in flight there);
// prefer the explicit form in new code.
var DroppedErrAnalyzer = &Analyzer{
	Name: "droppederr",
	Doc:  "flags silently discarded error results from in-module functions and closers/flushers",
	Run:  runDroppedErr,
}

// flushLikeMethods surface buffered errors regardless of package.
var flushLikeMethods = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runDroppedErr(pass *Pass) error {
	modulePrefix := pass.Prog.ModulePath
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Pkg.Info, call)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !resultsIncludeError(sig) {
				return true
			}
			inModule := fn.Pkg() != nil &&
				(fn.Pkg().Path() == modulePrefix || strings.HasPrefix(fn.Pkg().Path(), modulePrefix+"/"))
			isFlushLike := sig.Recv() != nil && flushLikeMethods[fn.Name()]
			if !inModule && !isFlushLike {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s is silently discarded: handle it, or write \"_ = %s(...)\" to discard explicitly",
				QualifiedName(fn), fn.Name())
			return true
		})
	}
	return nil
}

// resultsIncludeError reports whether any result of sig is exactly the
// built-in error type.
func resultsIncludeError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}
