// Package fixture exercises the faultpoint analyzer: fault-injection
// point names must be unique compile-time string constants in
// snake_case '/'-separated segments. Dynamic names, malformed names,
// and one name instrumented at two sites are flagged; single constant
// sites and suppressed lines are not.
package fixture

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/faultinject"
)

const (
	pointGood = "fixture/good_point"
	pointDup  = "fixture/dup_point"
)

// Clean instruments three distinct points, one site each — clean.
func Clean(w io.Writer) error {
	if err := faultinject.Hit(pointGood); err != nil {
		return err
	}
	faultinject.Delay("fixture/latency_point")
	_, err := faultinject.WrapWriter("fixture/write_point", w).Write(nil)
	return err
}

// CleanCtx instruments a context-attributed point with a constant
// name, one site — clean. The name argument sits at index 1.
func CleanCtx(ctx context.Context) error {
	return faultinject.HitCtx(ctx, "fixture/ctx_point")
}

// Dynamic builds the name at runtime — flagged.
func Dynamic(kind string) error {
	return faultinject.Hit("fixture/" + kind)
}

// DynamicCtx builds a context-attributed name at runtime — flagged.
func DynamicCtx(ctx context.Context, kind string) error {
	return faultinject.HitCtx(ctx, "fixture/"+kind)
}

// Formatted builds the name with Sprintf — flagged.
func Formatted(n int) error {
	return faultinject.Hit(fmt.Sprintf("fixture/step_%d", n))
}

// BadName uses a constant that violates the convention — flagged.
func BadName() error {
	return faultinject.Hit("fixture/BadPoint")
}

// DupA and DupB instrument the same name twice — both flagged.
func DupA() error {
	return faultinject.Hit(pointDup)
}

func DupB() {
	faultinject.Delay(pointDup)
}

// Suppressed carries a sanctioned ignore — counted, not reported.
func Suppressed(kind string) error {
	//lint:ignore faultpoint test-only helper arming a caller-chosen point
	return faultinject.Hit(kind)
}

// Unrelated calls with string arguments are not the analyzer's
// business — clean.
func Unrelated() *bytes.Buffer {
	return bytes.NewBufferString("fixture/not_a_point")
}
