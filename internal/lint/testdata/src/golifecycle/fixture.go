// Package fixture exercises the golifecycle analyzer: every goroutine
// reachable from a lifecycle root needs a join, a cancellation edge, or
// a channel signal. The test config roots the analysis at Serve and
// allowlists detachedHelper.
package fixture

import (
	"context"
	"sync"
)

type daemon struct {
	wg    sync.WaitGroup
	tasks chan int
	errc  chan error
	spawn func()
}

// Serve is the fixture lifecycle root.
func Serve(ctx context.Context, d *daemon) {
	// Fire-and-forget: no join, no ctx, no channel — flagged.
	go func() {
		d.compute()
	}()

	// WaitGroup join — clean.
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.compute()
	}()

	// Cancellation edge: the body watches ctx — clean.
	go func() {
		<-ctx.Done()
	}()

	// Completion hand-off on a channel — clean.
	go func() {
		d.errc <- d.run()
	}()

	// Worker draining a closable task channel — clean.
	go func() {
		for range d.tasks {
			d.compute()
		}
	}()

	// Named helper with no lifecycle edge — flagged, naming the callee.
	go orphanHelper(d)

	// Named helper in the audited detached allowlist — clean.
	go detachedHelper(d)

	// Function-typed field: statically unresolvable — flagged.
	go d.spawn()

	// Audited one-off with a reasoned suppression — suppressed.
	//lint:ignore golifecycle fixture: exercises directive suppression on a sanctioned detached goroutine
	go func() {
		d.compute()
	}()

	d.wg.Wait()
}

func (d *daemon) compute()   {}
func (d *daemon) run() error { return nil }

// orphanHelper has no join, context, or channel operation.
func orphanHelper(d *daemon) {
	d.compute()
}

// detachedHelper is equally edge-free but allowlisted by the config.
func detachedHelper(d *daemon) {
	d.compute()
}

// Offline is not reachable from the Serve root: its bare goroutine is
// outside the audited surface — clean.
func Offline(d *daemon) {
	go func() {
		d.compute()
	}()
}
