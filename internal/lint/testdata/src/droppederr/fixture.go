// Package fixture exercises the droppederr analyzer: statement-position
// calls that silently discard an error from an in-module function or a
// Close/Flush/Sync method must be flagged; explicit "_ =" discards,
// deferred cleanup, and error-free calls must not.
package fixture

import (
	"bufio"
	"fmt"
	"os"
)

func mayFail() error { return nil }

func twoResults() (int, error) { return 0, nil }

func noError() int { return 0 }

// Drop discards in-module errors at statement position — both flagged.
func Drop() {
	mayFail()
	twoResults()
}

// Handled covers the sanctioned spellings — clean.
func Handled() {
	if err := mayFail(); err != nil {
		panic(err)
	}
	_ = mayFail()
	noError()
}

// DropFlush discards errors from flush-like methods, which surface
// buffered write failures regardless of the defining package — both
// flagged. The deferred close and the non-flush stdlib call are not.
func DropFlush(w *bufio.Writer, f *os.File) {
	w.Flush()
	f.Close()
	defer f.Close()
	fmt.Println("fmt is neither in-module nor flush-like")
}

// Suppressed carries a reasoned ignore directive — counted, not
// reported.
func Suppressed(f *os.File) {
	//lint:ignore droppederr fixture: a write error was already captured upstream
	f.Close()
}
