// Package fixture exercises the lockheld analyzer: mutexes held across
// blocking operations and self-deadlocking re-acquisition. The test
// config registers FaultHit as a fault-injection point.
package fixture

import (
	"os"
	"sync"
	"time"
)

// FaultHit stands in for faultinject.Hit in the test config.
func FaultHit(name string) error { return nil }

type server struct {
	mu    sync.Mutex
	state int
	tasks chan int
	done  chan struct{}
}

// HeldAcrossChannel sends on a channel under the lock — flagged.
func (s *server) HeldAcrossChannel(v int) {
	s.mu.Lock()
	s.state = v
	s.tasks <- v
	s.mu.Unlock()
}

// HeldAcrossSleep sleeps under a deferred unlock, so the region runs to
// the end of the function — flagged.
func (s *server) HeldAcrossSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// HeldAcrossFile does file I/O under the lock — flagged.
func (s *server) HeldAcrossFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := os.ReadFile(path)
	return err
}

// HeldAcrossFault calls a fault-injection point under the lock: every
// such point is a latency-injection site under chaos schedules —
// flagged.
func (s *server) HeldAcrossFault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = FaultHit("fixture/point")
}

// waitDone blocks on the done channel; its summary marks it blocking.
func (s *server) waitDone() { <-s.done }

// HeldAcrossCallee blocks only transitively, through waitDone's
// summary — flagged at the call.
func (s *server) HeldAcrossCallee() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waitDone()
}

// touch re-acquires the receiver's mutex.
func (s *server) touch() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
}

// SelfDeadlock calls a method that re-locks the mutex it already
// holds — sync.Mutex is not reentrant — flagged.
func (s *server) SelfDeadlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
}

// OtherInstance holds its own lock while locking a different server's:
// same type, different instance — not a self-deadlock, not flagged.
func (s *server) OtherInstance(other *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	other.touch()
}

// UnlockBeforeWait releases the lock before blocking — the serving
// path's discipline, clean.
func (s *server) UnlockBeforeWait(v int) {
	s.mu.Lock()
	s.state = v
	s.mu.Unlock()
	s.tasks <- v
}

// ClosureUnderLock builds a closure under the lock but runs it
// elsewhere; the blocking body is not "under" the lock — clean.
func (s *server) ClosureUnderLock() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() { <-s.done }
}

// LockInsideClosure locks inside a function literal and blocks there:
// the region lives in the closure and is scanned in place — flagged.
func (s *server) LockInsideClosure() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
}

// NonBlockingSelect polls under the lock with a default clause — never
// blocks, clean.
func (s *server) NonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.tasks:
		s.state = v
	default:
	}
}

// SerializedWriter is the audited exception: the lock's purpose is
// serializing the file writes, and the suppression records that.
func (s *server) SerializedWriter(path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockheld fixture: this mutex exists to serialize writes; holding it across the write is the point
	return os.WriteFile(path, data, 0o644)
}
