// Package fixture exercises the rawlit analyzer: every raw bit or
// arithmetic operation on aig.Lit outside the encoding packages must be
// flagged; the Lit helper methods and suppressed lines must not.
package fixture

import "repro/internal/aig"

// Negate flips the complement bit by hand — flagged.
func Negate(l aig.Lit) aig.Lit {
	return l ^ 1
}

// NodeIndex strips the complement bit by hand — flagged.
func NodeIndex(l aig.Lit) uint32 {
	return uint32(l >> 1)
}

// IsComplRaw reads the complement bit by hand — flagged.
func IsComplRaw(l aig.Lit) bool {
	return l&1 == 1
}

// Successor manufactures a literal arithmetically — flagged.
func Successor(l aig.Lit) aig.Lit {
	return l + 2
}

// Invert applies a unary operator to the packed encoding — flagged.
func Invert(l aig.Lit) aig.Lit {
	return ^l
}

// Sanctioned spells the same operations through the helpers — clean.
func Sanctioned(l aig.Lit) (aig.Lit, bool, int, aig.Lit) {
	return l.Not(), l.IsCompl(), l.Node(), l.Regular()
}

// Compared uses only comparison operators, which do not expose the
// encoding — clean.
func Compared(a, b aig.Lit) bool {
	return a == b || a < b
}

// Suppressed carries a reasoned ignore directive — counted, not
// reported.
func Suppressed(l aig.Lit) aig.Lit {
	//lint:ignore rawlit fixture: exercises directive suppression
	return l ^ 1
}

// Malformed carries a directive without a reason, which is itself a
// finding (the rawlit diagnostic below it is still suppressed, but the
// malformed directive keeps the run red and auditable).
func Malformed(l aig.Lit) aig.Lit {
	//lint:ignore rawlit
	return l ^ 1
}
