// Package fixture exercises the httpwrite analyzer: statement-position
// writes to an http.ResponseWriter that silently discard the error must
// be flagged; handled writes, explicit discards, writes to other
// writers, and error-free ResponseWriter calls must not.
package fixture

import (
	"fmt"
	"io"
	"net/http"
	"os"
)

// Drop discards write errors three ways — all flagged.
func Drop(w http.ResponseWriter, _ *http.Request) {
	w.Write([]byte("hi"))
	io.WriteString(w, "hi")
	fmt.Fprintf(w, "n=%d", 1)
}

// serveMu's ServeHTTP method-form handler is flagged the same way.
type serveMu struct{}

func (serveMu) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "hello")
}

// Handled covers the sanctioned spellings — all clean.
func Handled(w http.ResponseWriter, _ *http.Request) {
	if _, err := w.Write([]byte("hi")); err != nil {
		return
	}
	_, _ = io.WriteString(w, "hi")
	w.WriteHeader(http.StatusTeapot) // no error result
	fmt.Fprintln(os.Stderr, "not a ResponseWriter")
}

// Suppressed carries an acknowledged discard — counted, not reported.
func Suppressed(w http.ResponseWriter, _ *http.Request) {
	//lint:ignore httpwrite fixture: exercises directive suppression
	w.Write([]byte("hi"))
}
