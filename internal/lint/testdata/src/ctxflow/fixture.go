// Package fixture exercises the ctxflow analyzer: severed cancellation
// chains. The test config allowlists DetachAudited for
// context.WithoutCancel.
package fixture

import (
	"context"
	"os"
)

// MintsRoot has no context of its own and mints one — flagged with the
// "accept a context" message.
func MintsRoot() context.Context {
	return context.Background()
}

// MintsTODO is the same severance spelled TODO — flagged.
func MintsTODO() context.Context {
	return context.TODO()
}

// ShadowsCaller already receives a ctx and mints a fresh root anyway —
// flagged with the sharper message.
func ShadowsCaller(ctx context.Context) context.Context {
	return context.Background()
}

// DetachAudited is in the allowlist — clean.
func DetachAudited(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

// DetachUnaudited is not — flagged.
func DetachUnaudited(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

// recvResult blocks on a channel and takes no context.
func recvResult(c chan int) int { return <-c }

// readState blocks only on file I/O — bounded by the disk, exempt from
// the threading rule.
func readState(path string) ([]byte, error) { return os.ReadFile(path) }

// recvWithCtx blocks but accepts a context — the callee can honor
// cancellation, clean at the call site.
func recvWithCtx(ctx context.Context, c chan int) int {
	select {
	case v := <-c:
		return v
	case <-ctx.Done():
		return 0
	}
}

// UncancellableWait carries a ctx but parks on a callee that cannot be
// canceled — flagged.
func UncancellableWait(ctx context.Context, c chan int) int {
	return recvResult(c)
}

// BoundedCalls only reaches file I/O and ctx-aware waits — clean.
func BoundedCalls(ctx context.Context, c chan int, path string) int {
	if _, err := readState(path); err != nil {
		return 0
	}
	return recvWithCtx(ctx, c)
}

// CleanupWait blocks in a defer: shutdown cleanup blocks briefly by
// design — clean.
func CleanupWait(ctx context.Context, c chan int) {
	defer recvResult(c)
}

// AuditedRoot documents a legitimate root with a reasoned
// suppression — suppressed, not reported.
func AuditedRoot() context.Context {
	//lint:ignore ctxflow fixture: exercises directive suppression on a sanctioned root
	return context.Background()
}
