// Package fixture exercises the determinism analyzer. The test config
// declares EmitTable as the only emission root, so findings must appear
// in EmitTable and its static callees but not in Unreachable.
package fixture

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// EmitTable is the fixture emission root. The first range writes rows
// in map order — flagged.
func EmitTable(w io.Writer, metrics map[string]float64) {
	for name, v := range metrics {
		fmt.Fprintf(w, "%s=%v\n", name, v)
	}
	emitSorted(w, metrics)
	fmt.Fprintf(w, "entries=%d\n", countEntries(metrics))
	stamp(w)
	jitter(w)
	emitAsync(w, metrics)
}

// emitAsync parallelizes part of the emission: a goroutine spawned
// under a determinism root inherits the full reproducibility contract.
// The map-order bug inside the literal is flagged and attributed to the
// spawn; the named helper is flagged in the helper itself (the go
// statement's call is a static call-graph edge).
func emitAsync(w io.Writer, metrics map[string]float64) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for name, v := range metrics {
			fmt.Fprintf(w, "async %s=%v\n", name, v)
		}
	}()
	<-done
	go emitHelper(w, metrics)
}

// emitHelper carries the same bug into a named goroutine target.
func emitHelper(w io.Writer, metrics map[string]float64) {
	for name, v := range metrics {
		fmt.Fprintf(w, "helper %s=%v\n", name, v)
	}
}

// emitSorted collects keys then sorts — the range body is
// order-insensitive, so only the float accumulation below is flagged.
func emitSorted(w io.Writer, metrics map[string]float64) {
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	var total float64
	for _, v := range metrics {
		total += v
	}
	for _, name := range names {
		fmt.Fprintf(w, "%s=%v\n", name, metrics[name])
	}
	fmt.Fprintf(w, "total=%v\n", total)
}

// countEntries accumulates an integer, which is commutative — clean.
func countEntries(metrics map[string]float64) int {
	n := 0
	for range metrics {
		n++
	}
	return n
}

// stamp reads the wall clock inside the emission cone — flagged — and
// shows a reasoned suppression on the second read.
func stamp(w io.Writer) {
	fmt.Fprintf(w, "now=%v\n", time.Now())
	//lint:ignore determinism fixture: exercises directive suppression
	fmt.Fprintf(w, "since=%v\n", time.Since(time.Time{}))
}

// jitter draws from the process-global math/rand source — flagged —
// while the explicitly seeded source is clean.
func jitter(w io.Writer) {
	fmt.Fprintf(w, "jitter=%v\n", rand.Float64())
	seeded := rand.New(rand.NewSource(1))
	fmt.Fprintf(w, "seeded=%v\n", seeded.Float64())
}

// Unreachable is outside the emission cone: the same constructs are not
// flagged here.
func Unreachable(metrics map[string]float64) float64 {
	total := 0.0
	for _, v := range metrics {
		total += v
	}
	return total + float64(time.Now().Unix()) + rand.Float64()
}
