// Package fixture exercises the atomicmix analyzer: variables accessed
// both atomically and plainly, and mutation of atomic.Pointer/Value
// payloads.
package fixture

import "sync/atomic"

type counters struct {
	hits   int64 // accessed atomically AND plainly — every plain access flagged
	misses int64 // atomics only — clean
	local  int64 // plain only — clean
	typed  atomic.Int64
}

// Record is the atomic side of the mixed field.
func (c *counters) Record() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
	c.local++
	c.typed.Add(1)
}

// Snapshot reads hits plainly — flagged — and misses atomically —
// clean.
func (c *counters) Snapshot() (int64, int64) {
	return c.hits, atomic.LoadInt64(&c.misses)
}

// Reset writes hits plainly — flagged twice (write and increment).
func (c *counters) Reset() {
	c.hits = 0
	c.hits++
}

// NewCounters constructs with composite-literal keys: zero-value
// construction happens before the value is shared — clean.
func NewCounters() *counters {
	return &counters{hits: 0, misses: 0}
}

// AuditedRead documents a read that is provably single-threaded —
// suppressed.
func (c *counters) AuditedRead() int64 {
	//lint:ignore atomicmix fixture: exercises directive suppression on a quiesced read
	return c.hits
}

type config struct {
	limit int
	tags  map[string]string
}

type holder struct {
	cfg atomic.Pointer[config]
}

// MutatesPayload writes through a loaded pointer: every reader of the
// published snapshot races with it — flagged (field write and map
// write).
func (h *holder) MutatesPayload() {
	cfg := h.cfg.Load()
	cfg.limit = 10
	cfg.tags["k"] = "v"
}

// CopyOnWrite is the sanctioned pattern: clone, mutate the clone,
// publish the clone — clean.
func (h *holder) CopyOnWrite() {
	next := *h.cfg.Load()
	next.limit = 10
	h.cfg.Store(&next)
}

// ReadsPayload only reads the snapshot — clean.
func (h *holder) ReadsPayload() int {
	return h.cfg.Load().limit
}
