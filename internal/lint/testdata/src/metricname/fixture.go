// Package fixture exercises the metricname analyzer: telemetry names
// must be compile-time constants in snake_case '/'-separated segments.
// Constant violations and dynamically built names are flagged; bare
// identifier pass-through and suppressed wrappers are not.
package fixture

import (
	"fmt"

	"repro/internal/telemetry"
)

const opsTotal = "fixture/ops_total"

// Record covers constant names (good and bad) and dynamic construction.
func Record(kind string, n int) {
	telemetry.Add(opsTotal, 1)
	telemetry.Add("fixture/"+"errs_total", 1)
	telemetry.Add("fixture/BadName", 1)
	telemetry.Add("fixture/"+kind, 1)
	telemetry.Observe(fmt.Sprintf("fixture/bucket_%d", n), 1)
	record(opsTotal)
}

// record receives an already-checked name: the bare identifier is
// pass-through plumbing — clean.
func record(name string) {
	telemetry.SetGauge(name, 1)
}

// Suppressed is a sanctioned dynamic-name wrapper with a stated
// cardinality bound — counted, not reported.
func Suppressed(kind string) {
	//lint:ignore metricname fixture: kind ranges over a fixed two-element set
	telemetry.Add("fixture/"+kind, 1)
}
