package lint

import (
	"go/ast"
	"go/constant"
	"regexp"
)

// MetricNameAnalyzer keeps the telemetry registry's name space stable.
// Metric names are the registry's primary key: a name built with
// fmt.Sprintf (or any non-constant expression) can mint unbounded new
// time series (cardinality drift), breaks dashboard queries, and makes
// the Prometheus/JSON exposition diff noisy. Names must be compile-time
// constants in snake_case segments separated by '/'
// ("harness/specs_done"). Passing a bare identifier through a helper is
// allowed — the helper's own call sites are checked instead; sanctioned
// dynamic-name wrappers over a fixed name set carry a //lint:ignore
// with their bound.
var MetricNameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc:  "flags dynamically built or non-snake_case telemetry metric names",
	Run:  runMetricName,
}

func runMetricName(pass *Pass) error {
	pattern, err := regexp.Compile(pass.Config.MetricNamePattern)
	if err != nil {
		return err
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Pkg.Info, call)
			if fn == nil {
				return true
			}
			argIdx, ok := pass.Config.MetricNameFuncs[QualifiedName(fn)]
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			arg := ast.Unparen(call.Args[argIdx])
			tv, ok := pass.Pkg.Info.Types[arg]
			if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				name := constant.StringVal(tv.Value)
				if !pattern.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"metric name %q violates the registry convention (snake_case segments, %s)",
						name, pass.Config.MetricNamePattern)
				}
				return true
			}
			// Bare identifiers and field reads are pass-through plumbing
			// (the value was named at an upstream call site that this
			// analyzer checks); only expressions that *build* a name are
			// flagged.
			switch arg.(type) {
			case *ast.Ident, *ast.SelectorExpr:
				return true
			}
			pass.Reportf(arg.Pos(),
				"metric name passed to %s is built dynamically: dynamic names mint unbounded time series (cardinality drift); use a constant name or suppress with //lint:ignore stating the bound",
				QualifiedName(fn))
			return true
		})
	}
	return nil
}
