package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// GoLifecycleAnalyzer bans fire-and-forget goroutines in serving code.
// Every `go` statement in a function statically reachable from a
// configured lifecycle root (the daemon/cluster/CLI entry points) must
// carry a visible lifecycle edge — some way for the rest of the program
// to join it, stop it, or observe its completion:
//
//   - a join: the goroutine body calls (sync.WaitGroup).Done (the
//     Add/Done/Wait protocol — Close paths wait on the group);
//   - a cancellation edge: the body references a context.Context (it
//     selects on ctx.Done() or passes the ctx into cancelable calls);
//   - a completion/stop signal: the body sends on, receives from,
//     closes, selects over, or ranges over a channel (worker loops
//     draining a closed task channel, `errc <- srv.Serve(ln)` hand-offs,
//     `close(done)` signals, `<-stop` listeners all qualify);
//   - or the spawning function (or the spawned named function) is
//     registered in Config.DetachedGoroutines, the audited allowlist
//     for goroutines whose lifecycle is owned elsewhere.
//
// A goroutine with none of these outlives every shutdown path silently:
// it keeps computing after Drain, holds references past Close, and —
// under the repo's byte-identity contract — can interleave writes into
// artifacts that a clean shutdown was supposed to have sealed. `go`
// statements whose callee cannot be resolved statically (method values,
// interface calls, function-typed fields) are flagged too: an
// unanalyzable spawn is an unaudited spawn.
var GoLifecycleAnalyzer = &Analyzer{
	Name:         "golifecycle",
	Doc:          "flags fire-and-forget goroutines reachable from serving roots (no join, cancellation, or channel signal)",
	Run:          runGoLifecycle,
	WholeProgram: true,
}

func runGoLifecycle(pass *Pass) error {
	var roots []*regexp.Regexp
	for _, pat := range pass.Config.GoLifecycleRoots {
		re, err := regexp.Compile(pat)
		if err != nil {
			return err
		}
		roots = append(roots, re)
	}
	if len(roots) == 0 {
		return nil
	}
	graph := pass.Prog.graph(pass.Config)
	detached := map[string]bool{}
	for _, name := range pass.Config.DetachedGoroutines {
		detached[name] = true
	}

	// BFS over static call edges from the roots (same discipline as the
	// determinism analyzer).
	rootOf := map[*funcNode]string{}
	var worklist []*funcNode
	for _, node := range graph.sortedNodes() {
		name := QualifiedName(node.fn)
		for _, re := range roots {
			if re.MatchString(name) {
				worklist = append(worklist, node)
				rootOf[node] = name
				break
			}
		}
	}
	for len(worklist) > 0 {
		node := worklist[0]
		worklist = worklist[1:]
		for _, callee := range graph.calleesOf(node) {
			if _, ok := rootOf[callee]; ok {
				continue
			}
			rootOf[callee] = rootOf[node]
			worklist = append(worklist, callee)
		}
	}
	reached := make([]*funcNode, 0, len(rootOf))
	for node := range rootOf {
		reached = append(reached, node)
	}
	sort.Slice(reached, func(i, j int) bool { return QualifiedName(reached[i].fn) < QualifiedName(reached[j].fn) })
	for _, node := range reached {
		checkGoLifecycle(pass, graph, node, rootOf[node], detached)
	}
	return nil
}

func checkGoLifecycle(pass *Pass, graph *callGraph, node *funcNode, root string, detached map[string]bool) {
	info := node.pkg.Info
	fname := QualifiedName(node.fn)
	if detached[fname] {
		return
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var body *ast.BlockStmt
		var calleeName string
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			body = lit.Body
		} else if fn := calleeOf(info, g.Call); fn != nil {
			calleeName = QualifiedName(fn)
			if detached[calleeName] {
				return true
			}
			if callee := graph.nodes[fn]; callee != nil {
				body = callee.decl.Body
			}
		}
		if body == nil {
			pass.Reportf(g.Pos(),
				"go statement in %s (reachable from lifecycle root %s) spawns a statically unresolvable function: the goroutine's lifecycle cannot be audited — spawn a named function or literal, or register the spawner in Config.DetachedGoroutines",
				fname, root)
			return true
		}
		if hasLifecycleEdge(info, body) {
			return true
		}
		what := "goroutine"
		if calleeName != "" {
			what = "goroutine running " + calleeName
		}
		pass.Reportf(g.Pos(),
			"%s spawned in %s (reachable from lifecycle root %s) has no join or cancellation edge — no WaitGroup.Done, no context.Context reference, no channel signal: it outlives every shutdown path; add an edge or register it in the audited Config.DetachedGoroutines allowlist",
			what, fname, root)
		return true
	})
}

// hasLifecycleEdge reports whether a goroutine body carries any of the
// accepted join/cancel/signal edges.
func hasLifecycleEdge(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := info.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[s]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeOf(info, s); fn != nil {
				switch QualifiedName(fn) {
				case "(sync.WaitGroup).Done", "(sync.WaitGroup).Wait":
					found = true
				}
			}
			if fun, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && fun.Name == "close" {
				if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
