package lint

import (
	"go/ast"
	"go/types"
)

// HTTPWriteAnalyzer flags statement-position calls that write to an
// http.ResponseWriter and silently discard the error: w.Write,
// io.WriteString(w, ...), fmt.Fprintf(w, ...), and any other call whose
// results include an error and whose receiver or an argument is
// statically typed net/http.ResponseWriter. The service daemon's
// invariant is that a failed response write is at least counted
// (telemetry "service/write_errors"); a bare w.Write loses the signal
// that clients are disconnecting mid-response. droppederr does not
// cover these calls — the writers live in net/http, fmt, and io, all
// outside the module and none flush-like — so this check closes the
// gap for handler code specifically.
//
// Handled spellings — "if err := ...", "_, _ = w.Write(...)", or
// routing the write through an error-handling helper — are all clean.
var HTTPWriteAnalyzer = &Analyzer{
	Name: "httpwrite",
	Doc:  "flags http.ResponseWriter writes whose error result is silently discarded",
	Run:  runHTTPWrite,
}

func runHTTPWrite(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Pkg.Info, call)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !resultsIncludeError(sig) {
				return true
			}
			if !writesToResponseWriter(pass.Pkg.Info, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s writing to an http.ResponseWriter is silently discarded: a failed response write means the client is gone — handle or count it",
				QualifiedName(fn))
			return true
		})
	}
	return nil
}

// writesToResponseWriter reports whether the call's receiver or any
// argument is statically typed net/http.ResponseWriter.
func writesToResponseWriter(info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isResponseWriter(info.TypeOf(sel.X)) {
			return true
		}
	}
	for _, arg := range call.Args {
		if isResponseWriter(info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// isResponseWriter reports whether t is exactly the named interface
// net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}
