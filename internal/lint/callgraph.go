package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// funcNode is one function declaration in the analyzed program.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	callees []*funcNode // memoized, sorted by qualified name
	summary *funcSummary
	// Tarjan bookkeeping (SCC condensation).
	index, lowlink int
	onStack        bool
}

// callGraph indexes every function declared in the program's analyzed
// packages and resolves static call edges between them. Calls through
// function values, struct fields, and interfaces are not resolved —
// the analyzers using the graph document that boundary.
//
// On top of the raw edges the graph computes one funcSummary per
// function, bottom-up over the SCC-condensed graph, so any analyzer
// asking "does this call block?" or "which locks does this callee
// take?" is interprocedural for free.
type callGraph struct {
	nodes map[*types.Func]*funcNode

	cfg *Config
}

// buildCallGraph indexes all function and method declarations and
// computes per-function summaries. cfg supplies the fault-point call
// table (faultinject.Hit* sites count as blocking: every one of them is
// a latency-injection point under chaos schedules).
func buildCallGraph(prog *Program, cfg *Config) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*funcNode{}, cfg: cfg}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &funcNode{fn: fn, decl: fd, pkg: pkg, index: -1}
			}
		}
	}
	g.summarize()
	return g
}

// calleesOf returns the program-internal functions statically called
// from node's body (including calls made inside function literals
// declared in the body — they execute under the same emission root).
// The result is deterministic: sorted by qualified name.
func (g *callGraph) calleesOf(node *funcNode) []*funcNode {
	if node.callees != nil {
		return node.callees
	}
	seen := map[*funcNode]bool{}
	out := []*funcNode{}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(node.pkg.Info, call)
		if fn == nil {
			return true
		}
		if callee := g.nodes[fn]; callee != nil && !seen[callee] {
			seen[callee] = true
			out = append(out, callee)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return QualifiedName(out[i].fn) < QualifiedName(out[j].fn)
	})
	node.callees = out
	return out
}

// sortedNodes returns every function node ordered by qualified name,
// the graph's deterministic iteration order.
func (g *callGraph) sortedNodes() []*funcNode {
	all := make([]*funcNode, 0, len(g.nodes))
	for _, node := range g.nodes {
		all = append(all, node)
	}
	sort.Slice(all, func(i, j int) bool { return QualifiedName(all[i].fn) < QualifiedName(all[j].fn) })
	return all
}

// --- per-function summaries -------------------------------------------

// blockClass says why a function (transitively) blocks.
type blockClass uint8

const (
	blockNone  blockClass = 0
	blockChan  blockClass = 1 << iota // channel send/receive, select without default
	blockNet                          // network round trips (net, net/http)
	blockFile                         // file-system syscalls (os package)
	blockSleep                        // time.Sleep
	blockWait                         // WaitGroup.Wait / Cond.Wait
	blockFault                        // fault-injection points (latency-injectable)
)

// unboundedWait reports whether the class contains a wait that no disk
// scheduler bounds: channel ops, network, sleeps, WaitGroup/Cond waits.
// File I/O and fault points are "bounded" blocking — slow, latency-
// injectable, but not dependent on another goroutine making progress.
func (c blockClass) unboundedWait() bool {
	return c&(blockChan|blockNet|blockSleep|blockWait) != 0
}

func (c blockClass) String() string {
	var parts []string
	for _, e := range []struct {
		bit  blockClass
		name string
	}{
		{blockChan, "channel ops"},
		{blockNet, "network I/O"},
		{blockFile, "file I/O"},
		{blockSleep, "sleeps"},
		{blockWait, "unbounded waits"},
		{blockFault, "fault-injection points"},
	} {
		if c&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "nothing blocking"
	}
	return strings.Join(parts, ", ")
}

// blockSite is one concrete reason a function blocks: the syntactic
// site plus a human-readable description. For transitive blocking the
// description names the callee chain's first hop.
type blockSite struct {
	pos  token.Pos
	desc string
	cls  blockClass
}

// funcSummary is the bottom-up interprocedural summary of one function:
// whether (and why) a call to it can block, and which mutexes it
// acquires. Computed over the SCC condensation, so mutual recursion
// converges in one pass.
type funcSummary struct {
	blocks blockClass
	// firstSite is a representative blocking site for diagnostics (the
	// position-smallest direct site, or the first transitive hop).
	firstSite blockSite
	// acquires maps normalized lock keys — "(pkg.Type).field" for
	// locks on a method receiver's field, the receiver expression
	// otherwise — to true when the function body Lock()s them.
	acquires map[string]bool
	// hasCtxParam records whether the function's signature accepts a
	// context.Context (receiver excluded).
	hasCtxParam bool
}

// directBlockCalls classifies well-known stdlib callables that block.
// Only statically resolvable calls are classified; blocking behind
// interfaces (io.Writer to a socket) is out of reach and documented as
// the analyzers' boundary.
var directBlockCalls = map[string]blockClass{
	"time.Sleep":                     blockSleep,
	"(sync.WaitGroup).Wait":          blockWait,
	"(sync.Cond).Wait":               blockWait,
	"net/http.Get":                   blockNet,
	"net/http.Head":                  blockNet,
	"net/http.Post":                  blockNet,
	"net/http.PostForm":              blockNet,
	"(net/http.Client).Do":           blockNet,
	"(net/http.Client).Get":          blockNet,
	"(net/http.Client).Head":         blockNet,
	"(net/http.Client).Post":         blockNet,
	"(net/http.Client).PostForm":     blockNet,
	"(net/http.Transport).RoundTrip": blockNet,
	"net.Dial":                       blockNet,
	"net.DialTimeout":                blockNet,
	"net.DialTCP":                    blockNet,
	"net.DialUDP":                    blockNet,
	"net.DialIP":                     blockNet,
	"net.DialUnix":                   blockNet,
	"(net.Dialer).Dial":              blockNet,
	"(net.Dialer).DialContext":       blockNet,
	"os.ReadFile":                    blockFile,
	"os.WriteFile":                   blockFile,
	"os.Open":                        blockFile,
	"os.OpenFile":                    blockFile,
	"os.Create":                      blockFile,
	"os.CreateTemp":                  blockFile,
	"os.Rename":                      blockFile,
	"os.Remove":                      blockFile,
	"os.RemoveAll":                   blockFile,
	"os.Mkdir":                       blockFile,
	"os.MkdirAll":                    blockFile,
	"os.MkdirTemp":                   blockFile,
	"os.ReadDir":                     blockFile,
	"(os.File).Read":                 blockFile,
	"(os.File).ReadAt":               blockFile,
	"(os.File).Write":                blockFile,
	"(os.File).WriteAt":              blockFile,
	"(os.File).WriteString":          blockFile,
	"(os.File).Sync":                 blockFile,
	"(os.File).Truncate":             blockFile,
	"(os.File).Close":                blockFile,
}

// summarize computes every node's funcSummary bottom-up: Tarjan's SCC
// algorithm emits components in reverse topological order of the
// condensation (callees before callers), so by the time a component is
// summarized every out-of-component callee already has its summary.
// Within a component (mutual recursion) the members share the union.
func (g *callGraph) summarize() {
	index := 0
	var stack []*funcNode
	var strongconnect func(v *funcNode)
	strongconnect = func(v *funcNode) {
		v.index, v.lowlink = index, index
		index++
		stack = append(stack, v)
		v.onStack = true
		for _, w := range g.calleesOf(v) {
			if w.index < 0 {
				strongconnect(w)
				if w.lowlink < v.lowlink {
					v.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < v.lowlink {
				v.lowlink = w.index
			}
		}
		if v.lowlink == v.index {
			// Pop one complete SCC and summarize it.
			var comp []*funcNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			g.summarizeComponent(comp)
		}
	}
	for _, v := range g.sortedNodes() {
		if v.index < 0 {
			strongconnect(v)
		}
	}
}

// summarizeComponent computes the shared summary of one SCC: the union
// of every member's direct blocking sites and lock acquisitions plus
// everything already summarized in out-of-component callees.
func (g *callGraph) summarizeComponent(comp []*funcNode) {
	inComp := map[*funcNode]bool{}
	for _, n := range comp {
		inComp[n] = true
	}
	sum := &funcSummary{acquires: map[string]bool{}}
	for _, n := range comp {
		direct := g.directSummary(n)
		sum.blocks |= direct.blocks
		if sum.firstSite.cls == blockNone && direct.firstSite.cls != blockNone {
			sum.firstSite = direct.firstSite
		}
		for k := range direct.acquires {
			sum.acquires[k] = true
		}
		for _, callee := range g.calleesOf(n) {
			if inComp[callee] || callee.summary == nil {
				continue
			}
			if _, isFaultPoint := g.cfg.FaultPointFuncs[QualifiedName(callee.fn)]; isFaultPoint {
				// A fault point's implementation sleeps to inject the
				// configured latency; to callers that is the blockFault
				// classification directSummary already recorded, not a
				// genuine sleep of their own.
				continue
			}
			cs := callee.summary
			if cs.blocks != blockNone {
				sum.blocks |= cs.blocks
				if sum.firstSite.cls == blockNone {
					sum.firstSite = blockSite{
						pos:  n.decl.Pos(),
						desc: "call to " + QualifiedName(callee.fn) + " (" + cs.blocks.String() + ")",
						cls:  cs.blocks,
					}
				}
			}
		}
	}
	for _, n := range comp {
		s := *sum
		s.hasCtxParam = hasContextParam(n.fn)
		n.summary = &s
	}
}

// directSummary scans one function body for syntactically direct
// blocking sites and lock acquisitions (no propagation).
func (g *callGraph) directSummary(n *funcNode) *funcSummary {
	sum := &funcSummary{acquires: map[string]bool{}}
	record := func(pos token.Pos, desc string, cls blockClass) {
		sum.blocks |= cls
		if sum.firstSite.cls == blockNone {
			sum.firstSite = blockSite{pos: pos, desc: desc, cls: cls}
		}
	}
	info := n.pkg.Info
	var walk func(node ast.Node) bool
	walk = func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.SendStmt:
			record(s.Pos(), "channel send "+types.ExprString(s.Chan)+" <-", blockChan)
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				record(s.Pos(), "channel receive <-"+types.ExprString(s.X), blockChan)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					record(s.Pos(), "range over channel "+types.ExprString(s.X), blockChan)
				}
			}
		case *ast.SelectStmt:
			// A select with a default clause never blocks; skip the comm
			// clauses' channel operations but still walk the bodies.
			if selectHasDefault(s) {
				for _, cl := range s.Body.List {
					cc := cl.(*ast.CommClause)
					for _, st := range cc.Body {
						ast.Inspect(st, walk)
					}
				}
				return false
			}
			record(s.Pos(), "select without default", blockChan)
		case *ast.CallExpr:
			fn := calleeOf(info, s)
			if fn == nil {
				return true
			}
			q := QualifiedName(fn)
			if cls, ok := directBlockCalls[q]; ok {
				record(s.Pos(), "call to "+q, cls)
			}
			if _, ok := g.cfg.FaultPointFuncs[q]; ok {
				record(s.Pos(), "fault-injection point "+q, blockFault)
			}
			if key, ok := lockAcquisition(info, s, n); ok {
				sum.acquires[key] = true
			}
		}
		return true
	}
	ast.Inspect(n.decl.Body, walk)
	return sum
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// mutexMethod classifies calls to sync.Mutex/RWMutex methods; returns
// the method name ("Lock", "RLock", "Unlock", "RUnlock") and the
// receiver expression, or "".
func mutexMethod(info *types.Info, call *ast.CallExpr) (method string, recv ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return "", nil
	}
	switch QualifiedName(fn) {
	case "(sync.Mutex).Lock", "(sync.Mutex).Unlock",
		"(sync.RWMutex).Lock", "(sync.RWMutex).Unlock",
		"(sync.RWMutex).RLock", "(sync.RWMutex).RUnlock":
		return fn.Name(), sel.X
	}
	return "", nil
}

// lockAcquisition reports a Lock/RLock call in n's body as a normalized
// lock key. A lock on a field of the method receiver normalizes to
// "(pkg.Type).field.path", so the same logical mutex gets the same key
// in every method of the type; anything else keys by its expression
// text within the function.
func lockAcquisition(info *types.Info, call *ast.CallExpr, n *funcNode) (string, bool) {
	method, recv := mutexMethod(info, call)
	if method != "Lock" && method != "RLock" {
		return "", false
	}
	return normalizeLockKey(info, recv, n), true
}

// normalizeLockKey renders the mutex expression: when rooted at the
// enclosing method's receiver, the root is replaced by the receiver's
// type so summaries compare across methods of one type.
func normalizeLockKey(info *types.Info, expr ast.Expr, n *funcNode) string {
	root := expr
	for {
		if sel, ok := ast.Unparen(root).(*ast.SelectorExpr); ok {
			root = sel.X
			continue
		}
		break
	}
	ident, ok := ast.Unparen(root).(*ast.Ident)
	if !ok {
		return types.ExprString(expr)
	}
	sig, _ := n.fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return types.ExprString(expr)
	}
	obj := info.Uses[ident]
	if obj == nil || obj != sig.Recv() {
		return types.ExprString(expr)
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return types.ExprString(expr)
	}
	typeKey := "(" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")"
	full := types.ExprString(expr)
	rest := strings.TrimPrefix(full, ident.Name)
	return typeKey + rest
}

// hasContextParam reports whether fn's parameters include a
// context.Context.
func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
