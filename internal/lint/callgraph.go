package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// funcNode is one function declaration in the analyzed program.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// callGraph indexes every function declared in the program's analyzed
// packages and resolves static call edges between them. Calls through
// function values, struct fields, and interfaces are not resolved —
// the analyzers using the graph document that boundary.
type callGraph struct {
	nodes map[*types.Func]*funcNode
}

// buildCallGraph indexes all function and method declarations.
func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*funcNode{}}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &funcNode{fn: fn, decl: fd, pkg: pkg}
			}
		}
	}
	return g
}

// calleesOf returns the program-internal functions statically called
// from node's body (including calls made inside function literals
// declared in the body — they execute under the same emission root).
// The result is deterministic: sorted by qualified name.
func (g *callGraph) calleesOf(node *funcNode) []*funcNode {
	seen := map[*funcNode]bool{}
	var out []*funcNode
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(node.pkg.Info, call)
		if fn == nil {
			return true
		}
		if callee := g.nodes[fn]; callee != nil && !seen[callee] {
			seen[callee] = true
			out = append(out, callee)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return QualifiedName(out[i].fn) < QualifiedName(out[j].fn)
	})
	return out
}
