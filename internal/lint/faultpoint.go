package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"sort"
)

// FaultPointAnalyzer keeps the fault-injection registry's name space
// stable and collision-free. Point names are the contract between
// instrumented code and chaos schedules (AIG_FAULTS specs, the chaos
// test suite): a name built at runtime cannot be armed
// deterministically, a misspelled pattern silently never fires, and
// two instrumentation sites sharing one name make a schedule ambiguous
// — arming "the checkpoint write" would secretly also tear some other
// subsystem. So every name passed to faultinject.Hit/Delay/WrapWriter
// must be a compile-time string constant in snake_case '/'-separated
// segments, and each name must designate exactly one instrumentation
// site across the whole program. Pass-through helpers inside
// faultinject itself are exempt; routing one point through a shared
// constructor (see harness.newCheckpointer) is the sanctioned way to
// cover multiple code paths with one site.
var FaultPointAnalyzer = &Analyzer{
	Name:         "faultpoint",
	Doc:          "flags dynamic, malformed, or duplicated fault-injection point names",
	Run:          runFaultPoint,
	WholeProgram: true,
}

func runFaultPoint(pass *Pass) error {
	pattern, err := regexp.Compile(pass.Config.FaultPointPattern)
	if err != nil {
		return err
	}
	sites := map[string][]token.Pos{}
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil {
					return true
				}
				argIdx, ok := pass.Config.FaultPointFuncs[QualifiedName(fn)]
				if !ok || argIdx >= len(call.Args) {
					return true
				}
				// The defining package's own internals (spec parsing, the
				// hit path) forward names they received; their callers are
				// the sites under contract.
				if fn.Pkg() != nil && fn.Pkg().Path() == pkg.Path {
					return true
				}
				arg := ast.Unparen(call.Args[argIdx])
				tv, ok := pkg.Info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					pass.Reportf(arg.Pos(),
						"fault point name passed to %s is not a compile-time string constant: dynamic names cannot be armed deterministically from a fault spec",
						QualifiedName(fn))
					return true
				}
				name := constant.StringVal(tv.Value)
				if !pattern.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"fault point name %q violates the registry convention (snake_case segments, %s)",
						name, pass.Config.FaultPointPattern)
					return true
				}
				sites[name] = append(sites[name], arg.Pos())
				return true
			})
		}
	}
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if len(sites[name]) < 2 {
			continue
		}
		for _, pos := range sites[name] {
			pass.Reportf(pos,
				"fault point name %q is instrumented at %d call sites; one name must designate exactly one site (route shared paths through a single constructor, or split the names)",
				name, len(sites[name]))
		}
	}
	return nil
}
