package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RawLitAnalyzer flags raw bit/arithmetic manipulation of tagged
// literal types (aig.Lit and friends) outside the packages that own the
// encoding. A literal is 2*node+complement; code such as lit^1, lit>>1,
// or lit&1 silently bakes that encoding into call sites, where it breaks
// the moment the representation changes and where a typo (lit^2)
// corrupts a different node instead of failing. The Not/IsCompl/Node/
// Regular/MakeLit helpers are the only sanctioned spelling.
var RawLitAnalyzer = &Analyzer{
	Name: "rawlit",
	Doc:  "flags raw bit-twiddling of tagged literal types outside their encoding packages",
	Run:  runRawLit,
}

// rawLitOps are the operators that expose the literal encoding. Shifts,
// masks, and xor touch the complement/index packing directly; ordinary
// arithmetic (lit+1, lit*2) manufactures literals out of thin air.
var rawLitOps = map[token.Token]bool{
	token.XOR:     true,
	token.AND:     true,
	token.OR:      true,
	token.AND_NOT: true,
	token.SHL:     true,
	token.SHR:     true,
	token.ADD:     true,
	token.SUB:     true,
	token.MUL:     true,
	token.QUO:     true,
	token.REM:     true,
}

func runRawLit(pass *Pass) error {
	guarded := map[*types.Named]string{} // literal type -> display name
	for name, allowed := range pass.Config.RawLitTypes {
		permitted := false
		for _, pkgPath := range allowed {
			if pkgPath == pass.Pkg.Path {
				permitted = true
				break
			}
		}
		if permitted {
			continue
		}
		if named := lookupNamedType(pass, name); named != nil {
			guarded[named] = name
		}
	}
	if len(guarded) == 0 {
		return nil
	}
	typeOf := func(e ast.Expr) *types.Named {
		t := pass.Pkg.Info.TypeOf(e)
		if t == nil {
			return nil
		}
		named, _ := t.(*types.Named)
		return named
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if !rawLitOps[e.Op] {
					return true
				}
				for _, operand := range []ast.Expr{e.X, e.Y} {
					if named := typeOf(operand); named != nil {
						if display, ok := guarded[named]; ok {
							pass.Reportf(e.Pos(),
								"raw %q on %s: use the %s helpers (Not/IsCompl/Node/Regular/MakeLit) instead of bit arithmetic on the literal encoding",
								e.Op.String(), display, named.Obj().Name())
							return false
						}
					}
				}
			case *ast.UnaryExpr:
				if e.Op == token.XOR || e.Op == token.SUB {
					if named := typeOf(e.X); named != nil {
						if display, ok := guarded[named]; ok {
							pass.Reportf(e.Pos(),
								"raw unary %q on %s: use the %s helpers instead of bit arithmetic on the literal encoding",
								e.Op.String(), display, named.Obj().Name())
							return false
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// lookupNamedType resolves "pkg/path.TypeName" against the packages the
// current package can see (itself plus its imports, transitively via
// the type-checker's package graph).
func lookupNamedType(pass *Pass, qualified string) *types.Named {
	pkgPath, typeName, ok := splitQualified(qualified)
	if !ok {
		return nil
	}
	var tpkg *types.Package
	if pass.Pkg.Path == pkgPath {
		tpkg = pass.Pkg.Types
	} else {
		tpkg = findImported(pass.Pkg.Types, pkgPath, map[*types.Package]bool{})
	}
	if tpkg == nil {
		return nil
	}
	obj, _ := tpkg.Scope().Lookup(typeName).(*types.TypeName)
	if obj == nil {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}

// splitQualified splits "pkg/path.Name" at the last dot after the last
// slash.
func splitQualified(s string) (pkgPath, name string, ok bool) {
	slash := -1
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			slash = i
			break
		}
	}
	for i := len(s) - 1; i > slash; i-- {
		if s[i] == '.' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// findImported walks the import graph below pkg for the named path.
func findImported(pkg *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if seen[pkg] {
		return nil
	}
	seen[pkg] = true
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return imp
		}
		if found := findImported(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}
