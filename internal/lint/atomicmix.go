package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMixAnalyzer enforces atomic-access discipline at field
// granularity, program-wide:
//
//  1. A variable (struct field or package-level var) that is accessed
//     through a sync/atomic function anywhere — atomic.AddInt64(&s.n),
//     atomic.LoadUint64(&hits) — must never be read or written plainly
//     anywhere else. A single plain `s.n++` next to an atomic reader is
//     a data race the race detector only catches when the schedule
//     cooperates; under the repo's reproduction contract it is silent
//     nondeterminism. (Composite-literal field keys are exempt: zero-
//     value construction happens before the value is shared. Fields of
//     the typed atomic kinds — atomic.Int64, atomic.Pointer[T], … —
//     are enforced by their types and need no analysis; prefer them.)
//
//  2. A payload obtained from (atomic.Pointer[T]).Load or
//     (atomic.Value).Load must not be mutated: atomic pointers publish
//     immutable snapshots, and writing through a loaded pointer races
//     with every other reader of the same snapshot. Mutating a field
//     or element of (or assigning through) a Load result is flagged;
//     the sanctioned pattern is copy-on-write: clone, mutate the
//     clone, Store the clone.
var AtomicMixAnalyzer = &Analyzer{
	Name:         "atomicmix",
	Doc:          "flags plain access to variables used atomically elsewhere, and mutation of atomic.Pointer/Value payloads",
	Run:          runAtomicMix,
	WholeProgram: true,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: every variable whose address is taken into a sync/atomic
	// call, with the blessed &x selector/ident nodes that form the call.
	atomicVars := map[*types.Var]token.Pos{} // var -> first atomic site
	blessed := map[ast.Node]bool{}           // operand nodes inside atomic calls
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods on typed atomics are type-enforced
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					v := varOf(pkg.Info, un.X)
					if v == nil {
						continue
					}
					blessed[ast.Unparen(un.X)] = true
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = un.X.Pos()
					}
				}
				return true
			})
		}
	}

	// Pass 2: plain accesses to those variables anywhere in the program.
	type finding struct {
		pos token.Pos
		v   *types.Var
	}
	var findings []finding
	// A selector's Sel ident resolves to the same object as the selector
	// itself; parents are visited before children, so marking each Sel as
	// covered prevents one access from being reported twice (and keeps
	// blessed operands' Sel idents silent too).
	coveredSel := map[ast.Node]bool{}
	visit := func(info *types.Info, n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			coveredSel[sel.Sel] = true
		}
		if coveredSel[n] {
			return true
		}
		if v, at, ok := plainAccess(info, n, atomicVars, blessed); ok {
			findings = append(findings, finding{at, v})
		}
		return true
	}
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if kv, ok := n.(*ast.KeyValueExpr); ok {
					// Composite-literal construction: visit the value,
					// skip the field-name key.
					ast.Inspect(kv.Value, func(vn ast.Node) bool {
						return visit(pkg.Info, vn)
					})
					return false
				}
				return visit(pkg.Info, n)
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos,
			"%s is accessed plainly here but atomically at %s: mixed access is a data race — route every access through sync/atomic, or migrate the field to a typed atomic (atomic.Int64, atomic.Pointer)",
			f.v.Name(), pass.posString(atomicVars[f.v]))
	}

	// Pass 3: mutations of atomic.Pointer/Value payloads, per function.
	graph := pass.Prog.graph(pass.Config)
	for _, node := range graph.sortedNodes() {
		checkLoadedPayloadMutation(pass, node)
	}
	return nil
}

// varOf resolves an expression to the *types.Var it names (a selector's
// field or a plain identifier's variable), or nil.
func varOf(info *types.Info, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	}
	return nil
}

// plainAccess reports whether n is an unblessed access to a variable in
// atomicVars.
func plainAccess(info *types.Info, n ast.Node, atomicVars map[*types.Var]token.Pos, blessed map[ast.Node]bool) (*types.Var, token.Pos, bool) {
	expr, ok := n.(ast.Expr)
	if !ok {
		return nil, token.NoPos, false
	}
	switch expr.(type) {
	case *ast.SelectorExpr, *ast.Ident:
	default:
		return nil, token.NoPos, false
	}
	if blessed[expr] {
		return nil, token.NoPos, false
	}
	v := varOf(info, expr)
	if v == nil {
		return nil, token.NoPos, false
	}
	if _, ok := atomicVars[v]; !ok {
		return nil, token.NoPos, false
	}
	return v, expr.Pos(), true
}

// checkLoadedPayloadMutation flags writes through values loaded from
// atomic.Pointer/atomic.Value within one function body.
func checkLoadedPayloadMutation(pass *Pass, node *funcNode) {
	info := node.pkg.Info
	loaded := map[types.Object]token.Pos{} // v := p.Load() results
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Name() != "Load" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		for _, lhs := range assign.Lhs {
			if ident, ok := ast.Unparen(lhs).(*ast.Ident); ok && ident.Name != "_" {
				if obj := info.Defs[ident]; obj != nil {
					loaded[obj] = call.Pos()
				} else if obj := info.Uses[ident]; obj != nil {
					loaded[obj] = call.Pos()
				}
			}
		}
		return true
	})
	if len(loaded) == 0 {
		return
	}
	fname := QualifiedName(node.fn)
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok == token.DEFINE {
			return true
		}
		for _, lhs := range assign.Lhs {
			obj, via := writeTargetRoot(info, lhs)
			if obj == nil || !via {
				continue
			}
			if at, ok := loaded[obj]; ok {
				pass.Reportf(lhs.Pos(),
					"mutation through %s, loaded from an atomic pointer at %s, in %s: published payloads are shared snapshots — copy, mutate the copy, and Store the copy instead",
					obj.Name(), pass.posString(at), fname)
			}
		}
		return true
	})
}

// writeTargetRoot resolves an assignment LHS to its root object and
// whether the write goes *through* the root (selector, index, or
// dereference) rather than rebinding the variable itself.
func writeTargetRoot(info *types.Info, lhs ast.Expr) (types.Object, bool) {
	via := false
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			via = true
			lhs = e.X
		case *ast.IndexExpr:
			via = true
			lhs = e.X
		case *ast.StarExpr:
			via = true
			lhs = e.X
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj, via
			}
			return nil, false
		default:
			return nil, false
		}
	}
}
