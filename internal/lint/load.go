package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and type-checked package of the module
// under analysis.
type Package struct {
	// Path is the import path ("repro/internal/aig"). Fixture packages
	// under testdata get a path derived the same way; nothing imports
	// them, so the path is only used for reporting.
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a fully loaded module slice: every requested package plus
// every module-internal dependency, type-checked against the standard
// library (compiled from source, so the loader works offline with no
// dependency beyond the Go toolchain's GOROOT).
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	// Packages holds the explicitly requested packages in a stable
	// (path-sorted) order. Dependencies pulled in only transitively are
	// reachable through the type information but are not analyzed.
	Packages []*Package

	byPath  map[string]*Package
	ignores map[string]map[int]*ignoreDirective // file -> line -> directive

	// graphs memoizes the summarized call graph per configuration, so
	// concurrently running analyzers share one build (the graph and its
	// summaries are immutable once constructed).
	graphMu sync.Mutex
	graphs  map[*Config]*callGraph
}

// graph returns the program's summarized call graph for cfg, building
// it on first use. Safe for concurrent analyzers.
func (p *Program) graph(cfg *Config) *callGraph {
	p.graphMu.Lock()
	defer p.graphMu.Unlock()
	if p.graphs == nil {
		p.graphs = map[*Config]*callGraph{}
	}
	if g, ok := p.graphs[cfg]; ok {
		return g
	}
	g := buildCallGraph(p, cfg)
	p.graphs[cfg] = g
	return g
}

// loader resolves imports: module-internal paths from the module tree,
// everything else from GOROOT source via the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	modPath string
	modDir  string
	std     types.Importer
	memo    map[string]*Package
	loading map[string]bool
}

// Load parses and type-checks the packages matched by patterns. dir must
// be inside a Go module. Patterns accept "./..." (every package under
// the module root, skipping testdata and hidden directories), "..."
// (same), and plain directory paths relative to dir.
func Load(dir string, patterns []string) (*Program, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		modPath: modPath,
		modDir:  modDir,
		memo:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	dirs, err := expandPatterns(dir, modDir, patterns)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       l.fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		byPath:     map[string]*Package{},
		ignores:    map[string]map[int]*ignoreDirective{},
	}
	for _, d := range dirs {
		pkg, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		if prog.byPath[pkg.Path] == nil {
			prog.byPath[pkg.Path] = pkg
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	for _, pkg := range prog.Packages {
		prog.collectIgnores(pkg)
	}
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves the command-line package patterns to a sorted
// list of directories containing Go files.
func expandPatterns(dir, modDir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkGoDirs(modDir, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(dir, strings.TrimSuffix(pat, "/..."))
			if err := walkGoDirs(root, add); err != nil {
				return nil, err
			}
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(dir, d)
			}
			if fi, err := os.Stat(d); err != nil || !fi.IsDir() {
				return nil, fmt.Errorf("lint: %s is not a package directory", pat)
			}
			add(d)
		}
	}
	sort.Strings(out)
	return out, nil
}

// walkGoDirs calls add for every directory under root that contains at
// least one non-test Go file, skipping hidden and testdata trees.
func walkGoDirs(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if isLintedGoFile(e.Name()) {
				add(path)
				break
			}
		}
		return nil
	})
}

// isLintedGoFile reports whether name is a Go source file the linter
// analyzes. Test files are excluded: the invariants guarded here are
// production-path properties, and test packages routinely use intentional
// nondeterminism (t.TempDir, shuffled inputs) that would drown real
// findings.
func isLintedGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// importPathFor maps a module-tree directory to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modDir)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (nil if the
// directory has no non-test Go files).
func (l *loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.memo[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintedGoFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.memo[path] = nil
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.memo[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal packages come from
// the module tree, everything else from GOROOT source.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("lint: cgo is not supported")
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// PackageByPath returns a loaded package, or nil.
func (p *Program) PackageByPath(path string) *Package {
	return p.byPath[path]
}
