// Package lint is a self-contained static-analysis driver for the
// repository's domain invariants: AIG-literal encoding discipline,
// deterministic result emission, error-handling hygiene, and telemetry
// metric-name stability. It is built on nothing but the standard
// library (go/parser, go/ast, go/types with the source importer), so it
// runs offline with no dependency beyond the Go toolchain.
//
// Findings can be suppressed at a single line with a directive comment:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or the line directly above it. The
// analyzer list may be "all"; the reason is mandatory — a bare ignore
// is itself reported as a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer is one named check over a loaded program.
type Analyzer struct {
	Name string
	Doc  string
	// Run reports findings through pass.Reportf. Per-package analyzers
	// are invoked once per requested package; whole-program analyzers
	// (WholeProgram true) are invoked once with Pass.Pkg nil and inspect
	// Pass.Prog.Packages themselves (needed for cross-package
	// reachability).
	Run          func(pass *Pass) error
	WholeProgram bool
}

// Pass carries one analyzer invocation's inputs and its diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package // nil for whole-program analyzers
	Config   *Config

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// posString renders a source position for use inside diagnostic
// messages, relative to the module root so messages (and the golden
// files pinning them) stay stable across checkouts.
func (p *Pass) posString(pos token.Pos) string {
	position := p.Prog.Fset.Position(pos)
	if rel, err := filepath.Rel(p.Prog.ModuleDir, position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		position.Filename = filepath.ToSlash(rel)
	}
	return position.String()
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // nil means "all"
	reason    string
	pos       token.Pos
	used      bool
}

// collectIgnores parses every //lint:ignore directive in pkg, keyed by
// file and line so a directive suppresses findings on its own line and
// the line below it.
func (p *Program) collectIgnores(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.ignores[pos.Filename]
				if byLine == nil {
					byLine = map[int]*ignoreDirective{}
					p.ignores[pos.Filename] = byLine
				}
				d := &ignoreDirective{pos: c.Pos()}
				fields := strings.Fields(text)
				if len(fields) >= 1 {
					if fields[0] != "all" {
						d.analyzers = map[string]bool{}
						for _, a := range strings.Split(fields[0], ",") {
							d.analyzers[a] = true
						}
					}
					d.reason = strings.Join(fields[1:], " ")
				}
				byLine[pos.Line] = d
			}
		}
	}
}

// suppressedBy returns the directive covering a diagnostic, or nil.
func (p *Program) suppressedBy(d Diagnostic) *ignoreDirective {
	byLine := p.ignores[d.Pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir := byLine[line]; dir != nil {
			if dir.analyzers == nil || dir.analyzers[d.Analyzer] {
				return dir
			}
		}
	}
	return nil
}

// Result summarizes one lint run.
type Result struct {
	Diagnostics []Diagnostic // surviving findings, position-sorted
	Suppressed  int          // findings silenced by //lint:ignore
	// SuppressedDiagnostics holds the silenced findings themselves
	// (position-sorted), so -json output and audits can list what the
	// directives are actually covering.
	SuppressedDiagnostics []Diagnostic
	// Timings holds per-analyzer wall-clock, in the order the analyzers
	// were requested (the analyzers run concurrently; the durations sum
	// to more than the run's elapsed time).
	Timings []AnalyzerTiming
}

// AnalyzerTiming is one analyzer's wall-clock cost over the program.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunAnalyzers runs every analyzer over the program and returns the
// surviving (unsuppressed) diagnostics in position order. Malformed
// ignore directives (no analyzer list or no reason) are themselves
// diagnostics, so suppressions stay auditable.
//
// The analyzers run concurrently: the loaded Program is immutable once
// analysis starts (the shared call graph and summaries are memoized per
// config behind a mutex), and each analyzer writes into its own
// diagnostic slice, merged deterministically afterwards.
func RunAnalyzers(prog *Program, analyzers []*Analyzer, cfg *Config) (*Result, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	diags := make([][]Diagnostic, len(analyzers))
	errs := make([]error, len(analyzers))
	timings := make([]AnalyzerTiming, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			start := time.Now()
			pass := &Pass{Analyzer: a, Prog: prog, Config: cfg, diags: &diags[i]}
			if a.WholeProgram {
				if err := a.Run(pass); err != nil {
					errs[i] = fmt.Errorf("lint: %s: %w", a.Name, err)
				}
			} else {
				for _, pkg := range prog.Packages {
					pass.Pkg = pkg
					if err := a.Run(pass); err != nil {
						errs[i] = fmt.Errorf("lint: %s (%s): %w", a.Name, pkg.Path, err)
						break
					}
				}
			}
			timings[i] = AnalyzerTiming{Name: a.Name, Elapsed: time.Since(start)}
		}(i, a)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var raw []Diagnostic
	for _, d := range diags {
		raw = append(raw, d...)
	}
	res := &Result{Timings: timings}
	for _, d := range raw {
		if dir := prog.suppressedBy(d); dir != nil {
			dir.used = true
			res.Suppressed++
			res.SuppressedDiagnostics = append(res.SuppressedDiagnostics, d)
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	for file, byLine := range prog.ignores {
		for _, dir := range byLine {
			if dir.reason == "" {
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Pos:      prog.Fset.Position(dir.pos),
					Analyzer: "ignore",
					Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
				})
			}
		}
		_ = file
	}
	sortDiagnostics(res.Diagnostics)
	sortDiagnostics(res.SuppressedDiagnostics)
	return res, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Analyzers returns every registered analyzer in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		RawLitAnalyzer, DeterminismAnalyzer, DroppedErrAnalyzer, MetricNameAnalyzer,
		HTTPWriteAnalyzer, FaultPointAnalyzer,
		LockHeldAnalyzer, CtxFlowAnalyzer, GoLifecycleAnalyzer, AtomicMixAnalyzer,
	}
}

// AnalyzerByName returns a registered analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// --- shared type/function helpers -------------------------------------

// QualifiedName renders a *types.Func the way configuration refers to
// it: "pkg/path.Func" for package functions and "(pkg/path.Recv).Method"
// for methods (pointer receivers are normalized to the bare type name).
func QualifiedName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return "(" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// calleeOf resolves a call expression to the static *types.Func it
// invokes, or nil for calls through function values, interfaces, or
// built-ins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isIntegerType reports whether t is an integer kind (ordering-
// insensitive under accumulation, unlike floats and strings).
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
