package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// golden runs one analyzer over its fixture package under
// testdata/src/<name>/ and compares the rendered diagnostics (plus the
// suppression count) against testdata/<name>.golden. The config may
// depend on the loaded program (the determinism fixture needs its root
// spelled with the fixture's own import path).
func golden(t *testing.T, name string, analyzer *Analyzer, config func(prog *Program) *Config) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, []string{dir})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	var cfg *Config
	if config != nil {
		cfg = config(prog)
	} else {
		cfg = DefaultConfig()
	}
	res, err := RunAnalyzers(prog, []*Analyzer{analyzer}, cfg)
	if err != nil {
		t.Fatalf("running %s: %v", analyzer.Name, err)
	}
	var b strings.Builder
	for _, d := range res.Diagnostics {
		rel, err := filepath.Rel(dir, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	fmt.Fprintf(&b, "suppressed: %d\n", res.Suppressed)
	got := b.String()

	goldenPath := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (run with -update to create): %v", goldenPath, err)
	}
	if got != string(want) {
		t.Errorf("diagnostics for %s diverge from %s:\n--- got ---\n%s--- want ---\n%s",
			name, goldenPath, got, want)
	}
}

func TestRawLitGolden(t *testing.T) {
	golden(t, "rawlit", RawLitAnalyzer, nil)
}

func TestDroppedErrGolden(t *testing.T) {
	golden(t, "droppederr", DroppedErrAnalyzer, nil)
}

func TestMetricNameGolden(t *testing.T) {
	golden(t, "metricname", MetricNameAnalyzer, nil)
}

func TestHTTPWriteGolden(t *testing.T) {
	golden(t, "httpwrite", HTTPWriteAnalyzer, nil)
}

func TestFaultPointGolden(t *testing.T) {
	golden(t, "faultpoint", FaultPointAnalyzer, nil)
}

func TestDeterminismGolden(t *testing.T) {
	golden(t, "determinism", DeterminismAnalyzer, func(prog *Program) *Config {
		cfg := DefaultConfig()
		if len(prog.Packages) != 1 {
			t.Fatalf("determinism fixture loaded %d packages, want 1", len(prog.Packages))
		}
		cfg.DeterminismRoots = []string{
			"^" + regexp.QuoteMeta(prog.Packages[0].Path) + `\.EmitTable$`,
		}
		return cfg
	})
}

func TestLockHeldGolden(t *testing.T) {
	golden(t, "lockheld", LockHeldAnalyzer, func(prog *Program) *Config {
		cfg := DefaultConfig()
		if len(prog.Packages) != 1 {
			t.Fatalf("lockheld fixture loaded %d packages, want 1", len(prog.Packages))
		}
		cfg.FaultPointFuncs = map[string]int{prog.Packages[0].Path + ".FaultHit": 0}
		return cfg
	})
}

func TestCtxFlowGolden(t *testing.T) {
	golden(t, "ctxflow", CtxFlowAnalyzer, func(prog *Program) *Config {
		cfg := DefaultConfig()
		if len(prog.Packages) != 1 {
			t.Fatalf("ctxflow fixture loaded %d packages, want 1", len(prog.Packages))
		}
		cfg.WithoutCancelAllow = []string{prog.Packages[0].Path + ".DetachAudited"}
		return cfg
	})
}

func TestGoLifecycleGolden(t *testing.T) {
	golden(t, "golifecycle", GoLifecycleAnalyzer, func(prog *Program) *Config {
		cfg := DefaultConfig()
		if len(prog.Packages) != 1 {
			t.Fatalf("golifecycle fixture loaded %d packages, want 1", len(prog.Packages))
		}
		path := prog.Packages[0].Path
		cfg.GoLifecycleRoots = []string{"^" + regexp.QuoteMeta(path) + `\.Serve$`}
		cfg.DetachedGoroutines = []string{path + ".detachedHelper"}
		return cfg
	})
}

func TestAtomicMixGolden(t *testing.T) {
	golden(t, "atomicmix", AtomicMixAnalyzer, nil)
}

// TestRepositoryIsLintClean is the tier-2 gate in test form: the whole
// module must pass every analyzer under the production configuration.
// Every intentional suppression carries a //lint:ignore with a reason,
// so any new finding fails this test with its file:line.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped with -short")
	}
	modDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(modDir, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res, err := RunAnalyzers(prog, Analyzers(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		rel, rerr := filepath.Rel(modDir, d.Pos.Filename)
		if rerr != nil {
			rel = d.Pos.Filename
		}
		t.Errorf("%s:%d:%d: %s: %s", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// TestSuppressionScope pins the directive contract: an ignore covers
// its own line and the line below, names specific analyzers (or "all"),
// and a reason-less directive is itself a diagnostic.
func TestSuppressionScope(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "rawlit"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	// Run with an analyzer set that does NOT include rawlit: the rawlit
	// ignore directives must not suppress droppederr findings (there are
	// none in this fixture), and the malformed directive must still be
	// reported.
	res, err := RunAnalyzers(prog, []*Analyzer{DroppedErrAnalyzer}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed != 0 {
		t.Errorf("rawlit-scoped directives suppressed %d droppederr findings, want 0", res.Suppressed)
	}
	malformed := 0
	for _, d := range res.Diagnostics {
		if d.Analyzer == "ignore" {
			malformed++
		} else {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if malformed != 1 {
		t.Errorf("got %d malformed-directive diagnostics, want 1", malformed)
	}
}
