package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// DeterminismAnalyzer guards the repository's byte-identity surface:
// checkpoint/resume replay, results_pairs.csv, the ROD/correlation
// tables (Eq. 1, Table 2 of the paper), and AIGER serialization must
// reproduce bit for bit given the same config. Inside any function
// statically reachable from a configured emission root it flags
//
//   - iteration over a Go map whose body is order-sensitive (anything
//     beyond collecting keys, writing other maps, or commutative
//     integer accumulation — float accumulation is order-sensitive),
//   - time.Now / time.Since (wall-clock leaks into results), and
//   - the global math/rand source (unseeded, process-global state).
//
// The analysis crosses `go`-statement boundaries: a goroutine spawned
// inside a determinism root (a `go func() {...}()` literal or a
// statically resolved `go helper()`) is itself a root — a parallelized
// emission path inherits the full reproducibility contract, and the
// diagnostics name the spawn so the parallel structure is visible.
//
// The call graph is static: calls through function values, struct
// fields, and interfaces are not followed, so keep emission paths free
// of such indirection or extend the root set.
var DeterminismAnalyzer = &Analyzer{
	Name:         "determinism",
	Doc:          "flags map-order iteration, wall-clock reads, and global randomness reachable from result-emission roots",
	Run:          runDeterminism,
	WholeProgram: true,
}

func runDeterminism(pass *Pass) error {
	var roots []*regexp.Regexp
	for _, pat := range pass.Config.DeterminismRoots {
		re, err := regexp.Compile(pat)
		if err != nil {
			return err
		}
		roots = append(roots, re)
	}
	if len(roots) == 0 {
		return nil
	}
	graph := pass.Prog.graph(pass.Config)

	// Seed the worklist with every function matching a root pattern.
	var worklist []*funcNode
	rootOf := map[*funcNode]string{}
	var all []*funcNode
	for _, node := range graph.nodes {
		all = append(all, node)
	}
	sort.Slice(all, func(i, j int) bool { return QualifiedName(all[i].fn) < QualifiedName(all[j].fn) })
	for _, node := range all {
		name := QualifiedName(node.fn)
		for _, re := range roots {
			if re.MatchString(name) {
				worklist = append(worklist, node)
				rootOf[node] = name
				break
			}
		}
	}

	// BFS over static call edges, remembering which root reached each
	// function (for the diagnostic message).
	for len(worklist) > 0 {
		node := worklist[0]
		worklist = worklist[1:]
		for _, callee := range graph.calleesOf(node) {
			if _, ok := rootOf[callee]; ok {
				continue
			}
			rootOf[callee] = rootOf[node]
			worklist = append(worklist, callee)
		}
	}

	reached := make([]*funcNode, 0, len(rootOf))
	for node := range rootOf {
		reached = append(reached, node)
	}
	sort.Slice(reached, func(i, j int) bool { return QualifiedName(reached[i].fn) < QualifiedName(reached[j].fn) })
	for _, node := range reached {
		checkDeterminism(pass, node, rootOf[node])
	}
	return nil
}

// checkDeterminism scans one reachable function body. Constructs inside
// a goroutine spawned here (a `go func(){...}()` literal) are reported
// with the spawn named: the goroutine is a determinism root of its own,
// so parallelizing an emission path cannot silently shed the contract.
// (`go helper()` spawns are covered by the call-graph BFS — the GoStmt's
// call is a static edge like any other.)
func checkDeterminism(pass *Pass, node *funcNode, root string) {
	info := node.pkg.Info
	baseName := QualifiedName(node.fn)

	// Ranges of function-literal bodies spawned by go statements: a
	// finding inside one is attributed to the goroutine, not just the
	// enclosing function.
	var goLits []*ast.FuncLit
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				goLits = append(goLits, lit)
			}
		}
		return true
	})
	nameAt := func(pos token.Pos) string {
		for _, lit := range goLits {
			if lit.Body.Pos() <= pos && pos <= lit.Body.End() {
				return "goroutine spawned in " + baseName
			}
		}
		return baseName
	}

	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if isMapType(info.TypeOf(s.X)) && !orderInsensitiveBody(info, s.Body) {
				pass.Reportf(s.Pos(),
					"map iteration over %s with an order-sensitive body in %s (reachable from emission root %s): iterate sorted keys to keep emitted results byte-identical",
					types.ExprString(s.X), nameAt(s.Pos()), root)
				return false
			}
		case *ast.CallExpr:
			if fn := calleeOf(info, s); fn != nil {
				switch q := QualifiedName(fn); q {
				case "time.Now", "time.Since":
					pass.Reportf(s.Pos(),
						"call to %s in %s (reachable from emission root %s): wall-clock values make emitted results irreproducible",
						q, nameAt(s.Pos()), root)
				default:
					if fn.Pkg() != nil && isGlobalRandFunc(fn) {
						pass.Reportf(s.Pos(),
							"call to %s in %s (reachable from emission root %s): the global math/rand source is not seeded per run; thread a seeded *rand.Rand instead",
							q, nameAt(s.Pos()), root)
					}
				}
			}
		}
		return true
	})
}

// isGlobalRandFunc reports whether fn is a top-level math/rand (or v2)
// function drawing from the process-global source. Constructors for
// seeded instances are fine.
func isGlobalRandFunc(fn *types.Func) bool {
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // methods on an explicit (seeded) source
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// orderInsensitiveBody reports whether a map-range body is safe under
// arbitrary iteration order: it only collects keys/values into other
// containers or accumulates commutatively.
func orderInsensitiveBody(info *types.Info, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if !orderInsensitiveStmt(info, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return orderInsensitiveAssign(info, s)
	case *ast.IncDecStmt:
		return isIntegerType(info.TypeOf(s.X))
	case *ast.IfStmt:
		if s.Init != nil && !orderInsensitiveStmt(info, s.Init) {
			return false
		}
		if !orderInsensitiveBody(info, s.Body) {
			return false
		}
		if s.Else != nil {
			return orderInsensitiveStmt(info, s.Else)
		}
		return true
	case *ast.BlockStmt:
		return orderInsensitiveBody(info, s)
	case *ast.BranchStmt:
		// continue restarts the loop — safe; break/goto select an
		// arbitrary element — order-sensitive.
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.DeclStmt:
		return true
	default:
		// Emission calls, returns/breaks (which select an arbitrary
		// element), nested loops, sends: all order-sensitive.
		return false
	}
}

// orderInsensitiveAssign accepts: new locals (:=), writes into maps or
// blanks, append-to-self slice growth (collect-then-sort idiom), and
// integer compound accumulation. Float/string accumulation is rejected:
// addition order changes the result.
func orderInsensitiveAssign(info *types.Info, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		return true
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if ident, ok := lhs.(*ast.Ident); ok && ident.Name == "_" {
				continue
			}
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapType(info.TypeOf(idx.X)) {
				continue
			}
			if len(s.Lhs) == len(s.Rhs) && isAppendToSelf(info, lhs, s.Rhs[i]) {
				continue
			}
			return false
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN:
		return len(s.Lhs) == 1 && isIntegerType(info.TypeOf(s.Lhs[0]))
	default:
		return false
	}
}

// isAppendToSelf matches "x = append(x, ...)".
func isAppendToSelf(info *types.Info, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	if obj := info.Uses[fun]; obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return false
		}
	}
	return types.ExprString(lhs) == types.ExprString(call.Args[0])
}
