package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeldAnalyzer flags a sync.Mutex/RWMutex held across a blocking
// operation. A lock-then-block region is the cluster's worst failure
// shape: every request hashing to the same shard queues behind one
// stalled peer round trip or fsync, tail latency collapses, and — when
// the blocked operation itself needs the lock to make progress (a
// channel handed to a worker that logs under the same mutex) — the
// node deadlocks outright. The serving path's discipline is therefore
// "compute under the lock, wait outside it", and this analyzer enforces
// it interprocedurally:
//
//   - blocking is classified by the shared call-graph summaries
//     (callgraph.go): channel sends/receives, selects without default,
//     network round trips, file-system syscalls, time.Sleep,
//     WaitGroup/Cond waits, and every fault-injection point (each one
//     is a latency-injection site under chaos schedules), propagated
//     bottom-up through module-internal calls;
//   - additionally, calling a function that (transitively) re-acquires
//     the same mutex on the same receiver is reported as a self-
//     deadlock — sync.Mutex is not reentrant.
//
// A lock region runs from a Lock/RLock call to the positionally nearest
// Unlock/RUnlock of the same receiver expression (or to the end of the
// function when the unlock is deferred). The analysis is path-
// insensitive by position: a region that conditionally unlocks early is
// over-approximated, so the rare intentional hold (a logger whose whole
// purpose is serializing writes) carries a //lint:ignore rationale.
// Function literals inside a region are skipped — a closure built under
// a lock usually runs after it is released (worker pools, deferred
// cleanup); blocking at the build site would be reported where the
// closure's body actually executes.
var LockHeldAnalyzer = &Analyzer{
	Name:         "lockheld",
	Doc:          "flags mutexes held across blocking operations (I/O, channels, waits, fault points) and self-deadlocking re-acquisition",
	Run:          runLockHeld,
	WholeProgram: true,
}

// lockRegion is one Lock()..Unlock() span inside a function body.
type lockRegion struct {
	recv     string // receiver expression text, e.g. "s.mu"
	rootVar  types.Object
	normKey  string // normalized key, e.g. "(pkg.Type).mu"
	lockPos  token.Pos
	endPos   token.Pos
	deferred bool
	rlocked  bool
}

func runLockHeld(pass *Pass) error {
	graph := pass.Prog.graph(pass.Config)
	for _, node := range graph.sortedNodes() {
		checkLockHeld(pass, graph, node)
	}
	return nil
}

func checkLockHeld(pass *Pass, graph *callGraph, node *funcNode) {
	info := node.pkg.Info
	regions := lockRegions(info, node)
	if len(regions) == 0 {
		return
	}
	for _, reg := range regions {
		scanLockRegion(pass, graph, node, reg)
	}
}

// lockRegions collects every Lock/RLock in the body with its matching
// region end: the positionally nearest same-receiver Unlock/RUnlock, or
// the end of the body when the unlock is deferred (or missing).
func lockRegions(info *types.Info, node *funcNode) []lockRegion {
	type unlockSite struct {
		recv     string
		pos      token.Pos
		deferred bool
	}
	var locks []lockRegion
	var unlocks []unlockSite
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			if method, recv := mutexMethod(info, s.Call); method == "Unlock" || method == "RUnlock" {
				unlocks = append(unlocks, unlockSite{recv: types.ExprString(recv), pos: s.Pos(), deferred: true})
				return false
			}
		case *ast.CallExpr:
			method, recv := mutexMethod(info, s)
			switch method {
			case "Lock", "RLock":
				reg := lockRegion{
					recv:    types.ExprString(recv),
					rootVar: rootObject(info, recv),
					normKey: normalizeLockKey(info, recv, node),
					lockPos: s.Pos(),
					rlocked: method == "RLock",
				}
				locks = append(locks, reg)
			case "Unlock", "RUnlock":
				unlocks = append(unlocks, unlockSite{recv: types.ExprString(recv), pos: s.Pos()})
			}
		}
		return true
	})
	for i := range locks {
		end := node.decl.Body.End()
		deferred := true
		for _, u := range unlocks {
			if u.recv != locks[i].recv || u.pos <= locks[i].lockPos {
				continue
			}
			if u.deferred {
				continue // deferred unlock runs at function exit
			}
			if u.pos < end {
				end = u.pos
				deferred = false
			}
		}
		locks[i].endPos = end
		locks[i].deferred = deferred
	}
	return locks
}

// rootObject resolves the base identifier of a (possibly nested)
// selector expression to its object, or nil.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.Ident:
			return info.Uses[e]
		default:
			return nil
		}
	}
}

// scanLockRegion reports blocking operations between reg.lockPos and
// reg.endPos.
func scanLockRegion(pass *Pass, graph *callGraph, node *funcNode, reg lockRegion) {
	info := node.pkg.Info
	fname := QualifiedName(node.fn)
	inRegion := func(pos token.Pos) bool { return pos > reg.lockPos && pos < reg.endPos }
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"%s held across %s in %s (locked at %s): waiting under a lock serializes every contender behind the slowest operation — move the wait outside the critical section",
			reg.recv, what, fname, pass.posString(reg.lockPos))
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// Closures run elsewhere; blocking inside one is not "under"
			// an enclosing lock. But a region whose Lock lives inside
			// this literal is scanned in place.
			if reg.lockPos > s.Pos() && reg.lockPos < s.End() {
				return true
			}
			return false
		case *ast.SendStmt:
			if inRegion(s.Pos()) {
				report(s.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && inRegion(s.Pos()) {
				report(s.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if inRegion(s.Pos()) {
				if t := info.TypeOf(s.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						report(s.Pos(), "range over channel")
					}
				}
			}
		case *ast.SelectStmt:
			if selectHasDefault(s) {
				for _, cl := range s.Body.List {
					for _, st := range cl.(*ast.CommClause).Body {
						ast.Inspect(st, walk)
					}
				}
				return false
			}
			if inRegion(s.Pos()) {
				report(s.Pos(), "select without default")
			}
		case *ast.CallExpr:
			if !inRegion(s.Pos()) {
				return true
			}
			fn := calleeOf(info, s)
			if fn == nil {
				return true
			}
			q := QualifiedName(fn)
			if cls, ok := directBlockCalls[q]; ok {
				report(s.Pos(), "call to "+q+" ("+cls.String()+")")
				return true
			}
			if _, ok := pass.Config.FaultPointFuncs[q]; ok {
				report(s.Pos(), "fault-injection point "+q+" (latency-injectable under chaos schedules)")
				return true
			}
			callee := graph.nodes[fn]
			if callee == nil || callee.summary == nil {
				return true
			}
			if callee.summary.acquires[reg.normKey] && sameLockInstance(info, s, reg) {
				pass.Reportf(s.Pos(),
					"call to %s re-acquires %s already held in %s (locked at %s): sync.Mutex is not reentrant — this self-deadlocks",
					q, reg.recv, fname, pass.posString(reg.lockPos))
				return true
			}
			if callee.summary.blocks != blockNone {
				report(s.Pos(), "call to "+q+" which blocks on "+callee.summary.blocks.String())
			}
		}
		return true
	}
	ast.Inspect(node.decl.Body, walk)
}

// sameLockInstance guards the self-deadlock report against distinct
// instances sharing a type: the callee must be invoked on the same
// variable the held mutex is rooted at (s.mu held, s.helper() called).
func sameLockInstance(info *types.Info, call *ast.CallExpr, reg lockRegion) bool {
	if reg.rootVar == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return rootObject(info, sel.X) == reg.rootVar
}
