package lint

import (
	"go/ast"
)

// CtxFlowAnalyzer protects the cancellation guarantees the harness
// (PR 2) and the cluster (PR 7) depend on: every convergence loop,
// peer round trip, and singleflight wait must be abortable from the
// request that started it, or SIGTERM drains and client deadlines stop
// meaning anything. Three rules, all summary-driven (callgraph.go):
//
//  1. context.Background()/context.TODO() is flagged outside package
//     main: minting a fresh root context severs the caller's
//     cancellation chain. Inside a function that already receives a
//     context.Context the message is sharper — the ctx to thread is
//     right there. Legitimate roots (compatibility wrappers, daemon
//     base contexts) carry a //lint:ignore rationale, which is the
//     audit trail.
//
//  2. context.WithoutCancel detaches work from its caller on purpose;
//     every such site must be listed in Config.WithoutCancelAllow.
//     The allowlist names the enclosing function, so a new detachment
//     point is a config diff reviewed like any invariant change.
//
//  3. A function that receives a ctx but calls a module-internal
//     function that (per its summary) blocks on an unbounded wait —
//     channel ops, network, sleeps, WaitGroup/Cond waits — without the
//     callee accepting a context is flagged: that wait is outside the
//     cancellation domain. Deferred calls are exempt (cleanup blocks
//     briefly by design); file I/O and fault points don't trigger this
//     rule (they are bounded by the disk, not by another goroutine).
var CtxFlowAnalyzer = &Analyzer{
	Name:         "ctxflow",
	Doc:          "flags severed context chains: Background/TODO outside main, unaudited WithoutCancel, and uncancellable blocking calls from ctx-carrying functions",
	Run:          runCtxFlow,
	WholeProgram: true,
}

func runCtxFlow(pass *Pass) error {
	graph := pass.Prog.graph(pass.Config)
	allow := map[string]bool{}
	for _, name := range pass.Config.WithoutCancelAllow {
		allow[name] = true
	}
	for _, node := range graph.sortedNodes() {
		checkCtxFlow(pass, graph, node, allow)
	}
	return nil
}

func checkCtxFlow(pass *Pass, graph *callGraph, node *funcNode, withoutCancelAllow map[string]bool) {
	info := node.pkg.Info
	fname := QualifiedName(node.fn)
	isMain := node.pkg.Types.Name() == "main"
	hasCtx := node.summary != nil && node.summary.hasCtxParam

	// Positions inside deferred calls are exempt from rule 3.
	var deferRanges [][2]int
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferRanges = append(deferRanges, [2]int{int(d.Pos()), int(d.End())})
		}
		return true
	})
	inDefer := func(pos int) bool {
		for _, r := range deferRanges {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		switch QualifiedName(fn) {
		case "context.Background", "context.TODO":
			switch {
			case hasCtx:
				pass.Reportf(call.Pos(),
					"call to %s in %s, which already receives a context.Context: minting a fresh root severs the caller's cancellation chain — thread the ctx parameter instead",
					fn.Name(), fname)
			case !isMain:
				pass.Reportf(call.Pos(),
					"call to %s in %s outside package main: accept a context.Context from the caller so this work stays cancelable (legitimate roots carry a //lint:ignore rationale)",
					fn.Name(), fname)
			}
			return true
		case "context.WithoutCancel":
			if !withoutCancelAllow[fname] {
				pass.Reportf(call.Pos(),
					"context.WithoutCancel in %s is not in the audited allowlist (Config.WithoutCancelAllow): detaching from the caller's cancellation is an invariant change — audit it or derive from the caller's ctx",
					fname)
			}
			return true
		}
		if !hasCtx {
			return true
		}
		callee := graph.nodes[fn]
		if callee == nil || callee.summary == nil {
			return true
		}
		sum := callee.summary
		if !sum.blocks.unboundedWait() || sum.hasCtxParam {
			return true
		}
		if inDefer(int(call.Pos())) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s receives a context.Context but calls %s, which blocks on %s and accepts no context: the wait cannot be canceled — thread the ctx into the callee (first blocking site: %s)",
			fname, QualifiedName(fn), sum.blocks.String(), pass.posString(sum.firstSite.pos))
		return true
	})
}
