package lint

// Config parameterizes the analyzers. DefaultConfig encodes this
// repository's invariants; tests substitute fixture-local settings.
type Config struct {
	// RawLitTypes maps a fully-qualified literal type name to the
	// import paths allowed to do raw bit arithmetic on it (the type's
	// defining package plus any codec that must speak the encoding).
	RawLitTypes map[string][]string

	// DeterminismRoots are regular expressions over qualified function
	// names (see QualifiedName). Every function statically reachable
	// from a matching root is required to be reproducible: no map-order
	// iteration with order-sensitive bodies, no time.Now, no unseeded
	// global randomness.
	DeterminismRoots []string

	// MetricNameFuncs lists qualified callables whose string argument
	// (by index) names a telemetry instrument. Names must be compile-
	// time constants in snake_case segments; passing a bare identifier
	// through a helper is allowed (the helper's own call sites are
	// checked instead).
	MetricNameFuncs map[string]int

	// MetricNamePattern validates constant metric names. Segments are
	// snake_case, separated by '/'.
	MetricNamePattern string

	// FaultPointFuncs lists qualified callables whose string argument
	// (by index) names a fault-injection point. Names must be compile-
	// time constants matching FaultPointPattern, and each name must be
	// instrumented at exactly one call site program-wide; the defining
	// package's own pass-through calls are exempt.
	FaultPointFuncs map[string]int

	// FaultPointPattern validates constant fault point names.
	FaultPointPattern string

	// WithoutCancelAllow lists qualified function names permitted to
	// call context.WithoutCancel. Detaching work from its caller's
	// cancellation is an invariant change; each entry is an audited
	// decision (see ctxflow.go).
	WithoutCancelAllow []string

	// GoLifecycleRoots are regular expressions over qualified function
	// names. Every `go` statement statically reachable from a matching
	// root must carry a lifecycle edge: a WaitGroup join, a context
	// reference, or a channel signal (see golifecycle.go).
	GoLifecycleRoots []string

	// DetachedGoroutines lists qualified function names whose goroutines
	// are deliberately fire-and-forget: either the spawning function or
	// the spawned named function. Each entry is an audited exception to
	// the golifecycle rule.
	DetachedGoroutines []string
}

// DefaultConfig returns the repository's production lint configuration.
func DefaultConfig() *Config {
	return &Config{
		RawLitTypes: map[string][]string{
			// The AIGER codec necessarily manipulates the on-disk
			// variable/complement encoding, which is identical to the
			// in-memory one.
			"repro/internal/aig.Lit": {"repro/internal/aig", "repro/internal/aiger"},
			"repro/internal/mig.Lit": {"repro/internal/mig"},
			"repro/internal/xag.Lit": {"repro/internal/xag"},
		},
		DeterminismRoots: []string{
			// CSV + checkpoint emission: the byte-identity surface of
			// checkpoint/resume.
			`^repro/internal/harness\.WriteCSV$`,
			`^\(repro/internal/harness\.Checkpointer\)\.Append$`,
			// Table/figure renderers behind the paper's artifacts.
			`^\(repro/internal/harness\.Result\)\.(TableI|TableII|Figure3|Figure3Plot|FigureScatter|CategoryTable|CategorySummary|FailureSummary)$`,
			`^repro/internal/harness\.(Figure2|StageSummary)$`,
			// Telemetry exposition and the stage rollup read by
			// BENCH_pipeline.json.
			`^\(repro/internal/telemetry\.Registry\)\.(WritePrometheus|WriteJSON|SummaryTable|SpanSeconds)$`,
			// AIGER serialization: optimized-AIG outputs must be stable.
			`^repro/internal/aiger\.(WriteASCII|WriteBinary|WriteFile)$`,
			// Operator CLI emission: aigw health/status output is
			// diffed across runs (the rolling-restart CI smoke does
			// exactly that), so it must be byte-stable.
			`^repro/cmd/aigw\.(printHealth|printStatus)$`,
		},
		MetricNameFuncs: map[string]int{
			"repro/internal/telemetry.Add":                   0,
			"repro/internal/telemetry.SetGauge":              0,
			"repro/internal/telemetry.Observe":               0,
			"repro/internal/telemetry.StartSpan":             0,
			"(repro/internal/telemetry.Registry).Counter":    0,
			"(repro/internal/telemetry.Registry).Gauge":      0,
			"(repro/internal/telemetry.Registry).Histogram":  0,
			"(repro/internal/telemetry.Registry).StartSpan":  0,
			"(repro/internal/telemetry.Registry).RecordSpan": 0,
			"(repro/internal/telemetry.Span).StartSpan":      0,
			// Trace span and attribute names share the metric namespace:
			// span names feed RecordSpan histograms and attribute keys
			// are the grep surface of /v1/debug/traces output.
			"repro/internal/telemetry/trace.Start":        1,
			"repro/internal/telemetry/trace.AddEvent":     1,
			"repro/internal/telemetry/trace.A":            0,
			"(repro/internal/telemetry/trace.Span).Attr":  0,
			"(repro/internal/telemetry/trace.Span).Event": 0,
			// Per-peer cluster instruments are assembled from a dynamic
			// member ID plus a constant suffix; the suffix is the part
			// that must stay snake_case and greppable.
			"repro/internal/cluster.peerMetricName": 1,
		},
		MetricNamePattern: `^[a-z][a-z0-9_]*(/[a-z][a-z0-9_]*)*$`,
		FaultPointFuncs: map[string]int{
			"repro/internal/faultinject.Hit":        0,
			"repro/internal/faultinject.HitCtx":     1,
			"repro/internal/faultinject.Delay":      0,
			"repro/internal/faultinject.WrapWriter": 0,
		},
		FaultPointPattern: `^[a-z][a-z0-9_]*(/[a-z][a-z0-9_]*)*$`,
		WithoutCancelAllow: []string{
			// Replication and intern fan-out outlive the triggering
			// request on purpose (a canceled client must not abort a
			// half-replicated write); both are bounded by the node
			// lifetime via baseCtx instead.
			"(repro/internal/cluster.Node).replicateResult",
			"(repro/internal/cluster.Node).onIntern",
		},
		GoLifecycleRoots: []string{
			// The serving surface: daemon/CLI entry points, the service
			// layer, and the cluster node. Goroutines reachable from
			// these must be joinable or cancelable, or Drain/Close leak
			// live work.
			`^repro/cmd/`,
			`^repro/internal/service\.`,
			`^repro/internal/cluster\.`,
		},
		DetachedGoroutines: []string{
			// Registry.Serve hands the listener loop to net/http; its
			// lifecycle is owned by the *http.Server (Shutdown/Close),
			// not by a channel or WaitGroup visible at the spawn site.
			"(repro/internal/telemetry.Registry).Serve",
		},
	}
}
