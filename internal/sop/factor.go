package sop

import (
	"fmt"
	"strings"

	"repro/internal/tt"
)

// ExprKind discriminates factored-form expression nodes.
type ExprKind int

// Expression node kinds.
const (
	ExprConst0 ExprKind = iota
	ExprConst1
	ExprLit
	ExprAnd
	ExprOr
)

// Expr is a factored-form expression tree over cover variables. And/Or
// nodes are n-ary.
type Expr struct {
	Kind ExprKind
	Var  int  // for ExprLit
	Pos  bool // for ExprLit
	Args []*Expr
}

// NumLits counts literal leaves, the conventional factored-form cost.
func (e *Expr) NumLits() int {
	switch e.Kind {
	case ExprLit:
		return 1
	case ExprAnd, ExprOr:
		n := 0
		for _, a := range e.Args {
			n += a.NumLits()
		}
		return n
	default:
		return 0
	}
}

// TT evaluates the expression into a truth table over n variables.
func (e *Expr) TT(n int) tt.TT {
	switch e.Kind {
	case ExprConst0:
		return tt.Const(n, false)
	case ExprConst1:
		return tt.Const(n, true)
	case ExprLit:
		v := tt.Var(e.Var, n)
		if !e.Pos {
			v = v.Not()
		}
		return v
	case ExprAnd:
		t := tt.Const(n, true)
		for _, a := range e.Args {
			t = t.And(a.TT(n))
		}
		return t
	case ExprOr:
		t := tt.Const(n, false)
		for _, a := range e.Args {
			t = t.Or(a.TT(n))
		}
		return t
	}
	panic("sop: invalid expression kind")
}

func (e *Expr) String() string {
	switch e.Kind {
	case ExprConst0:
		return "0"
	case ExprConst1:
		return "1"
	case ExprLit:
		if e.Pos {
			return fmt.Sprintf("x%d", e.Var)
		}
		return fmt.Sprintf("!x%d", e.Var)
	case ExprAnd:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		return "(" + strings.Join(parts, " & ") + ")"
	case ExprOr:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		return "(" + strings.Join(parts, " | ") + ")"
	}
	return "?"
}

func lit(v int, pos bool) *Expr { return &Expr{Kind: ExprLit, Var: v, Pos: pos} }

func mkAnd(args ...*Expr) *Expr {
	var flat []*Expr
	for _, a := range args {
		switch a.Kind {
		case ExprConst1:
		case ExprConst0:
			return &Expr{Kind: ExprConst0}
		case ExprAnd:
			flat = append(flat, a.Args...)
		default:
			flat = append(flat, a)
		}
	}
	switch len(flat) {
	case 0:
		return &Expr{Kind: ExprConst1}
	case 1:
		return flat[0]
	}
	return &Expr{Kind: ExprAnd, Args: flat}
}

func mkOr(args ...*Expr) *Expr {
	var flat []*Expr
	for _, a := range args {
		switch a.Kind {
		case ExprConst0:
		case ExprConst1:
			return &Expr{Kind: ExprConst1}
		case ExprOr:
			flat = append(flat, a.Args...)
		default:
			flat = append(flat, a)
		}
	}
	switch len(flat) {
	case 0:
		return &Expr{Kind: ExprConst0}
	case 1:
		return flat[0]
	}
	return &Expr{Kind: ExprOr, Args: flat}
}

func cubeExpr(c tt.Cube, nvars int) *Expr {
	var lits []*Expr
	for v := 0; v < nvars; v++ {
		if c.HasVar(v) {
			lits = append(lits, lit(v, c.Phase(v)))
		}
	}
	return mkAnd(lits...)
}

// Factor converts the cover into a factored form using kernel-based
// "good factor" with a quick-factor fallback, in the style of MIS/SIS.
func Factor(c Cover) *Expr {
	if len(c.Cubes) == 0 {
		return &Expr{Kind: ExprConst0}
	}
	for _, cube := range c.Cubes {
		if cube.Mask == 0 {
			return &Expr{Kind: ExprConst1} // tautology cube absorbs all
		}
	}
	if len(c.Cubes) == 1 {
		return cubeExpr(c.Cubes[0], c.NumVars)
	}
	// Pull out the common cube first.
	free, cc := c.MakeCubeFree()
	var prefix *Expr = &Expr{Kind: ExprConst1}
	if cc.Mask != 0 {
		prefix = cubeExpr(cc, c.NumVars)
	}
	body := factorCubeFree(free)
	return mkAnd(prefix, body)
}

// factorCubeFree factors a cube-free cover with at least two cubes.
func factorCubeFree(c Cover) *Expr {
	if len(c.Cubes) == 1 {
		return cubeExpr(c.Cubes[0], c.NumVars)
	}
	if len(c.Cubes) == 0 {
		return &Expr{Kind: ExprConst0}
	}
	if d, ok := bestKernelDivisor(c); ok {
		quot, rem := c.Divide(d)
		if len(quot.Cubes) > 0 && len(quot.Cubes)*len(d.Cubes) > len(quot.Cubes)+len(d.Cubes)-1 {
			return mkOr(mkAnd(Factor(d), Factor(quot)), Factor(rem))
		}
	}
	// Quick factor: divide by the most frequent literal.
	if l, ok := c.bestLiteral(); ok {
		quot, rem := c.DivideByLiteral(l.variable(), l.positive())
		if len(quot.Cubes) > 0 {
			return mkOr(mkAnd(lit(l.variable(), l.positive()), Factor(quot)), Factor(rem))
		}
	}
	// No sharing at all: plain OR of cubes.
	args := make([]*Expr, len(c.Cubes))
	for i, cube := range c.Cubes {
		args[i] = cubeExpr(cube, c.NumVars)
	}
	return mkOr(args...)
}

// bestKernelDivisor picks the kernel giving the best literal savings when
// used as a divisor. Kernels identical to the whole cover are skipped
// (dividing by them makes no progress).
func bestKernelDivisor(c Cover) (Cover, bool) {
	kernels := c.Kernels()
	const maxKernels = 64
	if len(kernels) > maxKernels {
		kernels = kernels[:maxKernels]
	}
	bestGain := 0
	var best Cover
	found := false
	selfKey := coverFingerprint(tt.Cube{}, c)
	for _, k := range kernels {
		if len(k.Cover.Cubes) == len(c.Cubes) && coverFingerprint(tt.Cube{}, k.Cover) == selfKey {
			continue
		}
		quot, rem := c.Divide(k.Cover)
		if len(quot.Cubes) == 0 {
			continue
		}
		// Literal savings of writing c = D*Q + R instead of flat.
		gain := c.NumLits() - (k.Cover.NumLits() + quot.NumLits() + rem.NumLits())
		if gain > bestGain {
			bestGain, best, found = gain, k.Cover, true
		}
	}
	return best, found
}
