// Package sop manipulates sum-of-products cube covers: two-level
// minimization in the style of espresso (expand / irredundant / reduce),
// algebraic division, kernel extraction, and multi-level factoring. It is
// the substrate behind the SOP-based synthesis recipes and the refactoring
// optimization.
package sop

import (
	"sort"
	"strings"

	"repro/internal/tt"
)

// Cover is a set of cubes over a fixed number of variables, denoting the
// OR of its cubes.
type Cover struct {
	NumVars int
	Cubes   []tt.Cube
}

// NewCover wraps cubes into a cover.
func NewCover(nvars int, cubes []tt.Cube) Cover {
	return Cover{NumVars: nvars, Cubes: cubes}
}

// FromTT computes an initial (ISOP) cover of f.
func FromTT(f tt.TT) Cover {
	return Cover{NumVars: f.NumVars(), Cubes: tt.IsopOf(f)}
}

// TT expands the cover into a truth table.
func (c Cover) TT() tt.TT { return tt.CoverTT(c.NumVars, c.Cubes) }

// NumCubes returns the number of product terms.
func (c Cover) NumCubes() int { return len(c.Cubes) }

// NumLits returns the total literal count, the usual two-level cost.
func (c Cover) NumLits() int {
	n := 0
	for _, cube := range c.Cubes {
		n += cube.NumLits()
	}
	return n
}

// Clone returns a deep copy.
func (c Cover) Clone() Cover {
	return Cover{NumVars: c.NumVars, Cubes: append([]tt.Cube(nil), c.Cubes...)}
}

func (c Cover) String() string {
	parts := make([]string, len(c.Cubes))
	for i, cube := range c.Cubes {
		parts[i] = cube.String()
	}
	return strings.Join(parts, " + ")
}

// cubeTT caches cube truth tables during minimization.
type cubeTTCache struct {
	nvars int
	m     map[tt.Cube]tt.TT
}

func newCubeTTCache(nvars int) *cubeTTCache {
	return &cubeTTCache{nvars: nvars, m: make(map[tt.Cube]tt.TT)}
}

func (cc *cubeTTCache) get(c tt.Cube) tt.TT {
	if t, ok := cc.m[c]; ok {
		return t
	}
	t := c.TT(cc.nvars)
	cc.m[c] = t
	return t
}

// Minimize runs an espresso-style expand / irredundant / reduce loop on
// the onset f with don't-care set dc (may be the zero-variable table
// tt.New(n) for none), returning a prime, irredundant cover. The loop
// stops when a full round fails to improve the literal count.
func Minimize(f, dc tt.TT) Cover {
	n := f.NumVars()
	on := f.AndNot(dc)
	off := f.Or(dc).Not()
	cover := Cover{NumVars: n, Cubes: tt.Isop(on, f.Or(dc))}
	cache := newCubeTTCache(n)

	best := cover.Clone()
	bestCost := cover.cost()
	for round := 0; round < 8; round++ {
		cover = cover.expand(off, cache)
		cover = cover.irredundant(on, cache)
		if cost := cover.cost(); cost < bestCost {
			best, bestCost = cover.Clone(), cost
		} else {
			break
		}
		cover = cover.reduce(on, cache)
	}
	return best
}

// MinimizeTT is Minimize with an empty don't-care set.
func MinimizeTT(f tt.TT) Cover { return Minimize(f, tt.New(f.NumVars())) }

// cost orders covers by cube count, then literal count.
func (c Cover) cost() int { return c.NumCubes()<<16 + c.NumLits() }

// expand lifts every cube to a prime implicant against the offset: each
// literal whose removal keeps the cube disjoint from off is dropped.
// Cubes that become covered by earlier expanded cubes are removed.
func (c Cover) expand(off tt.TT, cache *cubeTTCache) Cover {
	out := Cover{NumVars: c.NumVars}
	covered := tt.New(c.NumVars)
	// Expand larger cubes first: they are more likely to absorb others.
	order := make([]tt.Cube, len(c.Cubes))
	copy(order, c.Cubes)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].NumLits() < order[j].NumLits()
	})
	for _, cube := range order {
		// Skip cubes already covered by the expanded prefix.
		if cache.get(cube).AndNot(covered).IsConst0() {
			continue
		}
		for v := 0; v < c.NumVars; v++ {
			if !cube.HasVar(v) {
				continue
			}
			cand := cube
			cand.Mask &^= 1 << uint(v)
			cand.Val &^= 1 << uint(v)
			if cache.get(cand).And(off).IsConst0() {
				cube = cand
			}
		}
		out.Cubes = append(out.Cubes, cube)
		covered = covered.Or(cache.get(cube))
	}
	return out
}

// irredundant removes cubes whose onset minterms are covered by the rest.
func (c Cover) irredundant(on tt.TT, cache *cubeTTCache) Cover {
	keep := append([]tt.Cube(nil), c.Cubes...)
	// Try removing in increasing size order (small cubes first).
	sort.SliceStable(keep, func(i, j int) bool {
		return keep[i].NumLits() > keep[j].NumLits()
	})
	for i := 0; i < len(keep); {
		rest := tt.New(c.NumVars)
		for j, cube := range keep {
			if j != i {
				rest = rest.Or(cache.get(cube))
			}
		}
		if on.AndNot(rest).IsConst0() {
			keep = append(keep[:i], keep[i+1:]...)
		} else {
			i++
		}
	}
	return Cover{NumVars: c.NumVars, Cubes: keep}
}

// reduce shrinks each cube to the smallest cube covering the onset
// minterms only it covers, enabling different expansions next round.
func (c Cover) reduce(on tt.TT, cache *cubeTTCache) Cover {
	out := Cover{NumVars: c.NumVars}
	for i, cube := range c.Cubes {
		rest := tt.New(c.NumVars)
		for j, other := range c.Cubes {
			if j != i {
				rest = rest.Or(cache.get(other))
			}
		}
		essential := cache.get(cube).And(on).AndNot(rest)
		if essential.IsConst0() {
			// Fully overlapped; keep as-is (irredundant will handle it).
			out.Cubes = append(out.Cubes, cube)
			continue
		}
		out.Cubes = append(out.Cubes, smallestCubeContaining(essential, cube))
	}
	return out
}

// smallestCubeContaining returns the smallest cube containing set that is
// itself contained in the bounding cube bound (set must imply bound).
func smallestCubeContaining(set tt.TT, bound tt.Cube) tt.Cube {
	out := tt.Cube{}
	for v := 0; v < set.NumVars(); v++ {
		c0 := set.Cofactor(v, true).IsConst0()  // no minterm with v=1
		c1 := set.Cofactor(v, false).IsConst0() // no minterm with v=0
		switch {
		case c0 && !c1:
			out = out.WithLit(v, false)
		case c1 && !c0:
			out = out.WithLit(v, true)
		}
	}
	return out
}

// --- Algebraic structure: kernels, division, factoring -----------------

// litIndex encodes a literal as 2*var + (negative ? 1 : 0).
type litIndex int

func litOf(v int, positive bool) litIndex {
	l := litIndex(2 * v)
	if !positive {
		l++
	}
	return l
}

func (l litIndex) variable() int  { return int(l) / 2 }
func (l litIndex) positive() bool { return l%2 == 0 }

// cubeHasLit reports whether the cube contains the literal.
func cubeHasLit(c tt.Cube, l litIndex) bool {
	return c.HasVar(l.variable()) && c.Phase(l.variable()) == l.positive()
}

// cubeRemoveLit drops the literal from the cube.
func cubeRemoveLit(c tt.Cube, l litIndex) tt.Cube {
	v := uint(l.variable())
	c.Mask &^= 1 << v
	c.Val &^= 1 << v
	return c
}

// litCounts returns how many cubes contain each literal.
func (c Cover) litCounts() map[litIndex]int {
	counts := make(map[litIndex]int)
	for _, cube := range c.Cubes {
		for v := 0; v < c.NumVars; v++ {
			if cube.HasVar(v) {
				counts[litOf(v, cube.Phase(v))]++
			}
		}
	}
	return counts
}

// DivideByLiteral computes the algebraic quotient and remainder of the
// cover by a single literal.
func (c Cover) DivideByLiteral(v int, positive bool) (quot, rem Cover) {
	l := litOf(v, positive)
	quot = Cover{NumVars: c.NumVars}
	rem = Cover{NumVars: c.NumVars}
	for _, cube := range c.Cubes {
		if cubeHasLit(cube, l) {
			quot.Cubes = append(quot.Cubes, cubeRemoveLit(cube, l))
		} else {
			rem.Cubes = append(rem.Cubes, cube)
		}
	}
	return quot, rem
}

// cubeContains reports whether cube a contains (as a product) all
// literals of cube b.
func cubeContainsCube(a, b tt.Cube) bool {
	// every literal of b appears in a.
	if b.Mask&^a.Mask != 0 {
		return false
	}
	return (a.Val^b.Val)&b.Mask == 0
}

// cubeDiff removes from a all literals of b (assumes containment checked).
func cubeDiff(a, b tt.Cube) tt.Cube {
	a.Mask &^= b.Mask
	a.Val &^= b.Mask
	return a
}

// Divide computes the weak algebraic division c / d: the quotient is the
// largest cover q with q*d + r = c where every cube of q*d appears in c.
func (c Cover) Divide(d Cover) (quot, rem Cover) {
	if len(d.Cubes) == 0 {
		return Cover{NumVars: c.NumVars}, c.Clone()
	}
	// Quotient candidates from dividing by the first divisor cube.
	var candidates []tt.Cube
	for _, cube := range c.Cubes {
		if cubeContainsCube(cube, d.Cubes[0]) {
			candidates = append(candidates, cubeDiff(cube, d.Cubes[0]))
		}
	}
	// Keep candidates that work for every divisor cube.
	var quotCubes []tt.Cube
	cubeSet := make(map[tt.Cube]bool, len(c.Cubes))
	for _, cube := range c.Cubes {
		cubeSet[cube] = true
	}
	for _, q := range candidates {
		ok := true
		for _, dc := range d.Cubes {
			prod, valid := cubeProduct(q, dc)
			if !valid || !cubeSet[prod] {
				ok = false
				break
			}
		}
		if ok {
			quotCubes = append(quotCubes, q)
		}
	}
	quot = Cover{NumVars: c.NumVars, Cubes: quotCubes}
	// Remainder: cubes of c not produced by quot*d.
	produced := make(map[tt.Cube]bool)
	for _, q := range quotCubes {
		for _, dc := range d.Cubes {
			if prod, valid := cubeProduct(q, dc); valid {
				produced[prod] = true
			}
		}
	}
	rem = Cover{NumVars: c.NumVars}
	for _, cube := range c.Cubes {
		if !produced[cube] {
			rem.Cubes = append(rem.Cubes, cube)
		}
	}
	return quot, rem
}

// cubeProduct multiplies two cubes; invalid when they clash (x and !x).
func cubeProduct(a, b tt.Cube) (tt.Cube, bool) {
	shared := a.Mask & b.Mask
	if (a.Val^b.Val)&shared != 0 {
		return tt.Cube{}, false
	}
	return tt.Cube{Mask: a.Mask | b.Mask, Val: a.Val | b.Val}, true
}

// Kernel is a cube-free quotient of the cover by a cube (its co-kernel).
type Kernel struct {
	CoKernel tt.Cube
	Cover    Cover
}

// commonCube returns the largest cube dividing every cube of the cover:
// the literals present in all cubes with consistent polarity.
func (c Cover) commonCube() tt.Cube {
	if len(c.Cubes) == 0 {
		return tt.Cube{}
	}
	common := c.Cubes[0]
	for _, cube := range c.Cubes[1:] {
		mask := common.Mask & cube.Mask &^ (common.Val ^ cube.Val)
		common.Mask = mask
		common.Val &= mask
	}
	return common
}

// IsCubeFree reports whether no single literal divides every cube.
func (c Cover) IsCubeFree() bool {
	return len(c.Cubes) > 0 && c.commonCube().Mask == 0
}

// MakeCubeFree divides out the common cube.
func (c Cover) MakeCubeFree() (Cover, tt.Cube) {
	cc := c.commonCube()
	if cc.Mask == 0 {
		return c.Clone(), cc
	}
	out := Cover{NumVars: c.NumVars}
	for _, cube := range c.Cubes {
		out.Cubes = append(out.Cubes, cubeDiff(cube, cc))
	}
	return out, cc
}

// coverFingerprint hashes a cover (as a cube multiset, order-independent)
// together with a co-kernel cube. Used to deduplicate kernels cheaply:
// formatting covers as strings dominated whole-experiment CPU profiles.
func coverFingerprint(co tt.Cube, cov Cover) uint64 {
	cubes := make([]uint64, len(cov.Cubes))
	for i, c := range cov.Cubes {
		cubes[i] = uint64(c.Mask)<<32 | uint64(c.Val)
	}
	sort.Slice(cubes, func(i, j int) bool { return cubes[i] < cubes[j] })
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(co.Mask)<<32 | uint64(co.Val))
	for _, c := range cubes {
		mix(c)
	}
	return h
}

// Kernels enumerates all kernels of the cover (including the cover itself
// when cube-free) using the classic recursive literal-cofactor procedure.
func (c Cover) Kernels() []Kernel {
	var out []Kernel
	seen := make(map[uint64]bool)
	base, _ := c.MakeCubeFree()
	var rec func(cov Cover, co tt.Cube, minLit litIndex)
	rec = func(cov Cover, co tt.Cube, minLit litIndex) {
		key := coverFingerprint(co, cov)
		if seen[key] {
			return
		}
		seen[key] = true
		if len(cov.Cubes) > 1 {
			out = append(out, Kernel{CoKernel: co, Cover: cov})
		}
		// Iterate literals in sorted order: the seen-fingerprint dedup
		// prunes by first visit, so map-order iteration would change
		// which co-kernels get expanded from run to run.
		counts := cov.litCounts()
		lits := make([]litIndex, 0, len(counts))
		for l := range counts {
			lits = append(lits, l)
		}
		sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
		for _, l := range lits {
			if counts[l] < 2 || l < minLit {
				continue
			}
			quot, _ := cov.DivideByLiteral(l.variable(), l.positive())
			free, cc := quot.MakeCubeFree()
			newCo, ok := cubeProduct(co, tt.Cube{}.WithLit(l.variable(), l.positive()))
			if !ok {
				continue
			}
			newCo, ok = cubeProduct(newCo, cc)
			if !ok {
				continue
			}
			rec(free, newCo, l+1)
		}
	}
	if len(base.Cubes) > 0 {
		rec(base, tt.Cube{}, 0)
	}
	// Deterministic order (cheap numeric ordering, no formatting).
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ka := uint64(a.CoKernel.Mask)<<32 | uint64(a.CoKernel.Val)
		kb := uint64(b.CoKernel.Mask)<<32 | uint64(b.CoKernel.Val)
		if ka != kb {
			return ka < kb
		}
		if len(a.Cover.Cubes) != len(b.Cover.Cubes) {
			return len(a.Cover.Cubes) < len(b.Cover.Cubes)
		}
		return coverFingerprint(tt.Cube{}, a.Cover) < coverFingerprint(tt.Cube{}, b.Cover)
	})
	return out
}

// bestLiteral returns the most frequent literal, breaking ties toward the
// lowest index for determinism. Returns ok=false when no literal appears
// in two or more cubes.
func (c Cover) bestLiteral() (litIndex, bool) {
	counts := c.litCounts()
	best, bestCnt := litIndex(-1), 1
	keys := make([]litIndex, 0, len(counts))
	for l := range counts {
		keys = append(keys, l)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, l := range keys {
		if counts[l] > bestCnt {
			best, bestCnt = l, counts[l]
		}
	}
	return best, best >= 0
}
