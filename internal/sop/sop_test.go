package sop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tt"
)

func TestCoverBasics(t *testing.T) {
	f := tt.Var(0, 3).And(tt.Var(1, 3)).Or(tt.Var(2, 3))
	c := FromTT(f)
	if !c.TT().Equal(f) {
		t.Fatal("FromTT cover wrong")
	}
	if c.NumCubes() != 2 {
		t.Errorf("NumCubes = %d, want 2", c.NumCubes())
	}
	if c.NumLits() != 3 {
		t.Errorf("NumLits = %d, want 3", c.NumLits())
	}
	cl := c.Clone()
	cl.Cubes[0] = tt.Cube{}
	if c.Cubes[0].Mask == 0 {
		t.Error("Clone is not deep")
	}
}

func TestMinimizeCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 3 + trial%4
		f := tt.Random(n, r)
		c := MinimizeTT(f)
		if !c.TT().Equal(f) {
			t.Fatalf("trial %d: minimized cover computes wrong function", trial)
		}
	}
}

func TestMinimizeNoWorseThanIsop(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 30; trial++ {
		n := 4 + trial%3
		f := tt.Random(n, r)
		isop := FromTT(f)
		min := MinimizeTT(f)
		if min.NumCubes() > isop.NumCubes() {
			t.Errorf("trial %d: minimize grew cubes %d -> %d", trial, isop.NumCubes(), min.NumCubes())
		}
	}
}

func TestMinimizeWithDontCares(t *testing.T) {
	// f = x0&x1 with DC on all minterms where x2=1: minimizer may use
	// them; result must match f on care set.
	n := 3
	f := tt.Var(0, n).And(tt.Var(1, n))
	dc := tt.Var(2, n)
	c := Minimize(f, dc)
	got := c.TT()
	care := dc.Not()
	if !got.And(care).Equal(f.And(care)) {
		t.Error("minimized cover differs on care set")
	}
}

func TestMinimizeKnownOptimal(t *testing.T) {
	// f = majority-of-three: 3 prime cubes of 2 literals each.
	n := 3
	maj := tt.Var(0, n).And(tt.Var(1, n)).
		Or(tt.Var(0, n).And(tt.Var(2, n))).
		Or(tt.Var(1, n).And(tt.Var(2, n)))
	c := MinimizeTT(maj)
	if c.NumCubes() != 3 || c.NumLits() != 6 {
		t.Errorf("maj3 minimized to %d cubes / %d lits, want 3/6", c.NumCubes(), c.NumLits())
	}
	// Constants.
	if got := MinimizeTT(tt.Const(4, false)); got.NumCubes() != 0 {
		t.Error("const0 should have empty cover")
	}
	got := MinimizeTT(tt.Const(4, true))
	if got.NumCubes() != 1 || got.NumLits() != 0 {
		t.Errorf("const1 cover = %v", got)
	}
}

func TestSmallestCubeContaining(t *testing.T) {
	n := 4
	// Set {0101, 0111}: x0=1, x1 varies, x2=1, x3=0 -> cube 1-10.
	set := tt.New(n)
	set.SetBit(0b0101, true)
	set.SetBit(0b0111, true)
	c := smallestCubeContaining(set, tt.Cube{})
	want, _ := tt.ParseCube(4, "1-10")
	if c != want {
		t.Errorf("got %v, want %v", c, want)
	}
}

func TestDivideByLiteral(t *testing.T) {
	// c = a*b + a*c + d  (vars 0..3)
	c := coverFromStrings(t, 4, "11--", "1-1-", "---1")
	quot, rem := c.DivideByLiteral(0, true)
	if quot.NumCubes() != 2 || rem.NumCubes() != 1 {
		t.Fatalf("quot=%v rem=%v", quot, rem)
	}
	// quot = b + c, rem = d.
	wantQ := coverFromStrings(t, 4, "-1--", "--1-")
	if quot.String() != wantQ.String() {
		t.Errorf("quot = %v, want %v", quot, wantQ)
	}
}

func coverFromStrings(t *testing.T, n int, cubes ...string) Cover {
	t.Helper()
	c := Cover{NumVars: n}
	for _, s := range cubes {
		cube, err := tt.ParseCube(n, s)
		if err != nil {
			t.Fatal(err)
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}

func TestAlgebraicDivide(t *testing.T) {
	// c = (a+b)(c+d) + e = ac + ad + bc + bd + e over vars a..e = 0..4.
	c := coverFromStrings(t, 5, "1-1--", "1--1-", "-11--", "-1-1-", "----1")
	d := coverFromStrings(t, 5, "1----", "-1---") // a + b
	quot, rem := c.Divide(d)
	wantQ := coverFromStrings(t, 5, "--1--", "---1-") // c + d
	if len(quot.Cubes) != 2 {
		t.Fatalf("quotient %v, want %v", quot, wantQ)
	}
	qtt := quot.TT()
	if !qtt.Equal(wantQ.TT()) {
		t.Errorf("quotient %v, want %v", quot, wantQ)
	}
	if rem.NumCubes() != 1 || rem.Cubes[0].String() != "----1" {
		t.Errorf("remainder %v, want e", rem)
	}
	// Verify the algebraic identity d*q + r == c as functions.
	rebuilt := d.TT().And(qtt).Or(rem.TT())
	if !rebuilt.Equal(c.TT()) {
		t.Error("d*q + r != c")
	}
}

func TestDivideNoCommon(t *testing.T) {
	c := coverFromStrings(t, 3, "1--", "-1-")
	d := coverFromStrings(t, 3, "--1")
	quot, rem := c.Divide(d)
	if len(quot.Cubes) != 0 || len(rem.Cubes) != 2 {
		t.Errorf("quot=%v rem=%v", quot, rem)
	}
	// Dividing by the empty cover.
	quot, rem = c.Divide(Cover{NumVars: 3})
	if len(quot.Cubes) != 0 || len(rem.Cubes) != 2 {
		t.Error("division by empty cover should return c as remainder")
	}
}

func TestCommonCube(t *testing.T) {
	c := coverFromStrings(t, 4, "110-", "1-01", "11-1")
	cc := c.commonCube()
	want, _ := tt.ParseCube(4, "1---")
	if cc != want {
		t.Errorf("commonCube = %v, want %v", cc, want)
	}
	free, pulled := c.MakeCubeFree()
	if pulled != want {
		t.Error("MakeCubeFree cube wrong")
	}
	if !free.IsCubeFree() {
		t.Error("result is not cube-free")
	}
}

func TestKernels(t *testing.T) {
	// The textbook example: f = ace + bce + de + g (vars a..g = 0..6).
	c := coverFromStrings(t, 7, "1-1-1--", "-11-1--", "---11--", "------1")
	kernels := c.Kernels()
	// Expected kernels include (a+b) with cokernel ce, (ac+bc+d) with
	// cokernel e, and the cover itself (cube-free).
	var found []string
	for _, k := range kernels {
		found = append(found, k.Cover.TT().Hex())
	}
	wantAB := coverFromStrings(t, 7, "1------", "-1-----").TT().Hex()
	ok := false
	for _, h := range found {
		if h == wantAB {
			ok = true
		}
	}
	if !ok {
		t.Errorf("kernel (a+b) not found among %d kernels", len(kernels))
	}
	for _, k := range kernels {
		if len(k.Cover.Cubes) < 2 {
			t.Error("kernel with fewer than 2 cubes")
		}
		if !k.Cover.IsCubeFree() {
			t.Errorf("kernel %v is not cube-free", k.Cover)
		}
	}
}

func TestFactorPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		n := 3 + trial%5
		f := tt.Random(n, r)
		c := MinimizeTT(f)
		e := Factor(c)
		if !e.TT(n).Equal(f) {
			t.Fatalf("trial %d (n=%d): factored form wrong:\n cover %v\n expr %v", trial, n, c, e)
		}
	}
}

func TestFactorQuick(t *testing.T) {
	qf := func(w uint64) bool {
		f := tt.FromWords(6, []uint64{w})
		c := FromTT(f)
		return Factor(c).TT(6).Equal(f)
	}
	if err := quick.Check(qf, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFactorSharing(t *testing.T) {
	// f = ab + ac + ad: factoring must find a(b+c+d), 4 literals not 6.
	c := coverFromStrings(t, 4, "11--", "1-1-", "1--1")
	e := Factor(c)
	if e.NumLits() > 4 {
		t.Errorf("factored form uses %d literals, want <= 4: %v", e.NumLits(), e)
	}
	// (a+b)(c+d): 4 literals, not 8.
	c2 := coverFromStrings(t, 4, "1-1-", "1--1", "-11-", "-1-1")
	e2 := Factor(c2)
	if e2.NumLits() > 4 {
		t.Errorf("(a+b)(c+d) factored to %d literals: %v", e2.NumLits(), e2)
	}
}

func TestFactorCorners(t *testing.T) {
	if Factor(Cover{NumVars: 3}).Kind != ExprConst0 {
		t.Error("empty cover should factor to const0")
	}
	taut := Cover{NumVars: 3, Cubes: []tt.Cube{{}}}
	if Factor(taut).Kind != ExprConst1 {
		t.Error("tautology cube should factor to const1")
	}
	single := coverFromStrings(t, 3, "10-")
	e := Factor(single)
	if e.NumLits() != 2 {
		t.Errorf("single cube factored to %d lits", e.NumLits())
	}
}

func TestExprString(t *testing.T) {
	c := coverFromStrings(t, 3, "11-", "--1")
	e := Factor(c)
	s := e.String()
	if s == "" || s == "?" {
		t.Errorf("String = %q", s)
	}
}
