package xag

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/synth"
	"repro/internal/tt"
	"repro/internal/workload"
)

func TestGateOps(t *testing.T) {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	g.AddPO(g.And(a, b))
	g.AddPO(g.Xor(a, b))
	g.AddPO(g.Or(a, b))
	g.AddPO(g.Mux(a, b, c))
	outs := g.OutputTTs()
	va, vb, vc := tt.Var(0, 3), tt.Var(1, 3), tt.Var(2, 3)
	if !outs[0].Equal(va.And(vb)) {
		t.Error("And wrong")
	}
	if !outs[1].Equal(va.Xor(vb)) {
		t.Error("Xor wrong")
	}
	if !outs[2].Equal(va.Or(vb)) {
		t.Error("Or wrong")
	}
	if !outs[3].Equal(va.And(vb).Or(va.Not().And(vc))) {
		t.Error("Mux wrong")
	}
	if err := g.Check(); err != nil {
		t.Error(err)
	}
}

func TestXorNormalization(t *testing.T) {
	g := New(2)
	a, b := g.PI(0), g.PI(1)
	x1 := g.Xor(a, b)
	x2 := g.Xor(a.Not(), b)
	x3 := g.Xor(a, b.Not())
	x4 := g.Xor(a.Not(), b.Not())
	if x2 != x1.Not() || x3 != x1.Not() || x4 != x1 {
		t.Error("XOR complement normalization broken")
	}
	if g.NumGates() != 1 {
		t.Errorf("4 polarity variants created %d gates, want 1", g.NumGates())
	}
	// Folding.
	if g.Xor(a, a) != LitFalse || g.Xor(a, a.Not()) != LitTrue {
		t.Error("XOR folding wrong")
	}
	if g.Xor(a, LitFalse) != a || g.Xor(a, LitTrue) != a.Not() {
		t.Error("XOR constant folding wrong")
	}
}

func TestXorCompactness(t *testing.T) {
	// parity-8: XAG needs 7 gates; an AIG needs ~21.
	g := SynthANF([]tt.TT{workload.Parity(8)})
	if g.NumGates() != 7 || g.NumXors() != 7 {
		t.Errorf("parity8 XAG: %v", g.Stat())
	}
}

func TestRecipesCorrectAndDiverse(t *testing.T) {
	r := rand.New(rand.NewSource(181))
	for trial := 0; trial < 6; trial++ {
		n := 4 + trial%3
		spec := []tt.TT{tt.Random(n, r), tt.Random(n, r)}
		sizes := map[int]bool{}
		for _, rec := range Recipes() {
			g := rec.Build(spec)
			outs := g.OutputTTs()
			for i := range spec {
				if !outs[i].Equal(spec[i]) {
					t.Fatalf("trial %d %s: output %d wrong", trial, rec.Name, i)
				}
			}
			if err := g.Check(); err != nil {
				t.Fatalf("%s: %v", rec.Name, err)
			}
			sizes[g.NumGates()] = true
		}
		if len(sizes) < 2 {
			t.Errorf("trial %d: XAG recipes produced no diversity", trial)
		}
	}
}

func TestSynthesizeDispatch(t *testing.T) {
	spec := []tt.TT{tt.Var(0, 2).And(tt.Var(1, 2))}
	if _, err := Synthesize("anf", spec); err != nil {
		t.Error(err)
	}
	if _, err := Synthesize("nope", spec); err == nil {
		t.Error("unknown recipe should error")
	}
}

func TestFromAIGDetectsXor(t *testing.T) {
	// Build parity-6 as an AIG (3 ANDs per XOR motif, as Shannon
	// synthesis emits) and convert: the XAG should recover native XORs
	// and shrink. (A flat SOP cover contains no motifs — diversity again.)
	spec := []tt.TT{workload.Parity(6)}
	a := synth.SynthShannon(spec)
	x := FromAIG(a)
	if out := x.OutputTTs()[0]; !out.Equal(spec[0]) {
		t.Fatal("conversion changed function")
	}
	if x.NumXors() == 0 {
		t.Error("XOR motif detection found nothing in a parity circuit")
	}
	if x.NumGates() >= a.NumAnds() {
		t.Errorf("XAG (%d gates) not smaller than AIG (%d) on parity", x.NumGates(), a.NumAnds())
	}
}

func TestConversionRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(182))
	for trial := 0; trial < 10; trial++ {
		n := 4 + trial%3
		spec := []tt.TT{tt.Random(n, r), tt.Random(n, r)}
		a := synth.SynthFactored(spec)
		x := FromAIG(a)
		back := x.ToAIG()
		if idx, err := aig.Equivalent(a, back); err != nil || idx != -1 {
			t.Fatalf("trial %d: AIG->XAG->AIG broke output %d (%v)", trial, idx, err)
		}
	}
}

func TestCleanupDropsDangling(t *testing.T) {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	used := g.Xor(a, b)
	g.And(b, c) // dangling
	g.AddPO(used)
	ng := g.Cleanup()
	if ng.NumGates() != 1 {
		t.Errorf("Cleanup left %d gates", ng.NumGates())
	}
}

func TestRewritePreservesAndShrinks(t *testing.T) {
	r := rand.New(rand.NewSource(183))
	for trial := 0; trial < 6; trial++ {
		n := 5 + trial%2
		f := tt.Random(n, r)
		// The deliberately XOR-poor recipe leaves room for ANF rewrites.
		g := SynthFactored([]tt.TT{f})
		ng := Rewrite(g)
		if !ng.OutputTTs()[0].Equal(f) {
			t.Fatalf("trial %d: rewrite changed function", trial)
		}
		if ng.NumGates() > g.NumGates() {
			t.Fatalf("trial %d: rewrite grew %d -> %d", trial, g.NumGates(), ng.NumGates())
		}
		if err := ng.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRewriteFindsXorStructure(t *testing.T) {
	// parity built from SOP form must collapse dramatically via ANF.
	f := workload.Parity(6)
	g := SynthFactored([]tt.TT{f})
	ng := Rewrite(g)
	if ng.NumGates() >= g.NumGates() {
		t.Errorf("rewrite failed on parity: %d -> %d", g.NumGates(), ng.NumGates())
	}
	if ng.NumXors() == 0 {
		t.Error("rewrite introduced no XOR gates on parity")
	}
}

func TestDiversityScores(t *testing.T) {
	spec := []tt.TT{workload.Parity(6)}
	pa := NewProfile(SynthANF(spec))
	pb := NewProfile(SynthFactored(spec))
	if RGC(pa, pa) != 0 || RMC(pa, pa) != 0 || RLC(pa, pa) != 0 || RewriteScore(pa, pa) != 0 {
		t.Error("identity scores nonzero")
	}
	if RGC(pa, pb) <= 0 {
		t.Error("parity ANF vs factored should differ in gate count")
	}
	if RMC(pa, pb) <= 0 {
		t.Error("multiplicative complexity should differ")
	}
	for _, v := range []float64{RGC(pa, pb), RMC(pa, pb), RLC(pa, pb)} {
		if v < 0 || v > 1 {
			t.Errorf("score out of range: %f", v)
		}
	}
}

func TestLitHelpers(t *testing.T) {
	l := MakeLit(7, true)
	if l.Node() != 7 || !l.IsCompl() || l.Not().IsCompl() {
		t.Error("lit helpers wrong")
	}
	if LitFalse.Not() != LitTrue {
		t.Error("const lits wrong")
	}
}
