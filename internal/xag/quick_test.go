package xag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tt"
)

// TestQuickRecipesEquivalent property-tests every recipe and the
// rewriting pass against random functions: functional equivalence must
// hold unconditionally.
func TestQuickRecipesEquivalent(t *testing.T) {
	f := func(w uint64, recipeIdx uint8) bool {
		fn := tt.FromWords(6, []uint64{w})
		recipes := Recipes()
		rec := recipes[int(recipeIdx)%len(recipes)]
		g := rec.Build([]tt.TT{fn})
		if !g.OutputTTs()[0].Equal(fn) {
			return false
		}
		ng := RewriteOnce(g)
		return ng.OutputTTs()[0].Equal(fn) && ng.NumGates() <= g.NumGates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickGateAlgebra checks XOR/AND algebraic identities on random
// literal combinations.
func TestQuickGateAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New(4)
		lits := []Lit{g.PI(0), g.PI(1), g.PI(2), g.PI(3)}
		a := lits[r.Intn(4)].NotCond(r.Intn(2) == 1)
		b := lits[r.Intn(4)].NotCond(r.Intn(2) == 1)
		// Commutativity at the literal level.
		if g.Xor(a, b) != g.Xor(b, a) || g.And(a, b) != g.And(b, a) {
			return false
		}
		// XOR involution: (a ^ b) ^ b == a.
		x := g.Xor(g.Xor(a, b), b)
		g.AddPO(x)
		g.AddPO(a)
		outs := g.OutputTTs()
		return outs[0].Equal(outs[1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
