package xag

import (
	"repro/internal/sop"
	"repro/internal/tt"
)

// RewriteOnce performs one cone-rewriting pass over the XAG: every gate's
// reconvergence-driven cone (up to 8 leaves) is collapsed to a truth
// table and resynthesized as the cheaper of its ANF (XOR-of-ANDs) and
// factored AND/OR forms; the replacement is committed when it costs
// fewer gates than the cone's fanout-free interior. A demand-driven
// rebuild drops the freed logic. The pass never grows the graph.
func RewriteOnce(g *XAG) *XAG {
	if g.NumPIs() > tt.MaxVars {
		return g
	}
	refs := g.refCounts()
	type choice struct {
		anf    []uint32
		invert bool
		expr   *sop.Expr
		leaves []int
		nvars  int
	}
	decisions := make(map[int]choice)

	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		if refs[id] == 0 {
			continue
		}
		leaves := g.reconvCut(id, 8)
		if len(leaves) < 2 {
			continue
		}
		saved := g.mffcBounded(id, refs, leaves)
		if saved < 2 {
			continue
		}
		f := g.cutTT(id, leaves)
		// ANF candidate (cheaper polarity).
		mon := f.ANF()
		invert := false
		if alt := f.Not().ANF(); len(alt) < len(mon) {
			mon, invert = alt, true
		}
		anfCost := anfGateCount(mon)
		// Factored candidate.
		expr := sop.Factor(sop.MinimizeTT(f))
		exprCost := exprGateCount(expr)
		best := choice{leaves: leaves, nvars: len(leaves)}
		cost := 0
		if anfCost <= exprCost {
			best.anf, best.invert = mon, invert
			cost = anfCost
		} else {
			best.expr = expr
			cost = exprCost
		}
		if saved > cost {
			decisions[id] = best
		}
	}
	if len(decisions) == 0 {
		return g
	}

	// Demand-driven rebuild.
	ng := New(g.numPIs)
	m := make([]Lit, g.NumObjs())
	for i := range m {
		m[i] = Lit(0xFFFFFFFF)
	}
	m[0] = LitFalse
	for i := 1; i <= g.numPIs; i++ {
		m[i] = MakeLit(i, false)
	}
	var build func(id int) Lit
	build = func(id int) Lit {
		if m[id] != Lit(0xFFFFFFFF) {
			return m[id]
		}
		if dec, ok := decisions[id]; ok {
			leafLits := make([]Lit, len(dec.leaves))
			for i, leaf := range dec.leaves {
				leafLits[i] = build(leaf)
			}
			var l Lit
			if dec.expr != nil {
				l = instantiateExpr(ng, dec.expr, leafLits)
			} else {
				l = instantiateANF(ng, dec.anf, leafLits).NotCond(dec.invert)
			}
			m[id] = l
			return l
		}
		a := build(g.fanin0[id].Node()).NotCond(g.fanin0[id].IsCompl())
		b := build(g.fanin1[id].Node()).NotCond(g.fanin1[id].IsCompl())
		var l Lit
		if g.kind[id] == KindAnd {
			l = ng.And(a, b)
		} else {
			l = ng.Xor(a, b)
		}
		m[id] = l
		return l
	}
	for _, po := range g.pos {
		ng.AddPO(build(po.Node()).NotCond(po.IsCompl()))
	}
	if ng.NumGates() > g.NumGates() {
		return g
	}
	return ng
}

// Rewrite iterates RewriteOnce to a fixpoint.
func Rewrite(g *XAG) *XAG {
	cur := g
	for i := 0; i < 8; i++ {
		next := RewriteOnce(cur)
		if next.NumGates() >= cur.NumGates() {
			return cur
		}
		cur = next
	}
	return cur
}

func anfGateCount(monomials []uint32) int {
	gates := 0
	for _, m := range monomials {
		lits := 0
		for x := m; x != 0; x &= x - 1 {
			lits++
		}
		if lits > 1 {
			gates += lits - 1
		}
	}
	if len(monomials) > 1 {
		gates += len(monomials) - 1
	}
	return gates
}

func exprGateCount(e *sop.Expr) int {
	switch e.Kind {
	case sop.ExprAnd, sop.ExprOr:
		n := len(e.Args) - 1
		for _, a := range e.Args {
			n += exprGateCount(a)
		}
		return n
	default:
		return 0
	}
}

func instantiateExpr(g *XAG, e *sop.Expr, leaves []Lit) Lit {
	switch e.Kind {
	case sop.ExprConst0:
		return LitFalse
	case sop.ExprConst1:
		return LitTrue
	case sop.ExprLit:
		return leaves[e.Var].NotCond(!e.Pos)
	case sop.ExprAnd:
		out := LitTrue
		for _, a := range e.Args {
			out = g.And(out, instantiateExpr(g, a, leaves))
		}
		return out
	case sop.ExprOr:
		out := LitFalse
		for _, a := range e.Args {
			out = g.Or(out, instantiateExpr(g, a, leaves))
		}
		return out
	}
	panic("xag: bad expression")
}

func instantiateANF(g *XAG, monomials []uint32, leaves []Lit) Lit {
	out := LitFalse
	for _, m := range monomials {
		term := LitTrue
		for v := 0; v < len(leaves); v++ {
			if m>>uint(v)&1 == 1 {
				term = g.And(term, leaves[v])
			}
		}
		out = g.Xor(out, term)
	}
	return out
}

// --- local structural analysis (cuts, MFFC) ----------------------------

func (g *XAG) refCounts() []int {
	refs := make([]int, g.NumObjs())
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		refs[g.fanin0[id].Node()]++
		refs[g.fanin1[id].Node()]++
	}
	for _, po := range g.pos {
		refs[po.Node()]++
	}
	return refs
}

// reconvCut grows a reconvergence-driven cut, as in the aig package.
func (g *XAG) reconvCut(root, maxLeaves int) []int {
	leaves := []int{root}
	inCut := map[int]bool{root: true}
	visited := map[int]bool{root: true}
	cost := func(id int) int {
		if !g.IsGate(id) {
			return 1 << 30
		}
		c := 0
		if !visited[g.fanin0[id].Node()] {
			c++
		}
		if !visited[g.fanin1[id].Node()] {
			c++
		}
		return c
	}
	for {
		best, bestCost := -1, 1<<30
		for _, l := range leaves {
			if c := cost(l); c < bestCost {
				best, bestCost = l, c
			}
		}
		if best == -1 || bestCost >= 1<<30 || len(leaves)-1+bestCost > maxLeaves {
			break
		}
		kept := leaves[:0]
		for _, l := range leaves {
			if l != best {
				kept = append(kept, l)
			}
		}
		leaves = kept
		delete(inCut, best)
		for _, f := range []Lit{g.fanin0[best], g.fanin1[best]} {
			fid := f.Node()
			visited[fid] = true
			if !inCut[fid] {
				inCut[fid] = true
				leaves = append(leaves, fid)
			}
		}
	}
	for i := 1; i < len(leaves); i++ {
		for j := i; j > 0 && leaves[j] < leaves[j-1]; j-- {
			leaves[j], leaves[j-1] = leaves[j-1], leaves[j]
		}
	}
	return leaves
}

// cutTT computes the gate's function over the cut leaves.
func (g *XAG) cutTT(root int, leaves []int) tt.TT {
	n := len(leaves)
	local := make(map[int]tt.TT, 2*n)
	for i, leaf := range leaves {
		local[leaf] = tt.Var(i, n)
	}
	var eval func(id int) tt.TT
	eval = func(id int) tt.TT {
		if t, ok := local[id]; ok {
			return t
		}
		f0, f1 := g.fanin0[id], g.fanin1[id]
		a := eval(f0.Node())
		if f0.IsCompl() {
			a = a.Not()
		}
		b := eval(f1.Node())
		if f1.IsCompl() {
			b = b.Not()
		}
		var t tt.TT
		if g.kind[id] == KindAnd {
			t = a.And(b)
		} else {
			t = a.Xor(b)
		}
		local[id] = t
		return t
	}
	return eval(root)
}

// mffcBounded computes the bounded fanout-free-cone size of id.
func (g *XAG) mffcBounded(id int, refs []int, leaves []int) int {
	boundary := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		boundary[l] = true
	}
	var deref func(id int) int
	deref = func(id int) int {
		n := 1
		for _, f := range []Lit{g.fanin0[id], g.fanin1[id]} {
			fid := f.Node()
			refs[fid]--
			if refs[fid] == 0 && g.IsGate(fid) && !boundary[fid] {
				n += deref(fid)
			}
		}
		return n
	}
	var reref func(id int)
	reref = func(id int) {
		for _, f := range []Lit{g.fanin0[id], g.fanin1[id]} {
			fid := f.Node()
			if refs[fid] == 0 && g.IsGate(fid) && !boundary[fid] {
				reref(fid)
			}
			refs[fid]++
		}
	}
	n := deref(id)
	reref(id)
	return n
}
