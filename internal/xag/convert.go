package xag

import (
	"repro/internal/aig"
)

// FromAIG converts an AIG into an XAG, recognizing the three-AND XOR
// motif and mapping it to native XOR gates. The result is typically
// smaller than the AIG on parity-heavy logic and structurally very
// different — a new kind of diversity the AIG recipes cannot produce.
func FromAIG(a *aig.AIG) *XAG {
	g := New(a.NumPIs())
	m := make([]Lit, a.NumObjs())
	m[0] = LitFalse
	for i := 1; i <= a.NumPIs(); i++ {
		m[i] = MakeLit(i, false)
	}
	for id := a.NumPIs() + 1; id < a.NumObjs(); id++ {
		if x, y, xnor, ok := xorMotif(a, id); ok {
			ax := m[x.Node()].NotCond(x.IsCompl())
			ay := m[y.Node()].NotCond(y.IsCompl())
			m[id] = g.Xor(ax, ay).NotCond(xnor)
			continue
		}
		f0, f1 := a.Fanins(id)
		af := m[f0.Node()].NotCond(f0.IsCompl())
		bf := m[f1.Node()].NotCond(f1.IsCompl())
		m[id] = g.And(af, bf)
	}
	for i := 0; i < a.NumPOs(); i++ {
		po := a.PO(i)
		g.AddPO(m[po.Node()].NotCond(po.IsCompl()))
	}
	return g.Cleanup()
}

// xorMotif recognizes node id == AND(!AND(p,q), !AND(r,s)) where the
// inner ANDs implement a XOR b: {p,q} == {a, !b}, {r,s} == {!a, b}.
// Returns the XOR operands and whether id computes XNOR(a,b) (it does:
// AND of the complemented halves is the complement of the OR, so id
// itself is XNOR; callers complement accordingly).
func xorMotif(a *aig.AIG, id int) (x, y aig.Lit, xnor bool, ok bool) {
	f0, f1 := a.Fanins(id)
	if !f0.IsCompl() || !f1.IsCompl() {
		return 0, 0, false, false
	}
	n0, n1 := f0.Node(), f1.Node()
	if !a.IsAnd(n0) || !a.IsAnd(n1) {
		return 0, 0, false, false
	}
	p, q := a.Fanins(n0)
	r, s := a.Fanins(n1)
	// Need {p,q} and {r,s} to be {u, v} with polarities crossed:
	// p==!r and q==!s (in some order).
	if p == r.Not() && q == s.Not() {
		return p, q.Not(), true, true
	}
	if p == s.Not() && q == r.Not() {
		return p, q.Not(), true, true
	}
	return 0, 0, false, false
}

// ToAIG lowers the XAG to an AIG, expanding XOR gates into three ANDs.
func (g *XAG) ToAIG() *aig.AIG {
	a := aig.New(g.numPIs)
	m := make([]aig.Lit, g.NumObjs())
	m[0] = aig.LitFalse
	for i := 1; i <= g.numPIs; i++ {
		m[i] = aig.MakeLit(i, false)
	}
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		f0, f1 := g.fanin0[id], g.fanin1[id]
		x := m[f0.Node()].NotCond(f0.IsCompl())
		y := m[f1.Node()].NotCond(f1.IsCompl())
		if g.kind[id] == KindAnd {
			m[id] = a.And(x, y)
		} else {
			m[id] = a.Xor(x, y)
		}
	}
	for _, po := range g.pos {
		a.AddPO(m[po.Node()].NotCond(po.IsCompl()))
	}
	return a.Cleanup()
}
