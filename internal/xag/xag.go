// Package xag implements XOR-AND Graphs — the first of the two "other
// logic graph types" the paper's future-work section targets. An XAG
// node is either a two-input AND or a two-input XOR; edges carry
// complement tags. XOR nodes make parity-heavy logic (arithmetic,
// cryptography) exponentially more compact than in AIGs, which changes
// what "structurally diverse" means — exactly the setting in which the
// paper's diversity framework is meant to generalize.
package xag

import (
	"fmt"

	"repro/internal/tt"
)

// Kind discriminates node types.
type Kind uint8

// Node kinds.
const (
	KindAnd Kind = iota
	KindXor
)

// Lit is an edge literal: 2*node + complement (as in the aig package).
type Lit uint32

// Constant literals.
const (
	LitFalse Lit = 0
	LitTrue  Lit = 1
)

// MakeLit builds a literal.
func MakeLit(node int, compl bool) Lit {
	l := Lit(node) << 1
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node id of the literal.
func (l Lit) Node() int { return int(l >> 1) }

// IsCompl reports the complement flag.
func (l Lit) IsCompl() bool { return l&1 == 1 }

// Not complements the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotCond complements when c holds.
func (l Lit) NotCond(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// XAG is a structurally hashed XOR-AND graph. Node 0 is constant false,
// nodes 1..numPIs are inputs, higher ids are AND or XOR nodes created in
// topological order. XOR nodes are normalized to plain fanins (input
// complements are pulled to the output), so structural hashing catches
// all XOR polarity variants.
type XAG struct {
	numPIs int
	kind   []Kind
	fanin0 []Lit
	fanin1 []Lit
	level  []int32
	strash map[uint64]int
	pos    []Lit
}

// New creates an XAG with the given number of primary inputs.
func New(numPIs int) *XAG {
	g := &XAG{
		numPIs: numPIs,
		kind:   make([]Kind, numPIs+1),
		fanin0: make([]Lit, numPIs+1),
		fanin1: make([]Lit, numPIs+1),
		level:  make([]int32, numPIs+1),
		strash: make(map[uint64]int),
	}
	return g
}

// NumPIs returns the primary input count.
func (g *XAG) NumPIs() int { return g.numPIs }

// NumPOs returns the primary output count.
func (g *XAG) NumPOs() int { return len(g.pos) }

// NumObjs returns constant + PIs + gates.
func (g *XAG) NumObjs() int { return len(g.fanin0) }

// NumGates returns the total gate count (ANDs + XORs).
func (g *XAG) NumGates() int { return len(g.fanin0) - g.numPIs - 1 }

// NumAnds returns the AND gate count — the multiplicative complexity
// proxy that XAG-based cryptography research optimizes.
func (g *XAG) NumAnds() int {
	n := 0
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		if g.kind[id] == KindAnd {
			n++
		}
	}
	return n
}

// NumXors returns the XOR gate count.
func (g *XAG) NumXors() int { return g.NumGates() - g.NumAnds() }

// PI returns the literal of input i.
func (g *XAG) PI(i int) Lit {
	if i < 0 || i >= g.numPIs {
		panic(fmt.Sprintf("xag: PI %d out of range", i))
	}
	return MakeLit(i+1, false)
}

// PO returns output literal i.
func (g *XAG) PO(i int) Lit { return g.pos[i] }

// AddPO appends an output.
func (g *XAG) AddPO(l Lit) int {
	g.pos = append(g.pos, l)
	return len(g.pos) - 1
}

// IsGate reports whether id is an internal gate.
func (g *XAG) IsGate(id int) bool { return id > g.numPIs }

// IsPI reports whether id is a primary input.
func (g *XAG) IsPI(id int) bool { return id >= 1 && id <= g.numPIs }

// GateKind returns the kind of gate id.
func (g *XAG) GateKind(id int) Kind { return g.kind[id] }

// Fanins returns gate id's fanin literals.
func (g *XAG) Fanins(id int) (Lit, Lit) {
	if !g.IsGate(id) {
		panic(fmt.Sprintf("xag: node %d is not a gate", id))
	}
	return g.fanin0[id], g.fanin1[id]
}

// Level returns the logic level of id.
func (g *XAG) Level(id int) int { return int(g.level[id]) }

// NumLevels returns the output depth.
func (g *XAG) NumLevels() int {
	d := int32(0)
	for _, l := range g.pos {
		if lv := g.level[l.Node()]; lv > d {
			d = lv
		}
	}
	return int(d)
}

func strashKey(k Kind, a, b Lit) uint64 {
	return uint64(k)<<63 | uint64(a)<<32 | uint64(b)
}

func (g *XAG) newGate(k Kind, a, b Lit) Lit {
	key := strashKey(k, a, b)
	if id, ok := g.strash[key]; ok {
		return MakeLit(id, false)
	}
	id := len(g.fanin0)
	g.kind = append(g.kind, k)
	g.fanin0 = append(g.fanin0, a)
	g.fanin1 = append(g.fanin1, b)
	lv := g.level[a.Node()]
	if l2 := g.level[b.Node()]; l2 > lv {
		lv = l2
	}
	g.level = append(g.level, lv+1)
	g.strash[key] = id
	return MakeLit(id, false)
}

// And returns AND(a, b) with constant folding and structural hashing.
func (g *XAG) And(a, b Lit) Lit {
	switch {
	case a == LitFalse || b == LitFalse:
		return LitFalse
	case a == LitTrue:
		return b
	case b == LitTrue:
		return a
	case a == b:
		return a
	case a == b.Not():
		return LitFalse
	}
	if a > b {
		a, b = b, a
	}
	return g.newGate(KindAnd, a, b)
}

// Xor returns XOR(a, b) as a native XOR gate, normalizing complements to
// the output: xor(!a, b) == !xor(a, b).
func (g *XAG) Xor(a, b Lit) Lit {
	outCompl := a.IsCompl() != b.IsCompl()
	a, b = a&^1, b&^1
	switch {
	case a == LitFalse:
		return b.NotCond(outCompl)
	case b == LitFalse:
		return a.NotCond(outCompl)
	case a == b:
		return LitFalse.NotCond(outCompl)
	}
	if a > b {
		a, b = b, a
	}
	return g.newGate(KindXor, a, b).NotCond(outCompl)
}

// Or returns OR(a, b).
func (g *XAG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Mux returns sel ? t : e, using the XOR form e XOR (sel AND (t XOR e)).
func (g *XAG) Mux(sel, t, e Lit) Lit {
	return g.Xor(e, g.And(sel, g.Xor(t, e)))
}

// SimAll computes every node's truth table over the inputs.
func (g *XAG) SimAll() []tt.TT {
	n := g.numPIs
	if n > tt.MaxVars {
		panic(fmt.Sprintf("xag: SimAll limited to %d inputs", tt.MaxVars))
	}
	tabs := make([]tt.TT, g.NumObjs())
	tabs[0] = tt.New(n)
	for i := 1; i <= n; i++ {
		tabs[i] = tt.Var(i-1, n)
	}
	for id := n + 1; id < g.NumObjs(); id++ {
		f0, f1 := g.fanin0[id], g.fanin1[id]
		a := tabs[f0.Node()]
		if f0.IsCompl() {
			a = a.Not()
		}
		b := tabs[f1.Node()]
		if f1.IsCompl() {
			b = b.Not()
		}
		if g.kind[id] == KindAnd {
			tabs[id] = a.And(b)
		} else {
			tabs[id] = a.Xor(b)
		}
	}
	return tabs
}

// OutputTTs returns the truth table of every output.
func (g *XAG) OutputTTs() []tt.TT {
	tabs := g.SimAll()
	out := make([]tt.TT, len(g.pos))
	for i, po := range g.pos {
		t := tabs[po.Node()]
		if po.IsCompl() {
			t = t.Not()
		}
		out[i] = t
	}
	return out
}

// Cleanup returns a copy with only output-reachable gates.
func (g *XAG) Cleanup() *XAG {
	ng := New(g.numPIs)
	m := make([]Lit, g.NumObjs())
	for i := range m {
		m[i] = Lit(0xFFFFFFFF)
	}
	m[0] = LitFalse
	for i := 1; i <= g.numPIs; i++ {
		m[i] = MakeLit(i, false)
	}
	var build func(id int) Lit
	build = func(id int) Lit {
		if m[id] != Lit(0xFFFFFFFF) {
			return m[id]
		}
		a := build(g.fanin0[id].Node()).NotCond(g.fanin0[id].IsCompl())
		b := build(g.fanin1[id].Node()).NotCond(g.fanin1[id].IsCompl())
		var l Lit
		if g.kind[id] == KindAnd {
			l = ng.And(a, b)
		} else {
			l = ng.Xor(a, b)
		}
		m[id] = l
		return l
	}
	for _, po := range g.pos {
		ng.AddPO(build(po.Node()).NotCond(po.IsCompl()))
	}
	return ng
}

// Check validates structural invariants.
func (g *XAG) Check() error {
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		f0, f1 := g.fanin0[id], g.fanin1[id]
		if f0.Node() >= id || f1.Node() >= id {
			return fmt.Errorf("xag: node %d has forward fanin", id)
		}
		if f0 > f1 {
			return fmt.Errorf("xag: node %d fanins not normalized", id)
		}
		if g.kind[id] == KindXor && (f0.IsCompl() || f1.IsCompl()) {
			return fmt.Errorf("xag: XOR node %d has complemented fanin", id)
		}
	}
	for i, po := range g.pos {
		if po.Node() >= g.NumObjs() {
			return fmt.Errorf("xag: PO %d dangling", i)
		}
	}
	return nil
}

// Stats summarizes the graph.
type Stats struct {
	PIs, POs, Ands, Xors, Levels int
}

// Stat returns summary statistics.
func (g *XAG) Stat() Stats {
	return Stats{PIs: g.numPIs, POs: g.NumPOs(), Ands: g.NumAnds(), Xors: g.NumXors(), Levels: g.NumLevels()}
}

func (s Stats) String() string {
	return fmt.Sprintf("i/o = %d/%d  and = %d  xor = %d  lev = %d", s.PIs, s.POs, s.Ands, s.Xors, s.Levels)
}
