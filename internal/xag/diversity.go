package xag

import "math"

// Profile carries the diversity artifacts of one XAG — the paper's
// framework transplanted to the XOR-AND domain. The reduction is the
// single-step cone-rewriting reduction ratio, the XAG counterpart of the
// Rewrite Score's r(A).
type Profile struct {
	Gates     int
	Ands      int
	Levels    int
	Reduction float64
}

// NewProfile profiles an XAG, running one rewriting step.
func NewProfile(g *XAG) Profile {
	p := Profile{Gates: g.NumGates(), Ands: g.NumAnds(), Levels: g.NumLevels()}
	if p.Gates > 0 {
		opt := RewriteOnce(g)
		p.Reduction = float64(p.Gates-opt.NumGates()) / float64(p.Gates)
	}
	return p
}

// RGC is the Relative Gate Count difference (Eq. 2 on XAG gate counts).
func RGC(a, b Profile) float64 {
	den := a.Gates + b.Gates
	if den == 0 {
		return 0
	}
	return math.Abs(float64(a.Gates-b.Gates)) / float64(den)
}

// RMC is the Relative Multiplicative Complexity difference: Eq. 2 over
// AND counts only, the natural XAG-specific attribute (XORs are "free"
// in many XAG cost models).
func RMC(a, b Profile) float64 {
	den := a.Ands + b.Ands
	if den == 0 {
		return 0
	}
	return math.Abs(float64(a.Ands-b.Ands)) / float64(den)
}

// RLC is the Relative Level Count difference.
func RLC(a, b Profile) float64 {
	den := a.Levels + b.Levels
	if den == 0 {
		return 0
	}
	return math.Abs(float64(a.Levels-b.Levels)) / float64(den)
}

// RewriteScore is Eq. 3 with the XAG cone-rewriting operator.
func RewriteScore(a, b Profile) float64 {
	return math.Abs(a.Reduction - b.Reduction)
}
