package xag

import (
	"fmt"

	"repro/internal/sop"
	"repro/internal/tt"
)

// Recipe is a named XAG synthesis strategy — the XAG counterpart of the
// seven AIG recipes, generating structurally diverse XAGs from one
// specification.
type Recipe struct {
	Name        string
	Description string
	Build       func(spec []tt.TT) *XAG
}

// Recipes returns the XAG synthesis recipes in canonical order.
func Recipes() []Recipe {
	return []Recipe{
		{"anf", "Reed-Muller XOR-of-ANDs expansion", SynthANF},
		{"factored", "espresso-minimized, kernel-factored AND/OR form", SynthFactored},
		{"shannon", "Shannon decomposition with XOR-based multiplexers", SynthShannon},
	}
}

// Synthesize dispatches on the recipe name.
func Synthesize(name string, spec []tt.TT) (*XAG, error) {
	for _, r := range Recipes() {
		if r.Name == name {
			return r.Build(spec), nil
		}
	}
	return nil, fmt.Errorf("xag: unknown recipe %q", name)
}

func checkSpec(spec []tt.TT) int {
	if len(spec) == 0 {
		panic("xag: empty specification")
	}
	n := spec[0].NumVars()
	for _, f := range spec[1:] {
		if f.NumVars() != n {
			panic("xag: inconsistent arities")
		}
	}
	return n
}

// SynthANF builds each output as a balanced XOR of AND monomials — the
// native XAG form of the algebraic normal form. Dense functions use the
// complement when sparser.
func SynthANF(spec []tt.TT) *XAG {
	n := checkSpec(spec)
	g := New(n)
	for _, f := range spec {
		mon := f.ANF()
		invert := false
		if alt := f.Not().ANF(); len(alt) < len(mon) {
			mon = alt
			invert = true
		}
		g.AddPO(buildANF(g, n, mon).NotCond(invert))
	}
	return g.Cleanup()
}

func buildANF(g *XAG, n int, monomials []uint32) Lit {
	terms := make([]Lit, 0, len(monomials))
	for _, m := range monomials {
		term := LitTrue
		for v := 0; v < n; v++ {
			if m>>uint(v)&1 == 1 {
				term = g.And(term, g.PI(v))
			}
		}
		terms = append(terms, term)
	}
	// Balanced XOR tree.
	if len(terms) == 0 {
		return LitFalse
	}
	for len(terms) > 1 {
		var next []Lit
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, g.Xor(terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	return terms[0]
}

// SynthFactored minimizes and factors each output, building it from
// AND/OR structure only (XOR gates appear only when strashing finds
// them via the Mux-free construction — i.e. never; this is the
// deliberately XOR-poor counterpoint to SynthANF).
func SynthFactored(spec []tt.TT) *XAG {
	n := checkSpec(spec)
	g := New(n)
	for _, f := range spec {
		expr := sop.Factor(sop.MinimizeTT(f))
		g.AddPO(buildExpr(g, expr))
	}
	return g.Cleanup()
}

func buildExpr(g *XAG, e *sop.Expr) Lit {
	switch e.Kind {
	case sop.ExprConst0:
		return LitFalse
	case sop.ExprConst1:
		return LitTrue
	case sop.ExprLit:
		return g.PI(e.Var).NotCond(!e.Pos)
	case sop.ExprAnd:
		out := LitTrue
		for _, a := range e.Args {
			out = g.And(out, buildExpr(g, a))
		}
		return out
	case sop.ExprOr:
		out := LitFalse
		for _, a := range e.Args {
			out = g.Or(out, buildExpr(g, a))
		}
		return out
	}
	panic("xag: bad expression")
}

// SynthShannon decomposes by Shannon expansion using the XOR-form
// multiplexer e XOR (s AND (t XOR e)), memoizing subfunctions.
func SynthShannon(spec []tt.TT) *XAG {
	n := checkSpec(spec)
	g := New(n)
	memo := make(map[string]Lit)
	var rec func(f tt.TT) Lit
	rec = func(f tt.TT) Lit {
		if f.IsConst0() {
			return LitFalse
		}
		if f.IsConst1() {
			return LitTrue
		}
		key := f.Hex()
		if l, ok := memo[key]; ok {
			return l
		}
		v := bestVar(f)
		l := g.Mux(g.PI(v), rec(f.Cofactor(v, true)), rec(f.Cofactor(v, false)))
		memo[key] = l
		return l
	}
	for _, f := range spec {
		g.AddPO(rec(f))
	}
	return g.Cleanup()
}

func bestVar(f tt.TT) int {
	best, bestScore := -1, -1
	for v := 0; v < f.NumVars(); v++ {
		if !f.HasVar(v) {
			continue
		}
		score := f.Cofactor(v, false).Xor(f.Cofactor(v, true)).CountOnes()
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}
