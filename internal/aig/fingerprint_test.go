package aig

import "testing"

// TestFingerprintOrderIndependent: the same reachable structure built in
// different node-creation orders must fingerprint identically.
func TestFingerprintOrderIndependent(t *testing.T) {
	build := func(reverse bool) *AIG {
		g := New(4)
		a, b, c, d := g.PI(0), g.PI(1), g.PI(2), g.PI(3)
		var x, y Lit
		if reverse {
			y = g.And(c, d)
			x = g.And(a, b)
		} else {
			x = g.And(a, b)
			y = g.And(c, d)
		}
		g.AddPO(g.And(x, y.Not()))
		return g
	}
	f1, f2 := build(false).Fingerprint(), build(true).Fingerprint()
	if f1 != f2 {
		t.Errorf("construction order changed fingerprint: %s vs %s", f1, f2)
	}
}

// TestFingerprintIgnoresDanglingAndNames: dead cones and symbol names
// are not structure and must not affect the fingerprint.
func TestFingerprintIgnoresDanglingAndNames(t *testing.T) {
	base := New(3)
	po := base.And(base.PI(0), base.PI(1))
	base.AddPO(po)

	decorated := New(3)
	dpo := decorated.And(decorated.PI(0), decorated.PI(1))
	decorated.And(decorated.PI(1), decorated.PI(2)) // dangling
	decorated.AddPO(dpo)
	decorated.SetPIName(0, "a")
	decorated.SetPOName(0, "out")

	if f1, f2 := base.Fingerprint(), decorated.Fingerprint(); f1 != f2 {
		t.Errorf("dangling node or names changed fingerprint: %s vs %s", f1, f2)
	}
}

// TestFingerprintDistinguishes: structural differences — an extra
// complement, a different PO order, a different PI count — must change
// the fingerprint.
func TestFingerprintDistinguishes(t *testing.T) {
	mk := func(numPIs int, f func(g *AIG)) string {
		g := New(numPIs)
		f(g)
		return g.Fingerprint()
	}
	and := mk(2, func(g *AIG) { g.AddPO(g.And(g.PI(0), g.PI(1))) })
	nand := mk(2, func(g *AIG) { g.AddPO(g.And(g.PI(0), g.PI(1)).Not()) })
	andWide := mk(3, func(g *AIG) { g.AddPO(g.And(g.PI(0), g.PI(1))) })
	twoPO := mk(2, func(g *AIG) {
		x := g.And(g.PI(0), g.PI(1))
		g.AddPO(x)
		g.AddPO(x.Not())
	})
	seen := map[string]string{}
	for name, fp := range map[string]string{"and": and, "nand": nand, "andWide": andWide, "twoPO": twoPO} {
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s collide on fingerprint %s", prev, name, fp)
		}
		seen[fp] = name
	}
}
