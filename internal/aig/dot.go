package aig

import (
	"fmt"
	"io"
)

// WriteDot renders the AIG in Graphviz DOT format: AND nodes as circles,
// primary inputs as boxes, primary outputs as inverted houses, and
// complemented edges dashed — the visual convention of the paper's
// Figure 1.
func (g *AIG) WriteDot(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph aig {\n  rankdir=BT;\n  label=%q;\n", title); err != nil {
		return err
	}
	for i := 0; i < g.numPIs; i++ {
		name := g.PIName(i)
		if name == "" {
			name = fmt.Sprintf("x%d", i+1)
		}
		fmt.Fprintf(w, "  n%d [shape=box,label=%q];\n", i+1, name)
	}
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		fmt.Fprintf(w, "  n%d [shape=circle,label=\"%d\"];\n", id, id)
		for _, f := range []Lit{g.fanin0[id], g.fanin1[id]} {
			style := "solid"
			if f.IsCompl() {
				style = "dashed"
			}
			fmt.Fprintf(w, "  n%d -> n%d [style=%s,dir=none];\n", f.Node(), id, style)
		}
	}
	for i, po := range g.pos {
		name := g.POName(i)
		if name == "" {
			name = fmt.Sprintf("y%d", i+1)
		}
		fmt.Fprintf(w, "  o%d [shape=invhouse,label=%q];\n", i, name)
		style := "solid"
		if po.IsCompl() {
			style = "dashed"
		}
		fmt.Fprintf(w, "  n%d -> o%d [style=%s,dir=none];\n", po.Node(), i, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
