package aig

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns the canonical structural hash of g as a hex
// string. It is a Merkle-style digest: every node's hash is derived
// only from its kind (constant, the i-th primary input, AND) and the
// hashes of its fanins with their complement flags, with the two fanin
// edges sorted by hash so the digest cannot depend on node numbering or
// construction order; the graph digest folds in the PI count and the
// PO edge sequence. Consequently:
//
//   - two AIGs whose PO-reachable structure is identical hash
//     identically, regardless of the order nodes were created in or of
//     dead cones left behind by optimization passes;
//   - symbol names never influence the fingerprint — it identifies
//     structure, which is exactly the key under which per-graph
//     profiles and pairwise metric results may be shared.
//
// Two functionally equivalent but structurally different AIGs hash
// differently on purpose: the diversity metrics score structure.
//
// Caveat for consumers interning by fingerprint: the hash is
// node-numbering-independent, but some derived artifacts are not —
// the vertex/edge overlap sets behind VEO are keyed by raw node ids,
// so two identically-structured AIGs with different topological
// numberings produce different overlap sets while sharing one
// fingerprint (Cleanup compacts ids but preserves the input's
// relative order, so it does not canonicalize numbering either).
// A content-addressed store therefore computes numbering-sensitive
// artifacts on whichever representative was interned first; that is
// sound only because such artifacts are consumed pairwise against
// other stored representatives under the same rule, never compared
// against an externally numbered copy of the graph.
func (g *AIG) Fingerprint() string {
	const hashLen = sha256.Size
	hashes := make([][hashLen]byte, g.NumObjs())
	var buf [4]byte
	hashes[0] = sha256.Sum256([]byte("const0"))
	for i := 1; i <= g.numPIs && i < g.NumObjs(); i++ {
		binary.LittleEndian.PutUint32(buf[:], uint32(i-1))
		hashes[i] = sha256.Sum256(append([]byte("pi"), buf[:]...))
	}
	// The node array is a topological order, so fanin hashes are always
	// ready. Unreachable nodes are hashed too (cheaper than a
	// reachability pass) but never reach the graph digest, which folds
	// in PO cones only.
	edge := func(l Lit) []byte {
		e := make([]byte, 0, hashLen+1)
		e = append(e, hashes[l.Node()][:]...)
		if l.IsCompl() {
			return append(e, 1)
		}
		return append(e, 0)
	}
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		e0, e1 := edge(g.fanin0[id]), edge(g.fanin1[id])
		if bytes.Compare(e0, e1) > 0 {
			e0, e1 = e1, e0
		}
		h := sha256.New()
		h.Write([]byte("and"))
		h.Write(e0)
		h.Write(e1)
		h.Sum(hashes[id][:0])
	}
	h := sha256.New()
	h.Write([]byte("aig"))
	binary.LittleEndian.PutUint32(buf[:], uint32(g.numPIs))
	h.Write(buf[:])
	binary.LittleEndian.PutUint32(buf[:], uint32(len(g.pos)))
	h.Write(buf[:])
	for _, po := range g.pos {
		h.Write(edge(po))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
