package aig

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestEnumerateCutsTrivial(t *testing.T) {
	g := New(2)
	n := g.And(g.PI(0), g.PI(1))
	g.AddPO(n)
	cuts := g.EnumerateCuts(CutParams{K: 4})
	nodeCuts := cuts[n.Node()]
	if len(nodeCuts) < 2 {
		t.Fatalf("expected trivial + leaf cut, got %d", len(nodeCuts))
	}
	if len(nodeCuts[0].Leaves) != 1 || nodeCuts[0].Leaves[0] != n.Node() {
		t.Error("first cut must be the trivial cut")
	}
	found := false
	for _, c := range nodeCuts[1:] {
		if len(c.Leaves) == 2 && c.Leaves[0] == 1 && c.Leaves[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Error("PI cut {1,2} not found")
	}
}

// cutIsValid checks the defining property: recomputing the node function
// from the cut leaves reproduces the node's global function.
func cutIsValid(t *testing.T, g *AIG, tabs []tt.TT, node int, cut Cut) {
	t.Helper()
	if len(cut.Leaves) > 8 {
		return
	}
	local := g.CutTT(node, cut.Leaves)
	// Compose: substitute leaf tables into local function.
	n := g.NumPIs()
	composed := tt.New(n)
	for m := 0; m < local.NumBits(); m++ {
		if !local.Bit(m) {
			continue
		}
		// Minterm m of the local space corresponds to the set of global
		// assignments where each leaf i equals bit i of m.
		part := tt.Const(n, true)
		for i, leaf := range cut.Leaves {
			lt := tabs[leaf]
			if m>>uint(i)&1 == 0 {
				lt = lt.Not()
			}
			part = part.And(lt)
		}
		composed = composed.Or(part)
	}
	if !composed.Equal(tabs[node]) {
		t.Fatalf("cut %v of node %d is not functionally valid", cut.Leaves, node)
	}
}

func TestEnumerateCutsValidity(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	g := randomAIG(6, 50, r)
	tabs := g.SimAll()
	cuts := g.EnumerateCuts(CutParams{K: 4, MaxCuts: 6})
	for id := g.NumPIs() + 1; id < g.NumObjs(); id++ {
		for _, c := range cuts[id] {
			if len(c.Leaves) > 4+1 { // trivial cut may be 1; others <= K
				t.Fatalf("node %d cut %v exceeds K", id, c.Leaves)
			}
			cutIsValid(t, g, tabs, id, c)
		}
	}
}

func TestEnumerateCutsLimit(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g := randomAIG(8, 120, r)
	cuts := g.EnumerateCuts(CutParams{K: 4, MaxCuts: 5})
	for id := range cuts {
		nontrivial := len(cuts[id]) - 1
		if nontrivial > 5 {
			t.Fatalf("node %d keeps %d cuts, limit 5", id, nontrivial)
		}
	}
}

func TestCutDominance(t *testing.T) {
	a := Cut{Leaves: []int{1, 2}, Sign: cutSign([]int{1, 2})}
	b := Cut{Leaves: []int{1, 2, 3}, Sign: cutSign([]int{1, 2, 3})}
	if !a.dominates(b) {
		t.Error("subset should dominate superset")
	}
	if b.dominates(a) {
		t.Error("superset should not dominate subset")
	}
	c := Cut{Leaves: []int{1, 4}, Sign: cutSign([]int{1, 4})}
	if a.dominates(c) || c.dominates(a) {
		t.Error("incomparable cuts should not dominate")
	}
}

func TestMergeCutsOverflow(t *testing.T) {
	a := Cut{Leaves: []int{1, 2, 3}, Sign: cutSign([]int{1, 2, 3})}
	b := Cut{Leaves: []int{4, 5}, Sign: cutSign([]int{4, 5})}
	if _, ok := mergeCuts(a, b, 4); ok {
		t.Error("merge exceeding K should fail")
	}
	m, ok := mergeCuts(a, b, 5)
	if !ok || len(m.Leaves) != 5 {
		t.Error("merge within K should succeed")
	}
	// Overlapping merge.
	c := Cut{Leaves: []int{2, 3, 4}, Sign: cutSign([]int{2, 3, 4})}
	m2, ok := mergeCuts(a, c, 4)
	if !ok || len(m2.Leaves) != 4 {
		t.Errorf("overlap merge = %v ok=%v", m2.Leaves, ok)
	}
}

func TestReconvCut(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	g := randomAIG(8, 80, r)
	tabs := g.SimAll()
	for id := g.NumPIs() + 1; id < g.NumObjs(); id++ {
		leaves := g.ReconvCut(id, 6)
		if len(leaves) > 6+1 {
			t.Fatalf("node %d: reconv cut has %d leaves", id, len(leaves))
		}
		for i := 1; i < len(leaves); i++ {
			if leaves[i] <= leaves[i-1] {
				t.Fatalf("node %d: leaves not sorted: %v", id, leaves)
			}
		}
		cutIsValid(t, g, tabs, id, Cut{Leaves: leaves, Sign: cutSign(leaves)})
	}
}
