// Package aig implements And-Inverter Graphs: directed acyclic graphs of
// two-input AND nodes with complemented edges, the workhorse data structure
// of technology-independent logic synthesis.
//
// Nodes are identified by dense integer ids: id 0 is the constant-false
// node, ids 1..NumPIs() are primary inputs, and higher ids are AND nodes.
// Edges are literals (Lit): a node id shifted left by one with the low bit
// holding the complement flag, exactly as in the AIGER format. Nodes are
// created in topological order and structurally hashed, so two-level
// equivalent AND nodes are never duplicated.
package aig

import (
	"fmt"
	"math/bits"
)

// Lit is an edge literal: 2*node + complement, as in AIGER.
type Lit uint32

// Const literals.
const (
	LitFalse Lit = 0 // constant node, plain
	LitTrue  Lit = 1 // constant node, complemented
)

// MakeLit builds a literal from a node id and a complement flag.
func MakeLit(node int, compl bool) Lit {
	l := Lit(node) << 1
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node id the literal points to.
func (l Lit) Node() int { return int(l >> 1) }

// IsCompl reports whether the literal is complemented.
func (l Lit) IsCompl() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotCond returns the literal complemented when c is true.
func (l Lit) NotCond(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// Regular returns the literal with the complement bit cleared.
func (l Lit) Regular() Lit { return l &^ 1 }

func (l Lit) String() string {
	if l.IsCompl() {
		return fmt.Sprintf("!%d", l.Node())
	}
	return fmt.Sprintf("%d", l.Node())
}

// AIG is a structurally hashed And-Inverter Graph with a fixed set of
// primary inputs and an append-only set of AND nodes and primary outputs.
type AIG struct {
	numPIs  int
	fanin0  []Lit // per node; zero for const and PIs
	fanin1  []Lit
	level   []int32
	strash  map[uint64]int
	pos     []Lit
	piNames []string
	poNames []string
}

// New creates an AIG with the given number of primary inputs and no
// outputs.
func New(numPIs int) *AIG {
	g := &AIG{
		numPIs: numPIs,
		fanin0: make([]Lit, numPIs+1),
		fanin1: make([]Lit, numPIs+1),
		level:  make([]int32, numPIs+1),
		strash: make(map[uint64]int),
	}
	return g
}

// NumPIs returns the number of primary inputs.
func (g *AIG) NumPIs() int { return g.numPIs }

// NumPOs returns the number of primary outputs.
func (g *AIG) NumPOs() int { return len(g.pos) }

// NumObjs returns the total object count: constant + PIs + AND nodes.
func (g *AIG) NumObjs() int { return len(g.fanin0) }

// NumAnds returns the number of AND nodes — the "gate count" G(A) used
// throughout the paper's metrics.
func (g *AIG) NumAnds() int { return len(g.fanin0) - g.numPIs - 1 }

// PI returns the literal of primary input i (0-based).
func (g *AIG) PI(i int) Lit {
	if i < 0 || i >= g.numPIs {
		panic(fmt.Sprintf("aig: PI index %d out of range", i))
	}
	return MakeLit(i+1, false)
}

// PO returns the literal driving primary output i.
func (g *AIG) PO(i int) Lit { return g.pos[i] }

// POs returns the output literals (not copied).
func (g *AIG) POs() []Lit { return g.pos }

// AddPO appends a primary output driven by l and returns its index.
func (g *AIG) AddPO(l Lit) int {
	g.pos = append(g.pos, l)
	return len(g.pos) - 1
}

// SetPO redirects an existing primary output.
func (g *AIG) SetPO(i int, l Lit) { g.pos[i] = l }

// IsAnd reports whether node id is an AND node.
func (g *AIG) IsAnd(id int) bool { return id > g.numPIs }

// IsPI reports whether node id is a primary input.
func (g *AIG) IsPI(id int) bool { return id >= 1 && id <= g.numPIs }

// Fanins returns the two fanin literals of an AND node.
func (g *AIG) Fanins(id int) (Lit, Lit) {
	if !g.IsAnd(id) {
		panic(fmt.Sprintf("aig: node %d is not an AND", id))
	}
	return g.fanin0[id], g.fanin1[id]
}

// Level returns the logic level of a node (PIs and const are level 0).
func (g *AIG) Level(id int) int { return int(g.level[id]) }

// NumLevels returns the depth of the AIG: the maximum level over the
// output drivers.
func (g *AIG) NumLevels() int {
	d := int32(0)
	for _, l := range g.pos {
		if lv := g.level[l.Node()]; lv > d {
			d = lv
		}
	}
	return int(d)
}

// PIName returns the symbol of PI i, or "" when unnamed.
func (g *AIG) PIName(i int) string {
	if i < len(g.piNames) {
		return g.piNames[i]
	}
	return ""
}

// POName returns the symbol of PO i, or "" when unnamed.
func (g *AIG) POName(i int) string {
	if i < len(g.poNames) {
		return g.poNames[i]
	}
	return ""
}

// SetPIName attaches a symbol to PI i.
func (g *AIG) SetPIName(i int, name string) {
	for len(g.piNames) <= i {
		g.piNames = append(g.piNames, "")
	}
	g.piNames[i] = name
}

// SetPOName attaches a symbol to PO i.
func (g *AIG) SetPOName(i int, name string) {
	for len(g.poNames) <= i {
		g.poNames = append(g.poNames, "")
	}
	g.poNames[i] = name
}

func strashKey(a, b Lit) uint64 {
	return uint64(a)<<32 | uint64(b)
}

// Lookup reports the existing node implementing AND(a, b), if any. The
// result is the plain literal of that node.
func (g *AIG) Lookup(a, b Lit) (Lit, bool) {
	if folded, ok := foldAnd(a, b); ok {
		return folded, true
	}
	if a > b {
		a, b = b, a
	}
	if id, ok := g.strash[strashKey(a, b)]; ok {
		return MakeLit(id, false), true
	}
	return 0, false
}

// foldAnd applies the constant and trivial-structure simplifications of
// two-input AND. The second result reports whether folding applied.
func foldAnd(a, b Lit) (Lit, bool) {
	switch {
	case a == LitFalse || b == LitFalse:
		return LitFalse, true
	case a == LitTrue:
		return b, true
	case b == LitTrue:
		return a, true
	case a == b:
		return a, true
	case a == b.Not():
		return LitFalse, true
	}
	return 0, false
}

// And returns a literal for AND(a, b), folding constants, reusing
// structurally identical nodes, and creating a new node otherwise.
func (g *AIG) And(a, b Lit) Lit {
	if folded, ok := foldAnd(a, b); ok {
		return folded
	}
	if a > b {
		a, b = b, a
	}
	key := strashKey(a, b)
	if id, ok := g.strash[key]; ok {
		return MakeLit(id, false)
	}
	if a.Node() >= len(g.fanin0) || b.Node() >= len(g.fanin0) {
		panic("aig: And fanin references nonexistent node")
	}
	id := len(g.fanin0)
	g.fanin0 = append(g.fanin0, a)
	g.fanin1 = append(g.fanin1, b)
	lv := g.level[a.Node()]
	if l2 := g.level[b.Node()]; l2 > lv {
		lv = l2
	}
	g.level = append(g.level, lv+1)
	g.strash[key] = id
	return MakeLit(id, false)
}

// Or returns a literal for OR(a, b).
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a literal for XOR(a, b) built from three AND nodes (or
// fewer when sharing applies).
func (g *AIG) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Mux returns a literal for sel ? t : e.
func (g *AIG) Mux(sel, t, e Lit) Lit {
	if t == e {
		return t
	}
	if t == e.Not() {
		return g.Xor(sel, e)
	}
	return g.Or(g.And(sel, t), g.And(sel.Not(), e))
}

// Maj3 returns the majority of three literals.
func (g *AIG) Maj3(a, b, c Lit) Lit {
	return g.Or(g.And(a, b), g.Or(g.And(a, c), g.And(b, c)))
}

// RefCounts returns the fanout count of every node, counting each fanin
// edge and each primary output once.
func (g *AIG) RefCounts() []int {
	refs := make([]int, g.NumObjs())
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		refs[g.fanin0[id].Node()]++
		refs[g.fanin1[id].Node()]++
	}
	for _, l := range g.pos {
		refs[l.Node()]++
	}
	return refs
}

// MFFCSize returns the size of the maximum fanout-free cone of AND node
// id: the number of AND nodes (including id) that become dead if id is
// removed. refs must come from RefCounts and is restored before return.
func (g *AIG) MFFCSize(id int, refs []int) int {
	if !g.IsAnd(id) {
		return 0
	}
	n := g.deref(id, refs)
	g.reref(id, refs)
	return n
}

// MFFCSizeBounded is MFFCSize with a protected boundary: dereferencing
// never descends into boundary nodes, which models cut leaves that a
// replacement structure will still use. refs is restored before return.
func (g *AIG) MFFCSizeBounded(id int, refs []int, boundary map[int]bool) int {
	if !g.IsAnd(id) {
		return 0
	}
	n := g.derefB(id, refs, boundary)
	g.rerefB(id, refs, boundary)
	return n
}

// MFFCNodesBounded returns the AND nodes inside the bounded MFFC of id
// (including id itself). refs is restored before return.
func (g *AIG) MFFCNodesBounded(id int, refs []int, boundary map[int]bool) []int {
	if !g.IsAnd(id) {
		return nil
	}
	var nodes []int
	var collect func(id int)
	collect = func(id int) {
		nodes = append(nodes, id)
		for _, f := range []Lit{g.fanin0[id], g.fanin1[id]} {
			fid := f.Node()
			refs[fid]--
			if refs[fid] == 0 && g.IsAnd(fid) && !boundary[fid] {
				collect(fid)
			}
		}
	}
	collect(id)
	g.rerefB(id, refs, boundary)
	return nodes
}

func (g *AIG) derefB(id int, refs []int, boundary map[int]bool) int {
	n := 1
	for _, f := range []Lit{g.fanin0[id], g.fanin1[id]} {
		fid := f.Node()
		refs[fid]--
		if refs[fid] == 0 && g.IsAnd(fid) && !boundary[fid] {
			n += g.derefB(fid, refs, boundary)
		}
	}
	return n
}

func (g *AIG) rerefB(id int, refs []int, boundary map[int]bool) {
	for _, f := range []Lit{g.fanin0[id], g.fanin1[id]} {
		fid := f.Node()
		if refs[fid] == 0 && g.IsAnd(fid) && !boundary[fid] {
			g.rerefB(fid, refs, boundary)
		}
		refs[fid]++
	}
}

func (g *AIG) deref(id int, refs []int) int {
	n := 1
	for _, f := range []Lit{g.fanin0[id], g.fanin1[id]} {
		fid := f.Node()
		refs[fid]--
		if refs[fid] == 0 && g.IsAnd(fid) {
			n += g.deref(fid, refs)
		}
	}
	return n
}

func (g *AIG) reref(id int, refs []int) {
	for _, f := range []Lit{g.fanin0[id], g.fanin1[id]} {
		fid := f.Node()
		if refs[fid] == 0 && g.IsAnd(fid) {
			g.reref(fid, refs)
		}
		refs[fid]++
	}
}

// Cleanup returns a copy of g containing only nodes reachable from the
// primary outputs, renumbered densely, along with the old→new literal
// map for the outputs (already applied).
func (g *AIG) Cleanup() *AIG {
	ng := New(g.numPIs)
	ng.piNames = append([]string(nil), g.piNames...)
	ng.poNames = append([]string(nil), g.poNames...)
	m := make([]Lit, g.NumObjs())
	for i := range m {
		m[i] = Lit(0xFFFFFFFF)
	}
	m[0] = LitFalse
	for i := 1; i <= g.numPIs; i++ {
		m[i] = MakeLit(i, false)
	}
	var build func(id int) Lit
	build = func(id int) Lit {
		if m[id] != Lit(0xFFFFFFFF) {
			return m[id]
		}
		f0 := build(g.fanin0[id].Node()).NotCond(g.fanin0[id].IsCompl())
		f1 := build(g.fanin1[id].Node()).NotCond(g.fanin1[id].IsCompl())
		l := ng.And(f0, f1)
		m[id] = l
		return l
	}
	for _, po := range g.pos {
		l := build(po.Node()).NotCond(po.IsCompl())
		ng.AddPO(l)
	}
	return ng
}

// Clone returns a deep copy of g.
func (g *AIG) Clone() *AIG {
	ng := &AIG{
		numPIs:  g.numPIs,
		fanin0:  append([]Lit(nil), g.fanin0...),
		fanin1:  append([]Lit(nil), g.fanin1...),
		level:   append([]int32(nil), g.level...),
		strash:  make(map[uint64]int, len(g.strash)),
		pos:     append([]Lit(nil), g.pos...),
		piNames: append([]string(nil), g.piNames...),
		poNames: append([]string(nil), g.poNames...),
	}
	for k, v := range g.strash {
		ng.strash[k] = v
	}
	return ng
}

// TFISupport returns, for the cone rooted at literal root, the set of PI
// indices it transitively depends on.
func (g *AIG) TFISupport(root Lit) []int {
	seen := make(map[int]bool)
	var pis []int
	var walk func(id int)
	walk = func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		if g.IsPI(id) {
			pis = append(pis, id-1)
			return
		}
		if g.IsAnd(id) {
			walk(g.fanin0[id].Node())
			walk(g.fanin1[id].Node())
		}
	}
	walk(root.Node())
	return pis
}

// ConeSize returns the number of AND nodes in the transitive fanin cone
// of literal root.
func (g *AIG) ConeSize(root Lit) int {
	seen := make(map[int]bool)
	n := 0
	var walk func(id int)
	walk = func(id int) {
		if seen[id] || !g.IsAnd(id) {
			return
		}
		seen[id] = true
		n++
		walk(g.fanin0[id].Node())
		walk(g.fanin1[id].Node())
	}
	walk(root.Node())
	return n
}

// Check validates the structural invariants every synthesis recipe and
// optimization pass must preserve:
//
//   - the constant node and the PIs carry no fanins and sit at level 0;
//   - every AND's fanins point strictly backward, so the node array is a
//     topological order (this also rules out cycles, including
//     self-loops);
//   - fanins are normalized (fanin0 <= fanin1) and non-trivial: no
//     constant operand and no x&x / x&!x, all of which And() folds away;
//   - every level is exactly 1 + max(fanin levels);
//   - the strash table is a bijection between fanin pairs and AND nodes:
//     every AND is registered under its fanin key, the entry points back
//     at it (a mismatch means a structural duplicate), and the table
//     holds exactly NumAnds entries (no stale leftovers);
//   - every PO references an existing node.
//
// It returns an error describing the first violation found. Check does
// not require the graph to be dangling-free — passes legitimately leave
// dead cones behind until Cleanup; CheckStrict adds that requirement.
func (g *AIG) Check() error {
	for id := 0; id <= g.numPIs && id < g.NumObjs(); id++ {
		if g.fanin0[id] != 0 || g.fanin1[id] != 0 {
			return fmt.Errorf("aig: non-AND node %d has fanins (%v, %v)", id, g.fanin0[id], g.fanin1[id])
		}
		if g.level[id] != 0 {
			return fmt.Errorf("aig: non-AND node %d has level %d, want 0", id, g.level[id])
		}
	}
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		f0, f1 := g.fanin0[id], g.fanin1[id]
		if f0.Node() >= id || f1.Node() >= id {
			return fmt.Errorf("aig: node %d has forward or cyclic fanin (%v, %v)", id, f0, f1)
		}
		if f0 > f1 {
			return fmt.Errorf("aig: node %d fanins (%v, %v) not normalized", id, f0, f1)
		}
		if f0.Node() == 0 {
			return fmt.Errorf("aig: node %d has constant fanin %v, which And() should have folded", id, f0)
		}
		if f0.Regular() == f1.Regular() {
			return fmt.Errorf("aig: node %d is trivial (%v, %v), which And() should have folded", id, f0, f1)
		}
		want := g.level[f0.Node()]
		if l := g.level[f1.Node()]; l > want {
			want = l
		}
		if g.level[id] != want+1 {
			return fmt.Errorf("aig: node %d has level %d, want %d", id, g.level[id], want+1)
		}
		switch got, ok := g.strash[strashKey(f0, f1)]; {
		case !ok:
			return fmt.Errorf("aig: node %d missing from strash table", id)
		case got != id:
			return fmt.Errorf("aig: node %d is a structural duplicate of node %d (strash not canonical)", id, got)
		}
	}
	if len(g.strash) != g.NumAnds() {
		return fmt.Errorf("aig: strash table has %d entries for %d AND nodes (stale entries)", len(g.strash), g.NumAnds())
	}
	for i, po := range g.pos {
		if po.Node() >= g.NumObjs() {
			return fmt.Errorf("aig: PO %d references nonexistent node %d", i, po.Node())
		}
	}
	return nil
}

// CheckStrict is Check plus the dangling-node invariant: every AND node
// must be referenced by another AND or a PO. Because the graph is
// acyclic, that is equivalent to every AND being reachable from some
// PO. Use it at emission boundaries (after Cleanup, before AIGER
// serialization); mid-flow graphs legitimately fail it.
func (g *AIG) CheckStrict() error {
	if err := g.Check(); err != nil {
		return err
	}
	refs := g.RefCounts()
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		if refs[id] == 0 {
			return fmt.Errorf("aig: AND node %d is dangling (zero references); run Cleanup before emitting", id)
		}
	}
	return nil
}

// Stats summarizes an AIG for reporting.
type Stats struct {
	PIs    int
	POs    int
	Ands   int
	Levels int
}

// Stat returns summary statistics of g.
func (g *AIG) Stat() Stats {
	return Stats{PIs: g.numPIs, POs: g.NumPOs(), Ands: g.NumAnds(), Levels: g.NumLevels()}
}

func (s Stats) String() string {
	return fmt.Sprintf("i/o = %d/%d  and = %d  lev = %d", s.PIs, s.POs, s.Ands, s.Levels)
}

// popcount32 is a small helper used by cut handling.
func popcount32(x uint32) int { return bits.OnesCount32(x) }
