package aig

// Cut is a k-feasible cut of a node: a set of leaf node ids (sorted
// ascending) such that every path from the PIs to the node passes through
// a leaf. Sign is a 64-bit Bloom signature used for fast dominance tests.
type Cut struct {
	Leaves []int
	Sign   uint64
}

func cutSign(leaves []int) uint64 {
	var s uint64
	for _, l := range leaves {
		s |= 1 << (uint(l) & 63)
	}
	return s
}

// dominates reports whether cut a's leaves are a subset of cut b's.
func (a Cut) dominates(b Cut) bool {
	if len(a.Leaves) > len(b.Leaves) || a.Sign&^b.Sign != 0 {
		return false
	}
	i := 0
	for _, l := range b.Leaves {
		if i < len(a.Leaves) && a.Leaves[i] == l {
			i++
		}
	}
	return i == len(a.Leaves)
}

// mergeCuts unions two sorted leaf sets, failing when the result exceeds k.
func mergeCuts(a, b Cut, k int) (Cut, bool) {
	leaves := make([]int, 0, k)
	i, j := 0, 0
	for i < len(a.Leaves) || j < len(b.Leaves) {
		var next int
		switch {
		case i >= len(a.Leaves):
			next = b.Leaves[j]
			j++
		case j >= len(b.Leaves):
			next = a.Leaves[i]
			i++
		case a.Leaves[i] < b.Leaves[j]:
			next = a.Leaves[i]
			i++
		case a.Leaves[i] > b.Leaves[j]:
			next = b.Leaves[j]
			j++
		default:
			next = a.Leaves[i]
			i++
			j++
		}
		if len(leaves) == k {
			return Cut{}, false
		}
		leaves = append(leaves, next)
	}
	return Cut{Leaves: leaves, Sign: cutSign(leaves)}, true
}

// CutParams configures cut enumeration.
type CutParams struct {
	K       int // maximum leaves per cut
	MaxCuts int // cuts retained per node (priority cuts); 0 = default 8
}

func (p CutParams) maxCuts() int {
	if p.MaxCuts <= 0 {
		return 8
	}
	return p.MaxCuts
}

// EnumerateCuts computes k-feasible priority cuts for every node. The
// result is indexed by node id; each node's list begins with its trivial
// cut {node}. Dominated cuts are filtered and at most MaxCuts non-trivial
// cuts are kept per node, preferring smaller cuts.
func (g *AIG) EnumerateCuts(p CutParams) [][]Cut {
	k := p.K
	if k < 2 {
		k = 4
	}
	maxCuts := p.maxCuts()
	all := make([][]Cut, g.NumObjs())
	trivial := func(id int) Cut {
		return Cut{Leaves: []int{id}, Sign: cutSign([]int{id})}
	}
	for id := 0; id <= g.numPIs; id++ {
		all[id] = []Cut{trivial(id)}
	}
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		c0 := all[g.fanin0[id].Node()]
		c1 := all[g.fanin1[id].Node()]
		var cuts []Cut
		for _, a := range c0 {
			for _, b := range c1 {
				m, ok := mergeCuts(a, b, k)
				if !ok {
					continue
				}
				dominated := false
				for _, c := range cuts {
					if c.dominates(m) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				// Remove cuts the new one dominates.
				kept := cuts[:0]
				for _, c := range cuts {
					if !m.dominates(c) {
						kept = append(kept, c)
					}
				}
				cuts = append(kept, m)
			}
		}
		// Keep the best cuts by size (stable: enumeration order breaks ties).
		if len(cuts) > maxCuts {
			sortCutsBySize(cuts)
			cuts = cuts[:maxCuts]
		}
		all[id] = append([]Cut{trivial(id)}, cuts...)
	}
	return all
}

func sortCutsBySize(cuts []Cut) {
	// Insertion sort: lists are tiny and mostly ordered.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && len(cuts[j].Leaves) < len(cuts[j-1].Leaves); j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
}

// ReconvCut grows a reconvergence-driven cut of node root with at most
// maxLeaves leaves, in the style of ABC's refactoring: starting from the
// trivial cut, it repeatedly expands the leaf whose expansion adds the
// fewest new leaves, preferring expansions that reduce or preserve the
// leaf count.
func (g *AIG) ReconvCut(root int, maxLeaves int) []int {
	leaves := []int{root}
	inCut := map[int]bool{root: true}
	visited := map[int]bool{root: true}

	cost := func(id int) int {
		// Number of fanins not already visited; PIs cannot be expanded.
		if !g.IsAnd(id) {
			return 1 << 30
		}
		c := 0
		if !visited[g.fanin0[id].Node()] {
			c++
		}
		if !visited[g.fanin1[id].Node()] {
			c++
		}
		return c
	}

	for {
		best, bestCost := -1, 1<<30
		for _, l := range leaves {
			if c := cost(l); c < bestCost {
				best, bestCost = l, c
			}
		}
		if best == -1 || bestCost >= 1<<30 {
			break
		}
		if len(leaves)-1+bestCost > maxLeaves {
			break
		}
		// Expand best: replace it with its fanins.
		kept := leaves[:0]
		for _, l := range leaves {
			if l != best {
				kept = append(kept, l)
			}
		}
		leaves = kept
		delete(inCut, best)
		for _, f := range []Lit{g.fanin0[best], g.fanin1[best]} {
			fid := f.Node()
			visited[fid] = true
			if !inCut[fid] {
				inCut[fid] = true
				leaves = append(leaves, fid)
			}
		}
	}
	// Sort ascending for deterministic downstream use.
	for i := 1; i < len(leaves); i++ {
		for j := i; j > 0 && leaves[j] < leaves[j-1]; j-- {
			leaves[j], leaves[j-1] = leaves[j-1], leaves[j]
		}
	}
	return leaves
}
