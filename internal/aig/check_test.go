package aig

import (
	"strings"
	"testing"
)

// buildCheckFixture returns a small healthy AIG: a full adder plus one
// extra shared node, 3 PIs, 2 POs, several levels. Every corruption
// test clones and mutates it.
func buildCheckFixture(t *testing.T) *AIG {
	t.Helper()
	g := New(3)
	a, b, cin := g.PI(0), g.PI(1), g.PI(2)
	sum := g.Xor(g.Xor(a, b), cin)
	cout := g.Maj3(a, b, cin)
	g.AddPO(sum)
	g.AddPO(cout)
	if err := g.Check(); err != nil {
		t.Fatalf("fixture is corrupt before mutation: %v", err)
	}
	if err := g.CheckStrict(); err != nil {
		t.Fatalf("fixture has dangling nodes before mutation: %v", err)
	}
	return g
}

// firstAnd returns the id of the first AND node.
func firstAnd(g *AIG) int { return g.NumPIs() + 1 }

// TestCheckRejectsCorruption corrupts one invariant per case and
// asserts Check reports it with a distinct, descriptive error.
func TestCheckRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(g *AIG)
		want    string // substring of the expected error
	}{
		{
			name: "cyclic self fanin",
			corrupt: func(g *AIG) {
				id := firstAnd(g)
				g.fanin0[id] = MakeLit(id, false)
			},
			want: "forward or cyclic fanin",
		},
		{
			name: "forward fanin",
			corrupt: func(g *AIG) {
				id := firstAnd(g)
				g.fanin1[id] = MakeLit(g.NumObjs()-1, true)
			},
			want: "forward or cyclic fanin",
		},
		{
			name: "unnormalized fanins",
			corrupt: func(g *AIG) {
				// Find an AND with distinct fanins and swap them.
				for id := firstAnd(g); id < g.NumObjs(); id++ {
					if g.fanin0[id] != g.fanin1[id] {
						g.fanin0[id], g.fanin1[id] = g.fanin1[id], g.fanin0[id]
						return
					}
				}
				panic("no AND with distinct fanins")
			},
			want: "not normalized",
		},
		{
			name: "constant fanin",
			corrupt: func(g *AIG) {
				id := firstAnd(g)
				g.fanin0[id] = LitTrue
			},
			want: "constant fanin",
		},
		{
			name: "trivial equal fanins",
			corrupt: func(g *AIG) {
				id := firstAnd(g)
				g.fanin1[id] = g.fanin0[id]
			},
			want: "which And() should have folded",
		},
		{
			name: "trivial complementary fanins",
			corrupt: func(g *AIG) {
				id := firstAnd(g)
				g.fanin1[id] = g.fanin0[id].Not()
			},
			want: "which And() should have folded",
		},
		{
			name: "wrong level",
			corrupt: func(g *AIG) {
				g.level[firstAnd(g)]++
			},
			want: "has level",
		},
		{
			name: "PI with nonzero level",
			corrupt: func(g *AIG) {
				g.level[1] = 3
			},
			want: "non-AND node 1 has level 3",
		},
		{
			name: "PI with fanin",
			corrupt: func(g *AIG) {
				g.fanin0[1] = MakeLit(0, true)
			},
			want: "non-AND node 1 has fanins",
		},
		{
			name: "missing strash entry",
			corrupt: func(g *AIG) {
				id := firstAnd(g)
				delete(g.strash, strashKey(g.fanin0[id], g.fanin1[id]))
			},
			want: "missing from strash table",
		},
		{
			name: "stale strash entry",
			corrupt: func(g *AIG) {
				// Register a fanin pair no node can implement: AND(a, a)
				// always folds, so its key is never legitimately present.
				g.strash[strashKey(MakeLit(1, false), MakeLit(1, false))] = firstAnd(g)
			},
			want: "stale entries",
		},
		{
			name: "duplicate AND node",
			corrupt: func(g *AIG) {
				// Append a structural twin of the first AND without
				// registering it: the strash entry still points at the
				// original, so the twin is a non-canonical duplicate.
				id := firstAnd(g)
				g.fanin0 = append(g.fanin0, g.fanin0[id])
				g.fanin1 = append(g.fanin1, g.fanin1[id])
				g.level = append(g.level, g.level[id])
			},
			want: "structural duplicate",
		},
		{
			name: "PO references nonexistent node",
			corrupt: func(g *AIG) {
				g.pos[0] = MakeLit(g.NumObjs()+7, false)
			},
			want: "references nonexistent node",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildCheckFixture(t)
			tc.corrupt(g)
			err := g.Check()
			if err == nil {
				t.Fatalf("Check accepted a corrupted AIG (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Check error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCheckErrorsAreDistinct guards the error taxonomy: each corruption
// class must map to its own message so a selfcheck failure names the
// broken invariant, not just "corrupt".
func TestCheckErrorsAreDistinct(t *testing.T) {
	wants := []string{
		"forward or cyclic fanin",
		"not normalized",
		"constant fanin",
		"which And() should have folded",
		"has level",
		"missing from strash table",
		"stale entries",
		"structural duplicate",
		"references nonexistent node",
	}
	seen := map[string]bool{}
	for _, w := range wants {
		if seen[w] {
			t.Errorf("error class %q reused across corruption kinds", w)
		}
		seen[w] = true
	}
}

// TestCheckStrictRejectsDangling: a dead cone passes Check (passes may
// leave garbage until Cleanup) but fails CheckStrict with a distinct
// error.
func TestCheckStrictRejectsDangling(t *testing.T) {
	g := buildCheckFixture(t)
	// Build a cone nothing references.
	g.And(g.PI(0), g.And(g.PI(1), g.PI(2).Not()))
	if err := g.Check(); err != nil {
		t.Fatalf("Check should tolerate dangling nodes: %v", err)
	}
	err := g.CheckStrict()
	if err == nil {
		t.Fatal("CheckStrict accepted a dangling AND node")
	}
	if !strings.Contains(err.Error(), "dangling") {
		t.Fatalf("CheckStrict error %q does not mention dangling", err)
	}
	// Cleanup removes the cone; both checks pass again.
	ng := g.Cleanup()
	if err := ng.CheckStrict(); err != nil {
		t.Fatalf("CheckStrict after Cleanup: %v", err)
	}
}

// TestCheckStrictBadRefCount: a fanin edge rewired to a node that
// nothing else consumes leaves the old fanin with zero references.
func TestCheckStrictBadRefCount(t *testing.T) {
	g := New(2)
	x := g.And(g.PI(0), g.PI(1))
	y := g.And(g.PI(0), g.PI(1).Not())
	g.AddPO(x)
	_ = y // y is dangling: ref count 0
	if err := g.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if err := g.CheckStrict(); err == nil {
		t.Fatal("CheckStrict accepted an AND with zero references")
	}
}
