package aig

import (
	"fmt"
	"math/rand"

	"repro/internal/tt"
)

// SimAll computes the complete truth table of every node over the primary
// inputs by exhaustive simulation. The result is indexed by node id and is
// the table of the plain (non-complemented) literal. Practical up to
// roughly 16 inputs.
func (g *AIG) SimAll() []tt.TT {
	n := g.numPIs
	if n > tt.MaxVars {
		panic(fmt.Sprintf("aig: SimAll limited to %d inputs, got %d", tt.MaxVars, n))
	}
	tabs := make([]tt.TT, g.NumObjs())
	tabs[0] = tt.New(n)
	for i := 1; i <= n; i++ {
		tabs[i] = tt.Var(i-1, n)
	}
	for id := n + 1; id < g.NumObjs(); id++ {
		f0, f1 := g.fanin0[id], g.fanin1[id]
		a := tabs[f0.Node()]
		if f0.IsCompl() {
			a = a.Not()
		}
		b := tabs[f1.Node()]
		if f1.IsCompl() {
			b = b.Not()
		}
		tabs[id] = a.And(b)
	}
	return tabs
}

// LitTT returns the truth table of literal l given per-node tables from
// SimAll.
func LitTT(tabs []tt.TT, l Lit) tt.TT {
	t := tabs[l.Node()]
	if l.IsCompl() {
		return t.Not()
	}
	return t
}

// OutputTTs returns the truth table of every primary output.
func (g *AIG) OutputTTs() []tt.TT {
	tabs := g.SimAll()
	out := make([]tt.TT, g.NumPOs())
	for i, po := range g.pos {
		out[i] = LitTT(tabs, po)
	}
	return out
}

// Equivalent reports whether two AIGs with identical PI/PO counts compute
// the same functions, by exhaustive simulation. It returns the index of
// the first differing output, or -1 when equivalent.
func Equivalent(a, b *AIG) (int, error) {
	if a.NumPIs() != b.NumPIs() {
		return -1, fmt.Errorf("aig: PI count mismatch: %d vs %d", a.NumPIs(), b.NumPIs())
	}
	if a.NumPOs() != b.NumPOs() {
		return -1, fmt.Errorf("aig: PO count mismatch: %d vs %d", a.NumPOs(), b.NumPOs())
	}
	ta, tb := a.OutputTTs(), b.OutputTTs()
	for i := range ta {
		if !ta[i].Equal(tb[i]) {
			return i, nil
		}
	}
	return -1, nil
}

// EquivalentToTTs reports whether the AIG computes exactly the given
// output truth tables, by exhaustive simulation. It returns the index of
// the first differing output, or -1 when every output matches. This is
// the harness's load-bearing guardrail: every synthesized and optimized
// AIG is checked against its specification before it may contribute to
// the diversity analysis.
func (g *AIG) EquivalentToTTs(spec []tt.TT) (int, error) {
	if len(spec) != g.NumPOs() {
		return -1, fmt.Errorf("aig: PO count mismatch: %d vs %d spec outputs", g.NumPOs(), len(spec))
	}
	if len(spec) > 0 && spec[0].NumVars() != g.NumPIs() {
		return -1, fmt.Errorf("aig: PI count mismatch: %d vs %d spec vars", g.NumPIs(), spec[0].NumVars())
	}
	tabs := g.OutputTTs()
	for i := range tabs {
		if !tabs[i].Equal(spec[i]) {
			return i, nil
		}
	}
	return -1, nil
}

// SimVector simulates the AIG on 64 input patterns packed bitwise: pat[i]
// holds the 64 values of PI i. The result holds one word per node, plus
// the complement convention of SimAll.
func (g *AIG) SimVector(pat []uint64) []uint64 {
	if len(pat) != g.numPIs {
		panic("aig: SimVector pattern width mismatch")
	}
	vals := make([]uint64, g.NumObjs())
	for i := 1; i <= g.numPIs; i++ {
		vals[i] = pat[i-1]
	}
	for id := g.numPIs + 1; id < g.NumObjs(); id++ {
		f0, f1 := g.fanin0[id], g.fanin1[id]
		a := vals[f0.Node()]
		if f0.IsCompl() {
			a = ^a
		}
		b := vals[f1.Node()]
		if f1.IsCompl() {
			b = ^b
		}
		vals[id] = a & b
	}
	return vals
}

// RandomSimCheck compares two AIGs on rounds*64 random patterns and
// reports the first output found to differ, or -1. It is a fast filter
// for large designs where exhaustive simulation is infeasible.
func RandomSimCheck(a, b *AIG, rounds int, r *rand.Rand) (int, error) {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return -1, fmt.Errorf("aig: interface mismatch")
	}
	pat := make([]uint64, a.NumPIs())
	for k := 0; k < rounds; k++ {
		for i := range pat {
			pat[i] = r.Uint64()
		}
		va, vb := a.SimVector(pat), b.SimVector(pat)
		for i := range a.pos {
			la, lb := a.pos[i], b.pos[i]
			wa := va[la.Node()]
			if la.IsCompl() {
				wa = ^wa
			}
			wb := vb[lb.Node()]
			if lb.IsCompl() {
				wb = ^wb
			}
			if wa != wb {
				return i, nil
			}
		}
	}
	return -1, nil
}

// Eval evaluates all outputs on a single assignment, where bit i of input
// holds the value of PI i.
func (g *AIG) Eval(input uint64) []bool {
	pat := make([]uint64, g.numPIs)
	for i := range pat {
		if input>>uint(i)&1 == 1 {
			pat[i] = ^uint64(0)
		}
	}
	vals := g.SimVector(pat)
	out := make([]bool, g.NumPOs())
	for i, po := range g.pos {
		w := vals[po.Node()]
		if po.IsCompl() {
			w = ^w
		}
		out[i] = w&1 == 1
	}
	return out
}

// CutTT computes the local truth table of node root expressed over the
// given cut leaves (at most tt.MaxVars of them). Leaves are node ids; the
// i-th leaf becomes variable i.
func (g *AIG) CutTT(root int, leaves []int) tt.TT {
	n := len(leaves)
	local := make(map[int]tt.TT, len(leaves)*2)
	for i, leaf := range leaves {
		local[leaf] = tt.Var(i, n)
	}
	var eval func(id int) tt.TT
	eval = func(id int) tt.TT {
		if t, ok := local[id]; ok {
			return t
		}
		if !g.IsAnd(id) {
			panic(fmt.Sprintf("aig: CutTT reached non-AND node %d outside the cut", id))
		}
		f0, f1 := g.fanin0[id], g.fanin1[id]
		a := eval(f0.Node())
		if f0.IsCompl() {
			a = a.Not()
		}
		b := eval(f1.Node())
		if f1.IsCompl() {
			b = b.Not()
		}
		t := a.And(b)
		local[id] = t
		return t
	}
	return eval(root)
}
